/**
 * @file
 * The in-process transport: per-node mailboxes behind one mutex.
 * Messages "arrive" the moment send() returns; wire cost exists only
 * on the simulated clocks ClusterNetwork charges. This is the exact
 * fabric the repository grew up on, extracted unchanged from
 * ClusterNetwork when the transport became pluggable.
 */

#ifndef SKYWAY_NET_MODEL_TRANSPORT_HH
#define SKYWAY_NET_MODEL_TRANSPORT_HH

#include <deque>

#include "net/transport.hh"
#include "support/thread_annotations.hh"

namespace skyway
{

class ModelTransport final : public Transport
{
  public:
    explicit ModelTransport(int node_count);

    const char *name() const override { return "model"; }

    void send(NodeId src, NodeId dst, int tag,
              std::vector<std::uint8_t> payload) override;
    bool poll(NodeId dst, NetMessage &out) override;
    bool pollTag(NodeId dst, int tag, NetMessage &out) override;
    std::ptrdiff_t pollTagInto(NodeId dst, int tag,
                               const ReserveFn &reserve) override;
    void registerHandler(NodeId node, RequestHandler handler) override;
    std::vector<std::uint8_t>
    request(NodeId src, NodeId dst, int tag,
            const std::vector<std::uint8_t> &payload,
            const RequestOptions &opts) override;

  private:
    /** The one mailbox lock; every public method takes it (request()
     *  drops it before invoking the handler — handlers may re-enter
     *  the transport). */
    mutable Mutex mutex_;
    std::vector<std::deque<NetMessage>> mailboxes_ GUARDED_BY(mutex_);
    std::vector<RequestHandler> handlers_ GUARDED_BY(mutex_);
};

} // namespace skyway

#endif // SKYWAY_NET_MODEL_TRANSPORT_HH
