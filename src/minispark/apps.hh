/**
 * @file
 * The four Spark workloads of the paper's section 5.2: WordCount
 * (one shuffle round), PageRank and ConnectedComponents (iterative,
 * one shuffle per iteration), and TriangleCounting (an edge
 * redistribution shuffle followed by a wedge-query shuffle). Each app
 * returns the per-worker cost breakdown plus an app-level checksum so
 * tests can assert that every serializer computes identical results.
 */

#ifndef SKYWAY_MINISPARK_APPS_HH
#define SKYWAY_MINISPARK_APPS_HH

#include "minispark/minispark.hh"
#include "sd/kryoserializer.hh"
#include "workloads/graphgen.hh"
#include "workloads/text.hh"

namespace skyway
{

/** Register the spark.* record classes with the catalog. */
void defineSparkAppClasses(ClassCatalog &catalog);

/**
 * The Kryo registrator for the Spark apps (the paper's
 * MyRegistrator): registers every shuffled record class, with manual
 * S/D functions for the hot ones.
 */
void registerSparkAppKryo(KryoRegistry &registry);

struct SparkAppResult
{
    PhaseBreakdown average;     // per-worker mean (the figures' unit)
    PhaseBreakdown total;       // summed over workers
    std::uint64_t shuffledRecords = 0;
    std::uint64_t shuffledBytes = 0;
    int iterations = 0;
    /** App-defined checksum; identical across serializers. */
    double checksum = 0;
};

/** WordCount over a generated corpus. */
SparkAppResult runWordCount(SparkCluster &cluster,
                            const std::vector<std::string> &lines);

/** PageRank (rank = 0.15 + 0.85 * sum, ranks start at 1.0). */
SparkAppResult runPageRank(SparkCluster &cluster, const EdgeList &graph,
                           int iterations);

/** ConnectedComponents by min-label propagation. */
SparkAppResult runConnectedComponents(SparkCluster &cluster,
                                      const EdgeList &graph,
                                      int max_iterations = 50);

/** TriangleCounting with degree-ordered wedge generation. */
SparkAppResult runTriangleCount(SparkCluster &cluster,
                                const EdgeList &graph);

} // namespace skyway

#endif // SKYWAY_MINISPARK_APPS_HH
