# Empty dependencies file for skyway_sd.
# This may be replaced when dependencies are built.
