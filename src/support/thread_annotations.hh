/**
 * @file
 * SkywayGuard: compile-time thread-safety facts (docs/
 * STATIC_ANALYSIS.md). Two layers:
 *
 *  1. The Clang capability-analysis attribute macros (GUARDED_BY,
 *     REQUIRES, ACQUIRE/RELEASE, EXCLUDES, ...). Under Clang with
 *     -Wthread-safety (the -DSKYWAY_ANALYZE=ON build) they make the
 *     repository's locking discipline a compile error to violate;
 *     under GCC they expand to nothing and cost nothing.
 *
 *  2. Annotated wrappers — Mutex, CondVar, MutexLock — around the
 *     std primitives. std::mutex and std::lock_guard carry no
 *     capability attributes, so annotating a field as GUARDED_BY a
 *     bare std::mutex teaches the analysis nothing; the wrappers are
 *     what lets it track acquisition through RAII scopes. They
 *     compile to exactly the std primitives (every method is a
 *     one-line forward), so the concurrency behavior of annotated
 *     code is unchanged.
 *
 * Conventions (enforced across src/net, src/typereg, src/skyway and
 * src/obs — the concurrent core):
 *
 *  - every field a mutex protects is GUARDED_BY(that mutex);
 *  - a function called with a lock already held is REQUIRES(it);
 *  - a function that must NOT be entered with a lock held (it takes
 *    the lock itself, or it performs a blocking round trip) is
 *    EXCLUDES(it);
 *  - fields owned by exactly one thread (an event loop's private
 *    reassembly buffers) are not guarded — ownership is documented at
 *    the field instead.
 */

#ifndef SKYWAY_SUPPORT_THREAD_ANNOTATIONS_HH
#define SKYWAY_SUPPORT_THREAD_ANNOTATIONS_HH

#include <condition_variable>
#include <mutex>

// Clang's thread-safety attributes (LLVM and Abseil ship the same
// macro surface). GCC accepts none of them; everything degrades to a
// no-op so the annotated tree builds identically there.
#if defined(__clang__)
#define SKYWAY_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SKYWAY_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define CAPABILITY(x) SKYWAY_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in dtor. */
#define SCOPED_CAPABILITY SKYWAY_THREAD_ANNOTATION(scoped_lockable)

/** Field is readable/writable only with the given mutex held. */
#define GUARDED_BY(x) SKYWAY_THREAD_ANNOTATION(guarded_by(x))

/** Pointee (not the pointer) is protected by the given mutex. */
#define PT_GUARDED_BY(x) SKYWAY_THREAD_ANNOTATION(pt_guarded_by(x))

/** Callers must hold the listed capabilities on entry (and keep
 *  them: the function neither acquires nor releases). */
#define REQUIRES(...)                                                  \
    SKYWAY_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the listed capabilities and holds them on
 *  return. With no argument on a member of a capability type, the
 *  capability is the object itself. */
#define ACQUIRE(...)                                                   \
    SKYWAY_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities (held on entry). */
#define RELEASE(...)                                                   \
    SKYWAY_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns @p success. */
#define TRY_ACQUIRE(...)                                               \
    SKYWAY_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Callers must NOT hold the listed capabilities: the function takes
 *  them itself, or blocks in a way that must never nest under them
 *  (a network round trip — see tools/lint_invariants.py rule 2). */
#define EXCLUDES(...)                                                  \
    SKYWAY_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Declares this mutex is acquired before the listed ones (checked
 *  only under -Wthread-safety-beta; documents the lock hierarchy). */
#define ACQUIRED_BEFORE(...)                                           \
    SKYWAY_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...)                                            \
    SKYWAY_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Function returns a reference to the given capability. */
#define RETURN_CAPABILITY(x) SKYWAY_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: the function's locking is correct for reasons the
 *  analysis cannot see (init/teardown quiescence, adopted locks).
 *  Every use must carry a justifying comment — the invariant linter
 *  treats a bare one as a finding. */
#define NO_THREAD_SAFETY_ANALYSIS                                      \
    SKYWAY_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace skyway
{

/**
 * An annotated std::mutex. Same size, same cost — the capability
 * attribute exists only in the analysis.
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() ACQUIRE()
    {
        m_.lock();
    }

    void
    unlock() RELEASE()
    {
        m_.unlock();
    }

    bool
    try_lock() TRY_ACQUIRE(true)
    {
        return m_.try_lock();
    }

  private:
    friend class CondVar;
    std::mutex m_;
};

/**
 * RAII lock of a Mutex — the annotated std::lock_guard. The analysis
 * tracks the capability from construction to destruction, so a
 * guarded field touched outside a MutexLock scope is a compile error
 * under -DSKYWAY_ANALYZE=ON.
 */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) ACQUIRE(m) : m_(m) { m_.lock(); }

    ~MutexLock() RELEASE() { m_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    friend class CondVar;
    Mutex &m_;
};

/**
 * An annotated std::condition_variable bound to Mutex/MutexLock.
 * wait() releases and reacquires the lock internally, which the
 * analysis cannot model — but since the capability is held at entry
 * and at exit, REQUIRES is the truthful contract. Predicate waits are
 * written as explicit `while (!cond) cv.wait(lock);` loops at the
 * call site so the predicate's guarded reads stay inside the
 * annotated caller (a lambda would escape the analysis).
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release @p lock, sleep, reacquire. */
    void
    wait(MutexLock &lock) REQUIRES(lock.m_)
    {
        std::unique_lock<std::mutex> ul(lock.m_.m_, std::adopt_lock);
        cv_.wait(ul);
        ul.release(); // ownership stays with the MutexLock
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace skyway

#endif // SKYWAY_SUPPORT_THREAD_ANNOTATIONS_HH
