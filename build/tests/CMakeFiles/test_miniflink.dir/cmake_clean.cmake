file(REMOVE_RECURSE
  "CMakeFiles/test_miniflink.dir/test_miniflink.cc.o"
  "CMakeFiles/test_miniflink.dir/test_miniflink.cc.o.d"
  "test_miniflink"
  "test_miniflink.pdb"
  "test_miniflink[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_miniflink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
