/**
 * @file
 * Tests for the generational collector: scavenge correctness (copying,
 * forwarding, sharing, hash preservation), card-table old-to-young
 * scanning, promotion, full GC mark-sweep reclamation, and the Skyway
 * pinned-range interactions.
 */

#include <gtest/gtest.h>

#include "gc/collector.hh"
#include "heap/objectops.hh"

namespace skyway
{
namespace
{

class GcTest : public ::testing::Test
{
  protected:
    GcTest()
    {
        defineBootstrapClasses(cat_);
        cat_.define(ClassDef{
            "Node",
            "",
            {
                {"value", FieldType::Int, ""},
                {"next", FieldType::Ref, "Node"},
            },
        });
        HeapConfig cfg;
        cfg.edenBytes = 1 << 20;
        cfg.survivorBytes = 256 << 10;
        cfg.oldBytes = 8 << 20;
        klasses_ = std::make_unique<KlassTable>(cat_);
        heap_ = std::make_unique<ManagedHeap>(cfg);
        gc_ = std::make_unique<GenerationalGc>(*heap_);
        builder_ = std::make_unique<ObjectBuilder>(*heap_, *klasses_);
        nodeK_ = klasses_->load("Node");
    }

    /** Build a rooted linked list of @p n Nodes; returns the root slot. */
    std::size_t
    makeList(int n)
    {
        std::size_t slot = heap_->addRoot(nullAddr);
        for (int i = n - 1; i >= 0; --i) {
            Address node = heap_->allocateInstance(nodeK_);
            field::set<std::int32_t>(*heap_, node,
                                     nodeK_->requireField("value"), i);
            field::setRef(*heap_, node, nodeK_->requireField("next"),
                          heap_->root(slot));
            heap_->setRoot(slot, node);
        }
        return slot;
    }

    /** Check the list rooted at @p slot counts 0..n-1. */
    void
    checkList(std::size_t slot, int n)
    {
        Address cur = heap_->root(slot);
        for (int i = 0; i < n; ++i) {
            ASSERT_NE(cur, nullAddr) << "list too short at " << i;
            EXPECT_EQ(field::get<std::int32_t>(
                          *heap_, cur, nodeK_->requireField("value")),
                      i);
            cur = field::getRef(*heap_, cur,
                                nodeK_->requireField("next"));
        }
        EXPECT_EQ(cur, nullAddr);
    }

    ClassCatalog cat_;
    std::unique_ptr<KlassTable> klasses_;
    std::unique_ptr<ManagedHeap> heap_;
    std::unique_ptr<GenerationalGc> gc_;
    std::unique_ptr<ObjectBuilder> builder_;
    Klass *nodeK_;
};

TEST_F(GcTest, ScavengePreservesRootedList)
{
    std::size_t slot = makeList(100);
    Address before = heap_->root(slot);
    gc_->scavenge();
    Address after = heap_->root(slot);
    EXPECT_NE(before, after) << "live object should have been copied";
    checkList(slot, 100);
    heap_->removeRoot(slot);
}

TEST_F(GcTest, ScavengeDropsGarbage)
{
    // Allocate unrooted objects: all garbage.
    for (int i = 0; i < 500; ++i)
        heap_->allocateInstance(nodeK_);
    std::size_t used_before = heap_->usedYoungBytes();
    gc_->scavenge();
    EXPECT_LT(heap_->usedYoungBytes(), used_before);
    EXPECT_EQ(heap_->stats().scavenges, 1u);
}

TEST_F(GcTest, SharedObjectCopiedOnce)
{
    // Two roots to the same object must still point to one object
    // after the copy.
    Address obj = builder_->makeInteger(7);
    std::size_t s1 = heap_->addRoot(obj);
    std::size_t s2 = heap_->addRoot(obj);
    gc_->scavenge();
    EXPECT_EQ(heap_->root(s1), heap_->root(s2));
    heap_->removeRoot(s1);
    heap_->removeRoot(s2);
}

TEST_F(GcTest, IdentityHashSurvivesCopy)
{
    Address obj = builder_->makeInteger(3);
    std::size_t slot = heap_->addRoot(obj);
    std::int32_t h = heap_->identityHash(heap_->root(slot));
    gc_->scavenge();
    EXPECT_EQ(heap_->identityHash(heap_->root(slot)), h);
    heap_->removeRoot(slot);
}

TEST_F(GcTest, RepeatedScavengesPromote)
{
    std::size_t slot = makeList(10);
    for (int i = 0; i < 5; ++i)
        gc_->scavenge();
    // After enough scavenges the survivors must have been tenured.
    EXPECT_TRUE(heap_->inOld(heap_->root(slot)));
    checkList(slot, 10);
    EXPECT_GT(heap_->stats().bytesPromoted, 0u);
    heap_->removeRoot(slot);
}

TEST_F(GcTest, CardTableFindsOldToYoungRefs)
{
    // Promote a node to old, then point it at a fresh young node and
    // scavenge: the young node must survive via the card-table root.
    std::size_t slot = makeList(1);
    for (int i = 0; i < 5; ++i)
        gc_->scavenge();
    ASSERT_TRUE(heap_->inOld(heap_->root(slot)));

    Address young = heap_->allocateInstance(nodeK_);
    field::set<std::int32_t>(*heap_, young,
                             nodeK_->requireField("value"), 1);
    heap_->storeRef(heap_->root(slot), nodeK_->requireField("next").offset,
                    young);

    gc_->scavenge();
    checkList(slot, 2);
    heap_->removeRoot(slot);
}

TEST_F(GcTest, AllocationTriggersScavenge)
{
    // Filling eden must trigger collection rather than failure.
    std::size_t slot = heap_->addRoot(nullAddr);
    for (int i = 0; i < 40000; ++i) {
        Address node = heap_->allocateInstance(nodeK_);
        if (i % 100 == 0)
            heap_->setRoot(slot, node); // keep a few alive
    }
    EXPECT_GT(heap_->stats().scavenges, 0u);
    heap_->removeRoot(slot);
}

TEST_F(GcTest, FullGcReclaimsOldGarbage)
{
    // Tenure a big list, drop the root, full-GC: old usage must fall.
    std::size_t slot = makeList(5000);
    gc_->fullGc(); // tenures everything
    ASSERT_TRUE(heap_->inOld(heap_->root(slot)));
    std::size_t used = heap_->usedOldBytes();
    heap_->removeRoot(slot);
    gc_->fullGc();
    EXPECT_LT(heap_->usedOldBytes(), used);
}

TEST_F(GcTest, FullGcKeepsLiveOldObjects)
{
    std::size_t slot = makeList(1000);
    gc_->fullGc();
    gc_->fullGc();
    checkList(slot, 1000);
    heap_->removeRoot(slot);
}

TEST_F(GcTest, FullGcReusesSweptSpace)
{
    std::size_t slot = makeList(2000);
    gc_->fullGc();
    heap_->removeRoot(slot);
    gc_->fullGc();
    std::size_t top_before = heap_->oldTop() - heap_->oldBase();
    // New old allocations should land in the freed space, not bump.
    Address a = heap_->allocateOldRaw(1024);
    EXPECT_TRUE(heap_->inOld(a));
    EXPECT_EQ(heap_->oldTop() - heap_->oldBase(), top_before);
}

TEST_F(GcTest, OpaquePinnedRangeSurvivesFullGc)
{
    // Fill a pinned opaque range with non-object bytes (as a Skyway
    // input buffer being streamed into); a full GC must neither walk
    // nor free it.
    Address zone = heap_->allocateOldRaw(4096);
    std::size_t pin = heap_->pinOldRange(zone, 4096);
    for (std::size_t off = 0; off < 4096; off += wordSize)
        heap_->storeWord(zone, off, 0xdeadbeefcafebabeull);

    gc_->fullGc();
    for (std::size_t off = 0; off < 4096; off += wordSize)
        EXPECT_EQ(heap_->loadWord(zone, off), 0xdeadbeefcafebabeull);
    heap_->unpinOldRange(pin);
}

TEST_F(GcTest, WalkablePinnedObjectsAreLiveRoots)
{
    // Build a real object inside a pinned range, make it walkable, and
    // verify full GC retains it (input buffers are kept until freed).
    std::size_t bytes = nodeK_->instanceBytes();
    Address zone = heap_->allocateOldRaw(wordAlign(bytes) + 64);
    std::size_t pin = heap_->pinOldRange(zone, wordAlign(bytes) + 64);
    heap_->storeWord(zone, offsetMark, mark::initial);
    heap_->storeWord(zone, offsetKlass, reinterpret_cast<Word>(nodeK_));
    heap_->storeWord(zone, offsetBaddr, 0);
    heap_->store<std::int32_t>(zone, nodeK_->requireField("value").offset,
                               77);
    heap_->store<Address>(zone, nodeK_->requireField("next").offset,
                          nullAddr);
    heap_->writeFiller(zone + wordAlign(bytes), 64);
    heap_->makePinWalkable(pin);

    gc_->fullGc();
    EXPECT_EQ(heap_->load<std::int32_t>(
                  zone, nodeK_->requireField("value").offset),
              77);

    // After unpinning (developer frees the buffer) the next full GC
    // may reclaim it.
    heap_->unpinOldRange(pin);
    std::size_t used = heap_->usedOldBytes();
    gc_->fullGc();
    EXPECT_LE(heap_->usedOldBytes(), used);
}

TEST_F(GcTest, ScavengeCountsCycles)
{
    gc_->scavenge();
    gc_->scavenge();
    EXPECT_EQ(heap_->stats().scavenges, 2u);
    gc_->fullGc();
    EXPECT_EQ(heap_->stats().fullGcs, 1u);
}

} // namespace
} // namespace skyway
