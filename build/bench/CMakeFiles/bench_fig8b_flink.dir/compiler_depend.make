# Empty compiler generated dependencies file for bench_fig8b_flink.
# This may be replaced when dependencies are built.
