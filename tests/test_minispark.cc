/**
 * @file
 * Integration tests for minispark: every workload must produce
 * *identical* results under the Java serializer, Kryo, and Skyway,
 * and those results must match independent single-threaded reference
 * implementations. Also checks the accounting invariants the benches
 * rely on (nonzero ser/deser/IO components, byte counters).
 */

#include <gtest/gtest.h>

#include <numeric>
#include <unordered_set>

#include "minispark/apps.hh"
#include "sd/javaserializer.hh"

namespace skyway
{
namespace
{

ClassCatalog
sparkCatalog()
{
    ClassCatalog cat = makeStandardCatalog();
    defineSparkAppClasses(cat);
    return cat;
}

/** Run @p app under the named serializer. */
template <typename App>
SparkAppResult
runWith(const std::string &which, App &&app)
{
    ClassCatalog cat = sparkCatalog();
    SparkConfig cfg;
    cfg.numWorkers = 3;

    std::shared_ptr<KryoRegistry> reg;
    std::unique_ptr<SerializerFactory> factory;
    auto skyFactory = std::make_unique<ClusterSkywayFactory>();
    if (which == "java") {
        factory = std::make_unique<JavaSerializerFactory>();
    } else if (which == "kryo") {
        reg = std::make_shared<KryoRegistry>();
        registerSparkAppKryo(*reg);
        factory = std::make_unique<KryoSerializerFactory>(reg);
    }
    SerializerFactory &fac =
        factory ? *factory
                : static_cast<SerializerFactory &>(*skyFactory);
    SparkCluster cluster(cat, fac, cfg);
    if (!factory) {
        skyFactory->bind(cluster);
        // "skyway" in this suite means the paper's raw format: the
        // accounting assertions (byte inflation vs kryo) are format
        // properties, so keep the suite invariant under the
        // SKYWAY_WIRE_COMPACT env knob (test_wirecompact owns the
        // compact path).
        cluster.driver().skyway().setWireCompactMode(
            WireCompactMode::Off);
        for (int w = 0; w < cluster.numWorkers(); ++w)
            cluster.worker(w).skyway().setWireCompactMode(
                WireCompactMode::Off);
    }
    return app(cluster);
}

const std::vector<std::string> allSerializers = {"java", "kryo",
                                                 "skyway"};

TEST(SparkWordCount, SameResultUnderAllSerializers)
{
    TextSpec spec;
    spec.lines = 400;
    spec.wordsPerLine = 8;
    spec.vocabulary = 300;
    auto lines = generateText(spec);

    // Reference word count.
    std::unordered_map<std::string, std::int64_t> ref;
    for (const auto &line : lines)
        for (auto &w : tokenize(line))
            ++ref[w];
    double refChecksum = static_cast<double>(ref.size());
    for (auto &[w, c] : ref)
        refChecksum += static_cast<double>(c) * (1.0 + w.size());

    for (const auto &ser : allSerializers) {
        SparkAppResult res =
            runWith(ser, [&](SparkCluster &cluster) {
                return runWordCount(cluster, lines);
            });
        EXPECT_DOUBLE_EQ(res.checksum, refChecksum) << ser;
        // Map-side combining is per worker: the shuffle carries one
        // record per (worker, word), bounded by workers * distinct.
        EXPECT_GE(res.shuffledRecords, ref.size()) << ser;
        EXPECT_LE(res.shuffledRecords, 3 * ref.size()) << ser;
        EXPECT_GT(res.total.serNs + res.total.deserNs, 0u) << ser;
        EXPECT_GT(res.total.writeIoNs, 0u) << ser;
        EXPECT_GT(res.total.readIoNs, 0u) << ser;
        EXPECT_GT(res.total.bytesLocal + res.total.bytesRemote, 0u)
            << ser;
    }
}

TEST(SparkPageRank, MatchesReferenceAndAgrees)
{
    GraphSpec spec{"t", 300, 1500, 2.0, 21, ""};
    EdgeList g = generateGraph(spec);
    const int iters = 4;

    // Reference PageRank.
    std::vector<std::uint32_t> deg(g.numVertices, 0);
    for (auto [u, v] : g.edges)
        ++deg[u];
    std::vector<double> rank(g.numVertices, 1.0);
    for (int it = 0; it < iters; ++it) {
        std::vector<double> next(g.numVertices, 0.15);
        for (auto [u, v] : g.edges)
            next[v] += 0.85 * rank[u] / deg[u];
        rank.swap(next);
    }
    double refChecksum = std::accumulate(rank.begin(), rank.end(), 0.0);

    std::vector<double> checksums;
    for (const auto &ser : allSerializers) {
        SparkAppResult res =
            runWith(ser, [&](SparkCluster &cluster) {
                return runPageRank(cluster, g, iters);
            });
        EXPECT_NEAR(res.checksum, refChecksum, 1e-6) << ser;
        EXPECT_EQ(res.iterations, iters);
        checksums.push_back(res.checksum);
    }
    EXPECT_DOUBLE_EQ(checksums[0], checksums[1]);
    EXPECT_DOUBLE_EQ(checksums[0], checksums[2]);
}

TEST(SparkConnectedComponents, MatchesUnionFind)
{
    GraphSpec spec{"t", 400, 900, 2.0, 33, ""};
    EdgeList g = generateGraph(spec);

    // Reference: union-find component count.
    std::vector<std::uint32_t> parent(g.numVertices);
    std::iota(parent.begin(), parent.end(), 0);
    std::function<std::uint32_t(std::uint32_t)> find =
        [&](std::uint32_t x) {
            while (parent[x] != x) {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            return x;
        };
    for (auto [u, v] : g.edges)
        parent[find(u)] = find(v);
    std::unordered_set<std::uint32_t> comps;
    for (std::uint32_t v = 0; v < g.numVertices; ++v)
        comps.insert(find(v));

    std::vector<double> checksums;
    for (const auto &ser : allSerializers) {
        SparkAppResult res =
            runWith(ser, [&](SparkCluster &cluster) {
                return runConnectedComponents(cluster, g);
            });
        // Checksum's integer part is the component count.
        EXPECT_EQ(static_cast<std::uint64_t>(res.checksum),
                  comps.size())
            << ser;
        checksums.push_back(res.checksum);
    }
    EXPECT_DOUBLE_EQ(checksums[0], checksums[1]);
    EXPECT_DOUBLE_EQ(checksums[0], checksums[2]);
}

TEST(SparkTriangleCount, MatchesBruteForce)
{
    GraphSpec spec{"t", 120, 600, 1.8, 55, ""};
    EdgeList g = generateGraph(spec);

    // Reference: brute-force triangle count over the deduplicated
    // undirected adjacency.
    auto adj = buildAdjacency(g);
    std::uint64_t ref = 0;
    for (std::uint32_t u = 0; u < g.numVertices; ++u) {
        for (std::uint32_t v : adj[u]) {
            if (v <= u)
                continue;
            for (std::uint32_t w : adj[v]) {
                if (w <= v)
                    continue;
                if (std::binary_search(adj[u].begin(), adj[u].end(),
                                       w))
                    ++ref;
            }
        }
    }

    for (const auto &ser : allSerializers) {
        SparkAppResult res =
            runWith(ser, [&](SparkCluster &cluster) {
                return runTriangleCount(cluster, g);
            });
        EXPECT_EQ(static_cast<std::uint64_t>(res.checksum), ref)
            << ser;
        EXPECT_GT(res.shuffledRecords, g.edges.size()) << ser;
    }
}

TEST(SparkAccounting, SkywayShipsMoreBytesButLessSerDeTime)
{
    // The paper's core tradeoff on a real workload: Skyway moves more
    // bytes than Kryo yet spends far less combined S/D time.
#ifdef SKYWAY_SANITIZER_BUILD
    GTEST_SKIP() << "real-time assertion; sanitizer overhead distorts "
                    "the skyway/kryo S+D ratio";
#endif
    // Same reasoning for the runtime validators: SkywaySan instruments
    // only the Skyway transfer path, so its overhead inverts the ratio.
    if (std::getenv("SKYWAY_WIRE_CHECK") ||
        std::getenv("SKYWAY_GRAPH_CHECK"))
        GTEST_SKIP() << "real-time assertion; SkywaySan validator "
                        "overhead distorts the skyway/kryo S+D ratio";
    GraphSpec spec{"t", 400, 4000, 2.0, 77, ""};
    EdgeList g = generateGraph(spec);
    const int iters = 3;

    SparkAppResult kryo = runWith("kryo", [&](SparkCluster &c) {
        return runPageRank(c, g, iters);
    });
    SparkAppResult sky = runWith("skyway", [&](SparkCluster &c) {
        return runPageRank(c, g, iters);
    });
    EXPECT_GT(sky.shuffledBytes, kryo.shuffledBytes);
    EXPECT_LT(sky.total.serNs + sky.total.deserNs,
              kryo.total.serNs + kryo.total.deserNs);
}

TEST(SparkAccounting, BreakdownComponentsAllPopulated)
{
    TextSpec spec;
    spec.lines = 200;
    auto lines = generateText(spec);
    SparkAppResult res = runWith("kryo", [&](SparkCluster &cluster) {
        return runWordCount(cluster, lines);
    });
    EXPECT_GT(res.average.computeNs, 0u);
    EXPECT_GT(res.average.serNs, 0u);
    EXPECT_GT(res.average.writeIoNs, 0u);
    EXPECT_GT(res.average.deserNs, 0u);
    EXPECT_GT(res.average.readIoNs, 0u);
    EXPECT_EQ(res.average.totalNs(),
              res.average.computeNs + res.average.serNs +
                  res.average.writeIoNs + res.average.deserNs +
                  res.average.readIoNs);
}

TEST(SparkShuffle, LocalVsRemoteBytesSplit)
{
    // With 3 workers, 1/3 of partitions are local fetches.
    TextSpec spec;
    spec.lines = 300;
    auto lines = generateText(spec);
    SparkAppResult res = runWith("kryo", [&](SparkCluster &cluster) {
        return runWordCount(cluster, lines);
    });
    EXPECT_GT(res.total.bytesLocal, 0u);
    EXPECT_GT(res.total.bytesRemote, res.total.bytesLocal)
        << "2 of 3 source partitions are remote";
}

} // namespace
} // namespace skyway
