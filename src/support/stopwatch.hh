/**
 * @file
 * Monotonic CPU stopwatch used to measure the *real* cost of the
 * serialization, deserialization, and heap-traversal code paths. I/O
 * costs, by contrast, are charged through the iomodel cost models.
 */

#ifndef SKYWAY_SUPPORT_STOPWATCH_HH
#define SKYWAY_SUPPORT_STOPWATCH_HH

#include <chrono>
#include <cstdint>

namespace skyway
{

/** Nanosecond-resolution monotonic timer. */
class Stopwatch
{
  public:
    using Clock = std::chrono::steady_clock;

    Stopwatch() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    /** Nanoseconds elapsed since construction or the last reset(). */
    std::uint64_t
    elapsedNs() const
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - start_)
            .count();
    }

  private:
    Clock::time_point start_;
};

/** Accumulate elapsed time into a counter on scope exit (RAII). */
class ScopedTimer
{
  public:
    explicit ScopedTimer(std::uint64_t &accum) : accum_(accum) {}
    ~ScopedTimer() { accum_ += sw_.elapsedNs(); }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    std::uint64_t &accum_;
    Stopwatch sw_;
};

} // namespace skyway

#endif // SKYWAY_SUPPORT_STOPWATCH_HH
