#include "obs/span.hh"

#include <cstdlib>

#include "obs/json.hh"

namespace skyway
{
namespace obs
{

std::atomic<bool> SpanTracer::tracingEnabled_{
    std::getenv("SKYWAY_TRACE") != nullptr};

SpanTracer &
SpanTracer::global()
{
    static SpanTracer tracer;
    return tracer;
}

SpanStats &
SpanTracer::span(std::string_view name)
{
    MutexLock lock(mutex_);
    auto it = spans_.find(name);
    if (it == spans_.end())
        it = spans_
                 .emplace(std::string(name),
                          std::make_unique<SpanStats>())
                 .first;
    return *it->second;
}

std::vector<SpanTracer::SpanRow>
SpanTracer::segmentRowsLocked() const
{
    std::vector<SpanRow> rows;
    for (const auto &[name, stats] : spans_) {
        std::uint64_t count = stats->count();
        std::uint64_t total = stats->totalNs();
        auto bit = baseline_.find(name);
        if (bit != baseline_.end()) {
            count -= bit->second.count;
            total -= bit->second.totalNs;
        }
        if (count != 0)
            rows.push_back(SpanRow{name, count, total});
    }
    return rows;
}

void
SpanTracer::beginPhase(std::string label)
{
    MutexLock lock(mutex_);
    std::vector<SpanRow> rows = segmentRowsLocked();
    if (!rows.empty()) {
        phases_.push_back(
            PhaseReport{currentLabel_, std::move(rows)});
        if (phases_.size() > maxPhases) {
            phases_.pop_front();
            ++dropped_;
        }
    }
    for (const auto &[name, stats] : spans_)
        baseline_[name] = Baseline{stats->count(), stats->totalNs()};
    currentLabel_ = std::move(label);
}

std::vector<SpanTracer::PhaseReport>
SpanTracer::completedPhases() const
{
    MutexLock lock(mutex_);
    return {phases_.begin(), phases_.end()};
}

std::vector<SpanTracer::SpanRow>
SpanTracer::cumulative() const
{
    MutexLock lock(mutex_);
    std::vector<SpanRow> rows;
    rows.reserve(spans_.size());
    for (const auto &[name, stats] : spans_)
        rows.push_back(SpanRow{name, stats->count(),
                               stats->totalNs()});
    return rows;
}

std::string
SpanTracer::toJson() const
{
    MutexLock lock(mutex_);
    JsonWriter w;
    w.beginObject();
    w.key("spans");
    w.beginObject();
    for (const auto &[name, stats] : spans_) {
        w.key(name);
        w.beginObject();
        w.key("count").value(stats->count());
        w.key("total_ns").value(stats->totalNs());
        w.key("max_ns").value(stats->maxNs());
        w.endObject();
    }
    w.endObject();
    w.key("phases");
    w.beginArray();
    for (const PhaseReport &p : phases_) {
        w.beginObject();
        w.key("label").value(p.label);
        w.key("spans");
        w.beginObject();
        for (const SpanRow &r : p.spans) {
            w.key(r.name);
            w.beginObject();
            w.key("count").value(r.count);
            w.key("total_ns").value(r.totalNs);
            w.endObject();
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.key("dropped_phases").value(dropped_);
    w.endObject();
    return std::move(w).str();
}

void
SpanTracer::reset()
{
    MutexLock lock(mutex_);
    for (const auto &[name, stats] : spans_) {
        (void)name;
        stats->reset();
    }
    baseline_.clear();
    phases_.clear();
    dropped_ = 0;
    currentLabel_ = "startup";
}

} // namespace obs
} // namespace skyway
