file(REMOVE_RECURSE
  "CMakeFiles/test_typereg.dir/test_typereg.cc.o"
  "CMakeFiles/test_typereg.dir/test_typereg.cc.o.d"
  "test_typereg"
  "test_typereg.pdb"
  "test_typereg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_typereg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
