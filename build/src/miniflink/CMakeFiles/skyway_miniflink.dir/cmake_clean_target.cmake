file(REMOVE_RECURSE
  "libskyway_miniflink.a"
)
