# Empty compiler generated dependencies file for skyway_workloads.
# This may be replaced when dependencies are built.
