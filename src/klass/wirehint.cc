#include "klass/wirehint.hh"

#include "klass/klass.hh"

namespace skyway
{

namespace
{

std::size_t
varintLen(std::uint64_t v)
{
    std::size_t n = 1;
    while (v >= 0x80) {
        v >>= 7;
        ++n;
    }
    return n;
}

} // namespace

int
compactSavingPercentEstimate(const Klass *k, const ObjectFormat &wire_fmt)
{
    std::ptrdiff_t delta =
        static_cast<std::ptrdiff_t>(k->format().headerBytes()) -
        static_cast<std::ptrdiff_t>(wire_fmt.headerBytes());
    // Item tag + ~2-byte tid varint + 1-byte mark (a transfer mark is
    // usually 0: only a computed hash survives resetForTransfer).
    std::size_t overhead = 1 + 2 + 1;
    std::size_t raw;
    std::size_t compact;
    if (!k->isArray()) {
        raw = static_cast<std::size_t>(
            static_cast<std::ptrdiff_t>(k->instanceBytes()) - delta);
        compact = overhead;
        for (const FieldDesc &f : k->fields())
            compact += f.type == FieldType::Ref ? 2 : fieldSize(f.type);
    } else {
        // Arrays size with their length; estimate at 16 elements and
        // let the send path's measured feedback correct for real
        // workloads (large primitive arrays converge to ~0% unless
        // zero-run RLE bites, and demotion then flips them to raw).
        constexpr std::size_t n = 16;
        raw = wordAlign(wire_fmt.arrayHeaderBytes() + n * k->elemSize());
        compact = overhead + varintLen(n) +
                  n * (k->elemType() == FieldType::Ref ? 3
                                                       : k->elemSize());
    }
    if (compact >= raw)
        return 0;
    return static_cast<int>(100 * (raw - compact) / raw);
}

} // namespace skyway
