file(REMOVE_RECURSE
  "CMakeFiles/skyway_iomodel.dir/breakdown.cc.o"
  "CMakeFiles/skyway_iomodel.dir/breakdown.cc.o.d"
  "libskyway_iomodel.a"
  "libskyway_iomodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyway_iomodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
