#include "miniflink/queries.hh"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace skyway
{

namespace
{

/// @name Row materialization helpers (source operators)
/// @{

Address
makeLineitemRow(Jvm &jvm, const TpchData::Lineitem &li)
{
    ManagedHeap &h = jvm.heap();
    Klass *k = jvm.klasses().load("tpch.Lineitem");
    LocalRoots r(h);
    std::size_t rs = r.push(jvm.builder().makeString(li.shipMode));
    Address row = h.allocateInstance(k);
    field::set<std::int64_t>(h, row, k->requireField("orderKey"),
                             li.orderKey);
    field::set<std::int32_t>(h, row, k->requireField("partKey"),
                             li.partKey);
    field::set<std::int32_t>(h, row, k->requireField("suppKey"),
                             li.suppKey);
    field::set<std::int32_t>(h, row, k->requireField("lineNumber"),
                             li.lineNumber);
    field::set<double>(h, row, k->requireField("quantity"),
                       li.quantity);
    field::set<double>(h, row, k->requireField("extendedPrice"),
                       li.extendedPrice);
    field::set<double>(h, row, k->requireField("discount"),
                       li.discount);
    field::set<double>(h, row, k->requireField("tax"), li.tax);
    field::set<std::uint16_t>(h, row, k->requireField("returnFlag"),
                              li.returnFlag);
    field::set<std::uint16_t>(h, row, k->requireField("lineStatus"),
                              li.lineStatus);
    field::set<std::int32_t>(h, row, k->requireField("shipDate"),
                             li.shipDate);
    field::set<std::int32_t>(h, row, k->requireField("commitDate"),
                             li.commitDate);
    field::set<std::int32_t>(h, row, k->requireField("receiptDate"),
                             li.receiptDate);
    field::setRef(h, row, k->requireField("shipMode"), r.get(rs));
    return row;
}

Address
makeOrderRow(Jvm &jvm, const TpchData::Order &o)
{
    ManagedHeap &h = jvm.heap();
    Klass *k = jvm.klasses().load("tpch.Order");
    LocalRoots r(h);
    std::size_t rs = r.push(jvm.builder().makeString(o.orderPriority));
    Address row = h.allocateInstance(k);
    field::set<std::int64_t>(h, row, k->requireField("key"), o.key);
    field::set<std::int32_t>(h, row, k->requireField("custKey"),
                             o.custKey);
    field::set<std::uint16_t>(h, row, k->requireField("orderStatus"),
                              o.orderStatus);
    field::set<double>(h, row, k->requireField("totalPrice"),
                       o.totalPrice);
    field::set<std::int32_t>(h, row, k->requireField("orderDate"),
                             o.orderDate);
    field::setRef(h, row, k->requireField("orderPriority"), r.get(rs));
    return row;
}

Address
makeCustomerRow(Jvm &jvm, const TpchData::Customer &c)
{
    ManagedHeap &h = jvm.heap();
    Klass *k = jvm.klasses().load("tpch.Customer");
    LocalRoots r(h);
    std::size_t rn = r.push(jvm.builder().makeString(c.name));
    std::size_t rm = r.push(jvm.builder().makeString(c.mktsegment));
    Address row = h.allocateInstance(k);
    field::set<std::int32_t>(h, row, k->requireField("key"), c.key);
    field::setRef(h, row, k->requireField("name"), r.get(rn));
    field::set<std::int32_t>(h, row, k->requireField("nationKey"),
                             c.nationKey);
    field::set<double>(h, row, k->requireField("acctbal"), c.acctbal);
    field::setRef(h, row, k->requireField("mktsegment"), r.get(rm));
    return row;
}

Address
makeSupplierRow(Jvm &jvm, const TpchData::Supplier &s)
{
    ManagedHeap &h = jvm.heap();
    Klass *k = jvm.klasses().load("tpch.Supplier");
    LocalRoots r(h);
    std::size_t rn = r.push(jvm.builder().makeString(s.name));
    Address row = h.allocateInstance(k);
    field::set<std::int32_t>(h, row, k->requireField("key"), s.key);
    field::setRef(h, row, k->requireField("name"), r.get(rn));
    field::set<std::int32_t>(h, row, k->requireField("nationKey"),
                             s.nationKey);
    field::set<double>(h, row, k->requireField("acctbal"), s.acctbal);
    return row;
}

Address
makePartSuppRow(Jvm &jvm, const TpchData::PartSupp &ps)
{
    ManagedHeap &h = jvm.heap();
    Klass *k = jvm.klasses().load("tpch.PartSupp");
    Address row = h.allocateInstance(k);
    field::set<std::int32_t>(h, row, k->requireField("partKey"),
                             ps.partKey);
    field::set<std::int32_t>(h, row, k->requireField("suppKey"),
                             ps.suppKey);
    field::set<double>(h, row, k->requireField("supplyCost"),
                       ps.supplyCost);
    return row;
}

Address
makeGroupRow(Jvm &jvm, std::int64_t k1, std::int64_t k2, double s1,
             double s2, double s3, std::int64_t count)
{
    ManagedHeap &h = jvm.heap();
    Klass *k = jvm.klasses().load("tpch.GroupRow");
    Address row = h.allocateInstance(k);
    field::set<std::int64_t>(h, row, k->requireField("k1"), k1);
    field::set<std::int64_t>(h, row, k->requireField("k2"), k2);
    field::set<double>(h, row, k->requireField("sum1"), s1);
    field::set<double>(h, row, k->requireField("sum2"), s2);
    field::set<double>(h, row, k->requireField("sum3"), s3);
    field::set<std::int64_t>(h, row, k->requireField("count"), count);
    return row;
}

Address
makeKeyedDouble(Jvm &jvm, std::int64_t key, double value)
{
    ManagedHeap &h = jvm.heap();
    Klass *k = jvm.klasses().load("tpch.KeyedDouble");
    Address row = h.allocateInstance(k);
    field::set<std::int64_t>(h, row, k->requireField("key"), key);
    field::set<double>(h, row, k->requireField("value"), value);
    return row;
}

/// @}

FlinkQueryResult
finish(FlinkCluster &cluster, std::uint64_t records,
       std::uint64_t bytes, double checksum)
{
    FlinkQueryResult res;
    res.average = cluster.averageBreakdown();
    res.total = cluster.totalBreakdown();
    res.shuffledRecords = records;
    res.shuffledBytes = bytes;
    res.checksum = checksum;
    return res;
}

} // namespace

FlinkQueryResult
runQueryA(FlinkCluster &cluster, const TpchData &db)
{
    cluster.resetBreakdowns();
    int n = cluster.numWorkers();
    const std::int32_t cutoff = tpchMaxDate - 120;

    FlinkShuffle shuffle(cluster, "qa", "tpch.GroupRow",
                         {"k1", "k2", "sum1", "sum2", "sum3",
                          "count"});
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        Stopwatch sw;
        for (std::size_t i = w; i < db.lineitem.size();
             i += static_cast<std::size_t>(n)) {
            const auto &li = db.lineitem[i];
            if (li.shipDate < cutoff)
                continue;
            Address row = makeGroupRow(
                jvm, li.returnFlag, li.lineStatus, li.extendedPrice,
                li.extendedPrice * (1 - li.discount), li.quantity, 1);
            shuffle.add(
                w,
                cluster.ownerOf(static_cast<std::uint64_t>(
                    li.returnFlag * 256 + li.lineStatus)),
                row);
        }
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    shuffle.writePhase();

    double checksum = 0;
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        auto rows = shuffle.read(w);
        Stopwatch sw;
        Klass *k = jvm.klasses().load("tpch.GroupRow");
        const FieldDesc &fk1 = k->requireField("k1");
        const FieldDesc &fk2 = k->requireField("k2");
        const FieldDesc &fs1 = k->requireField("sum1");
        const FieldDesc &fs2 = k->requireField("sum2");
        const FieldDesc &fs3 = k->requireField("sum3");
        const FieldDesc &fc = k->requireField("count");
        std::map<std::pair<std::int64_t, std::int64_t>,
                 std::array<double, 4>>
            groups;
        for (std::size_t i = 0; i < rows->size(); ++i) {
            Address r = rows->get(i);
            auto key = std::make_pair(
                field::get<std::int64_t>(jvm.heap(), r, fk1),
                field::get<std::int64_t>(jvm.heap(), r, fk2));
            auto &g = groups[key];
            g[0] += field::get<double>(jvm.heap(), r, fs1);
            g[1] += field::get<double>(jvm.heap(), r, fs2);
            g[2] += field::get<double>(jvm.heap(), r, fs3);
            g[3] += static_cast<double>(
                field::get<std::int64_t>(jvm.heap(), r, fc));
        }
        for (auto &[key, g] : groups)
            checksum += g[0] * 1e-6 + g[1] * 1e-6 + g[2] + g[3];
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    return finish(cluster, shuffle.recordsAdded(),
                  shuffle.bytesWritten(), checksum);
}

FlinkQueryResult
runQueryB(FlinkCluster &cluster, const TpchData &db)
{
    cluster.resetBreakdowns();
    int n = cluster.numWorkers();

    // Region per supplier is a broadcast-sized lookup table.
    std::vector<std::int32_t> suppRegion(db.supplier.size() + 1, 0);
    for (const auto &s : db.supplier)
        suppRegion[s.key] = db.nation[s.nationKey].regionKey;

    // Stage 1: co-partition supplier and partsupp on suppKey.
    FlinkShuffle s1supp(cluster, "qb_supp", "tpch.Supplier",
                        {"key", "nationKey"});
    FlinkShuffle s1ps(cluster, "qb_ps", "tpch.PartSupp",
                      {"partKey", "suppKey", "supplyCost"});
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        Stopwatch sw;
        for (std::size_t i = w; i < db.supplier.size();
             i += static_cast<std::size_t>(n)) {
            Address row = makeSupplierRow(jvm, db.supplier[i]);
            s1supp.add(w,
                       cluster.ownerOf(static_cast<std::uint64_t>(
                           db.supplier[i].key)),
                       row);
        }
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    s1supp.writePhase();
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        Stopwatch sw;
        for (std::size_t i = w; i < db.partsupp.size();
             i += static_cast<std::size_t>(n)) {
            Address row = makePartSuppRow(jvm, db.partsupp[i]);
            s1ps.add(w,
                     cluster.ownerOf(static_cast<std::uint64_t>(
                         db.partsupp[i].suppKey)),
                     row);
        }
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    s1ps.writePhase();

    // Stage 2: join on suppKey, emit (partKey, region, cost) keyed by
    // partKey; reduce to the min cost per (part, region).
    FlinkShuffle s2(cluster, "qb_join", "tpch.GroupRow",
                    {"k1", "k2", "sum1"});
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        auto supp = s1supp.read(w);
        auto ps = s1ps.read(w);
        Stopwatch sw;
        Klass *sk = jvm.klasses().load("tpch.Supplier");
        const FieldDesc &sKey = sk->requireField("key");
        const FieldDesc &sNation = sk->requireField("nationKey");
        std::unordered_map<std::int32_t, std::int32_t> region;
        for (std::size_t i = 0; i < supp->size(); ++i) {
            Address r = supp->get(i);
            region[field::get<std::int32_t>(jvm.heap(), r, sKey)] =
                db.nation[field::get<std::int32_t>(jvm.heap(), r,
                                                   sNation)]
                    .regionKey;
        }
        Klass *pk = jvm.klasses().load("tpch.PartSupp");
        const FieldDesc &pPart = pk->requireField("partKey");
        const FieldDesc &pSupp = pk->requireField("suppKey");
        const FieldDesc &pCost = pk->requireField("supplyCost");
        for (std::size_t i = 0; i < ps->size(); ++i) {
            Address r = ps->get(i);
            std::int32_t part =
                field::get<std::int32_t>(jvm.heap(), r, pPart);
            std::int32_t su =
                field::get<std::int32_t>(jvm.heap(), r, pSupp);
            double cost = field::get<double>(jvm.heap(), r, pCost);
            auto it = region.find(su);
            if (it == region.end())
                continue;
            Address row = makeGroupRow(jvm, part, it->second, cost,
                                       0, 0, 1);
            s2.add(w,
                   cluster.ownerOf(static_cast<std::uint64_t>(part)),
                   row);
        }
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    s2.writePhase();

    double checksum = 0;
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        auto rows = s2.read(w);
        Stopwatch sw;
        Klass *k = jvm.klasses().load("tpch.GroupRow");
        const FieldDesc &fk1 = k->requireField("k1");
        const FieldDesc &fk2 = k->requireField("k2");
        const FieldDesc &fs1 = k->requireField("sum1");
        std::unordered_map<std::int64_t, double> best;
        for (std::size_t i = 0; i < rows->size(); ++i) {
            Address r = rows->get(i);
            std::int64_t key =
                field::get<std::int64_t>(jvm.heap(), r, fk1) * 8 +
                field::get<std::int64_t>(jvm.heap(), r, fk2);
            double cost = field::get<double>(jvm.heap(), r, fs1);
            auto it = best.find(key);
            if (it == best.end() || cost < it->second)
                best[key] = cost;
        }
        for (auto &[key, cost] : best)
            checksum += cost;
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    (void)suppRegion;
    return finish(cluster,
                  s1supp.recordsAdded() + s1ps.recordsAdded() +
                      s2.recordsAdded(),
                  s1supp.bytesWritten() + s1ps.bytesWritten() +
                      s2.bytesWritten(),
                  checksum);
}

FlinkQueryResult
runQueryC(FlinkCluster &cluster, const TpchData &db)
{
    cluster.resetBreakdowns();
    int n = cluster.numWorkers();
    const std::int32_t date = 1100;

    // Stage 1: co-partition BUILDING customers and pre-date orders on
    // custKey. Full rows travel; consumers need only a few fields —
    // the lazy-deserialization case.
    FlinkShuffle s1cust(cluster, "qc_cust", "tpch.Customer", {"key"});
    FlinkShuffle s1ord(cluster, "qc_ord", "tpch.Order",
                       {"key", "custKey", "orderDate"});
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        Stopwatch sw;
        for (std::size_t i = w; i < db.customer.size();
             i += static_cast<std::size_t>(n)) {
            if (db.customer[i].mktsegment != "BUILDING")
                continue;
            Address row = makeCustomerRow(jvm, db.customer[i]);
            s1cust.add(w,
                       cluster.ownerOf(static_cast<std::uint64_t>(
                           db.customer[i].key)),
                       row);
        }
        for (std::size_t i = w; i < db.orders.size();
             i += static_cast<std::size_t>(n)) {
            if (db.orders[i].orderDate >= date)
                continue;
            Address row = makeOrderRow(jvm, db.orders[i]);
            s1ord.add(w,
                      cluster.ownerOf(static_cast<std::uint64_t>(
                          db.orders[i].custKey)),
                      row);
        }
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    s1cust.writePhase();
    s1ord.writePhase();

    // Stage 2: join, re-key the surviving orders by orderKey.
    FlinkShuffle s2(cluster, "qc_okeys", "tpch.KeyedDouble",
                    {"key", "value"});
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        auto cust = s1cust.read(w);
        auto ord = s1ord.read(w);
        Stopwatch sw;
        Klass *ck = jvm.klasses().load("tpch.Customer");
        const FieldDesc &cKey = ck->requireField("key");
        std::unordered_set<std::int32_t> buildings;
        for (std::size_t i = 0; i < cust->size(); ++i)
            buildings.insert(field::get<std::int32_t>(
                jvm.heap(), cust->get(i), cKey));
        Klass *ok = jvm.klasses().load("tpch.Order");
        const FieldDesc &oKey = ok->requireField("key");
        const FieldDesc &oCust = ok->requireField("custKey");
        for (std::size_t i = 0; i < ord->size(); ++i) {
            Address r = ord->get(i);
            if (!buildings.count(field::get<std::int32_t>(
                    jvm.heap(), r, oCust)))
                continue;
            std::int64_t okey =
                field::get<std::int64_t>(jvm.heap(), r, oKey);
            s2.add(w,
                   cluster.ownerOf(static_cast<std::uint64_t>(okey)),
                   makeKeyedDouble(jvm, okey, 0));
        }
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    s2.writePhase();

    // Stage 3: lineitems after the date, shuffled by orderKey.
    FlinkShuffle s3(cluster, "qc_li", "tpch.Lineitem",
                    {"orderKey", "extendedPrice", "discount"});
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        Stopwatch sw;
        for (std::size_t i = w; i < db.lineitem.size();
             i += static_cast<std::size_t>(n)) {
            if (db.lineitem[i].shipDate <= date)
                continue;
            Address row = makeLineitemRow(jvm, db.lineitem[i]);
            s3.add(w,
                   cluster.ownerOf(static_cast<std::uint64_t>(
                       db.lineitem[i].orderKey)),
                   row);
        }
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    s3.writePhase();

    std::vector<double> revenues;
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        auto keys = s2.read(w);
        auto lis = s3.read(w);
        Stopwatch sw;
        Klass *kd = jvm.klasses().load("tpch.KeyedDouble");
        const FieldDesc &kKey = kd->requireField("key");
        std::unordered_set<std::int64_t> pending;
        for (std::size_t i = 0; i < keys->size(); ++i)
            pending.insert(field::get<std::int64_t>(
                jvm.heap(), keys->get(i), kKey));
        Klass *lk = jvm.klasses().load("tpch.Lineitem");
        const FieldDesc &lOrd = lk->requireField("orderKey");
        const FieldDesc &lExt = lk->requireField("extendedPrice");
        const FieldDesc &lDisc = lk->requireField("discount");
        std::unordered_map<std::int64_t, double> rev;
        for (std::size_t i = 0; i < lis->size(); ++i) {
            Address r = lis->get(i);
            std::int64_t okey =
                field::get<std::int64_t>(jvm.heap(), r, lOrd);
            if (!pending.count(okey))
                continue;
            rev[okey] +=
                field::get<double>(jvm.heap(), r, lExt) *
                (1 - field::get<double>(jvm.heap(), r, lDisc));
        }
        for (auto &[okey, v] : rev)
            revenues.push_back(v);
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    std::sort(revenues.rbegin(), revenues.rend());
    double checksum = 0;
    for (std::size_t i = 0; i < revenues.size() && i < 10; ++i)
        checksum += revenues[i];

    return finish(cluster,
                  s1cust.recordsAdded() + s1ord.recordsAdded() +
                      s2.recordsAdded() + s3.recordsAdded(),
                  s1cust.bytesWritten() + s1ord.bytesWritten() +
                      s2.bytesWritten() + s3.bytesWritten(),
                  checksum);
}

FlinkQueryResult
runQueryD(FlinkCluster &cluster, const TpchData &db)
{
    cluster.resetBreakdowns();
    int n = cluster.numWorkers();
    const std::int32_t yearStart = 730;
    const std::int32_t yearEnd = yearStart + 365;

    FlinkShuffle s1li(cluster, "qd_li", "tpch.Lineitem",
                      {"orderKey"});
    FlinkShuffle s1ord(cluster, "qd_ord", "tpch.Order",
                       {"key", "orderDate"});
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        Stopwatch sw;
        for (std::size_t i = w; i < db.lineitem.size();
             i += static_cast<std::size_t>(n)) {
            if (db.lineitem[i].commitDate >=
                db.lineitem[i].receiptDate)
                continue; // not late
            Address row = makeLineitemRow(jvm, db.lineitem[i]);
            s1li.add(w,
                     cluster.ownerOf(static_cast<std::uint64_t>(
                         db.lineitem[i].orderKey)),
                     row);
        }
        for (std::size_t i = w; i < db.orders.size();
             i += static_cast<std::size_t>(n)) {
            if (db.orders[i].orderDate < yearStart ||
                db.orders[i].orderDate >= yearEnd)
                continue;
            Address row = makeOrderRow(jvm, db.orders[i]);
            s1ord.add(w,
                      cluster.ownerOf(static_cast<std::uint64_t>(
                          db.orders[i].key)),
                      row);
        }
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    s1li.writePhase();
    s1ord.writePhase();

    std::uint64_t quarters[4] = {0, 0, 0, 0};
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        auto lis = s1li.read(w);
        auto ords = s1ord.read(w);
        Stopwatch sw;
        Klass *lk = jvm.klasses().load("tpch.Lineitem");
        const FieldDesc &lOrd = lk->requireField("orderKey");
        std::unordered_set<std::int64_t> late;
        for (std::size_t i = 0; i < lis->size(); ++i)
            late.insert(field::get<std::int64_t>(
                jvm.heap(), lis->get(i), lOrd));
        Klass *ok = jvm.klasses().load("tpch.Order");
        const FieldDesc &oKey = ok->requireField("key");
        const FieldDesc &oDate = ok->requireField("orderDate");
        for (std::size_t i = 0; i < ords->size(); ++i) {
            Address r = ords->get(i);
            if (!late.count(field::get<std::int64_t>(jvm.heap(), r,
                                                     oKey)))
                continue;
            std::int32_t d =
                field::get<std::int32_t>(jvm.heap(), r, oDate) -
                yearStart;
            ++quarters[std::min(d / 92, 3)];
        }
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    double checksum = 0;
    for (int q = 0; q < 4; ++q)
        checksum += static_cast<double>(quarters[q]) * (q + 1);

    return finish(cluster, s1li.recordsAdded() + s1ord.recordsAdded(),
                  s1li.bytesWritten() + s1ord.bytesWritten(),
                  checksum);
}

FlinkQueryResult
runQueryE(FlinkCluster &cluster, const TpchData &db)
{
    cluster.resetBreakdowns();
    int n = cluster.numWorkers();

    // Stage 1: returned lineitems and orders co-partitioned on
    // orderKey.
    FlinkShuffle s1li(cluster, "qe_li", "tpch.Lineitem",
                      {"orderKey", "extendedPrice", "discount"});
    FlinkShuffle s1ord(cluster, "qe_ord", "tpch.Order",
                       {"key", "custKey"});
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        Stopwatch sw;
        for (std::size_t i = w; i < db.lineitem.size();
             i += static_cast<std::size_t>(n)) {
            if (db.lineitem[i].returnFlag != 'R')
                continue;
            Address row = makeLineitemRow(jvm, db.lineitem[i]);
            s1li.add(w,
                     cluster.ownerOf(static_cast<std::uint64_t>(
                         db.lineitem[i].orderKey)),
                     row);
        }
        for (std::size_t i = w; i < db.orders.size();
             i += static_cast<std::size_t>(n)) {
            Address row = makeOrderRow(jvm, db.orders[i]);
            s1ord.add(w,
                      cluster.ownerOf(static_cast<std::uint64_t>(
                          db.orders[i].key)),
                      row);
        }
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    s1li.writePhase();
    s1ord.writePhase();

    // Stage 2: revenue per customer.
    FlinkShuffle s2(cluster, "qe_rev", "tpch.KeyedDouble",
                    {"key", "value"});
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        auto lis = s1li.read(w);
        auto ords = s1ord.read(w);
        Stopwatch sw;
        Klass *ok = jvm.klasses().load("tpch.Order");
        const FieldDesc &oKey = ok->requireField("key");
        const FieldDesc &oCust = ok->requireField("custKey");
        std::unordered_map<std::int64_t, std::int32_t> custOf;
        for (std::size_t i = 0; i < ords->size(); ++i) {
            Address r = ords->get(i);
            custOf[field::get<std::int64_t>(jvm.heap(), r, oKey)] =
                field::get<std::int32_t>(jvm.heap(), r, oCust);
        }
        Klass *lk = jvm.klasses().load("tpch.Lineitem");
        const FieldDesc &lOrd = lk->requireField("orderKey");
        const FieldDesc &lExt = lk->requireField("extendedPrice");
        const FieldDesc &lDisc = lk->requireField("discount");
        std::unordered_map<std::int32_t, double> rev;
        for (std::size_t i = 0; i < lis->size(); ++i) {
            Address r = lis->get(i);
            auto it = custOf.find(
                field::get<std::int64_t>(jvm.heap(), r, lOrd));
            if (it == custOf.end())
                continue;
            rev[it->second] +=
                field::get<double>(jvm.heap(), r, lExt) *
                (1 - field::get<double>(jvm.heap(), r, lDisc));
        }
        for (auto &[cust, v] : rev) {
            s2.add(w,
                   cluster.ownerOf(static_cast<std::uint64_t>(cust)),
                   makeKeyedDouble(jvm, cust, v));
        }
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    s2.writePhase();

    // Stage 3: customers joined in; sort by lost revenue.
    FlinkShuffle s3(cluster, "qe_cust", "tpch.Customer",
                    {"key", "name"});
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        Stopwatch sw;
        for (std::size_t i = w; i < db.customer.size();
             i += static_cast<std::size_t>(n)) {
            Address row = makeCustomerRow(jvm, db.customer[i]);
            s3.add(w,
                   cluster.ownerOf(static_cast<std::uint64_t>(
                       db.customer[i].key)),
                   row);
        }
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    s3.writePhase();

    std::vector<std::pair<double, std::string>> ranked;
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        auto revs = s2.read(w);
        auto custs = s3.read(w);
        Stopwatch sw;
        Klass *ck = jvm.klasses().load("tpch.Customer");
        const FieldDesc &cKey = ck->requireField("key");
        const FieldDesc &cName = ck->requireField("name");
        std::unordered_map<std::int32_t, std::string> names;
        for (std::size_t i = 0; i < custs->size(); ++i) {
            Address r = custs->get(i);
            Address nm = field::getRef(jvm.heap(), r, cName);
            names[field::get<std::int32_t>(jvm.heap(), r, cKey)] =
                jvm.builder().stringValue(nm);
        }
        Klass *kd = jvm.klasses().load("tpch.KeyedDouble");
        const FieldDesc &kKey = kd->requireField("key");
        const FieldDesc &kVal = kd->requireField("value");
        std::unordered_map<std::int64_t, double> total;
        for (std::size_t i = 0; i < revs->size(); ++i) {
            Address r = revs->get(i);
            total[field::get<std::int64_t>(jvm.heap(), r, kKey)] +=
                field::get<double>(jvm.heap(), r, kVal);
        }
        for (auto &[cust, v] : total) {
            auto it = names.find(static_cast<std::int32_t>(cust));
            ranked.emplace_back(v, it == names.end() ? ""
                                                     : it->second);
        }
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    std::sort(ranked.rbegin(), ranked.rend());
    double checksum = 0;
    for (std::size_t i = 0; i < ranked.size() && i < 20; ++i)
        checksum += ranked[i].first + ranked[i].second.size();

    return finish(cluster,
                  s1li.recordsAdded() + s1ord.recordsAdded() +
                      s2.recordsAdded() + s3.recordsAdded(),
                  s1li.bytesWritten() + s1ord.bytesWritten() +
                      s2.bytesWritten() + s3.bytesWritten(),
                  checksum);
}

FlinkQueryResult
runQuery(char which, FlinkCluster &cluster, const TpchData &db)
{
    switch (which) {
      case 'A': return runQueryA(cluster, db);
      case 'B': return runQueryB(cluster, db);
      case 'C': return runQueryC(cluster, db);
      case 'D': return runQueryD(cluster, db);
      case 'E': return runQueryE(cluster, db);
      default: fatal("runQuery: unknown query");
    }
}

const char *
queryDescription(char which)
{
    switch (which) {
      case 'A':
        return "Report pricing details for all items shipped within "
               "the last 120 days.";
      case 'B':
        return "List the minimum cost supplier for each region for "
               "each item in the database.";
      case 'C':
        return "Retrieve the shipping priority and potential revenue "
               "of all pending orders.";
      case 'D':
        return "Count the number of late orders in each quarter of a "
               "given year.";
      case 'E':
        return "Report all items returned by customers sorted by the "
               "lost revenue.";
      default:
        return "unknown";
    }
}

} // namespace skyway
