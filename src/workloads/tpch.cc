#include "workloads/tpch.hh"

namespace skyway
{

namespace
{

const char *regionNames[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                              "MIDDLE EAST"};

const char *segments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "HOUSEHOLD", "MACHINERY"};

const char *priorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};

const char *shipModes[7] = {"AIR", "FOB", "MAIL", "RAIL", "REG AIR",
                            "SHIP", "TRUCK"};

} // namespace

TpchData
generateTpch(const TpchSpec &spec)
{
    Rng rng(spec.seed);
    TpchData db;

    for (std::int32_t r = 0; r < 5; ++r)
        db.region.push_back({r, regionNames[r]});
    for (std::int32_t n = 0; n < 25; ++n)
        db.nation.push_back(
            {n, "NATION#" + std::to_string(n),
             static_cast<std::int32_t>(n % 5)});

    std::size_t ncust = spec.customers();
    db.customer.reserve(ncust);
    for (std::size_t c = 0; c < ncust; ++c) {
        db.customer.push_back(
            {static_cast<std::int32_t>(c + 1),
             "Customer#" + std::to_string(c + 1),
             static_cast<std::int32_t>(rng.nextBounded(25)),
             rng.nextDouble() * 11000.0 - 1000.0,
             segments[rng.nextBounded(5)]});
    }

    std::size_t nsupp = spec.suppliers();
    db.supplier.reserve(nsupp);
    for (std::size_t s = 0; s < nsupp; ++s) {
        db.supplier.push_back(
            {static_cast<std::int32_t>(s + 1),
             "Supplier#" + std::to_string(s + 1),
             static_cast<std::int32_t>(rng.nextBounded(25)),
             rng.nextDouble() * 11000.0 - 1000.0});
    }

    std::size_t npart = spec.parts();
    db.part.reserve(npart);
    for (std::size_t p = 0; p < npart; ++p) {
        db.part.push_back(
            {static_cast<std::int32_t>(p + 1),
             "Part#" + std::to_string(p + 1),
             "Manufacturer#" + std::to_string(1 + p % 5),
             900.0 + (p % 1000) + rng.nextDouble()});
    }

    db.partsupp.reserve(spec.partsupps());
    for (std::size_t p = 0; p < npart; ++p) {
        for (int i = 0; i < 4; ++i) {
            db.partsupp.push_back(
                {static_cast<std::int32_t>(p + 1),
                 static_cast<std::int32_t>(
                     1 + (p * 4 + i * 7) % nsupp),
                 rng.nextDouble() * 1000.0});
        }
    }

    std::size_t norders = spec.orders();
    db.orders.reserve(norders);
    db.lineitem.reserve(norders * 4);
    for (std::size_t o = 0; o < norders; ++o) {
        std::int64_t okey = static_cast<std::int64_t>(o + 1);
        auto odate = static_cast<std::int32_t>(
            rng.nextBounded(tpchMaxDate - 151));
        int nlines = 1 + static_cast<int>(rng.nextBounded(7));
        double total = 0;
        char ostatus = 'O';
        for (int l = 0; l < nlines; ++l) {
            TpchData::Lineitem li;
            li.orderKey = okey;
            li.partKey = static_cast<std::int32_t>(
                1 + rng.nextBounded(npart));
            li.suppKey = static_cast<std::int32_t>(
                1 + rng.nextBounded(nsupp));
            li.lineNumber = l + 1;
            li.quantity = 1.0 + rng.nextBounded(50);
            li.extendedPrice =
                li.quantity * (900.0 + rng.nextBounded(100000) / 100.0);
            li.discount = rng.nextBounded(11) / 100.0;
            li.tax = rng.nextBounded(9) / 100.0;
            li.shipDate =
                odate + 1 + static_cast<std::int32_t>(
                                rng.nextBounded(121));
            li.commitDate =
                odate + 30 + static_cast<std::int32_t>(
                                 rng.nextBounded(61));
            li.receiptDate =
                li.shipDate + 1 + static_cast<std::int32_t>(
                                      rng.nextBounded(30));
            li.returnFlag =
                li.receiptDate <= tpchMaxDate - 300
                    ? (rng.nextBounded(2) ? 'R' : 'A')
                    : 'N';
            li.lineStatus = li.shipDate > tpchMaxDate - 180 ? 'O' : 'F';
            li.shipMode = shipModes[rng.nextBounded(7)];
            total += li.extendedPrice * (1 - li.discount);
            if (li.lineStatus == 'F')
                ostatus = 'F';
            db.lineitem.push_back(std::move(li));
        }
        db.orders.push_back(
            {okey,
             static_cast<std::int32_t>(1 + rng.nextBounded(ncust)),
             ostatus, total, odate, priorities[rng.nextBounded(5)]});
    }
    return db;
}

void
defineTpchClasses(ClassCatalog &catalog)
{
    catalog.define(ClassDef{
        "tpch.Customer",
        "",
        {
            {"key", FieldType::Int, ""},
            {"name", FieldType::Ref, "java.lang.String"},
            {"nationKey", FieldType::Int, ""},
            {"acctbal", FieldType::Double, ""},
            {"mktsegment", FieldType::Ref, "java.lang.String"},
        },
    });
    catalog.define(ClassDef{
        "tpch.Supplier",
        "",
        {
            {"key", FieldType::Int, ""},
            {"name", FieldType::Ref, "java.lang.String"},
            {"nationKey", FieldType::Int, ""},
            {"acctbal", FieldType::Double, ""},
        },
    });
    catalog.define(ClassDef{
        "tpch.Part",
        "",
        {
            {"key", FieldType::Int, ""},
            {"name", FieldType::Ref, "java.lang.String"},
            {"mfgr", FieldType::Ref, "java.lang.String"},
            {"retailPrice", FieldType::Double, ""},
        },
    });
    catalog.define(ClassDef{
        "tpch.PartSupp",
        "",
        {
            {"partKey", FieldType::Int, ""},
            {"suppKey", FieldType::Int, ""},
            {"supplyCost", FieldType::Double, ""},
        },
    });
    catalog.define(ClassDef{
        "tpch.Order",
        "",
        {
            {"key", FieldType::Long, ""},
            {"custKey", FieldType::Int, ""},
            {"orderStatus", FieldType::Char, ""},
            {"totalPrice", FieldType::Double, ""},
            {"orderDate", FieldType::Int, ""},
            {"orderPriority", FieldType::Ref, "java.lang.String"},
        },
    });
    catalog.define(ClassDef{
        "tpch.Lineitem",
        "",
        {
            {"orderKey", FieldType::Long, ""},
            {"partKey", FieldType::Int, ""},
            {"suppKey", FieldType::Int, ""},
            {"lineNumber", FieldType::Int, ""},
            {"quantity", FieldType::Double, ""},
            {"extendedPrice", FieldType::Double, ""},
            {"discount", FieldType::Double, ""},
            {"tax", FieldType::Double, ""},
            {"returnFlag", FieldType::Char, ""},
            {"lineStatus", FieldType::Char, ""},
            {"shipDate", FieldType::Int, ""},
            {"commitDate", FieldType::Int, ""},
            {"receiptDate", FieldType::Int, ""},
            {"shipMode", FieldType::Ref, "java.lang.String"},
        },
    });
    // Intermediate tuple shapes used by the query plans.
    catalog.define(ClassDef{
        "tpch.KeyedDouble",
        "",
        {
            {"key", FieldType::Long, ""},
            {"value", FieldType::Double, ""},
        },
    });
    catalog.define(ClassDef{
        "tpch.GroupRow",
        "",
        {
            {"k1", FieldType::Long, ""},
            {"k2", FieldType::Long, ""},
            {"sum1", FieldType::Double, ""},
            {"sum2", FieldType::Double, ""},
            {"sum3", FieldType::Double, ""},
            {"count", FieldType::Long, ""},
        },
    });
    catalog.define(ClassDef{
        "tpch.NamedDouble",
        "",
        {
            {"name", FieldType::Ref, "java.lang.String"},
            {"value", FieldType::Double, ""},
        },
    });
}

} // namespace skyway
