/**
 * @file
 * The paper's Figure 2 program, end to end: a Spark job that reads
 * date strings, ships a closure (the DateParser) from the driver to
 * the workers — *closure serialization* — has each worker parse its
 * lines into Date objects (each holding Year4D/Month2D/Day2D
 * children), and finally collect()s every Date back to the driver —
 * *data serialization*. The closure always travels through the Java
 * serializer; the Date results travel through the configured data
 * serializer, here Skyway.
 */

#include <cstdio>

#include "minispark/minispark.hh"
#include "support/rng.hh"
#include "workloads/text.hh"

using namespace skyway;

namespace
{

ClassCatalog
dateCatalog()
{
    ClassCatalog cat = makeStandardCatalog();
    cat.define(ClassDef{"Year4D", "", {{"value", FieldType::Int, ""}}});
    cat.define(
        ClassDef{"Month2D", "", {{"value", FieldType::Int, ""}}});
    cat.define(ClassDef{"Day2D", "", {{"value", FieldType::Int, ""}}});
    cat.define(ClassDef{
        "Date",
        "",
        {
            {"year", FieldType::Ref, "Year4D"},
            {"month", FieldType::Ref, "Month2D"},
            {"day", FieldType::Ref, "Day2D"},
        },
    });
    cat.define(ClassDef{
        "DateParser",
        "",
        {
            {"separator", FieldType::Ref, "java.lang.String"},
        },
    });
    return cat;
}

/** Worker-side parse(line) — the closure's lambda body. */
Address
parseDate(Jvm &jvm, const std::string &line, char sep)
{
    auto make_part = [&](const char *klass, int value) {
        Klass *k = jvm.klasses().load(klass);
        Address a = jvm.heap().allocateInstance(k);
        field::set<std::int32_t>(jvm.heap(), a,
                                 k->requireField("value"), value);
        return a;
    };
    std::size_t p1 = line.find(sep);
    std::size_t p2 = line.find(sep, p1 + 1);
    int y = std::atoi(line.substr(0, p1).c_str());
    int m = std::atoi(line.substr(p1 + 1, p2 - p1 - 1).c_str());
    int d = std::atoi(line.substr(p2 + 1).c_str());

    LocalRoots r(jvm.heap());
    std::size_t ry = r.push(make_part("Year4D", y));
    std::size_t rm = r.push(make_part("Month2D", m));
    std::size_t rd = r.push(make_part("Day2D", d));
    Klass *dateK = jvm.klasses().load("Date");
    Address date = jvm.heap().allocateInstance(dateK);
    field::setRef(jvm.heap(), date, dateK->requireField("year"),
                  r.get(ry));
    field::setRef(jvm.heap(), date, dateK->requireField("month"),
                  r.get(rm));
    field::setRef(jvm.heap(), date, dateK->requireField("day"),
                  r.get(rd));
    return date;
}

} // namespace

int
main()
{
    ClassCatalog cat = dateCatalog();

    // The input "text file": date strings.
    Rng rng(42);
    std::vector<std::string> lines;
    for (int i = 0; i < 3000; ++i) {
        lines.push_back(std::to_string(1990 + rng.nextBounded(35)) +
                        "-" +
                        std::to_string(1 + rng.nextBounded(12)) + "-" +
                        std::to_string(1 + rng.nextBounded(28)));
    }

    // Skyway as the data serializer (closures still use Java's).
    ClusterSkywayFactory factory;
    SparkCluster cluster(cat, factory, SparkConfig{});
    factory.bind(cluster);
    int n = cluster.numWorkers();

    // Closure serialization: build the DateParser on the DRIVER and
    // broadcast it — the paper's "parser also needs to be serialized
    // during closure serialization".
    Jvm &driver = cluster.driver();
    Klass *parserK = driver.klasses().load("DateParser");
    LocalRoots droots(driver.heap());
    std::size_t sep = droots.push(driver.builder().makeString("-"));
    Address parser = driver.heap().allocateInstance(parserK);
    field::setRef(driver.heap(), parser,
                  parserK->requireField("separator"), droots.get(sep));
    ClosureBroadcast closure(cluster, parser);
    std::printf("closure: DateParser broadcast to %d workers "
                "(%llu bytes each, via the Java serializer)\n",
                n,
                static_cast<unsigned long long>(
                    closure.bytesPerWorker()));

    // Map: each worker parses its split using ITS copy of the
    // closure, then the collect() action brings every Date home.
    CollectAction collect(cluster);
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        Address my_parser = closure.onWorker(w);
        Klass *pk = jvm.heap().klassOf(my_parser);
        Address sep_str = field::getRef(
            jvm.heap(), my_parser, pk->requireField("separator"));
        char sep_ch = jvm.builder().stringValue(sep_str)[0];

        Stopwatch sw;
        for (std::size_t i = w; i < lines.size();
             i += static_cast<std::size_t>(n))
            collect.add(w, parseDate(jvm, lines[i], sep_ch));
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    auto dates = collect.collect();

    // The driver uses the Dates directly.
    Klass *dateK = driver.klasses().load("Date");
    long yearSum = 0;
    for (std::size_t i = 0; i < dates->size(); ++i) {
        Address date = dates->get(i);
        Address year = field::getRef(driver.heap(), date,
                                     dateK->requireField("year"));
        yearSum += reflect::getField<std::int32_t>(driver.heap(), year,
                                                   "value");
    }
    std::printf("collect: %zu Date objects on the driver "
                "(%llu bytes over the wire, via Skyway)\n",
                dates->size(),
                static_cast<unsigned long long>(
                    collect.bytesCollected()));
    std::printf("driver:  mean year of the dataset = %.1f\n",
                static_cast<double>(yearSum) /
                    static_cast<double>(dates->size()));

    PhaseBreakdown b = cluster.averageBreakdown();
    std::printf("cost:    compute %.2f ms, ser %.2f ms, deser %.2f "
                "ms, read %.2f ms per worker\n",
                b.computeNs / 1e6, b.serNs / 1e6, b.deserNs / 1e6,
                b.readIoNs / 1e6);
    return 0;
}
