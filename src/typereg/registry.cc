#include "typereg/registry.hh"

#include "klass/wirehint.hh"
#include "support/bytebuffer.hh"

namespace skyway
{

namespace
{

/** Hint wire form: 0–100 = saving percent, 255 = no hint cached. */
std::uint8_t
hintByte(int h)
{
    return (h >= 0 && h <= 100) ? static_cast<std::uint8_t>(h) : 255;
}

int
hintFromByte(std::uint8_t b)
{
    return b <= 100 ? static_cast<int>(b) : -1;
}

} // namespace

TypeRegistryDriver::TypeRegistryDriver(ClusterNetwork &net, NodeId node,
                                       KlassTable &klasses)
    : net_(net), node_(node), klasses_(klasses)
{
    // Algorithm 1, driver part 1: number every class already loaded in
    // the driver JVM.
    for (Klass *k : klasses_.loadedKlasses())
        k->setTid(idForClass(k->name()));

    // Classes the driver loads later get numbered on load.
    klasses_.setLoadHook(
        [](void *ctx, Klass &k) {
            auto *self = static_cast<TypeRegistryDriver *>(ctx);
            k.setTid(self->idForClass(k.name()));
        },
        this);

    // Algorithm 1, driver part 2: the daemon serving worker requests.
    net_.registerHandler(
        node_, [this](NodeId src, int tag,
                      const std::vector<std::uint8_t> &payload) {
            return handle(src, tag, payload);
        });
}

std::int32_t
TypeRegistryDriver::idForClass(const std::string &name)
{
    MutexLock lock(mutex_);
    auto it = registry_.find(name);
    if (it != registry_.end())
        return it->second;
    auto id = static_cast<std::int32_t>(names_.size());
    registry_.emplace(name, id);
    names_.push_back(name);
    return id;
}

std::string
TypeRegistryDriver::nameForId(std::int32_t id)
{
    MutexLock lock(mutex_);
    panicIf(id < 0 || static_cast<std::size_t>(id) >= names_.size(),
            "TypeRegistryDriver: unknown type id " + std::to_string(id));
    return names_[id];
}

Klass *
TypeRegistryDriver::klassForId(std::int32_t id)
{
    // nameForId locks internally; klasses_.load() must run unlocked
    // (its load hook re-enters idForClass).
    Klass *k = klasses_.load(nameForId(id));
    if (k->tid() == Klass::unregisteredTid)
        k->setTid(id);
    return k;
}

Klass *
TypeRegistryDriver::tryKlassForId(std::int32_t id)
{
    {
        MutexLock lock(mutex_);
        if (id < 0 || static_cast<std::size_t>(id) >= names_.size())
            return nullptr;
    }
    return klassForId(id);
}

int
TypeRegistryDriver::encodingHint(std::int32_t id)
{
    {
        MutexLock lock(mutex_);
        auto it = hints_.find(id);
        if (it != hints_.end())
            return it->second;
        if (id < 0 || static_cast<std::size_t>(id) >= names_.size())
            return -1;
    }
    // Compute from the class layout: a local load plus arithmetic,
    // outside mutex_ (the load hook re-enters idForClass), never a
    // network round trip — the driver is the registry.
    Klass *k = klassForId(id);
    int h = compactSavingPercentEstimate(k, k->format());
    MutexLock lock(mutex_);
    hints_[id] = h;
    return h;
}

std::vector<std::uint8_t>
TypeRegistryDriver::encodeView() const
{
    MutexLock lock(mutex_);
    VectorSink sink;
    sink.writeVarU64(names_.size());
    for (std::size_t id = 0; id < names_.size(); ++id) {
        sink.writeString(names_[id]);
        // Hints the driver happens to have cached ride along; the
        // rest stay "unknown" (a view pull must not force-load every
        // registered class on the driver).
        auto it = hints_.find(static_cast<std::int32_t>(id));
        sink.writeU8(hintByte(it == hints_.end() ? -1 : it->second));
    }
    return sink.takeBytes();
}

std::vector<std::uint8_t>
TypeRegistryDriver::handle(NodeId, int tag,
                           const std::vector<std::uint8_t> &payload)
{
    if (tag == regmsg::requestView) {
        {
            MutexLock lock(mutex_);
            ++stats_.viewRequestsServed;
            stats_.classStringsSent += names_.size();
        }
        return encodeView();
    }
    if (tag == regmsg::lookup) {
        // Algorithm 1 lines 13-19: register-on-first-sight. The
        // handler may run twice for one request (a timed-out and
        // resent LOOKUP on the tcp transport) — registering an
        // already-registered class is a lookup, so the protocol is
        // naturally idempotent.
        {
            MutexLock lock(mutex_);
            ++stats_.lookupsServed;
        }
        ByteSource src(payload);
        std::string name = src.readString();
        std::int32_t id = idForClass(name);
        VectorSink sink;
        sink.writeI32(id);
        // The per-class encoding hint rides every LOOKUP reply, so a
        // worker that registers a class also learns its compaction
        // estimate in the same round trip.
        sink.writeU8(hintByte(encodingHint(id)));
        return sink.takeBytes();
    }
    if (tag == regmsg::lookupName) {
        ByteSource src(payload);
        std::int32_t id = src.readI32();
        // An unknown id gets an empty-name reply instead of a driver
        // panic: a worker probing a forged id from a corrupt stream
        // (the SkywaySan validator) must not crash the driver.
        std::string name;
        {
            MutexLock lock(mutex_);
            ++stats_.reverseLookupsServed;
            if (id >= 0 &&
                static_cast<std::size_t>(id) < names_.size()) {
                name = names_[id];
                ++stats_.classStringsSent;
            }
        }
        // Hint computation loads the class — outside mutex_.
        int hint = name.empty() ? -1 : encodingHint(id);
        VectorSink sink;
        sink.writeString(name);
        sink.writeU8(hintByte(hint));
        return sink.takeBytes();
    }
    panic("TypeRegistryDriver: unknown message tag " +
          std::to_string(tag));
}

TypeRegistryWorker::TypeRegistryWorker(ClusterNetwork &net, NodeId node,
                                       NodeId driver, KlassTable &klasses)
    : net_(net), node_(node), driver_(driver), klasses_(klasses)
{
    // Worker part 1: pull the full current registry in one batch —
    // most classes this worker will need are already numbered.
    std::vector<std::uint8_t> reply =
        net_.request(node_, driver_, regmsg::requestView, {});
    ByteSource src(reply);
    std::size_t n = src.readVarU64();
    for (std::size_t id = 0; id < n; ++id) {
        std::string name = src.readString();
        int hint = hintFromByte(src.readU8());
        insertView(name, static_cast<std::int32_t>(id), hint);
    }

    // Number classes this worker already loaded before attaching.
    for (Klass *k : klasses_.loadedKlasses()) {
        if (k->tid() == Klass::unregisteredTid)
            k->setTid(idForClass(k->name()));
    }

    // Worker part 2: number every future class as it loads.
    klasses_.setLoadHook(
        [](void *ctx, Klass &k) {
            auto *self = static_cast<TypeRegistryWorker *>(ctx);
            k.setTid(self->idForClass(k.name()));
        },
        this);
}

void
TypeRegistryWorker::insertView(const std::string &name, std::int32_t id,
                               int hint)
{
    MutexLock lock(mutex_);
    view_[name] = id;
    idToName_[id] = name;
    if (hint >= 0)
        hints_[id] = hint;
    if (id > maxId_)
        maxId_ = id;
}

int
TypeRegistryWorker::encodingHint(std::int32_t id)
{
    MutexLock lock(mutex_);
    auto it = hints_.find(id);
    return it == hints_.end() ? -1 : it->second;
}

RequestOptions
TypeRegistryWorker::lookupOptions() const
{
    MutexLock lock(mutex_);
    return lookupOpts_;
}

std::int32_t
TypeRegistryWorker::idForClass(const std::string &name)
{
    {
        MutexLock lock(mutex_);
        auto it = view_.find(name);
        if (it != view_.end())
            return it->second;
        // Miss: one remote LOOKUP, then cached forever. (Two sender
        // threads racing on the same cold class both ask; the driver
        // answers both with the same id.)
        ++stats_.remoteLookupsIssued;
        ++stats_.classStringsSent;
    }
    VectorSink sink;
    sink.writeString(name);
    std::vector<std::uint8_t> reply =
        net_.request(node_, driver_, regmsg::lookup, sink.takeBytes(),
                     lookupOptions());
    ByteSource src(reply);
    std::int32_t id = src.readI32();
    insertView(name, id, hintFromByte(src.readU8()));
    return id;
}

std::string
TypeRegistryWorker::nameForId(std::int32_t id)
{
    {
        MutexLock lock(mutex_);
        auto it = idToName_.find(id);
        if (it != idToName_.end())
            return it->second;
        // Stale view: the id was assigned after our snapshot.
        ++stats_.remoteLookupsIssued;
    }
    VectorSink sink;
    sink.writeI32(id);
    std::vector<std::uint8_t> reply =
        net_.request(node_, driver_, regmsg::lookupName,
                     sink.takeBytes(), lookupOptions());
    ByteSource src(reply);
    std::string name = src.readString();
    panicIf(name.empty(), "TypeRegistryWorker: unknown type id " +
                              std::to_string(id));
    insertView(name, id, hintFromByte(src.readU8()));
    return name;
}

Klass *
TypeRegistryWorker::klassForId(std::int32_t id)
{
    std::string name;
    {
        MutexLock lock(mutex_);
        auto it = idToName_.find(id);
        if (it != idToName_.end())
            name = it->second;
    }
    if (name.empty())
        name = nameForId(id);
    Klass *k = klasses_.findLoaded(name);
    if (k)
        return k;
    // Known name, not yet loaded: instruct the class loader (unlocked
    // — the load hook re-enters idForClass).
    return klasses_.load(name);
}

Klass *
TypeRegistryWorker::tryKlassForId(std::int32_t id)
{
    bool known;
    {
        MutexLock lock(mutex_);
        known = idToName_.count(id) != 0;
        if (!known)
            ++stats_.remoteLookupsIssued;
    }
    if (!known) {
        // Graceful stale-view probe: an empty-name reply means no
        // registry ever assigned the id (it came from a corrupt
        // stream).
        VectorSink sink;
        sink.writeI32(id);
        std::vector<std::uint8_t> reply = net_.request(
            node_, driver_, regmsg::lookupName, sink.takeBytes(),
            lookupOptions());
        ByteSource src(reply);
        std::string name = src.readString();
        if (name.empty())
            return nullptr;
        insertView(name, id, hintFromByte(src.readU8()));
    }
    return klassForId(id);
}

} // namespace skyway
