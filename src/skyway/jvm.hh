/**
 * @file
 * The composed "JVM": one node's managed runtime — heap, class table,
 * collector, type-registry endpoint, Skyway context, and a local
 * simulated disk. The dataflow substrates, tests, benches, and
 * examples all build clusters of these.
 */

#ifndef SKYWAY_SKYWAY_JVM_HH
#define SKYWAY_SKYWAY_JVM_HH

#include <memory>

#include "gc/collector.hh"
#include "heap/objectops.hh"
#include "iomodel/disk.hh"
#include "skyway/context.hh"

namespace skyway
{

/**
 * A catalog with the bootstrap classes (String, boxes) and the
 * Skyway-internal marker classes already defined. Applications add
 * their own classes on top.
 */
ClassCatalog makeStandardCatalog();

/**
 * One simulated JVM process attached to a cluster. The node whose id
 * equals @p driver_id hosts the type-registry driver; all others run
 * registry workers that attach to it (so construct the driver's Jvm
 * first).
 */
class Jvm
{
  public:
    Jvm(const ClassCatalog &catalog, ClusterNetwork &net, NodeId id,
        NodeId driver_id, HeapConfig heap_config = HeapConfig{});

    Jvm(const Jvm &) = delete;
    Jvm &operator=(const Jvm &) = delete;

    NodeId id() const { return id_; }
    bool isDriver() const { return driver_ != nullptr; }

    ManagedHeap &heap() { return heap_; }
    KlassTable &klasses() { return klasses_; }
    GenerationalGc &gc() { return gc_; }
    ObjectBuilder &builder() { return builder_; }
    SimDisk &disk() { return disk_; }
    ClusterNetwork &net() { return net_; }

    TypeResolver &resolver();
    SkywayContext &skyway() { return *skyway_; }

    /** The registry driver; only valid on the driver node. */
    TypeRegistryDriver &registryDriver();

  private:
    NodeId id_;
    ClusterNetwork &net_;
    KlassTable klasses_;
    ManagedHeap heap_;
    GenerationalGc gc_;
    ObjectBuilder builder_;
    SimDisk disk_;
    std::unique_ptr<TypeRegistryDriver> driver_;
    std::unique_ptr<TypeRegistryWorker> worker_;
    std::unique_ptr<SkywayContext> skyway_;
};

} // namespace skyway

#endif // SKYWAY_SKYWAY_JVM_HH
