# Empty dependencies file for test_typereg.
# This may be replaced when dependencies are built.
