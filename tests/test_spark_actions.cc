/**
 * @file
 * Tests for the driver-side actions: closure broadcast (paper section
 * 2.1's closure serialization, always via the Java serializer) and
 * the collect() action (data serialization back to the driver, via
 * the configured data serializer).
 */

#include <gtest/gtest.h>

#include "minispark/apps.hh"
#include "sd/javaserializer.hh"

namespace skyway
{
namespace
{

ClassCatalog
actionCatalog()
{
    ClassCatalog cat = makeStandardCatalog();
    defineSparkAppClasses(cat);
    cat.define(ClassDef{
        "test.Closure",
        "",
        {
            {"config", FieldType::Ref, "java.lang.String"},
            {"threshold", FieldType::Int, ""},
        },
    });
    return cat;
}

TEST(ClosureBroadcast, EveryWorkerGetsAnIndependentCopy)
{
    ClassCatalog cat = actionCatalog();
    JavaSerializerFactory fac;
    SparkCluster cluster(cat, fac, SparkConfig{});

    Jvm &driver = cluster.driver();
    Klass *k = driver.klasses().load("test.Closure");
    LocalRoots r(driver.heap());
    std::size_t rs = r.push(driver.builder().makeString("mode=fast"));
    Address closure = driver.heap().allocateInstance(k);
    field::setRef(driver.heap(), closure, k->requireField("config"),
                  r.get(rs));
    field::set<std::int32_t>(driver.heap(), closure,
                             k->requireField("threshold"), 7);

    ClosureBroadcast bc(cluster, closure);
    EXPECT_GT(bc.bytesPerWorker(), 0u);
    for (int w = 0; w < cluster.numWorkers(); ++w) {
        Jvm &jvm = cluster.worker(w);
        Address copy = bc.onWorker(w);
        ASSERT_NE(copy, nullAddr);
        EXPECT_TRUE(jvm.heap().contains(copy))
            << "copy must live on the worker's own heap";
        EXPECT_EQ((reflect::getField<std::int32_t>(jvm.heap(), copy,
                                                   "threshold")),
                  7);
        Address cfg = reflect::getRefField(jvm.heap(), copy, "config");
        EXPECT_EQ(jvm.builder().stringValue(cfg), "mode=fast");
        // Closure copies charge the worker's deser side.
        EXPECT_GT(cluster.breakdown(w).deserNs, 0u);
        EXPECT_EQ(cluster.breakdown(w).bytesRemote,
                  bc.bytesPerWorker());
    }
}

TEST(ClosureBroadcast, CopiesSurviveWorkerGc)
{
    ClassCatalog cat = actionCatalog();
    JavaSerializerFactory fac;
    SparkCluster cluster(cat, fac, SparkConfig{});
    Jvm &driver = cluster.driver();
    Klass *k = driver.klasses().load("test.Closure");
    Address closure = driver.heap().allocateInstance(k);
    field::set<std::int32_t>(driver.heap(), closure,
                             k->requireField("threshold"), 42);
    ClosureBroadcast bc(cluster, closure);

    Jvm &jvm = cluster.worker(0);
    jvm.gc().scavenge();
    jvm.gc().fullGc();
    EXPECT_EQ((reflect::getField<std::int32_t>(
                  jvm.heap(), bc.onWorker(0), "threshold")),
              42);
}

class CollectTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CollectTest, RecordsArriveOnTheDriver)
{
    ClassCatalog cat = actionCatalog();
    std::shared_ptr<KryoRegistry> reg;
    std::unique_ptr<SerializerFactory> plain;
    auto sky = std::make_unique<ClusterSkywayFactory>();
    std::string which = GetParam();
    if (which == "java") {
        plain = std::make_unique<JavaSerializerFactory>();
    } else if (which == "kryo") {
        reg = std::make_shared<KryoRegistry>();
        registerSparkAppKryo(*reg);
        plain = std::make_unique<KryoSerializerFactory>(reg);
    }
    SerializerFactory &fac =
        plain ? *plain : static_cast<SerializerFactory &>(*sky);
    SparkCluster cluster(cat, fac, SparkConfig{});
    if (!plain)
        sky->bind(cluster);

    CollectAction collect(cluster);
    const int per_worker = 50;
    for (int w = 0; w < cluster.numWorkers(); ++w) {
        Jvm &jvm = cluster.worker(w);
        Klass *k = jvm.klasses().load("spark.Contrib");
        for (int i = 0; i < per_worker; ++i) {
            Address rec = jvm.heap().allocateInstance(k);
            field::set<std::int32_t>(jvm.heap(), rec,
                                     k->requireField("dst"),
                                     w * 1000 + i);
            field::set<double>(jvm.heap(), rec,
                               k->requireField("rank"), 0.5 * i);
            collect.add(w, rec);
        }
    }
    auto result = collect.collect();
    ASSERT_EQ(result->size(),
              static_cast<std::size_t>(per_worker) *
                  cluster.numWorkers());
    EXPECT_GT(collect.bytesCollected(), 0u);

    // Every record is on the driver heap with intact fields.
    Jvm &driver = cluster.driver();
    long sum = 0;
    for (std::size_t i = 0; i < result->size(); ++i) {
        Address rec = result->get(i);
        EXPECT_TRUE(driver.heap().contains(rec));
        sum += reflect::getField<std::int32_t>(driver.heap(), rec,
                                               "dst");
    }
    long expect = 0;
    for (int w = 0; w < cluster.numWorkers(); ++w)
        for (int i = 0; i < per_worker; ++i)
            expect += w * 1000 + i;
    EXPECT_EQ(sum, expect);
}

INSTANTIATE_TEST_SUITE_P(Serializers, CollectTest,
                         ::testing::Values("java", "kryo", "skyway"));

TEST(CollectAction, DoubleCollectPanics)
{
    ClassCatalog cat = actionCatalog();
    JavaSerializerFactory fac;
    SparkCluster cluster(cat, fac, SparkConfig{});
    CollectAction collect(cluster);
    collect.collect();
    EXPECT_DEATH(collect.collect(), "collect called twice");
}

TEST(CollectAction, EmptyCollectIsFine)
{
    ClassCatalog cat = actionCatalog();
    JavaSerializerFactory fac;
    SparkCluster cluster(cat, fac, SparkConfig{});
    CollectAction collect(cluster);
    auto result = collect.collect();
    EXPECT_EQ(result->size(), 0u);
    EXPECT_EQ(collect.bytesCollected(), 0u);
}

} // namespace
} // namespace skyway
