/**
 * @file
 * The Skyway sender: Algorithm 2 of the paper. A GC-like BFS from each
 * root object clones every reachable object into the stream's output
 * buffer, rewrites the clone's klass word to the global type ID,
 * resets the machine-specific mark bits (preserving the cached
 * hashcode), and relativizes every reference to the target's position
 * in the buffer. Top marks and backward references delimit top-level
 * objects so the receiver can find roots without a graph traversal.
 *
 * Thread support follows the paper: the baddr word carries the
 * claiming stream's id; claims are installed with CAS, and a stream
 * that loses the race keeps its own relative address for the shared
 * object in a stream-local hash table (the object is then duplicated
 * across buffers, consistent with existing serializers' semantics).
 */

#ifndef SKYWAY_SKYWAY_SENDER_HH
#define SKYWAY_SKYWAY_SENDER_HH

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "skyway/baddr.hh"
#include "skyway/context.hh"
#include "skyway/outputbuffer.hh"

namespace skyway
{

/**
 * Sender-side statistics (tests and the byte-composition bench).
 * Legacy per-stream accessor: the same quantities are published
 * process-wide as `skyway.sender.*` metrics (docs/OBSERVABILITY.md);
 * this struct remains as the thin per-stream compatibility view.
 */
struct SkywaySendStats
{
    std::uint64_t objectsCopied = 0;
    std::uint64_t bytesCopied = 0;
    std::uint64_t topMarks = 0;
    std::uint64_t backRefs = 0;
    std::uint64_t hashFallbacks = 0;
    std::uint64_t casRetries = 0;

    /** Byte composition of the copied data (paper section 5.2). */
    std::uint64_t headerBytes = 0;
    std::uint64_t pointerBytes = 0;
    std::uint64_t paddingBytes = 0;
    std::uint64_t dataBytes = 0;
};

/**
 * One sending stream: bound to one output buffer (one destination),
 * one stream id, and the current shuffle phase.
 */
class SkywaySender
{
  public:
    /**
     * @param ctx           the JVM's Skyway state
     * @param ob            the destination's output buffer
     * @param target_format the receiver JVM's object format; when it
     *                      differs from the local format the clone is
     *                      adjusted during copying (sender pays, the
     *                      receiver does not — paper section 3.1)
     */
    SkywaySender(SkywayContext &ctx, OutputBuffer &ob,
                 ObjectFormat target_format);

    ~SkywaySender() { publishMetrics(); }

    /** Copy the graph rooted at @p root into the buffer. */
    void writeObject(Address root);

    std::uint16_t streamId() const { return tid_; }
    const SkywaySendStats &stats() const { return stats_; }

    /**
     * Push the delta of stats_ since the last publication into the
     * process-wide `skyway.sender.*` counters. Runs at stream
     * boundaries — flush/endStream and destruction, never per
     * writeObject, let alone per object — so the transfer hot path
     * stays free of atomics (the ≤2% budget, docs/OBSERVABILITY.md).
     */
    void publishMetrics();

  private:
    struct GrayItem
    {
        Address obj;
        std::uint64_t addr;
    };

    /** Atomic accessors for the baddr header word. */
    static Word loadBaddr(Address o);
    static bool casBaddr(Address o, Word &expected, Word desired);

    /**
     * If @p o was already copied by *this stream* in the current
     * phase, set @p rel and return true.
     */
    bool lookupVisited(Address o, std::uint64_t &rel);

    /**
     * The relative buffer address for child @p o: claims, enqueues,
     * and accounts for it when unvisited (Algorithm 2 lines 17-26
     * plus the multi-thread protocol).
     */
    std::uint64_t relForChild(Address o);

    /** Clone the record for @p s at logical address @p addr. */
    void writeRecord(Address s, std::uint64_t addr);

    void emitTopMark();
    void emitBackRef(Word slot_value);
    void drain();

    /** Object size in the receiver's format. */
    std::size_t sizeInTarget(Address s, const Klass *k) const;

    SkywayContext &ctx_;
    ManagedHeap &heap_;
    OutputBuffer &ob_;
    std::uint16_t tid_;
    ObjectFormat srcFmt_;
    ObjectFormat dstFmt_;
    /** srcHeader - dstHeader; field offsets shift by this much. */
    std::ptrdiff_t headerDelta_;
    std::uint8_t sid_ = 0;

    std::deque<GrayItem> gray_;
    /** Stream-local table for objects claimed by other streams. */
    std::unordered_map<Address, std::uint64_t> fallback_;

    SkywaySendStats stats_;
    /** Values of stats_ as of the last publishMetrics(). */
    SkywaySendStats published_;
};

} // namespace skyway

#endif // SKYWAY_SKYWAY_SENDER_HH
