/**
 * @file
 * Tests for the cluster fabric and the I/O cost models: message
 * ordering, request/reply, byte accounting, wire-time charging, and
 * simulated disk behaviour.
 */

#include <gtest/gtest.h>

#include "iomodel/breakdown.hh"
#include "iomodel/disk.hh"
#include "net/cluster.hh"

namespace skyway
{
namespace
{

std::vector<std::uint8_t>
bytesOf(const std::string &s)
{
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(CostModel, GigabitTransferTime)
{
    NetworkCostModel m = gigabitEthernet();
    // 125 MB at 125 MB/s is one second plus latency.
    std::uint64_t ns = m.transferNs(125'000'000);
    EXPECT_NEAR(ns / 1e9, 1.0, 0.01);
    // Latency floor for tiny messages.
    EXPECT_GE(m.transferNs(1), m.latencyNs);
}

TEST(CostModel, InfiniBandIsFaster)
{
    EXPECT_LT(infiniBand40G().transferNs(1 << 20),
              gigabitEthernet().transferNs(1 << 20));
}

TEST(Cluster, SendPollInOrder)
{
    ClusterNetwork net(3);
    net.send(0, 1, 7, bytesOf("first"));
    net.send(0, 1, 7, bytesOf("second"));
    NetMessage m;
    ASSERT_TRUE(net.poll(1, m));
    EXPECT_EQ(m.src, 0);
    EXPECT_EQ(m.tag, 7);
    EXPECT_EQ(std::string(m.payload.begin(), m.payload.end()), "first");
    ASSERT_TRUE(net.poll(1, m));
    EXPECT_EQ(std::string(m.payload.begin(), m.payload.end()), "second");
    EXPECT_FALSE(net.poll(1, m));
}

TEST(Cluster, PollTagSkipsOthers)
{
    ClusterNetwork net(2);
    net.send(0, 1, 1, bytesOf("a"));
    net.send(0, 1, 2, bytesOf("b"));
    NetMessage m;
    ASSERT_TRUE(net.pollTag(1, 2, m));
    EXPECT_EQ(std::string(m.payload.begin(), m.payload.end()), "b");
    ASSERT_TRUE(net.pollTag(1, 1, m));
    EXPECT_EQ(std::string(m.payload.begin(), m.payload.end()), "a");
}

TEST(Cluster, PollTagSkipRetainsPerTagOrder)
{
    ClusterNetwork net(2);
    net.send(0, 1, 1, bytesOf("first"));
    net.send(0, 1, 2, bytesOf("other"));
    net.send(0, 1, 1, bytesOf("second"));
    NetMessage m;
    // Draining tag 2 out of the middle must not disturb tag 1's
    // delivery order.
    ASSERT_TRUE(net.pollTag(1, 2, m));
    EXPECT_EQ(std::string(m.payload.begin(), m.payload.end()), "other");
    ASSERT_TRUE(net.pollTag(1, 1, m));
    EXPECT_EQ(std::string(m.payload.begin(), m.payload.end()), "first");
    ASSERT_TRUE(net.pollTag(1, 1, m));
    EXPECT_EQ(std::string(m.payload.begin(), m.payload.end()),
              "second");
}

TEST(Cluster, PollTagIntoNothingPending)
{
    ClusterNetwork net(2);
    bool reserve_called = false;
    EXPECT_EQ(net.pollTagInto(1, 5,
                              [&](std::size_t) -> std::uint8_t * {
                                  reserve_called = true;
                                  return nullptr;
                              }),
              -1);
    EXPECT_FALSE(reserve_called);
}

TEST(Cluster, PollTagIntoEmptyPayloadSkipsReserve)
{
    // A zero-length payload is the end-of-stream marker: it must be
    // reported as 0 without asking the receiver for storage.
    ClusterNetwork net(2);
    net.send(0, 1, 5, {});
    bool reserve_called = false;
    EXPECT_EQ(net.pollTagInto(1, 5,
                              [&](std::size_t) -> std::uint8_t * {
                                  reserve_called = true;
                                  return nullptr;
                              }),
              0);
    EXPECT_FALSE(reserve_called);
}

TEST(Cluster, ByteAccountingPerPair)
{
    ClusterNetwork net(3);
    net.send(0, 1, 0, std::vector<std::uint8_t>(100));
    net.send(0, 2, 0, std::vector<std::uint8_t>(50));
    net.send(1, 0, 0, std::vector<std::uint8_t>(25));
    EXPECT_EQ(net.bytesSent(0, 1), 100u);
    EXPECT_EQ(net.bytesSent(0, 2), 50u);
    EXPECT_EQ(net.totalBytesSent(0), 150u);
    EXPECT_EQ(net.totalBytesSent(1), 25u);
    EXPECT_EQ(net.messagesSent(0), 2u);
}

TEST(Cluster, LoopbackIsFreeAndUncounted)
{
    ClusterNetwork net(2);
    net.send(0, 0, 0, std::vector<std::uint8_t>(1000));
    EXPECT_EQ(net.totalBytesSent(0), 0u);
    EXPECT_EQ(net.wireNs(0), 0u);
    NetMessage m;
    EXPECT_TRUE(net.poll(0, m));
}

TEST(Cluster, WireTimeCharged)
{
    ClusterNetwork net(2);
    net.send(0, 1, 0, std::vector<std::uint8_t>(1 << 20));
    EXPECT_GT(net.wireNs(0), net.model().latencyNs);
    EXPECT_EQ(net.wireNs(1), 0u);
}

TEST(Cluster, RequestReply)
{
    ClusterNetwork net(2);
    net.registerHandler(1, [](NodeId src, int tag,
                              const std::vector<std::uint8_t> &p) {
        EXPECT_EQ(src, 0);
        EXPECT_EQ(tag, 9);
        std::vector<std::uint8_t> reply(p.rbegin(), p.rend());
        return reply;
    });
    auto reply = net.request(0, 1, 9, bytesOf("abc"));
    EXPECT_EQ(std::string(reply.begin(), reply.end()), "cba");
    EXPECT_GT(net.wireNs(0), 0u);
}

TEST(Cluster, RequestWithoutHandlerPanics)
{
    ClusterNetwork net(2);
    EXPECT_DEATH(net.request(0, 1, 1, {}), "no registered handler");
}

TEST(Cluster, ResetAccounting)
{
    ClusterNetwork net(2);
    net.send(0, 1, 0, std::vector<std::uint8_t>(10));
    net.resetAccounting();
    EXPECT_EQ(net.totalBytesSent(0), 0u);
    EXPECT_EQ(net.wireNs(0), 0u);
    EXPECT_EQ(net.messagesSent(0), 0u);
    // Real-wire counters clear too (and stay zero on the model
    // transport regardless).
    EXPECT_EQ(net.framesSent(), 0u);
    EXPECT_EQ(net.connectRetries(), 0u);
    EXPECT_EQ(net.recvIntoBytes(), 0u);
    EXPECT_EQ(net.realWireNs(), 0u);
}

TEST(Disk, WriteReadRoundTrip)
{
    SimDisk disk;
    std::uint64_t wns = disk.writeFile("part0", bytesOf("payload"));
    EXPECT_GT(wns, 0u);
    ASSERT_TRUE(disk.exists("part0"));
    const auto &f = disk.file("part0");
    EXPECT_EQ(std::string(f.begin(), f.end()), "payload");
    EXPECT_EQ(disk.totalBytesWritten(), 7u);
    EXPECT_GT(disk.chargeRead(f.size()), 0u);
    EXPECT_EQ(disk.totalBytesRead(), 7u);
}

TEST(Disk, AppendAccumulates)
{
    SimDisk disk;
    disk.appendFile("log", "ab", 2);
    disk.appendFile("log", "cd", 2);
    const auto &f = disk.file("log");
    EXPECT_EQ(std::string(f.begin(), f.end()), "abcd");
}

TEST(Disk, MissingFilePanics)
{
    SimDisk disk;
    EXPECT_DEATH(disk.file("nope"), "no such file");
}

TEST(Disk, CostScalesWithBytes)
{
    DiskCostModel m;
    EXPECT_GT(m.writeNs(100 << 20), m.writeNs(1 << 20));
    EXPECT_GE(m.readNs(0), m.perOpNs);
}

TEST(Breakdown, TotalsAndAccumulate)
{
    PhaseBreakdown a{10, 20, 30, 40, 50, 100, 200};
    EXPECT_EQ(a.totalNs(), 150u);
    PhaseBreakdown b = a;
    b += a;
    EXPECT_EQ(b.totalNs(), 300u);
    EXPECT_EQ(b.bytesLocal, 200u);
    EXPECT_EQ(b.bytesRemote, 400u);
}

TEST(Breakdown, CsvShape)
{
    PhaseBreakdown a{1'000'000, 0, 0, 0, 0, 0, 0};
    std::string csv = breakdownCsv(a);
    EXPECT_EQ(csv.substr(0, 5), "1.00,");
    // Header and row have the same number of commas.
    auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(csv), commas(breakdownCsvHeader()));
}

} // namespace
} // namespace skyway
