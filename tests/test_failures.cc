/**
 * @file
 * Failure-injection tests: malformed or truncated byte streams,
 * invalid buffer protocol usage, and misuse of the runtime APIs must
 * fail loudly (panic/fatal) rather than corrupt heaps silently. The
 * runtime manipulates raw memory, so every guard here is
 * load-bearing.
 */

#include <gtest/gtest.h>

#include "sd/javaserializer.hh"
#include "sd/kryoserializer.hh"
#include "skyway/streams.hh"
#include "testclasses.hh"

namespace skyway
{
namespace
{

using testing_support::makePoint;
using testing_support::makeTestCatalog;

class FailureTest : public ::testing::Test
{
  protected:
    FailureTest()
        : catalog_(makeTestCatalog()),
          net_(2),
          a_(catalog_, net_, 0, 0),
          b_(catalog_, net_, 1, 0)
    {
        // These tests exercise the raw parser's own guards; with the
        // SkywaySan validator enabled (e.g. SKYWAY_WIRE_CHECK in the
        // environment) it would reject the stream first with a
        // different message.
        a_.skyway().debug() = DebugFlags{};
        b_.skyway().debug() = DebugFlags{};
        // Same reason for the compact encoding (SKYWAY_WIRE_COMPACT
        // in the environment): these guards are the *raw* parser's.
        a_.skyway().setWireCompactMode(WireCompactMode::Off);
        b_.skyway().setWireCompactMode(WireCompactMode::Off);
    }

    ClassCatalog catalog_;
    ClusterNetwork net_;
    Jvm a_, b_;
};

TEST_F(FailureTest, TruncatedJavaStreamDies)
{
    JavaSerializer ser(SdEnv{a_.heap(), a_.klasses()});
    VectorSink sink;
    ser.writeObject(makePoint(a_, 1, 2), sink);
    // Drop the tail.
    std::vector<std::uint8_t> cut(sink.bytes().begin(),
                                  sink.bytes().end() - 5);
    JavaSerializer des(SdEnv{b_.heap(), b_.klasses()});
    ByteSource src(cut);
    EXPECT_DEATH(des.readObject(src), "past end");
}

TEST_F(FailureTest, GarbageJavaStreamDies)
{
    std::vector<std::uint8_t> junk(64, 0x5a);
    JavaSerializer des(SdEnv{b_.heap(), b_.klasses()});
    ByteSource src(junk);
    EXPECT_DEATH(des.readObject(src), "");
}

TEST_F(FailureTest, ReadPastLastObjectDies)
{
    JavaSerializer ser(SdEnv{a_.heap(), a_.klasses()});
    VectorSink sink;
    ser.writeObject(makePoint(a_, 1, 2), sink);
    JavaSerializer des(SdEnv{b_.heap(), b_.klasses()});
    ByteSource src(sink.bytes());
    des.readObject(src);
    EXPECT_DEATH(des.readObject(src), "past end");
}

TEST_F(FailureTest, KryoUnknownRegistrationIdDies)
{
    KryoRegistry small;
    kryoRegisterBuiltins(small);
    KryoRegistry big;
    kryoRegisterBuiltins(big);
    big.registerClass("test.Point");

    // Writer registered more classes than the reader: the wire id
    // falls off the reader's table — the classic inconsistent-
    // registration bug Kryo users hit (paper section 2.1).
    KryoSerializer ser(SdEnv{a_.heap(), a_.klasses()}, big);
    VectorSink sink;
    ser.writeObject(makePoint(a_, 3, 4), sink);
    KryoSerializer des(SdEnv{b_.heap(), b_.klasses()}, small);
    ByteSource src(sink.bytes());
    EXPECT_DEATH(des.readObject(src), "");
}

TEST_F(FailureTest, SkywayUnknownMarkerWordDies)
{
    SkywayObjectInputStream in(b_.skyway());
    Word bogus = marker::reserved | 0xDEAD;
    EXPECT_DEATH(
        in.feed(reinterpret_cast<const std::uint8_t *>(&bogus),
                sizeof(bogus)),
        "unknown marker");
}

TEST_F(FailureTest, SkywayFeedAfterFinalizeDies)
{
    a_.skyway().shuffleStart();
    SkywayObjectInputStream in(b_.skyway());
    SkywayObjectOutputStream out(
        a_.skyway(),
        [&in](const std::uint8_t *d, std::size_t n) { in.feed(d, n); });
    out.writeObject(makePoint(a_, 1, 1));
    out.flush();
    in.finish();
    std::uint8_t byte = 0;
    EXPECT_DEATH(in.feed(&byte, 0);
                 in.buffer().feed(&byte, 1), "");
}

TEST_F(FailureTest, SkywayReadBeforeFinishDies)
{
    SkywayObjectInputStream in(b_.skyway());
    EXPECT_DEATH(in.readObject(), "before finish");
}

TEST_F(FailureTest, SkywayRecordSpanningSegmentDies)
{
    // Split a record across two feed calls: the receiver requires
    // whole records per segment (the sender guarantees it).
    a_.skyway().shuffleStart();
    std::vector<std::uint8_t> bytes;
    SkywayObjectOutputStream out(
        a_.skyway(),
        [&bytes](const std::uint8_t *d, std::size_t n) {
            bytes.insert(bytes.end(), d, d + n);
        });
    out.writeObject(makePoint(a_, 1, 2));
    out.flush();
    ASSERT_GT(bytes.size(), 16u);

    SkywayObjectInputStream in(b_.skyway());
    EXPECT_DEATH(in.feed(bytes.data(), bytes.size() - 8), "spans");
}

TEST_F(FailureTest, SkywayBadRelativeAddressDies)
{
    // Hand-craft a record whose reference slot points outside the
    // buffer: absolutization must refuse.
    a_.skyway().shuffleStart();
    std::vector<std::uint8_t> bytes;
    LocalRoots roots(a_.heap());
    Address pair =
        a_.heap().allocateInstance(a_.klasses().load("test.Pair"));
    std::size_t rp = roots.push(pair);
    Address child = makePoint(a_, 1, 1);
    field::setRef(a_.heap(), roots.get(rp),
                  a_.klasses().load("test.Pair")->requireField("left"),
                  child);
    SkywayObjectOutputStream out(
        a_.skyway(),
        [&bytes](const std::uint8_t *d, std::size_t n) {
            bytes.insert(bytes.end(), d, d + n);
        });
    out.writeObject(roots.get(rp));
    out.flush();

    // Corrupt the Pair's "left" slot (first payload word after the
    // header of the first record, which follows the 8-byte top mark).
    std::size_t slot_off =
        8 + b_.heap().format().headerBytes();
    Word huge = 1u << 30;
    std::memcpy(bytes.data() + slot_off, &huge, sizeof(huge));

    SkywayObjectInputStream in(b_.skyway());
    in.feed(bytes.data(), bytes.size());
    EXPECT_DEATH(in.finish(), "relative address");
}

TEST_F(FailureTest, ByteSourceGuards)
{
    std::vector<std::uint8_t> buf{1, 2, 3};
    ByteSource src(buf);
    src.readU8();
    EXPECT_DEATH(src.readU32(), "past end");
    // Malformed varint (all continuation bits).
    std::vector<std::uint8_t> vi(11, 0xff);
    ByteSource vsrc(vi);
    EXPECT_DEATH(vsrc.readVarU64(), "varint too long");
}

TEST_F(FailureTest, OutputBufferNonSequentialWriteDies)
{
    OutputBuffer ob(1024, [](const std::uint8_t *, std::size_t) {});
    ob.claim(16);
    ob.writeAt(0, 16);
    EXPECT_DEATH(ob.writeAt(64, 16), "non-sequential");
}

TEST_F(FailureTest, HeapOldGenExhaustionIsFatalNotSilent)
{
    HeapConfig tiny;
    tiny.edenBytes = 64 << 10;
    tiny.survivorBytes = 16 << 10;
    tiny.oldBytes = 64 << 10;
    ManagedHeap heap(tiny);
    EXPECT_DEATH(heap.allocateOldRaw(1 << 20), "exhausted");
}

} // namespace
} // namespace skyway
