#include "skyway/jvm.hh"

namespace skyway
{

ClassCatalog
makeStandardCatalog()
{
    ClassCatalog catalog;
    defineBootstrapClasses(catalog);
    return catalog;
}

Jvm::Jvm(const ClassCatalog &catalog, ClusterNetwork &net, NodeId id,
         NodeId driver_id, HeapConfig heap_config)
    : id_(id),
      net_(net),
      klasses_(catalog, heap_config.format),
      heap_(heap_config),
      gc_(heap_),
      builder_(heap_, klasses_),
      disk_()
{
    if (id == driver_id)
        driver_ = std::make_unique<TypeRegistryDriver>(net, id, klasses_);
    else
        worker_ = std::make_unique<TypeRegistryWorker>(net, id, driver_id,
                                                       klasses_);
    skyway_ = std::make_unique<SkywayContext>(heap_, klasses_,
                                              resolver());
    // The compact-encoding policy prices CPU against wire time; feed
    // it this cluster's actual link cost so Auto mode compacts on
    // slow links and passes through on fast ones (WirePolicy).
    if (net.model().bandwidthBytesPerSec > 0)
        skyway_->setWireNsPerByte(1.0e9 /
                                  net.model().bandwidthBytesPerSec);
}

TypeResolver &
Jvm::resolver()
{
    if (driver_)
        return *driver_;
    return *worker_;
}

TypeRegistryDriver &
Jvm::registryDriver()
{
    panicIf(!driver_, "registryDriver() on a worker node");
    return *driver_;
}

} // namespace skyway
