#include "skyway/streams.hh"

#include "skyway/wirecompact.hh"

namespace skyway
{

namespace
{

/** A wire validator when the context asks for one (debug mode). */
std::unique_ptr<sanitize::WireValidator>
makeWireValidator(SkywayContext &ctx, const ObjectFormat &wire_format)
{
    if (!ctx.debug().validateWire)
        return nullptr;
    return std::make_unique<sanitize::WireValidator>(
        ctx.resolver(), sanitize::WireCheckConfig{wire_format});
}

/** Tee flushed segments into @p v before the sink sees them. */
OutputBuffer::FlushFn
teeIntoValidator(OutputBuffer::FlushFn sink, sanitize::WireValidator *v)
{
    if (!v)
        return sink;
    return [sink = std::move(sink), v](const std::uint8_t *data,
                                       std::size_t len) {
        v->feed(data, len);
        sink(data, len);
    };
}

} // namespace

SkywayObjectOutputStream::SkywayObjectOutputStream(
    SkywayContext &ctx, OutputBuffer::FlushFn sink,
    std::size_t buffer_bytes, std::optional<ObjectFormat> target_format)
    : validator_(makeWireValidator(
          ctx, target_format.value_or(ctx.heap().format()))),
      // Stage order matters: the validator tees off the *raw* flushed
      // segment (the semantic stream), then the compaction stage may
      // rewrite what actually hits the sink. The receiver's validator
      // sees the compact wire bytes, so both encodings get checked.
      buffer_(buffer_bytes,
              teeIntoValidator(
                  compactStage(ctx,
                               target_format.value_or(
                                   ctx.heap().format()),
                               std::move(sink)),
                  validator_.get())),
      sender_(ctx, buffer_,
              target_format.value_or(ctx.heap().format()))
{
}

void
SkywayObjectOutputStream::checkWire()
{
    validator_->finish();
    panicIf(!validator_->ok(),
            "SkywaySan: sender wire validation failed: " +
                validator_->firstFault());
}

SkywayFileOutputStream::SkywayFileOutputStream(SkywayContext &ctx,
                                               SimDisk &disk,
                                               std::string file_name,
                                               std::size_t buffer_bytes)
    : SkywayFileOutputStream(ctx, disk, std::move(file_name),
                             buffer_bytes,
                             std::make_shared<std::uint64_t>(0))
{
}

SkywayFileOutputStream::SkywayFileOutputStream(
    SkywayContext &ctx, SimDisk &disk, std::string file_name,
    std::size_t buffer_bytes, std::shared_ptr<std::uint64_t> write_ns)
    : SkywayObjectOutputStream(
          ctx,
          [&disk, file_name, write_ns](const std::uint8_t *data,
                                       std::size_t len) {
              *write_ns += disk.appendFile(file_name, data, len);
          },
          buffer_bytes),
      writeNs_(write_ns)
{
}

SkywayFileInputStream::SkywayFileInputStream(SkywayContext &ctx,
                                             SimDisk &disk,
                                             const std::string &file_name,
                                             std::size_t chunk_bytes)
    : SkywayObjectInputStream(ctx, chunk_bytes)
{
    const auto &bytes = disk.file(file_name);
    readNs_ = disk.chargeRead(bytes.size());
    if (!bytes.empty())
        feed(bytes.data(), bytes.size());
    finish();
}

SkywaySocketOutputStream::SkywaySocketOutputStream(
    SkywayContext &ctx, ClusterNetwork &net, NodeId src, NodeId dst,
    int tag, std::size_t buffer_bytes)
    : SkywayObjectOutputStream(
          ctx,
          [&net, src, dst, tag](const std::uint8_t *data,
                                std::size_t len) {
              net.send(src, dst, tag,
                       std::vector<std::uint8_t>(data, data + len));
          },
          buffer_bytes),
      net_(net),
      src_(src),
      dst_(dst),
      tag_(tag)
{
}

void
SkywaySocketOutputStream::close()
{
    if (closed_)
        return;
    flush();
    // Zero-length message = end of stream.
    net_.send(src_, dst_, tag_, {});
    closed_ = true;
}

SkywaySocketInputStream::SkywaySocketInputStream(SkywayContext &ctx,
                                                 ClusterNetwork &net,
                                                 NodeId self, int tag,
                                                 std::size_t chunk_bytes)
    : SkywayObjectInputStream(ctx, chunk_bytes),
      net_(net),
      self_(self),
      tag_(tag)
{
}

bool
SkywaySocketInputStream::pump()
{
    if (done_)
        return true;
    while (true) {
        // Zero-copy handoff: the fabric delivers each flushed segment
        // straight into old-gen chunk storage posted by the input
        // buffer; commitChunk() then parses the records in place.
        std::ptrdiff_t n = net_.pollTagInto(
            self_, tag_, [this](std::size_t len) {
                return buffer().reserveChunk(len);
            });
        if (n < 0)
            return false;
        if (n == 0) {
            // Zero-length message = end of stream.
            finish();
            done_ = true;
            return true;
        }
        buffer().commitChunk(static_cast<std::size_t>(n));
    }
}

SkywaySerializer::SkywaySerializer(SkywayContext &ctx,
                                   std::size_t buffer_bytes,
                                   std::size_t chunk_bytes)
    : ctx_(ctx), bufferBytes_(buffer_bytes), chunkBytes_(chunk_bytes)
{
    // The adapter drives phases itself when the host system does not:
    // a phase must be open before the first writeObject.
    if (ctx_.currentSid() == 0)
        ctx_.shuffleStart();
}

void
SkywaySerializer::bindSink(ByteSink &out)
{
    if (curSink_ == &out)
        return;
    if (curSink_)
        endStream(*curSink_);
    ByteSink *sink = &out;
    wireValidator_ = makeWireValidator(ctx_, ctx_.heap().format());
    // One u32 frame per flushed segment; compaction (when on) rewrites
    // the segment before framing, and the validator audits the raw
    // bytes ahead of both.
    outBuf_ = std::make_unique<OutputBuffer>(
        bufferBytes_,
        teeIntoValidator(
            compactStage(
                ctx_, ctx_.heap().format(),
                [sink](const std::uint8_t *data, std::size_t len) {
                    sink->writeU32(static_cast<std::uint32_t>(len));
                    sink->write(data, len);
                }),
            wireValidator_.get()));
    sender_ = std::make_unique<SkywaySender>(ctx_, *outBuf_,
                                             ctx_.heap().format());
    curSink_ = &out;
}

void
SkywaySerializer::writeObject(Address root, ByteSink &out)
{
    bindSink(out);
    sender_->writeObject(root);
}

void
SkywaySerializer::endStream(ByteSink &out)
{
    if (!curSink_)
        return;
    panicIf(curSink_ != &out,
            "SkywaySerializer: endStream on a different sink");
    outBuf_->flushNow();
    sender_->publishMetrics();
    if (wireValidator_) {
        wireValidator_->finish();
        panicIf(!wireValidator_->ok(),
                "SkywaySan: sender wire validation failed: " +
                    wireValidator_->firstFault());
    }
    out.writeU32(0);
    // Fold this stream's stats into the running totals.
    const SkywaySendStats &s = sender_->stats();
    doneStats_.objectsCopied += s.objectsCopied;
    doneStats_.bytesCopied += s.bytesCopied;
    doneStats_.topMarks += s.topMarks;
    doneStats_.backRefs += s.backRefs;
    doneStats_.hashFallbacks += s.hashFallbacks;
    doneStats_.casRetries += s.casRetries;
    doneStats_.headerBytes += s.headerBytes;
    doneStats_.pointerBytes += s.pointerBytes;
    doneStats_.paddingBytes += s.paddingBytes;
    doneStats_.dataBytes += s.dataBytes;
    sender_.reset();
    outBuf_.reset();
    wireValidator_.reset();
    curSink_ = nullptr;
}

void
SkywaySerializer::startPhase()
{
    if (curSink_)
        endStream(*curSink_);
    ctx_.shuffleStart();
}

void
SkywaySerializer::ingest(ByteSource &in)
{
    if (inStream_)
        retired_.push_back(inStream_->releaseBuffer());
    inStream_ = std::make_unique<SkywayObjectInputStream>(ctx_,
                                                          chunkBytes_);
    while (true) {
        std::uint32_t len = in.readU32();
        if (len == 0)
            break;
        const std::uint8_t *seg = in.view(len);
        inStream_->feed(seg, len);
    }
    inStream_->finish();
}

Address
SkywaySerializer::readObject(ByteSource &in)
{
    if (!inStream_ || !inStream_->hasNext())
        ingest(in);
    return inStream_->readObject();
}

void
SkywaySerializer::freeInputBuffers()
{
    if (inStream_)
        retired_.push_back(inStream_->releaseBuffer());
    inStream_.reset();
    for (auto &buf : retired_)
        buf->free();
    retired_.clear();
}

SkywaySendStats
SkywaySerializer::sendStats() const
{
    SkywaySendStats total = doneStats_;
    if (sender_) {
        const SkywaySendStats &s = sender_->stats();
        total.objectsCopied += s.objectsCopied;
        total.bytesCopied += s.bytesCopied;
        total.topMarks += s.topMarks;
        total.backRefs += s.backRefs;
        total.hashFallbacks += s.hashFallbacks;
        total.casRetries += s.casRetries;
        total.headerBytes += s.headerBytes;
        total.pointerBytes += s.pointerBytes;
        total.paddingBytes += s.paddingBytes;
        total.dataBytes += s.dataBytes;
    }
    return total;
}

} // namespace skyway
