/**
 * @file
 * Cross-serializer round-trip tests: every byte-stream serializer
 * (Java-style reflective, Kryo-style tracked and untracked) must
 * rebuild an isomorphic object graph in a *different* JVM's heap.
 * Also covers serializer-specific behaviours: descriptor caching and
 * stream resets (Java), registration/manual functions/unregistered
 * fallback (Kryo), byte-size orderings the paper relies on, and deep
 * graphs that would overflow a recursive implementation.
 */

#include <gtest/gtest.h>

#include "sd/javaserializer.hh"
#include "sd/kryoserializer.hh"
#include "testclasses.hh"

namespace skyway
{
namespace
{

using testing_support::makeCycle;
using testing_support::makeList;
using testing_support::makeMixed;
using testing_support::makePoint;
using testing_support::makeSharedPair;
using testing_support::makeTestCatalog;

std::shared_ptr<KryoRegistry>
makeKryoRegistry()
{
    auto reg = std::make_shared<KryoRegistry>();
    kryoRegisterBuiltins(*reg);
    reg->registerClass("test.Point");
    reg->registerClass("test.Point3D");
    reg->registerClass("test.Node");
    reg->registerClass("test.Pair");
    reg->registerClass("test.Mixed");
    return reg;
}

/**
 * The fixture holds a two-node "cluster": node 0 serializes, node 1
 * deserializes, with independent heaps and klass tables.
 */
class SdTest : public ::testing::TestWithParam<int>
{
  protected:
    SdTest()
        : catalog_(makeTestCatalog()),
          net_(2),
          sender_(catalog_, net_, 0, 0),
          receiver_(catalog_, net_, 1, 0)
    {
        auto reg = makeKryoRegistry();
        factories_.push_back(
            std::make_unique<JavaSerializerFactory>());
        factories_.push_back(std::make_unique<KryoSerializerFactory>(
            reg, true, "kryo"));
        factories_.push_back(std::make_unique<KryoSerializerFactory>(
            reg, false, "kryo-flat"));
    }

    SerializerFactory &factory() { return *factories_[GetParam()]; }

    std::unique_ptr<Serializer>
    senderSer()
    {
        return factory().create(
            SdEnv{sender_.heap(), sender_.klasses()});
    }

    std::unique_ptr<Serializer>
    receiverSer()
    {
        return factory().create(
            SdEnv{receiver_.heap(), receiver_.klasses()});
    }

    /** One-object round trip through fresh streams. */
    Address
    roundTrip(Address root)
    {
        auto ws = senderSer();
        VectorSink sink;
        ws->writeObject(root, sink);
        ws->endStream(sink);
        auto rs = receiverSer();
        ByteSource src(sink.bytes());
        return rs->readObject(src);
    }

    bool trackingSharing() const { return GetParam() != 2; }

    ClassCatalog catalog_;
    ClusterNetwork net_;
    Jvm sender_;
    Jvm receiver_;
    std::vector<std::unique_ptr<SerializerFactory>> factories_;
};

TEST_P(SdTest, PrimitiveObjectRoundTrip)
{
    Address p = makePoint(sender_, 42, -17);
    Address q = roundTrip(p);
    ASSERT_NE(q, nullAddr);
    EXPECT_TRUE(graphsEqual(sender_.heap(), p, receiver_.heap(), q));
    EXPECT_TRUE(receiver_.heap().contains(q));
}

TEST_P(SdTest, NullRootRoundTrip)
{
    EXPECT_EQ(roundTrip(nullAddr), nullAddr);
}

TEST_P(SdTest, SubclassFieldsRoundTrip)
{
    Klass *k = sender_.klasses().load("test.Point3D");
    Address p = sender_.heap().allocateInstance(k);
    field::set<std::int32_t>(sender_.heap(), p, k->requireField("x"), 1);
    field::set<std::int32_t>(sender_.heap(), p, k->requireField("y"), 2);
    field::set<std::int32_t>(sender_.heap(), p, k->requireField("z"), 3);
    Address q = roundTrip(p);
    EXPECT_TRUE(graphsEqual(sender_.heap(), p, receiver_.heap(), q));
    EXPECT_EQ((reflect::getField<std::int32_t>(receiver_.heap(), q,
                                               "z")),
              3);
}

TEST_P(SdTest, StringRoundTripPreservesContentHash)
{
    Address s = sender_.builder().makeString("skyway test string");
    std::int32_t h = sender_.builder().stringHash(s);
    Address t = roundTrip(s);
    EXPECT_EQ(receiver_.builder().stringValue(t), "skyway test string");
    // The *content* hash field travels with the fields.
    EXPECT_EQ((reflect::getField<std::int32_t>(receiver_.heap(), t,
                                               "hash")),
              h);
}

TEST_P(SdTest, MixedFieldTypesRoundTrip)
{
    LocalRoots roots(sender_.heap());
    Address m = makeMixed(sender_, roots, "mixed-object");
    Address q = roundTrip(m);
    EXPECT_TRUE(graphsEqual(sender_.heap(), m, receiver_.heap(), q));
}

TEST_P(SdTest, PrimitiveArraysRoundTrip)
{
    std::vector<std::int64_t> data;
    for (int i = 0; i < 1000; ++i)
        data.push_back(i * 1234567ll - 500000);
    Address arr = sender_.builder().makeLongArray(data);
    Address out = roundTrip(arr);
    EXPECT_TRUE(graphsEqual(sender_.heap(), arr, receiver_.heap(), out));
}

TEST_P(SdTest, RefArrayWithNullsRoundTrip)
{
    LocalRoots roots(sender_.heap());
    Address arr = sender_.builder().makeRefArray("test.Point", 5);
    std::size_t ra = roots.push(arr);
    for (int i = 0; i < 5; i += 2) {
        Address p = makePoint(sender_, i, i * i);
        array::setRef(sender_.heap(), roots.get(ra), i, p);
    }
    Address out = roundTrip(roots.get(ra));
    EXPECT_TRUE(graphsEqual(sender_.heap(), roots.get(ra),
                            receiver_.heap(), out));
    EXPECT_EQ(array::getRef(receiver_.heap(), out, 1), nullAddr);
}

TEST_P(SdTest, SharedChildPreservedWhenTracking)
{
    LocalRoots roots(sender_.heap());
    Address pair = makeSharedPair(sender_, roots);
    Address out = roundTrip(pair);
    Klass *k = receiver_.klasses().load("test.Pair");
    Address l = field::getRef(receiver_.heap(), out,
                              k->requireField("left"));
    Address r = field::getRef(receiver_.heap(), out,
                              k->requireField("right"));
    if (trackingSharing()) {
        EXPECT_EQ(l, r) << "sharing must survive the round trip";
        EXPECT_TRUE(graphsEqual(sender_.heap(), pair, receiver_.heap(),
                                out));
    } else {
        // No reference tracking: the shared child is duplicated —
        // the documented Kryo references=false semantics.
        EXPECT_NE(l, r);
    }
}

TEST_P(SdTest, CyclicGraphRoundTripWhenTracking)
{
    if (!trackingSharing())
        GTEST_SKIP() << "cycles require reference tracking";
    LocalRoots roots(sender_.heap());
    Address a = makeCycle(sender_, roots);
    Address out = roundTrip(a);
    EXPECT_TRUE(graphsEqual(sender_.heap(), a, receiver_.heap(), out));
    // Walk the cycle on the receiver: a -> b -> a.
    Klass *k = receiver_.klasses().load("test.Node");
    Address b = field::getRef(receiver_.heap(), out,
                              k->requireField("next"));
    Address back = field::getRef(receiver_.heap(), b,
                                 k->requireField("next"));
    EXPECT_EQ(back, out);
}

TEST_P(SdTest, DeepListDoesNotOverflowStack)
{
    LocalRoots roots(sender_.heap());
    Address head = makeList(sender_, roots, 50000);
    Address out = roundTrip(head);
    // Spot-check instead of graphsEqual (which is itself iterative
    // but slow at this size under the death-test-friendly build).
    Klass *k = receiver_.klasses().load("test.Node");
    Address cur = out;
    int n = 0;
    while (cur != nullAddr) {
        cur = field::getRef(receiver_.heap(), cur,
                            k->requireField("next"));
        ++n;
    }
    EXPECT_EQ(n, 50000);
}

TEST_P(SdTest, MultipleObjectsOneStream)
{
    auto ws = senderSer();
    VectorSink sink;
    LocalRoots roots(sender_.heap());
    std::vector<std::size_t> sent;
    for (int i = 0; i < 20; ++i)
        sent.push_back(roots.push(makePoint(sender_, i, -i)));
    for (std::size_t s : sent)
        ws->writeObject(roots.get(s), sink);
    ws->endStream(sink);

    auto rs = receiverSer();
    ByteSource src(sink.bytes());
    for (int i = 0; i < 20; ++i) {
        Address q = rs->readObject(src);
        EXPECT_EQ((reflect::getField<std::int32_t>(receiver_.heap(), q,
                                                   "x")),
                  i);
    }
}

TEST_P(SdTest, DeserializationSurvivesGcPressure)
{
    // A receiver with a tiny eden collects repeatedly mid-graph; the
    // handle table must keep partial graphs alive and updated.
    HeapConfig small;
    small.edenBytes = 96 << 10;
    small.survivorBytes = 32 << 10;
    Jvm tiny(catalog_, net_, 1, 0, small);
    auto ws = senderSer();
    VectorSink sink;
    LocalRoots roots(sender_.heap());
    Address head = makeList(sender_, roots, 3000);
    ws->writeObject(head, sink);
    ws->endStream(sink);

    auto rs = factory().create(SdEnv{tiny.heap(), tiny.klasses()});
    ByteSource src(sink.bytes());
    Address out = rs->readObject(src);
    EXPECT_GT(tiny.heap().stats().scavenges, 0u)
        << "test should actually stress the collector";
    Klass *k = tiny.klasses().load("test.Node");
    int n = 0;
    for (Address cur = out; cur != nullAddr;
         cur = field::getRef(tiny.heap(), cur, k->requireField("next")))
        ++n;
    EXPECT_EQ(n, 3000);
}

INSTANTIATE_TEST_SUITE_P(AllSerializers, SdTest,
                         ::testing::Values(0, 1, 2),
                         [](const auto &pinfo) {
                             switch (pinfo.param) {
                               case 0: return "java";
                               case 1: return "kryo";
                               default: return "kryoFlat";
                             }
                         });

class SdSpecificTest : public ::testing::Test
{
  protected:
    SdSpecificTest()
        : catalog_(makeTestCatalog()),
          net_(2),
          sender_(catalog_, net_, 0, 0),
          receiver_(catalog_, net_, 1, 0)
    {}

    ClassCatalog catalog_;
    ClusterNetwork net_;
    Jvm sender_;
    Jvm receiver_;
};

TEST_F(SdSpecificTest, JavaDescriptorsDominateSmallObjects)
{
    // One tiny object on a fresh stream: the class descriptor strings
    // dwarf the 8 payload bytes (the paper's 50-bytes-for-1-byte
    // observation).
    JavaSerializer ser(SdEnv{sender_.heap(), sender_.klasses()}, 0);
    VectorSink sink;
    ser.writeObject(makePoint(sender_, 1, 2), sink);
    EXPECT_GT(sink.bytesWritten(), 8u * 3);
    EXPECT_EQ(ser.descriptorsWritten(), 1u);
}

TEST_F(SdSpecificTest, JavaDescriptorCachedWithinStream)
{
    JavaSerializer ser(SdEnv{sender_.heap(), sender_.klasses()}, 0);
    VectorSink sink;
    ser.writeObject(makePoint(sender_, 1, 2), sink);
    std::size_t first = sink.bytesWritten();
    ser.writeObject(makePoint(sender_, 3, 4), sink);
    std::size_t second = sink.bytesWritten() - first;
    EXPECT_LT(second, first) << "second object reuses the descriptor";
    EXPECT_EQ(ser.descriptorsWritten(), 1u);
}

TEST_F(SdSpecificTest, JavaResetRepeatsDescriptors)
{
    JavaSerializer ser(SdEnv{sender_.heap(), sender_.klasses()}, 1);
    VectorSink sink;
    ser.writeObject(makePoint(sender_, 1, 2), sink);
    ser.writeObject(makePoint(sender_, 3, 4), sink);
    EXPECT_EQ(ser.descriptorsWritten(), 2u)
        << "reset interval 1 re-emits the descriptor every write";

    JavaSerializer des(SdEnv{receiver_.heap(), receiver_.klasses()}, 1);
    ByteSource src(sink.bytes());
    Address a = des.readObject(src);
    Address b = des.readObject(src);
    EXPECT_EQ((reflect::getField<std::int32_t>(receiver_.heap(), a,
                                               "x")),
              1);
    EXPECT_EQ((reflect::getField<std::int32_t>(receiver_.heap(), b,
                                               "y")),
              4);
}

TEST_F(SdSpecificTest, JavaCountsReflectiveAccesses)
{
    JavaSerializer ser(SdEnv{sender_.heap(), sender_.klasses()}, 0);
    VectorSink sink;
    ser.writeObject(makePoint(sender_, 1, 2), sink);
    EXPECT_EQ(ser.reflectiveAccesses(), 2u); // x and y
}

TEST_F(SdSpecificTest, KryoSmallerThanJavaOnFreshStreams)
{
    auto reg = makeKryoRegistry();
    KryoSerializer kryo(SdEnv{sender_.heap(), sender_.klasses()}, *reg);
    JavaSerializer java(SdEnv{sender_.heap(), sender_.klasses()}, 1);

    LocalRoots roots(sender_.heap());
    Address m = makeMixed(sender_, roots, "size comparison");
    VectorSink ks, js;
    kryo.writeObject(m, ks);
    java.writeObject(m, js);
    EXPECT_LT(ks.bytesWritten(), js.bytesWritten())
        << "registered integer ids + varints must beat descriptor "
           "strings";
}

TEST_F(SdSpecificTest, KryoUnregisteredClassFallsBackToName)
{
    auto reg = std::make_shared<KryoRegistry>();
    kryoRegisterBuiltins(*reg); // test.Point NOT registered
    KryoSerializer ser(SdEnv{sender_.heap(), sender_.klasses()}, *reg);
    VectorSink sink;
    ser.writeObject(makePoint(sender_, 7, 8), sink);
    EXPECT_EQ(ser.unregisteredWrites(), 1u);

    KryoSerializer des(SdEnv{receiver_.heap(), receiver_.klasses()},
                       *reg);
    ByteSource src(sink.bytes());
    Address q = des.readObject(src);
    EXPECT_EQ((reflect::getField<std::int32_t>(receiver_.heap(), q,
                                               "x")),
              7);
}

TEST_F(SdSpecificTest, KryoManualFunctionsAreUsed)
{
    auto reg = std::make_shared<KryoRegistry>();
    kryoRegisterBuiltins(*reg);
    static int manual_writes;
    static int manual_reads;
    manual_writes = manual_reads = 0;
    KryoManual manual;
    manual.write = [](KryoSerializer &kryo, Address obj, ByteSink &out) {
        ++manual_writes;
        out.writeVarI32(reflect::getField<std::int32_t>(
            kryo.env().heap, obj, "x"));
        out.writeVarI32(reflect::getField<std::int32_t>(
            kryo.env().heap, obj, "y"));
    };
    manual.read = [](KryoSerializer &kryo,
                     ByteSource &in) -> Address {
        ++manual_reads;
        Klass *k = kryo.env().klasses.load("test.Point");
        Address p = kryo.env().heap.allocateInstance(k);
        std::size_t h = kryo.adoptObject(p);
        std::int32_t x = in.readVarI32();
        std::int32_t y = in.readVarI32();
        reflect::setField<std::int32_t>(kryo.env().heap,
                                        kryo.objectAt(h), "x", x);
        reflect::setField<std::int32_t>(kryo.env().heap,
                                        kryo.objectAt(h), "y", y);
        return kryo.objectAt(h);
    };
    reg->registerClass("test.Point", std::move(manual));

    KryoSerializer ser(SdEnv{sender_.heap(), sender_.klasses()}, *reg);
    VectorSink sink;
    ser.writeObject(makePoint(sender_, 10, 20), sink);
    KryoSerializer des(SdEnv{receiver_.heap(), receiver_.klasses()},
                       *reg);
    ByteSource src(sink.bytes());
    Address q = des.readObject(src);
    EXPECT_EQ(manual_writes, 1);
    EXPECT_EQ(manual_reads, 1);
    EXPECT_EQ((reflect::getField<std::int32_t>(receiver_.heap(), q,
                                               "y")),
              20);
}

TEST_F(SdSpecificTest, KryoRegistryRejectsDuplicates)
{
    KryoRegistry reg;
    reg.registerClass("test.Point");
    EXPECT_DEATH(reg.registerClass("test.Point"), "registered twice");
    EXPECT_EQ(reg.idOf("test.Point"), 0);
    EXPECT_EQ(reg.idOf("nope"), -1);
}

} // namespace
} // namespace skyway
