#!/bin/sh
# The full local gate: tier-1 tests, the lint label, the forced-
# compaction pass (docs/WIRE_FORMAT.md), and the SKYWAY_ANALYZE build
# (docs/STATIC_ANALYSIS.md §5), in one command.
#
#   tools/check_all.sh [SOURCE_ROOT]
#
# Exits non-zero on the first failing stage. Uses clang++ for the
# analyze tree when available (full thread-safety analysis); falls
# back to the default compiler (-Werror only) otherwise.
set -eu

root=$(cd "${1:-$(dirname "$0")/..}" && pwd)
jobs=$(nproc 2>/dev/null || echo 2)

echo "== [1/5] configure + build (default flags) =="
cmake -B "$root/build" -S "$root"
cmake --build "$root/build" -j "$jobs"

echo "== [2/5] tier-1 test suite =="
ctest --test-dir "$root/build" --output-on-failure -j "$jobs"

echo "== [3/5] lint label =="
ctest --test-dir "$root/build" -L lint --output-on-failure

echo "== [4/5] forced-compaction suite (SKYWAY_WIRE_COMPACT=force) =="
# Every eligible record takes the compact encode/expand path, with the
# SkywaySan wire validator vetting both sides (docs/WIRE_FORMAT.md).
SKYWAY_WIRE_COMPACT=force SKYWAY_WIRE_CHECK=1 \
    ctest --test-dir "$root/build" --output-on-failure -j "$jobs"

echo "== [5/5] static-analysis build (SKYWAY_ANALYZE=ON) =="
if command -v clang++ >/dev/null 2>&1; then
    CXX=clang++ cmake -B "$root/build-analyze" -S "$root" \
        -DSKYWAY_ANALYZE=ON
else
    echo "clang++ not found: analyze tree degrades to -Werror" \
         "(thread-safety analysis needs clang; see" \
         "docs/STATIC_ANALYSIS.md)"
    cmake -B "$root/build-analyze" -S "$root" -DSKYWAY_ANALYZE=ON
fi
cmake --build "$root/build-analyze" -j "$jobs"

echo "check_all: all gates green"
