/**
 * @file
 * The simulated cluster fabric: a set of numbered nodes exchanging
 * byte-payload messages over reliable in-order channels. Messages move
 * instantly in real time (everything is in-process); the wire cost is
 * charged to per-node simulated clocks through the NetworkCostModel,
 * and per-pair byte counters feed the "remote bytes" columns of the
 * evaluation figures.
 */

#ifndef SKYWAY_NET_CLUSTER_HH
#define SKYWAY_NET_CLUSTER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "net/costmodel.hh"
#include "support/logging.hh"

namespace skyway
{

/** A node id within one cluster. */
using NodeId = int;

/** One in-flight message. */
struct NetMessage
{
    NodeId src;
    NodeId dst;
    int tag;
    std::vector<std::uint8_t> payload;
};

/**
 * The cluster fabric. Thread-safe: Skyway's multi-threaded senders may
 * push concurrently.
 */
class ClusterNetwork
{
  public:
    /**
     * A synchronous request handler a node may register (the type
     * registry driver's daemon thread, paper Algorithm 1 part 2).
     * Receives the request payload, returns the reply payload.
     */
    using RequestHandler =
        std::function<std::vector<std::uint8_t>(NodeId src, int tag,
                                                const std::vector<
                                                    std::uint8_t> &)>;

    explicit ClusterNetwork(int node_count,
                            NetworkCostModel model = gigabitEthernet());

    int nodeCount() const { return nodeCount_; }
    const NetworkCostModel &model() const { return model_; }

    /** Enqueue a one-way message; charges wire time to the sender. */
    void send(NodeId src, NodeId dst, int tag,
              std::vector<std::uint8_t> payload);

    /**
     * Dequeue the next message addressed to @p dst (any source/tag);
     * returns false when the mailbox is empty.
     */
    bool poll(NodeId dst, NetMessage &out);

    /**
     * Dequeue the next message for @p dst with tag @p tag, skipping
     * (and retaining) others. False when none pending.
     */
    bool pollTag(NodeId dst, int tag, NetMessage &out);

    /**
     * Returns destination storage for an incoming payload of the
     * given size — how a receiver posts a buffer for the fabric to
     * deliver into (Skyway input buffers hand out old-gen chunk
     * space).
     */
    using ReserveFn = std::function<std::uint8_t *(std::size_t)>;

    /**
     * Like pollTag, but delivers the payload *into caller-posted
     * storage*: the fabric asks @p reserve for a destination of the
     * payload's size and moves the bytes straight there — the modeled
     * equivalent of a NIC DMA-ing into a posted receive buffer (a
     * real socket transport would recv() into it directly). The
     * receiver-side staging copy is gone.
     *
     * Returns the payload size, 0 for an empty (end-of-stream)
     * payload — @p reserve is not called — or -1 when no message with
     * the tag is pending.
     */
    std::ptrdiff_t pollTagInto(NodeId dst, int tag,
                               const ReserveFn &reserve);

    /** Register @p handler as @p node's synchronous request daemon. */
    void registerHandler(NodeId node, RequestHandler handler);

    /**
     * Synchronous request/reply (models a blocking socket round trip).
     * Charges request wire time to @p src and reply wire time to
     * @p src as well — the requester blocks for the full RTT.
     */
    std::vector<std::uint8_t> request(NodeId src, NodeId dst, int tag,
                                      const std::vector<std::uint8_t> &
                                          payload);

    /// @name Accounting
    /// @{

    /** Simulated send-side wire nanoseconds charged to @p node. */
    std::uint64_t wireNs(NodeId node) const { return wireNs_[node]; }

    /** Bytes @p src has pushed toward @p dst. */
    std::uint64_t
    bytesSent(NodeId src, NodeId dst) const
    {
        return bytes_[src * nodeCount_ + dst];
    }

    /** Total bytes sent by @p src to any remote node. */
    std::uint64_t totalBytesSent(NodeId src) const;

    /** Total message count from @p src. */
    std::uint64_t messagesSent(NodeId src) const { return msgs_[src]; }

    void resetAccounting();

    /// @}

  private:
    void charge(NodeId src, NodeId dst, std::size_t bytes);

    int nodeCount_;
    NetworkCostModel model_;
    mutable std::mutex mutex_;
    std::vector<std::deque<NetMessage>> mailboxes_;
    std::vector<RequestHandler> handlers_;
    std::vector<std::uint64_t> wireNs_;
    std::vector<std::uint64_t> bytes_;
    std::vector<std::uint64_t> msgs_;
};

} // namespace skyway

#endif // SKYWAY_NET_CLUSTER_HH
