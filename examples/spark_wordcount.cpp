/**
 * @file
 * The paper's introduction scenario: a Spark job whose shuffle is
 * dominated by S/D. Runs WordCount on the minispark substrate under
 * the Java serializer, Kryo, and Skyway, and prints the per-worker
 * cost breakdown side by side — the switch between serializers is
 * one factory object, mirroring how the paper swaps
 * spark.serializer.
 */

#include <cstdio>

#include "minispark/apps.hh"
#include "sd/javaserializer.hh"

using namespace skyway;

int
main()
{
    // The corpus: Zipf-distributed words, as natural text.
    TextSpec spec;
    spec.lines = 20000;
    spec.wordsPerLine = 12;
    spec.vocabulary = 20000;
    std::vector<std::string> lines = generateText(spec);
    std::printf("corpus: %zu lines, ~%d words\n\n", lines.size(),
                static_cast<int>(lines.size()) * spec.wordsPerLine);

    ClassCatalog catalog = makeStandardCatalog();
    defineSparkAppClasses(catalog);

    std::printf("%-8s %9s %9s %9s %9s %9s %9s  %12s\n", "config",
                "compute", "ser", "write", "deser", "read", "total",
                "shuffle_MB");
    double first_checksum = 0;
    for (const std::string which : {"java", "kryo", "skyway"}) {
        std::shared_ptr<KryoRegistry> reg;
        std::unique_ptr<SerializerFactory> plain;
        auto sky = std::make_unique<ClusterSkywayFactory>();
        if (which == "java") {
            plain = std::make_unique<JavaSerializerFactory>();
        } else if (which == "kryo") {
            reg = std::make_shared<KryoRegistry>();
            registerSparkAppKryo(*reg);
            plain = std::make_unique<KryoSerializerFactory>(reg);
        }
        SerializerFactory &factory =
            plain ? *plain : static_cast<SerializerFactory &>(*sky);

        SparkCluster cluster(catalog, factory, SparkConfig{});
        if (!plain)
            sky->bind(cluster);

        SparkAppResult res = runWordCount(cluster, lines);
        const PhaseBreakdown &b = res.average;
        std::printf("%-8s %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f  %12.2f\n",
                    which.c_str(), b.computeNs / 1e6, b.serNs / 1e6,
                    b.writeIoNs / 1e6, b.deserNs / 1e6,
                    b.readIoNs / 1e6, b.totalNs() / 1e6,
                    res.shuffledBytes / 1e6);

        if (first_checksum == 0)
            first_checksum = res.checksum;
        else if (first_checksum != res.checksum)
            fatal("serializers disagree on the word counts!");
    }
    std::printf("\nall three configurations computed identical word "
                "counts (checksum %.0f)\n",
                first_checksum);
    return 0;
}
