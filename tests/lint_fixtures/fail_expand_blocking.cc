// lint-invariants fixture (MUST FAIL rule 3): the compact-segment
// expander reaches a blocking socket write through a helper — it
// would wedge the event loop that drives commitReserved. Not
// compiled — parsed by tools/lint_invariants.py --selftest.

void
sendFully(int fd, const unsigned char *buf, unsigned long len)
{
    while (len) {
        long n = ::send(fd, buf, len, 0);
        buf += n;
        len -= static_cast<unsigned long>(n);
    }
}

void
ackItem(int fd, unsigned long off)
{
    unsigned char frame[8] = {};
    sendFully(fd, frame, sizeof(frame)); // blocks mid-expansion
}

unsigned long
expandSegment(const unsigned char *data, unsigned long len)
{
    unsigned long off = 0;
    while (off < len) {
        ackItem(0, off);
        ++off;
    }
    return off;
}
