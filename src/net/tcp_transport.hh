/**
 * @file
 * The real-socket transport: every node owns a loopback TCP listener
 * and a poll()-based pump thread; bytes genuinely cross the kernel's
 * TCP stack, so the modeled `net.wire_ns` clocks finally have a
 * `net.real_wire_ns` to be validated against.
 *
 * Topology (see net/frame.hh for the wire encoding):
 *
 *  - Data plane: one connection per (src, dst, tag) stream, created
 *    lazily by the first send and announced with a handshake carrying
 *    the sender's NodeId and the stream tag. send() never blocks the
 *    caller: frames are queued to the source node's pump thread,
 *    which writes them in order (mailbox semantics survive TCP
 *    backpressure). Receives are consumer-driven: pollTag() reads
 *    only connections carrying the wanted tag, and pollTagInto()
 *    recv()s the payload *directly into ReserveFn-posted storage* —
 *    old-gen chunk space on the Skyway receive path — so the
 *    zero-copy handoff survives the wire (`net.recv_into_bytes`
 *    counts exactly these bytes).
 *
 *  - Control plane: one connection per (src, dst) node pair carrying
 *    request/reply frames for the blocking request() round trip (the
 *    type-registry LOOKUP daemon). The destination node's pump
 *    thread reads requests, runs the registered handler, and writes
 *    the reply. The requester waits with a timeout and resends up to
 *    a bounded retry budget (`net.connect_retries`), matching stale
 *    replies away by request id — which is why handlers on this path
 *    must be idempotent.
 *
 * poll/pollTag/pollTagInto are non-blocking probes exactly like the
 * model transport's: "false / -1" means nothing has *arrived yet*,
 * and every consumer in the repository already retries in a loop, so
 * in-flight bytes are indistinguishable from a late sender.
 */

#ifndef SKYWAY_NET_TCP_TRANSPORT_HH
#define SKYWAY_NET_TCP_TRANSPORT_HH

#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "net/transport.hh"

namespace skyway
{

class TcpTransport final : public Transport
{
  public:
    TcpTransport(int node_count, WireCounters &wire);
    ~TcpTransport() override;

    TcpTransport(const TcpTransport &) = delete;
    TcpTransport &operator=(const TcpTransport &) = delete;

    const char *name() const override { return "tcp"; }

    void send(NodeId src, NodeId dst, int tag,
              std::vector<std::uint8_t> payload) override;
    bool poll(NodeId dst, NetMessage &out) override;
    bool pollTag(NodeId dst, int tag, NetMessage &out) override;
    std::ptrdiff_t pollTagInto(NodeId dst, int tag,
                               const ReserveFn &reserve) override;
    void registerHandler(NodeId node, RequestHandler handler) override;
    std::vector<std::uint8_t>
    request(NodeId src, NodeId dst, int tag,
            const std::vector<std::uint8_t> &payload,
            const RequestOptions &opts) override;

    /** The loopback port node @p node listens on (tests). */
    std::uint16_t listenPort(NodeId node) const;

  private:
    /** One accepted data-plane connection (fixed src and tag). */
    struct DataConn
    {
        int fd;
        NodeId src;
        int tag;
    };

    /** Everything one node owns. */
    struct Node
    {
        int listenFd = -1;
        std::uint16_t port = 0;

        /** Wakes the pump out of poll() (self-pipe). */
        int wakeRead = -1;
        int wakeWrite = -1;

        /**
         * Inbound data connections plus local (src == dst)
         * deliveries, shared between the pump (which registers
         * accepted connections) and consumer threads (which read
         * them).
         */
        std::mutex recvMutex;
        std::vector<DataConn> dataConns;
        std::deque<NetMessage> selfBox;

        /** One queued data frame: header + payload, written back to
         *  back by the pump (the payload vector is the sender's own
         *  buffer, moved — no send-side staging copy). */
        struct TxFrame
        {
            int fd;
            std::vector<std::uint8_t> header;
            std::vector<std::uint8_t> payload;
        };

        /** Outbound frame queue, drained by this node's pump. */
        std::mutex sendMutex;
        std::map<std::pair<NodeId, int>, int> dataOut;
        std::deque<TxFrame> txQueue;

        /** Outbound control connections, one per destination; the
         *  per-destination mutex serializes request/reply exchanges
         *  on the shared connection. */
        std::mutex ctrlMutex;
        std::map<NodeId, int> ctrlOut;
        std::map<NodeId, std::unique_ptr<std::mutex>> ctrlPair;
        std::uint32_t nextReqId = 1;

        /** Inbound control connections; pump-owned, no lock. */
        std::vector<int> ctrlIn;

        std::thread pump;
    };

    void pumpLoop(NodeId node);
    void wakePump(NodeId node);
    void acceptPending(Node &n);
    /** Serve one request frame from @p fd; false when the peer hung
     *  up (the fd is closed and must be dropped). */
    bool serveControl(NodeId node, int fd);

    /** Connect to @p dst's listener and send @p shake; retries (and
     *  counts) transient failures. */
    int connectTo(NodeId dst, const std::uint8_t *shake,
                  std::size_t shake_len);
    int dataConnFor(Node &n, NodeId src, NodeId dst, int tag);
    int ctrlConnFor(Node &n, NodeId src, NodeId dst);

    /** Write all of @p buf to @p fd, timing it into realWireNs. */
    void writeTimed(int fd, const std::uint8_t *buf, std::size_t len);

    int nodeCount_;
    WireCounters &wire_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::mutex handlerMutex_;
    std::vector<RequestHandler> handlers_;
    std::atomic<bool> running_{true};
};

} // namespace skyway

#endif // SKYWAY_NET_TCP_TRANSPORT_HH
