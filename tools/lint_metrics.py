#!/usr/bin/env python3
"""Metric-name lint: keep src/ and docs/OBSERVABILITY.md in sync.

Extracts every metric registration literal in src/ --
``counter("...")``, ``gauge("...")``, ``histogram("...")`` -- and every
backticked dotted metric name in the "Metric namespace" section of
docs/OBSERVABILITY.md, then fails if either set has an entry the other
lacks. Registered as the `lint-metrics` CTest target.
"""

import pathlib
import re
import sys

REG_RE = re.compile(r'\b(?:counter|gauge|histogram)\(\s*"([a-z0-9_.]+)"')
DOC_RE = re.compile(r"`([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+)`")


def code_names(src: pathlib.Path) -> dict:
    names = {}
    for path in sorted(src.rglob("*.cc")) + sorted(src.rglob("*.hh")):
        for i, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1
        ):
            for name in REG_RE.findall(line):
                names.setdefault(name, f"{path}:{i}")
    return names


def doc_names(doc: pathlib.Path) -> dict:
    text = doc.read_text(encoding="utf-8")
    start = text.find("### Metric namespace")
    if start < 0:
        sys.exit(f"lint-metrics: no 'Metric namespace' section in {doc}")
    end = text.find("\n## ", start)
    section = text[start : end if end > 0 else len(text)]
    names = {}
    for i, line in enumerate(section.splitlines(), 1):
        for name in DOC_RE.findall(line):
            names.setdefault(name, f"{doc} (section line {i})")
    return names


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    code = code_names(root / "src")
    docs = doc_names(root / "docs" / "OBSERVABILITY.md")

    failures = []
    for name in sorted(set(code) - set(docs)):
        failures.append(
            f"registered in code but missing from the docs table: "
            f"{name} ({code[name]})"
        )
    for name in sorted(set(docs) - set(code)):
        failures.append(
            f"documented but never registered in src/: "
            f"{name} ({docs[name]})"
        )

    if failures:
        print("lint-metrics FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(
        f"lint-metrics OK: {len(code)} metric names match between "
        f"src/ and docs/OBSERVABILITY.md"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
