#include "workloads/text.hh"

namespace skyway
{

std::string
vocabularyWord(std::size_t r)
{
    // Base-26 spelling of the rank with a letter prefix: short names
    // for frequent words, as in natural text.
    std::string w;
    std::size_t x = r;
    do {
        w.push_back(static_cast<char>('a' + x % 26));
        x /= 26;
    } while (x > 0);
    return w;
}

std::vector<std::string>
generateText(const TextSpec &spec)
{
    Rng rng(spec.seed);
    std::vector<std::string> lines;
    lines.reserve(spec.lines);
    for (std::size_t i = 0; i < spec.lines; ++i) {
        std::string line;
        for (int w = 0; w < spec.wordsPerLine; ++w) {
            if (w)
                line.push_back(' ');
            line += vocabularyWord(
                rng.nextPowerLaw(spec.vocabulary, spec.alpha));
        }
        lines.push_back(std::move(line));
    }
    return lines;
}

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start < line.size()) {
        std::size_t end = line.find(' ', start);
        if (end == std::string::npos)
            end = line.size();
        if (end > start)
            out.push_back(line.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

} // namespace skyway
