#!/usr/bin/env python3
"""Repo-specific concurrency lints (docs/STATIC_ANALYSIS.md).

Three rules, each codifying a bug class this transport has actually
shipped (and fixed) before — or, for rule 3, one an adjacent code
path makes easy to ship:

Rule 1 — **no blocking send(2)/recv(2) reachable from an event-loop
handler**. The per-node epoll loop is the fabric's liveness: one loop
blocked on a full peer socket wedges every stream it pumps (the old
write-write cycle). The rule parses every function defined in
src/net/*.cc, builds the (naive, name-based) call graph, and walks it
from each ``eventLoop`` definition: any reachable call to an
unbounded-blocking primitive (``sendFully``, ``recvFully``, or a raw
``::send``/``::recv`` without MSG_DONTWAIT) is a failure unless the
path crosses an allowlisted function.

Rule 2 — **no mutex held across a network round trip**. A lock held
over ``request()`` (or a class-loader ``klasses_.load()``, whose hook
re-enters the registry) couples lock hold time to network latency and
deadlocks the moment the handler needs the same lock. The rule scans
every src/ translation unit, tracks lock-guard scopes by brace depth,
and flags round-trip calls made while any scope is open.

Rule 3 — **no blocking call in the compact-segment expand path**.
``InputBuffer::expandSegment`` runs inside ``commitReserved``/``feed``,
which the TCP event loop drives directly when it recv()s a shuffle
payload into chunk storage: a blocking primitive (or network round
trip) reached from the expander wedges the loop exactly like rule 1's
bug. The rule merges the function tables of the expand-path
translation units (src/skyway/inputbuffer.cc, wirecompact.cc) and
walks the call graph from ``expandSegment``/``expandCompactSegment``,
flagging the same blocking primitives as rule 1 plus direct
``request()`` round trips.

All rules carry an explicit allowlist with a justification per entry
— by-design blocking (the control plane serves strict request/reply
exchanges) is *checked*, not silenced: an allowlisted name that stops
matching anything fails the lint, so entries cannot rot.

``--selftest`` runs both engines over tests/lint_fixtures/ — every
``fail_*.cc`` snippet must trip its rule, every ``pass_*.cc`` must
not. Registered as the `lint-invariants` / `lint-invariants-selftest`
CTest targets (label: lint).
"""

import pathlib
import re
import sys

# --------------------------------------------------------------------
# Allowlists. Every entry must keep matching real code; a stale entry
# fails the lint so the list cannot silently outlive its reason.
# --------------------------------------------------------------------

#: Rule 1: functions the event-loop walk does not descend into.
ALLOW_LOOP_BLOCKING = {
    "serveControl": (
        "control-plane handler: serves one strict request/reply "
        "exchange with blocking reads/writes by design; bounded by "
        "the peer's single in-flight request (TRANSPORT.md control "
        "plane)"
    ),
    "acceptPending": (
        "handshake read on a freshly accepted connection: the "
        "connecting side sends the handshake immediately after "
        "connect(), so the read is bounded and happens once per "
        "connection"
    ),
    "connectTo": (
        "pair/control establishment: blocking connect + handshake "
        "send, once per connection, with poolMutex_ dropped (see "
        "pairFdOrClaim) so no other node's loop can stall on it"
    ),
}

#: Rule 2: (file suffix, lock variable name) -> justification.
ALLOW_LOCK_ROUND_TRIP = {
    ("src/net/tcp_transport.cc", "exchange"): (
        "TcpTransport::request's per-(src,dst) exchange mutex IS the "
        "protocol: the shared control connection carries strict "
        "request/reply exchanges, so the lock must span the round "
        "trip; it guards nothing else and nothing else ever takes it"
    ),
}

#: Rule 1: unbounded-blocking primitives by name.
BLOCKING_PRIMITIVES = {"sendFully", "recvFully"}

#: Rule 2: calls that (may) perform a network round trip — the
#: blocking request() API, the class-loader hook (which re-enters the
#: registry and may itself issue a LOOKUP), and the control plane's
#: blocking write (half of an exchange).
ROUND_TRIP_RE = re.compile(
    r"(?:\.|->)request\s*\(|klasses_\.load\s*\(|\bwriteTimed\s*\("
)

#: Lock-scope openers (raw std guards are banned in favor of the
#: annotated wrappers, but the scanner understands both so a
#: regression is caught, not missed).
LOCK_RE = re.compile(
    r"\b(?:MutexLock|std::lock_guard<[^>]*>|std::unique_lock<[^>]*>|"
    r"std::scoped_lock(?:<[^>]*>)?)\s+(\w+)\s*[({]"
)

# Repo style puts the (possibly qualified) function name at column 0
# with the return type on the previous line and the open brace on its
# own column-0 line.
FUNC_DEF_RE = re.compile(r"^([A-Za-z_]\w*(?:::~?[A-Za-z_]\w*)*)\s*\(")
CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")


def strip_comments(text: str) -> str:
    """Drop comments and literal contents, preserving line structure.

    String/char literals are blanked so a braced JSON fragment inside
    a string cannot corrupt the brace-depth tracking."""
    text = re.sub(r"/\*.*?\*/", lambda m: re.sub(r"[^\n]", " ", m.group()),
                  text, flags=re.S)
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r'"(?:\\.|[^"\\\n])*"', '""', text)
    return re.sub(r"'(?:\\.|[^'\\\n]){1,3}'", "''", text)


def parse_functions(text: str) -> dict:
    """name -> (start_line, body_text) for column-0 definitions."""
    lines = strip_comments(text).splitlines()
    funcs = {}
    i = 0
    while i < len(lines):
        m = FUNC_DEF_RE.match(lines[i])
        if not m:
            i += 1
            continue
        # Find the body's opening brace (column 0, repo style).
        j = i
        while j < len(lines) and not lines[j].startswith("{"):
            if lines[j].rstrip().endswith(";"):  # declaration only
                break
            j += 1
        if j >= len(lines) or not lines[j].startswith("{"):
            i += 1
            continue
        depth = 0
        body = []
        k = j
        while k < len(lines):
            depth += lines[k].count("{") - lines[k].count("}")
            body.append((k + 1, lines[k]))
            if depth <= 0:
                break
            k += 1
        name = m.group(1).split("::")[-1]
        funcs[name] = (i + 1, body)
        i = k + 1
    return funcs


def raw_blocking_net_call(body, idx) -> bool:
    """True if body[idx] starts a ::send/::recv without MSG_DONTWAIT
    in the statement (joined across up to 3 lines)."""
    stmt = " ".join(line for _, line in body[idx : idx + 3])
    return "MSG_DONTWAIT" not in stmt.split(";")[0]


def check_loop_blocking(path: pathlib.Path, text: str) -> tuple:
    """Rule 1 over one file. Returns (violations, allow_hits)."""
    funcs = parse_functions(text)
    if "eventLoop" not in funcs:
        return [], set()

    violations = []
    allow_hits = set()
    seen = set()
    # (function, path-so-far) BFS from the loop.
    queue = [("eventLoop", ["eventLoop"])]
    while queue:
        fn, chain = queue.pop(0)
        if fn in seen:
            continue
        seen.add(fn)
        _, body = funcs[fn]
        for idx, (lineno, line) in enumerate(body):
            for m in re.finditer(r"::(send|recv)\s*\(", line):
                if raw_blocking_net_call(body, idx):
                    violations.append(
                        f"{path}:{lineno}: blocking ::{m.group(1)}() "
                        f"reachable from the event loop via "
                        f"{' -> '.join(chain)}"
                    )
            for m in CALL_RE.finditer(line):
                callee = m.group(1)
                if callee in BLOCKING_PRIMITIVES:
                    violations.append(
                        f"{path}:{lineno}: blocking {callee}() "
                        f"reachable from the event loop via "
                        f"{' -> '.join(chain)}"
                    )
                elif callee in ALLOW_LOOP_BLOCKING:
                    allow_hits.add(callee)
                elif callee in funcs and callee not in seen:
                    queue.append((callee, chain + [callee]))
    return violations, allow_hits


#: Rule 3: the expand path's roots and translation units. The walk
#: merges the function tables so the cross-file call from
#: InputBuffer::expandSegment into wire::expandCompactSegment is
#: followed.
EXPAND_ROOTS = ("expandSegment", "expandCompactSegment")
EXPAND_PATH_FILES = (
    "src/skyway/inputbuffer.cc",
    "src/skyway/wirecompact.cc",
)


def check_expand_blocking(files) -> list:
    """Rule 3 over the expand-path units. `files`: [(path, text)]."""
    funcs = {}  # name -> (path, body)
    for path, text in files:
        for name, (_, body) in parse_functions(text).items():
            funcs.setdefault(name, (path, body))
    roots = [r for r in EXPAND_ROOTS if r in funcs]
    if not roots:
        return [
            "rule 3 found none of "
            + "/".join(EXPAND_ROOTS)
            + " — the expand path moved; update EXPAND_PATH_FILES"
        ]
    violations = []
    seen = set()
    queue = [(r, [r]) for r in roots]
    while queue:
        fn, chain = queue.pop(0)
        if fn in seen:
            continue
        seen.add(fn)
        path, body = funcs[fn]
        for idx, (lineno, line) in enumerate(body):
            for m in re.finditer(r"::(send|recv)\s*\(", line):
                if raw_blocking_net_call(body, idx):
                    violations.append(
                        f"{path}:{lineno}: blocking ::{m.group(1)}() "
                        f"in the expand path via {' -> '.join(chain)}"
                    )
            if re.search(r"(?:\.|->)request\s*\(", line):
                violations.append(
                    f"{path}:{lineno}: network round trip in the "
                    f"expand path via {' -> '.join(chain)}"
                )
            for m in CALL_RE.finditer(line):
                callee = m.group(1)
                if callee in BLOCKING_PRIMITIVES:
                    violations.append(
                        f"{path}:{lineno}: blocking {callee}() in "
                        f"the expand path via {' -> '.join(chain)}"
                    )
                elif callee in funcs and callee not in seen:
                    queue.append((callee, chain + [callee]))
    return violations


def check_lock_round_trip(path: pathlib.Path, text: str) -> tuple:
    """Rule 2 over one file. Returns (violations, allow_hits)."""
    violations = []
    allow_hits = set()
    depth = 0
    held = []  # (declared_depth, lock_variable, lineno)
    for lineno, line in enumerate(strip_comments(text).splitlines(), 1):
        for m in LOCK_RE.finditer(line):
            held.append((depth, m.group(1), lineno))
        if held and ROUND_TRIP_RE.search(line):
            allowed = [
                v for _, v, _ in held
                if any(
                    str(path).endswith(sfx) and v == var
                    for (sfx, var) in ALLOW_LOCK_ROUND_TRIP
                )
            ]
            if len(allowed) == len(held):
                allow_hits.update(allowed)
            else:
                locks = ", ".join(
                    f"{v} (line {ln})" for _, v, ln in held
                    if v not in allowed
                )
                violations.append(
                    f"{path}:{lineno}: network round trip with "
                    f"lock(s) held: {locks}"
                )
        depth += line.count("{") - line.count("}")
        while held and depth < held[-1][0]:
            held.pop()
    return violations, allow_hits


def run(root: pathlib.Path) -> int:
    violations = []
    loop_allow_hits = set()
    lock_allow_hits = set()

    for path in sorted((root / "src" / "net").glob("*.cc")):
        v, a = check_loop_blocking(path, path.read_text(encoding="utf-8"))
        violations += v
        loop_allow_hits |= a

    for sub in ("src",):
        for path in sorted((root / sub).rglob("*.cc")) + sorted(
            (root / sub).rglob("*.hh")
        ):
            v, a = check_lock_round_trip(
                path, path.read_text(encoding="utf-8")
            )
            violations += v
            lock_allow_hits |= a

    violations += check_expand_blocking(
        [(root / f, (root / f).read_text(encoding="utf-8"))
         for f in EXPAND_PATH_FILES if (root / f).exists()]
    )

    # Stale-allowlist check: every entry must still match real code.
    for name in sorted(set(ALLOW_LOOP_BLOCKING) - loop_allow_hits):
        violations.append(
            f"allowlist entry '{name}' (rule 1) no longer matches any "
            "call reachable from an event loop — remove it"
        )
    for (sfx, var) in sorted(
        set(ALLOW_LOCK_ROUND_TRIP)
        - {(s, v) for (s, v) in ALLOW_LOCK_ROUND_TRIP
           if v in lock_allow_hits}
    ):
        violations.append(
            f"allowlist entry '{var}' in {sfx} (rule 2) no longer "
            "matches any round trip under a lock — remove it"
        )

    if violations:
        print("lint-invariants FAILED:")
        for v in violations:
            print(f"  {v}")
        return 1
    print(
        "lint-invariants OK: no blocking net call reachable from an "
        "event loop (checked allowlist: "
        f"{', '.join(sorted(loop_allow_hits))}); no lock held across "
        "a round trip (checked allowlist: "
        f"{', '.join(sorted(lock_allow_hits))}); no blocking call in "
        "the compact expand path"
    )
    return 0


def selftest(root: pathlib.Path) -> int:
    fixtures = root / "tests" / "lint_fixtures"
    cases = sorted(fixtures.glob("*.cc"))
    if not cases:
        sys.exit(f"lint-invariants selftest: no fixtures in {fixtures}")
    failures = []
    for path in cases:
        text = path.read_text(encoding="utf-8")
        if "expand_blocking" in path.name:
            found = check_expand_blocking([(path, text)])
        elif "loop_blocking" in path.name:
            found, _ = check_loop_blocking(path, text)
        elif "lock_roundtrip" in path.name:
            found, _ = check_lock_round_trip(path, text)
        else:
            failures.append(f"{path.name}: unknown rule in file name")
            continue
        expect_fail = path.name.startswith("fail_")
        if expect_fail and not found:
            failures.append(f"{path.name}: expected a violation, got none")
        elif not expect_fail and found:
            failures.append(
                f"{path.name}: expected clean, got: {found[0]}"
            )
    if failures:
        print("lint-invariants selftest FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"lint-invariants selftest OK: {len(cases)} fixtures behave")
    return 0


def main() -> int:
    args = [a for a in sys.argv[1:] if a != "--selftest"]
    root = pathlib.Path(args[0] if args else ".")
    if "--selftest" in sys.argv[1:]:
        return selftest(root)
    return run(root)


if __name__ == "__main__":
    sys.exit(main())
