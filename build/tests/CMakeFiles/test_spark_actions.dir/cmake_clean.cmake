file(REMOVE_RECURSE
  "CMakeFiles/test_spark_actions.dir/test_spark_actions.cc.o"
  "CMakeFiles/test_spark_actions.dir/test_spark_actions.cc.o.d"
  "test_spark_actions"
  "test_spark_actions.pdb"
  "test_spark_actions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spark_actions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
