#include "klass/klass.hh"

#include <memory>

#include "support/logging.hh"

namespace skyway
{

char
fieldDescriptorChar(FieldType t)
{
    switch (t) {
      case FieldType::Boolean: return 'Z';
      case FieldType::Byte: return 'B';
      case FieldType::Char: return 'C';
      case FieldType::Short: return 'S';
      case FieldType::Int: return 'I';
      case FieldType::Long: return 'J';
      case FieldType::Float: return 'F';
      case FieldType::Double: return 'D';
      case FieldType::Ref: return 'L';
    }
    panic("fieldDescriptorChar: bad FieldType");
}

FieldType
fieldTypeFromDescriptor(char c)
{
    switch (c) {
      case 'Z': return FieldType::Boolean;
      case 'B': return FieldType::Byte;
      case 'C': return FieldType::Char;
      case 'S': return FieldType::Short;
      case 'I': return FieldType::Int;
      case 'J': return FieldType::Long;
      case 'F': return FieldType::Float;
      case 'D': return FieldType::Double;
      case 'L': return FieldType::Ref;
      default: panic(std::string("fieldTypeFromDescriptor: bad char ") + c);
    }
}

const FieldDesc *
Klass::findField(const std::string &name) const
{
    auto it = fieldIndex_.find(name);
    if (it == fieldIndex_.end())
        return nullptr;
    return &allFields_[it->second];
}

const FieldDesc &
Klass::requireField(const std::string &name) const
{
    const FieldDesc *f = findField(name);
    panicIf(!f, "Klass " + name_ + ": no field named " + name);
    return *f;
}

int
Klass::superChainLength() const
{
    int n = 0;
    for (const Klass *k = super_; k; k = k->super())
        ++n;
    return n;
}

void
ClassCatalog::define(ClassDef def)
{
    auto [it, inserted] = defs_.emplace(def.name, std::move(def));
    panicIf(!inserted, "ClassCatalog: duplicate definition of " +
                           it->first);
}

const ClassDef *
ClassCatalog::find(const std::string &name) const
{
    auto it = defs_.find(name);
    return it == defs_.end() ? nullptr : &it->second;
}

void
defineBootstrapClasses(ClassCatalog &catalog)
{
    // java.lang.String: a character array plus the cached hash, as in
    // the JDK. The hash field participates in the hashcode-preservation
    // experiments.
    catalog.define(ClassDef{
        "java.lang.String",
        "",
        {
            {"value", FieldType::Ref, "[C"},
            {"hash", FieldType::Int, ""},
        },
    });
    catalog.define(ClassDef{
        "java.lang.Integer", "", {{"value", FieldType::Int, ""}}});
    catalog.define(ClassDef{
        "java.lang.Long", "", {{"value", FieldType::Long, ""}}});
    catalog.define(ClassDef{
        "java.lang.Double", "", {{"value", FieldType::Double, ""}}});
    catalog.define(ClassDef{
        "java.lang.Boolean", "", {{"value", FieldType::Boolean, ""}}});
}

KlassTable::KlassTable(const ClassCatalog &catalog, ObjectFormat format)
    : catalog_(catalog), format_(format)
{
}

Klass *
KlassTable::findLoaded(const std::string &name)
{
    auto it = loaded_.find(name);
    return it == loaded_.end() ? nullptr : it->second.get();
}

Klass *
KlassTable::load(const std::string &name)
{
    if (Klass *k = findLoaded(name))
        return k;
    if (!name.empty() && name[0] == '[')
        return loadArrayKlass(name);
    const ClassDef *def = catalog_.find(name);
    if (!def)
        fatal("KlassTable: class not found in catalog: " + name);
    return loadInstanceKlass(*def);
}

Klass *
KlassTable::loadInstanceKlass(const ClassDef &def)
{
    auto k = std::unique_ptr<Klass>(new Klass());
    k->name_ = def.name;
    k->format_ = format_;
    if (!def.superName.empty())
        k->super_ = load(def.superName);
    layout(*k, def);

    Klass *raw = k.get();
    loaded_.emplace(def.name, std::move(k));
    loadOrder_.push_back(raw);
    if (loadHook_)
        loadHook_(loadHookCtx_, *raw);
    return raw;
}

Klass *
KlassTable::loadArrayKlass(const std::string &descriptor)
{
    panicIf(descriptor.size() < 2, "bad array descriptor: " + descriptor);
    auto k = std::unique_ptr<Klass>(new Klass());
    k->name_ = descriptor;
    k->format_ = format_;
    k->isArray_ = true;

    char d = descriptor[1];
    if (d == 'L') {
        panicIf(descriptor.back() != ';',
                "bad ref-array descriptor: " + descriptor);
        k->elemType_ = FieldType::Ref;
        k->elemClassName_ = descriptor.substr(2, descriptor.size() - 3);
    } else if (d == '[') {
        // Array of arrays; the element class is the nested descriptor.
        k->elemType_ = FieldType::Ref;
        k->elemClassName_ = descriptor.substr(1);
    } else {
        k->elemType_ = fieldTypeFromDescriptor(d);
    }
    k->instanceBytes_ = format_.arrayHeaderBytes();

    Klass *raw = k.get();
    loaded_.emplace(descriptor, std::move(k));
    loadOrder_.push_back(raw);
    if (loadHook_)
        loadHook_(loadHookCtx_, *raw);
    return raw;
}

void
KlassTable::layout(Klass &k, const ClassDef &def)
{
    // Super-class fields come first, at the offsets the super assigned;
    // then this class's declared fields, packed in declaration order
    // with natural alignment, as HotSpot does.
    std::size_t offset = format_.headerBytes();
    if (k.super_) {
        k.allFields_ = k.super_->allFields_;
        for (const auto &f : k.allFields_)
            offset = std::max<std::size_t>(offset,
                                           f.offset + fieldSize(f.type));
    }

    for (const FieldDef &fd : def.fields) {
        // Java permits a subclass field to shadow a superclass field
        // (they get distinct storage, resolved by static type); our
        // reflective access is name-keyed, so shadowing would make it
        // ambiguous. Reject it at load time instead of corrupting
        // silently.
        for (const FieldDesc &existing : k.allFields_) {
            panicIf(existing.name == fd.name,
                    "KlassTable: field '" + fd.name + "' in " +
                        def.name + " shadows an existing field; "
                        "shadowing is not supported");
        }
        std::size_t sz = fieldSize(fd.type);
        offset = alignUp(offset, sz);
        FieldDesc desc{fd.name, fd.type, static_cast<std::uint32_t>(offset),
                       fd.refClass};
        k.ownFields_.push_back(desc);
        k.allFields_.push_back(desc);
        offset += sz;
    }

    k.instanceBytes_ = wordAlign(offset);

    for (std::uint32_t i = 0; i < k.allFields_.size(); ++i) {
        const FieldDesc &f = k.allFields_[i];
        k.fieldIndex_[f.name] = i;
        if (f.type == FieldType::Ref)
            k.refOffsets_.push_back(f.offset);
        else
            k.primDataBytes_ += fieldSize(f.type);
    }
}

Klass *
KlassTable::arrayOfPrimitive(FieldType elem)
{
    return load(arrayDescriptorOfPrimitive(elem));
}

Klass *
KlassTable::arrayOfRefs(const std::string &elemClass)
{
    return load(arrayDescriptorOfRefs(elemClass));
}

std::string
arrayDescriptorOfPrimitive(FieldType elem)
{
    panicIf(elem == FieldType::Ref,
            "arrayDescriptorOfPrimitive: use arrayDescriptorOfRefs");
    return std::string("[") + fieldDescriptorChar(elem);
}

std::string
arrayDescriptorOfRefs(const std::string &elemClass)
{
    if (!elemClass.empty() && elemClass[0] == '[')
        return "[" + elemClass;
    return "[L" + elemClass + ";";
}

} // namespace skyway
