/**
 * @file
 * Encoding of the Skyway `baddr` header word (paper sections 4.2 and
 * its "Support for Threads" discussion):
 *
 *     byte  7      shuffle-phase id (sID)
 *     bytes 5..6   sending stream/thread id
 *     bytes 0..4   relative address of the object's clone in that
 *                  stream's output buffer (40 bits)
 *
 * A baddr is *valid* only when its sID equals the current shuffle
 * phase; contents from earlier phases are stale by construction, so
 * the word never needs clearing between phases.
 */

#ifndef SKYWAY_SKYWAY_BADDR_HH
#define SKYWAY_SKYWAY_BADDR_HH

#include <cstdint>

#include "support/types.hh"

namespace skyway
{
namespace baddr
{

constexpr int sidShift = 56;
constexpr int tidShift = 40;
constexpr Word relMask = (1ull << 40) - 1;
constexpr Word tidMask = 0xffffull << tidShift;

/** Largest relative buffer address representable (40 bits = 1 TB). */
constexpr std::uint64_t maxRel = relMask;

constexpr Word
compose(std::uint8_t sid, std::uint16_t tid, std::uint64_t rel)
{
    return (static_cast<Word>(sid) << sidShift) |
           (static_cast<Word>(tid) << tidShift) | (rel & relMask);
}

constexpr std::uint8_t
sidOf(Word w)
{
    return static_cast<std::uint8_t>(w >> sidShift);
}

constexpr std::uint16_t
tidOf(Word w)
{
    return static_cast<std::uint16_t>((w & tidMask) >> tidShift);
}

constexpr std::uint64_t
relOf(Word w)
{
    return w & relMask;
}

} // namespace baddr

/**
 * In-buffer marker words (the paper's "top marks" and backward
 * references). Both set the mark word's reserved top bits, which are
 * zero in every real object header (see objectformat.hh), so a
 * receiver scanning the stream at record boundaries can never confuse
 * a marker with an object's mark word. Markers delimit the stream but
 * occupy no logical (relative-address) space.
 */
namespace marker
{

constexpr Word reserved = 0x3ull << 62;

/** The next record in the stream is a top-level object. */
constexpr Word topMark = reserved | 0x70AD;

/**
 * A top-level object that was already copied earlier in this phase;
 * one slot word follows (0 = null root, else relative address + 1).
 */
constexpr Word backRef = reserved | 0xBACF;

/**
 * A compact-encoded segment follows (docs/WIRE_FORMAT.md): a varint
 * payload length and then tagged compact items, re-expanded to full
 * heap format by the receiver's linear scan. Never appears inside a
 * raw record run — only at a segment boundary.
 */
constexpr Word compactSeg = reserved | 0xC0DE;

constexpr bool
isMarker(Word w)
{
    return (w & reserved) == reserved;
}

} // namespace marker
} // namespace skyway

#endif // SKYWAY_SKYWAY_BADDR_HH
