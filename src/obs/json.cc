#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "support/logging.hh"

namespace skyway
{
namespace obs
{

void
jsonEscape(std::string_view s, std::string &out)
{
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
JsonWriter::beforeValue()
{
    panicIf(done_, "JsonWriter: document already complete");
    if (!stack_.empty() && stack_.back() == Frame::Object)
        panicIf(!keyPending_, "JsonWriter: value in object needs key()");
    if (needComma_ && !keyPending_)
        out_ += ',';
    needComma_ = false;
    keyPending_ = false;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_ += '{';
    stack_.push_back(Frame::Object);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    panicIf(stack_.empty() || stack_.back() != Frame::Object ||
                keyPending_,
            "JsonWriter: mismatched endObject");
    stack_.pop_back();
    out_ += '}';
    needComma_ = true;
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_ += '[';
    stack_.push_back(Frame::Array);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    panicIf(stack_.empty() || stack_.back() != Frame::Array,
            "JsonWriter: mismatched endArray");
    stack_.pop_back();
    out_ += ']';
    needComma_ = true;
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    panicIf(stack_.empty() || stack_.back() != Frame::Object ||
                keyPending_,
            "JsonWriter: key() outside object or doubled");
    if (needComma_)
        out_ += ',';
    needComma_ = false;
    out_ += '"';
    jsonEscape(k, out_);
    out_ += "\":";
    keyPending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view s)
{
    beforeValue();
    out_ += '"';
    jsonEscape(s, out_);
    out_ += '"';
    needComma_ = true;
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    out_ += std::to_string(v);
    needComma_ = true;
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    out_ += std::to_string(v);
    needComma_ = true;
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    if (!std::isfinite(v)) {
        // JSON has no Infinity/NaN; represent as null.
        out_ += "null";
    } else {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        out_ += buf;
    }
    needComma_ = true;
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    out_ += v ? "true" : "false";
    needComma_ = true;
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    out_ += "null";
    needComma_ = true;
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::raw(std::string_view json)
{
    panicIf(json.empty(), "JsonWriter: raw() with empty splice");
    beforeValue();
    out_.append(json);
    needComma_ = true;
    if (stack_.empty())
        done_ = true;
    return *this;
}

std::string
JsonWriter::str() &&
{
    panicIf(!stack_.empty() || !done_,
            "JsonWriter: document incomplete");
    return std::move(out_);
}

namespace
{

/** Validating recursive-descent parser over a string_view. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    bool
    run(std::string &error)
    {
        try {
            skipWs();
            parseValue(0);
            skipWs();
            if (pos_ != text_.size())
                fail("trailing content after document");
        } catch (const std::string &msg) {
            error = msg;
            return false;
        }
        return true;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw "JSON error at byte " + std::to_string(pos_) + ": " +
            what;
    }

    char
    peek() const
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    void
    expect(std::string_view lit)
    {
        if (text_.compare(pos_, lit.size(), lit) != 0)
            fail("expected '" + std::string(lit) + "'");
        pos_ += lit.size();
    }

    void
    parseString()
    {
        expect("\"");
        while (true) {
            char c = peek();
            ++pos_;
            if (c == '"')
                return;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c == '\\') {
                char e = peek();
                ++pos_;
                switch (e) {
                case '"':
                case '\\':
                case '/':
                case 'b':
                case 'f':
                case 'n':
                case 'r':
                case 't':
                    break;
                case 'u':
                    for (int i = 0; i < 4; ++i) {
                        if (!std::isxdigit(
                                static_cast<unsigned char>(peek())))
                            fail("bad \\u escape");
                        ++pos_;
                    }
                    break;
                default:
                    fail("unknown escape");
                }
            }
        }
    }

    void
    parseNumber()
    {
        if (peek() == '-')
            ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            fail("malformed number");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                fail("malformed fraction");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                fail("malformed exponent");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
    }

    void
    parseValue(int depth)
    {
        if (depth > maxDepth)
            fail("nesting too deep");
        switch (peek()) {
        case '{': {
            ++pos_;
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return;
            }
            while (true) {
                skipWs();
                parseString();
                skipWs();
                expect(":");
                skipWs();
                parseValue(depth + 1);
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect("}");
                return;
            }
        }
        case '[': {
            ++pos_;
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return;
            }
            while (true) {
                skipWs();
                parseValue(depth + 1);
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect("]");
                return;
            }
        }
        case '"':
            parseString();
            return;
        case 't':
            expect("true");
            return;
        case 'f':
            expect("false");
            return;
        case 'n':
            expect("null");
            return;
        default:
            parseNumber();
            return;
        }
    }

    static constexpr int maxDepth = 128;

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

bool
jsonValidate(std::string_view text, std::string &error)
{
    return Parser(text).run(error);
}

} // namespace obs
} // namespace skyway
