/**
 * @file
 * Tests for the adaptive compact wire encoding (docs/WIRE_FORMAT.md):
 * round-trip graph isomorphism for every encoding mode (raw records,
 * padding-stripped instances, varint-narrowed references, RLE'd and
 * plain primitive arrays, reference arrays, mixed per-class segments),
 * the Auto decision policy (fast links pass through, slow links
 * compact, measured feedback demotes bad bets), accounting on both
 * ends, ParallelSender fan-out and TCP transport parity under forced
 * compaction, the SkywaySan corruption kinds for compact segments, and
 * the receiver veto (validated corrupt input dies with a diagnostic
 * instead of crashing the expander).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sanitize/corrupt.hh"
#include "skyway/parallel.hh"
#include "skyway/streams.hh"
#include "skyway/wirecompact.hh"
#include "testclasses.hh"

namespace skyway
{
namespace
{

using sanitize::compactCorruptionKinds;
using sanitize::CorruptionKind;
using sanitize::corruptionKindName;
using sanitize::expectedFaults;
using sanitize::indexStream;
using sanitize::injectCorruption;
using sanitize::WireCheckConfig;
using sanitize::WireFault;
using sanitize::WireIndex;
using sanitize::WireValidator;
using testing_support::makeCycle;
using testing_support::makeList;
using testing_support::makeMixed;
using testing_support::makePoint;
using testing_support::makeSharedPair;
using testing_support::makeTestCatalog;

class WireCompactTest : public ::testing::Test
{
  protected:
    WireCompactTest()
        : catalog_(makeTestCatalog()),
          net_(3),
          driver_(catalog_, net_, 0, 0),
          nodeA_(catalog_, net_, 1, 0),
          nodeB_(catalog_, net_, 2, 0)
    {
        // Every test pins the mode it exercises, so the suite is
        // invariant under the SKYWAY_WIRE_COMPACT environment knob.
        nodeA_.skyway().setWireCompactMode(WireCompactMode::Off);
        nodeB_.skyway().setWireCompactMode(WireCompactMode::Off);
    }

    WireCheckConfig
    cfg()
    {
        WireCheckConfig c;
        c.wireFormat = nodeB_.heap().format();
        return c;
    }

    /** Serialize the graphs at @p roots under @p mode. */
    std::vector<std::uint8_t>
    capture(const std::vector<Address> &roots, WireCompactMode mode,
            std::size_t buffer_bytes = 64 << 10)
    {
        nodeA_.skyway().setWireCompactMode(mode);
        nodeA_.skyway().shuffleStart();
        std::vector<std::uint8_t> bytes;
        SkywayObjectOutputStream out(
            nodeA_.skyway(),
            [&bytes](const std::uint8_t *d, std::size_t n) {
                bytes.insert(bytes.end(), d, d + n);
            },
            buffer_bytes);
        for (Address r : roots)
            out.writeObject(r);
        out.flush();
        return bytes;
    }

    /** Feed wire bytes into node B and return the first root. */
    Address
    receive(const std::vector<std::uint8_t> &bytes)
    {
        SkywayObjectInputStream in(nodeB_.skyway());
        in.feed(bytes.data(), bytes.size());
        in.finish();
        keep_.push_back(in.releaseBuffer());
        return keep_.back()->roots().at(0);
    }

    /** Ingest one segment through the zero-copy reserve/commit API. */
    std::unique_ptr<InputBuffer>
    receiveZeroCopy(const std::vector<std::vector<std::uint8_t>> &segs,
                    std::size_t chunk_bytes = defaultInputChunkBytes)
    {
        auto buf = std::make_unique<InputBuffer>(nodeB_.skyway(),
                                                 chunk_bytes);
        for (const auto &seg : segs) {
            std::uint8_t *dst = buf->reserveChunk(seg.size());
            std::memcpy(dst, seg.data(), seg.size());
            buf->commitChunk(seg.size());
        }
        buf->finalize();
        return buf;
    }

    /** Capture under Force and Off, assert the compact stream is a
     *  genuine compact segment, smaller, and re-expands to a graph
     *  isomorphic to the original through BOTH receive paths. */
    void
    roundTripCompact(Address root, double max_ratio = 1.0)
    {
        std::vector<std::uint8_t> raw =
            capture({root}, WireCompactMode::Off);
        std::vector<std::uint8_t> compact =
            capture({root}, WireCompactMode::Force);
        ASSERT_GE(compact.size(), wordSize);
        EXPECT_TRUE(wire::isCompactSegment(compact.data(),
                                           compact.size()));
        EXPECT_LT(static_cast<double>(compact.size()),
                  max_ratio * static_cast<double>(raw.size()))
            << "compact " << compact.size() << "B vs raw "
            << raw.size() << "B";

        Address viaFeed = receive(compact);
        EXPECT_TRUE(graphsEqual(nodeA_.heap(), root, nodeB_.heap(),
                                viaFeed));

        keep_.push_back(receiveZeroCopy({compact}));
        Address viaZeroCopy = keep_.back()->roots().at(0);
        EXPECT_TRUE(graphsEqual(nodeA_.heap(), root, nodeB_.heap(),
                                viaZeroCopy));
    }

    ClassCatalog catalog_;
    ClusterNetwork net_;
    Jvm driver_;
    Jvm nodeA_;
    Jvm nodeB_;
    std::vector<std::unique_ptr<InputBuffer>> keep_;
};

TEST_F(WireCompactTest, OffModeShipsRawSegments)
{
    Address p = makePoint(nodeA_, 3, 4);
    std::vector<std::uint8_t> bytes =
        capture({p}, WireCompactMode::Off);
    EXPECT_FALSE(wire::isCompactSegment(bytes.data(), bytes.size()));
    // Raw streams start with a top mark, as they always have.
    Word first;
    std::memcpy(&first, bytes.data(), wordSize);
    EXPECT_EQ(first, marker::topMark);
}

TEST_F(WireCompactTest, PaddingStrippedInstancesRoundTrip)
{
    // test.Point (two ints) pays 8B padding plus 32B header per 8B of
    // data in raw format — the headline compaction case.
    LocalRoots roots(nodeA_.heap());
    Address m = makeMixed(nodeA_, roots, "compact mixed graph");
    roundTripCompact(m);
}

TEST_F(WireCompactTest, VarintReferencesRoundTripLinkedList)
{
    // A long list is reference-dominated: every 8-byte slot word
    // narrows to a short varint. Expect a substantial cut.
    LocalRoots roots(nodeA_.heap());
    Address head = makeList(nodeA_, roots, 300);
    roundTripCompact(head, 0.75);
}

TEST_F(WireCompactTest, SharingAndCyclesSurviveCompaction)
{
    LocalRoots roots(nodeA_.heap());
    Address pair = makeSharedPair(nodeA_, roots);
    roundTripCompact(pair);

    Address cyc = makeCycle(nodeA_, roots);
    std::vector<std::uint8_t> compact =
        capture({cyc}, WireCompactMode::Force);
    Address q = receive(compact);
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), cyc, nodeB_.heap(), q));
}

TEST_F(WireCompactTest, ZeroHeavyArrayCompressesWithRle)
{
    // 4096 longs, 1 in 64 nonzero: the RLE coder should collapse the
    // zero runs and beat raw by an order of magnitude.
    std::vector<std::int64_t> data(4096, 0);
    for (std::size_t i = 0; i < data.size(); i += 64)
        data[i] = static_cast<std::int64_t>(i) * 7 + 1;
    Address arr = nodeA_.builder().makeLongArray(data);
    roundTripCompact(arr, 0.2);
}

TEST_F(WireCompactTest, RandomArrayShipsPlainPayload)
{
    // Incompressible payload: Force still compacts (header + varints
    // only), and the payload must survive byte-exactly.
    Rng rng(99);
    std::vector<std::int64_t> data(512);
    for (auto &v : data)
        v = static_cast<std::int64_t>(rng.nextU64());
    Address arr = nodeA_.builder().makeLongArray(data);
    std::vector<std::uint8_t> compact =
        capture({arr}, WireCompactMode::Force);
    // Plain payload: at least the 4096 data bytes are on the wire.
    EXPECT_GE(compact.size(), data.size() * sizeof(std::int64_t));
    Address q = receive(compact);
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), arr, nodeB_.heap(), q));
}

TEST_F(WireCompactTest, ReferenceArrayRoundTripsWithNullHoles)
{
    LocalRoots roots(nodeA_.heap());
    Address arr = nodeA_.builder().makeRefArray("test.Point", 10);
    std::size_t ra = roots.push(arr);
    for (std::size_t i = 0; i < 10; i += 2)
        array::setRef(nodeA_.heap(), roots.get(ra), i,
                      makePoint(nodeA_, static_cast<int>(i), -9));
    roundTripCompact(roots.get(ra));
}

TEST_F(WireCompactTest, IdentityHashSurvivesCompaction)
{
    Address p = makePoint(nodeA_, 21, 42);
    std::int32_t h = nodeA_.heap().identityHash(p);
    std::vector<std::uint8_t> compact =
        capture({p}, WireCompactMode::Force);
    Address q = receive(compact);
    EXPECT_TRUE(mark::hasHash(nodeB_.heap().markOf(q)));
    EXPECT_EQ(nodeB_.heap().identityHash(q), h);
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), p, nodeB_.heap(), q, true));
}

TEST_F(WireCompactTest, MixedPerClassSegmentCarriesRawRecords)
{
    // Pin the long-array class to raw in the shared cache: its record
    // must travel as a verbatim raw item INSIDE the compact segment
    // while the instance graph beside it compacts.
    LocalRoots roots(nodeA_.heap());
    Address m = makeMixed(nodeA_, roots, "compact half");
    Rng rng(7);
    std::vector<std::int64_t> data(256);
    for (auto &v : data)
        v = static_cast<std::int64_t>(rng.nextU64());
    Address longs = nodeA_.builder().makeLongArray(data);
    std::size_t rl = roots.push(longs);

    // Decide "[J" raw up-front (its tid is assigned on first send, so
    // seed it through an Off-mode capture first).
    capture({roots.get(rl)}, WireCompactMode::Off);
    Klass *longArrK = nodeA_.klasses().load("[J");
    ASSERT_NE(longArrK->tid(), Klass::unregisteredTid);
    nodeA_.skyway().setWireCompactMode(WireCompactMode::Force);
    nodeA_.skyway().wireEncodings().setDecision(longArrK->tid(), 0);

    nodeA_.skyway().shuffleStart();
    std::vector<std::uint8_t> bytes;
    SkywayObjectOutputStream out(
        nodeA_.skyway(),
        [&bytes](const std::uint8_t *d, std::size_t n) {
            bytes.insert(bytes.end(), d, d + n);
        },
        64 << 10);
    out.writeObject(m);
    out.writeObject(roots.get(rl));
    out.flush();

    ASSERT_TRUE(wire::isCompactSegment(bytes.data(), bytes.size()));
    WireIndex index = indexStream(nodeB_.resolver(), cfg(), bytes);
    EXPECT_FALSE(index.compactItemOffsets.empty());

    SkywayObjectInputStream in(nodeB_.skyway());
    in.feed(bytes.data(), bytes.size());
    in.finish();
    keep_.push_back(in.releaseBuffer());
    const auto &received = keep_.back()->roots();
    ASSERT_EQ(received.size(), 2u);
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), m, nodeB_.heap(),
                            received.at(0)));
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), roots.get(rl),
                            nodeB_.heap(), received.at(1)));
}

TEST_F(WireCompactTest, AutoPassesThroughOnFastLinks)
{
    // Threshold above 100%: the stage must return the sink unchanged
    // and the stream must be byte-identical to Off mode.
    LocalRoots roots(nodeA_.heap());
    Address m = makeMixed(nodeA_, roots, "fast link");
    std::vector<std::uint8_t> raw =
        capture({m}, WireCompactMode::Off);
    nodeA_.skyway().setWireNsPerByte(0.1); // 80 Gb/s-class fabric
    std::vector<std::uint8_t> fast =
        capture({m}, WireCompactMode::Auto);
    EXPECT_EQ(fast, raw);
    nodeA_.skyway().setWireNsPerByte(8.0);
}

TEST_F(WireCompactTest, AutoCompactsOnSlowLinks)
{
    // Default Jvm link cost is gigabit Ethernet (8 ns/byte): the
    // threshold is 6.25% and padded instances clear it easily.
    ASSERT_DOUBLE_EQ(nodeA_.skyway().wireNsPerByte(), 8.0);
    LocalRoots roots(nodeA_.heap());
    Address m = makeMixed(nodeA_, roots, "slow link");
    std::vector<std::uint8_t> bytes =
        capture({m}, WireCompactMode::Auto);
    ASSERT_TRUE(wire::isCompactSegment(bytes.data(), bytes.size()));
    Address q = receive(bytes);
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), m, nodeB_.heap(), q));
}

TEST_F(WireCompactTest, MeasuredFeedbackDemotesOverestimatedClass)
{
    // Large random long arrays: the static estimate (16-element
    // guess) says ~16% saving, but at 4096 elements the header share
    // vanishes and the realized saving is ~0%. After enough measured
    // records the shared cache must demote the class to raw.
    nodeA_.skyway().setWireCompactMode(WireCompactMode::Auto);
    Rng rng(4242);
    LocalRoots roots(nodeA_.heap());
    std::vector<std::size_t> slots;
    for (int i = 0; i < 40; ++i) {
        std::vector<std::int64_t> data(4096);
        for (auto &v : data)
            v = static_cast<std::int64_t>(rng.nextU64());
        slots.push_back(roots.push(nodeA_.builder().makeLongArray(data)));
    }

    nodeA_.skyway().shuffleStart();
    std::vector<std::uint8_t> sink;
    SkywayObjectOutputStream out(
        nodeA_.skyway(),
        [&sink](const std::uint8_t *d, std::size_t n) {
            sink.insert(sink.end(), d, d + n);
        },
        64 << 10); // ~1.9 arrays per segment: many sync points
    for (std::size_t s : slots)
        out.writeObject(roots.get(s));
    out.flush();

    Klass *longArrK = nodeA_.klasses().load("[J");
    ASSERT_NE(longArrK->tid(), Klass::unregisteredTid);
    EXPECT_EQ(nodeA_.skyway().wireEncodings().decision(longArrK->tid()),
              0)
        << "measured feedback failed to demote large random arrays";

    // A fresh stream now ships such arrays raw — byte-identical to
    // Off mode. (Streams consult the shared cache, so no setMode call
    // here: that would reset the decisions we just measured.)
    std::vector<std::int64_t> data(4096);
    for (auto &v : data)
        v = static_cast<std::int64_t>(rng.nextU64());
    Address arr = nodeA_.builder().makeLongArray(data);
    std::size_t ra = roots.push(arr);
    nodeA_.skyway().shuffleStart();
    std::vector<std::uint8_t> after;
    SkywayObjectOutputStream demoted(
        nodeA_.skyway(),
        [&after](const std::uint8_t *d, std::size_t n) {
            after.insert(after.end(), d, d + n);
        },
        64 << 10);
    demoted.writeObject(roots.get(ra));
    demoted.flush();
    std::vector<std::uint8_t> raw =
        capture({roots.get(ra)}, WireCompactMode::Off);
    EXPECT_EQ(after, raw);
}

TEST_F(WireCompactTest, ExpandAccountingExcludesZeroCopy)
{
    LocalRoots roots(nodeA_.heap());
    Address m = makeMixed(nodeA_, roots, "accounting");
    std::vector<std::uint8_t> compact =
        capture({m}, WireCompactMode::Force);

    keep_.push_back(receiveZeroCopy({compact}));
    const SkywayReceiveStats &st = keep_.back()->stats();
    // Compact segments are rebuilt, not aliased: nothing may count as
    // zero-copy, and every received byte is an expanded byte.
    EXPECT_EQ(st.zeroCopyBytes, 0u);
    EXPECT_GT(st.expandedBytes, compact.size());
    EXPECT_EQ(st.expandedBytes, st.bytesReceived);
    EXPECT_GT(st.expandNs, 0u);
    EXPECT_GT(st.objectsReceived, 0u);
}

TEST_F(WireCompactTest, ParallelFanOutUnderForcedCompaction)
{
    constexpr unsigned N = 4;
    nodeA_.skyway().setWireCompactMode(WireCompactMode::Force);

    LocalRoots roots(nodeA_.heap());
    Address shared = makeMixed(nodeA_, roots, "contended subtree");
    std::size_t rs = roots.push(shared);
    Klass *pairK = nodeA_.klasses().load("test.Pair");
    std::vector<std::size_t> tops;
    for (unsigned t = 0; t < N; ++t) {
        Address p = nodeA_.heap().allocateInstance(pairK);
        std::size_t rp = roots.push(p);
        field::setRef(nodeA_.heap(), roots.get(rp),
                      pairK->requireField("left"), roots.get(rs));
        field::setRef(nodeA_.heap(), roots.get(rp),
                      pairK->requireField("right"),
                      makePoint(nodeA_, static_cast<int>(t), -1));
        tops.push_back(rp);
    }

    nodeA_.skyway().shuffleStart();
    std::vector<std::vector<std::vector<std::uint8_t>>> segs(N);
    ParallelSendConfig pcfg;
    pcfg.threads = N;
    ParallelSender psend(
        nodeA_.skyway(),
        [&segs](unsigned w) {
            auto *mine = &segs[w];
            return [mine](const std::uint8_t *d, std::size_t n) {
                mine->emplace_back(d, d + n);
            };
        },
        pcfg);
    std::vector<Address> rootAddrs;
    for (std::size_t s : tops)
        rootAddrs.push_back(roots.get(s));
    psend.send(rootAddrs);

    for (unsigned w = 0; w < N; ++w) {
        ASSERT_FALSE(segs[w].empty()) << "worker " << w;
        for (const auto &seg : segs[w])
            EXPECT_TRUE(
                wire::isCompactSegment(seg.data(), seg.size()));
        keep_.push_back(receiveZeroCopy(segs[w]));
        const auto &buf = *keep_.back();
        EXPECT_EQ(buf.stats().zeroCopyBytes, 0u);
        EXPECT_GT(buf.stats().expandedBytes, 0u);
        ASSERT_EQ(buf.roots().size(), 1u) << "worker " << w;
        bool matched = false;
        for (Address r : rootAddrs)
            matched = matched ||
                      graphsEqual(nodeA_.heap(), r, nodeB_.heap(),
                                  buf.roots().at(0));
        EXPECT_TRUE(matched)
            << "worker " << w
            << ": received graph matches no sent root";
    }
}

TEST_F(WireCompactTest, CompactCorruptionKindsRejectedWithExpectedFault)
{
    // Mirror of the raw-stream harness loop over the compact kinds:
    // a graph with instances, references, and both array families so
    // every kind has sites.
    LocalRoots roots(nodeA_.heap());
    Address arr = nodeA_.builder().makeRefArray("test.Mixed", 3);
    std::size_t ra = roots.push(arr);
    for (std::size_t i = 0; i < 3; ++i)
        array::setRef(nodeA_.heap(), roots.get(ra), i,
                      makeMixed(nodeA_, roots,
                                "corruptible " + std::to_string(i)));
    std::vector<std::uint8_t> clean =
        capture({roots.get(ra)}, WireCompactMode::Force);
    ASSERT_TRUE(wire::isCompactSegment(clean.data(), clean.size()));
    WireIndex index = indexStream(nodeB_.resolver(), cfg(), clean);
    ASSERT_FALSE(index.compactItemOffsets.empty());

    for (CorruptionKind kind : compactCorruptionKinds()) {
        for (std::uint64_t seed = 0; seed < 6; ++seed) {
            Rng rng(0xD1E7 + seed * 977);
            std::vector<std::uint8_t> bad =
                injectCorruption(index, cfg(), clean, kind, rng);
            ASSERT_NE(bad, clean)
                << corruptionKindName(kind) << " seed " << seed
                << ": injection was a no-op";

            WireValidator v(nodeB_.resolver(), cfg());
            v.feed(bad.data(), bad.size());
            v.finish();
            ASSERT_FALSE(v.ok())
                << corruptionKindName(kind) << " seed " << seed
                << ": corrupted compact stream validated clean";

            const std::vector<WireFault> &expect =
                expectedFaults(kind);
            WireFault got = v.diagnostics().front().fault;
            bool matched = false;
            for (WireFault f : expect)
                matched = matched || f == got;
            EXPECT_TRUE(matched)
                << corruptionKindName(kind) << " seed " << seed
                << ": first diagnostic "
                << v.diagnostics().front().str()
                << " not in the expected fault set";
        }
    }
}

TEST_F(WireCompactTest, ValidatedReceiverVetoesCorruptCompactInput)
{
    // With SKYWAY_WIRE_CHECK semantics on, a corrupt compact segment
    // must die in the validator with a SkywaySan diagnostic BEFORE
    // the expander touches it — a veto, not a crash.
    LocalRoots roots(nodeA_.heap());
    Address m = makeMixed(nodeA_, roots, "veto me");
    std::vector<std::uint8_t> clean =
        capture({m}, WireCompactMode::Force);
    WireIndex index = indexStream(nodeB_.resolver(), cfg(), clean);
    Rng rng(31337);
    std::vector<std::uint8_t> bad = injectCorruption(
        index, cfg(), clean, CorruptionKind::CompactBadTag, rng);

    nodeB_.skyway().debug().validateWire = true;
    EXPECT_DEATH(
        {
            InputBuffer buf(nodeB_.skyway(), defaultInputChunkBytes);
            std::uint8_t *dst = buf.reserveChunk(bad.size());
            std::memcpy(dst, bad.data(), bad.size());
            buf.commitChunk(bad.size());
            buf.finalize();
        },
        "SkywaySan");
    nodeB_.skyway().debug().validateWire = false;
}

TEST_F(WireCompactTest, EnvironmentKnobParses)
{
    const char *old = std::getenv("SKYWAY_WIRE_COMPACT");
    std::string saved = old ? old : "";

    ::setenv("SKYWAY_WIRE_COMPACT", "off", 1);
    EXPECT_EQ(wireCompactModeFromEnv(), WireCompactMode::Off);
    ::setenv("SKYWAY_WIRE_COMPACT", "auto", 1);
    EXPECT_EQ(wireCompactModeFromEnv(), WireCompactMode::Auto);
    ::setenv("SKYWAY_WIRE_COMPACT", "force", 1);
    EXPECT_EQ(wireCompactModeFromEnv(), WireCompactMode::Force);
    ::setenv("SKYWAY_WIRE_COMPACT", "bogus", 1);
    EXPECT_EQ(wireCompactModeFromEnv(), WireCompactMode::Off);
    ::unsetenv("SKYWAY_WIRE_COMPACT");
    EXPECT_EQ(wireCompactModeFromEnv(), WireCompactMode::Off);

    if (old)
        ::setenv("SKYWAY_WIRE_COMPACT", saved.c_str(), 1);
}

/** TCP-transport parity: the compact stream over real sockets. */
class TcpWireCompactTest : public ::testing::Test
{
  protected:
    TcpWireCompactTest()
        : catalog_(makeTestCatalog()),
          net_(3, gigabitEthernet(), TransportKind::Tcp),
          driver_(catalog_, net_, 0, 0),
          nodeA_(catalog_, net_, 1, 0),
          nodeB_(catalog_, net_, 2, 0)
    {
        net_.resetAccounting();
    }

    ClassCatalog catalog_;
    ClusterNetwork net_;
    Jvm driver_;
    Jvm nodeA_;
    Jvm nodeB_;
    std::vector<std::unique_ptr<InputBuffer>> keep_;
};

TEST_F(TcpWireCompactTest, SocketStreamsMatchModelTransportUnderForce)
{
    constexpr std::size_t kBuf = 4 << 10;
    nodeA_.skyway().setWireCompactMode(WireCompactMode::Force);
    nodeB_.skyway().setWireCompactMode(WireCompactMode::Force);

    LocalRoots roots(nodeA_.heap());
    Address head = makeList(nodeA_, roots, 300);

    // Model-transport reference: same graph, same buffer size,
    // in-memory sink.
    nodeA_.skyway().shuffleStart();
    std::vector<std::uint8_t> reference;
    {
        SkywayObjectOutputStream ref(
            nodeA_.skyway(),
            [&reference](const std::uint8_t *d, std::size_t n) {
                reference.insert(reference.end(), d, d + n);
            },
            kBuf);
        ref.writeObject(head);
        ref.flush();
    }

    nodeA_.skyway().shuffleStart();
    SkywaySocketOutputStream out(nodeA_.skyway(), net_, nodeA_.id(),
                                 nodeB_.id(), 77, kBuf);
    SkywaySocketInputStream in(nodeB_.skyway(), net_, nodeB_.id(), 77);
    out.writeObject(head);
    out.close();
    while (!in.pump()) {
    }
    Address q = in.readObject();
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), head, nodeB_.heap(), q));

    // Parity: the socket fabric carried exactly the bytes the model
    // path produced — the compact rewrite is transport-independent.
    // (totalBytes() counts the semantic raw stream ahead of the
    // compaction stage, so it exceeds the fabric count.)
    ASSERT_TRUE(
        wire::isCompactSegment(reference.data(), reference.size()));
    EXPECT_EQ(net_.bytesSent(nodeA_.id(), nodeB_.id()),
              reference.size());
    EXPECT_GT(out.totalBytes(), reference.size());

    keep_.push_back(in.releaseBuffer());
    const SkywayReceiveStats &st = keep_.back()->stats();
    EXPECT_EQ(st.zeroCopyBytes, 0u);
    EXPECT_GT(st.expandedBytes,
              net_.bytesSent(nodeA_.id(), nodeB_.id()))
        << "expansion must rebuild more bytes than the wire carried";
}

} // namespace
} // namespace skyway
