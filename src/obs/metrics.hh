/**
 * @file
 * The process-wide metrics registry (paper section 5's methodology,
 * turned into a subsystem): every interesting quantity in the runtime
 * — objects copied, bytes on the wire, GC pauses — is a named metric
 * registered once and updated lock-free on the hot path.
 *
 * Three metric kinds:
 *
 *  - Counter:   monotonically increasing u64 (relaxed atomic add);
 *  - Gauge:     signed level that moves both ways (heap in use);
 *  - Histogram: fixed-bucket latency/size distribution — bucket
 *               boundaries are chosen at registration, recording is a
 *               linear scan over a handful of boundaries plus three
 *               relaxed atomic adds.
 *
 * Registration (name lookup) takes a mutex and may allocate; it is
 * meant to run once per site — instrumented code caches the returned
 * reference (metric objects are never moved or freed). Updates never
 * lock and never allocate, which keeps the instrumentation overhead
 * within the ≤2% budget on the transfer hot path.
 *
 * Naming convention (see docs/OBSERVABILITY.md): dotted lowercase
 * namespaces — `skyway.sender.*`, `skyway.receiver.*`, `net.*`,
 * `gc.*`, `sd.<name>.*` — with `_bytes`/`_ns` unit suffixes.
 */

#ifndef SKYWAY_OBS_METRICS_HH
#define SKYWAY_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/thread_annotations.hh"

namespace skyway
{
namespace obs
{

/** A monotonically increasing counter. */
class Counter
{
  public:
    void
    add(std::uint64_t d)
    {
        v_.fetch_add(d, std::memory_order_relaxed);
    }

    void inc() { add(1); }

    std::uint64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** A level that can move both ways. */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        v_.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t d)
    {
        v_.fetch_add(d, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void reset() { set(0); }

  private:
    std::atomic<std::int64_t> v_{0};
};

/**
 * A fixed-bucket histogram. Bucket i counts samples with
 * value <= bounds[i]; one implicit overflow bucket counts the rest.
 * Bounds are fixed at registration so recording is allocation-free.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<std::uint64_t> bounds);

    void record(std::uint64_t v);

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    const std::vector<std::uint64_t> &bounds() const { return bounds_; }

    /** Samples in bucket @p i; i == bounds().size() is overflow. */
    std::uint64_t
    bucketCount(std::size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    void reset();

  private:
    std::vector<std::uint64_t> bounds_;
    /** bounds_.size() + 1 slots; the last is the overflow bucket. */
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
};

/** @p count boundaries starting at @p first, multiplied by @p factor. */
std::vector<std::uint64_t> exponentialBounds(std::uint64_t first,
                                             double factor,
                                             std::size_t count);

/** A point-in-time copy of every registered metric's value. */
struct MetricsSnapshot
{
    /** Counters and gauges flattened to (name, value), name-sorted. */
    std::vector<std::pair<std::string, std::int64_t>> scalars;

    /**
     * The per-key difference @p this - @p base. Keys registered after
     * @p base was taken appear with their full value, so two
     * snapshots of the same registry always diff cleanly.
     */
    MetricsSnapshot deltaSince(const MetricsSnapshot &base) const;
};

/**
 * The registry: name -> metric. One process-wide instance
 * (MetricsRegistry::global()) serves the whole runtime; tests may
 * construct private registries.
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &global();

    /**
     * The counter named @p name, creating it on first use. The
     * returned reference is stable for the registry's lifetime.
     */
    Counter &counter(std::string_view name);

    Gauge &gauge(std::string_view name);

    /**
     * The histogram named @p name. @p bounds is consulted only on
     * first registration; later calls return the existing histogram.
     */
    Histogram &histogram(std::string_view name,
                         const std::vector<std::uint64_t> &bounds);

    /** Counters + gauges as a flat name-sorted scalar snapshot. */
    MetricsSnapshot snapshot() const;

    /**
     * Serialize everything to one JSON object:
     * {"counters":{...},"gauges":{...},"histograms":{...}}.
     */
    std::string toJson() const;

    /** Zero every value; registrations (and references) survive. */
    void resetValues();

  private:
    struct Entry
    {
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    mutable Mutex mutex_;
    /** Ordered so snapshots and JSON are deterministically sorted.
     *  The lock covers the map only — the metric objects it points to
     *  are updated lock-free through stable references. */
    std::map<std::string, Entry, std::less<>> entries_ GUARDED_BY(
        mutex_);
};

} // namespace obs
} // namespace skyway

#endif // SKYWAY_OBS_METRICS_HH
