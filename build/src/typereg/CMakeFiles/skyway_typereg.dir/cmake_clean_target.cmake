file(REMOVE_RECURSE
  "libskyway_typereg.a"
)
