/**
 * @file
 * Figure 7 of the paper: the Java Serializer Benchmark Set (JSBS),
 * made distributed — every node serializes a batch of MediaContent
 * objects, broadcasts the bytes to the other nodes, and deserializes
 * what it receives. One row per S/D library, reporting
 * serialization, deserialization, and (modeled gigabit) network time,
 * sorted by total; Skyway's row comes from the same harness through
 * its drop-in serializer adapter.
 *
 * The paper's headline numbers this reproduces in shape: Skyway is
 * the fastest of all libraries (2.2x over kryo-manual, 67x over the
 * Java serializer) while shipping ~50% more bytes.
 */

#include <algorithm>
#include <vector>

#include "bench/benchutil.hh"
#include "sd/kryoserializer.hh"
#include "skyway/streams.hh"

using namespace skyway;

namespace
{

struct Row
{
    std::string name;
    double serMs, deserMs, netMs;
    double bytesPerObject;

    double total() const { return serMs + deserMs + netMs; }
};

/** The kryo-manual hand-written functions for the media model. */
void
registerMediaKryo(KryoRegistry &reg)
{
    kryoRegisterBuiltins(reg);
    KryoManual manual;
    manual.write = [](KryoSerializer &kryo, Address obj,
                      ByteSink &out) {
        MediaSchema schema(kryo.env().klasses);
        MediaValues v = extractMedia(kryo.env(), schema, obj);
        // Hand-inlined positional encoding, as a user-written
        // Kryo serializer would do.
        out.writeString(v.uri);
        out.writeString(v.title);
        out.writeVarI32(v.width);
        out.writeVarI32(v.height);
        out.writeString(v.format);
        out.writeVarI64(v.duration);
        out.writeVarI64(v.size);
        out.writeVarI32(v.bitrate);
        out.writeU8(v.hasBitrate);
        out.writeVarU64(v.persons.size());
        for (const auto &p : v.persons)
            out.writeString(p);
        out.writeVarI32(v.player);
        out.writeString(v.copyright);
        out.writeVarU64(v.images.size());
        for (const auto &img : v.images) {
            out.writeString(img.uri);
            out.writeString(img.title);
            out.writeVarI32(img.width);
            out.writeVarI32(img.height);
            out.writeVarI32(img.size);
        }
    };
    manual.read = [](KryoSerializer &kryo,
                     ByteSource &in) -> Address {
        MediaValues v;
        v.uri = in.readString();
        v.title = in.readString();
        v.width = in.readVarI32();
        v.height = in.readVarI32();
        v.format = in.readString();
        v.duration = in.readVarI64();
        v.size = in.readVarI64();
        v.bitrate = in.readVarI32();
        v.hasBitrate = in.readU8() != 0;
        std::size_t np = in.readVarU64();
        for (std::size_t i = 0; i < np; ++i)
            v.persons.push_back(in.readString());
        v.player = in.readVarI32();
        v.copyright = in.readString();
        std::size_t ni = in.readVarU64();
        for (std::size_t i = 0; i < ni; ++i) {
            MediaValues::Img img;
            img.uri = in.readString();
            img.title = in.readString();
            img.width = in.readVarI32();
            img.height = in.readVarI32();
            img.size = in.readVarI32();
            v.images.push_back(std::move(img));
        }
        MediaSchema schema(kryo.env().klasses);
        Address out = materializeMedia(kryo.env(), schema, v);
        kryo.adoptObject(out);
        return out;
    };
    reg.registerClass("jsbs.MediaContent", std::move(manual));
    reg.registerClass("jsbs.Media");
    reg.registerClass("jsbs.Image");
    reg.registerClass("[Ljsbs.Image;");
    reg.registerClass("[Ljava.lang.String;");
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = bench::parseScale(argc, argv, 1.0);
    bench::JsonReport report(argc, argv, "bench_fig7_jsbs", scale);
    const int objects = static_cast<int>(1500 * scale);
    const int fanout = 4; // 5 nodes, broadcast to the other 4
    NetworkCostModel net = gigabitEthernet();

    ClassCatalog cat = bench::fullCatalog();
    ClusterNetwork fabric(2);
    Jvm sender(cat, fabric, 0, 0);
    Jvm receiver(cat, fabric, 1, 0);

    // The test corpus, shared by every library.
    Rng rng(2024);
    LocalRoots corpus(sender.heap());
    std::vector<std::size_t> slots;
    for (int i = 0; i < objects; ++i)
        slots.push_back(makeMediaContent(sender, corpus, rng));

    std::vector<Row> rows;
    auto runLibrary = [&](const std::string &name, Serializer &ser,
                          Serializer &des, bool per_object_reset) {
        auto jrow = report.row(name);
        // Serialize each object into its own byte array (the JSBS
        // protocol).
        std::vector<std::vector<std::uint8_t>> payloads;
        payloads.reserve(slots.size());
        std::uint64_t ser_ns = 0, deser_ns = 0, bytes = 0;
        {
            ScopedTimer t(ser_ns);
            for (std::size_t s : slots) {
                VectorSink sink;
                if (per_object_reset)
                    ser.reset();
                ser.writeObject(corpus.get(s), sink);
                ser.endStream(sink);
                payloads.push_back(sink.takeBytes());
            }
        }
        for (const auto &p : payloads)
            bytes += p.size();
        {
            ScopedTimer t(deser_ns);
            for (const auto &p : payloads) {
                ByteSource src(p);
                Address out = des.readObject(src);
                panicIf(out == nullAddr, name + ": null result");
            }
            des.releaseReceived();
        }
        double net_ms = net.transferNs(bytes) * fanout / 1e6;
        jrow.value("ser_ms", ser_ns / 1e6);
        jrow.value("deser_ms", deser_ns / 1e6);
        jrow.value("net_ms", net_ms);
        jrow.value("bytes_per_object",
                   static_cast<double>(bytes) / objects);
        rows.push_back(Row{name, ser_ns / 1e6, deser_ns / 1e6, net_ms,
                           static_cast<double>(bytes) / objects});
    };

    // The schema-compiled family.
    for (const JsbsCodec &codec : jsbsCodecs()) {
        JsbsSerializer ser(SdEnv{sender.heap(), sender.klasses()},
                           codec);
        JsbsSerializer des(SdEnv{receiver.heap(), receiver.klasses()},
                           codec);
        runLibrary(codec.name, ser, des, false);
    }

    // The Java serializer (per-object streams: descriptors dominate).
    {
        JavaSerializer ser(SdEnv{sender.heap(), sender.klasses()}, 0);
        JavaSerializer des(SdEnv{receiver.heap(), receiver.klasses()},
                           0);
        runLibrary("java", ser, des, true);
    }

    // Kryo variants.
    {
        auto reg = std::make_shared<KryoRegistry>();
        registerMediaKryo(*reg);
        KryoSerializer ser(SdEnv{sender.heap(), sender.klasses()},
                           *reg, true, "kryo-manual");
        KryoSerializer des(SdEnv{receiver.heap(), receiver.klasses()},
                           *reg, true, "kryo-manual");
        runLibrary("kryo-manual", ser, des, false);
    }
    {
        auto reg = std::make_shared<KryoRegistry>();
        kryoRegisterBuiltins(*reg);
        reg->registerClass("jsbs.MediaContent");
        reg->registerClass("jsbs.Media");
        reg->registerClass("jsbs.Image");
        reg->registerClass("[Ljsbs.Image;");
        reg->registerClass("[Ljava.lang.String;");
        KryoSerializer ser(SdEnv{sender.heap(), sender.klasses()},
                           *reg, true, "kryo");
        KryoSerializer des(SdEnv{receiver.heap(), receiver.klasses()},
                           *reg, true, "kryo");
        runLibrary("kryo", ser, des, false);
        KryoSerializer fser(SdEnv{sender.heap(), sender.klasses()},
                            *reg, false, "kryo-flat");
        KryoSerializer fdes(SdEnv{receiver.heap(), receiver.klasses()},
                            *reg, false, "kryo-flat");
        runLibrary("kryo-flat", fser, fdes, false);
    }

    // Skyway. Small input chunks: every object arrives in its own
    // buffer here, so the default 256 KB chunk would waste old gen.
    {
        SkywaySerializer ser(sender.skyway());
        SkywaySerializer des(receiver.skyway(),
                             defaultOutputBufferBytes, 4 << 10);
        runLibrary("*** skyway ***", ser, des, false);
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.total() < b.total();
              });

    bench::printHeader(
        "Figure 7: JSBS serializer comparison (fastest first)");
    std::printf("%-26s %9s %9s %9s %9s %9s\n", "library", "ser_ms",
                "deser_ms", "net_ms", "total_ms", "B/object");
    for (const Row &r : rows) {
        std::printf("%-26s %9.2f %9.2f %9.2f %9.2f %9.0f\n",
                    r.name.c_str(), r.serMs, r.deserMs, r.netMs,
                    r.total(), r.bytesPerObject);
    }

    // The paper's headline ratios.
    auto find = [&](const std::string &n) -> const Row & {
        for (const Row &r : rows)
            if (r.name == n)
                return r;
        fatal("missing row " + n);
    };
    const Row &sky = find("*** skyway ***");
    const Row &kryo = find("kryo-manual");
    const Row &java = find("java");
    std::printf("\nS/D-only speedups (paper: 2.2x over kryo-manual, "
                "67.3x over java):\n");
    std::printf("  skyway vs kryo-manual: %.1fx\n",
                (kryo.serMs + kryo.deserMs) /
                    (sky.serMs + sky.deserMs));
    std::printf("  skyway vs java:        %.1fx\n",
                (java.serMs + java.deserMs) /
                    (sky.serMs + sky.deserMs));
    std::printf("  skyway bytes vs kryo-manual: %.2fx (paper: ~1.5x "
                "more bytes)\n",
                sky.bytesPerObject / kryo.bytesPerObject);
    return 0;
}
