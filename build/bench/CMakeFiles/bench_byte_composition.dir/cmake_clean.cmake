file(REMOVE_RECURSE
  "CMakeFiles/bench_byte_composition.dir/bench_byte_composition.cc.o"
  "CMakeFiles/bench_byte_composition.dir/bench_byte_composition.cc.o.d"
  "bench_byte_composition"
  "bench_byte_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_byte_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
