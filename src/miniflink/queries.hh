/**
 * @file
 * The five TPC-H-derived batch queries of the paper's Table 3,
 * implemented as miniflink operator pipelines:
 *
 *   QA  pricing details for items shipped within the last 120 days
 *   QB  minimum-cost supplier per region for each part
 *   QC  shipping priority / potential revenue of pending orders
 *   QD  late orders per quarter of a given year
 *   QE  items returned by customers, by lost revenue
 *
 * Each query runs identically under the built-in row serializers and
 * under Skyway; results carry a checksum that must agree across the
 * two modes.
 */

#ifndef SKYWAY_MINIFLINK_QUERIES_HH
#define SKYWAY_MINIFLINK_QUERIES_HH

#include "miniflink/miniflink.hh"
#include "workloads/tpch.hh"

namespace skyway
{

struct FlinkQueryResult
{
    PhaseBreakdown average;
    PhaseBreakdown total;
    std::uint64_t shuffledRecords = 0;
    std::uint64_t shuffledBytes = 0;
    double checksum = 0;
};

FlinkQueryResult runQueryA(FlinkCluster &cluster, const TpchData &db);
FlinkQueryResult runQueryB(FlinkCluster &cluster, const TpchData &db);
FlinkQueryResult runQueryC(FlinkCluster &cluster, const TpchData &db);
FlinkQueryResult runQueryD(FlinkCluster &cluster, const TpchData &db);
FlinkQueryResult runQueryE(FlinkCluster &cluster, const TpchData &db);

/** Run query by letter 'A'..'E'. */
FlinkQueryResult runQuery(char which, FlinkCluster &cluster,
                          const TpchData &db);

/** Paper Table 3 description for a query letter. */
const char *queryDescription(char which);

} // namespace skyway

#endif // SKYWAY_MINIFLINK_QUERIES_HH
