file(REMOVE_RECURSE
  "libskyway_core.a"
)
