#include "sanitize/wirecheck.hh"

#include <algorithm>
#include <cstring>

#include "klass/klass.hh"
#include "skyway/baddr.hh"
#include "skyway/wirecompact.hh"
#include "support/logging.hh"
#include "typereg/registry.hh"

namespace skyway
{
namespace sanitize
{

namespace
{

Word
wordAt(const std::uint8_t *p)
{
    Word w;
    std::memcpy(&w, p, wordSize);
    return w;
}

/** An array length past this is corruption, not data (2^40 elements
 *  would overflow the 40-bit relative address space by itself). */
constexpr std::uint64_t maxPlausibleArrayLength = 1ull << 40;

/**
 * Bounds-checked compact-payload reader. Unlike the receiver
 * expander's cursor this one never panics: any overrun or truncated
 * varint sets fail and the scanner turns it into a diagnostic.
 */
struct SafeCursor
{
    const std::uint8_t *p;
    std::size_t len;
    std::size_t off = 0;
    bool fail = false;

    bool
    atEnd() const
    {
        return fail || off >= len;
    }

    bool
    u8(std::uint8_t &out)
    {
        if (fail || off >= len) {
            fail = true;
            return false;
        }
        out = p[off++];
        return true;
    }

    bool
    varU64(std::uint64_t &out)
    {
        out = 0;
        unsigned shift = 0;
        while (true) {
            if (fail || off >= len || shift >= 64) {
                fail = true;
                return false;
            }
            std::uint8_t b = p[off++];
            out |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                return true;
            shift += 7;
        }
    }

    const std::uint8_t *
    bytes(std::size_t n)
    {
        if (fail || len - off < n) {
            fail = true;
            return nullptr;
        }
        const std::uint8_t *r = p + off;
        off += n;
        return r;
    }
};

} // namespace

const char *
wireFaultName(WireFault f)
{
    switch (f) {
    case WireFault::UnknownMarker:
        return "unknown-marker";
    case WireFault::UnresolvableTypeId:
        return "unresolvable-type-id";
    case WireFault::TruncatedRecord:
        return "truncated-record";
    case WireFault::MisalignedRecord:
        return "misaligned-record";
    case WireFault::DanglingReference:
        return "dangling-reference";
    case WireFault::BadMarkWord:
        return "bad-mark-word";
    case WireFault::BadBaddrWord:
        return "bad-baddr-word";
    case WireFault::BadRootRecord:
        return "bad-root-record";
    case WireFault::BadCompactItem:
        return "bad-compact-item";
    }
    return "?";
}

std::string
WireDiagnostic::str() const
{
    return std::string(wireFaultName(fault)) + " @+" +
           std::to_string(offset) + ": " + detail;
}

WireValidator::WireValidator(TypeResolver &resolver, WireCheckConfig cfg)
    : resolver_(resolver), cfg_(cfg)
{
}

void
WireValidator::report(WireFault f, std::uint64_t off, std::string detail)
{
    if (diags_.size() < cfg_.maxDiagnostics)
        diags_.push_back(WireDiagnostic{f, off, std::move(detail)});
}

bool
WireValidator::isRecordStart(std::uint64_t logical) const
{
    return std::binary_search(recordStarts_.begin(), recordStarts_.end(),
                              logical);
}

Klass *
WireValidator::resolveTid(std::int32_t tid)
{
    if (tid < 0)
        return nullptr;
    auto idx = static_cast<std::size_t>(tid);
    if (idx < tidCache_.size() && tidCache_[idx])
        return tidCache_[idx];
    Klass *k = resolver_.tryKlassForId(tid);
    if (!k)
        return nullptr;
    if (idx >= tidCache_.size())
        tidCache_.resize(idx + 1, nullptr);
    tidCache_[idx] = k;
    return k;
}

std::size_t
WireValidator::scanRecord(const std::uint8_t *rec, std::size_t remaining,
                          std::uint64_t phys_off)
{
    const ObjectFormat &wf = cfg_.wireFormat;

    if (remaining < wf.headerBytes()) {
        report(WireFault::TruncatedRecord, phys_off,
               "segment ends inside a record header (" +
                   std::to_string(remaining) + " of " +
                   std::to_string(wf.headerBytes()) + " header bytes)");
        return 0;
    }

    // Mark word: only the cached hashcode survives transfer
    // (mark::resetForTransfer); anything else is machine-local state
    // that must not be on the wire.
    Word m = wordAt(rec + offsetMark);
    if ((m & ~(mark::hashMask | mark::hashComputedBit)) != 0)
        report(WireFault::BadMarkWord, phys_off + offsetMark,
               "mark word carries non-transfer bits (lock/GC/age or "
               "reserved)");
    else if (!mark::hasHash(m) && (m & mark::hashMask) != 0)
        report(WireFault::BadMarkWord, phys_off + offsetMark,
               "hash bits present without the hash-computed flag");

    // Klass word: a wire type id, which must resolve in the registry.
    Word tid_word = wordAt(rec + offsetKlass);
    if (tid_word > 0x7fffffffull) {
        report(WireFault::UnresolvableTypeId, phys_off + offsetKlass,
               "klass word " + std::to_string(tid_word) +
                   " is not a type id");
        return 0;
    }
    Klass *k = resolveTid(static_cast<std::int32_t>(tid_word));
    if (!k) {
        report(WireFault::UnresolvableTypeId, phys_off + offsetKlass,
               "type id " + std::to_string(tid_word) +
                   " is not in the registry");
        return 0;
    }

    // Baddr word: the sender's claim state never leaves the machine.
    if (wf.hasBaddr) {
        Word b = wordAt(rec + offsetBaddr);
        if (b != 0)
            report(WireFault::BadBaddrWord, phys_off + offsetBaddr,
                   "baddr not cleared on the wire (sid=" +
                       std::to_string(baddr::sidOf(b)) + " tid=" +
                       std::to_string(baddr::tidOf(b)) + " rel=" +
                       std::to_string(baddr::relOf(b)) + ")");
    }

    // Size from the klass layout. A heterogeneous-format sender has
    // already rewritten the record into the wire format, so instance
    // sizes shift by the header delta and arrays are computed directly
    // against the wire geometry.
    std::ptrdiff_t delta =
        static_cast<std::ptrdiff_t>(k->format().headerBytes()) -
        static_cast<std::ptrdiff_t>(wf.headerBytes());
    std::size_t size = 0;
    std::uint64_t array_len = 0;
    if (k->isArray()) {
        if (remaining < wf.arrayHeaderBytes()) {
            report(WireFault::TruncatedRecord, phys_off,
                   "segment ends inside an array header");
            return 0;
        }
        array_len = wordAt(rec + wf.arrayLengthOffset());
        if (array_len > maxPlausibleArrayLength) {
            report(WireFault::MisalignedRecord,
                   phys_off + wf.arrayLengthOffset(),
                   "implausible array length " +
                       std::to_string(array_len) + " for " + k->name());
            return 0;
        }
        size = wordAlign(wf.arrayHeaderBytes() +
                         static_cast<std::size_t>(array_len) *
                             k->elemSize());
    } else {
        size = static_cast<std::size_t>(
            static_cast<std::ptrdiff_t>(k->instanceBytes()) - delta);
    }

    if (size % wordSize != 0 || size < wf.headerBytes()) {
        report(WireFault::MisalignedRecord, phys_off,
               k->name() + " record size " + std::to_string(size) +
                   " is not a word-aligned object size");
        return 0;
    }
    if (size > remaining) {
        report(WireFault::TruncatedRecord, phys_off,
               k->name() + " record needs " + std::to_string(size) +
                   " bytes, segment has " + std::to_string(remaining));
        return 0;
    }

    // Reference slots: collect for the deferred (forward-reference)
    // check. Slot offsets are laid out against the klass's own format;
    // shift by the header delta to land on the wire offsets.
    auto noteSlot = [&](std::size_t wire_off) {
        Word slot = wordAt(rec + wire_off);
        if (slot == 0)
            return;
        pendingRefs_.push_back(
            PendingRef{slot - 1, phys_off + wire_off});
        index_.refSlotOffsets.push_back(phys_off + wire_off);
        ++sum_.refSlots;
    };
    if (k->isArray()) {
        if (k->elemType() == FieldType::Ref) {
            std::size_t base = wf.arrayHeaderBytes();
            for (std::uint64_t i = 0; i < array_len; ++i)
                noteSlot(base + static_cast<std::size_t>(i) * wordSize);
        }
    } else {
        for (std::uint32_t off : k->refOffsets())
            noteSlot(static_cast<std::size_t>(
                static_cast<std::ptrdiff_t>(off) - delta));
    }

    index_.records.push_back(
        WireIndex::Record{phys_off, logical_, size, k->isArray()});
    return size;
}

std::size_t
WireValidator::scanCompactSegment(const std::uint8_t *data,
                                  std::size_t remaining,
                                  std::uint64_t phys_off)
{
    const ObjectFormat &wf = cfg_.wireFormat;

    SafeCursor pre{data + wordSize, remaining - wordSize};
    std::uint64_t payload_len = 0;
    if (!pre.varU64(payload_len)) {
        report(WireFault::BadCompactItem, phys_off,
               "compact segment preamble truncated");
        return 0;
    }
    std::size_t head = wordSize + pre.off;
    if (payload_len > remaining - head) {
        report(WireFault::TruncatedRecord, phys_off,
               "compact segment payload (" +
                   std::to_string(payload_len) +
                   " bytes) overruns the segment");
        return 0;
    }

    // The shared accounting below (recordStarts_, logical_, pending
    // references, top-mark pairing) uses *expanded* record sizes, so
    // raw and compact segments of one stream cross-check seamlessly.
    SafeCursor cur{data + head, static_cast<std::size_t>(payload_len)};
    auto itemFault = [&](std::uint64_t at, const std::string &what) {
        report(WireFault::BadCompactItem, at, what);
        return static_cast<std::size_t>(0);
    };
    while (!cur.atEnd()) {
        std::uint64_t item_phys = phys_off + head + cur.off;
        std::uint8_t tag = 0;
        cur.u8(tag);
        index_.compactItemOffsets.push_back(item_phys);

        if (tag == wire::ctTopMark) {
            if (awaitingTopRecord_)
                report(WireFault::BadRootRecord, item_phys,
                       "duplicated top mark: previous top mark at +" +
                           std::to_string(awaitingTopOffset_) +
                           " has no record");
            awaitingTopRecord_ = true;
            awaitingTopOffset_ = item_phys;
            index_.topMarkOffsets.push_back(item_phys);
            ++sum_.topMarks;
            continue;
        }
        if (tag == wire::ctBackRef) {
            std::uint64_t slot = 0;
            if (!cur.varU64(slot))
                return itemFault(item_phys,
                                 "backward reference missing its "
                                 "slot varint");
            if (awaitingTopRecord_) {
                report(WireFault::BadRootRecord, item_phys,
                       "top mark at +" +
                           std::to_string(awaitingTopOffset_) +
                           " followed by a marker, not a record");
                awaitingTopRecord_ = false;
            }
            if (slot != 0 && !isRecordStart(slot - 1))
                report(WireFault::BadRootRecord, item_phys,
                       "backward root reference " +
                           std::to_string(slot - 1) +
                           " is not a decoded object start");
            index_.backRefOffsets.push_back(item_phys);
            ++sum_.backRefs;
            continue;
        }

        std::size_t size = 0;
        bool is_array = false;
        if (tag == wire::ctRawRecord) {
            std::uint64_t raw_len = 0;
            if (!cur.varU64(raw_len))
                return itemFault(item_phys,
                                 "raw item missing its length varint");
            std::uint64_t rec_phys = phys_off + head + cur.off;
            const std::uint8_t *rec =
                cur.bytes(static_cast<std::size_t>(raw_len));
            if (!rec)
                return itemFault(item_phys,
                                 "raw item overruns the compact "
                                 "payload");
            size = scanRecord(rec, static_cast<std::size_t>(raw_len),
                              rec_phys);
            if (size == 0)
                return 0;
            if (size != raw_len)
                return itemFault(
                    item_phys, "raw item length " +
                                   std::to_string(raw_len) +
                                   " does not match the record size " +
                                   std::to_string(size));
            // scanRecord indexed the record and queued its slots.
            is_array = index_.records.back().isArray;
        } else if (tag == wire::ctInstance ||
                   tag == wire::ctPrimArray ||
                   tag == wire::ctRefArray ||
                   tag == wire::ctPrimArrayRle) {
            std::uint64_t tid = 0, m = 0;
            if (!cur.varU64(tid) || !cur.varU64(m))
                return itemFault(item_phys,
                                 "compact record header truncated");
            if (tid > 0x7fffffffull) {
                report(WireFault::UnresolvableTypeId, item_phys,
                       "compact type id " + std::to_string(tid) +
                           " is not a type id");
                return 0;
            }
            Klass *k = resolveTid(static_cast<std::int32_t>(tid));
            if (!k) {
                report(WireFault::UnresolvableTypeId, item_phys,
                       "compact type id " + std::to_string(tid) +
                           " is not in the registry");
                return 0;
            }
            if ((m & ~(mark::hashMask | mark::hashComputedBit)) != 0)
                report(WireFault::BadMarkWord, item_phys,
                       "compact mark carries non-transfer bits");
            else if (!mark::hasHash(m) && (m & mark::hashMask) != 0)
                report(WireFault::BadMarkWord, item_phys,
                       "hash bits present without the hash-computed "
                       "flag");

            if (tag == wire::ctInstance) {
                if (k->isArray())
                    return itemFault(item_phys,
                                     "instance tag with array class " +
                                         k->name());
                std::ptrdiff_t delta =
                    static_cast<std::ptrdiff_t>(
                        k->format().headerBytes()) -
                    static_cast<std::ptrdiff_t>(wf.headerBytes());
                size = static_cast<std::size_t>(
                    static_cast<std::ptrdiff_t>(k->instanceBytes()) -
                    delta);
                for (const FieldDesc &f : k->fields()) {
                    if (f.type == FieldType::Ref) {
                        std::uint64_t slot_phys =
                            phys_off + head + cur.off;
                        std::uint64_t slot = 0;
                        if (!cur.varU64(slot))
                            return itemFault(
                                item_phys,
                                k->name() +
                                    " instance item truncated");
                        if (slot != 0) {
                            pendingRefs_.push_back(
                                PendingRef{slot - 1, slot_phys});
                            index_.refSlotOffsets.push_back(slot_phys);
                            ++sum_.refSlots;
                        }
                    } else if (!cur.bytes(fieldSize(f.type))) {
                        return itemFault(item_phys,
                                         k->name() +
                                             " instance item "
                                             "truncated");
                    }
                }
            } else {
                is_array = true;
                std::uint64_t n = 0;
                if (!cur.varU64(n))
                    return itemFault(item_phys,
                                     "compact array missing its "
                                     "length varint");
                if (n > maxPlausibleArrayLength) {
                    report(WireFault::MisalignedRecord, item_phys,
                           "implausible array length " +
                               std::to_string(n) + " for " +
                               k->name());
                    return 0;
                }
                if (!k->isArray())
                    return itemFault(item_phys,
                                     "array tag with non-array "
                                     "class " +
                                         k->name());
                bool is_ref = k->elemType() == FieldType::Ref;
                if ((tag == wire::ctRefArray) != is_ref)
                    return itemFault(item_phys,
                                     "array tag does not match " +
                                         k->name() +
                                         "'s element type");
                size = wordAlign(wf.arrayHeaderBytes() +
                                 static_cast<std::size_t>(n) *
                                     k->elemSize());
                if (tag == wire::ctRefArray) {
                    for (std::uint64_t i = 0; i < n; ++i) {
                        std::uint64_t slot_phys =
                            phys_off + head + cur.off;
                        std::uint64_t slot = 0;
                        if (!cur.varU64(slot))
                            return itemFault(item_phys,
                                             "reference array item "
                                             "truncated");
                        if (slot != 0) {
                            pendingRefs_.push_back(
                                PendingRef{slot - 1, slot_phys});
                            index_.refSlotOffsets.push_back(slot_phys);
                            ++sum_.refSlots;
                        }
                    }
                } else if (tag == wire::ctPrimArray) {
                    if (!cur.bytes(static_cast<std::size_t>(n) *
                                   k->elemSize()))
                        return itemFault(item_phys,
                                         "primitive array payload "
                                         "overruns the compact "
                                         "payload");
                } else {
                    std::size_t total =
                        static_cast<std::size_t>(n) * k->elemSize();
                    std::size_t got = 0;
                    while (got < total) {
                        std::uint64_t lit = 0, zeros = 0;
                        if (!cur.varU64(lit) || got + lit > total ||
                            !cur.bytes(static_cast<std::size_t>(lit)))
                            return itemFault(item_phys,
                                             "RLE literal run "
                                             "overruns the array");
                        got += static_cast<std::size_t>(lit);
                        if (!cur.varU64(zeros) || got + zeros > total)
                            return itemFault(item_phys,
                                             "RLE zero run overruns "
                                             "the array");
                        got += static_cast<std::size_t>(zeros);
                    }
                }
            }
            index_.records.push_back(WireIndex::Record{
                item_phys, logical_, size, is_array});
        } else {
            return itemFault(item_phys, "unknown compact item tag " +
                                            std::to_string(tag));
        }

        recordStarts_.push_back(logical_);
        awaitingTopRecord_ = false;
        ++sum_.records;
        logical_ += size;
    }
    return head + static_cast<std::size_t>(payload_len);
}

void
WireValidator::feed(const std::uint8_t *data, std::size_t len)
{
    std::size_t off = 0;
    while (off < len) {
        if (diags_.size() >= cfg_.maxDiagnostics)
            break;
        std::uint64_t phys = physical_ + off;
        std::size_t remaining = len - off;
        if (remaining < wordSize) {
            report(WireFault::TruncatedRecord, phys,
                   "segment tail smaller than one word");
            break;
        }

        Word first = wordAt(data + off);
        if (marker::isMarker(first)) {
            if (first == marker::compactSeg) {
                std::size_t used =
                    scanCompactSegment(data + off, remaining, phys);
                if (used == 0)
                    break; // fatal: cannot re-synchronize
                off += used;
                continue;
            }
            if (first == marker::topMark) {
                if (awaitingTopRecord_)
                    report(WireFault::BadRootRecord, phys,
                           "duplicated top mark: previous top mark at +" +
                               std::to_string(awaitingTopOffset_) +
                               " has no record");
                awaitingTopRecord_ = true;
                awaitingTopOffset_ = phys;
                index_.topMarkOffsets.push_back(phys);
                ++sum_.topMarks;
                off += wordSize;
                continue;
            }
            if (first == marker::backRef) {
                if (awaitingTopRecord_) {
                    report(WireFault::BadRootRecord, phys,
                           "top mark at +" +
                               std::to_string(awaitingTopOffset_) +
                               " followed by a marker, not a record");
                    awaitingTopRecord_ = false;
                }
                if (remaining < 2 * wordSize) {
                    report(WireFault::TruncatedRecord, phys,
                           "backward reference missing its slot word");
                    break;
                }
                Word slot = wordAt(data + off + wordSize);
                // Backward references name objects decoded earlier in
                // this stream, so the check is immediate.
                if (slot != 0 && !isRecordStart(slot - 1))
                    report(WireFault::BadRootRecord, phys + wordSize,
                           "backward root reference " +
                               std::to_string(slot - 1) +
                               " is not a decoded object start");
                index_.backRefOffsets.push_back(phys);
                ++sum_.backRefs;
                off += 2 * wordSize;
                continue;
            }
            report(WireFault::UnknownMarker, phys,
                   "marker bits set but word " + std::to_string(first) +
                       " is neither a top mark nor a backward "
                       "reference");
            break;
        }

        std::size_t size = scanRecord(data + off, remaining, phys);
        if (size == 0)
            break; // fatal: cannot re-synchronize within this segment
        recordStarts_.push_back(logical_);
        awaitingTopRecord_ = false;
        ++sum_.records;
        logical_ += size;
        off += size;
    }
    physical_ += len;
    sum_.physicalBytes = physical_;
    sum_.logicalBytes = logical_;
}

void
WireValidator::finish()
{
    for (const PendingRef &p : pendingRefs_) {
        if (p.target >= logical_)
            report(WireFault::DanglingReference, p.slotOffset,
                   "reference " + std::to_string(p.target) +
                       " is outside [0, " + std::to_string(logical_) +
                       ")");
        else if (!isRecordStart(p.target))
            report(WireFault::DanglingReference, p.slotOffset,
                   "reference " + std::to_string(p.target) +
                       " does not land on a decoded object start");
    }
    pendingRefs_.clear();
    if (awaitingTopRecord_) {
        report(WireFault::BadRootRecord, awaitingTopOffset_,
               "top mark at end of stream has no record");
        awaitingTopRecord_ = false;
    }
}

std::string
WireValidator::firstFault() const
{
    return diags_.empty() ? std::string() : diags_.front().str();
}

} // namespace sanitize
} // namespace skyway
