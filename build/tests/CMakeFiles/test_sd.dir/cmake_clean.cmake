file(REMOVE_RECURSE
  "CMakeFiles/test_sd.dir/test_sd.cc.o"
  "CMakeFiles/test_sd.dir/test_sd.cc.o.d"
  "test_sd"
  "test_sd.pdb"
  "test_sd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
