# Driver for the perf-diff CTest target: run a bench binary at the
# baseline's scale with --json, then diff the deterministic counters
# against the committed baseline with tools/perf_diff.py. Invoked as
#   cmake -DBENCH=... -DARGS=... -DOUT=... -DBASELINE=...
#         -DDIFF=tools/perf_diff.py -DPYTHON=... [-DKEYS=REGEX]
#         -P perfdiff.cmake
# KEYS overrides perf_diff.py's default key allowlist for benches
# whose deterministic counters live under other names. SETENV (a
# semicolon-separated VAR=val list) pins the bench's environment —
# used to fix knobs the committed baseline was captured under, so the
# diff stays apples-to-apples when the ambient environment differs
# (e.g. the forced-compaction gate in tools/check_all.sh).

foreach(var BENCH OUT BASELINE DIFF PYTHON)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "perfdiff.cmake: ${var} required")
    endif()
endforeach()

set(diff_opts "")
if(DEFINED KEYS)
    list(APPEND diff_opts "--keys=${KEYS}")
endif()

if(DEFINED SETENV)
    set(launcher ${CMAKE_COMMAND} -E env ${SETENV})
else()
    set(launcher "")
endif()

execute_process(
    COMMAND ${launcher} ${BENCH} ${ARGS} --json=${OUT}
    RESULT_VARIABLE bench_rc
    OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR
        "perfdiff.cmake: ${BENCH} exited with ${bench_rc}")
endif()

execute_process(
    COMMAND ${PYTHON} ${DIFF} ${diff_opts} ${BASELINE} ${OUT}
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "perfdiff.cmake: deterministic counters drifted from "
        "${BASELINE} (${diff_rc}) — if the change is intended, "
        "regenerate the baseline (see bench/baselines/README.md)")
endif()
