/**
 * @file
 * Layout-derived compact-encoding estimate (docs/WIRE_FORMAT.md).
 *
 * Pure arithmetic over a class's field layout: how many of a raw
 * Skyway wire record's bytes are header, alignment padding, and
 * 8-byte reference slots that the compact encoding strips or
 * varint-narrows. Lives in the klass layer so the type registry can
 * compute and propagate the hint (with LOOKUP replies) without
 * depending on the skyway send path; the encoder's decision policy
 * (skyway/wirecompact.hh) consumes the same number.
 */

#ifndef SKYWAY_KLASS_WIREHINT_HH
#define SKYWAY_KLASS_WIREHINT_HH

#include "klass/objectformat.hh"

namespace skyway
{

class Klass;

/**
 * Estimated saving of the compact encoding for @p k, as a percent of
 * its raw record bytes on a @p wire_fmt wire (0–100). Instances are
 * exact up to the varint-width guesses (2-byte tid, 1-byte mark,
 * 2-byte reference slots); arrays are estimated at 16 elements — the
 * send path's measured feedback corrects for real array sizes.
 */
int compactSavingPercentEstimate(const Klass *k,
                                 const ObjectFormat &wire_fmt);

} // namespace skyway

#endif // SKYWAY_KLASS_WIREHINT_HH
