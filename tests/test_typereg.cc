/**
 * @file
 * Tests for global class numbering (paper Algorithm 1): driver
 * numbering, worker view pulls, lookup-on-miss, consistency of IDs
 * across nodes, reverse lookup on stale views, load hooks, and the
 * "class string crosses the wire at most once per class per machine"
 * property.
 */

#include <gtest/gtest.h>

#include "typereg/registry.hh"

namespace skyway
{
namespace
{

class TypeRegTest : public ::testing::Test
{
  protected:
    TypeRegTest() : net_(3)
    {
        defineBootstrapClasses(cat_);
        cat_.define(ClassDef{"app.Record", "", {{"id", FieldType::Int,
                                                 ""}}});
        cat_.define(ClassDef{"app.Extra", "", {}});
        cat_.define(ClassDef{"app.Late", "", {}});
        driverKt_ = std::make_unique<KlassTable>(cat_);
        workerKtA_ = std::make_unique<KlassTable>(cat_);
        workerKtB_ = std::make_unique<KlassTable>(cat_);
    }

    ClassCatalog cat_;
    ClusterNetwork net_;
    std::unique_ptr<KlassTable> driverKt_, workerKtA_, workerKtB_;
};

TEST_F(TypeRegTest, DriverNumbersPreloadedClasses)
{
    driverKt_->load("java.lang.String");
    driverKt_->load("app.Record");
    TypeRegistryDriver driver(net_, 0, *driverKt_);
    EXPECT_EQ(driver.size(), 2u); // field types load lazily
    EXPECT_NE(driverKt_->findLoaded("java.lang.String")->tid(),
              Klass::unregisteredTid);
    EXPECT_NE(driverKt_->findLoaded("app.Record")->tid(),
              Klass::unregisteredTid);
}

TEST_F(TypeRegTest, WorkerPullsViewAtStartup)
{
    driverKt_->load("app.Record");
    TypeRegistryDriver driver(net_, 0, *driverKt_);
    TypeRegistryWorker worker(net_, 1, 0, *workerKtA_);
    EXPECT_EQ(worker.viewSize(), driver.size());
    EXPECT_EQ(driver.stats().viewRequestsServed, 1u);
    // The view already covers app.Record: loading it issues no
    // remote lookup.
    Klass *k = workerKtA_->load("app.Record");
    EXPECT_EQ(k->tid(), driverKt_->findLoaded("app.Record")->tid());
    EXPECT_EQ(worker.stats().remoteLookupsIssued, 0u);
}

TEST_F(TypeRegTest, IdsConsistentAcrossNodes)
{
    driverKt_->load("app.Record");
    TypeRegistryDriver driver(net_, 0, *driverKt_);
    TypeRegistryWorker wa(net_, 1, 0, *workerKtA_);
    TypeRegistryWorker wb(net_, 2, 0, *workerKtB_);

    Klass *ka = workerKtA_->load("app.Extra"); // miss on both views
    Klass *kb = workerKtB_->load("app.Extra");
    EXPECT_EQ(ka->tid(), kb->tid());
    EXPECT_NE(ka, kb) << "distinct meta objects, same global id";
    EXPECT_EQ(driver.stats().lookupsServed, 2u);
}

TEST_F(TypeRegTest, LookupCachedAfterFirstMiss)
{
    TypeRegistryDriver driver(net_, 0, *driverKt_);
    TypeRegistryWorker worker(net_, 1, 0, *workerKtA_);
    std::int32_t id1 = worker.idForClass("app.Late");
    std::int32_t id2 = worker.idForClass("app.Late");
    EXPECT_EQ(id1, id2);
    EXPECT_EQ(worker.stats().remoteLookupsIssued, 1u);
    // At-most-once per class per machine: exactly one class string
    // crossed the wire for app.Late from this worker.
    EXPECT_EQ(worker.stats().classStringsSent, 1u);
}

TEST_F(TypeRegTest, KlassForIdResolvesAndLoads)
{
    driverKt_->load("app.Record");
    TypeRegistryDriver driver(net_, 0, *driverKt_);
    TypeRegistryWorker worker(net_, 1, 0, *workerKtA_);
    std::int32_t id = driverKt_->findLoaded("app.Record")->tid();

    EXPECT_EQ(workerKtA_->findLoaded("app.Record"), nullptr);
    Klass *k = worker.klassForId(id);
    ASSERT_NE(k, nullptr);
    EXPECT_EQ(k->name(), "app.Record");
    EXPECT_EQ(k->tid(), id);
    EXPECT_EQ(workerKtA_->findLoaded("app.Record"), k);
}

TEST_F(TypeRegTest, StaleViewReverseLookup)
{
    TypeRegistryDriver driver(net_, 0, *driverKt_);
    TypeRegistryWorker wa(net_, 1, 0, *workerKtA_);
    // B attaches, then A registers a brand-new class: B's view is
    // stale for that id.
    TypeRegistryWorker wb(net_, 2, 0, *workerKtB_);
    std::int32_t late = wa.idForClass("app.Late");

    Klass *k = wb.klassForId(late);
    ASSERT_NE(k, nullptr);
    EXPECT_EQ(k->name(), "app.Late");
    EXPECT_EQ(driver.stats().reverseLookupsServed, 1u);
}

TEST_F(TypeRegTest, ArrayClassesAreNumbered)
{
    TypeRegistryDriver driver(net_, 0, *driverKt_);
    TypeRegistryWorker worker(net_, 1, 0, *workerKtA_);
    Klass *ia = workerKtA_->arrayOfPrimitive(FieldType::Int);
    EXPECT_NE(ia->tid(), Klass::unregisteredTid);
    EXPECT_EQ(worker.klassForId(ia->tid()), ia);
}

TEST_F(TypeRegTest, DriverResolvesItsOwnIds)
{
    driverKt_->load("app.Record");
    TypeRegistryDriver driver(net_, 0, *driverKt_);
    std::int32_t id = driver.idForClass("app.Record");
    EXPECT_EQ(driver.klassForId(id)->name(), "app.Record");
    EXPECT_EQ(driver.nameForId(id), "app.Record");
    EXPECT_DEATH(driver.nameForId(99999), "unknown type id");
}

TEST_F(TypeRegTest, MaxAssignedIdTracksDenseDriverIds)
{
    TypeRegistryDriver driver(net_, 0, *driverKt_);
    EXPECT_EQ(driver.maxAssignedId(), -1);
    std::int32_t a = driver.idForClass("app.Record");
    EXPECT_EQ(driver.maxAssignedId(), a);
    std::int32_t b = driver.idForClass("app.Extra");
    EXPECT_EQ(driver.maxAssignedId(), b);
    EXPECT_EQ(driver.maxAssignedId(),
              static_cast<std::int32_t>(driver.size()) - 1);
}

TEST_F(TypeRegTest, MaxAssignedIdGrowsWithStaleViewLookups)
{
    // The worker's view may be sparse: ids assigned after the view
    // pull arrive out of order through lookups and reverse lookups,
    // and maxAssignedId must track the high-water mark — receivers
    // pre-size their tid caches from it.
    driverKt_->load("app.Record");
    TypeRegistryDriver driver(net_, 0, *driverKt_);
    TypeRegistryWorker worker(net_, 1, 0, *workerKtA_);
    EXPECT_EQ(worker.maxAssignedId(), driver.maxAssignedId());

    // Another worker registers new classes the first view missed.
    TypeRegistryWorker late(net_, 2, 0, *workerKtB_);
    workerKtB_->load("app.Extra");
    std::int32_t lateId = workerKtB_->load("app.Late")->tid();
    EXPECT_LT(worker.maxAssignedId(), lateId) << "view is stale";

    // A reverse lookup on the stale view raises the high-water mark.
    EXPECT_EQ(worker.nameForId(lateId), "app.Late");
    EXPECT_EQ(worker.maxAssignedId(), lateId);
    EXPECT_EQ(driver.maxAssignedId(), lateId);
}

TEST_F(TypeRegTest, ViewEncodingRoundTrips)
{
    driverKt_->load("app.Record");
    driverKt_->load("app.Extra");
    TypeRegistryDriver driver(net_, 0, *driverKt_);
    auto view = driver.encodeView();
    EXPECT_FALSE(view.empty());
    // A worker constructed afterwards decodes every entry.
    TypeRegistryWorker worker(net_, 1, 0, *workerKtA_);
    EXPECT_EQ(worker.viewSize(), driver.size());
    EXPECT_EQ(worker.nameForId(driver.idForClass("app.Extra")),
              "app.Extra");
}

} // namespace
} // namespace skyway
