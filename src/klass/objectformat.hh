/**
 * @file
 * Object header geometry and mark-word encoding.
 *
 * The layout follows Figure 6 of the Skyway paper (64-bit HotSpot with
 * the Skyway modification):
 *
 *     [ mark  ][ klass ][ baddr ][ array len ][ payload ... padding ]
 *        8 B      8 B      8 B     8 B (arrays only)
 *
 * The `baddr` word is the Skyway extension; a vanilla ("unmodified
 * HotSpot") format omits it, which is what the memory-overhead
 * experiment (paper section 5.2) compares against.
 *
 * Mark-word encoding (ours; HotSpot's differs in detail but carries the
 * same information):
 *
 *     bits  0..1   lock bits
 *     bits  2..5   GC bits (mark flag + object age)
 *     bit   6      "hash computed" flag
 *     bits  8..38  31-bit cached identity hashcode
 *     bits 62..63  always zero — reserved so that Skyway's in-buffer
 *                  top-mark words (which set both bits) can never
 *                  collide with a real object's mark word
 */

#ifndef SKYWAY_KLASS_OBJECTFORMAT_HH
#define SKYWAY_KLASS_OBJECTFORMAT_HH

#include <cstdint>

#include "support/types.hh"

namespace skyway
{

/** Byte offset of the mark word in every object. */
constexpr std::size_t offsetMark = 0;

/** Byte offset of the klass word in every object. */
constexpr std::size_t offsetKlass = 8;

/** Byte offset of the Skyway baddr word (when the format includes it). */
constexpr std::size_t offsetBaddr = 16;

/**
 * Geometry of objects in one runtime. A cluster is homogeneous when all
 * nodes share one ObjectFormat; the Skyway sender's FormatAdjuster
 * rewrites clones when they differ.
 */
struct ObjectFormat
{
    /** Whether objects carry the Skyway baddr header word. */
    bool hasBaddr = true;

    constexpr std::size_t
    headerBytes() const
    {
        return hasBaddr ? 3 * wordSize : 2 * wordSize;
    }

    /** Arrays store their length in one word after the header. */
    constexpr std::size_t
    arrayHeaderBytes() const
    {
        return headerBytes() + wordSize;
    }

    /** Byte offset of an array's length word. */
    constexpr std::size_t
    arrayLengthOffset() const
    {
        return headerBytes();
    }

    constexpr bool operator==(const ObjectFormat &o) const = default;
};

/** Operations on mark words. */
namespace mark
{

constexpr Word lockMask = 0x3;
constexpr Word gcMarkBit = 1ull << 2;
constexpr Word ageShift = 3;
constexpr Word ageMask = 0x7ull << ageShift;
constexpr Word hashComputedBit = 1ull << 6;
constexpr Word hashShift = 8;
constexpr Word hashMask = 0x7fffffffull << hashShift;

/** The reserved always-zero top bits (see file comment). */
constexpr Word reservedMask = 0x3ull << 62;

/** A fresh object's mark word: unlocked, unmarked, age 0, no hash. */
constexpr Word initial = 0;

constexpr bool hasHash(Word m) { return (m & hashComputedBit) != 0; }

constexpr std::int32_t
hashOf(Word m)
{
    return static_cast<std::int32_t>((m & hashMask) >> hashShift);
}

constexpr Word
withHash(Word m, std::int32_t h)
{
    Word hv = static_cast<Word>(static_cast<std::uint32_t>(h) & 0x7fffffff);
    return (m & ~hashMask) | (hv << hashShift) | hashComputedBit;
}

constexpr int
ageOf(Word m)
{
    return static_cast<int>((m & ageMask) >> ageShift);
}

constexpr Word
withAge(Word m, int age)
{
    return (m & ~ageMask) | (static_cast<Word>(age & 0x7) << ageShift);
}

constexpr bool isGcMarked(Word m) { return (m & gcMarkBit) != 0; }
constexpr Word setGcMarked(Word m) { return m | gcMarkBit; }
constexpr Word clearGcMarked(Word m) { return m & ~gcMarkBit; }

/**
 * Reset the machine-specific bits when a clone leaves the machine
 * (paper section 3.1): GC bits and lock bits are cleared, the cached
 * hashcode is preserved so hash-based structures need no rehash on the
 * receiving node.
 */
constexpr Word
resetForTransfer(Word m)
{
    return m & (hashMask | hashComputedBit);
}

} // namespace mark

} // namespace skyway

#endif // SKYWAY_KLASS_OBJECTFORMAT_HH
