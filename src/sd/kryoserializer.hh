/**
 * @file
 * The registration-based baseline serializer, modeled on Kryo (the
 * library Spark recommends). Its cost structure differs from the Java
 * serializer exactly as the paper describes (section 2.1):
 *
 *  - the developer registers classes *in the same order on every
 *    node*, so the wire carries small integer class IDs instead of
 *    descriptor strings;
 *  - per-class serialization functions avoid string-keyed reflection:
 *    either hand-written "manual" functions (the labor-intensive
 *    option) or a FieldSerializer equivalent that iterates a cached,
 *    pre-resolved field table;
 *  - deserialization creates objects with plain allocation (the
 *    `switch(id) { case 0: return new Date(); ... }` pattern);
 *  - integers and sizes use varint/zigzag encoding, shrinking the
 *    payload well below the Java serializer's fixed-width fields.
 *
 * Variants used in the JSBS bench: "kryo-manual" (reference tracking +
 * manual functions), "kryo-opt" (no reference tracking, varints), and
 * "kryo-flat" (no tracking, field-serializer only).
 */

#ifndef SKYWAY_SD_KRYOSERIALIZER_HH
#define SKYWAY_SD_KRYOSERIALIZER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sd/serializer.hh"

namespace skyway
{

class KryoSerializer;

/** Hand-written per-class S/D functions (what Kryo users must write). */
struct KryoManual
{
    /** Serialize the body of @p obj (class id already written). */
    std::function<void(KryoSerializer &, Address obj, ByteSink &)> write;

    /**
     * Create and populate an instance; must push it into the handle
     * table via KryoSerializer::adoptObject before reading nested
     * references.
     */
    std::function<Address(KryoSerializer &, ByteSource &)> read;
};

/**
 * The cluster-wide registration order. Sharing one KryoRegistry object
 * between the factories of all nodes models the requirement that every
 * node registers the same classes in the same order.
 */
class KryoRegistry
{
  public:
    struct Entry
    {
        std::string className;
        KryoManual manual; // empty functions => FieldSerializer
    };

    /** Register @p class_name; returns its class id. */
    int registerClass(const std::string &class_name,
                      KryoManual manual = {});

    const std::vector<Entry> &entries() const { return entries_; }

    /** The id for @p class_name, or -1 when unregistered. */
    int idOf(const std::string &class_name) const;

  private:
    std::vector<Entry> entries_;
    std::unordered_map<std::string, int> index_;
};

/** Install built-in registrations (String, boxes, common arrays). */
void kryoRegisterBuiltins(KryoRegistry &registry);

class KryoSerializer : public Serializer
{
  public:
    /**
     * @param env              node environment
     * @param registry         shared registration order
     * @param track_references when false, shared references are
     *                         duplicated (Kryo's references=false
     *                         fast path); cyclic graphs then hang,
     *                         exactly as in Kryo
     */
    KryoSerializer(SdEnv env, const KryoRegistry &registry,
                   bool track_references = true,
                   std::string name = "kryo");

    std::string name() const override { return name_; }

    void writeObject(Address root, ByteSink &out) override;
    Address readObject(ByteSource &in) override;
    void reset() override;

    /// @name API for manual serialization functions
    /// @{

    SdEnv &env() { return env_; }

    /** Write a reference slot (enqueues unseen targets). */
    void writeRefSlot(Address target, ByteSink &out);

    /**
     * Read a reference slot into @p (holder_handle, off); forward
     * references are recorded as fixups.
     */
    void readRefSlotInto(ByteSource &in, std::size_t holder_handle,
                         std::size_t off);

    /** Adopt a freshly created object into the read handle table. */
    std::size_t adoptObject(Address obj);

    /** The rooted object behind read handle @p h. */
    Address objectAt(std::size_t h) { return handles_->get(h); }

    /// @}

    /** Unregistered classes seen on the wire (a practicality smell). */
    std::uint64_t unregisteredWrites() const { return unregistered_; }

  private:
    struct Resolved
    {
        Klass *klass = nullptr;
        const KryoManual *manual = nullptr;
    };

    void writeRecord(Address obj, ByteSink &out);
    void writeFields(Address obj, Klass *k, ByteSink &out);
    void readRecord(std::uint32_t code, ByteSource &in);
    void readFields(std::size_t handle, Klass *k, ByteSource &in);

    /** Resolve a registered class id to this node's klass (cached). */
    Resolved &resolve(int class_id);

    SdEnv env_;
    const KryoRegistry &registry_;
    bool trackReferences_;
    std::string name_;

    std::unordered_map<Address, std::uint32_t> handleOf_;
    std::uint32_t nextWriteHandle_ = 0;
    std::deque<Address> pending_;

    std::unique_ptr<LocalRoots> handles_;
    struct Fixup
    {
        std::size_t holder;
        std::size_t offset;
        std::size_t target;
    };
    std::vector<Fixup> fixups_;

    std::vector<Resolved> resolved_;
    std::unordered_map<std::string, int> writeIdCache_;
    std::uint64_t unregistered_ = 0;
};

/** Factory producing per-node Kryo instances over a shared registry. */
class KryoSerializerFactory : public SerializerFactory
{
  public:
    KryoSerializerFactory(std::shared_ptr<KryoRegistry> registry,
                          bool track_references = true,
                          std::string name = "kryo")
        : registry_(std::move(registry)),
          trackReferences_(track_references),
          name_(std::move(name))
    {}

    std::string name() const override { return name_; }

    std::unique_ptr<Serializer>
    create(SdEnv env) override
    {
        return std::make_unique<KryoSerializer>(env, *registry_,
                                                trackReferences_, name_);
    }

  private:
    std::shared_ptr<KryoRegistry> registry_;
    bool trackReferences_;
    std::string name_;
};

} // namespace skyway

#endif // SKYWAY_SD_KRYOSERIALIZER_HH
