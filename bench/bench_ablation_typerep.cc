/**
 * @file
 * Ablation: the cost of type *representation* (DESIGN.md ABL1). The
 * paper attributes much of the Java serializer's byte bloat and CPU
 * cost to descriptor strings, and Kryo's improvement to registered
 * integer ids — Skyway's global numbering gets the integer ids
 * without the manual registration. This bench isolates that axis by
 * serializing the same batch under:
 *   java/fresh   descriptor strings on every object (stream reset 1)
 *   java/cached  descriptor strings once per stream
 *   kryo         registered integer ids
 *   skyway       global type ids in the klass word
 */

#include "bench/benchutil.hh"
#include "skyway/jvm.hh"
#include "skyway/streams.hh"

using namespace skyway;

int
main(int argc, char **argv)
{
    double scale = bench::parseScale(argc, argv, 1.0);
    bench::JsonReport report(argc, argv, "bench_ablation_typerep",
                             scale);
    const int objects = static_cast<int>(20000 * scale);
    ClassCatalog cat = bench::fullCatalog();
    ClusterNetwork net(2);
    Jvm sender(cat, net, 0, 0);
    Jvm receiver(cat, net, 1, 0);

    LocalRoots roots(sender.heap());
    Klass *pairK = sender.klasses().load("spark.WordPair");
    std::vector<std::size_t> slots;
    Rng rng(17);
    for (int i = 0; i < objects; ++i) {
        std::size_t rs = roots.push(sender.builder().makeString(
            "token" + std::to_string(rng.nextBounded(5000))));
        Address rec = sender.heap().allocateInstance(pairK);
        field::setRef(sender.heap(), rec, pairK->requireField("word"),
                      roots.get(rs));
        field::set<std::int64_t>(sender.heap(), rec,
                                 pairK->requireField("count"), i);
        slots.push_back(roots.push(rec));
    }

    bench::printHeader(
        "Ablation 1: type representation (same data, same batch)");
    std::printf("%-14s %10s %10s %12s %14s\n", "config", "ser_ms",
                "deser_ms", "bytes", "B/object");

    auto run = [&](const std::string &name, Serializer &ser,
                   Serializer &des) {
        auto row = report.row(name);
        VectorSink sink;
        std::uint64_t ser_ns = 0, deser_ns = 0;
        {
            ScopedTimer t(ser_ns);
            for (std::size_t s : slots)
                ser.writeObject(roots.get(s), sink);
            ser.endStream(sink);
        }
        {
            ScopedTimer t(deser_ns);
            ByteSource src(sink.bytes());
            for (int i = 0; i < objects; ++i)
                des.readObject(src);
            des.releaseReceived();
        }
        std::printf("%-14s %10.2f %10.2f %12zu %14.1f\n",
                    name.c_str(), ser_ns / 1e6, deser_ns / 1e6,
                    sink.bytesWritten(),
                    static_cast<double>(sink.bytesWritten()) /
                        objects);
        row.value("ser_ms", ser_ns / 1e6);
        row.value("deser_ms", deser_ns / 1e6);
        row.value("bytes",
                  static_cast<double>(sink.bytesWritten()));
        row.value("bytes_per_object",
                  static_cast<double>(sink.bytesWritten()) /
                      objects);
    };

    {
        JavaSerializer ser(SdEnv{sender.heap(), sender.klasses()}, 1);
        JavaSerializer des(SdEnv{receiver.heap(), receiver.klasses()},
                           1);
        run("java/fresh", ser, des);
    }
    {
        JavaSerializer ser(SdEnv{sender.heap(), sender.klasses()}, 0);
        JavaSerializer des(SdEnv{receiver.heap(), receiver.klasses()},
                           0);
        run("java/cached", ser, des);
    }
    {
        auto reg = std::make_shared<KryoRegistry>();
        registerSparkAppKryo(*reg);
        KryoSerializer ser(SdEnv{sender.heap(), sender.klasses()},
                           *reg);
        KryoSerializer des(SdEnv{receiver.heap(), receiver.klasses()},
                           *reg);
        run("kryo", ser, des);
    }
    {
        SkywaySerializer ser(sender.skyway());
        SkywaySerializer des(receiver.skyway());
        run("skyway", ser, des);
    }
    std::printf("\n(java/fresh shows the per-object descriptor-string "
                "tax; kryo and skyway both pay integer ids, but only "
                "skyway assigns them without developer "
                "registration)\n");
    return 0;
}
