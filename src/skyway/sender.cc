#include "skyway/sender.hh"

#include <atomic>
#include <cstring>

#include "obs/metrics.hh"
#include "obs/span.hh"

namespace skyway
{

namespace
{

/** Encode a reference slot for the wire: 0 is null, else rel + 1. */
constexpr Word
encodeSlot(std::uint64_t rel)
{
    return rel + 1;
}

/** Registry-backed sender counters, resolved once per process. */
struct SenderMetrics
{
    obs::Counter &objectsCopied;
    obs::Counter &bytesCopied;
    obs::Counter &topMarks;
    obs::Counter &backRefs;
    obs::Counter &hashFallbacks;
    obs::Counter &casRetries;
    obs::Counter &headerBytes;
    obs::Counter &pointerBytes;
    obs::Counter &paddingBytes;
    obs::Counter &dataBytes;

    static SenderMetrics &
    get()
    {
        auto &r = obs::MetricsRegistry::global();
        static SenderMetrics m{
            r.counter("skyway.sender.objects_copied"),
            r.counter("skyway.sender.bytes_copied"),
            r.counter("skyway.sender.top_marks"),
            r.counter("skyway.sender.back_refs"),
            r.counter("skyway.sender.hash_fallbacks"),
            r.counter("skyway.sender.cas_retries"),
            r.counter("skyway.sender.header_bytes"),
            r.counter("skyway.sender.pointer_bytes"),
            r.counter("skyway.sender.padding_bytes"),
            r.counter("skyway.sender.data_bytes"),
        };
        return m;
    }
};

} // namespace

SkywaySender::SkywaySender(SkywayContext &ctx, OutputBuffer &ob,
                           ObjectFormat target_format)
    : ctx_(ctx),
      heap_(ctx.heap()),
      ob_(ob),
      tid_(ctx.allocateStreamId()),
      srcFmt_(ctx.heap().format()),
      dstFmt_(target_format),
      headerDelta_(static_cast<std::ptrdiff_t>(srcFmt_.headerBytes()) -
                   static_cast<std::ptrdiff_t>(dstFmt_.headerBytes()))
{
    panicIf(!srcFmt_.hasBaddr,
            "SkywaySender: sending requires the Skyway object layout "
            "(baddr header word)");
}

Word
SkywaySender::loadBaddr(Address o)
{
    std::atomic_ref<Word> ref(
        *reinterpret_cast<Word *>(o + offsetBaddr));
    return ref.load(std::memory_order_acquire);
}

bool
SkywaySender::casBaddr(Address o, Word &expected, Word desired)
{
    std::atomic_ref<Word> ref(
        *reinterpret_cast<Word *>(o + offsetBaddr));
    return ref.compare_exchange_strong(expected, desired,
                                       std::memory_order_acq_rel);
}

std::size_t
SkywaySender::sizeInTarget(Address s, const Klass *k) const
{
    std::size_t src_size =
        k->isArray()
            ? k->arrayBytes(static_cast<std::size_t>(
                  heap_.arrayLength(s)))
            : k->instanceBytes();
    return static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(src_size) - headerDelta_);
}

bool
SkywaySender::lookupVisited(Address o, std::uint64_t &rel)
{
    Word v = loadBaddr(o);
    if (baddr::sidOf(v) == sid_) {
        if (baddr::tidOf(v) == tid_) {
            rel = baddr::relOf(v);
            return true;
        }
        auto it = fallback_.find(o);
        if (it != fallback_.end()) {
            rel = it->second;
            return true;
        }
    }
    return false;
}

std::uint64_t
SkywaySender::relForChild(Address o)
{
    const Klass *k = heap_.klassOf(o);
    std::size_t size = sizeInTarget(o, k);

    Word v = loadBaddr(o);
    while (true) {
        if (baddr::sidOf(v) != sid_) {
            // Unvisited this phase: try to claim it for this stream.
            std::uint64_t new_addr = ob_.allocableAddr();
            panicIf(new_addr > baddr::maxRel,
                    "SkywaySender: output stream exceeds 1 TB");
            Word desired = baddr::compose(sid_, tid_, new_addr);
            if (casBaddr(o, v, desired)) {
                ob_.claim(size);
                gray_.push_back(GrayItem{o, new_addr});
                return new_addr;
            }
            // v was refreshed by the failed CAS; re-examine.
            ++stats_.casRetries;
            continue;
        }
        if (baddr::tidOf(v) == tid_)
            return baddr::relOf(v);

        // Claimed by another stream this phase: fall back to the
        // stream-local hash table and duplicate the object into this
        // buffer.
        auto it = fallback_.find(o);
        if (it != fallback_.end())
            return it->second;
        ++stats_.hashFallbacks;
        std::uint64_t new_addr = ob_.claim(size);
        fallback_.emplace(o, new_addr);
        gray_.push_back(GrayItem{o, new_addr});
        return new_addr;
    }
}

void
SkywaySender::emitTopMark()
{
    Word w = marker::topMark;
    ob_.writeMarker(&w, 1);
    ++stats_.topMarks;
}

void
SkywaySender::emitBackRef(Word slot_value)
{
    Word words[2] = {marker::backRef, slot_value};
    ob_.writeMarker(words, 2);
    ++stats_.backRefs;
}

void
SkywaySender::writeRecord(Address s, std::uint64_t addr)
{
    Klass *k = heap_.klassOf(s);
    std::size_t size = sizeInTarget(s, k);
    // Algorithm 2 line 10: the record lands at addr - flushedBytes in
    // the physical buffer; OutputBuffer::writeAt performs that
    // subtraction and flushes first when the record does not fit.
    std::uint8_t *dst = ob_.writeAt(addr, size);

    // Header: reset GC/lock bits but keep the cached hashcode; klass
    // word becomes the global type id; baddr is cleared.
    Word m = mark::resetForTransfer(heap_.markOf(s));
    std::memcpy(dst + offsetMark, &m, wordSize);
    Word tid_word = static_cast<Word>(
        static_cast<std::uint32_t>(ctx_.tidFor(k)));
    std::memcpy(dst + offsetKlass, &tid_word, wordSize);
    if (dstFmt_.hasBaddr) {
        Word zero = 0;
        std::memcpy(dst + offsetBaddr, &zero, wordSize);
    }

    std::size_t header_accounted = dstFmt_.headerBytes();
    std::size_t pointer_bytes = 0;
    std::size_t data_bytes = 0;

    if (k->isArray()) {
        auto n = static_cast<std::size_t>(heap_.arrayLength(s));
        Word len_word = static_cast<Word>(n);
        std::memcpy(dst + dstFmt_.arrayLengthOffset(), &len_word,
                    wordSize);
        header_accounted += wordSize;
        std::size_t payload = n * k->elemSize();
        // The object is transferred as a whole: one block copy of the
        // element payload, no per-element access.
        std::memcpy(dst + dstFmt_.arrayHeaderBytes(),
                    reinterpret_cast<const void *>(
                        s + srcFmt_.arrayHeaderBytes()),
                    payload);
        if (k->elemType() == FieldType::Ref) {
            for (std::size_t i = 0; i < n; ++i) {
                Address o = heap_.loadRef(
                    s, srcFmt_.arrayHeaderBytes() + i * wordSize);
                Word slot = o == nullAddr ? 0
                                          : encodeSlot(relForChild(o));
                std::memcpy(dst + dstFmt_.arrayHeaderBytes() +
                                i * wordSize,
                            &slot, wordSize);
            }
            pointer_bytes = payload;
        } else {
            data_bytes = payload;
        }
    } else {
        // Whole-object payload copy, then relativize reference slots
        // in the clone (never in the live object).
        std::size_t payload = size - dstFmt_.headerBytes();
        std::memcpy(dst + dstFmt_.headerBytes(),
                    reinterpret_cast<const void *>(
                        s + srcFmt_.headerBytes()),
                    payload);
        for (std::uint32_t off : k->refOffsets()) {
            Address o = heap_.loadRef(s, off);
            Word slot = o == nullAddr ? 0 : encodeSlot(relForChild(o));
            std::memcpy(dst + off - headerDelta_, &slot, wordSize);
            pointer_bytes += wordSize;
        }
        data_bytes = k->primitiveDataBytes();
    }

    ++stats_.objectsCopied;
    stats_.bytesCopied += size;
    stats_.headerBytes += header_accounted;
    stats_.pointerBytes += pointer_bytes;
    std::size_t padding =
        size - header_accounted - pointer_bytes - data_bytes;
    stats_.paddingBytes += padding;
    stats_.dataBytes += data_bytes;
}

void
SkywaySender::publishMetrics()
{
    SenderMetrics &m = SenderMetrics::get();
    m.objectsCopied.add(stats_.objectsCopied -
                        published_.objectsCopied);
    m.bytesCopied.add(stats_.bytesCopied - published_.bytesCopied);
    m.topMarks.add(stats_.topMarks - published_.topMarks);
    m.backRefs.add(stats_.backRefs - published_.backRefs);
    m.hashFallbacks.add(stats_.hashFallbacks -
                        published_.hashFallbacks);
    m.casRetries.add(stats_.casRetries - published_.casRetries);
    m.headerBytes.add(stats_.headerBytes - published_.headerBytes);
    m.pointerBytes.add(stats_.pointerBytes - published_.pointerBytes);
    m.paddingBytes.add(stats_.paddingBytes - published_.paddingBytes);
    m.dataBytes.add(stats_.dataBytes - published_.dataBytes);
    published_ = stats_;
}

void
SkywaySender::drain()
{
    while (!gray_.empty()) {
        GrayItem item = gray_.front();
        gray_.pop_front();
        writeRecord(item.obj, item.addr);
    }
}

void
SkywaySender::writeObject(Address root)
{
    SKYWAY_SPAN("sender.writeObject");

    std::uint8_t cur = ctx_.currentSid();
    if (cur != sid_) {
        // A new shuffle phase began (shuffleStart, or a stream-id
        // wrap): every fallback entry names a buffer position claimed
        // under the old phase and must not be reused.
        fallback_.clear();
        sid_ = cur;
    }
    panicIf(sid_ == 0,
            "SkywaySender: call shuffleStart() before the first "
            "transfer of a phase");

    if (root == nullAddr) {
        emitBackRef(0);
        return;
    }

    std::uint64_t rel;
    if (lookupVisited(root, rel)) {
        // Already copied in this phase: a backward reference to its
        // location in the buffer (Algorithm 2 lines 29-30).
        emitBackRef(encodeSlot(rel));
        return;
    }

    emitTopMark();
    relForChild(root);
    drain();
}

} // namespace skyway
