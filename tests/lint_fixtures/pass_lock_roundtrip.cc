// lint-invariants fixture (MUST PASS rule 2): the lock covers only
// the map probe and the round trip runs with it released. Not
// compiled — parsed by tools/lint_invariants.py --selftest.

int
idForClassGood(Net &net_, const char *name)
{
    {
        MutexLock lock(mutex_);
        auto it = view_.find(name);
        if (it != view_.end())
            return it->second;
    }
    auto reply = net_.request(driver_, lookupTag, encode(name));
    std::int32_t id = decode(reply);
    {
        MutexLock lock(mutex_);
        view_[name] = id;
    }
    return id;
}
