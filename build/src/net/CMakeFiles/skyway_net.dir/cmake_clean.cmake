file(REMOVE_RECURSE
  "CMakeFiles/skyway_net.dir/cluster.cc.o"
  "CMakeFiles/skyway_net.dir/cluster.cc.o.d"
  "libskyway_net.a"
  "libskyway_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyway_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
