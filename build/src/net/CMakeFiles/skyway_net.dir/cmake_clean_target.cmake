file(REMOVE_RECURSE
  "libskyway_net.a"
)
