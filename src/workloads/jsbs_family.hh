/**
 * @file
 * The JSBS baseline family: schema-compiled serializers for the media
 * data model, standing in for the fastest libraries of the paper's
 * Figure 7 (colfer, protostuff, protobuf, datakernel, avro, thrift,
 * CBOR/smile via jackson, capnproto, fst, wobly, msgpack). Each codec
 * is a genuinely distinct wire format; what they share — direct
 * field extraction via precompiled offsets — is exactly what schema
 * compilers generate, and is the part Skyway's heap-to-heap transfer
 * eliminates altogether.
 */

#ifndef SKYWAY_WORKLOADS_JSBS_FAMILY_HH
#define SKYWAY_WORKLOADS_JSBS_FAMILY_HH

#include <functional>

#include "sd/serializer.hh"
#include "workloads/media.hh"

namespace skyway
{

/** A plain mirror of one MediaContent graph. */
struct MediaValues
{
    std::string uri, title, format, copyright;
    std::int32_t width = 0, height = 0, bitrate = 0, player = 0;
    std::int64_t duration = 0, size = 0;
    bool hasBitrate = false;
    std::vector<std::string> persons;

    struct Img
    {
        std::string uri, title;
        std::int32_t width = 0, height = 0, size = 0;

        bool operator==(const Img &) const = default;
    };
    std::vector<Img> images;

    bool operator==(const MediaValues &) const = default;
};

/** Extract via precompiled field handles (schema-compiled path). */
MediaValues extractMedia(SdEnv &env, const MediaSchema &schema,
                         Address content);

/** Extract via name-based reflection (the avro-generic-style path). */
MediaValues extractMediaReflective(SdEnv &env, Address content);

/** Build the heap graph for @p values (GC-safe). */
Address materializeMedia(SdEnv &env, const MediaSchema &schema,
                         const MediaValues &values);

/** One wire format of the family. */
struct JsbsCodec
{
    std::string name;
    std::function<void(const MediaValues &, ByteSink &)> encode;
    std::function<MediaValues(ByteSource &)> decode;
    /** Use the slow reflective extract (models *-generic variants). */
    bool reflectiveExtract = false;
};

/** All codecs of the family, fastest-family-first ordering not
 *  guaranteed — the bench sorts by measured time. */
std::vector<JsbsCodec> jsbsCodecs();

/** Look up one codec by name (fatal when unknown). */
JsbsCodec jsbsCodec(const std::string &name);

/** Serializer wrapper: extract/encode on write, decode/materialize on
 *  read. Only supports jsbs.MediaContent roots. */
class JsbsSerializer : public Serializer
{
  public:
    JsbsSerializer(SdEnv env, JsbsCodec codec)
        : env_(env), schema_(env.klasses), codec_(std::move(codec))
    {}

    std::string name() const override { return codec_.name; }

    void
    writeObject(Address root, ByteSink &out) override
    {
        MediaValues v = codec_.reflectiveExtract
                            ? extractMediaReflective(env_, root)
                            : extractMedia(env_, schema_, root);
        codec_.encode(v, out);
    }

    Address
    readObject(ByteSource &in) override
    {
        MediaValues v = codec_.decode(in);
        return materializeMedia(env_, schema_, v);
    }

  private:
    SdEnv env_;
    MediaSchema schema_;
    JsbsCodec codec_;
};

/** Factory for one named codec. */
class JsbsSerializerFactory : public SerializerFactory
{
  public:
    explicit JsbsSerializerFactory(std::string codec_name)
        : codecName_(std::move(codec_name))
    {}

    std::string name() const override { return codecName_; }

    std::unique_ptr<Serializer>
    create(SdEnv env) override
    {
        return std::make_unique<JsbsSerializer>(env,
                                                jsbsCodec(codecName_));
    }

  private:
    std::string codecName_;
};

} // namespace skyway

#endif // SKYWAY_WORKLOADS_JSBS_FAMILY_HH
