#include "skyway/wirecompact.hh"

#include <cstdlib>
#include <cstring>
#include <string>

#include "klass/klass.hh"
#include "klass/wirehint.hh"
#include "obs/metrics.hh"
#include "skyway/baddr.hh"
#include "skyway/context.hh"
#include "support/logging.hh"

namespace skyway
{

namespace
{

Word
wordAt(const std::uint8_t *p)
{
    Word w;
    std::memcpy(&w, p, wordSize);
    return w;
}

void
putWord(std::uint8_t *p, Word w)
{
    std::memcpy(p, &w, wordSize);
}

/** Mirrors the validator's plausibility cap (sanitize/wirecheck.cc). */
constexpr std::uint64_t maxPlausibleArrayLength = 1ull << 40;

/** Registry-backed compaction counters, resolved once per process. */
struct CompactMetrics
{
    obs::Counter &bytesSaved;
    obs::Counter &records;
    obs::Counter &segments;
    obs::Gauge &classes;

    static CompactMetrics &
    get()
    {
        auto &r = obs::MetricsRegistry::global();
        static CompactMetrics m{
            r.counter("skyway.sender.compact_bytes_saved"),
            r.counter("skyway.sender.compact_records"),
            r.counter("skyway.sender.compact_segments"),
            r.gauge("skyway.sender.compact_classes"),
        };
        return m;
    }
};

/**
 * Raw wire size of the record at @p rec (same arithmetic as the
 * validator: instance sizes shift by the header delta when the klass
 * was laid out against a different format than the wire).
 */
std::size_t
rawRecordSize(const std::uint8_t *rec, const Klass *k,
              const ObjectFormat &wf)
{
    std::ptrdiff_t delta =
        static_cast<std::ptrdiff_t>(k->format().headerBytes()) -
        static_cast<std::ptrdiff_t>(wf.headerBytes());
    if (!k->isArray())
        return static_cast<std::size_t>(
            static_cast<std::ptrdiff_t>(k->instanceBytes()) - delta);
    Word n = wordAt(rec + wf.arrayLengthOffset());
    return wordAlign(wf.arrayHeaderBytes() +
                     static_cast<std::size_t>(n) * k->elemSize());
}

/**
 * Zero-run RLE over an array payload: alternating
 * [varint litBytes][literals][varint zeroBytes] pairs whose lengths
 * sum to the payload size. Runs shorter than rleMinZeroRun stay
 * literal so sparse zeros cannot blow up the pair count.
 */
void
rleEncode(const std::uint8_t *p, std::size_t n,
          std::vector<std::uint8_t> &out)
{
    std::size_t i = 0;
    while (i < n) {
        std::size_t zstart = n, zlen = 0;
        std::size_t j = i;
        while (j < n) {
            if (p[j] != 0) {
                ++j;
                continue;
            }
            std::size_t z = j;
            while (z < n && p[z] == 0)
                ++z;
            if (z - j >= wire::rleMinZeroRun) {
                zstart = j;
                zlen = z - j;
                break;
            }
            j = z;
        }
        std::size_t lit = (zstart == n ? n : zstart) - i;
        wire::putVarU64(out, lit);
        out.insert(out.end(), p + i, p + i + lit);
        wire::putVarU64(out, zlen);
        i += lit + zlen;
    }
}

/** Bounds-checked decode cursor; panics on overrun (run the
 *  WireValidator first to veto untrusted input instead). */
struct Cursor
{
    const std::uint8_t *p;
    const std::uint8_t *end;

    std::uint64_t
    varU64()
    {
        std::uint64_t v = 0;
        int shift = 0;
        while (true) {
            panicIf(p >= end,
                    "compact segment truncated inside a varint");
            std::uint8_t b = *p++;
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if ((b & 0x80) == 0)
                return v;
            shift += 7;
            panicIf(shift >= 64, "compact varint too long");
        }
    }

    const std::uint8_t *
    bytes(std::size_t n)
    {
        panicIf(static_cast<std::size_t>(end - p) < n,
                "compact segment truncated inside an item payload");
        const std::uint8_t *q = p;
        p += n;
        return q;
    }

    std::uint8_t
    u8()
    {
        panicIf(p >= end, "compact segment truncated at an item tag");
        return *p++;
    }

    bool atEnd() const { return p == end; }
};

} // namespace

WireCompactMode
wireCompactModeFromEnv()
{
    const char *v = std::getenv("SKYWAY_WIRE_COMPACT");
    if (!v)
        return WireCompactMode::Off;
    std::string s(v);
    if (s == "auto")
        return WireCompactMode::Auto;
    if (s == "force")
        return WireCompactMode::Force;
    return WireCompactMode::Off;
}

namespace wire
{

int
staticSavingPercent(const Klass *k, const ObjectFormat &wire_fmt)
{
    // The arithmetic lives in the klass layer so the type registry
    // can serve the same number as a LOOKUP hint.
    return compactSavingPercentEstimate(k, wire_fmt);
}

bool
isCompactSegment(const std::uint8_t *data, std::size_t len)
{
    return len >= wordSize && wordAt(data) == marker::compactSeg;
}

std::size_t
expandCompactSegment(const std::uint8_t *data, std::size_t len,
                     const ObjectFormat &wire_fmt,
                     const ExpandHooks &hooks)
{
    panicIf(!isCompactSegment(data, len),
            "expandCompactSegment: no compact-segment marker");
    Cursor pre{data + wordSize, data + len};
    std::uint64_t payload_len = pre.varU64();
    std::size_t preamble = static_cast<std::size_t>(pre.p - data);
    panicIf(payload_len > len - preamble,
            "compact segment payload overruns the buffer");
    Cursor c{data + preamble, data + preamble + payload_len};

    while (!c.atEnd()) {
        std::uint8_t tag = c.u8();
        switch (tag) {
        case ctTopMark:
            hooks.onMarker(false, 0);
            break;
        case ctBackRef:
            hooks.onMarker(true, c.varU64());
            break;
        case ctRawRecord: {
            std::uint64_t n = c.varU64();
            const std::uint8_t *src = c.bytes(
                static_cast<std::size_t>(n));
            std::uint8_t *dst = hooks.place(
                static_cast<std::size_t>(n));
            std::memcpy(dst, src, static_cast<std::size_t>(n));
            break;
        }
        case ctInstance: {
            std::uint64_t tid = c.varU64();
            panicIf(tid > 0x7fffffffull,
                    "compact instance type id out of range");
            Word m = c.varU64();
            Klass *k = hooks.klassFor(static_cast<std::int32_t>(tid));
            panicIf(!k || k->isArray(),
                    "compact instance tag with a non-instance klass");
            std::ptrdiff_t delta =
                static_cast<std::ptrdiff_t>(k->format().headerBytes()) -
                static_cast<std::ptrdiff_t>(wire_fmt.headerBytes());
            std::size_t size = static_cast<std::size_t>(
                static_cast<std::ptrdiff_t>(k->instanceBytes()) - delta);
            std::uint8_t *dst = hooks.place(size);
            std::memset(dst, 0, size);
            putWord(dst + offsetMark, m);
            putWord(dst + offsetKlass, static_cast<Word>(tid));
            for (const FieldDesc &f : k->fields()) {
                std::size_t woff = static_cast<std::size_t>(
                    static_cast<std::ptrdiff_t>(f.offset) - delta);
                if (f.type == FieldType::Ref) {
                    putWord(dst + woff, c.varU64());
                } else {
                    std::size_t fs = fieldSize(f.type);
                    std::memcpy(dst + woff, c.bytes(fs), fs);
                }
            }
            break;
        }
        case ctPrimArray:
        case ctRefArray:
        case ctPrimArrayRle: {
            std::uint64_t tid = c.varU64();
            panicIf(tid > 0x7fffffffull,
                    "compact array type id out of range");
            Word m = c.varU64();
            std::uint64_t n = c.varU64();
            panicIf(n > maxPlausibleArrayLength,
                    "implausible compact array length");
            Klass *k = hooks.klassFor(static_cast<std::int32_t>(tid));
            panicIf(!k || !k->isArray(),
                    "compact array tag with a non-array klass");
            bool is_ref = k->elemType() == FieldType::Ref;
            panicIf((tag == ctRefArray) != is_ref,
                    "compact array tag does not match element type");
            std::size_t size = wordAlign(
                wire_fmt.arrayHeaderBytes() +
                static_cast<std::size_t>(n) * k->elemSize());
            std::uint8_t *dst = hooks.place(size);
            std::memset(dst, 0, size);
            putWord(dst + offsetMark, m);
            putWord(dst + offsetKlass, static_cast<Word>(tid));
            putWord(dst + wire_fmt.arrayLengthOffset(),
                    static_cast<Word>(n));
            std::uint8_t *payload = dst + wire_fmt.arrayHeaderBytes();
            if (tag == ctRefArray) {
                for (std::uint64_t i = 0; i < n; ++i)
                    putWord(payload + i * wordSize, c.varU64());
            } else if (tag == ctPrimArray) {
                std::size_t bytes =
                    static_cast<std::size_t>(n) * k->elemSize();
                std::memcpy(payload, c.bytes(bytes), bytes);
            } else {
                std::size_t total =
                    static_cast<std::size_t>(n) * k->elemSize();
                std::size_t got = 0;
                while (got < total) {
                    std::uint64_t lit = c.varU64();
                    panicIf(got + lit > total,
                            "compact RLE literal overruns the array");
                    std::memcpy(payload + got,
                                c.bytes(static_cast<std::size_t>(lit)),
                                static_cast<std::size_t>(lit));
                    got += static_cast<std::size_t>(lit);
                    std::uint64_t z = c.varU64();
                    panicIf(got + z > total,
                            "compact RLE zero run overruns the array");
                    got += static_cast<std::size_t>(z);
                    // The run itself is already zero from the memset.
                }
            }
            break;
        }
        default:
            panic("unknown compact item tag " + std::to_string(tag));
        }
    }
    return preamble + static_cast<std::size_t>(payload_len);
}

} // namespace wire

int
WireEncodingCache::decision(std::int32_t tid) const
{
    MutexLock lock(mutex_);
    auto it = entries_.find(tid);
    return it == entries_.end() ? -1 : it->second.decision;
}

void
WireEncodingCache::setDecision(std::int32_t tid, int d)
{
    MutexLock lock(mutex_);
    Entry &e = entries_[tid];
    // First writer wins; in particular a measured demotion to raw is
    // never overwritten by another stream's stale static estimate.
    if (e.decision == -1)
        e.decision = d;
}

int
WireEncodingCache::recordMeasured(std::int32_t tid,
                                  std::uint64_t raw_bytes,
                                  std::uint64_t compact_bytes,
                                  std::uint64_t records,
                                  double min_saving_pct)
{
    MutexLock lock(mutex_);
    Entry &e = entries_[tid];
    if (e.decision != 1)
        return e.decision; // only compact classes produce measurements
    e.rawBytes += raw_bytes;
    e.compactBytes += compact_bytes;
    e.records += records;
    if (e.records >= kMinMeasuredRecords && e.rawBytes > 0) {
        double pct = 100.0 *
                     (static_cast<double>(e.rawBytes) -
                      static_cast<double>(e.compactBytes)) /
                     static_cast<double>(e.rawBytes);
        if (pct < min_saving_pct)
            e.decision = 0;
    }
    return e.decision;
}

std::size_t
WireEncodingCache::compactClassCount() const
{
    MutexLock lock(mutex_);
    std::size_t n = 0;
    for (const auto &[tid, e] : entries_)
        n += e.decision == 1;
    return n;
}

void
WireEncodingCache::reset()
{
    MutexLock lock(mutex_);
    entries_.clear();
}

CompactEncoder::CompactEncoder(SkywayContext &ctx,
                               ObjectFormat wire_format)
    : ctx_(ctx),
      wireFmt_(wire_format),
      mode_(ctx.wireCompactMode()),
      minSavingPct_(
          wire::WirePolicy::minSavingPercent(ctx.wireNsPerByte()))
{
}

CompactEncoder::~CompactEncoder()
{
    syncMeasured();
}

Klass *
CompactEncoder::klassFor(std::int32_t tid)
{
    auto it = klassMemo_.find(tid);
    if (it != klassMemo_.end())
        return it->second;
    Klass *k = ctx_.resolver().klassForId(tid);
    panicIf(!k, "CompactEncoder: unresolvable type id " +
                    std::to_string(tid));
    klassMemo_[tid] = k;
    return k;
}

int
CompactEncoder::decisionFor(std::int32_t tid, const Klass *k)
{
    auto it = memo_.find(tid);
    if (it != memo_.end())
        return it->second;
    int d = ctx_.wireEncodings().decision(tid);
    if (d < 0) {
        if (mode_ == WireCompactMode::Force) {
            d = 1;
        } else {
            // The registry's cached hint (propagated with LOOKUP)
            // first; local layout arithmetic when it has none. The
            // hint path never performs a round trip — encodingHint is
            // a cache probe by contract.
            int pct = ctx_.resolver().encodingHint(tid);
            if (pct < 0 || pct > 100)
                pct = wire::staticSavingPercent(k, wireFmt_);
            d = pct >= minSavingPct_ ? 1 : 0;
        }
        ctx_.wireEncodings().setDecision(tid, d);
    }
    memo_[tid] = d;
    return d;
}

bool
CompactEncoder::anyCompactClass(const std::uint8_t *data,
                                std::size_t len)
{
    std::size_t off = 0;
    while (off < len) {
        Word first = wordAt(data + off);
        if (marker::isMarker(first)) {
            panicIf(first != marker::topMark &&
                        first != marker::backRef,
                    "CompactEncoder: unknown marker word");
            off += first == marker::topMark ? wordSize : 2 * wordSize;
            continue;
        }
        auto tid = static_cast<std::int32_t>(
            wordAt(data + off + offsetKlass));
        Klass *k = klassFor(tid);
        if (decisionFor(tid, k) == 1)
            return true;
        off += rawRecordSize(data + off, k, wireFmt_);
    }
    return false;
}

void
CompactEncoder::appendRecord(const std::uint8_t *rec, std::size_t size,
                             std::int32_t tid, const Klass *k,
                             bool compact)
{
    if (!compact) {
        enc_.push_back(wire::ctRawRecord);
        wire::putVarU64(enc_, size);
        enc_.insert(enc_.end(), rec, rec + size);
        return;
    }

    std::size_t before = enc_.size();
    std::ptrdiff_t delta =
        static_cast<std::ptrdiff_t>(k->format().headerBytes()) -
        static_cast<std::ptrdiff_t>(wireFmt_.headerBytes());
    Word m = wordAt(rec + offsetMark);
    auto utid = static_cast<std::uint64_t>(tid);

    if (!k->isArray()) {
        enc_.push_back(wire::ctInstance);
        wire::putVarU64(enc_, utid);
        wire::putVarU64(enc_, m);
        for (const FieldDesc &f : k->fields()) {
            std::size_t woff = static_cast<std::size_t>(
                static_cast<std::ptrdiff_t>(f.offset) - delta);
            if (f.type == FieldType::Ref) {
                wire::putVarU64(enc_, wordAt(rec + woff));
            } else {
                std::size_t fs = fieldSize(f.type);
                enc_.insert(enc_.end(), rec + woff, rec + woff + fs);
            }
        }
    } else {
        Word n = wordAt(rec + wireFmt_.arrayLengthOffset());
        const std::uint8_t *payload = rec + wireFmt_.arrayHeaderBytes();
        if (k->elemType() == FieldType::Ref) {
            enc_.push_back(wire::ctRefArray);
            wire::putVarU64(enc_, utid);
            wire::putVarU64(enc_, m);
            wire::putVarU64(enc_, n);
            for (Word i = 0; i < n; ++i)
                wire::putVarU64(enc_, wordAt(payload + i * wordSize));
        } else {
            std::size_t bytes =
                static_cast<std::size_t>(n) * k->elemSize();
            rle_.clear();
            if (bytes >= 2 * wire::rleMinZeroRun)
                rleEncode(payload, bytes, rle_);
            bool use_rle = !rle_.empty() && rle_.size() < bytes;
            enc_.push_back(use_rle ? wire::ctPrimArrayRle
                                   : wire::ctPrimArray);
            wire::putVarU64(enc_, utid);
            wire::putVarU64(enc_, m);
            wire::putVarU64(enc_, n);
            if (use_rle)
                enc_.insert(enc_.end(), rle_.begin(), rle_.end());
            else
                enc_.insert(enc_.end(), payload, payload + bytes);
        }
    }

    ++compactRecords_;
    Measured &acc = measured_[tid];
    acc.rawBytes += size;
    acc.compactBytes += enc_.size() - before;
    ++acc.records;
}

void
CompactEncoder::buildCompact(const std::uint8_t *data, std::size_t len)
{
    enc_.clear();
    std::size_t off = 0;
    while (off < len) {
        Word first = wordAt(data + off);
        if (marker::isMarker(first)) {
            if (first == marker::topMark) {
                enc_.push_back(wire::ctTopMark);
                off += wordSize;
            } else if (first == marker::backRef) {
                enc_.push_back(wire::ctBackRef);
                wire::putVarU64(enc_, wordAt(data + off + wordSize));
                off += 2 * wordSize;
            } else {
                panic("CompactEncoder: unknown marker word");
            }
            continue;
        }
        auto tid = static_cast<std::int32_t>(
            wordAt(data + off + offsetKlass));
        Klass *k = klassFor(tid);
        std::size_t size = rawRecordSize(data + off, k, wireFmt_);
        panicIf(off + size > len,
                "CompactEncoder: record spans a flushed segment");
        appendRecord(data + off, size, tid, k,
                     decisionFor(tid, k) == 1);
        off += size;
    }
}

void
CompactEncoder::syncMeasured()
{
    if (mode_ == WireCompactMode::Auto) {
        for (auto &[tid, acc] : measured_) {
            if (acc.records == 0)
                continue;
            memo_[tid] = ctx_.wireEncodings().recordMeasured(
                tid, acc.rawBytes, acc.compactBytes, acc.records,
                minSavingPct_);
            acc = Measured{};
        }
    }
    if (savedBytes_ + compactRecords_ + compactSegments_ == 0)
        return;
    CompactMetrics &m = CompactMetrics::get();
    m.bytesSaved.add(savedBytes_);
    m.records.add(compactRecords_);
    m.segments.add(compactSegments_);
    m.classes.set(static_cast<std::int64_t>(
        ctx_.wireEncodings().compactClassCount()));
    savedBytes_ = compactRecords_ = compactSegments_ = 0;
}

void
CompactEncoder::encodeSegment(const std::uint8_t *data, std::size_t len,
                              const OutputBuffer::FlushFn &sink)
{
    if (len == 0)
        return;
    // Pass 1 (Auto): a segment with no compact-decided class travels
    // verbatim — no rewrite, no extra copy.
    if (mode_ != WireCompactMode::Force && !anyCompactClass(data, len)) {
        sink(data, len);
        syncMeasured();
        return;
    }
    // Pass 2: build the compact stream.
    buildCompact(data, len);
    std::size_t total =
        wordSize + wire::varLen(enc_.size()) + enc_.size();
    if (mode_ != WireCompactMode::Force && total >= len) {
        // The estimate lied for this mix; ship raw and let the
        // measured accounting demote the offenders.
        sink(data, len);
        syncMeasured();
        return;
    }
    out_.clear();
    out_.reserve(total);
    out_.resize(wordSize);
    putWord(out_.data(), marker::compactSeg);
    wire::putVarU64(out_, enc_.size());
    out_.insert(out_.end(), enc_.begin(), enc_.end());
    if (out_.size() < len)
        savedBytes_ += len - out_.size();
    ++compactSegments_;
    sink(out_.data(), out_.size());
    syncMeasured();
}

OutputBuffer::FlushFn
compactStage(SkywayContext &ctx, ObjectFormat wire_format,
             OutputBuffer::FlushFn sink)
{
    WireCompactMode mode = ctx.wireCompactMode();
    if (mode == WireCompactMode::Off)
        return sink;
    if (mode == WireCompactMode::Auto &&
        wire::WirePolicy::minSavingPercent(ctx.wireNsPerByte()) > 100.0)
        return sink; // wire cheaper than the encoder: pass through
    auto enc = std::make_shared<CompactEncoder>(ctx, wire_format);
    return [enc, sink = std::move(sink)](const std::uint8_t *data,
                                         std::size_t len) {
        enc->encodeSegment(data, len, sink);
    };
}

} // namespace skyway
