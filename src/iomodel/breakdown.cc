#include "iomodel/breakdown.hh"

#include <cstdio>

namespace skyway
{

std::string
breakdownCsvHeader()
{
    return "compute_ms,ser_ms,write_ms,deser_ms,read_ms,total_ms,"
           "local_mb,remote_mb";
}

std::string
breakdownCsv(const PhaseBreakdown &b)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f",
                  b.computeNs / 1e6, b.serNs / 1e6, b.writeIoNs / 1e6,
                  b.deserNs / 1e6, b.readIoNs / 1e6, b.totalNs() / 1e6,
                  b.bytesLocal / 1e6, b.bytesRemote / 1e6);
    return buf;
}

} // namespace skyway
