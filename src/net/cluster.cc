#include "net/cluster.hh"

#include <cstring>

#include "obs/metrics.hh"

namespace skyway
{

namespace
{

/** Registry-backed fabric counters, resolved once per process. */
struct NetMetrics
{
    obs::Counter &bytesSent;
    obs::Counter &messagesSent;
    obs::Counter &wireNs;
    obs::Counter &requests;
    obs::Histogram &messageBytes;

    static NetMetrics &
    get()
    {
        auto &r = obs::MetricsRegistry::global();
        static NetMetrics m{
            r.counter("net.bytes_sent"),
            r.counter("net.messages_sent"),
            r.counter("net.wire_ns"),
            r.counter("net.requests"),
            // 64 B .. ~16 MB in x4 steps: spans a type-registry
            // request through a full output-buffer flush.
            r.histogram("net.message_bytes",
                        obs::exponentialBounds(64, 4.0, 10)),
        };
        return m;
    }
};

} // namespace

ClusterNetwork::ClusterNetwork(int node_count, NetworkCostModel model)
    : nodeCount_(node_count),
      model_(model),
      mailboxes_(node_count),
      handlers_(node_count),
      wireNs_(node_count, 0),
      bytes_(static_cast<std::size_t>(node_count) * node_count, 0),
      msgs_(node_count, 0)
{
    panicIf(node_count <= 0, "ClusterNetwork: need at least one node");
}

void
ClusterNetwork::charge(NodeId src, NodeId dst, std::size_t bytes)
{
    if (src == dst)
        return; // loopback is free and not counted as remote bytes
    std::uint64_t ns = model_.transferNs(bytes);
    wireNs_[src] += ns;
    bytes_[src * nodeCount_ + dst] += bytes;
    ++msgs_[src];

    NetMetrics &m = NetMetrics::get();
    m.bytesSent.add(bytes);
    m.messagesSent.inc();
    m.wireNs.add(ns);
    m.messageBytes.record(bytes);
}

void
ClusterNetwork::send(NodeId src, NodeId dst, int tag,
                     std::vector<std::uint8_t> payload)
{
    std::lock_guard<std::mutex> lock(mutex_);
    panicIf(dst < 0 || dst >= nodeCount_, "send: bad destination");
    charge(src, dst, payload.size());
    mailboxes_[dst].push_back(NetMessage{src, dst, tag,
                                         std::move(payload)});
}

bool
ClusterNetwork::poll(NodeId dst, NetMessage &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &box = mailboxes_[dst];
    if (box.empty())
        return false;
    out = std::move(box.front());
    box.pop_front();
    return true;
}

bool
ClusterNetwork::pollTag(NodeId dst, int tag, NetMessage &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &box = mailboxes_[dst];
    for (auto it = box.begin(); it != box.end(); ++it) {
        if (it->tag == tag) {
            out = std::move(*it);
            box.erase(it);
            return true;
        }
    }
    return false;
}

std::ptrdiff_t
ClusterNetwork::pollTagInto(NodeId dst, int tag,
                            const ReserveFn &reserve)
{
    NetMessage msg;
    // Dequeue under the mailbox lock, then deliver outside it: the
    // reserve callback may allocate heap chunks and the copy-out may
    // be large; neither should stall concurrent senders.
    if (!pollTag(dst, tag, msg))
        return -1;
    if (msg.payload.empty())
        return 0;
    std::uint8_t *to = reserve(msg.payload.size());
    panicIf(to == nullptr, "pollTagInto: reserve returned null");
    std::memcpy(to, msg.payload.data(), msg.payload.size());
    return static_cast<std::ptrdiff_t>(msg.payload.size());
}

void
ClusterNetwork::registerHandler(NodeId node, RequestHandler handler)
{
    std::lock_guard<std::mutex> lock(mutex_);
    handlers_[node] = std::move(handler);
}

std::vector<std::uint8_t>
ClusterNetwork::request(NodeId src, NodeId dst, int tag,
                        const std::vector<std::uint8_t> &payload)
{
    RequestHandler handler;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        handler = handlers_[dst];
        charge(src, dst, payload.size());
    }
    panicIf(!handler, "request: node has no registered handler");
    NetMetrics::get().requests.inc();
    std::vector<std::uint8_t> reply = handler(src, tag, payload);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // The requester blocks for the reply as well.
        if (src != dst) {
            std::uint64_t ns = model_.transferNs(reply.size());
            wireNs_[src] += ns;
            NetMetrics::get().wireNs.add(ns);
        }
    }
    return reply;
}

std::uint64_t
ClusterNetwork::totalBytesSent(NodeId src) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (int d = 0; d < nodeCount_; ++d)
        total += bytes_[src * nodeCount_ + d];
    return total;
}

void
ClusterNetwork::resetAccounting()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::fill(wireNs_.begin(), wireNs_.end(), 0);
    std::fill(bytes_.begin(), bytes_.end(), 0);
    std::fill(msgs_.begin(), msgs_.end(), 0);
}

} // namespace skyway
