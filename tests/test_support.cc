/**
 * @file
 * Unit tests for the support module: byte codecs, varints, RNG
 * determinism, and alignment helpers.
 */

#include <gtest/gtest.h>

#include "support/bytebuffer.hh"
#include "support/rng.hh"
#include "support/types.hh"

namespace skyway
{
namespace
{

TEST(Align, WordAlign)
{
    EXPECT_EQ(wordAlign(0), 0u);
    EXPECT_EQ(wordAlign(1), 8u);
    EXPECT_EQ(wordAlign(8), 8u);
    EXPECT_EQ(wordAlign(9), 16u);
    EXPECT_EQ(alignUp(13, 4), 16u);
    EXPECT_EQ(alignUp(16, 16), 16u);
}

TEST(ByteBuffer, PrimitiveRoundTrip)
{
    VectorSink sink;
    sink.writeU8(0xab);
    sink.writeU16(0x1234);
    sink.writeU32(0xdeadbeef);
    sink.writeU64(0x0123456789abcdefull);
    sink.writeI32(-42);
    sink.writeI64(-1e15);
    sink.writeF32(3.5f);
    sink.writeF64(-2.25);
    sink.writeString("hello skyway");

    ByteSource src(sink.bytes());
    EXPECT_EQ(src.readU8(), 0xab);
    EXPECT_EQ(src.readU16(), 0x1234);
    EXPECT_EQ(src.readU32(), 0xdeadbeefu);
    EXPECT_EQ(src.readU64(), 0x0123456789abcdefull);
    EXPECT_EQ(src.readI32(), -42);
    EXPECT_EQ(src.readI64(), static_cast<std::int64_t>(-1e15));
    EXPECT_EQ(src.readF32(), 3.5f);
    EXPECT_EQ(src.readF64(), -2.25);
    EXPECT_EQ(src.readString(), "hello skyway");
    EXPECT_TRUE(src.atEnd());
}

TEST(ByteBuffer, VarintEncodingSizes)
{
    VectorSink sink;
    sink.writeVarU64(0);
    EXPECT_EQ(sink.bytesWritten(), 1u);
    sink.clear();
    sink.writeVarU64(127);
    EXPECT_EQ(sink.bytesWritten(), 1u);
    sink.clear();
    sink.writeVarU64(128);
    EXPECT_EQ(sink.bytesWritten(), 2u);
    sink.clear();
    sink.writeVarU64(~0ull);
    EXPECT_EQ(sink.bytesWritten(), 10u);
}

TEST(ByteBuffer, VarintRoundTripSweep)
{
    VectorSink sink;
    std::vector<std::uint64_t> vals;
    for (int shift = 0; shift < 64; ++shift) {
        vals.push_back(1ull << shift);
        vals.push_back((1ull << shift) - 1);
    }
    for (auto v : vals)
        sink.writeVarU64(v);
    ByteSource src(sink.bytes());
    for (auto v : vals)
        EXPECT_EQ(src.readVarU64(), v);
}

TEST(ByteBuffer, ZigzagRoundTrip)
{
    VectorSink sink;
    std::vector<std::int64_t> vals = {0, -1, 1, -64, 63, -65, 64,
                                      INT32_MIN, INT32_MAX, INT64_MIN,
                                      INT64_MAX};
    for (auto v : vals) {
        sink.writeVarI64(v);
        sink.writeVarI32(static_cast<std::int32_t>(v & 0xffffffff));
    }
    ByteSource src(sink.bytes());
    for (auto v : vals) {
        EXPECT_EQ(src.readVarI64(), v);
        EXPECT_EQ(src.readVarI32(),
                  static_cast<std::int32_t>(v & 0xffffffff));
    }
}

TEST(ByteBuffer, ZigzagSmallMagnitudeIsShort)
{
    // Zigzag exists so small negative numbers stay short.
    VectorSink sink;
    sink.writeVarI64(-1);
    EXPECT_EQ(sink.bytesWritten(), 1u);
    sink.clear();
    sink.writeVarI64(-64);
    EXPECT_EQ(sink.bytesWritten(), 1u);
    sink.clear();
    sink.writeVarI64(-65);
    EXPECT_EQ(sink.bytesWritten(), 2u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    bool all_equal = true;
    bool any_diff_seed = false;
    for (int i = 0; i < 100; ++i) {
        auto va = a.nextU64();
        auto vb = b.nextU64();
        auto vc = c.nextU64();
        all_equal = all_equal && (va == vb);
        any_diff_seed = any_diff_seed || (va != vc);
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_seed);
}

TEST(Rng, BoundedInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, PowerLawSkewed)
{
    // A power law over [0, n) must put most mass near 0.
    Rng r(11);
    const std::uint64_t n = 1000;
    int low = 0;
    const int draws = 10000;
    for (int i = 0; i < draws; ++i) {
        auto k = r.nextPowerLaw(n, 2.0);
        ASSERT_LT(k, n);
        if (k < n / 10)
            ++low;
    }
    EXPECT_GT(low, draws / 2);
}

} // namespace
} // namespace skyway
