file(REMOVE_RECURSE
  "libskyway_support.a"
)
