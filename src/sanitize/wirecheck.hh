/**
 * @file
 * SkywaySan wire-format validator (docs/SANITIZER.md).
 *
 * Skyway ships objects in heap format: there is no deserializer on the
 * receiving side to reject a malformed stream, so a single bad
 * relativized offset or forged type ID silently corrupts the receiving
 * heap. The WireValidator analyzes a flushed output-buffer stream
 * *without materializing it* and checks every invariant the format
 * promises (paper sections 4.1-4.3):
 *
 *  - every klass word resolves in the type registry;
 *  - every relativized reference offset lands on a decoded object
 *    start within [0, flushedBytes);
 *  - top marks and backward references delimit well-formed root
 *    records;
 *  - the baddr header word is cleared on the wire (the sender's claim
 *    bits never leave the machine);
 *  - mark words carry only the transfer-surviving bits (the cached
 *    hashcode and its computed flag — mark::resetForTransfer);
 *  - object sizes and alignment match each klass's field layout, and
 *    no record spans a flushed segment.
 *
 * The validator is incremental: feed() consumes segments in flush
 * order (the same protocol as InputBuffer::feed) and finish() settles
 * the deferred checks (forward references, unterminated top marks).
 * It never panics on corrupt input — every violation becomes a
 * WireDiagnostic with a fault category and a stream offset, which is
 * what the corruption-injection harness (corrupt.hh) asserts against.
 */

#ifndef SKYWAY_SANITIZE_WIRECHECK_HH
#define SKYWAY_SANITIZE_WIRECHECK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "klass/objectformat.hh"
#include "support/types.hh"

namespace skyway
{

class Klass;
class TypeResolver;

namespace sanitize
{

/** Violation categories; each injected corruption class maps to one. */
enum class WireFault
{
    /** Marker bits set but neither a top mark nor a backward ref. */
    UnknownMarker,
    /** Klass word does not resolve in the type registry. */
    UnresolvableTypeId,
    /** A record (or marker operand) extends past its segment. */
    TruncatedRecord,
    /** Record size/alignment inconsistent with the klass layout. */
    MisalignedRecord,
    /** A reference slot does not name a decoded object start. */
    DanglingReference,
    /** Mark word carries bits that must not survive transfer. */
    BadMarkWord,
    /** Nonzero baddr word: sender claim state leaked onto the wire. */
    BadBaddrWord,
    /** Top mark / backward reference does not delimit a root record. */
    BadRootRecord,
    /**
     * A compact segment (docs/WIRE_FORMAT.md) is malformed: unknown
     * item tag, an item overrunning the declared payload, a length
     * that disagrees with the klass layout, or a truncated varint.
     */
    BadCompactItem,
};

const char *wireFaultName(WireFault f);

/** One violation, located by its physical (flushed-byte) offset. */
struct WireDiagnostic
{
    WireFault fault;
    std::uint64_t offset;
    std::string detail;

    /** "fault-name @+offset: detail" */
    std::string str() const;
};

struct WireCheckConfig
{
    /** The format records were laid out against (receiver format). */
    ObjectFormat wireFormat{};
    /** Stop collecting after this many diagnostics. */
    std::size_t maxDiagnostics = 16;
};

/** What a validated stream contained (cross-checkable with stats). */
struct WireSummary
{
    std::uint64_t records = 0;
    std::uint64_t topMarks = 0;
    std::uint64_t backRefs = 0;
    std::uint64_t refSlots = 0;
    /** Record bytes (markers occupy no logical address space). */
    std::uint64_t logicalBytes = 0;
    /** All fed bytes, markers included. */
    std::uint64_t physicalBytes = 0;
};

/**
 * Byte map of a valid stream, built as a side product of validation.
 * The corruption harness uses it to aim precise mutations.
 */
struct WireIndex
{
    struct Record
    {
        std::uint64_t physOffset;
        std::uint64_t logOffset;
        std::size_t size;
        bool isArray;
    };

    std::vector<Record> records;
    /** Physical offsets of top-mark marker words. */
    std::vector<std::uint64_t> topMarkOffsets;
    /** Physical offsets of backward-reference marker words. */
    std::vector<std::uint64_t> backRefOffsets;
    /** Physical offsets of non-null reference slot words. */
    std::vector<std::uint64_t> refSlotOffsets;
    /** Physical offsets of compact item tag bytes (one per item). */
    std::vector<std::uint64_t> compactItemOffsets;
};

class WireValidator
{
  public:
    /**
     * @param resolver registry endpoint used to resolve klass words;
     *                 forged ids resolve to nullptr (never panic)
     * @param cfg      wire geometry and reporting limits
     */
    explicit WireValidator(TypeResolver &resolver,
                           WireCheckConfig cfg = WireCheckConfig{});

    /** Analyze one flushed segment (whole records, flush order). */
    void feed(const std::uint8_t *data, std::size_t len);

    /**
     * Settle deferred checks: every collected forward reference must
     * land on a decoded record start, and no top mark may be left
     * without its record. Idempotent; feeding may continue afterwards
     * (the sender validates at every flush).
     */
    void finish();

    bool ok() const { return diags_.empty(); }
    const std::vector<WireDiagnostic> &diagnostics() const
    {
        return diags_;
    }

    /** First diagnostic formatted, or "" when the stream is clean. */
    std::string firstFault() const;

    const WireSummary &summary() const { return sum_; }
    const WireIndex &index() const { return index_; }

  private:
    struct PendingRef
    {
        std::uint64_t target;     // logical offset the slot names
        std::uint64_t slotOffset; // physical offset of the slot word
    };

    void report(WireFault f, std::uint64_t off, std::string detail);
    bool isRecordStart(std::uint64_t logical) const;
    Klass *resolveTid(std::int32_t tid);
    /** Scan one record at @p rec; returns its size, 0 on fatal fault. */
    std::size_t scanRecord(const std::uint8_t *rec,
                           std::size_t remaining,
                           std::uint64_t phys_off);

    /**
     * Scan one compact segment (marker + varint payload length +
     * tagged items) at @p data, validating each item against the
     * same invariants the raw scan enforces and accounting records
     * at their *expanded* logical sizes, so references between raw
     * and compact segments of one stream cross-check. Returns the
     * consumed wire bytes, 0 on a fatal fault. Never panics — this
     * is the veto the receiver's expander relies on.
     */
    std::size_t scanCompactSegment(const std::uint8_t *data,
                                   std::size_t remaining,
                                   std::uint64_t phys_off);

    TypeResolver &resolver_;
    WireCheckConfig cfg_;

    std::vector<WireDiagnostic> diags_;
    WireSummary sum_;
    WireIndex index_;

    /** Logical offsets of decoded record starts (ascending). */
    std::vector<std::uint64_t> recordStarts_;
    std::vector<PendingRef> pendingRefs_;

    std::uint64_t physical_ = 0;
    std::uint64_t logical_ = 0;

    /** A top mark was scanned and its record has not yet followed. */
    bool awaitingTopRecord_ = false;
    std::uint64_t awaitingTopOffset_ = 0;

    /** Dense tid -> klass cache (mirrors InputBuffer's). */
    std::vector<Klass *> tidCache_;
};

} // namespace sanitize
} // namespace skyway

#endif // SKYWAY_SANITIZE_WIRECHECK_HH
