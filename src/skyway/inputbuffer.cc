#include "skyway/inputbuffer.hh"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "heap/objectops.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "sanitize/wirecheck.hh"
#include "skyway/baddr.hh"
#include "skyway/wirecompact.hh"
#include "support/stopwatch.hh"

namespace skyway
{

namespace
{

/** Registry-backed receiver counters, resolved once per process. */
struct ReceiverMetrics
{
    obs::Counter &objectsReceived;
    obs::Counter &bytesReceived;
    obs::Counter &chunksAllocated;
    obs::Counter &oversizedChunks;
    obs::Counter &refsAbsolutized;
    obs::Counter &fieldUpdatesApplied;
    obs::Counter &zeroCopyBytes;
    obs::Counter &expandedBytes;
    obs::Counter &expandNs;

    static ReceiverMetrics &
    get()
    {
        auto &r = obs::MetricsRegistry::global();
        static ReceiverMetrics m{
            r.counter("skyway.receiver.objects_received"),
            r.counter("skyway.receiver.bytes_received"),
            r.counter("skyway.receiver.chunks_allocated"),
            r.counter("skyway.receiver.oversized_chunks"),
            r.counter("skyway.receiver.refs_absolutized"),
            r.counter("skyway.receiver.field_updates_applied"),
            r.counter("skyway.receiver.zero_copy_bytes"),
            r.counter("skyway.receiver.expanded_bytes"),
            r.counter("skyway.receiver.expand_ns"),
        };
        return m;
    }
};

} // namespace

InputBuffer::InputBuffer(SkywayContext &ctx, std::size_t chunk_bytes)
    : ctx_(ctx),
      heap_(ctx.heap()),
      chunkBytes_(chunk_bytes),
      fmt_(ctx.heap().format())
{
    panicIf(chunk_bytes < 4 * wordSize,
            "InputBuffer: chunk size too small");
    // Pre-size the tid cache to the registry's current assignment
    // ceiling so the receive hot loop never grows the vector
    // mid-parse; ids assigned after construction (stale view) still
    // grow it lazily.
    std::int32_t max_id = ctx_.resolver().maxAssignedId();
    if (max_id >= 0)
        tidCache_.resize(static_cast<std::size_t>(max_id) + 1, nullptr);
    if (ctx_.debug().validateWire)
        validator_ = std::make_unique<sanitize::WireValidator>(
            ctx_.resolver(), sanitize::WireCheckConfig{fmt_});
}

InputBuffer::~InputBuffer()
{
    publishMetrics();
    free();
}

Klass *
InputBuffer::klassForTid(std::int32_t tid)
{
    panicIf(tid < 0, "InputBuffer: negative type id");
    auto idx = static_cast<std::size_t>(tid);
    if (idx < tidCache_.size() && tidCache_[idx])
        return tidCache_[idx];
    Klass *k = ctx_.resolver().klassForId(tid);
    panicIf(!k, "InputBuffer: unresolvable type id " +
                    std::to_string(tid));
    if (idx >= tidCache_.size())
        tidCache_.resize(idx + 1, nullptr);
    tidCache_[idx] = k;
    return k;
}

std::size_t
InputBuffer::recordSize(const std::uint8_t *rec, Klass *k) const
{
    if (!k->isArray())
        return k->instanceBytes();
    Word len;
    std::memcpy(&len, rec + fmt_.arrayLengthOffset(), wordSize);
    return k->arrayBytes(static_cast<std::size_t>(len));
}

void
InputBuffer::newChunk(std::size_t at_least)
{
    // Compact wire segments have arbitrary byte lengths; round the
    // capacity up so the finalize-time tail filler (and the heap
    // allocator) always see word-aligned extents.
    std::size_t cap = wordAlign(std::max(chunkBytes_, at_least));
    if (at_least > chunkBytes_)
        ++stats_.oversizedChunks;
    // Tenured allocation: input buffers live in the old generation.
    // No zeroing: the transport fills the chunk with records and
    // finalize() covers the tail with a filler before the GC can walk
    // it.
    Address base = heap_.allocateOldRaw(cap, false);
    std::size_t pin = heap_.pinOldRange(base, cap);
    chunks_.push_back(Chunk{base, cap, 0, pin});
    ++stats_.chunksAllocated;
}

void
InputBuffer::publishMetrics()
{
    ReceiverMetrics &m = ReceiverMetrics::get();
    m.objectsReceived.add(stats_.objectsReceived -
                          published_.objectsReceived);
    m.bytesReceived.add(stats_.bytesReceived -
                        published_.bytesReceived);
    m.chunksAllocated.add(stats_.chunksAllocated -
                          published_.chunksAllocated);
    m.oversizedChunks.add(stats_.oversizedChunks -
                          published_.oversizedChunks);
    m.refsAbsolutized.add(stats_.refsAbsolutized -
                          published_.refsAbsolutized);
    m.fieldUpdatesApplied.add(stats_.fieldUpdatesApplied -
                              published_.fieldUpdatesApplied);
    m.zeroCopyBytes.add(stats_.zeroCopyBytes -
                        published_.zeroCopyBytes);
    m.expandedBytes.add(stats_.expandedBytes -
                        published_.expandedBytes);
    m.expandNs.add(stats_.expandNs - published_.expandNs);
    published_ = stats_;
}

std::uint8_t *
InputBuffer::reserveChunk(std::size_t len)
{
    panicIf(finalized_, "InputBuffer: reserveChunk after finalize");
    panicIf(reserved_ != nullptr,
            "InputBuffer: a chunk reservation is already open");
    if (chunks_.empty() ||
        chunks_.back().fill + len > chunks_.back().cap)
        newChunk(len);
    Chunk &c = chunks_.back();
    reserved_ = reinterpret_cast<std::uint8_t *>(c.base + c.fill);
    reservedLen_ = len;
    return reserved_;
}

void
InputBuffer::commitChunk(std::size_t len)
{
    commitReserved(len, /*zero_copy=*/true, /*already_validated=*/false);
}

void
InputBuffer::commitReserved(std::size_t len, bool zero_copy,
                            bool already_validated)
{
    SKYWAY_SPAN("receiver.commit");
    panicIf(finalized_, "InputBuffer: commit after finalize");
    panicIf(reserved_ == nullptr,
            "InputBuffer: commit without a reservation");
    panicIf(len > reservedLen_,
            "InputBuffer: commit exceeds the reservation");
    if (validator_ && !already_validated) {
        // Fail on the validator's verdict *before* the parser touches
        // the segment: the parser assumes well-formed input (a forged
        // type id would panic deep inside the registry with no
        // context), while the validator names the fault and its
        // stream offset. The validator must also read the bytes
        // before marker words are overwritten with fillers below.
        validator_->feed(reserved_, len);
        panicIf(!validator_->ok(),
                "SkywaySan: receiver wire validation failed: " +
                    validator_->firstFault());
    }

    if (len >= wordSize && wire::isCompactSegment(reserved_, len)) {
        // The expander writes full-format records through the regular
        // chunk machinery — into the very region this reservation
        // covers — so the compact wire bytes are staged out first and
        // the reservation is abandoned without advancing the fill.
        // These bytes are *not* zero-copy: the wire representation is
        // not the chunk representation (stats_.expandedBytes holds
        // what the segment produced).
        scratch_.assign(reserved_, reserved_ + len);
        reserved_ = nullptr;
        reservedLen_ = 0;
        std::size_t used = expandSegment(scratch_.data(),
                                         scratch_.size());
        panicIf(used != scratch_.size(),
                "InputBuffer: trailing bytes after a compact segment");
        return;
    }

    std::size_t off = 0;
    while (off < len) {
        std::uint8_t *rec = reserved_ + off;
        Address pa = reinterpret_cast<Address>(rec);
        // Marker words delimit top-level objects; they occupy no
        // logical address space. With the segment already sitting in
        // chunk storage they are consumed and overwritten in place
        // with heap filler records, so linear chunk walks skip them.
        // A real object's mark word can never match: its reserved
        // bits are always zero.
        Word first;
        std::memcpy(&first, rec, wordSize);
        if (marker::isMarker(first)) {
            if (first == marker::topMark) {
                panicIf(off + wordSize > len,
                        "InputBuffer: truncated marker");
                // The next record is a top-level object.
                pendingRoots_.push_back(RootSpec{false, logical_});
                heap_.writeFillerAny(pa, wordSize);
                off += wordSize;
            } else if (first == marker::backRef) {
                panicIf(off + 2 * wordSize > len,
                        "InputBuffer: truncated marker");
                Word slot;
                std::memcpy(&slot, rec + wordSize, wordSize);
                pendingRoots_.push_back(RootSpec{true, slot});
                heap_.writeFillerAny(pa, 2 * wordSize);
                off += 2 * wordSize;
            } else {
                panic("InputBuffer: unknown marker word");
            }
            continue;
        }

        Word tid_word;
        std::memcpy(&tid_word, rec + offsetKlass, wordSize);
        Klass *k = klassForTid(static_cast<std::int32_t>(tid_word));
        std::size_t size = recordSize(rec, k);
        panicIf(off + size > len,
                "InputBuffer: record spans a streamed segment");

        // Extend the open logical run, or start a new one after a
        // marker or a chunk boundary broke contiguity.
        if (!runs_.empty() &&
            runs_.back().base + runs_.back().bytes == pa &&
            runs_.back().firstLogical + runs_.back().bytes == logical_)
            runs_.back().bytes += size;
        else
            runs_.push_back(Run{logical_, pa, size});

        logical_ += size;
        off += size;
        ++stats_.objectsReceived;
        stats_.bytesReceived += size;
    }

    chunks_.back().fill += len;
    if (zero_copy)
        stats_.zeroCopyBytes += len;
    reserved_ = nullptr;
    reservedLen_ = 0;
}

std::size_t
InputBuffer::itemSize(const std::uint8_t *data, std::size_t len)
{
    Word first;
    std::memcpy(&first, data, wordSize);
    if (marker::isMarker(first)) {
        if (first == marker::topMark)
            return wordSize;
        if (first == marker::backRef) {
            panicIf(len < 2 * wordSize,
                    "InputBuffer: truncated marker");
            return 2 * wordSize;
        }
        if (first == marker::compactSeg)
            return 0; // expandSegment's job, not a batchable item
        panic("InputBuffer: unknown marker word");
    }
    Word tid_word;
    std::memcpy(&tid_word, data + offsetKlass, wordSize);
    Klass *k = klassForTid(static_cast<std::int32_t>(tid_word));
    std::size_t size = recordSize(data, k);
    panicIf(size > len, "InputBuffer: record spans a streamed segment");
    return size;
}

std::size_t
InputBuffer::scanBatch(const std::uint8_t *data, std::size_t len,
                       std::size_t limit)
{
    std::size_t off = 0;
    while (off < len) {
        std::size_t size = itemSize(data + off, len - off);
        if (size == 0 || off + size > limit)
            break;
        off += size;
    }
    return off;
}

void
InputBuffer::feed(const std::uint8_t *data, std::size_t len)
{
    SKYWAY_SPAN("receiver.feed");
    panicIf(finalized_, "InputBuffer: feed after finalize");
    if (validator_) {
        validator_->feed(data, len);
        panicIf(!validator_->ok(),
                "SkywaySan: receiver wire validation failed: " +
                    validator_->firstFault());
    }
    // Compatibility path for byte-owning callers: split the segment
    // at item boundaries into batches that pack into regular-size
    // chunks (one memcpy per batch), then run the shared in-place
    // commit. The zero-copy path (reserveChunk/commitChunk) skips
    // this copy entirely.
    std::size_t off = 0;
    while (off < len) {
        Word lead;
        if (len - off >= wordSize) {
            std::memcpy(&lead, data + off, wordSize);
            if (lead == marker::compactSeg) {
                // Byte-owning caller: no aliasing with chunk storage,
                // expand straight from the caller's buffer. A file
                // stream may concatenate further segments after it.
                off += expandSegment(data + off, len - off);
                continue;
            }
        }
        std::size_t avail = chunks_.empty()
                                ? chunkBytes_
                                : chunks_.back().cap -
                                      chunks_.back().fill;
        std::size_t batch = scanBatch(data + off, len - off, avail);
        if (batch == 0) {
            // Nothing fits the current chunk; size the batch for a
            // fresh chunk (oversized when one record alone exceeds
            // the regular chunk size).
            std::size_t first = itemSize(data + off, len - off);
            batch = (first >= chunkBytes_)
                        ? first
                        : scanBatch(data + off, len - off, chunkBytes_);
        }
        std::uint8_t *dst = reserveChunk(batch);
        std::memcpy(dst, data + off, batch);
        commitReserved(batch, /*zero_copy=*/false,
                       /*already_validated=*/true);
        off += batch;
    }
}

std::size_t
InputBuffer::expandSegment(const std::uint8_t *data, std::size_t len)
{
    SKYWAY_SPAN("receiver.expand");
    Stopwatch sw;
    wire::ExpandHooks hooks;
    hooks.klassFor = [this](std::int32_t tid) {
        return klassForTid(tid);
    };
    hooks.onMarker = [this](bool is_back_ref, Word slot) {
        // Same bookkeeping the raw parser does for marker words,
        // minus the filler: compact markers never occupied chunk
        // space in the first place.
        if (is_back_ref)
            pendingRoots_.push_back(RootSpec{true, slot});
        else
            pendingRoots_.push_back(RootSpec{false, logical_});
    };
    hooks.place = [this](std::size_t size) -> std::uint8_t * {
        if (chunks_.empty() ||
            chunks_.back().fill + size > chunks_.back().cap)
            newChunk(size);
        Chunk &c = chunks_.back();
        Address pa = c.base + c.fill;
        if (!runs_.empty() &&
            runs_.back().base + runs_.back().bytes == pa &&
            runs_.back().firstLogical + runs_.back().bytes == logical_)
            runs_.back().bytes += size;
        else
            runs_.push_back(Run{logical_, pa, size});
        c.fill += size;
        logical_ += size;
        ++stats_.objectsReceived;
        stats_.bytesReceived += size;
        stats_.expandedBytes += size;
        return reinterpret_cast<std::uint8_t *>(pa);
    };
    std::size_t used =
        wire::expandCompactSegment(data, len, fmt_, hooks);
    stats_.expandNs += sw.elapsedNs();
    return used;
}

Address
InputBuffer::resolveRel(std::uint64_t rel) const
{
    // Find the logical run covering rel: runs are in ascending
    // firstLogical order.
    auto it = std::upper_bound(runs_.begin(), runs_.end(), rel,
                               [](std::uint64_t r, const Run &run) {
                                   return r < run.firstLogical;
                               });
    panicIf(it == runs_.begin(), "InputBuffer: bad relative address");
    --it;
    std::uint64_t off = rel - it->firstLogical;
    panicIf(off >= it->bytes,
            "InputBuffer: relative address outside any run");
    return it->base + off;
}

void
InputBuffer::absolutizeChunk(Chunk &c)
{
    Address a = c.base;
    Address end = c.base + c.fill;
    bool have_updates = !ctx_.updates().empty();

    while (a < end) {
        // Consumed markers were overwritten with fillers at commit.
        if (ManagedHeap::isFiller(a)) {
            a += ManagedHeap::fillerSize(a);
            continue;
        }
        Word tid_word = heap_.loadWord(a, offsetKlass);
        Klass *k = klassForTid(static_cast<std::int32_t>(tid_word));
        // Absolutize the type: registry view id -> local klass
        // pointer.
        heap_.storeWord(a, offsetKlass, reinterpret_cast<Word>(k));
        std::size_t size = heap_.objectSize(a);

        // Absolutize every reference slot: relative address a' maps
        // to run_base + (a' - run_first_logical).
        forEachRefSlot(heap_, a, [&](std::size_t off) {
            Word slot = heap_.loadWord(a, off);
            if (slot == 0)
                return;
            heap_.storeWord(a, off,
                            static_cast<Word>(resolveRel(slot - 1)));
            ++stats_.refsAbsolutized;
        });

        if (have_updates) {
            ctx_.updates().apply(heap_, k, a);
            ++stats_.fieldUpdatesApplied;
        }
        a += size;
    }
}

void
InputBuffer::finalize()
{
    // The absolutization scan is the receiver's only O(bytes) CPU
    // cost (paper section 4.3); its time is the span to watch.
    SKYWAY_SPAN("receiver.absolutize");
    panicIf(finalized_, "InputBuffer: finalize called twice");
    panicIf(reserved_ != nullptr,
            "InputBuffer: finalize with an open chunk reservation");
    if (validator_) {
        // Reject a corrupt stream *before* absolutization writes
        // anything into the heap.
        validator_->finish();
        panicIf(!validator_->ok(),
                "SkywaySan: receiver wire validation failed: " +
                    validator_->firstFault());
    }
    for (Chunk &c : chunks_)
        absolutizeChunk(c);

    // Resolve the roots noted while streaming, in write order.
    roots_.reserve(pendingRoots_.size());
    for (const RootSpec &spec : pendingRoots_) {
        if (!spec.isBackRef)
            roots_.push_back(resolveRel(spec.value));
        else if (spec.value == 0)
            roots_.push_back(nullAddr);
        else
            roots_.push_back(resolveRel(spec.value - 1));
    }
    pendingRoots_.clear();

    for (Chunk &c : chunks_) {
        // Make the unreached tail walkable, tell the card table about
        // the new old-generation pointers, and let the GC see the
        // chunk as a sequence of live objects.
        heap_.writeFillerAny(c.base + c.fill, c.cap - c.fill);
        if (c.fill > 0)
            heap_.dirtyCardRange(c.base, c.fill);
        heap_.makePinWalkable(c.pin);
    }
    finalized_ = true;
    if (ctx_.debug().checkReceivedGraph)
        auditRebuilt();
    publishMetrics();
}

void
InputBuffer::auditRebuilt() const
{
    std::unordered_set<Address> starts;
    for (const Chunk &c : chunks_) {
        Address a = c.base;
        Address end = c.base + c.fill;
        while (a < end) {
            if (ManagedHeap::isFiller(a)) {
                a += ManagedHeap::fillerSize(a);
                continue;
            }
            starts.insert(a);
            std::size_t size = heap_.objectSize(a);
            panicIf(size == 0 || a + size > end,
                    "SkywaySan: rebuilt object at " +
                        std::to_string(a) + " overruns its chunk");
            a += size;
        }
    }
    for (const Chunk &c : chunks_) {
        Address a = c.base;
        Address end = c.base + c.fill;
        while (a < end) {
            if (ManagedHeap::isFiller(a)) {
                a += ManagedHeap::fillerSize(a);
                continue;
            }
            Word m = heap_.markOf(a);
            panicIf((m & ~(mark::hashMask | mark::hashComputedBit)) != 0,
                    "SkywaySan: rebuilt " + heap_.klassOf(a)->name() +
                        " carries non-transfer mark bits");
            forEachRefSlot(heap_, a, [&](std::size_t off) {
                Address t = heap_.loadRef(a, off);
                // A reference either stays inside this buffer's
                // rebuilt closure or was installed by a registered
                // field update, which may point anywhere in the local
                // heap.
                panicIf(t != nullAddr && !starts.count(t) &&
                            !heap_.contains(t),
                        "SkywaySan: rebuilt " +
                            heap_.klassOf(a)->name() +
                            " references outside the input buffer "
                            "and the heap");
            });
            a += heap_.objectSize(a);
        }
    }
    for (Address r : roots_)
        panicIf(r != nullAddr && !starts.count(r),
                "SkywaySan: a root does not name a rebuilt object");
}

const std::vector<Address> &
InputBuffer::roots() const
{
    panicIf(!finalized_, "InputBuffer: roots() before finalize()");
    return roots_;
}

void
InputBuffer::free()
{
    if (freed_)
        return;
    for (Chunk &c : chunks_)
        heap_.unpinOldRange(c.pin);
    freed_ = true;
}

} // namespace skyway
