file(REMOVE_RECURSE
  "CMakeFiles/skyway_workloads.dir/graphgen.cc.o"
  "CMakeFiles/skyway_workloads.dir/graphgen.cc.o.d"
  "CMakeFiles/skyway_workloads.dir/jsbs_family.cc.o"
  "CMakeFiles/skyway_workloads.dir/jsbs_family.cc.o.d"
  "CMakeFiles/skyway_workloads.dir/media.cc.o"
  "CMakeFiles/skyway_workloads.dir/media.cc.o.d"
  "CMakeFiles/skyway_workloads.dir/text.cc.o"
  "CMakeFiles/skyway_workloads.dir/text.cc.o.d"
  "CMakeFiles/skyway_workloads.dir/tpch.cc.o"
  "CMakeFiles/skyway_workloads.dir/tpch.cc.o.d"
  "libskyway_workloads.a"
  "libskyway_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyway_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
