#include "net/model_transport.hh"

#include <cstring>

#include "support/logging.hh"

namespace skyway
{

ModelTransport::ModelTransport(int node_count)
    : mailboxes_(node_count), handlers_(node_count)
{
}

void
ModelTransport::send(NodeId src, NodeId dst, int tag,
                     std::vector<std::uint8_t> payload)
{
    MutexLock lock(mutex_);
    mailboxes_[dst].push_back(NetMessage{src, dst, tag,
                                         std::move(payload)});
}

bool
ModelTransport::poll(NodeId dst, NetMessage &out)
{
    MutexLock lock(mutex_);
    auto &box = mailboxes_[dst];
    if (box.empty())
        return false;
    out = std::move(box.front());
    box.pop_front();
    return true;
}

bool
ModelTransport::pollTag(NodeId dst, int tag, NetMessage &out)
{
    MutexLock lock(mutex_);
    auto &box = mailboxes_[dst];
    for (auto it = box.begin(); it != box.end(); ++it) {
        if (it->tag == tag) {
            out = std::move(*it);
            box.erase(it);
            return true;
        }
    }
    return false;
}

std::ptrdiff_t
ModelTransport::pollTagInto(NodeId dst, int tag,
                            const ReserveFn &reserve)
{
    NetMessage msg;
    // Dequeue under the mailbox lock, then deliver outside it: the
    // reserve callback may allocate heap chunks and the copy-out may
    // be large; neither should stall concurrent senders.
    if (!pollTag(dst, tag, msg))
        return -1;
    if (msg.payload.empty())
        return 0;
    std::uint8_t *to = reserve(msg.payload.size());
    panicIf(to == nullptr, "pollTagInto: reserve returned null");
    std::memcpy(to, msg.payload.data(), msg.payload.size());
    return static_cast<std::ptrdiff_t>(msg.payload.size());
}

void
ModelTransport::registerHandler(NodeId node, RequestHandler handler)
{
    MutexLock lock(mutex_);
    handlers_[node] = std::move(handler);
}

std::vector<std::uint8_t>
ModelTransport::request(NodeId src, NodeId dst, int tag,
                        const std::vector<std::uint8_t> &payload,
                        const RequestOptions &)
{
    RequestHandler handler;
    {
        MutexLock lock(mutex_);
        handler = handlers_[dst];
    }
    panicIf(!handler, "request: node has no registered handler");
    // Synchronous: the handler runs on the requester's thread; the
    // round trip cannot time out, so RequestOptions is ignored.
    return handler(src, tag, payload);
}

} // namespace skyway
