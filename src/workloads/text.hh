/**
 * @file
 * Deterministic text-corpus generator for the WordCount workload:
 * lines of words drawn from a Zipf-like vocabulary, the standard
 * shape of natural-language word frequencies.
 */

#ifndef SKYWAY_WORKLOADS_TEXT_HH
#define SKYWAY_WORKLOADS_TEXT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hh"

namespace skyway
{

struct TextSpec
{
    std::size_t lines = 10000;
    int wordsPerLine = 12;
    std::size_t vocabulary = 5000;
    double alpha = 1.3; // Zipf exponent
    std::uint64_t seed = 99;
};

/** The vocabulary word with rank @p r (deterministic spelling). */
std::string vocabularyWord(std::size_t r);

/** Generate @p spec.lines lines of space-separated words. */
std::vector<std::string> generateText(const TextSpec &spec);

/** Split a line into words (single-space separated). */
std::vector<std::string> tokenize(const std::string &line);

} // namespace skyway

#endif // SKYWAY_WORKLOADS_TEXT_HH
