/**
 * @file
 * The real-socket transport, multiplexed for hundred-node fabrics:
 * every node owns a loopback TCP listener and one epoll(7) event
 * loop; bytes genuinely cross the kernel's TCP stack, so the modeled
 * `net.wire_ns` clocks have a `net.real_wire_ns` to be validated
 * against. The wire format lives in net/frame.hh; the full protocol
 * story (diagrams, credit rules, failure semantics) in
 * docs/TRANSPORT.md.
 *
 * Topology:
 *
 *  - Data plane: exactly ONE connection per unordered node pair,
 *    established lazily by whichever side sends first (a transport-
 *    wide pool arbitrates so a cross in the race still yields one
 *    connection — `net.pooled_connections` gauges the pool). Every
 *    (src, dst, tag) stream between the two nodes is multiplexed
 *    onto that connection as tagged, length-prefixed mux frames, so
 *    an N-node all-to-all costs N·(N−1)/2 sockets instead of the old
 *    per-stream N²·tags.
 *
 *  - Demultiplexing: the owning node's event loop reads only frame
 *    *headers*. A data frame is "parked" — the fd leaves the epoll
 *    set with the payload still unread in the kernel — until a
 *    consumer claims it: pollTagInto() then recv()s the payload
 *    *directly into ReserveFn-posted storage* (old-gen chunk space on
 *    the Skyway receive path), which is how the zero-copy handoff
 *    survives multiplexing (`net.recv_into_bytes` counts exactly
 *    these bytes). A consumer that insists on a tag the parked
 *    frames don't carry forces the misfits into a staging buffer
 *    (one copy) so the connection behind them keeps moving — see
 *    docs/TRANSPORT.md §5 for the head-of-line rules.
 *
 *  - Backpressure: per-stream byte credit. A sender's event loop
 *    writes a stream's frames only while the stream has window left;
 *    receivers grant credit back as payloads are delivered to
 *    consumers. A slow receiver therefore stalls the one stream
 *    (`net.credit_stalls_ns`) instead of ballooning sender memory.
 *    Because pair connections are full-duplex, the grant that would
 *    unstall a stream can arrive *behind* a parked inbound data
 *    frame on the same socket; a stream stalled past a rescue
 *    threshold forces that connection's parked frames into the
 *    staging buffer so the grant becomes readable (TRANSPORT.md §5).
 *
 *  - Loop liveness: the event loop NEVER blocks on a pair socket.
 *    Writes go through a per-connection outbound byte queue drained
 *    with MSG_DONTWAIT (EPOLLOUT is armed while bytes remain), and
 *    inbound mux headers are reassembled non-blockingly across
 *    partial arrivals — so two nodes flooding each other (or a
 *    write cycle A->B->C->A) can never wedge the loops against full
 *    socket buffers (TRANSPORT.md §4). A consumer claiming a parked
 *    payload whose bytes still sit in the peer's outbound queue
 *    pumps that queue itself (the whole fabric is one process), so
 *    claims cannot deadlock against a loop that is waiting on the
 *    claimer's own recvMutex.
 *
 *  - Control plane: unchanged request/reply connections per (src,
 *    dst) direction for the blocking request() round trip (the
 *    type-registry LOOKUP daemon), served by the destination's event
 *    loop, with timeout/resend and stale-reply filtering by request
 *    id — handlers on this path must be idempotent.
 *
 * poll/pollTag/pollTagInto are non-blocking probes exactly like the
 * model transport's: "false / -1" means nothing has *arrived yet*,
 * and every consumer in the repository already retries in a loop, so
 * in-flight bytes are indistinguishable from a late sender.
 */

#ifndef SKYWAY_NET_TCP_TRANSPORT_HH
#define SKYWAY_NET_TCP_TRANSPORT_HH

#include <deque>
#include <map>
#include <set>
#include <thread>
#include <utility>

#include "net/frame.hh"
#include "net/transport.hh"
#include "support/thread_annotations.hh"

namespace skyway
{

class TcpTransport final : public Transport
{
  public:
    TcpTransport(int node_count, WireCounters &wire,
                 const TransportOptions &options = {});
    ~TcpTransport() override;

    TcpTransport(const TcpTransport &) = delete;
    TcpTransport &operator=(const TcpTransport &) = delete;

    const char *name() const override { return "tcp"; }

    void send(NodeId src, NodeId dst, int tag,
              std::vector<std::uint8_t> payload) override;
    bool poll(NodeId dst, NetMessage &out) override;
    bool pollTag(NodeId dst, int tag, NetMessage &out) override;
    std::ptrdiff_t pollTagInto(NodeId dst, int tag,
                               const ReserveFn &reserve) override;
    void registerHandler(NodeId node, RequestHandler handler) override;
    std::vector<std::uint8_t>
    request(NodeId src, NodeId dst, int tag,
            const std::vector<std::uint8_t> &payload,
            const RequestOptions &opts) override;

    /** The loopback port node @p node listens on (tests). */
    std::uint16_t listenPort(NodeId node) const;

  private:
    /**
     * A data frame whose header the event loop has read: the fd has
     * left the epoll set and the payload's @p len bytes are still
     * unread in the kernel, waiting for a consumer to claim them
     * (zero-copy) or stage them (head-of-line relief).
     */
    struct Parked
    {
        int fd;
        NodeId src;
        int tag;
        std::uint32_t len;
    };

    /**
     * Send-side state of one (this node -> dst, tag) stream: queued
     * payloads (an empty vector is the end-of-stream marker) and the
     * credit window. Only the head of the queue is ever eligible to
     * write — a stalled head holds later frames (including EOS) back,
     * preserving stream FIFO.
     */
    struct TxStream
    {
        std::deque<std::vector<std::uint8_t>> queue;
        std::size_t queuedBytes = 0;
        /** May go negative transiently: a frame is written whole once
         *  any window remains. */
        std::int64_t credit = 0;
        bool stalled = false;
        std::uint64_t stallStartNs = 0;
        /** True between first frame queued and EOS written. */
        bool active = false;
    };

    /** A pending credit grant this node's loop owes a peer. */
    struct Grant
    {
        NodeId peer;
        int tag;
        std::uint32_t bytes;
    };

    /**
     * Unwritten outbound bytes of one pair connection. The socket is
     * written only with MSG_DONTWAIT; whatever it refuses queues here
     * (off = consumed prefix), so the event loop never blocks in
     * send(2). Bounded by the credit windows of the streams sharing
     * the connection plus the (tiny) grant frames.
     */
    struct OutBuf
    {
        NodeId peer = 0;
        std::vector<std::uint8_t> bytes;
        std::size_t off = 0;
        /** EPOLLOUT currently registered for this fd (loop-owned —
         *  cleared when parking removes the registration). */
        bool armed = false;
    };

    /** Partial inbound mux header of one pair connection: a level-
     *  triggered EPOLLIN may expose fewer than the full 13 bytes. */
    struct HdrBuf
    {
        std::uint8_t bytes[frame::muxHeaderBytes];
        std::size_t got = 0;
    };

    /** Everything one node owns. */
    struct Node
    {
        int listenFd = -1;
        std::uint16_t port = 0;
        int epollFd = -1;

        /** Wakes the loop out of epoll_wait (self-pipe). */
        int wakeRead = -1;
        int wakeWrite = -1;

        /**
         * Receive side, shared between the loop (parks frames) and
         * consumer threads (claim parked frames, stage misfits):
         * local deliveries, staged copies, parked frames, and the
         * per-tag miss tracking that decides when staging is forced.
         * Lock order: recvMutex may be held while taking sendMutex
         * (grant queuing), poolMutex_ and a peer's outMutex (the
         * help-flush chain) — never the reverse.
         */
        Mutex recvMutex;
        std::deque<NetMessage> selfBox GUARDED_BY(recvMutex);
        std::deque<NetMessage> staged GUARDED_BY(recvMutex);
        std::vector<Parked> parked GUARDED_BY(recvMutex);
        /** Bumped whenever parked/staged state changes; a tag that
         *  misses twice at the same version forces staging. */
        std::uint64_t recvVersion GUARDED_BY(recvMutex) = 0;
        std::map<int, std::uint64_t> lastMiss GUARDED_BY(recvMutex);

        /** Send side: per-stream queues drained by this node's loop,
         *  plus credit grants owed to peers. */
        Mutex sendMutex;
        CondVar sendCv;
        std::map<std::pair<NodeId, int>, TxStream> streams GUARDED_BY(
            sendMutex);
        std::deque<Grant> grants GUARDED_BY(sendMutex);

        /** This node's end of each established pair connection,
         *  keyed by peer; guarded by the transport-wide poolMutex_
         *  (not annotatable from a nested struct — the invariant is
         *  enforced by review; see docs/STATIC_ANALYSIS.md). */
        std::map<NodeId, int> pairFd;

        /** Write side of the pair connections, keyed by fd; guarded
         *  by outMutex because consumers blocked on a parked payload
         *  help-flush the *peer's* buffer (see helpFlushPair). */
        Mutex outMutex;
        std::map<int, OutBuf> outbound GUARDED_BY(outMutex);

        /** Loop-owned header reassembly per pair fd; no lock — only
         *  this node's event loop thread ever touches it. */
        std::map<int, HdrBuf> hdrPartial;

        /** Outbound control connections, one per destination; the
         *  per-destination mutex serializes request/reply exchanges
         *  on the shared connection. */
        Mutex ctrlMutex;
        std::map<NodeId, int> ctrlOut GUARDED_BY(ctrlMutex);
        std::map<NodeId, std::unique_ptr<Mutex>> ctrlPair GUARDED_BY(
            ctrlMutex);
        std::uint32_t nextReqId GUARDED_BY(ctrlMutex) = 1;

        /** Inbound control connections; loop-owned, no lock. */
        std::vector<int> ctrlIn;

        std::thread loop;
    };

    /** One write-ready frame drained out of the stream queues. */
    struct TxFrame
    {
        int fd;
        NodeId peer;
        std::uint8_t header[frame::muxHeaderBytes];
        std::vector<std::uint8_t> payload;
    };

    void eventLoop(NodeId node);
    void wakeLoop(NodeId node);
    void acceptPending(NodeId node);
    void handlePairReadable(NodeId node, NodeId peer, int fd);
    /** Drop @p peer's pair connection after an orderly EOF. */
    void dropPair(NodeId node, NodeId peer, int fd);
    void drainGrants(NodeId node);
    void drainSends(NodeId node);
    /** Serve one request frame from @p fd; false when the peer hung
     *  up (the fd is closed and must be dropped). */
    bool serveControl(NodeId node, int fd);

    /** Add @p fd to @p node's epoll set, tagged for classification. */
    void epollAdd(NodeId node, std::uint64_t token, int fd);
    void epollDel(NodeId node, int fd);

    /**
     * This node's end of the pair connection toward @p dst,
     * establishing it if nobody has; -1 when the peer is mid-connect
     * and our accept will complete the pair shortly (callers skip and
     * retry on the next loop iteration — never wait).
     */
    int pairFdOrClaim(NodeId node, NodeId dst);

    /** Connect to @p dst's listener and send @p shake; retries (and
     *  counts) transient failures. */
    int connectTo(NodeId dst, const std::uint8_t *shake,
                  std::size_t shake_len);
    int ctrlConnFor(Node &n, NodeId src, NodeId dst)
        REQUIRES(n.ctrlMutex);

    /** Deliver payload bytes back to @p src's credit window (and
     *  wake our loop to write the grant frame). */
    void queueGrant(NodeId node, NodeId src, int tag,
                    std::uint32_t bytes);

    /** Read parked frames' payloads into staged-side storage, re-arm
     *  their fds, and record the copies. With @p onlyFds, stages just
     *  the frames parked on those fds (others stay parked, order
     *  preserved). */
    void stageParked(NodeId node, Node &n,
                     const std::set<int> *onlyFds = nullptr)
        REQUIRES(n.recvMutex);

    /** Deadlock guard run every loop iteration: a stream stalled on
     *  credit past the rescue threshold may be waiting on a grant
     *  trapped behind a parked inbound frame on the same (full-
     *  duplex) pair connection — stage exactly those connections'
     *  parked frames so the grant becomes readable. */
    void rescueStalledStreams(NodeId node);

    /** Write all of @p buf to @p fd, timing it into realWireNs.
     *  BLOCKING — control-plane connections only; the data plane
     *  goes through sendOrQueue/flushPairWrites so the event loop
     *  never blocks on a pair socket. */
    void writeTimed(int fd, const std::uint8_t *buf, std::size_t len);

    /** Non-blocking write burst (MSG_DONTWAIT), timed into
     *  realWireNs; returns how many of @p len bytes the socket
     *  accepted. */
    std::size_t nonblockSend(int fd, const std::uint8_t *p,
                             std::size_t len);

    /** Data-plane write: push @p len bytes to @p fd if its outbound
     *  buffer is empty, queueing whatever the socket refuses (FIFO
     *  per connection is preserved — a non-empty buffer means the
     *  bytes only queue). */
    void sendOrQueue(Node &n, NodeId peer, int fd,
                     const std::uint8_t *p, std::size_t len);

    /** Drain one outbound buffer of @p n as far as the socket
     *  allows; true when it emptied. */
    bool flushOutBuf(Node &n, int fd, OutBuf &ob)
        REQUIRES(n.outMutex);

    /** Loop step: drain every outbound buffer, arming EPOLLOUT on
     *  the connections that still hold bytes and disarming (and
     *  dropping) the ones that emptied. */
    void flushPairWrites(NodeId node);

    /** Pump @p peer's outbound buffer toward @p toward once. Called
     *  by consumers blocked on a parked payload whose bytes may
     *  still sit in the peer's user-space queue: the whole fabric is
     *  one process, so the claimer can move them itself instead of
     *  depending on the peer's loop (which may in turn be blocked on
     *  the claimer's recvMutex). */
    void helpFlushPair(NodeId peer, NodeId toward);

    /** Read exactly @p len parked-payload bytes from @p fd,
     *  help-flushing the peer's outbound queue while the socket runs
     *  dry; panics on a mid-frame close. */
    void recvParkedPayload(NodeId node, NodeId peer, int fd,
                           std::uint8_t *buf, std::size_t len);

    /** Re-register @p fd's epoll interest with/without EPOLLOUT.
     *  False (no-op) while the fd is parked — the registration is
     *  gone and the claim re-adds it EPOLLIN-only. */
    bool modPairInterest(NodeId node, NodeId peer, int fd,
                         bool wantOut);

    int nodeCount_;
    WireCounters &wire_;
    TransportOptions options_;
    std::vector<std::unique_ptr<Node>> nodes_;

    /** Pair-pool arbitration: which unordered pairs have (or are
     *  getting) their one data connection. */
    struct PairEntry
    {
        bool claimed = false;
    };
    Mutex poolMutex_;
    std::map<std::pair<NodeId, NodeId>, PairEntry> pool_ GUARDED_BY(
        poolMutex_);

    Mutex handlerMutex_;
    std::vector<RequestHandler> handlers_ GUARDED_BY(handlerMutex_);
    std::atomic<bool> running_{true};

    /** In-flight send() census: the destructor must not close fds or
     *  free Node state while a sender released from the bounded-
     *  queue wait is still on its way out. */
    Mutex sendersMutex_;
    CondVar sendersCv_;
    int inFlightSenders_ GUARDED_BY(sendersMutex_) = 0;
};

} // namespace skyway

#endif // SKYWAY_NET_TCP_TRANSPORT_HH
