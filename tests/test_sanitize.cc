/**
 * @file
 * SkywaySan tests: the corruption-injection harness (every corruption
 * class must be rejected with the expected diagnostic, across random
 * seeds), clean-stream validation for every workload family in
 * src/workloads/, the heap-graph isomorphism checker as the round-trip
 * oracle, and the Context debug flags that wire the validator into the
 * sender/receiver paths.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "sanitize/corrupt.hh"
#include "sanitize/graphcheck.hh"
#include "sanitize/wirecheck.hh"
#include "skyway/streams.hh"
#include "workloads/graphgen.hh"
#include "workloads/jsbs_family.hh"
#include "workloads/media.hh"
#include "workloads/text.hh"
#include "workloads/tpch.hh"

namespace skyway
{
namespace
{

using sanitize::allCorruptionKinds;
using sanitize::checkHeapGraphs;
using sanitize::CorruptionKind;
using sanitize::corruptionKindName;
using sanitize::expectedFaults;
using sanitize::GraphCheckResult;
using sanitize::indexStream;
using sanitize::injectCorruption;
using sanitize::WireCheckConfig;
using sanitize::WireDiagnostic;
using sanitize::WireFault;
using sanitize::WireIndex;
using sanitize::wireFaultName;
using sanitize::WireValidator;

ClassCatalog
makeWorkloadCatalog()
{
    ClassCatalog cat = makeStandardCatalog();
    defineMediaClasses(cat);
    defineTpchClasses(cat);
    return cat;
}

class SanitizeTest : public ::testing::Test
{
  protected:
    SanitizeTest()
        : catalog_(makeWorkloadCatalog()),
          net_(3),
          driver_(catalog_, net_, 0, 0),
          nodeA_(catalog_, net_, 1, 0),
          nodeB_(catalog_, net_, 2, 0)
    {
        // This fixture's captures and the corruption harness index
        // *raw* streams byte-for-byte; compact-encoding coverage
        // lives in test_wirecompact.cc. Pin the mode so the suite
        // passes under SKYWAY_WIRE_COMPACT=force too.
        nodeA_.skyway().setWireCompactMode(WireCompactMode::Off);
        nodeB_.skyway().setWireCompactMode(WireCompactMode::Off);
    }

    WireCheckConfig
    cfg()
    {
        WireCheckConfig c;
        c.wireFormat = nodeB_.heap().format();
        return c;
    }

    /** Serialize the graphs rooted at @p roots into raw wire bytes. */
    std::vector<std::uint8_t>
    capture(const std::vector<Address> &roots,
            std::size_t buffer_bytes = 64 << 10)
    {
        nodeA_.skyway().shuffleStart();
        std::vector<std::uint8_t> bytes;
        SkywayObjectOutputStream out(
            nodeA_.skyway(),
            [&bytes](const std::uint8_t *d, std::size_t n) {
                bytes.insert(bytes.end(), d, d + n);
            },
            buffer_bytes);
        for (Address r : roots)
            out.writeObject(r);
        out.flush();
        return bytes;
    }

    /** Feed raw wire bytes into node B and return the first root. */
    Address
    receive(const std::vector<std::uint8_t> &bytes)
    {
        SkywayObjectInputStream in(nodeB_.skyway());
        in.feed(bytes.data(), bytes.size());
        in.finish();
        keep_.push_back(in.releaseBuffer());
        return keep_.back()->roots().at(0);
    }

    /** Transfer A -> B and assert graph isomorphism via the checker. */
    void
    roundTrip(Address root, std::size_t min_objects = 1)
    {
        Address q = receive(capture({root}));
        GraphCheckResult r =
            checkHeapGraphs(nodeA_.heap(), root, nodeB_.heap(), q);
        EXPECT_TRUE(r.equal) << r.divergence;
        EXPECT_GE(r.objectsCompared, min_objects);
    }

    ClassCatalog catalog_;
    ClusterNetwork net_;
    Jvm driver_;
    Jvm nodeA_;
    Jvm nodeB_;
    std::vector<std::unique_ptr<InputBuffer>> keep_;
};

// ---------------------------------------------------------------------
// Clean-stream validation
// ---------------------------------------------------------------------

TEST_F(SanitizeTest, CleanStreamValidates)
{
    LocalRoots roots(nodeA_.heap());
    Rng rng(42);
    std::size_t slot = makeMediaContent(nodeA_, roots, rng);
    std::vector<std::uint8_t> bytes = capture({roots.get(slot)});

    WireValidator v(nodeB_.resolver(), cfg());
    v.feed(bytes.data(), bytes.size());
    v.finish();
    EXPECT_TRUE(v.ok()) << v.firstFault();
    EXPECT_EQ(v.summary().topMarks, 1u);
    EXPECT_GT(v.summary().records, 4u) << "content + media + images";
    EXPECT_GT(v.summary().refSlots, 0u);
    EXPECT_EQ(v.summary().physicalBytes, bytes.size());
    EXPECT_LT(v.summary().logicalBytes, v.summary().physicalBytes);
}

TEST_F(SanitizeTest, SummaryAgreesWithSenderStats)
{
    // Write the same root twice: the second write is one backward
    // reference, and the validator must count exactly what the sender
    // reports having emitted.
    LocalRoots roots(nodeA_.heap());
    Rng rng(7);
    std::size_t slot = makeMediaContent(nodeA_, roots, rng);

    nodeA_.skyway().shuffleStart();
    std::vector<std::uint8_t> bytes;
    SkywayObjectOutputStream out(
        nodeA_.skyway(),
        [&bytes](const std::uint8_t *d, std::size_t n) {
            bytes.insert(bytes.end(), d, d + n);
        });
    out.writeObject(roots.get(slot));
    out.writeObject(roots.get(slot));
    out.flush();

    WireValidator v(nodeB_.resolver(), cfg());
    v.feed(bytes.data(), bytes.size());
    v.finish();
    ASSERT_TRUE(v.ok()) << v.firstFault();
    EXPECT_EQ(v.summary().topMarks, out.stats().topMarks);
    EXPECT_EQ(v.summary().backRefs, out.stats().backRefs);
    EXPECT_EQ(v.summary().records, out.stats().objectsCopied);
}

TEST_F(SanitizeTest, ValidatorIsIncrementalAcrossSegments)
{
    // A tiny output buffer forces many flushed segments; the validator
    // consumes them in flush order exactly as InputBuffer::feed does.
    LocalRoots roots(nodeA_.heap());
    Rng rng(11);
    std::size_t slot = makeMediaContent(nodeA_, roots, rng);

    nodeA_.skyway().shuffleStart();
    WireValidator v(nodeB_.resolver(), cfg());
    std::size_t segments = 0;
    SkywayObjectOutputStream out(
        nodeA_.skyway(),
        [&v, &segments](const std::uint8_t *d, std::size_t n) {
            v.feed(d, n);
            ++segments;
        },
        1 << 10);
    out.writeObject(roots.get(slot));
    out.flush();
    v.finish();
    EXPECT_TRUE(v.ok()) << v.firstFault();
    EXPECT_GT(segments, 1u);
}

// ---------------------------------------------------------------------
// Corruption injection: every class rejected, right diagnostic
// ---------------------------------------------------------------------

TEST_F(SanitizeTest, EveryCorruptionKindRejectedWithExpectedFault)
{
    LocalRoots roots(nodeA_.heap());
    Rng graph_rng(1234);
    std::size_t slot = makeMediaContent(nodeA_, roots, graph_rng);
    std::vector<std::uint8_t> clean = capture({roots.get(slot)});
    WireIndex index = indexStream(nodeB_.resolver(), cfg(), clean);

    for (CorruptionKind kind : allCorruptionKinds()) {
        for (std::uint64_t seed = 0; seed < 6; ++seed) {
            Rng rng(0xC0DE + seed * 977);
            std::vector<std::uint8_t> bad =
                injectCorruption(index, cfg(), clean, kind, rng);
            ASSERT_NE(bad, clean)
                << corruptionKindName(kind) << " seed " << seed
                << ": injection was a no-op";

            WireValidator v(nodeB_.resolver(), cfg());
            v.feed(bad.data(), bad.size());
            v.finish();
            ASSERT_FALSE(v.ok())
                << corruptionKindName(kind) << " seed " << seed
                << ": corrupted stream validated clean";

            const std::vector<WireFault> &expect = expectedFaults(kind);
            WireFault got = v.diagnostics().front().fault;
            bool matched = false;
            for (WireFault f : expect)
                matched = matched || f == got;
            EXPECT_TRUE(matched)
                << corruptionKindName(kind) << " seed " << seed
                << ": first diagnostic "
                << v.diagnostics().front().str()
                << " not in the expected fault set";
        }
    }
}

TEST_F(SanitizeTest, CorruptionKindsProduceDistinctDiagnostics)
{
    // The acceptance bar: at least five injected corruption classes
    // map to *distinct* first-fault categories — the validator tells
    // the developer what went wrong, not just that something did.
    LocalRoots roots(nodeA_.heap());
    Rng graph_rng(555);
    std::size_t slot = makeMediaContent(nodeA_, roots, graph_rng);
    std::vector<std::uint8_t> clean = capture({roots.get(slot)});
    WireIndex index = indexStream(nodeB_.resolver(), cfg(), clean);

    std::set<WireFault> firsts;
    for (CorruptionKind kind : allCorruptionKinds()) {
        Rng rng(31337);
        std::vector<std::uint8_t> bad =
            injectCorruption(index, cfg(), clean, kind, rng);
        WireValidator v(nodeB_.resolver(), cfg());
        v.feed(bad.data(), bad.size());
        v.finish();
        ASSERT_FALSE(v.ok()) << corruptionKindName(kind);
        firsts.insert(v.diagnostics().front().fault);
    }
    EXPECT_GE(firsts.size(), 5u);
}

TEST_F(SanitizeTest, DiagnosticsCarryOffsetsAndDetail)
{
    LocalRoots roots(nodeA_.heap());
    Rng graph_rng(99);
    std::size_t slot = makeMediaContent(nodeA_, roots, graph_rng);
    std::vector<std::uint8_t> clean = capture({roots.get(slot)});
    WireIndex index = indexStream(nodeB_.resolver(), cfg(), clean);

    Rng rng(2);
    std::vector<std::uint8_t> bad = injectCorruption(
        index, cfg(), clean, CorruptionKind::ForgedTypeId, rng);
    WireValidator v(nodeB_.resolver(), cfg());
    v.feed(bad.data(), bad.size());
    v.finish();
    ASSERT_FALSE(v.ok());
    const WireDiagnostic &d = v.diagnostics().front();
    EXPECT_EQ(d.fault, WireFault::UnresolvableTypeId);
    EXPECT_LT(d.offset, bad.size());
    EXPECT_FALSE(d.detail.empty());
    EXPECT_NE(d.str().find(wireFaultName(d.fault)), std::string::npos);
}

// ---------------------------------------------------------------------
// Workload round-trips, proven by the graph checker
// ---------------------------------------------------------------------

TEST_F(SanitizeTest, MediaWorkloadRoundTrips)
{
    LocalRoots roots(nodeA_.heap());
    Rng rng(17);
    std::size_t slot = makeMediaContent(nodeA_, roots, rng);
    ASSERT_TRUE(mediaContentWellFormed(nodeA_, roots.get(slot)));
    roundTrip(roots.get(slot), 5);
}

TEST_F(SanitizeTest, TextWorkloadRoundTrips)
{
    TextSpec spec;
    spec.lines = 64;
    std::vector<std::string> lines = generateText(spec);
    LocalRoots roots(nodeA_.heap());
    std::size_t slot = roots.push(nodeA_.builder().makeRefArray(
        "java.lang.String", lines.size()));
    for (std::size_t i = 0; i < lines.size(); ++i) {
        Address s = nodeA_.builder().makeString(lines[i]);
        array::setRef(nodeA_.heap(), roots.get(slot), i, s);
    }
    roundTrip(roots.get(slot), lines.size());
}

TEST_F(SanitizeTest, GraphWorkloadRoundTrips)
{
    GraphSpec spec = liveJournalShaped(0.002);
    EdgeList g = generateGraph(spec);
    auto adjacency = buildAdjacency(g);

    LocalRoots roots(nodeA_.heap());
    Klass *adjK = nodeA_.klasses().load("[[I");
    std::size_t slot = roots.push(
        nodeA_.heap().allocateArray(adjK, adjacency.size()));
    for (std::size_t v = 0; v < adjacency.size(); ++v) {
        std::vector<std::int32_t> neigh(adjacency[v].begin(),
                                        adjacency[v].end());
        Address a = nodeA_.builder().makeIntArray(neigh);
        array::setRef(nodeA_.heap(), roots.get(slot), v, a);
    }
    roundTrip(roots.get(slot), adjacency.size());
}

TEST_F(SanitizeTest, TpchWorkloadRoundTrips)
{
    TpchSpec spec;
    spec.scale = 0.001;
    TpchData data = generateTpch(spec);
    ASSERT_FALSE(data.lineitem.empty());

    Klass *liK = nodeA_.klasses().load("tpch.Lineitem");
    std::size_t n = std::min<std::size_t>(data.lineitem.size(), 64);
    LocalRoots roots(nodeA_.heap());
    std::size_t slot =
        roots.push(nodeA_.builder().makeRefArray("tpch.Lineitem", n));
    for (std::size_t i = 0; i < n; ++i) {
        const TpchData::Lineitem &li = data.lineitem[i];
        Address row = nodeA_.heap().allocateInstance(liK);
        array::setRef(nodeA_.heap(), roots.get(slot), i, row);
        row = array::getRef(nodeA_.heap(), roots.get(slot), i);
        field::set<std::int64_t>(nodeA_.heap(), row,
                                 liK->requireField("orderKey"),
                                 li.orderKey);
        field::set<std::int32_t>(nodeA_.heap(), row,
                                 liK->requireField("partKey"),
                                 li.partKey);
        field::set<double>(nodeA_.heap(), row,
                           liK->requireField("quantity"), li.quantity);
        field::set<double>(nodeA_.heap(), row,
                           liK->requireField("extendedPrice"),
                           li.extendedPrice);
        Address mode = nodeA_.builder().makeString(li.shipMode);
        row = array::getRef(nodeA_.heap(), roots.get(slot), i);
        field::setRef(nodeA_.heap(), row,
                      liK->requireField("shipMode"), mode);
    }
    roundTrip(roots.get(slot), n);
}

TEST_F(SanitizeTest, JsbsWorkloadRoundTrips)
{
    // The jsbs_family path: extract one MediaContent to plain values,
    // materialize it back into the heap, then ship the materialized
    // graph — the shape every Figure 7 codec round-trips.
    LocalRoots roots(nodeA_.heap());
    Rng rng(23);
    std::size_t slot = makeMediaContent(nodeA_, roots, rng);
    SdEnv env{nodeA_.heap(), nodeA_.klasses()};
    MediaSchema schema(nodeA_.klasses());
    MediaValues values = extractMedia(env, schema, roots.get(slot));
    std::size_t mslot =
        roots.push(materializeMedia(env, schema, values));
    EXPECT_EQ(extractMedia(env, schema, roots.get(mslot)), values);
    roundTrip(roots.get(mslot), 5);
}

// ---------------------------------------------------------------------
// The graph checker itself
// ---------------------------------------------------------------------

TEST_F(SanitizeTest, GraphCheckerAcceptsPreservedHashes)
{
    LocalRoots roots(nodeA_.heap());
    Rng rng(3);
    std::size_t slot = makeMediaContent(nodeA_, roots, rng);
    std::int32_t h = nodeA_.heap().identityHash(roots.get(slot));
    Address q = receive(capture({roots.get(slot)}));
    EXPECT_EQ(nodeB_.heap().identityHash(q), h);
    GraphCheckResult r = checkHeapGraphs(nodeA_.heap(),
                                         roots.get(slot),
                                         nodeB_.heap(), q, true);
    EXPECT_TRUE(r.equal) << r.divergence;
}

TEST_F(SanitizeTest, GraphCheckerReportsPrimitiveDivergence)
{
    LocalRoots roots(nodeA_.heap());
    Rng rng(4);
    std::size_t slot = makeMediaContent(nodeA_, roots, rng);
    Address q = receive(capture({roots.get(slot)}));

    // Corrupt one primitive field on the receiver copy.
    Klass *k = nodeB_.klasses().load("jsbs.Media");
    MediaSchema schema(nodeB_.klasses());
    Address media = field::getRef(nodeB_.heap(), q, *schema.cMedia);
    field::set<std::int32_t>(nodeB_.heap(), media,
                             k->requireField("width"), -1);

    GraphCheckResult r = checkHeapGraphs(nodeA_.heap(),
                                         roots.get(slot),
                                         nodeB_.heap(), q);
    EXPECT_FALSE(r.equal);
    EXPECT_FALSE(r.divergence.empty());
}

TEST_F(SanitizeTest, GraphCheckerReportsShapeDivergence)
{
    LocalRoots roots(nodeA_.heap());
    Rng rng(5);
    std::size_t slot = makeMediaContent(nodeA_, roots, rng);
    Address q = receive(capture({roots.get(slot)}));

    // Null out a reference on the receiver copy: same classes, same
    // primitives, different shape.
    MediaSchema schema(nodeB_.klasses());
    field::setRef(nodeB_.heap(), q, *schema.cImages, nullAddr);

    GraphCheckResult r = checkHeapGraphs(nodeA_.heap(),
                                         roots.get(slot),
                                         nodeB_.heap(), q);
    EXPECT_FALSE(r.equal);
    EXPECT_NE(r.divergence.find("null"), std::string::npos)
        << r.divergence;
}

TEST_F(SanitizeTest, GraphCheckerEnforcesSharingBijection)
{
    // Sender: pair whose two slots alias ONE point. Receiver: a pair
    // whose slots hold two structurally equal but distinct points.
    // Value-equal, shape-different — only a bijection check sees it.
    Klass *psA = nodeA_.klasses().load("tpch.PartSupp");
    Klass *arrK = nodeA_.klasses().arrayOfRefs("tpch.PartSupp");

    LocalRoots rootsA(nodeA_.heap());
    std::size_t sa =
        rootsA.push(nodeA_.heap().allocateArray(arrK, 2));
    Address shared = nodeA_.heap().allocateInstance(psA);
    array::setRef(nodeA_.heap(), rootsA.get(sa), 0, shared);
    array::setRef(nodeA_.heap(), rootsA.get(sa), 1, shared);

    Klass *psB = nodeB_.klasses().load("tpch.PartSupp");
    Klass *arrKB = nodeB_.klasses().arrayOfRefs("tpch.PartSupp");
    LocalRoots rootsB(nodeB_.heap());
    std::size_t sb =
        rootsB.push(nodeB_.heap().allocateArray(arrKB, 2));
    for (std::size_t i = 0; i < 2; ++i) {
        Address p = nodeB_.heap().allocateInstance(psB);
        array::setRef(nodeB_.heap(), rootsB.get(sb), i, p);
    }

    GraphCheckResult r =
        checkHeapGraphs(nodeA_.heap(), rootsA.get(sa), nodeB_.heap(),
                        rootsB.get(sb), false);
    EXPECT_FALSE(r.equal);
    EXPECT_FALSE(r.divergence.empty());
}

// ---------------------------------------------------------------------
// Debug flags: the validator wired into real transfer paths
// ---------------------------------------------------------------------

TEST_F(SanitizeTest, DebugFlagsDefaultOff)
{
    // Construct with a clean environment: the suite itself may run
    // under SKYWAY_WIRE_CHECK / SKYWAY_GRAPH_CHECK (the validated
    // full-matrix leg), which would legitimately flip the fixture's
    // flags on.
    ::unsetenv("SKYWAY_WIRE_CHECK");
    ::unsetenv("SKYWAY_GRAPH_CHECK");
    ClusterNetwork net2(2);
    Jvm drv(catalog_, net2, 0, 0);
    EXPECT_FALSE(drv.skyway().debug().validateWire);
    EXPECT_FALSE(drv.skyway().debug().checkReceivedGraph);
}

TEST_F(SanitizeTest, EnvironmentEnablesDebugFlags)
{
    ::setenv("SKYWAY_WIRE_CHECK", "1", 1);
    ::setenv("SKYWAY_GRAPH_CHECK", "1", 1);
    ClusterNetwork net2(2);
    Jvm drv(catalog_, net2, 0, 0);
    ::unsetenv("SKYWAY_WIRE_CHECK");
    ::unsetenv("SKYWAY_GRAPH_CHECK");
    EXPECT_TRUE(drv.skyway().debug().validateWire);
    EXPECT_TRUE(drv.skyway().debug().checkReceivedGraph);
}

TEST_F(SanitizeTest, InstrumentedTransferStillRoundTrips)
{
    nodeA_.skyway().debug().validateWire = true;
    nodeB_.skyway().debug().validateWire = true;
    nodeB_.skyway().debug().checkReceivedGraph = true;

    LocalRoots roots(nodeA_.heap());
    Rng rng(8);
    std::size_t slot = makeMediaContent(nodeA_, roots, rng);
    // Tiny buffers: the sender validates at every flush, the receiver
    // at every feed, and the post-finalize graph audit runs too.
    nodeA_.skyway().shuffleStart();
    SkywayObjectInputStream in(nodeB_.skyway(), 1 << 10);
    SkywayObjectOutputStream out(
        nodeA_.skyway(),
        [&in](const std::uint8_t *d, std::size_t n) { in.feed(d, n); },
        1 << 10);
    out.writeObject(roots.get(slot));
    out.flush();
    in.finish();
    Address q = in.buffer().roots().at(0);
    GraphCheckResult r = checkHeapGraphs(nodeA_.heap(),
                                         roots.get(slot),
                                         nodeB_.heap(), q);
    EXPECT_TRUE(r.equal) << r.divergence;
    keep_.push_back(in.releaseBuffer());
}

TEST_F(SanitizeTest, InstrumentedSerializerAdapterRoundTrips)
{
    nodeA_.skyway().debug().validateWire = true;
    nodeB_.skyway().debug().validateWire = true;

    SkywaySerializer ser(nodeA_.skyway());
    SkywaySerializer des(nodeB_.skyway());
    LocalRoots roots(nodeA_.heap());
    Rng rng(9);
    std::size_t slot = makeMediaContent(nodeA_, roots, rng);
    VectorSink sink;
    ser.writeObject(roots.get(slot), sink);
    ser.endStream(sink);
    ByteSource src(sink.bytes());
    Address q = des.readObject(src);
    GraphCheckResult r = checkHeapGraphs(nodeA_.heap(),
                                         roots.get(slot),
                                         nodeB_.heap(), q);
    EXPECT_TRUE(r.equal) << r.divergence;
}

TEST_F(SanitizeTest, ReceiverRejectsCorruptStreamWhenEnabled)
{
    LocalRoots roots(nodeA_.heap());
    Rng graph_rng(12);
    std::size_t slot = makeMediaContent(nodeA_, roots, graph_rng);
    std::vector<std::uint8_t> clean = capture({roots.get(slot)});
    WireIndex index = indexStream(nodeB_.resolver(), cfg(), clean);
    Rng rng(13);
    std::vector<std::uint8_t> bad = injectCorruption(
        index, cfg(), clean, CorruptionKind::ForgedTypeId, rng);

    nodeB_.skyway().debug().validateWire = true;
    EXPECT_DEATH(
        {
            SkywayObjectInputStream in(nodeB_.skyway());
            in.feed(bad.data(), bad.size());
            in.finish();
        },
        "SkywaySan");
}

TEST_F(SanitizeTest, SenderPanicsOnCorruptedBufferWhenEnabled)
{
    // White-box: validate a corrupted stream through a sender-style
    // validator to prove flush-side rejection uses the same machinery.
    LocalRoots roots(nodeA_.heap());
    Rng graph_rng(14);
    std::size_t slot = makeMediaContent(nodeA_, roots, graph_rng);
    std::vector<std::uint8_t> clean = capture({roots.get(slot)});
    WireIndex index = indexStream(nodeB_.resolver(), cfg(), clean);
    Rng rng(15);
    std::vector<std::uint8_t> bad = injectCorruption(
        index, cfg(), clean, CorruptionKind::StaleBaddr, rng);
    WireValidator v(nodeA_.resolver(), cfg());
    v.feed(bad.data(), bad.size());
    v.finish();
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.diagnostics().front().fault, WireFault::BadBaddrWord);
}

} // namespace
} // namespace skyway
