# Empty dependencies file for skyway_core.
# This may be replaced when dependencies are built.
