file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rehash.dir/bench_ablation_rehash.cc.o"
  "CMakeFiles/bench_ablation_rehash.dir/bench_ablation_rehash.cc.o.d"
  "bench_ablation_rehash"
  "bench_ablation_rehash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rehash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
