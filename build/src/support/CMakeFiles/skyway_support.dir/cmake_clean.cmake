file(REMOVE_RECURSE
  "CMakeFiles/skyway_support.dir/logging.cc.o"
  "CMakeFiles/skyway_support.dir/logging.cc.o.d"
  "libskyway_support.a"
  "libskyway_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyway_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
