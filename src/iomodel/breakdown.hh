/**
 * @file
 * Per-phase cost breakdown, mirroring the five components of the
 * paper's Figure 3(a)/Figure 8 stacks: computation, serialization,
 * write I/O, deserialization, and read I/O (the paper folds network
 * time into read I/O; so do we). Byte counters split local vs remote
 * fetches as in Figure 3(b).
 */

#ifndef SKYWAY_IOMODEL_BREAKDOWN_HH
#define SKYWAY_IOMODEL_BREAKDOWN_HH

#include <cstdint>
#include <string>

namespace skyway
{

/** The five-way time split plus shuffle byte counters. */
struct PhaseBreakdown
{
    std::uint64_t computeNs = 0;
    std::uint64_t serNs = 0;
    std::uint64_t writeIoNs = 0;
    std::uint64_t deserNs = 0;
    std::uint64_t readIoNs = 0; // includes network time (as the paper)

    std::uint64_t bytesLocal = 0;  // fetched from local partitions
    std::uint64_t bytesRemote = 0; // fetched across the wire

    std::uint64_t
    totalNs() const
    {
        return computeNs + serNs + writeIoNs + deserNs + readIoNs;
    }

    PhaseBreakdown &
    operator+=(const PhaseBreakdown &o)
    {
        computeNs += o.computeNs;
        serNs += o.serNs;
        writeIoNs += o.writeIoNs;
        deserNs += o.deserNs;
        readIoNs += o.readIoNs;
        bytesLocal += o.bytesLocal;
        bytesRemote += o.bytesRemote;
        return *this;
    }
};

/** Render a breakdown as a one-line CSV fragment (ms units). */
std::string breakdownCsv(const PhaseBreakdown &b);

/** CSV header matching breakdownCsv(). */
std::string breakdownCsvHeader();

} // namespace skyway

#endif // SKYWAY_IOMODEL_BREAKDOWN_HH
