/**
 * @file
 * Tests for the pluggable transport layer: wire framing units, the
 * TCP transport's delivery semantics (real loopback sockets behind
 * the same ClusterNetwork API), accounting parity between the model
 * and tcp transports, the zero-copy receive path over real sockets,
 * request timeout/retry, and the full Skyway round-trip suite
 * (socket streams, parallel fan-out, type-registry LOOKUP) on TCP.
 * The multiplexed-fabric cases — interleaved tags on one pooled
 * connection, credit exhaustion and resume, peer disconnect at and
 * inside a frame edge, a 64-node smoke, parity at 16 nodes — live
 * here too. Labeled `transport` and `concurrency` so the TSan matrix
 * runs the whole binary against the per-node event loops.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/cluster.hh"
#include "net/frame.hh"
#include "net/tcp_transport.hh"
#include "obs/metrics.hh"
#include "skyway/parallel.hh"
#include "skyway/streams.hh"
#include "typereg/registry.hh"
#include "testclasses.hh"

namespace skyway
{
namespace
{

using testing_support::makeList;
using testing_support::makeMixed;
using testing_support::makePoint;
using testing_support::makeTestCatalog;

std::vector<std::uint8_t>
bytesOf(const std::string &s)
{
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::string
str(const std::vector<std::uint8_t> &v)
{
    return std::string(v.begin(), v.end());
}

/** Spin until a tagged message arrives (TCP bytes are in flight). */
NetMessage
awaitTag(ClusterNetwork &net, NodeId dst, int tag)
{
    NetMessage m;
    while (!net.pollTag(dst, tag, m)) {
    }
    return m;
}

TEST(Frame, HandshakeRoundTrip)
{
    frame::Handshake h{frame::channelData, 7};
    std::uint8_t buf[frame::handshakeBytes];
    frame::encodeHandshake(buf, h);
    frame::Handshake out{};
    ASSERT_TRUE(frame::decodeHandshake(buf, out));
    EXPECT_EQ(out.channel, frame::channelData);
    EXPECT_EQ(out.src, 7);
}

TEST(Frame, HandshakeRejectsBadMagic)
{
    frame::Handshake h{frame::channelControl, 1};
    std::uint8_t buf[frame::handshakeBytes];
    frame::encodeHandshake(buf, h);
    buf[0] ^= 0xFF;
    frame::Handshake out{};
    EXPECT_FALSE(frame::decodeHandshake(buf, out));
}

TEST(Frame, MuxHeaderRoundTrip)
{
    frame::MuxHeader h{frame::kindStream, 3, -9, 123456};
    std::uint8_t buf[frame::muxHeaderBytes];
    frame::encodeMuxHeader(buf, h);
    frame::MuxHeader out = frame::decodeMuxHeader(buf);
    EXPECT_EQ(out.kind, frame::kindStream);
    EXPECT_EQ(out.origin, 3);
    EXPECT_EQ(out.tag, -9);
    EXPECT_EQ(out.arg, 123456u);

    frame::MuxHeader c{frame::kindCredit, 1, 5, 4096};
    frame::encodeMuxHeader(buf, c);
    out = frame::decodeMuxHeader(buf);
    EXPECT_EQ(out.kind, frame::kindCredit);
    EXPECT_EQ(out.arg, 4096u);
}

TEST(Frame, ControlHeaderRoundTrip)
{
    frame::ControlHeader h{frame::kindReply, 2, 101, 77, 9};
    std::uint8_t buf[frame::controlHeaderBytes];
    frame::encodeControlHeader(buf, h);
    frame::ControlHeader out = frame::decodeControlHeader(buf);
    EXPECT_EQ(out.kind, frame::kindReply);
    EXPECT_EQ(out.src, 2);
    EXPECT_EQ(out.tag, 101);
    EXPECT_EQ(out.reqId, 77u);
    EXPECT_EQ(out.len, 9u);
}

TEST(TransportKindTest, NamesParse)
{
    EXPECT_STREQ(transportKindName(TransportKind::Model), "model");
    EXPECT_STREQ(transportKindName(TransportKind::Tcp), "tcp");
    EXPECT_EQ(parseTransportKind("model"), TransportKind::Model);
    EXPECT_EQ(parseTransportKind("tcp"), TransportKind::Tcp);
    EXPECT_FALSE(parseTransportKind("udp").has_value());
}

TEST(TcpCluster, SendPollInOrder)
{
    ClusterNetwork net(3, gigabitEthernet(), TransportKind::Tcp);
    EXPECT_STREQ(net.transportName(), "tcp");
    net.send(0, 1, 7, bytesOf("first"));
    net.send(0, 1, 7, bytesOf("second"));
    NetMessage m = awaitTag(net, 1, 7);
    EXPECT_EQ(m.src, 0);
    EXPECT_EQ(m.tag, 7);
    EXPECT_EQ(str(m.payload), "first");
    m = awaitTag(net, 1, 7);
    EXPECT_EQ(str(m.payload), "second");
    EXPECT_FALSE(net.poll(1, m));
}

TEST(TcpCluster, PollTagSkipsOthersAndRetainsOrder)
{
    ClusterNetwork net(2, gigabitEthernet(), TransportKind::Tcp);
    net.send(0, 1, 1, bytesOf("a1"));
    net.send(0, 1, 2, bytesOf("b"));
    net.send(0, 1, 1, bytesOf("a2"));
    // Draining tag 2 first must not disturb tag 1's order.
    EXPECT_EQ(str(awaitTag(net, 1, 2).payload), "b");
    EXPECT_EQ(str(awaitTag(net, 1, 1).payload), "a1");
    EXPECT_EQ(str(awaitTag(net, 1, 1).payload), "a2");
}

TEST(TcpCluster, SelfSendIsFreeAndDelivered)
{
    ClusterNetwork net(2, gigabitEthernet(), TransportKind::Tcp);
    net.send(0, 0, 5, bytesOf("home"));
    EXPECT_EQ(net.totalBytesSent(0), 0u);
    EXPECT_EQ(net.wireNs(0), 0u);
    NetMessage m;
    ASSERT_TRUE(net.pollTag(0, 5, m)); // local: no flight time
    EXPECT_EQ(str(m.payload), "home");
}

TEST(TcpCluster, PollTagIntoDeliversIntoPostedStorage)
{
    ClusterNetwork net(2, gigabitEthernet(), TransportKind::Tcp);
    std::vector<std::uint8_t> payload(4096);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 13);
    net.send(0, 1, 3, payload);

    std::vector<std::uint8_t> storage(payload.size() + 1, 0xEE);
    std::ptrdiff_t n;
    while ((n = net.pollTagInto(1, 3, [&](std::size_t len) {
                EXPECT_EQ(len, payload.size());
                return storage.data();
            })) < 0) {
    }
    ASSERT_EQ(n, static_cast<std::ptrdiff_t>(payload.size()));
    EXPECT_EQ(0,
              std::memcmp(storage.data(), payload.data(),
                          payload.size()));
    EXPECT_EQ(storage[payload.size()], 0xEE) << "overran the reserve";
    EXPECT_EQ(net.recvIntoBytes(), payload.size());
}

TEST(TcpCluster, PollTagIntoEdgeCases)
{
    ClusterNetwork net(2, gigabitEthernet(), TransportKind::Tcp);
    bool reserve_called = false;
    auto reserve = [&](std::size_t) -> std::uint8_t * {
        reserve_called = true;
        return nullptr;
    };
    // Nothing pending: -1, reserve untouched.
    EXPECT_EQ(net.pollTagInto(1, 9, reserve), -1);
    EXPECT_FALSE(reserve_called);

    // Empty payload (end-of-stream marker): 0, reserve untouched.
    net.send(0, 1, 9, {});
    std::ptrdiff_t n;
    while ((n = net.pollTagInto(1, 9, reserve)) < 0) {
    }
    EXPECT_EQ(n, 0);
    EXPECT_FALSE(reserve_called);
    EXPECT_EQ(net.recvIntoBytes(), 0u);
}

TEST(TcpCluster, RequestReply)
{
    ClusterNetwork net(2, gigabitEthernet(), TransportKind::Tcp);
    net.registerHandler(1, [](NodeId src, int tag,
                              const std::vector<std::uint8_t> &p) {
        EXPECT_EQ(src, 0);
        EXPECT_EQ(tag, 9);
        return std::vector<std::uint8_t>(p.rbegin(), p.rend());
    });
    auto reply = net.request(0, 1, 9, bytesOf("abc"));
    EXPECT_EQ(str(reply), "cba");
    EXPECT_GT(net.wireNs(0), 0u);
    EXPECT_GT(net.realWireNs(), 0u);
    EXPECT_GT(net.framesSent(), 0u);
}

TEST(TcpCluster, RequestWithoutHandlerPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // The fabric is built inside the death statement so the child
    // process gets its own live pump threads.
    EXPECT_DEATH(
        {
            ClusterNetwork net(2, gigabitEthernet(),
                               TransportKind::Tcp);
            net.request(0, 1, 1, {}, RequestOptions{200, 0});
        },
        "no registered handler|timed out");
}

TEST(TcpCluster, RequestTimeoutRetriesThenSucceeds)
{
    ClusterNetwork net(2, gigabitEthernet(), TransportKind::Tcp);
    std::atomic<int> calls{0};
    net.registerHandler(
        1, [&calls](NodeId, int, const std::vector<std::uint8_t> &p) {
            // First serve stalls past the requester's timeout; the
            // resent request (same payload — the protocol is
            // idempotent) is answered promptly.
            if (calls.fetch_add(1) == 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1000));
            }
            return p;
        });
    RequestOptions opts;
    opts.timeoutMs = 300;
    opts.maxRetries = 5;
    auto reply = net.request(0, 1, 4, bytesOf("ping"), opts);
    EXPECT_EQ(str(reply), "ping");
    EXPECT_GE(net.connectRetries(), 1u);
    EXPECT_GE(calls.load(), 2);
}

TEST(TcpCluster, ResetAccountingClearsWireCounters)
{
    ClusterNetwork net(2, gigabitEthernet(), TransportKind::Tcp);
    net.send(0, 1, 1, bytesOf("payload"));
    std::vector<std::uint8_t> storage(16);
    while (net.pollTagInto(1, 1,
                           [&](std::size_t) { return storage.data(); })
           < 0) {
    }
    EXPECT_GT(net.framesSent(), 0u);
    EXPECT_GT(net.recvIntoBytes(), 0u);
    EXPECT_GT(net.realWireNs(), 0u);
    EXPECT_GT(net.totalBytesSent(0), 0u);

    EXPECT_GT(net.pooledConnections(), 0u);
    EXPECT_GT(net.epollWakeups(), 0u);

    net.resetAccounting();
    EXPECT_EQ(net.framesSent(), 0u);
    EXPECT_EQ(net.connectRetries(), 0u);
    EXPECT_EQ(net.recvIntoBytes(), 0u);
    EXPECT_EQ(net.realWireNs(), 0u);
    EXPECT_EQ(net.creditStallsNs(), 0u);
    EXPECT_EQ(net.epollWakeups(), 0u);
    EXPECT_EQ(net.pooledConnections(), 0u);
    EXPECT_EQ(net.totalBytesSent(0), 0u);
    EXPECT_EQ(net.wireNs(0), 0u);
    EXPECT_EQ(net.messagesSent(0), 0u);
}

/** Destroying a fabric with still-active streams and pooled
 *  connections must return the process-wide gauges to their prior
 *  level. The unwind walks sendMutex-/poolMutex_-guarded state; it
 *  used to read it unlocked, which the SkywayGuard thread-safety
 *  annotations flagged (docs/STATIC_ANALYSIS.md). */
TEST(TcpCluster, GaugesUnwindOnDestruction)
{
    auto &reg = obs::MetricsRegistry::global();
    obs::Gauge &streams = reg.gauge("net.streams_active");
    obs::Gauge &pooled = reg.gauge("net.pooled_connections");
    std::int64_t streams0 = streams.value();
    std::int64_t pooled0 = pooled.value();
    {
        ClusterNetwork net(3, gigabitEthernet(), TransportKind::Tcp);
        // Streams deliberately left open (no end-of-stream marker)
        // so destruction finds them active.
        net.send(0, 1, 9, bytesOf("left-open"));
        net.send(1, 2, 9, bytesOf("left-open"));
        awaitTag(net, 1, 9);
        awaitTag(net, 2, 9);
        EXPECT_GE(streams.value(), streams0 + 2);
        EXPECT_GE(pooled.value(), pooled0 + 2);
    }
    EXPECT_EQ(streams.value(), streams0);
    EXPECT_EQ(pooled.value(), pooled0);
}

/** The same traffic pattern on both transports must account
 *  identically — bytes, messages, and modeled wire time. */
TEST(TransportParity, AccountingMatchesByteForByte)
{
    auto drive = [](ClusterNetwork &net) {
        net.registerHandler(
            2, [](NodeId, int, const std::vector<std::uint8_t> &p) {
                return std::vector<std::uint8_t>(p.size() * 2, 0xAB);
            });
        net.send(0, 1, 1, std::vector<std::uint8_t>(100));
        net.send(0, 2, 1, std::vector<std::uint8_t>(50));
        net.send(1, 0, 2, std::vector<std::uint8_t>(25));
        net.send(1, 1, 3, std::vector<std::uint8_t>(999)); // loopback
        net.request(0, 2, 4, std::vector<std::uint8_t>(10));
        // Drain so TCP teardown is quiet.
        (void)awaitTag(net, 1, 1);
        (void)awaitTag(net, 2, 1);
        (void)awaitTag(net, 0, 2);
        NetMessage m;
        (void)net.pollTag(1, 3, m);
    };
    ClusterNetwork model(3, gigabitEthernet(), TransportKind::Model);
    ClusterNetwork tcp(3, gigabitEthernet(), TransportKind::Tcp);
    drive(model);
    drive(tcp);
    for (NodeId s = 0; s < 3; ++s) {
        EXPECT_EQ(model.messagesSent(s), tcp.messagesSent(s)) << s;
        EXPECT_EQ(model.wireNs(s), tcp.wireNs(s)) << s;
        for (NodeId d = 0; d < 3; ++d)
            EXPECT_EQ(model.bytesSent(s, d), tcp.bytesSent(s, d))
                << s << "->" << d;
    }
    EXPECT_EQ(model.framesSent(), 0u) << "model has no real wire";
    EXPECT_GT(tcp.framesSent(), 0u);
}

TEST(TcpCluster, ConcurrentSendersManyTags)
{
    // Hammer one receiving node from two sender threads across many
    // tags; every payload must arrive intact and in per-tag order.
    ClusterNetwork net(3, gigabitEthernet(), TransportKind::Tcp);
    constexpr int perTag = 20;
    constexpr int tags = 4;
    auto sender = [&net](NodeId src) {
        for (int i = 0; i < perTag; ++i) {
            for (int t = 0; t < tags; ++t) {
                std::vector<std::uint8_t> p(64 + t,
                                            static_cast<std::uint8_t>(
                                                i));
                net.send(src, 2, src * tags + t, std::move(p));
            }
        }
    };
    std::thread t1(sender, 0), t2(sender, 1);
    for (int src = 0; src < 2; ++src) {
        for (int t = 0; t < tags; ++t) {
            for (int i = 0; i < perTag; ++i) {
                NetMessage m = awaitTag(net, 2, src * tags + t);
                EXPECT_EQ(m.src, src);
                ASSERT_EQ(m.payload.size(),
                          static_cast<std::size_t>(64 + t));
                EXPECT_EQ(m.payload[0], static_cast<std::uint8_t>(i));
            }
        }
    }
    t1.join();
    t2.join();
}

TEST(TcpCluster, InterleavedTagsShareOneConnection)
{
    ClusterNetwork net(2, gigabitEthernet(), TransportKind::Tcp);
    net.send(0, 1, 1, bytesOf("a1"));
    net.send(0, 1, 2, bytesOf("b1"));
    net.send(0, 1, 1, bytesOf("a2"));
    net.send(0, 1, 2, bytesOf("b2"));
    // Draining tag 2 ahead of tag 1 forces the parked tag-1 misfits
    // through staging so the shared connection keeps moving; both
    // streams must keep their own order.
    EXPECT_EQ(str(awaitTag(net, 1, 2).payload), "b1");
    EXPECT_EQ(str(awaitTag(net, 1, 2).payload), "b2");
    EXPECT_EQ(str(awaitTag(net, 1, 1).payload), "a1");
    EXPECT_EQ(str(awaitTag(net, 1, 1).payload), "a2");
    // Two interleaved streams, one pooled pair connection.
    EXPECT_EQ(net.pooledConnections(), 1u);
    NetMessage m;
    EXPECT_FALSE(net.poll(1, m));
}

TEST(TcpCluster, CreditExhaustionStallsThenResumes)
{
    TransportOptions topts;
    topts.creditWindowBytes = 2048; // two 1 KiB frames in flight
    ClusterNetwork net(2, gigabitEthernet(), TransportKind::Tcp,
                       topts);
    constexpr int frames = 10;
    std::vector<std::uint8_t> payload(1024);
    for (int i = 0; i < frames; ++i) {
        payload[0] = static_cast<std::uint8_t>(i);
        net.send(0, 1, 3, payload);
    }
    // Let the sender's loop run the 2 KiB window dry before anyone
    // grants credit back.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    for (int i = 0; i < frames; ++i) {
        NetMessage m = awaitTag(net, 1, 3);
        ASSERT_EQ(m.payload.size(), payload.size());
        EXPECT_EQ(m.payload[0], static_cast<std::uint8_t>(i));
    }
    // The stream stalled at least once and resumed on a grant.
    EXPECT_GT(net.creditStallsNs(), 0u);
    EXPECT_GT(net.epollWakeups(), 0u);
}

TEST(TcpCluster, CreditGrantBehindParkedFrameRescued)
{
    // Pair connections are full-duplex, so the grant that would
    // unstall node 0's stream can arrive *behind* a parked inbound
    // frame node 1 sent on the same socket. Both nodes send more
    // than one window's worth and only node 1's tag is drained
    // first: without the event loop's stall rescue (stage the
    // stalled connection's parked frames so the trapped grant
    // becomes readable) this deadlocks.
    TransportOptions topts;
    topts.creditWindowBytes = 2048; // exactly one frame in flight
    ClusterNetwork net(2, gigabitEthernet(), TransportKind::Tcp,
                       topts);
    constexpr int frames = 4;
    std::vector<std::uint8_t> payload(2048);
    for (int i = 0; i < frames; ++i) {
        payload[0] = static_cast<std::uint8_t>(i);
        net.send(0, 1, 5, payload);
        payload[0] = static_cast<std::uint8_t>(100 + i);
        net.send(1, 0, 6, payload);
    }
    auto awaitTagBounded = [&](NodeId dst, int tag, NetMessage &m) {
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
        while (!net.pollTag(dst, tag, m)) {
            if (std::chrono::steady_clock::now() > deadline)
                return false;
        }
        return true;
    };
    for (int i = 0; i < frames; ++i) {
        NetMessage m;
        ASSERT_TRUE(awaitTagBounded(1, 5, m))
            << "deadlocked: grant trapped behind parked frame";
        ASSERT_EQ(m.payload.size(), payload.size());
        EXPECT_EQ(m.payload[0], static_cast<std::uint8_t>(i));
    }
    for (int i = 0; i < frames; ++i) {
        NetMessage m;
        ASSERT_TRUE(awaitTagBounded(0, 6, m));
        EXPECT_EQ(m.payload[0], static_cast<std::uint8_t>(100 + i));
    }
    EXPECT_GT(net.creditStallsNs(), 0u);
}

TEST(TcpCluster, BidirectionalFloodDoesNotWedgeEventLoops)
{
    // Regression for the write-write deadlock: both nodes flood the
    // one full-duplex pair socket with several streams' worth of
    // frames before anyone polls, so each direction's unwritten
    // bytes exceed what the kernel will buffer. With blocking writes
    // in the event loops, node 0's loop and node 1's loop both sat
    // in send(2) against a full peer socket buffer — neither reached
    // epoll_wait again, no inbound frame was ever parked, and the
    // fabric deadlocked. Writes now queue per connection and drain
    // non-blockingly (EPOLLOUT), so the loops keep turning.
    ClusterNetwork net(2, gigabitEthernet(), TransportKind::Tcp);
    constexpr int tags = 4;
    constexpr int frames = 2;
    std::vector<std::uint8_t> payload(512 * 1024);
    for (int t = 0; t < tags; ++t) {
        for (int i = 0; i < frames; ++i) {
            payload[0] = static_cast<std::uint8_t>(i);
            payload[1] = static_cast<std::uint8_t>(t);
            net.send(0, 1, 20 + t, payload);
            payload[0] = static_cast<std::uint8_t>(100 + i);
            net.send(1, 0, 20 + t, payload);
        }
    }
    // Give both loops time to wedge against the full socket buffers
    // before any consumer relieves them (the old code deadlocked
    // right here, with every later poll spinning forever).
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    auto awaitTagBounded = [&](NodeId dst, int tag, NetMessage &m) {
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
        while (!net.pollTag(dst, tag, m)) {
            if (std::chrono::steady_clock::now() > deadline)
                return false;
        }
        return true;
    };
    for (int t = 0; t < tags; ++t) {
        for (int i = 0; i < frames; ++i) {
            NetMessage m;
            ASSERT_TRUE(awaitTagBounded(1, 20 + t, m))
                << "deadlocked: event loops blocked writing";
            ASSERT_EQ(m.payload.size(), payload.size());
            EXPECT_EQ(m.payload[0], static_cast<std::uint8_t>(i));
            EXPECT_EQ(m.payload[1], static_cast<std::uint8_t>(t));
            ASSERT_TRUE(awaitTagBounded(0, 20 + t, m))
                << "deadlocked: event loops blocked writing";
            EXPECT_EQ(m.payload[0],
                      static_cast<std::uint8_t>(100 + i));
        }
    }
    NetMessage m;
    EXPECT_FALSE(net.poll(0, m));
    EXPECT_FALSE(net.poll(1, m));
}

TEST(TcpCluster, BoundedSendQueueBlocksUntilDrained)
{
    TransportOptions topts;
    topts.maxQueuedBytesPerStream = 2048;
    ClusterNetwork net(2, gigabitEthernet(), TransportKind::Tcp,
                       topts);
    constexpr int frames = 32;
    std::thread drainer([&net] {
        for (int i = 0; i < frames; ++i) {
            NetMessage m = awaitTag(net, 1, 6);
            EXPECT_EQ(m.payload[0], static_cast<std::uint8_t>(i));
        }
    });
    std::vector<std::uint8_t> payload(1024);
    for (int i = 0; i < frames; ++i) {
        payload[0] = static_cast<std::uint8_t>(i);
        net.send(0, 1, 6, payload); // blocks past 2 KiB queued
    }
    drainer.join();
}

namespace
{

/** A raw loopback client socket (a fake peer for disconnect tests). */
int
rawConnect(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)), 0);
    return fd;
}

void
rawSend(int fd, const void *buf, std::size_t len)
{
    ASSERT_EQ(::send(fd, buf, len, MSG_NOSIGNAL),
              static_cast<ssize_t>(len));
}

bool
recvAll(int fd, std::uint8_t *buf, std::size_t len)
{
    std::size_t got = 0;
    while (got < len) {
        ssize_t n = ::recv(fd, buf + got, len - got, 0);
        if (n <= 0)
            return false;
        got += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

TEST(TcpCluster, PeerDisconnectAtFrameEdgeRecovers)
{
    WireCounters wire;
    TcpTransport t(2, wire);
    // A foreign peer handshakes as node 0's data end...
    int fd = rawConnect(t.listenPort(1));
    std::uint8_t shake[frame::handshakeBytes];
    frame::encodeHandshake(shake,
                           frame::Handshake{frame::channelData, 0});
    rawSend(fd, shake, sizeof(shake));
    // ...delivers one complete frame...
    std::uint8_t hdr[frame::muxHeaderBytes];
    frame::encodeMuxHeader(hdr,
                           frame::MuxHeader{frame::kindStream, 0, 5,
                                            5});
    rawSend(fd, hdr, sizeof(hdr));
    rawSend(fd, "hello", 5);
    NetMessage m;
    while (!t.pollTag(1, 5, m)) {
    }
    EXPECT_EQ(str(m.payload), "hello");
    EXPECT_EQ(wire.connectionsPooled.load(), 1u);
    // ...absorbs the credit grant the delivery owes it, then hangs up
    // at a frame edge: an orderly EOF that must drop the pooled pair,
    // not panic.
    std::uint8_t grant[frame::muxHeaderBytes];
    ASSERT_TRUE(recvAll(fd, grant, sizeof(grant)));
    EXPECT_EQ(frame::decodeMuxHeader(grant).kind, frame::kindCredit);
    ::close(fd);
    // A real send from node 0 re-establishes a fresh pair connection.
    t.send(0, 1, 5, bytesOf("again"));
    while (!t.pollTag(1, 5, m)) {
    }
    EXPECT_EQ(str(m.payload), "again");
    EXPECT_EQ(wire.connectionsPooled.load(), 2u);
}

TEST(TcpCluster, PeerClosingMidFramePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            WireCounters wire;
            TcpTransport t(2, wire);
            int fd = rawConnect(t.listenPort(1));
            std::uint8_t shake[frame::handshakeBytes];
            frame::encodeHandshake(
                shake, frame::Handshake{frame::channelData, 0});
            rawSend(fd, shake, sizeof(shake));
            // Half a mux header, then hang up: a torn frame.
            std::uint8_t partial[5];
            std::memset(partial, 0, sizeof(partial));
            partial[0] = frame::kindStream;
            rawSend(fd, partial, sizeof(partial));
            ::close(fd);
            std::this_thread::sleep_for(std::chrono::seconds(5));
        },
        "peer closed mid-frame");
}

TEST(TcpCluster, SixtyFourNodeRingAndChordSmoke)
{
    constexpr int N = 64;
    ClusterNetwork net(N, gigabitEthernet(), TransportKind::Tcp);
    for (int i = 0; i < N; ++i) {
        net.send(i, (i + 1) % N, 7,
                 bytesOf("ring " + std::to_string(i)));
        net.send(i, (i + N / 2) % N, 8,
                 bytesOf("chord " + std::to_string(i)));
    }
    for (int i = 0; i < N; ++i) {
        NetMessage r = awaitTag(net, (i + 1) % N, 7);
        EXPECT_EQ(r.src, i);
        EXPECT_EQ(str(r.payload), "ring " + std::to_string(i));
        NetMessage c = awaitTag(net, (i + N / 2) % N, 8);
        EXPECT_EQ(c.src, i);
        EXPECT_EQ(str(c.payload), "chord " + std::to_string(i));
    }
    // 64 ring pairs plus 32 distinct chord pairs; each chord pair
    // carries streams both ways yet is pooled exactly once, even when
    // both endpoints race to establish it.
    EXPECT_EQ(net.pooledConnections(),
              static_cast<std::uint64_t>(N + N / 2));
}

TEST(TransportParity, ParityAtSixteenNodes)
{
    constexpr int N = 16;
    auto drive = [](ClusterNetwork &net) {
        for (int s = 0; s < N; ++s) {
            for (int d = 0; d < N; ++d) {
                if (s == d)
                    continue;
                net.send(s, d, 100 + s,
                         std::vector<std::uint8_t>(
                             static_cast<std::size_t>(
                                 16 + 3 * s + 7 * d)));
            }
        }
        for (int d = 0; d < N; ++d) {
            for (int s = 0; s < N; ++s) {
                if (s == d)
                    continue;
                NetMessage m = awaitTag(net, d, 100 + s);
                EXPECT_EQ(m.src, s);
                EXPECT_EQ(m.payload.size(),
                          static_cast<std::size_t>(16 + 3 * s +
                                                   7 * d));
            }
        }
    };
    ClusterNetwork model(N, gigabitEthernet(), TransportKind::Model);
    ClusterNetwork tcp(N, gigabitEthernet(), TransportKind::Tcp);
    drive(model);
    drive(tcp);
    for (NodeId s = 0; s < N; ++s) {
        EXPECT_EQ(model.messagesSent(s), tcp.messagesSent(s)) << s;
        EXPECT_EQ(model.wireNs(s), tcp.wireNs(s)) << s;
        EXPECT_EQ(model.totalBytesSent(s), tcp.totalBytesSent(s)) << s;
    }
    // A full 16-node all-to-all needs exactly N·(N−1)/2 connections.
    EXPECT_EQ(tcp.pooledConnections(),
              static_cast<std::uint64_t>(N * (N - 1) / 2));
    EXPECT_EQ(model.pooledConnections(), 0u);
}

/** Skyway over real sockets: the SkywayTest topology on TCP. */
class TcpSkywayTest : public ::testing::Test
{
  protected:
    TcpSkywayTest()
        : catalog_(makeTestCatalog()),
          net_(3, gigabitEthernet(), TransportKind::Tcp),
          driver_(catalog_, net_, 0, 0),
          nodeA_(catalog_, net_, 1, 0),
          nodeB_(catalog_, net_, 2, 0)
    {
        // Registry attach traffic (REQUEST_VIEW over real sockets)
        // has flowed by now; start the counters clean.
        net_.resetAccounting();
    }

    ClassCatalog catalog_;
    ClusterNetwork net_;
    Jvm driver_;
    Jvm nodeA_;
    Jvm nodeB_;
    std::vector<std::unique_ptr<InputBuffer>> keep_;
};

TEST_F(TcpSkywayTest, SocketStreamsRoundTripZeroCopy)
{
    nodeB_.skyway().debug().checkReceivedGraph = true;
    // The fabric-byte equalities below are raw-format invariants
    // (compact segments ship fewer bytes than the rebuilt buffer
    // holds): pin compaction off.
    nodeA_.skyway().setWireCompactMode(WireCompactMode::Off);
    nodeB_.skyway().setWireCompactMode(WireCompactMode::Off);

    LocalRoots roots(nodeA_.heap());
    Address head = makeList(nodeA_, roots, 300);
    nodeA_.skyway().shuffleStart();
    SkywaySocketOutputStream out(nodeA_.skyway(), net_, nodeA_.id(),
                                 nodeB_.id(), 42, 4 << 10);
    SkywaySocketInputStream in(nodeB_.skyway(), net_, nodeB_.id(), 42);
    out.writeObject(head);
    out.close();
    while (!in.pump()) {
    }
    Address q = in.readObject();
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), head, nodeB_.heap(), q));

    // Every wire payload byte was recv()'d straight into chunk
    // storage — no staging copy survived the refactor.
    EXPECT_GT(out.totalBytes(), 0u);
    EXPECT_EQ(net_.recvIntoBytes(), out.totalBytes());
    EXPECT_EQ(net_.bytesSent(nodeA_.id(), nodeB_.id()),
              out.totalBytes());
    keep_.push_back(in.releaseBuffer());
}

TEST_F(TcpSkywayTest, ParallelFanOutOverSockets)
{
    constexpr unsigned N = 3;
    LocalRoots roots(nodeA_.heap());
    Address shared = makeMixed(nodeA_, roots, "contended subtree");
    std::size_t rs = roots.push(shared);
    Klass *pairK = nodeA_.klasses().load("test.Pair");
    std::vector<Address> tops;
    LocalRoots keepRoots(nodeA_.heap());
    for (unsigned t = 0; t < 2 * N; ++t) {
        Address p = nodeA_.heap().allocateInstance(pairK);
        std::size_t rp = keepRoots.push(p);
        field::setRef(nodeA_.heap(), keepRoots.get(rp),
                      pairK->requireField("left"), roots.get(rs));
        field::setRef(nodeA_.heap(), keepRoots.get(rp),
                      pairK->requireField("right"),
                      makePoint(nodeA_, static_cast<int>(t), -1));
        tops.push_back(keepRoots.get(rp));
    }

    nodeA_.skyway().shuffleStart();
    constexpr int baseTag = 500;
    ParallelSendConfig cfg;
    cfg.threads = N;
    // Each fan-out thread streams straight onto the fabric on its own
    // tag — concurrent senders exercising the real socket path.
    ParallelSender psend(
        nodeA_.skyway(),
        [this](unsigned w) {
            return [this, w](const std::uint8_t *d, std::size_t n) {
                net_.send(nodeA_.id(), nodeB_.id(),
                          baseTag + static_cast<int>(w),
                          std::vector<std::uint8_t>(d, d + n));
            };
        },
        cfg);
    ParallelSendReport rep = psend.send(tops);
    EXPECT_GT(rep.totalBytes, 0u);
    for (unsigned w = 0; w < N; ++w)
        net_.send(nodeA_.id(), nodeB_.id(),
                  baseTag + static_cast<int>(w), {});

    // Thread w streamed roots w, w+N, ... in order on its own tag.
    std::size_t received = 0;
    for (unsigned w = 0; w < N; ++w) {
        SkywaySocketInputStream in(nodeB_.skyway(), net_, nodeB_.id(),
                                   baseTag + static_cast<int>(w));
        while (!in.pump()) {
        }
        std::size_t slot = 0;
        while (in.hasNext()) {
            Address q = in.readObject();
            std::size_t idx = w + slot * N;
            ASSERT_LT(idx, tops.size());
            EXPECT_TRUE(graphsEqual(nodeA_.heap(), tops[idx],
                                    nodeB_.heap(), q));
            ++slot;
            ++received;
        }
        keep_.push_back(in.releaseBuffer());
    }
    EXPECT_EQ(received, tops.size());
}

TEST_F(TcpSkywayTest, TypeRegistryLookupOverSockets)
{
    // Loading a class the worker's view predates forces a LOOKUP
    // round trip over the real control socket.
    auto *worker =
        dynamic_cast<TypeRegistryWorker *>(&nodeA_.resolver());
    ASSERT_NE(worker, nullptr);
    RegistryStats before = worker->stats();

    Klass *k = nodeA_.klasses().load("test.Point3D");
    ASSERT_NE(k, nullptr);
    EXPECT_GE(k->tid(), 0);
    RegistryStats after = worker->stats();
    EXPECT_GT(after.remoteLookupsIssued, before.remoteLookupsIssued);

    // The driver handed out the id it recorded.
    EXPECT_EQ(driver_.resolver().idForClass("test.Point3D"), k->tid());

    // At most once per class per machine: a reload is a cache hit.
    nodeA_.klasses().load("test.Point3D");
    EXPECT_EQ(worker->stats().remoteLookupsIssued,
              after.remoteLookupsIssued);
}

} // namespace
} // namespace skyway
