# Empty compiler generated dependencies file for bench_byte_composition.
# This may be replaced when dependencies are built.
