/**
 * @file
 * Shared application classes and graph builders for the serializer
 * and Skyway tests.
 */

#ifndef SKYWAY_TESTS_TESTCLASSES_HH
#define SKYWAY_TESTS_TESTCLASSES_HH

#include "skyway/jvm.hh"

namespace skyway
{
namespace testing_support
{

/** Catalog with bootstrap + Skyway internals + the test classes. */
inline ClassCatalog
makeTestCatalog()
{
    ClassCatalog cat = makeStandardCatalog();
    cat.define(ClassDef{
        "test.Point",
        "",
        {
            {"x", FieldType::Int, ""},
            {"y", FieldType::Int, ""},
        },
    });
    cat.define(ClassDef{
        "test.Point3D",
        "test.Point",
        {
            {"z", FieldType::Int, ""},
        },
    });
    cat.define(ClassDef{
        "test.Node",
        "",
        {
            {"value", FieldType::Long, ""},
            {"next", FieldType::Ref, "test.Node"},
        },
    });
    cat.define(ClassDef{
        "test.Pair",
        "",
        {
            {"left", FieldType::Ref, ""},
            {"right", FieldType::Ref, ""},
        },
    });
    cat.define(ClassDef{
        "test.Mixed",
        "",
        {
            {"flag", FieldType::Boolean, ""},
            {"b", FieldType::Byte, ""},
            {"c", FieldType::Char, ""},
            {"s", FieldType::Short, ""},
            {"i", FieldType::Int, ""},
            {"l", FieldType::Long, ""},
            {"f", FieldType::Float, ""},
            {"d", FieldType::Double, ""},
            {"name", FieldType::Ref, "java.lang.String"},
            {"data", FieldType::Ref, "[I"},
        },
    });
    return cat;
}

/** Build a test.Point rooted nowhere (caller roots if needed). */
inline Address
makePoint(Jvm &jvm, std::int32_t x, std::int32_t y)
{
    Klass *k = jvm.klasses().load("test.Point");
    Address p = jvm.heap().allocateInstance(k);
    field::set<std::int32_t>(jvm.heap(), p, k->requireField("x"), x);
    field::set<std::int32_t>(jvm.heap(), p, k->requireField("y"), y);
    return p;
}

/** Build a fully populated test.Mixed (rooted via @p roots). */
inline Address
makeMixed(Jvm &jvm, LocalRoots &roots, const std::string &name)
{
    Address str = jvm.builder().makeString(name);
    std::size_t rs = roots.push(str);
    Address arr = jvm.builder().makeIntArray({1, -2, 3, -4});
    std::size_t ra = roots.push(arr);

    Klass *k = jvm.klasses().load("test.Mixed");
    Address m = jvm.heap().allocateInstance(k);
    ManagedHeap &h = jvm.heap();
    field::set<std::uint8_t>(h, m, k->requireField("flag"), 1);
    field::set<std::int8_t>(h, m, k->requireField("b"), -7);
    field::set<std::uint16_t>(h, m, k->requireField("c"), 'Q');
    field::set<std::int16_t>(h, m, k->requireField("s"), -1234);
    field::set<std::int32_t>(h, m, k->requireField("i"), 123456789);
    field::set<std::int64_t>(h, m, k->requireField("l"),
                             -987654321012345ll);
    field::set<float>(h, m, k->requireField("f"), 2.5f);
    field::set<double>(h, m, k->requireField("d"), -3.25);
    field::setRef(h, m, k->requireField("name"), roots.get(rs));
    field::setRef(h, m, k->requireField("data"), roots.get(ra));
    return m;
}

/** Build a linked list of test.Node with values n-1..0 -> null. */
inline Address
makeList(Jvm &jvm, LocalRoots &roots, int n)
{
    Klass *k = jvm.klasses().load("test.Node");
    std::size_t slot = roots.push(nullAddr);
    for (int i = 0; i < n; ++i) {
        Address node = jvm.heap().allocateInstance(k);
        field::set<std::int64_t>(jvm.heap(), node,
                                 k->requireField("value"), i);
        field::setRef(jvm.heap(), node, k->requireField("next"),
                      roots.get(slot));
        roots.set(slot, node);
    }
    return roots.get(slot);
}

/** A pair sharing one child on both sides. */
inline Address
makeSharedPair(Jvm &jvm, LocalRoots &roots)
{
    Address shared = makePoint(jvm, 5, 6);
    std::size_t rs = roots.push(shared);
    Klass *k = jvm.klasses().load("test.Pair");
    Address p = jvm.heap().allocateInstance(k);
    field::setRef(jvm.heap(), p, k->requireField("left"),
                  roots.get(rs));
    field::setRef(jvm.heap(), p, k->requireField("right"),
                  roots.get(rs));
    return p;
}

/** A two-node reference cycle. */
inline Address
makeCycle(Jvm &jvm, LocalRoots &roots)
{
    Klass *k = jvm.klasses().load("test.Node");
    Address a = jvm.heap().allocateInstance(k);
    std::size_t ra = roots.push(a);
    Address b = jvm.heap().allocateInstance(k);
    std::size_t rb = roots.push(b);
    ManagedHeap &h = jvm.heap();
    field::set<std::int64_t>(h, roots.get(ra), k->requireField("value"),
                             1);
    field::set<std::int64_t>(h, roots.get(rb), k->requireField("value"),
                             2);
    field::setRef(h, roots.get(ra), k->requireField("next"),
                  roots.get(rb));
    field::setRef(h, roots.get(rb), k->requireField("next"),
                  roots.get(ra));
    return roots.get(ra);
}

} // namespace testing_support
} // namespace skyway

#endif // SKYWAY_TESTS_TESTCLASSES_HH
