#include "sanitize/wirecheck.hh"

#include <algorithm>
#include <cstring>

#include "klass/klass.hh"
#include "skyway/baddr.hh"
#include "support/logging.hh"
#include "typereg/registry.hh"

namespace skyway
{
namespace sanitize
{

namespace
{

Word
wordAt(const std::uint8_t *p)
{
    Word w;
    std::memcpy(&w, p, wordSize);
    return w;
}

/** An array length past this is corruption, not data (2^40 elements
 *  would overflow the 40-bit relative address space by itself). */
constexpr std::uint64_t maxPlausibleArrayLength = 1ull << 40;

} // namespace

const char *
wireFaultName(WireFault f)
{
    switch (f) {
    case WireFault::UnknownMarker:
        return "unknown-marker";
    case WireFault::UnresolvableTypeId:
        return "unresolvable-type-id";
    case WireFault::TruncatedRecord:
        return "truncated-record";
    case WireFault::MisalignedRecord:
        return "misaligned-record";
    case WireFault::DanglingReference:
        return "dangling-reference";
    case WireFault::BadMarkWord:
        return "bad-mark-word";
    case WireFault::BadBaddrWord:
        return "bad-baddr-word";
    case WireFault::BadRootRecord:
        return "bad-root-record";
    }
    return "?";
}

std::string
WireDiagnostic::str() const
{
    return std::string(wireFaultName(fault)) + " @+" +
           std::to_string(offset) + ": " + detail;
}

WireValidator::WireValidator(TypeResolver &resolver, WireCheckConfig cfg)
    : resolver_(resolver), cfg_(cfg)
{
}

void
WireValidator::report(WireFault f, std::uint64_t off, std::string detail)
{
    if (diags_.size() < cfg_.maxDiagnostics)
        diags_.push_back(WireDiagnostic{f, off, std::move(detail)});
}

bool
WireValidator::isRecordStart(std::uint64_t logical) const
{
    return std::binary_search(recordStarts_.begin(), recordStarts_.end(),
                              logical);
}

Klass *
WireValidator::resolveTid(std::int32_t tid)
{
    if (tid < 0)
        return nullptr;
    auto idx = static_cast<std::size_t>(tid);
    if (idx < tidCache_.size() && tidCache_[idx])
        return tidCache_[idx];
    Klass *k = resolver_.tryKlassForId(tid);
    if (!k)
        return nullptr;
    if (idx >= tidCache_.size())
        tidCache_.resize(idx + 1, nullptr);
    tidCache_[idx] = k;
    return k;
}

std::size_t
WireValidator::scanRecord(const std::uint8_t *rec, std::size_t remaining,
                          std::uint64_t phys_off)
{
    const ObjectFormat &wf = cfg_.wireFormat;

    if (remaining < wf.headerBytes()) {
        report(WireFault::TruncatedRecord, phys_off,
               "segment ends inside a record header (" +
                   std::to_string(remaining) + " of " +
                   std::to_string(wf.headerBytes()) + " header bytes)");
        return 0;
    }

    // Mark word: only the cached hashcode survives transfer
    // (mark::resetForTransfer); anything else is machine-local state
    // that must not be on the wire.
    Word m = wordAt(rec + offsetMark);
    if ((m & ~(mark::hashMask | mark::hashComputedBit)) != 0)
        report(WireFault::BadMarkWord, phys_off + offsetMark,
               "mark word carries non-transfer bits (lock/GC/age or "
               "reserved)");
    else if (!mark::hasHash(m) && (m & mark::hashMask) != 0)
        report(WireFault::BadMarkWord, phys_off + offsetMark,
               "hash bits present without the hash-computed flag");

    // Klass word: a wire type id, which must resolve in the registry.
    Word tid_word = wordAt(rec + offsetKlass);
    if (tid_word > 0x7fffffffull) {
        report(WireFault::UnresolvableTypeId, phys_off + offsetKlass,
               "klass word " + std::to_string(tid_word) +
                   " is not a type id");
        return 0;
    }
    Klass *k = resolveTid(static_cast<std::int32_t>(tid_word));
    if (!k) {
        report(WireFault::UnresolvableTypeId, phys_off + offsetKlass,
               "type id " + std::to_string(tid_word) +
                   " is not in the registry");
        return 0;
    }

    // Baddr word: the sender's claim state never leaves the machine.
    if (wf.hasBaddr) {
        Word b = wordAt(rec + offsetBaddr);
        if (b != 0)
            report(WireFault::BadBaddrWord, phys_off + offsetBaddr,
                   "baddr not cleared on the wire (sid=" +
                       std::to_string(baddr::sidOf(b)) + " tid=" +
                       std::to_string(baddr::tidOf(b)) + " rel=" +
                       std::to_string(baddr::relOf(b)) + ")");
    }

    // Size from the klass layout. A heterogeneous-format sender has
    // already rewritten the record into the wire format, so instance
    // sizes shift by the header delta and arrays are computed directly
    // against the wire geometry.
    std::ptrdiff_t delta =
        static_cast<std::ptrdiff_t>(k->format().headerBytes()) -
        static_cast<std::ptrdiff_t>(wf.headerBytes());
    std::size_t size = 0;
    std::uint64_t array_len = 0;
    if (k->isArray()) {
        if (remaining < wf.arrayHeaderBytes()) {
            report(WireFault::TruncatedRecord, phys_off,
                   "segment ends inside an array header");
            return 0;
        }
        array_len = wordAt(rec + wf.arrayLengthOffset());
        if (array_len > maxPlausibleArrayLength) {
            report(WireFault::MisalignedRecord,
                   phys_off + wf.arrayLengthOffset(),
                   "implausible array length " +
                       std::to_string(array_len) + " for " + k->name());
            return 0;
        }
        size = wordAlign(wf.arrayHeaderBytes() +
                         static_cast<std::size_t>(array_len) *
                             k->elemSize());
    } else {
        size = static_cast<std::size_t>(
            static_cast<std::ptrdiff_t>(k->instanceBytes()) - delta);
    }

    if (size % wordSize != 0 || size < wf.headerBytes()) {
        report(WireFault::MisalignedRecord, phys_off,
               k->name() + " record size " + std::to_string(size) +
                   " is not a word-aligned object size");
        return 0;
    }
    if (size > remaining) {
        report(WireFault::TruncatedRecord, phys_off,
               k->name() + " record needs " + std::to_string(size) +
                   " bytes, segment has " + std::to_string(remaining));
        return 0;
    }

    // Reference slots: collect for the deferred (forward-reference)
    // check. Slot offsets are laid out against the klass's own format;
    // shift by the header delta to land on the wire offsets.
    auto noteSlot = [&](std::size_t wire_off) {
        Word slot = wordAt(rec + wire_off);
        if (slot == 0)
            return;
        pendingRefs_.push_back(
            PendingRef{slot - 1, phys_off + wire_off});
        index_.refSlotOffsets.push_back(phys_off + wire_off);
        ++sum_.refSlots;
    };
    if (k->isArray()) {
        if (k->elemType() == FieldType::Ref) {
            std::size_t base = wf.arrayHeaderBytes();
            for (std::uint64_t i = 0; i < array_len; ++i)
                noteSlot(base + static_cast<std::size_t>(i) * wordSize);
        }
    } else {
        for (std::uint32_t off : k->refOffsets())
            noteSlot(static_cast<std::size_t>(
                static_cast<std::ptrdiff_t>(off) - delta));
    }

    index_.records.push_back(
        WireIndex::Record{phys_off, logical_, size, k->isArray()});
    return size;
}

void
WireValidator::feed(const std::uint8_t *data, std::size_t len)
{
    std::size_t off = 0;
    while (off < len) {
        if (diags_.size() >= cfg_.maxDiagnostics)
            break;
        std::uint64_t phys = physical_ + off;
        std::size_t remaining = len - off;
        if (remaining < wordSize) {
            report(WireFault::TruncatedRecord, phys,
                   "segment tail smaller than one word");
            break;
        }

        Word first = wordAt(data + off);
        if (marker::isMarker(first)) {
            if (first == marker::topMark) {
                if (awaitingTopRecord_)
                    report(WireFault::BadRootRecord, phys,
                           "duplicated top mark: previous top mark at +" +
                               std::to_string(awaitingTopOffset_) +
                               " has no record");
                awaitingTopRecord_ = true;
                awaitingTopOffset_ = phys;
                index_.topMarkOffsets.push_back(phys);
                ++sum_.topMarks;
                off += wordSize;
                continue;
            }
            if (first == marker::backRef) {
                if (awaitingTopRecord_) {
                    report(WireFault::BadRootRecord, phys,
                           "top mark at +" +
                               std::to_string(awaitingTopOffset_) +
                               " followed by a marker, not a record");
                    awaitingTopRecord_ = false;
                }
                if (remaining < 2 * wordSize) {
                    report(WireFault::TruncatedRecord, phys,
                           "backward reference missing its slot word");
                    break;
                }
                Word slot = wordAt(data + off + wordSize);
                // Backward references name objects decoded earlier in
                // this stream, so the check is immediate.
                if (slot != 0 && !isRecordStart(slot - 1))
                    report(WireFault::BadRootRecord, phys + wordSize,
                           "backward root reference " +
                               std::to_string(slot - 1) +
                               " is not a decoded object start");
                index_.backRefOffsets.push_back(phys);
                ++sum_.backRefs;
                off += 2 * wordSize;
                continue;
            }
            report(WireFault::UnknownMarker, phys,
                   "marker bits set but word " + std::to_string(first) +
                       " is neither a top mark nor a backward "
                       "reference");
            break;
        }

        std::size_t size = scanRecord(data + off, remaining, phys);
        if (size == 0)
            break; // fatal: cannot re-synchronize within this segment
        recordStarts_.push_back(logical_);
        awaitingTopRecord_ = false;
        ++sum_.records;
        logical_ += size;
        off += size;
    }
    physical_ += len;
    sum_.physicalBytes = physical_;
    sum_.logicalBytes = logical_;
}

void
WireValidator::finish()
{
    for (const PendingRef &p : pendingRefs_) {
        if (p.target >= logical_)
            report(WireFault::DanglingReference, p.slotOffset,
                   "reference " + std::to_string(p.target) +
                       " is outside [0, " + std::to_string(logical_) +
                       ")");
        else if (!isRecordStart(p.target))
            report(WireFault::DanglingReference, p.slotOffset,
                   "reference " + std::to_string(p.target) +
                       " does not land on a decoded object start");
    }
    pendingRefs_.clear();
    if (awaitingTopRecord_) {
        report(WireFault::BadRootRecord, awaitingTopOffset_,
               "top mark at end of stream has no record");
        awaitingTopRecord_ = false;
    }
}

std::string
WireValidator::firstFault() const
{
    return diags_.empty() ? std::string() : diags_.front().str();
}

} // namespace sanitize
} // namespace skyway
