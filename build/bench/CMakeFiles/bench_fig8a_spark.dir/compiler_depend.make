# Empty compiler generated dependencies file for bench_fig8a_spark.
# This may be replaced when dependencies are built.
