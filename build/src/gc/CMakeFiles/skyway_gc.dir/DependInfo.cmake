
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gc/collector.cc" "src/gc/CMakeFiles/skyway_gc.dir/collector.cc.o" "gcc" "src/gc/CMakeFiles/skyway_gc.dir/collector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/heap/CMakeFiles/skyway_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/klass/CMakeFiles/skyway_klass.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/skyway_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
