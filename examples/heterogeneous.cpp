/**
 * @file
 * Heterogeneous-cluster transfer (paper section 3.1): the sender
 * runs the Skyway object layout (with the baddr header word), the
 * receiver a vanilla layout without it. The sender's FormatAdjuster
 * rewrites every clone while copying — the receiver pays nothing and
 * uses the objects directly in its own format.
 */

#include <cstdio>

#include "skyway/jvm.hh"
#include "skyway/streams.hh"

using namespace skyway;

int
main()
{
    ClassCatalog catalog = makeStandardCatalog();
    catalog.define(ClassDef{
        "demo.Measurement",
        "",
        {
            {"label", FieldType::Ref, "java.lang.String"},
            {"values", FieldType::Ref, "[D"},
        },
    });

    ClusterNetwork net(2);
    Jvm sender(catalog, net, 0, 0); // Skyway layout (default)

    HeapConfig vanilla;
    vanilla.format.hasBaddr = false; // 16-byte headers
    Jvm receiver(catalog, net, 1, 0, vanilla);

    std::printf("sender header:   %zu bytes per object (Skyway "
                "layout)\n",
                sender.heap().format().headerBytes());
    std::printf("receiver header: %zu bytes per object (vanilla "
                "layout)\n\n",
                receiver.heap().format().headerBytes());

    // Build a measurement on the sender.
    Klass *mk = sender.klasses().load("demo.Measurement");
    LocalRoots roots(sender.heap());
    std::size_t label =
        roots.push(sender.builder().makeString("experiment-42"));
    std::size_t values = roots.push(sender.builder().makeDoubleArray(
        {1.5, 2.25, 3.75, 5.0, 8.125}));
    std::size_t m = roots.push(sender.heap().allocateInstance(mk));
    field::setRef(sender.heap(), roots.get(m),
                  mk->requireField("label"), roots.get(label));
    field::setRef(sender.heap(), roots.get(m),
                  mk->requireField("values"), roots.get(values));

    // Transfer with the receiver's format as the target: each clone
    // is adjusted while it is copied into the output buffer.
    sender.skyway().shuffleStart();
    SkywayObjectInputStream in(receiver.skyway());
    SkywayObjectOutputStream out(
        sender.skyway(),
        [&in](const std::uint8_t *d, std::size_t n) { in.feed(d, n); },
        defaultOutputBufferBytes, receiver.heap().format());
    out.writeObject(roots.get(m));
    out.flush();
    in.finish();

    Address got = in.readObject();
    Klass *rk = receiver.klasses().load("demo.Measurement");
    Address rlabel = field::getRef(receiver.heap(), got,
                                   rk->requireField("label"));
    Address rvalues = field::getRef(receiver.heap(), got,
                                    rk->requireField("values"));
    std::printf("received '%s' with %lld samples:",
                receiver.builder().stringValue(rlabel).c_str(),
                static_cast<long long>(
                    receiver.heap().arrayLength(rvalues)));
    for (int i = 0; i < receiver.heap().arrayLength(rvalues); ++i)
        std::printf(" %.3f",
                    array::get<double>(receiver.heap(), rvalues, i));
    std::printf("\nbytes on the wire: %llu (%llu would have been "
                "needed in the sender's own format)\n",
                static_cast<unsigned long long>(out.totalBytes()),
                static_cast<unsigned long long>(
                    out.totalBytes() +
                    8 * out.stats().objectsCopied));
    return 0;
}
