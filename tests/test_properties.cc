/**
 * @file
 * Property-style sweeps: randomized object graphs (mixed classes,
 * arrays, strings, sharing, cycles, nulls) must round-trip through
 * every transport — the Java serializer, Kryo, and Skyway under
 * several buffer/chunk geometries — and arrive isomorphic, with
 * Skyway additionally preserving cached identity hashes. Each seed is
 * an independent test case.
 */

#include <gtest/gtest.h>

#include "sd/javaserializer.hh"
#include "sd/kryoserializer.hh"
#include "skyway/streams.hh"
#include "support/rng.hh"
#include "testclasses.hh"

namespace skyway
{
namespace
{

using testing_support::makeTestCatalog;

/**
 * Build a random object graph: @p n objects of mixed shapes whose
 * reference slots are wired randomly to earlier or later objects
 * (sharing, forward references, cycles). Returns the root slot of a
 * Pair array holding every object.
 */
std::size_t
buildRandomGraph(Jvm &jvm, LocalRoots &roots, Rng &rng, int n)
{
    ManagedHeap &h = jvm.heap();
    Klass *pairK = jvm.klasses().load("test.Pair");
    Klass *nodeK = jvm.klasses().load("test.Node");

    std::vector<std::size_t> objs;
    for (int i = 0; i < n; ++i) {
        switch (rng.nextBounded(5)) {
          case 0: {
            Address p = h.allocateInstance(pairK);
            objs.push_back(roots.push(p));
            break;
          }
          case 1: {
            Address node = h.allocateInstance(nodeK);
            field::set<std::int64_t>(h, node,
                                     nodeK->requireField("value"),
                                     static_cast<std::int64_t>(
                                         rng.nextU64()));
            objs.push_back(roots.push(node));
            break;
          }
          case 2: {
            std::string s = "str-" +
                            std::to_string(rng.nextBounded(1000));
            objs.push_back(roots.push(jvm.builder().makeString(s)));
            // Warm some content hashes.
            if (rng.nextBounded(2))
                jvm.builder().stringHash(roots.get(objs.back()));
            break;
          }
          case 3: {
            std::vector<std::int32_t> data(rng.nextBounded(20));
            for (auto &x : data)
                x = static_cast<std::int32_t>(rng.nextU32());
            objs.push_back(
                roots.push(jvm.builder().makeIntArray(data)));
            break;
          }
          default: {
            Address arr = jvm.builder().makeRefArray(
                "test.Pair", 1 + rng.nextBounded(4));
            objs.push_back(roots.push(arr));
            break;
          }
        }
    }

    // Random wiring: every reference slot points at a random object
    // (or stays null) — cycles and cross-links arise naturally.
    for (std::size_t slot : objs) {
        Address a = roots.get(slot);
        const Klass *k = h.klassOf(a);
        auto wire = [&](std::size_t off) {
            if (rng.nextBounded(4) == 0)
                return; // keep a null
            Address target =
                roots.get(objs[rng.nextBounded(objs.size())]);
            h.storeRef(a, off, target);
        };
        if (k->isArray() && k->elemType() == FieldType::Ref) {
            auto len = static_cast<std::size_t>(h.arrayLength(a));
            for (std::size_t i = 0; i < len; ++i)
                wire(h.arrayElemOffset(k, i));
        } else if (!k->isArray()) {
            for (std::uint32_t off : k->refOffsets()) {
                // Do not rewire String.value (it must stay a char[]).
                if (k->name() == "java.lang.String")
                    continue;
                wire(off);
            }
        }
    }

    // Root: an array referencing every object, so the whole soup is
    // one transferable graph.
    Address rootArr = jvm.builder().makeRefArray("test.Pair",
                                                 objs.size());
    std::size_t rslot = roots.push(rootArr);
    for (std::size_t i = 0; i < objs.size(); ++i)
        array::setRef(h, roots.get(rslot), i, roots.get(objs[i]));
    return rslot;
}

class RandomGraphTest : public ::testing::TestWithParam<int>
{
  protected:
    RandomGraphTest()
        : catalog_(makeTestCatalog()),
          net_(2),
          sender_(catalog_, net_, 0, 0),
          receiver_(catalog_, net_, 1, 0)
    {}

    ClassCatalog catalog_;
    ClusterNetwork net_;
    Jvm sender_;
    Jvm receiver_;
};

TEST_P(RandomGraphTest, SkywayRoundTripPreservesGraphAndHashes)
{
    Rng rng(1000 + GetParam());
    LocalRoots roots(sender_.heap());
    std::size_t root = buildRandomGraph(sender_, roots, rng,
                                        40 + GetParam() * 17);
    // Vary buffer/chunk geometry with the seed.
    std::size_t buf = 256u << (GetParam() % 5);
    std::size_t chunk = 512u << (GetParam() % 4);

    sender_.skyway().shuffleStart();
    SkywayObjectInputStream in(receiver_.skyway(), chunk);
    SkywayObjectOutputStream out(
        sender_.skyway(),
        [&in](const std::uint8_t *d, std::size_t n) { in.feed(d, n); },
        std::max<std::size_t>(buf, 64));
    out.writeObject(roots.get(root));
    out.flush();
    in.finish();
    Address got = in.buffer().roots().at(0);
    EXPECT_TRUE(graphsEqual(sender_.heap(), roots.get(root),
                            receiver_.heap(), got, true))
        << "seed " << GetParam();
}

TEST_P(RandomGraphTest, ByteSerializersRoundTrip)
{
    Rng rng(5000 + GetParam());
    LocalRoots roots(sender_.heap());
    std::size_t root =
        buildRandomGraph(sender_, roots, rng, 30 + GetParam() * 11);

    auto reg = std::make_shared<KryoRegistry>();
    kryoRegisterBuiltins(*reg);
    reg->registerClass("test.Pair");
    reg->registerClass("test.Node");
    reg->registerClass("[Ltest.Pair;");

    JavaSerializer jser(SdEnv{sender_.heap(), sender_.klasses()});
    JavaSerializer jdes(SdEnv{receiver_.heap(), receiver_.klasses()});
    KryoSerializer kser(SdEnv{sender_.heap(), sender_.klasses()},
                        *reg);
    KryoSerializer kdes(SdEnv{receiver_.heap(), receiver_.klasses()},
                        *reg);

    for (int which = 0; which < 2; ++which) {
        Serializer &ser = which ? static_cast<Serializer &>(kser)
                                : jser;
        Serializer &des = which ? static_cast<Serializer &>(kdes)
                                : jdes;
        VectorSink sink;
        ser.writeObject(roots.get(root), sink);
        ser.endStream(sink);
        ByteSource src(sink.bytes());
        Address got = des.readObject(src);
        EXPECT_TRUE(graphsEqual(sender_.heap(), roots.get(root),
                                receiver_.heap(), got))
            << (which ? "kryo" : "java") << " seed " << GetParam();
    }
}

TEST_P(RandomGraphTest, SkywayAgreesWithJavaOnTheSameGraph)
{
    // Cross-transport oracle: the Skyway copy and the Java-serializer
    // copy of the same graph must be isomorphic to each other.
    Rng rng(9000 + GetParam());
    LocalRoots roots(sender_.heap());
    std::size_t root =
        buildRandomGraph(sender_, roots, rng, 25 + GetParam() * 7);

    SkywaySerializer sser(sender_.skyway());
    SkywaySerializer sdes(receiver_.skyway());
    VectorSink ssink;
    sser.writeObject(roots.get(root), ssink);
    sser.endStream(ssink);
    ByteSource ssrc(ssink.bytes());
    Address viaSkyway = sdes.readObject(ssrc);

    JavaSerializer jser(SdEnv{sender_.heap(), sender_.klasses()});
    JavaSerializer jdes(SdEnv{receiver_.heap(), receiver_.klasses()});
    VectorSink jsink;
    jser.writeObject(roots.get(root), jsink);
    ByteSource jsrc(jsink.bytes());
    Address viaJava = jdes.readObject(jsrc);

    EXPECT_TRUE(graphsEqual(receiver_.heap(), viaSkyway,
                            receiver_.heap(), viaJava))
        << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Range(0, 12));

/** GC interleaving property: scavenges and full GCs at arbitrary
 *  points must never change what a subsequent transfer delivers. */
class GcInterleavingTest : public ::testing::TestWithParam<int>
{
};

TEST_P(GcInterleavingTest, TransferAfterCollectionsIsIdentical)
{
    ClassCatalog cat = makeTestCatalog();
    ClusterNetwork net(2);
    HeapConfig small;
    small.edenBytes = 128 << 10;
    small.survivorBytes = 64 << 10;
    Jvm sender(cat, net, 0, 0, small);
    Jvm receiver(cat, net, 1, 0);

    Rng rng(300 + GetParam());
    LocalRoots roots(sender.heap());
    std::size_t root =
        buildRandomGraph(sender, roots, rng, 60 + GetParam() * 13);

    // Capture a reference copy first.
    sender.skyway().shuffleStart();
    SkywayObjectInputStream in1(receiver.skyway());
    SkywayObjectOutputStream out1(
        sender.skyway(),
        [&in1](const std::uint8_t *d, std::size_t n) {
            in1.feed(d, n);
        });
    out1.writeObject(roots.get(root));
    out1.flush();
    in1.finish();
    Address before = in1.buffer().roots().at(0);

    // Churn the sender's heap: garbage + collections move everything.
    for (int i = 0; i < 2000; ++i)
        sender.builder().makeString("garbage-" + std::to_string(i));
    sender.gc().scavenge();
    sender.gc().fullGc();

    // Transfer again in a fresh phase: same graph must come out.
    sender.skyway().shuffleStart();
    SkywayObjectInputStream in2(receiver.skyway());
    SkywayObjectOutputStream out2(
        sender.skyway(),
        [&in2](const std::uint8_t *d, std::size_t n) {
            in2.feed(d, n);
        });
    out2.writeObject(roots.get(root));
    out2.flush();
    in2.finish();
    Address after = in2.buffer().roots().at(0);

    EXPECT_TRUE(graphsEqual(receiver.heap(), before, receiver.heap(),
                            after, true))
        << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcInterleavingTest,
                         ::testing::Range(0, 6));

} // namespace
} // namespace skyway
