/**
 * @file
 * A deterministic TPC-H-shaped data generator. Stands in for the
 * 100 GB dbgen dataset the paper feeds Flink (section 5.3): same
 * schemas and value distributions in miniature, so the five queries
 * QA-QE (paper Table 3) exercise the same operator and shuffle
 * shapes. Dates are day numbers counted from 1992-01-01; the
 * generated range spans seven years, as in dbgen.
 */

#ifndef SKYWAY_WORKLOADS_TPCH_HH
#define SKYWAY_WORKLOADS_TPCH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "klass/klass.hh"
#include "support/rng.hh"

namespace skyway
{

/** Scale knob: 1.0 ~ a few hundred thousand lineitems. */
struct TpchSpec
{
    double scale = 1.0;
    std::uint64_t seed = 7001;

    std::size_t customers() const { return scaled(15000); }
    std::size_t suppliers() const { return scaled(1000); }
    std::size_t parts() const { return scaled(20000); }
    std::size_t partsupps() const { return parts() * 4; }
    std::size_t orders() const { return scaled(150000); }

    std::size_t
    scaled(std::size_t base) const
    {
        auto n = static_cast<std::size_t>(base * scale);
        return n < 1 ? 1 : n;
    }
};

/** Plain-struct rows; miniflink materializes them as heap objects. */
struct TpchData
{
    struct Region
    {
        std::int32_t key;
        std::string name;
    };

    struct Nation
    {
        std::int32_t key;
        std::string name;
        std::int32_t regionKey;
    };

    struct Customer
    {
        std::int32_t key;
        std::string name;
        std::int32_t nationKey;
        double acctbal;
        std::string mktsegment;
    };

    struct Supplier
    {
        std::int32_t key;
        std::string name;
        std::int32_t nationKey;
        double acctbal;
    };

    struct Part
    {
        std::int32_t key;
        std::string name;
        std::string mfgr;
        double retailPrice;
    };

    struct PartSupp
    {
        std::int32_t partKey;
        std::int32_t suppKey;
        double supplyCost;
    };

    struct Order
    {
        std::int64_t key;
        std::int32_t custKey;
        char orderStatus;
        double totalPrice;
        std::int32_t orderDate;
        std::string orderPriority;
    };

    struct Lineitem
    {
        std::int64_t orderKey;
        std::int32_t partKey;
        std::int32_t suppKey;
        std::int32_t lineNumber;
        double quantity;
        double extendedPrice;
        double discount;
        double tax;
        char returnFlag;
        char lineStatus;
        std::int32_t shipDate;
        std::int32_t commitDate;
        std::int32_t receiptDate;
        std::string shipMode;
    };

    std::vector<Region> region;
    std::vector<Nation> nation;
    std::vector<Customer> customer;
    std::vector<Supplier> supplier;
    std::vector<Part> part;
    std::vector<PartSupp> partsupp;
    std::vector<Order> orders;
    std::vector<Lineitem> lineitem;
};

/** Last representable date (1998-12-31 as a day number). */
constexpr std::int32_t tpchMaxDate = 2557;

/** Generate the full database for @p spec. */
TpchData generateTpch(const TpchSpec &spec);

/** Register the tpch.* row classes with an application catalog. */
void defineTpchClasses(ClassCatalog &catalog);

} // namespace skyway

#endif // SKYWAY_WORKLOADS_TPCH_HH
