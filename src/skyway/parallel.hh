/**
 * @file
 * Multi-threaded sender fan-out (the paper's "Support for Threads",
 * section 4.2). A ParallelSender partitions a root set across N
 * worker threads, each owning one SkywayObjectOutputStream — its own
 * output buffer, stream id, and flush sink — to the same destination.
 * Workers race on the shared parts of the graph through the existing
 * baddr protocol: a CAS claim stamps the winning stream's id into the
 * object header, and a stream that loses the race falls back to its
 * local hash table and duplicates the object in its own buffer
 * (paper semantics: cross-stream sharing degrades to per-stream
 * copies, never to corruption).
 *
 * Because every stream carries its own id in the baddr `tid` bytes,
 * the N per-thread streams interleave freely on the wire; the
 * receiver rebuilds each stream in its own input buffer, exactly as
 * with N independent single-threaded senders.
 */

#ifndef SKYWAY_SKYWAY_PARALLEL_HH
#define SKYWAY_SKYWAY_PARALLEL_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "skyway/streams.hh"

namespace skyway
{

struct ParallelSendConfig
{
    /** Worker thread count (1 = run inline on the caller). */
    unsigned threads = 1;
    /** Per-stream output-buffer capacity. */
    std::size_t bufferBytes = defaultOutputBufferBytes;
    /** Receiver's object format (default: homogeneous cluster). */
    std::optional<ObjectFormat> targetFormat;
};

/** What one fan-out transferred, aggregated and per worker. */
struct ParallelSendReport
{
    /** Sum of the per-worker stream stats. */
    SkywaySendStats total;
    std::vector<SkywaySendStats> perWorker;
    /** Flushed bytes across all streams (markers included). */
    std::uint64_t totalBytes = 0;
    /** Wall time of the slowest worker (copy + blocking flushes). */
    std::uint64_t maxWorkerNs = 0;
};

class ParallelSender
{
  public:
    /**
     * Builds the flush sink for worker @p worker's stream — for a
     * socket fan-out, a per-stream tag toward the shared destination.
     * Called once per worker, on the constructing thread. The sink
     * itself runs on that worker's thread and may block (socket
     * backpressure); it must not touch another worker's state.
     */
    using SinkFactory =
        std::function<OutputBuffer::FlushFn(unsigned worker)>;

    /**
     * Streams (and their ids) are created here, on the calling
     * thread, so stream-id assignment is deterministic and the
     * registry slow path (first tid of each class) is the only
     * cross-thread contention left for the workers.
     */
    ParallelSender(SkywayContext &ctx, SinkFactory sinks,
                   ParallelSendConfig cfg = ParallelSendConfig{});

    ~ParallelSender();

    ParallelSender(const ParallelSender &) = delete;
    ParallelSender &operator=(const ParallelSender &) = delete;

    /**
     * Transfer the graphs rooted at @p roots: root i goes to worker
     * i mod N, every worker runs writeObject over its share and
     * flushes its stream, and the call returns when all workers have
     * joined. Also sets the `skyway.sender.threads` gauge.
     */
    ParallelSendReport send(const std::vector<Address> &roots);

    unsigned threads() const { return threads_; }
    const SkywayObjectOutputStream &stream(unsigned worker) const
    {
        return *streams_[worker];
    }

  private:
    unsigned threads_;
    std::vector<std::unique_ptr<SkywayObjectOutputStream>> streams_;
};

} // namespace skyway

#endif // SKYWAY_SKYWAY_PARALLEL_HH
