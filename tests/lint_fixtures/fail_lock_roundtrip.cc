// lint-invariants fixture (MUST FAIL rule 2): a registry-view mutex
// held across the blocking LOOKUP round trip. Not compiled — parsed
// by tools/lint_invariants.py --selftest.

int
idForClassBad(Net &net_, const char *name)
{
    MutexLock lock(mutex_);
    auto it = view_.find(name);
    if (it != view_.end())
        return it->second;
    // Round trip with the lock held: the handler thread that serves
    // this request may need mutex_ itself.
    auto reply = net_.request(driver_, lookupTag, encode(name));
    return decode(reply);
}
