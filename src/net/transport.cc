#include "net/transport.hh"

#include "net/model_transport.hh"
#include "net/tcp_transport.hh"
#include "support/logging.hh"

namespace skyway
{

const char *
transportKindName(TransportKind kind)
{
    switch (kind) {
      case TransportKind::Model:
        return "model";
      case TransportKind::Tcp:
        return "tcp";
    }
    panic("transportKindName: unknown kind");
}

std::optional<TransportKind>
parseTransportKind(std::string_view name)
{
    if (name == "model")
        return TransportKind::Model;
    if (name == "tcp")
        return TransportKind::Tcp;
    return std::nullopt;
}

std::unique_ptr<Transport>
makeTransport(TransportKind kind, int node_count, WireCounters &wire,
              const TransportOptions &options)
{
    switch (kind) {
      case TransportKind::Model:
        return std::make_unique<ModelTransport>(node_count);
      case TransportKind::Tcp:
        return std::make_unique<TcpTransport>(node_count, wire, options);
    }
    panic("makeTransport: unknown kind");
}

} // namespace skyway
