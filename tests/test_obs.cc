/**
 * @file
 * Tests for the observability subsystem (src/obs): lock-free
 * counters/gauges/histograms under concurrency, bucket boundary
 * placement, snapshot deltas, the JSON writer/validator pair, the
 * span tracer's phase segmentation, and agreement between the
 * registry-backed `skyway.sender.*` metrics and the legacy per-stream
 * SkywaySendStats on a known object graph.
 */

#include <gtest/gtest.h>

#include <thread>

#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "skyway/streams.hh"
#include "testclasses.hh"

namespace skyway
{
namespace
{

using testing_support::makeList;
using testing_support::makeTestCatalog;

std::int64_t
scalarOf(const obs::MetricsSnapshot &s, const std::string &name)
{
    for (const auto &[k, v] : s.scalars)
        if (k == name)
            return v;
    return -1;
}

TEST(ObsMetrics, CounterConcurrentAdds)
{
    obs::MetricsRegistry reg;
    obs::Counter &c = reg.counter("test.hits");
    constexpr int kThreads = 4;
    constexpr int kPerThread = 100000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (int i = 0; i < kPerThread; ++i)
                c.inc();
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(),
              std::uint64_t{kThreads} * kPerThread);
}

TEST(ObsMetrics, CounterReferenceIsStable)
{
    obs::MetricsRegistry reg;
    obs::Counter &a = reg.counter("test.stable");
    // Registering many other names must not move the first counter.
    for (int i = 0; i < 100; ++i)
        reg.counter("test.filler." + std::to_string(i));
    obs::Counter &b = reg.counter("test.stable");
    EXPECT_EQ(&a, &b);
    a.add(7);
    EXPECT_EQ(b.value(), 7u);
}

TEST(ObsMetrics, GaugeMovesBothWays)
{
    obs::MetricsRegistry reg;
    obs::Gauge &g = reg.gauge("test.level");
    g.set(10);
    g.add(-25);
    EXPECT_EQ(g.value(), -15);
}

TEST(ObsMetrics, HistogramBucketBoundaries)
{
    obs::MetricsRegistry reg;
    obs::Histogram &h = reg.histogram("test.lat", {10, 100, 1000});
    // Bucket i counts samples <= bounds[i]; boundary values land in
    // their own bucket, one past the boundary in the next.
    h.record(0);
    h.record(10);   // bucket 0 (<= 10)
    h.record(11);   // bucket 1
    h.record(100);  // bucket 1 (<= 100)
    h.record(101);  // bucket 2
    h.record(1000); // bucket 2 (<= 1000)
    h.record(1001); // overflow
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 2u);
    EXPECT_EQ(h.bucketCount(3), 1u); // overflow slot
    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.sum(), 0u + 10 + 11 + 100 + 101 + 1000 + 1001);
    EXPECT_EQ(h.max(), 1001u);
}

TEST(ObsMetrics, HistogramConcurrentRecords)
{
    obs::MetricsRegistry reg;
    obs::Histogram &h = reg.histogram("test.conc", {50});
    constexpr int kThreads = 4;
    constexpr int kPerThread = 50000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&h, t] {
            // Thread t records the constant t*40: threads 0/1 fall in
            // bucket 0 (<= 50), threads 2/3 overflow.
            for (int i = 0; i < kPerThread; ++i)
                h.record(static_cast<std::uint64_t>(t) * 40);
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(h.count(), std::uint64_t{kThreads} * kPerThread);
    EXPECT_EQ(h.bucketCount(0), 2u * kPerThread);
    EXPECT_EQ(h.bucketCount(1), 2u * kPerThread);
    EXPECT_EQ(h.max(), 120u);
}

TEST(ObsMetrics, ExponentialBounds)
{
    auto b = obs::exponentialBounds(64, 4.0, 4);
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(b[0], 64u);
    EXPECT_EQ(b[1], 256u);
    EXPECT_EQ(b[2], 1024u);
    EXPECT_EQ(b[3], 4096u);
}

TEST(ObsMetrics, SnapshotDelta)
{
    obs::MetricsRegistry reg;
    reg.counter("test.a").add(5);
    obs::MetricsSnapshot before = reg.snapshot();
    reg.counter("test.a").add(3);
    reg.counter("test.late").add(9); // registered after `before`
    obs::MetricsSnapshot delta = reg.snapshot().deltaSince(before);
    EXPECT_EQ(scalarOf(delta, "test.a"), 3);
    EXPECT_EQ(scalarOf(delta, "test.late"), 9);
}

TEST(ObsMetrics, RegistryJsonValidates)
{
    obs::MetricsRegistry reg;
    reg.counter("test.c").add(2);
    reg.gauge("test.g").set(-4);
    reg.histogram("test.h", {10, 100}).record(42);
    std::string doc = reg.toJson();
    std::string err;
    EXPECT_TRUE(obs::jsonValidate(doc, err)) << err << "\n" << doc;
    EXPECT_NE(doc.find("\"test.c\":2"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"test.g\":-4"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"+Inf\""), std::string::npos) << doc;
}

TEST(ObsJson, WriterRoundTrip)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("s").value(std::string_view("quote \" slash \\ tab \t"));
    w.key("n").value(std::int64_t{-12});
    w.key("d").value(0.25);
    w.key("b").value(true);
    w.key("nil").null();
    w.key("arr");
    w.beginArray();
    w.value(std::uint64_t{1});
    w.value(std::uint64_t{2});
    w.endArray();
    w.endObject();
    std::string doc = std::move(w).str();
    std::string err;
    EXPECT_TRUE(obs::jsonValidate(doc, err)) << err << "\n" << doc;
    EXPECT_NE(doc.find("\\\""), std::string::npos);
    EXPECT_NE(doc.find("\\t"), std::string::npos);
}

TEST(ObsJson, ValidatorRejectsMalformed)
{
    std::string err;
    EXPECT_FALSE(obs::jsonValidate("", err));
    EXPECT_FALSE(obs::jsonValidate("{", err));
    EXPECT_FALSE(obs::jsonValidate("{]", err));
    EXPECT_FALSE(obs::jsonValidate("{\"a\":}", err));
    EXPECT_FALSE(obs::jsonValidate("tru", err));
    EXPECT_FALSE(obs::jsonValidate("1.2.3", err));
    EXPECT_FALSE(obs::jsonValidate("{} trailing", err));
    EXPECT_FALSE(obs::jsonValidate("\"unterminated", err));
    EXPECT_TRUE(obs::jsonValidate("{\"a\":[1,2,{\"b\":null}]}", err))
        << err;
}

TEST(ObsSpan, ScopedSpanRecords)
{
    obs::SpanStats stats;
    {
        obs::ScopedSpan s1(stats);
        obs::ScopedSpan s2(stats);
    }
    EXPECT_EQ(stats.count(), 2u);
    EXPECT_GT(stats.totalNs(), 0u);
    EXPECT_GE(stats.totalNs(), stats.maxNs());
}

TEST(ObsSpan, TracerPhasesAndJson)
{
    obs::SpanTracer &tracer = obs::SpanTracer::global();
    obs::SpanStats &stats = tracer.span("test.phase_span");
    std::uint64_t before = stats.count();
    {
        obs::ScopedSpan s(stats);
    }
    tracer.beginPhase("test-phase-boundary");
    EXPECT_EQ(stats.count(), before + 1);
    std::string doc = tracer.toJson();
    std::string err;
    EXPECT_TRUE(obs::jsonValidate(doc, err)) << err << "\n" << doc;
    EXPECT_NE(doc.find("test.phase_span"), std::string::npos) << doc;
}

TEST(ObsHeap, OccupancyGaugesTrackHeapLifecycle)
{
    ClassCatalog catalog = makeTestCatalog();
    obs::MetricsSnapshot before =
        obs::MetricsRegistry::global().snapshot();
    std::int64_t in_use_during = 0;
    {
        ClusterNetwork net(2);
        Jvm a(catalog, net, 0, 0);
        Jvm b(catalog, net, 1, 0);
        LocalRoots roots(a.heap());
        makeList(a, roots, 500);
        a.heap().notePeak();
        b.heap().notePeak();
        obs::MetricsSnapshot during =
            obs::MetricsRegistry::global().snapshot().deltaSince(
                before);
        in_use_during = scalarOf(during, "skyway.heap.in_use_bytes");
        EXPECT_GT(in_use_during, 0);
        // The peak gauge is a high-water mark: never below the level.
        EXPECT_GE(scalarOf(during, "skyway.heap.peak_bytes"),
                  in_use_during);
    }
    // Heaps destroyed: the level drops back out of the cluster-wide
    // gauge, while each heap's peak contribution stays.
    obs::MetricsSnapshot after =
        obs::MetricsRegistry::global().snapshot().deltaSince(before);
    EXPECT_EQ(scalarOf(after, "skyway.heap.in_use_bytes"), 0);
    EXPECT_GE(scalarOf(after, "skyway.heap.peak_bytes"),
              in_use_during);
}

TEST(ObsSender, RegistryMatchesLegacyStats)
{
    ClassCatalog catalog = makeTestCatalog();
    ClusterNetwork net(2);
    Jvm a(catalog, net, 0, 0);
    Jvm b(catalog, net, 1, 0);
    LocalRoots roots(a.heap());
    Address root = makeList(a, roots, 100);

    obs::MetricsSnapshot before =
        obs::MetricsRegistry::global().snapshot();

    a.skyway().shuffleStart();
    SkywayObjectInputStream in(b.skyway(), 64 << 10);
    SkywayObjectOutputStream out(
        a.skyway(),
        [&in](const std::uint8_t *d, std::size_t n) {
            in.feed(d, n);
        });
    out.writeObject(root);
    out.flush();
    in.finish();

    SkywaySendStats legacy = out.stats();
    obs::MetricsSnapshot delta =
        obs::MetricsRegistry::global().snapshot().deltaSince(before);

    EXPECT_GT(legacy.objectsCopied, 0u);
    EXPECT_EQ(scalarOf(delta, "skyway.sender.objects_copied"),
              static_cast<std::int64_t>(legacy.objectsCopied));
    EXPECT_EQ(scalarOf(delta, "skyway.sender.bytes_copied"),
              static_cast<std::int64_t>(legacy.bytesCopied));
    EXPECT_EQ(scalarOf(delta, "skyway.sender.top_marks"),
              static_cast<std::int64_t>(legacy.topMarks));
    EXPECT_EQ(scalarOf(delta, "skyway.sender.back_refs"),
              static_cast<std::int64_t>(legacy.backRefs));
    EXPECT_EQ(scalarOf(delta, "skyway.sender.header_bytes"),
              static_cast<std::int64_t>(legacy.headerBytes));
    EXPECT_EQ(scalarOf(delta, "skyway.sender.pointer_bytes"),
              static_cast<std::int64_t>(legacy.pointerBytes));
    EXPECT_EQ(scalarOf(delta, "skyway.sender.padding_bytes"),
              static_cast<std::int64_t>(legacy.paddingBytes));
    EXPECT_EQ(scalarOf(delta, "skyway.sender.data_bytes"),
              static_cast<std::int64_t>(legacy.dataBytes));

    // The receiver side published too: every copied object arrived.
    EXPECT_EQ(scalarOf(delta, "skyway.receiver.objects_received"),
              static_cast<std::int64_t>(legacy.objectsCopied));

    auto buf = in.releaseBuffer();
    ASSERT_NE(buf->roots().at(0), nullAddr);
    buf->free();
}

} // namespace
} // namespace skyway
