#include "net/cluster.hh"

#include "obs/metrics.hh"

namespace skyway
{

namespace
{

/** Registry-backed fabric counters, resolved once per process. */
struct NetMetrics
{
    obs::Counter &bytesSent;
    obs::Counter &messagesSent;
    obs::Counter &wireNs;
    obs::Counter &requests;
    obs::Histogram &messageBytes;

    static NetMetrics &
    get()
    {
        auto &r = obs::MetricsRegistry::global();
        static NetMetrics m{
            r.counter("net.bytes_sent"),
            r.counter("net.messages_sent"),
            r.counter("net.wire_ns"),
            r.counter("net.requests"),
            // 64 B .. ~16 MB in x4 steps: spans a type-registry
            // request through a full output-buffer flush.
            r.histogram("net.message_bytes",
                        obs::exponentialBounds(64, 4.0, 10)),
        };
        return m;
    }
};

} // namespace

ClusterNetwork::ClusterNetwork(int node_count, NetworkCostModel model,
                               TransportKind transport,
                               const TransportOptions &options)
    : nodeCount_(node_count),
      model_(model),
      kind_(transport),
      wireNs_(node_count),
      bytes_(static_cast<std::size_t>(node_count) * node_count),
      msgs_(node_count)
{
    panicIf(node_count <= 0, "ClusterNetwork: need at least one node");
    transport_ = makeTransport(kind_, node_count, wire_, options);
}

ClusterNetwork::~ClusterNetwork() = default;

void
ClusterNetwork::charge(NodeId src, NodeId dst, std::size_t bytes)
{
    if (src == dst)
        return; // loopback is free and not counted as remote bytes
    std::uint64_t ns = model_.transferNs(bytes);
    wireNs_[src].fetch_add(ns, std::memory_order_relaxed);
    bytes_[src * nodeCount_ + dst].fetch_add(bytes,
                                             std::memory_order_relaxed);
    msgs_[src].fetch_add(1, std::memory_order_relaxed);

    NetMetrics &m = NetMetrics::get();
    m.bytesSent.add(bytes);
    m.messagesSent.inc();
    m.wireNs.add(ns);
    m.messageBytes.record(bytes);
}

void
ClusterNetwork::send(NodeId src, NodeId dst, int tag,
                     std::vector<std::uint8_t> payload)
{
    panicIf(dst < 0 || dst >= nodeCount_, "send: bad destination");
    charge(src, dst, payload.size());
    transport_->send(src, dst, tag, std::move(payload));
}

bool
ClusterNetwork::poll(NodeId dst, NetMessage &out)
{
    return transport_->poll(dst, out);
}

bool
ClusterNetwork::pollTag(NodeId dst, int tag, NetMessage &out)
{
    return transport_->pollTag(dst, tag, out);
}

std::ptrdiff_t
ClusterNetwork::pollTagInto(NodeId dst, int tag,
                            const ReserveFn &reserve)
{
    return transport_->pollTagInto(dst, tag, reserve);
}

void
ClusterNetwork::registerHandler(NodeId node, RequestHandler handler)
{
    transport_->registerHandler(node, std::move(handler));
}

std::vector<std::uint8_t>
ClusterNetwork::request(NodeId src, NodeId dst, int tag,
                        const std::vector<std::uint8_t> &payload,
                        const RequestOptions &opts)
{
    charge(src, dst, payload.size());
    NetMetrics::get().requests.inc();
    std::vector<std::uint8_t> reply =
        transport_->request(src, dst, tag, payload, opts);
    // The requester blocks for the reply as well.
    if (src != dst) {
        std::uint64_t ns = model_.transferNs(reply.size());
        wireNs_[src].fetch_add(ns, std::memory_order_relaxed);
        NetMetrics::get().wireNs.add(ns);
    }
    return reply;
}

std::uint64_t
ClusterNetwork::totalBytesSent(NodeId src) const
{
    std::uint64_t total = 0;
    for (int d = 0; d < nodeCount_; ++d)
        total += bytes_[src * nodeCount_ + d].load(
            std::memory_order_relaxed);
    return total;
}

void
ClusterNetwork::resetAccounting()
{
    for (auto &v : wireNs_)
        v.store(0, std::memory_order_relaxed);
    for (auto &v : bytes_)
        v.store(0, std::memory_order_relaxed);
    for (auto &v : msgs_)
        v.store(0, std::memory_order_relaxed);
    wire_.reset();
}

} // namespace skyway
