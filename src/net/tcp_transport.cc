#include "net/tcp_transport.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <pthread.h>
#include <sched.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "net/frame.hh"
#include "obs/metrics.hh"
#include "support/logging.hh"
#include "support/stopwatch.hh"

namespace skyway
{

namespace
{

/** Registry-backed real-wire counters, resolved once per process. */
struct TcpMetrics
{
    obs::Counter &realWireNs;
    obs::Counter &framesSent;
    obs::Counter &connectRetries;
    obs::Counter &recvIntoBytes;
    obs::Counter &creditStallsNs;
    obs::Counter &epollWakeups;
    obs::Gauge &streamsActive;
    obs::Gauge &pooledConnections;

    static TcpMetrics &
    get()
    {
        auto &r = obs::MetricsRegistry::global();
        static TcpMetrics m{
            r.counter("net.real_wire_ns"),
            r.counter("net.frames_sent"),
            r.counter("net.connect_retries"),
            r.counter("net.recv_into_bytes"),
            r.counter("net.credit_stalls_ns"),
            r.counter("net.epoll_wakeups"),
            r.gauge("net.streams_active"),
            r.gauge("net.pooled_connections"),
        };
        return m;
    }
};

/** How long the event loop sleeps in epoll_wait when idle. */
constexpr int loopWaitMs = 50;

/** How long a stream may sit credit-stalled before the loop assumes
 *  its grant is trapped behind a parked inbound frame and stages that
 *  connection (2x the epoll timeout, so the check always fires while
 *  a genuine just-slow receiver rarely trips it). */
constexpr std::uint64_t stallRescueNs =
    2ull * loopWaitMs * 1'000'000ull;

/** Transient-connect retry budget (listen backlog overflow). */
constexpr int connectAttempts = 100;

/** epoll token classification (packed into epoll_event.data.u64). */
enum class FdKind : std::uint64_t
{
    Wake = 0,
    Listen = 1,
    Pair = 2,
    Ctrl = 3,
};

std::uint64_t
packToken(FdKind kind, NodeId peer, int fd)
{
    return (static_cast<std::uint64_t>(kind) << 56) |
           ((static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(peer)) & 0xFFFFFF) << 32) |
           static_cast<std::uint32_t>(fd);
}

/** Monotonic wall clock for stall bookkeeping. */
std::uint64_t
monoNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

[[noreturn]] void
sysErr(const char *what)
{
    panic(std::string("TcpTransport: ") + what + ": " +
          std::strerror(errno));
}

/** Read exactly @p len bytes; false on orderly EOF at a frame edge. */
bool
recvFully(int fd, std::uint8_t *buf, std::size_t len)
{
    std::size_t got = 0;
    while (got < len) {
        ssize_t n = ::recv(fd, buf + got, len - got, 0);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0) {
            panicIf(got != 0, "peer closed mid-frame");
            return false;
        }
        if (errno == EINTR)
            continue;
        sysErr("recv");
    }
    return true;
}

void
sendFully(int fd, const std::uint8_t *buf, std::size_t len)
{
    std::size_t sent = 0;
    while (sent < len) {
        ssize_t n = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
        if (n >= 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        sysErr("send");
    }
}

void
setNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/** The unordered-pair pool key. */
std::pair<NodeId, NodeId>
pairKey(NodeId a, NodeId b)
{
    return {std::min(a, b), std::max(a, b)};
}

/** Environment overrides for TransportOptions (docs/TRANSPORT.md §6). */
TransportOptions
applyEnv(TransportOptions opts)
{
    if (const char *e = std::getenv("SKYWAY_NET_CREDIT_BYTES")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(e, &end, 10);
        panicIf(end == e || v == 0,
                "SKYWAY_NET_CREDIT_BYTES must be a positive integer");
        opts.creditWindowBytes = static_cast<std::size_t>(v);
    }
    if (const char *e = std::getenv("SKYWAY_NET_QUEUE_LIMIT")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(e, &end, 10);
        panicIf(end == e,
                "SKYWAY_NET_QUEUE_LIMIT must be an integer (0 = off)");
        opts.maxQueuedBytesPerStream = static_cast<std::size_t>(v);
    }
    if (const char *e = std::getenv("SKYWAY_NET_AFFINITY"))
        opts.pinEventLoops = e[0] == '1';
    return opts;
}

} // namespace

TcpTransport::TcpTransport(int node_count, WireCounters &wire,
                           const TransportOptions &options)
    : nodeCount_(node_count),
      wire_(wire),
      options_(applyEnv(options)),
      handlers_(node_count)
{
    TcpMetrics::get(); // registration outside any hot path
    panicIf(options_.creditWindowBytes == 0,
            "TcpTransport: creditWindowBytes must be > 0");

    nodes_.reserve(node_count);
    for (int i = 0; i < node_count; ++i) {
        auto n = std::make_unique<Node>();

        n->listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (n->listenFd < 0)
            sysErr("socket");
        int one = 1;
        ::setsockopt(n->listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = 0; // kernel-assigned
        if (::bind(n->listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0)
            sysErr("bind");
        socklen_t alen = sizeof(addr);
        if (::getsockname(n->listenFd,
                          reinterpret_cast<sockaddr *>(&addr),
                          &alen) < 0)
            sysErr("getsockname");
        n->port = ntohs(addr.sin_port);
        if (::listen(n->listenFd, 128) < 0)
            sysErr("listen");
        // Non-blocking listener: the loop accepts until EAGAIN.
        ::fcntl(n->listenFd, F_SETFL, O_NONBLOCK);

        int pipefd[2];
        if (::pipe(pipefd) < 0)
            sysErr("pipe");
        // Non-blocking read end: the loop drains the pipe dry after a
        // wakeup without risking a block on an already-empty pipe.
        ::fcntl(pipefd[0], F_SETFL, O_NONBLOCK);
        n->wakeRead = pipefd[0];
        n->wakeWrite = pipefd[1];

        n->epollFd = ::epoll_create1(0);
        if (n->epollFd < 0)
            sysErr("epoll_create1");

        nodes_.push_back(std::move(n));

        epollAdd(i, packToken(FdKind::Wake, 0, pipefd[0]), pipefd[0]);
        epollAdd(i, packToken(FdKind::Listen, 0, nodes_[i]->listenFd),
                 nodes_[i]->listenFd);
    }

    // Loops start only after every listener exists: a node's first
    // frame may connect to any peer.
    for (int i = 0; i < node_count; ++i)
        nodes_[i]->loop = std::thread(&TcpTransport::eventLoop, this, i);
}

TcpTransport::~TcpTransport()
{
    running_.store(false, std::memory_order_relaxed);
    for (int i = 0; i < nodeCount_; ++i) {
        {
            // Release bounded-queue senders stuck in send().
            MutexLock lock(nodes_[i]->sendMutex);
        }
        nodes_[i]->sendCv.notify_all();
    }
    // A released sender still reads running_, and one that raced past
    // the wait still touches its stream queue and the wake pipe on
    // the way out — wait for every in-flight send() to leave before
    // any fd is closed or Node state freed.
    {
        MutexLock lock(sendersMutex_);
        while (inFlightSenders_ != 0)
            sendersCv_.wait(lock);
    }
    for (int i = 0; i < nodeCount_; ++i)
        wakeLoop(i);
    for (auto &n : nodes_) {
        if (n->loop.joinable())
            n->loop.join();
    }

    // Unwind the process-wide gauges this fabric contributed to, and
    // close every fd. The loops are joined and the senders drained,
    // but consumer threads may still be mid-poll (nothing stops a
    // reader outliving the fabric), so the guarded state below is
    // read under its owning locks like everywhere else — they are
    // uncontended by now and leaf-ordered, so this costs nothing.
    // (The unlocked reads that used to sit here were the first bug
    // the SkywayGuard annotations flagged; see
    // docs/STATIC_ANALYSIS.md and GaugesUnwindOnDestruction.)
    TcpMetrics &m = TcpMetrics::get();
    std::int64_t active = 0;
    for (auto &n : nodes_) {
        MutexLock lock(n->sendMutex);
        for (auto &[key, s] : n->streams) {
            if (s.active)
                ++active;
        }
    }
    if (active)
        m.streamsActive.add(-active);
    {
        MutexLock lock(poolMutex_);
        if (!pool_.empty())
            m.pooledConnections.add(
                -static_cast<std::int64_t>(pool_.size()));
    }

    for (auto &n : nodes_) {
        {
            MutexLock lock(poolMutex_);
            for (auto &[peer, fd] : n->pairFd)
                ::close(fd);
        }
        {
            MutexLock lock(n->ctrlMutex);
            for (auto &[dst, fd] : n->ctrlOut)
                ::close(fd);
        }
        for (int fd : n->ctrlIn)
            ::close(fd);
        ::close(n->listenFd);
        ::close(n->wakeRead);
        ::close(n->wakeWrite);
        ::close(n->epollFd);
    }
}

std::uint16_t
TcpTransport::listenPort(NodeId node) const
{
    return nodes_[node]->port;
}

void
TcpTransport::wakeLoop(NodeId node)
{
    std::uint8_t b = 0;
    ssize_t rc = ::write(nodes_[node]->wakeWrite, &b, 1);
    (void)rc; // a full pipe already guarantees a wakeup
}

void
TcpTransport::epollAdd(NodeId node, std::uint64_t token, int fd)
{
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = token;
    if (::epoll_ctl(nodes_[node]->epollFd, EPOLL_CTL_ADD, fd, &ev) < 0)
        sysErr("epoll_ctl(ADD)");
}

void
TcpTransport::epollDel(NodeId node, int fd)
{
    epoll_event ev{}; // ignored by DEL, but pre-2.6.9 kernels want it
    if (::epoll_ctl(nodes_[node]->epollFd, EPOLL_CTL_DEL, fd, &ev) < 0)
        sysErr("epoll_ctl(DEL)");
}

void
TcpTransport::writeTimed(int fd, const std::uint8_t *buf,
                         std::size_t len)
{
    Stopwatch sw;
    sendFully(fd, buf, len);
    std::uint64_t ns = sw.elapsedNs();
    wire_.realWireNs.fetch_add(ns, std::memory_order_relaxed);
    TcpMetrics::get().realWireNs.add(ns);
}

std::size_t
TcpTransport::nonblockSend(int fd, const std::uint8_t *p,
                           std::size_t len)
{
    Stopwatch sw;
    std::size_t sent = 0;
    while (sent < len) {
        ssize_t w = ::send(fd, p + sent, len - sent,
                           MSG_NOSIGNAL | MSG_DONTWAIT);
        if (w >= 0) {
            sent += static_cast<std::size_t>(w);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break; // socket full: the caller queues the rest
        sysErr("send");
    }
    if (sent) {
        std::uint64_t ns = sw.elapsedNs();
        wire_.realWireNs.fetch_add(ns, std::memory_order_relaxed);
        TcpMetrics::get().realWireNs.add(ns);
    }
    return sent;
}

void
TcpTransport::sendOrQueue(Node &n, NodeId peer, int fd,
                          const std::uint8_t *p, std::size_t len)
{
    MutexLock lock(n.outMutex);
    OutBuf &ob = n.outbound[fd];
    ob.peer = peer;
    if (ob.off >= ob.bytes.size()) {
        // Nothing queued ahead: write straight to the socket and
        // queue only what it refuses (the common, copy-free case).
        std::size_t sent = nonblockSend(fd, p, len);
        p += sent;
        len -= sent;
    }
    if (len)
        ob.bytes.insert(ob.bytes.end(), p, p + len);
    // Empty entries are reaped by the loop's next flushPairWrites.
}

bool
TcpTransport::flushOutBuf(Node &n, int fd, OutBuf &ob)
{
    (void)n; // present for the REQUIRES(n.outMutex) annotation only
    if (ob.off < ob.bytes.size())
        ob.off += nonblockSend(fd, ob.bytes.data() + ob.off,
                               ob.bytes.size() - ob.off);
    if (ob.off >= ob.bytes.size()) {
        ob.bytes.clear();
        ob.off = 0;
        return true;
    }
    if (ob.off >= (1u << 20)) {
        // Reclaim a megabyte of consumed prefix.
        ob.bytes.erase(ob.bytes.begin(),
                       ob.bytes.begin() +
                           static_cast<std::ptrdiff_t>(ob.off));
        ob.off = 0;
    }
    return false;
}

bool
TcpTransport::modPairInterest(NodeId node, NodeId peer, int fd,
                              bool wantOut)
{
    Node &n = *nodes_[node];
    MutexLock lock(n.recvMutex);
    for (const Parked &p : n.parked) {
        if (p.fd == fd)
            return false; // out of the epoll set while parked
    }
    epoll_event ev{};
    ev.events = EPOLLIN | (wantOut ? static_cast<unsigned>(EPOLLOUT)
                                   : 0u);
    ev.data.u64 = packToken(FdKind::Pair, peer, fd);
    if (::epoll_ctl(n.epollFd, EPOLL_CTL_MOD, fd, &ev) < 0)
        sysErr("epoll_ctl(MOD)");
    return true;
}

void
TcpTransport::flushPairWrites(NodeId node)
{
    Node &n = *nodes_[node];
    // Phase 1: drain under outMutex, noting which connections need
    // an interest change. Phase 2 applies the epoll MODs with
    // outMutex released — modPairInterest takes recvMutex, and a
    // consumer holding recvMutex may be help-flushing (recvMutex →
    // outMutex), so nesting the other way would invert lock order.
    struct Mod
    {
        int fd;
        NodeId peer;
        bool want;
    };
    std::vector<Mod> mods;
    {
        MutexLock lock(n.outMutex);
        for (auto it = n.outbound.begin(); it != n.outbound.end();) {
            OutBuf &ob = it->second;
            bool drained = flushOutBuf(n, it->first, ob);
            if (drained && !ob.armed) {
                it = n.outbound.erase(it);
                continue;
            }
            // Interest must mirror pending bytes: arm when blocked
            // and unarmed, disarm when drained and armed.
            if (drained == ob.armed)
                mods.push_back(Mod{it->first, ob.peer, !drained});
            ++it;
        }
    }
    for (const Mod &m : mods) {
        if (!modPairInterest(node, m.peer, m.fd, m.want))
            continue; // parked: retried after the claim re-arms it
        MutexLock lock(n.outMutex);
        auto it = n.outbound.find(m.fd);
        if (it == n.outbound.end())
            continue;
        it->second.armed = m.want;
        if (!m.want && it->second.off >= it->second.bytes.size())
            n.outbound.erase(it);
    }
}

void
TcpTransport::helpFlushPair(NodeId peer, NodeId toward)
{
    Node &pn = *nodes_[peer];
    int fd = -1;
    {
        MutexLock lock(poolMutex_);
        auto it = pn.pairFd.find(toward);
        if (it != pn.pairFd.end())
            fd = it->second;
    }
    if (fd < 0)
        return;
    MutexLock lock(pn.outMutex);
    auto it = pn.outbound.find(fd);
    if (it != pn.outbound.end())
        flushOutBuf(pn, fd, it->second); // arming stays the loop's job
}

void
TcpTransport::recvParkedPayload(NodeId node, NodeId peer, int fd,
                                std::uint8_t *buf, std::size_t len)
{
    std::size_t got = 0;
    while (got < len) {
        ssize_t r = ::recv(fd, buf + got, len - got, MSG_DONTWAIT);
        if (r > 0) {
            got += static_cast<std::size_t>(r);
            continue;
        }
        panicIf(r == 0, "peer closed mid-frame");
        if (errno == EINTR)
            continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK)
            sysErr("recv");
        // The missing bytes may still sit in the peer's user-space
        // outbound queue. Pump it ourselves: the peer's loop may be
        // blocked on THIS thread's recvMutex, so waiting for it
        // would deadlock the claim.
        helpFlushPair(peer, node);
        pollfd p{fd, POLLIN, 0};
        ::poll(&p, 1, 1);
    }
}

int
TcpTransport::connectTo(NodeId dst, const std::uint8_t *shake,
                        std::size_t shake_len)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(nodes_[dst]->port);

    for (int attempt = 0; attempt < connectAttempts; ++attempt) {
        if (attempt > 0) {
            wire_.connectRetries.fetch_add(1,
                                           std::memory_order_relaxed);
            TcpMetrics::get().connectRetries.inc();
            // Backlog overflow is transient: the loop accepts in
            // bounded time.
            struct timespec ts {0, 2'000'000}; // 2 ms
            ::nanosleep(&ts, nullptr);
        }
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            sysErr("socket");
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            setNoDelay(fd);
            sendFully(fd, shake, shake_len);
            return fd;
        }
        int err = errno;
        ::close(fd);
        if (err != ECONNREFUSED && err != EINTR && err != ETIMEDOUT &&
            err != EAGAIN)
            panic(std::string("TcpTransport: connect: ") +
                  std::strerror(err));
    }
    panic("TcpTransport: connect retries exhausted toward node " +
          std::to_string(dst));
}

int
TcpTransport::pairFdOrClaim(NodeId node, NodeId dst)
{
    Node &n = *nodes_[node];
    {
        MutexLock lock(poolMutex_);
        auto it = n.pairFd.find(dst);
        if (it != n.pairFd.end())
            return it->second;

        PairEntry &e = pool_[pairKey(node, dst)];
        if (e.claimed) {
            // The peer is mid-connect; our loop's accept completes
            // the pair. Never wait here — the accept event re-runs
            // the drain.
            return -1;
        }
        e.claimed = true;
        wire_.connectionsPooled.fetch_add(1,
                                          std::memory_order_relaxed);
        TcpMetrics::get().pooledConnections.add(1);
    }

    frame::Handshake h{frame::channelData, node};
    std::uint8_t shake[frame::handshakeBytes];
    frame::encodeHandshake(shake, h);
    // Connect with poolMutex_ dropped: a backlog-overflow retry can
    // sleep ~200 ms, and holding the transport-wide lock across that
    // would stall every node's grant delivery and accepts. The claim
    // above keeps the pair exclusive meanwhile (connectTo panics
    // rather than failing, so there is no unclaim path).
    int fd = connectTo(dst, shake, sizeof(shake));
    {
        MutexLock lock(poolMutex_);
        panicIf(n.pairFd.count(dst) != 0,
                "TcpTransport: duplicate pair connection toward "
                "node " + std::to_string(dst));
        n.pairFd.emplace(dst, fd);
    }
    epollAdd(node, packToken(FdKind::Pair, dst, fd), fd);
    return fd;
}

int
TcpTransport::ctrlConnFor(Node &n, NodeId src, NodeId dst)
{
    auto it = n.ctrlOut.find(dst);
    if (it != n.ctrlOut.end())
        return it->second;
    frame::Handshake h{frame::channelControl, src};
    std::uint8_t shake[frame::handshakeBytes];
    frame::encodeHandshake(shake, h);
    int fd = connectTo(dst, shake, sizeof(shake));
    n.ctrlOut.emplace(dst, fd);
    return fd;
}

void
TcpTransport::send(NodeId src, NodeId dst, int tag,
                   std::vector<std::uint8_t> payload)
{
    // Census in/out so the destructor cannot tear down fds or Node
    // state under a sender it just released from the bounded wait.
    {
        MutexLock lock(sendersMutex_);
        ++inFlightSenders_;
    }
    struct Census
    {
        TcpTransport &t;
        ~Census()
        {
            MutexLock lock(t.sendersMutex_);
            if (--t.inFlightSenders_ == 0)
                t.sendersCv_.notify_all();
        }
    } census{*this};

    Node &n = *nodes_[src];
    if (src == dst) {
        // Self-delivery never touches a socket (loopback-to-self is
        // not remote traffic on any transport).
        MutexLock lock(n.recvMutex);
        n.selfBox.push_back(NetMessage{src, dst, tag,
                                       std::move(payload)});
        ++n.recvVersion;
        return;
    }

    {
        MutexLock lock(n.sendMutex);
        auto [it, inserted] =
            n.streams.try_emplace(std::make_pair(dst, tag));
        TxStream &s = it->second;
        if (inserted)
            s.credit = static_cast<std::int64_t>(
                options_.creditWindowBytes);
        if (!s.active) {
            s.active = true;
            TcpMetrics::get().streamsActive.add(1);
        }
        if (options_.maxQueuedBytesPerStream > 0 && !payload.empty()) {
            // Opt-in bound on unsent bytes; requires a concurrent
            // drainer (see TransportOptions::maxQueuedBytesPerStream).
            // An explicit wait loop rather than the predicate
            // overload: thread-safety analysis cannot see through a
            // predicate lambda, and the loop is the same code.
            while (running_.load(std::memory_order_relaxed) &&
                   s.queuedBytes >= options_.maxQueuedBytesPerStream)
                n.sendCv.wait(lock);
            if (!running_.load(std::memory_order_relaxed)) {
                // Shutdown released us: drop the frame and leave
                // without touching the queue or the wake pipe.
                return;
            }
        }
        s.queuedBytes += payload.size();
        s.queue.push_back(std::move(payload));
    }
    wakeLoop(src);
}

void
TcpTransport::queueGrant(NodeId node, NodeId src, int tag,
                         std::uint32_t bytes)
{
    Node &n = *nodes_[node];
    {
        MutexLock lock(n.sendMutex);
        n.grants.push_back(Grant{src, tag, bytes});
    }
    wakeLoop(node);
}

void
TcpTransport::stageParked(NodeId node, Node &n,
                          const std::set<int> *onlyFds)
{
    // Either a consumer is stuck on a tag none of the parked frames
    // carry, or (onlyFds set) the loop's
    // stall rescue needs the grants queued behind these frames; read
    // the payloads off their connections (one staging copy —
    // intentionally NOT counted as net.recv_into_bytes) so whatever
    // is queued behind them keeps flowing. Credit is granted only
    // when a consumer takes a staged message: staged bytes still
    // occupy this node's memory, so total staging is bounded by the
    // senders' credit windows.
    std::vector<Parked> keep;
    bool stagedAny = false;
    for (Parked &p : n.parked) {
        if (onlyFds && !onlyFds->count(p.fd)) {
            keep.push_back(p);
            continue;
        }
        NetMessage m{p.src, node, p.tag, {}};
        if (p.len) {
            m.payload.resize(p.len);
            recvParkedPayload(node, p.src, p.fd, m.payload.data(),
                              p.len);
        }
        epollAdd(node, packToken(FdKind::Pair, p.src, p.fd), p.fd);
        n.staged.push_back(std::move(m));
        stagedAny = true;
    }
    n.parked = std::move(keep);
    if (stagedAny)
        ++n.recvVersion;
}

void
TcpTransport::rescueStalledStreams(NodeId node)
{
    Node &n = *nodes_[node];
    std::vector<NodeId> starvedDsts;
    std::uint64_t now = monoNs();
    {
        MutexLock lock(n.sendMutex);
        for (auto &[key, s] : n.streams) {
            if (!s.stalled || now - s.stallStartNs < stallRescueNs)
                continue;
            if (starvedDsts.empty() || starvedDsts.back() != key.first)
                starvedDsts.push_back(key.first); // map: dsts adjacent
        }
    }
    if (starvedDsts.empty())
        return;
    std::set<int> fds;
    {
        MutexLock lock(poolMutex_);
        for (NodeId dst : starvedDsts) {
            auto it = n.pairFd.find(dst);
            if (it != n.pairFd.end())
                fds.insert(it->second);
        }
    }
    if (fds.empty())
        return;
    MutexLock lock(n.recvMutex);
    if (!n.parked.empty())
        stageParked(node, n, &fds);
}

bool
TcpTransport::poll(NodeId dst, NetMessage &out)
{
    Node &n = *nodes_[dst];
    MutexLock lock(n.recvMutex);
    if (!n.selfBox.empty()) {
        out = std::move(n.selfBox.front());
        n.selfBox.pop_front();
        ++n.recvVersion;
        return true;
    }
    if (!n.staged.empty()) {
        out = std::move(n.staged.front());
        n.staged.pop_front();
        ++n.recvVersion;
        if (!out.payload.empty())
            queueGrant(dst, out.src, out.tag,
                       static_cast<std::uint32_t>(out.payload.size()));
        return true;
    }
    if (!n.parked.empty()) {
        Parked p = n.parked.front();
        n.parked.erase(n.parked.begin());
        ++n.recvVersion;
        out = NetMessage{p.src, dst, p.tag, {}};
        if (p.len) {
            out.payload.resize(p.len);
            recvParkedPayload(dst, p.src, p.fd, out.payload.data(),
                              p.len);
        }
        epollAdd(dst, packToken(FdKind::Pair, p.src, p.fd), p.fd);
        if (p.len)
            queueGrant(dst, p.src, p.tag, p.len);
        return true;
    }
    return false;
}

bool
TcpTransport::pollTag(NodeId dst, int tag, NetMessage &out)
{
    Node &n = *nodes_[dst];
    MutexLock lock(n.recvMutex);
    for (auto it = n.selfBox.begin(); it != n.selfBox.end(); ++it) {
        if (it->tag == tag) {
            out = std::move(*it);
            n.selfBox.erase(it);
            ++n.recvVersion;
            n.lastMiss.erase(tag);
            return true;
        }
    }
    for (auto it = n.staged.begin(); it != n.staged.end(); ++it) {
        if (it->tag != tag)
            continue;
        out = std::move(*it);
        n.staged.erase(it);
        ++n.recvVersion;
        n.lastMiss.erase(tag);
        if (!out.payload.empty())
            queueGrant(dst, out.src, tag,
                       static_cast<std::uint32_t>(out.payload.size()));
        return true;
    }
    for (std::size_t i = 0; i < n.parked.size(); ++i) {
        if (n.parked[i].tag != tag)
            continue;
        Parked p = n.parked[i];
        n.parked.erase(n.parked.begin() + i);
        ++n.recvVersion;
        n.lastMiss.erase(tag);
        out = NetMessage{p.src, dst, p.tag, {}};
        if (p.len) {
            out.payload.resize(p.len);
            recvParkedPayload(dst, p.src, p.fd, out.payload.data(),
                              p.len);
        }
        epollAdd(dst, packToken(FdKind::Pair, p.src, p.fd), p.fd);
        if (p.len)
            queueGrant(dst, p.src, p.tag, p.len);
        return true;
    }
    // Miss. A second miss with no intervening receive-side change
    // means the consumer is stuck behind parked misfits: stage them
    // so the connections (which may carry this tag further back)
    // keep moving.
    auto mit = n.lastMiss.find(tag);
    if (mit != n.lastMiss.end() && mit->second == n.recvVersion &&
        !n.parked.empty())
        stageParked(dst, n);
    n.lastMiss[tag] = n.recvVersion;
    return false;
}

std::ptrdiff_t
TcpTransport::pollTagInto(NodeId dst, int tag, const ReserveFn &reserve)
{
    Node &n = *nodes_[dst];
    MutexLock lock(n.recvMutex);
    for (auto it = n.selfBox.begin(); it != n.selfBox.end(); ++it) {
        if (it->tag != tag)
            continue;
        NetMessage msg = std::move(*it);
        n.selfBox.erase(it);
        ++n.recvVersion;
        n.lastMiss.erase(tag);
        if (msg.payload.empty())
            return 0;
        std::uint8_t *to = reserve(msg.payload.size());
        panicIf(to == nullptr, "pollTagInto: reserve returned null");
        std::memcpy(to, msg.payload.data(), msg.payload.size());
        return static_cast<std::ptrdiff_t>(msg.payload.size());
    }
    for (auto it = n.staged.begin(); it != n.staged.end(); ++it) {
        if (it->tag != tag)
            continue;
        NetMessage msg = std::move(*it);
        n.staged.erase(it);
        ++n.recvVersion;
        n.lastMiss.erase(tag);
        if (msg.payload.empty())
            return 0;
        // Staged delivery: the frame already paid its one staging
        // copy, so this is not a zero-copy receive — recv_into_bytes
        // intentionally excludes it.
        std::uint8_t *to = reserve(msg.payload.size());
        panicIf(to == nullptr, "pollTagInto: reserve returned null");
        std::memcpy(to, msg.payload.data(), msg.payload.size());
        queueGrant(dst, msg.src, tag,
                   static_cast<std::uint32_t>(msg.payload.size()));
        return static_cast<std::ptrdiff_t>(msg.payload.size());
    }
    for (std::size_t i = 0; i < n.parked.size(); ++i) {
        if (n.parked[i].tag != tag)
            continue;
        Parked p = n.parked[i];
        n.parked.erase(n.parked.begin() + i);
        ++n.recvVersion;
        n.lastMiss.erase(tag);
        if (p.len == 0) {
            // End-of-stream marker: reserve untouched.
            epollAdd(dst, packToken(FdKind::Pair, p.src, p.fd), p.fd);
            return 0;
        }
        // The zero-copy handoff: recv() straight into caller-posted
        // storage (old-gen chunk space on the Skyway receive path).
        std::uint8_t *to = reserve(p.len);
        panicIf(to == nullptr, "pollTagInto: reserve returned null");
        recvParkedPayload(dst, p.src, p.fd, to, p.len);
        wire_.recvIntoBytes.fetch_add(p.len,
                                      std::memory_order_relaxed);
        TcpMetrics::get().recvIntoBytes.add(p.len);
        epollAdd(dst, packToken(FdKind::Pair, p.src, p.fd), p.fd);
        queueGrant(dst, p.src, p.tag, p.len);
        return static_cast<std::ptrdiff_t>(p.len);
    }
    auto mit = n.lastMiss.find(tag);
    if (mit != n.lastMiss.end() && mit->second == n.recvVersion &&
        !n.parked.empty())
        stageParked(dst, n);
    n.lastMiss[tag] = n.recvVersion;
    return -1;
}

void
TcpTransport::registerHandler(NodeId node, RequestHandler handler)
{
    MutexLock lock(handlerMutex_);
    handlers_[node] = std::move(handler);
}

std::vector<std::uint8_t>
TcpTransport::request(NodeId src, NodeId dst, int tag,
                      const std::vector<std::uint8_t> &payload,
                      const RequestOptions &opts)
{
    RequestHandler local;
    {
        MutexLock lock(handlerMutex_);
        if (src == dst)
            local = handlers_[dst];
    }
    if (src == dst) {
        panicIf(!local, "request: node has no registered handler");
        return local(src, tag, payload);
    }

    Node &n = *nodes_[src];
    Mutex *pair;
    {
        MutexLock lock(n.ctrlMutex);
        auto &slot = n.ctrlPair[dst];
        if (!slot)
            slot = std::make_unique<Mutex>();
        pair = slot.get();
    }
    // One request in flight per (src, dst) pair: the shared control
    // connection carries strict request/reply exchanges. Held across
    // the round trip BY DESIGN — it is the exchange discipline, not
    // incidental locking (lint rule 2 allowlists this site).
    MutexLock exchange(*pair);

    for (int attempt = 0; attempt <= opts.maxRetries; ++attempt) {
        if (attempt > 0) {
            wire_.connectRetries.fetch_add(1,
                                           std::memory_order_relaxed);
            TcpMetrics::get().connectRetries.inc();
        }
        int fd;
        std::uint32_t req_id;
        {
            MutexLock lock(n.ctrlMutex);
            fd = ctrlConnFor(n, src, dst);
            req_id = n.nextReqId++;
        }

        frame::ControlHeader h{
            frame::kindRequest, src, tag, req_id,
            static_cast<std::uint32_t>(payload.size())};
        std::uint8_t hdr[frame::controlHeaderBytes];
        frame::encodeControlHeader(hdr, h);
        writeTimed(fd, hdr, sizeof(hdr));
        if (!payload.empty())
            writeTimed(fd, payload.data(), payload.size());
        wire_.framesSent.fetch_add(1, std::memory_order_relaxed);
        TcpMetrics::get().framesSent.inc();

        // Wait out the reply, discarding stale replies from earlier
        // timed-out attempts by request id.
        Stopwatch sw;
        while (true) {
            std::uint64_t spent_ms = sw.elapsedNs() / 1'000'000;
            if (spent_ms >= opts.timeoutMs)
                break; // timeout: resend (bounded)
            pollfd p{fd, POLLIN, 0};
            int rc = ::poll(&p, 1,
                            static_cast<int>(opts.timeoutMs -
                                             spent_ms));
            if (rc < 0 && errno == EINTR)
                continue;
            if (rc <= 0)
                break;
            std::uint8_t rhdr[frame::controlHeaderBytes];
            if (!recvFully(fd, rhdr, sizeof(rhdr))) {
                // Peer dropped the connection: reconnect and resend.
                MutexLock lock(n.ctrlMutex);
                ::close(fd);
                n.ctrlOut.erase(dst);
                break;
            }
            frame::ControlHeader r = frame::decodeControlHeader(rhdr);
            panicIf(r.kind != frame::kindReply,
                    "TcpTransport: unexpected frame on control reply "
                    "path");
            std::vector<std::uint8_t> reply(r.len);
            if (r.len)
                recvFully(fd, reply.data(), r.len);
            if (r.reqId != req_id)
                continue; // stale reply from a resent attempt
            return reply;
        }
    }
    panic("TcpTransport: request to node " + std::to_string(dst) +
          " timed out after " + std::to_string(opts.maxRetries) +
          " retries (tag " + std::to_string(tag) + ")");
}

void
TcpTransport::acceptPending(NodeId node)
{
    Node &n = *nodes_[node];
    while (true) {
        int fd = ::accept(n.listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            sysErr("accept");
        }
        setNoDelay(fd);
        std::uint8_t buf[frame::handshakeBytes];
        if (!recvFully(fd, buf, sizeof(buf))) {
            ::close(fd);
            continue;
        }
        frame::Handshake h{};
        if (!frame::decodeHandshake(buf, h))
            panic("TcpTransport: bad handshake magic");
        panicIf(h.src < 0 || h.src >= nodeCount_,
                "TcpTransport: handshake from out-of-range node id");
        if (h.channel == frame::channelData) {
            {
                MutexLock lock(poolMutex_);
                panicIf(n.pairFd.count(h.src) != 0,
                        "TcpTransport: duplicate pair connection "
                        "from node " + std::to_string(h.src));
                n.pairFd.emplace(h.src, fd);
                PairEntry &e = pool_[pairKey(node, h.src)];
                if (!e.claimed) {
                    // An externally initiated connection (tests):
                    // count it like a claim would have.
                    e.claimed = true;
                    wire_.connectionsPooled.fetch_add(
                        1, std::memory_order_relaxed);
                    TcpMetrics::get().pooledConnections.add(1);
                }
            }
            epollAdd(node, packToken(FdKind::Pair, h.src, fd), fd);
        } else {
            n.ctrlIn.push_back(fd);
            epollAdd(node, packToken(FdKind::Ctrl, h.src, fd), fd);
        }
    }
}

void
TcpTransport::dropPair(NodeId node, NodeId peer, int fd)
{
    Node &n = *nodes_[node];
    n.hdrPartial.erase(fd);
    {
        // Erase the write queue before close so a concurrent
        // help-flush cannot land on a reused fd number.
        MutexLock lock(n.outMutex);
        n.outbound.erase(fd);
    }
    ::close(fd); // also removes it from the epoll set
    MutexLock lock(poolMutex_);
    auto it = n.pairFd.find(peer);
    if (it != n.pairFd.end() && it->second == fd)
        n.pairFd.erase(it);
    if (pool_.erase(pairKey(node, peer)))
        TcpMetrics::get().pooledConnections.add(-1);
}

bool
TcpTransport::serveControl(NodeId node, int fd)
{
    std::uint8_t hdr[frame::controlHeaderBytes];
    if (!recvFully(fd, hdr, sizeof(hdr)))
        return false;
    frame::ControlHeader h = frame::decodeControlHeader(hdr);
    panicIf(h.kind != frame::kindRequest,
            "TcpTransport: unexpected frame kind on control inbound");
    std::vector<std::uint8_t> payload(h.len);
    if (h.len)
        recvFully(fd, payload.data(), h.len);

    RequestHandler handler;
    {
        MutexLock lock(handlerMutex_);
        handler = handlers_[node];
    }
    panicIf(!handler, "request: node has no registered handler");
    std::vector<std::uint8_t> reply = handler(h.src, h.tag, payload);

    frame::ControlHeader r{
        frame::kindReply, node, h.tag, h.reqId,
        static_cast<std::uint32_t>(reply.size())};
    std::uint8_t rhdr[frame::controlHeaderBytes];
    frame::encodeControlHeader(rhdr, r);
    writeTimed(fd, rhdr, sizeof(rhdr));
    if (!reply.empty())
        writeTimed(fd, reply.data(), reply.size());
    wire_.framesSent.fetch_add(1, std::memory_order_relaxed);
    TcpMetrics::get().framesSent.inc();
    return true;
}

void
TcpTransport::handlePairReadable(NodeId node, NodeId peer, int fd)
{
    Node &n = *nodes_[node];
    // Reassemble the header without blocking: TCP has no message
    // boundaries, so a level-triggered EPOLLIN may expose only part
    // of the 13 bytes — blocking on the remainder would couple the
    // loop's liveness to peer behavior. A partial header persists in
    // hdrPartial; EPOLLIN re-fires when more bytes arrive.
    HdrBuf &hb = n.hdrPartial[fd];
    while (hb.got < frame::muxHeaderBytes) {
        ssize_t r = ::recv(fd, hb.bytes + hb.got,
                           frame::muxHeaderBytes - hb.got,
                           MSG_DONTWAIT);
        if (r > 0) {
            hb.got += static_cast<std::size_t>(r);
            continue;
        }
        if (r == 0) {
            panicIf(hb.got != 0, "peer closed mid-frame");
            dropPair(node, peer, fd);
            return;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return; // partial header parked in hb
        sysErr("recv");
    }
    hb.got = 0; // consumed: ready for this connection's next header
    frame::MuxHeader h = frame::decodeMuxHeader(hb.bytes);
    if (h.kind == frame::kindCredit) {
        MutexLock lock(n.sendMutex);
        auto it = n.streams.find(std::make_pair(peer, h.tag));
        if (it == n.streams.end())
            return; // grant for a stream we no longer track
        TxStream &s = it->second;
        s.credit += h.arg;
        if (s.stalled && s.credit > 0) {
            s.stalled = false;
            std::uint64_t ns = monoNs() - s.stallStartNs;
            wire_.creditStallsNs.fetch_add(ns,
                                           std::memory_order_relaxed);
            TcpMetrics::get().creditStallsNs.add(ns);
        }
        return; // the loop drains sends right after the event batch
    }
    panicIf(h.kind != frame::kindStream,
            "TcpTransport: unexpected mux frame kind");
    panicIf(h.origin != peer,
            "TcpTransport: mux frame origin does not match peer");
    // Park the frame: payload stays in the kernel until a consumer
    // claims it (zero-copy) or staging relieves head-of-line.
    MutexLock lock(n.recvMutex);
    epollDel(node, fd);
    n.parked.push_back(Parked{fd, peer, h.tag, h.arg});
    ++n.recvVersion;
    {
        // Deleting the registration dropped EPOLLOUT with it; the
        // claim re-adds EPOLLIN only, so record the truth and let
        // flushPairWrites re-arm once the fd is back in the set.
        MutexLock olock(n.outMutex);
        auto it = n.outbound.find(fd);
        if (it != n.outbound.end())
            it->second.armed = false;
    }
}

void
TcpTransport::drainGrants(NodeId node)
{
    Node &n = *nodes_[node];
    std::deque<Grant> pending;
    {
        MutexLock lock(n.sendMutex);
        pending.swap(n.grants);
    }
    for (const Grant &g : pending) {
        int fd = -1;
        {
            MutexLock lock(poolMutex_);
            auto it = n.pairFd.find(g.peer);
            if (it != n.pairFd.end())
                fd = it->second;
        }
        if (fd < 0)
            continue; // peer connection gone; its streams died too
        frame::MuxHeader h{frame::kindCredit, node, g.tag, g.bytes};
        std::uint8_t hdr[frame::muxHeaderBytes];
        frame::encodeMuxHeader(hdr, h);
        sendOrQueue(n, g.peer, fd, hdr, sizeof(hdr));
        wire_.framesSent.fetch_add(1, std::memory_order_relaxed);
        TcpMetrics::get().framesSent.inc();
    }
}

void
TcpTransport::drainSends(NodeId node)
{
    Node &n = *nodes_[node];

    // Destinations with anything queued, sampled under the lock...
    std::vector<NodeId> dsts;
    {
        MutexLock lock(n.sendMutex);
        for (auto &[key, s] : n.streams) {
            if (!s.queue.empty() &&
                (dsts.empty() || dsts.back() != key.first))
                dsts.push_back(key.first);
        }
    }
    if (dsts.empty())
        return;

    // ...then pair fds resolved outside it (establishment may block
    // on connect); -1 = peer mid-connect, skip until our accept.
    std::map<NodeId, int> fds;
    for (NodeId dst : dsts)
        fds[dst] = pairFdOrClaim(node, dst);

    // Pop every frame the credit windows allow, in per-stream FIFO
    // order, then write outside the lock.
    std::vector<TxFrame> batch;
    bool popped = false;
    {
        MutexLock lock(n.sendMutex);
        for (auto &[key, s] : n.streams) {
            auto fit = fds.find(key.first);
            if (fit == fds.end() || fit->second < 0)
                continue;
            while (!s.queue.empty()) {
                std::vector<std::uint8_t> &front = s.queue.front();
                if (front.empty()) {
                    // End of stream: no payload, no credit needed.
                    TxFrame tx;
                    tx.fd = fit->second;
                    tx.peer = key.first;
                    frame::MuxHeader h{frame::kindStream, node,
                                       key.second, 0};
                    frame::encodeMuxHeader(tx.header, h);
                    batch.push_back(std::move(tx));
                    s.queue.pop_front();
                    s.active = false;
                    TcpMetrics::get().streamsActive.add(-1);
                    popped = true;
                    continue;
                }
                if (s.credit <= 0) {
                    if (!s.stalled) {
                        s.stalled = true;
                        s.stallStartNs = monoNs();
                    }
                    break; // later frames wait behind the head (FIFO)
                }
                s.credit -= static_cast<std::int64_t>(front.size());
                s.queuedBytes -= front.size();
                TxFrame tx;
                tx.fd = fit->second;
                tx.peer = key.first;
                frame::MuxHeader h{
                    frame::kindStream, node, key.second,
                    static_cast<std::uint32_t>(front.size())};
                frame::encodeMuxHeader(tx.header, h);
                tx.payload = std::move(front);
                batch.push_back(std::move(tx));
                s.queue.pop_front();
                popped = true;
            }
        }
    }
    if (popped)
        n.sendCv.notify_all();

    for (TxFrame &tx : batch) {
        // Non-blocking: what the socket refuses queues per
        // connection, so a full peer buffer can never wedge this
        // loop against another node's (the old write-write cycle).
        sendOrQueue(n, tx.peer, tx.fd, tx.header, sizeof(tx.header));
        if (!tx.payload.empty())
            sendOrQueue(n, tx.peer, tx.fd, tx.payload.data(),
                        tx.payload.size());
        wire_.framesSent.fetch_add(1, std::memory_order_relaxed);
        TcpMetrics::get().framesSent.inc();
    }
}

void
TcpTransport::eventLoop(NodeId node)
{
    if (options_.pinEventLoops) {
        unsigned hw = std::thread::hardware_concurrency();
        if (hw > 0) {
            cpu_set_t set;
            CPU_ZERO(&set);
            CPU_SET(static_cast<unsigned>(node) % hw, &set);
            ::pthread_setaffinity_np(::pthread_self(), sizeof(set),
                                     &set);
        }
    }

    Node &n = *nodes_[node];
    while (running_.load(std::memory_order_relaxed)) {
        drainGrants(node);
        drainSends(node);
        flushPairWrites(node);
        rescueStalledStreams(node);

        epoll_event evs[64];
        int rc = ::epoll_wait(n.epollFd, evs, 64, loopWaitMs);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            sysErr("epoll_wait");
        }
        if (rc == 0)
            continue;
        wire_.epollWakeups.fetch_add(1, std::memory_order_relaxed);
        TcpMetrics::get().epollWakeups.inc();

        for (int i = 0; i < rc; ++i) {
            std::uint64_t token = evs[i].data.u64;
            auto kind = static_cast<FdKind>(token >> 56);
            int fd = static_cast<int>(
                static_cast<std::uint32_t>(token & 0xFFFFFFFF));
            NodeId peer = static_cast<NodeId>((token >> 32) & 0xFFFFFF);
            switch (kind) {
              case FdKind::Wake: {
                  std::uint8_t buf[64];
                  while (::read(n.wakeRead, buf, sizeof(buf)) > 0) {
                  }
                  break;
              }
              case FdKind::Listen:
                acceptPending(node);
                break;
              case FdKind::Pair:
                if (evs[i].events & EPOLLOUT)
                    flushPairWrites(node);
                if (evs[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR))
                    handlePairReadable(node, peer, fd);
                break;
              case FdKind::Ctrl:
                if (!serveControl(node, fd)) {
                    ::close(fd); // close also leaves the epoll set
                    n.ctrlIn.erase(std::find(n.ctrlIn.begin(),
                                             n.ctrlIn.end(), fd));
                }
                break;
            }
        }
    }
}

} // namespace skyway
