/**
 * @file
 * Growable byte buffers and primitive wire codecs used by every
 * serializer in the repository. ByteSink/ByteSource are the minimal
 * stream abstractions; the varint/zigzag helpers implement the encodings
 * used by the protobuf/thrift/kryo-style wire formats.
 */

#ifndef SKYWAY_SUPPORT_BYTEBUFFER_HH
#define SKYWAY_SUPPORT_BYTEBUFFER_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "support/logging.hh"

namespace skyway
{

/**
 * An append-only byte sink. The base implementation accumulates into an
 * in-memory vector; subclasses may forward bytes elsewhere (e.g., a
 * simulated disk file or network channel).
 */
class ByteSink
{
  public:
    virtual ~ByteSink() = default;

    /** Append @p len raw bytes. */
    virtual void write(const void *data, std::size_t len) = 0;

    /** Total number of bytes written so far. */
    virtual std::size_t bytesWritten() const = 0;

    void writeU8(std::uint8_t v) { write(&v, 1); }

    void
    writeU16(std::uint16_t v)
    {
        write(&v, 2);
    }

    void
    writeU32(std::uint32_t v)
    {
        write(&v, 4);
    }

    void
    writeU64(std::uint64_t v)
    {
        write(&v, 8);
    }

    void writeI32(std::int32_t v) { writeU32(static_cast<std::uint32_t>(v)); }
    void writeI64(std::int64_t v) { writeU64(static_cast<std::uint64_t>(v)); }

    void
    writeF32(float v)
    {
        std::uint32_t bits;
        std::memcpy(&bits, &v, 4);
        writeU32(bits);
    }

    void
    writeF64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, 8);
        writeU64(bits);
    }

    /** LEB128-style unsigned varint (protobuf/kryo wire encoding). */
    void
    writeVarU64(std::uint64_t v)
    {
        while (v >= 0x80) {
            writeU8(static_cast<std::uint8_t>(v) | 0x80);
            v >>= 7;
        }
        writeU8(static_cast<std::uint8_t>(v));
    }

    void writeVarU32(std::uint32_t v) { writeVarU64(v); }

    /** Zigzag-encoded signed varint. */
    void
    writeVarI64(std::int64_t v)
    {
        writeVarU64((static_cast<std::uint64_t>(v) << 1) ^
                    static_cast<std::uint64_t>(v >> 63));
    }

    void
    writeVarI32(std::int32_t v)
    {
        writeVarU32((static_cast<std::uint32_t>(v) << 1) ^
                    static_cast<std::uint32_t>(v >> 31));
    }

    /** Length-prefixed (varint) UTF-8 string. */
    void
    writeString(std::string_view s)
    {
        writeVarU64(s.size());
        write(s.data(), s.size());
    }
};

/** A ByteSink backed by an owned, growable vector. */
class VectorSink : public ByteSink
{
  public:
    void
    write(const void *data, std::size_t len) override
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + len);
    }

    std::size_t bytesWritten() const override { return buf_.size(); }

    const std::vector<std::uint8_t> &bytes() const { return buf_; }
    std::vector<std::uint8_t> takeBytes() { return std::move(buf_); }
    void clear() { buf_.clear(); }

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * A sequential reader over a byte span. The span is not owned; callers
 * must keep the backing storage alive while reading.
 */
class ByteSource
{
  public:
    ByteSource(const void *data, std::size_t len)
        : data_(static_cast<const std::uint8_t *>(data)), len_(len), pos_(0)
    {}

    explicit ByteSource(const std::vector<std::uint8_t> &v)
        : ByteSource(v.data(), v.size())
    {}

    std::size_t remaining() const { return len_ - pos_; }
    std::size_t position() const { return pos_; }
    bool atEnd() const { return pos_ >= len_; }

    void
    read(void *out, std::size_t len)
    {
        panicIf(pos_ + len > len_, "ByteSource: read past end");
        std::memcpy(out, data_ + pos_, len);
        pos_ += len;
    }

    /** Borrow @p len bytes in place without copying. */
    const std::uint8_t *
    view(std::size_t len)
    {
        panicIf(pos_ + len > len_, "ByteSource: view past end");
        const std::uint8_t *p = data_ + pos_;
        pos_ += len;
        return p;
    }

    std::uint8_t
    readU8()
    {
        std::uint8_t v;
        read(&v, 1);
        return v;
    }

    std::uint16_t
    readU16()
    {
        std::uint16_t v;
        read(&v, 2);
        return v;
    }

    std::uint32_t
    readU32()
    {
        std::uint32_t v;
        read(&v, 4);
        return v;
    }

    std::uint64_t
    readU64()
    {
        std::uint64_t v;
        read(&v, 8);
        return v;
    }

    std::int32_t readI32() { return static_cast<std::int32_t>(readU32()); }
    std::int64_t readI64() { return static_cast<std::int64_t>(readU64()); }

    float
    readF32()
    {
        std::uint32_t bits = readU32();
        float v;
        std::memcpy(&v, &bits, 4);
        return v;
    }

    double
    readF64()
    {
        std::uint64_t bits = readU64();
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }

    std::uint64_t
    readVarU64()
    {
        std::uint64_t v = 0;
        int shift = 0;
        while (true) {
            std::uint8_t b = readU8();
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                break;
            shift += 7;
            panicIf(shift >= 64, "ByteSource: varint too long");
        }
        return v;
    }

    std::uint32_t
    readVarU32()
    {
        return static_cast<std::uint32_t>(readVarU64());
    }

    std::int64_t
    readVarI64()
    {
        std::uint64_t u = readVarU64();
        return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
    }

    std::int32_t
    readVarI32()
    {
        std::uint32_t u = readVarU32();
        return static_cast<std::int32_t>((u >> 1) ^ (~(u & 1) + 1));
    }

    std::string
    readString()
    {
        std::size_t n = readVarU64();
        const std::uint8_t *p = view(n);
        return std::string(reinterpret_cast<const char *>(p), n);
    }

  private:
    const std::uint8_t *data_;
    std::size_t len_;
    std::size_t pos_;
};

} // namespace skyway

#endif // SKYWAY_SUPPORT_BYTEBUFFER_HH
