/**
 * @file
 * Global class numbering (paper section 4.1, Algorithm 1).
 *
 * The driver JVM owns the authoritative type registry mapping class
 * name strings to dense integer IDs. Each worker JVM keeps a *registry
 * view* — a subset of the driver's registry. At startup a worker pulls
 * the full current registry ("REQUEST_VIEW"); when its class loader
 * loads a class missing from the view it asks the driver ("LOOKUP"),
 * which registers the class on first sight. The assigned ID is cached
 * in the klass meta object (Klass::setTid), so the sender writes IDs
 * into object headers without any string traffic; a class-name string
 * crosses the wire at most once per class per machine.
 *
 * Receiver-side, a type ID found in an input buffer resolves through
 * the view; a stale view (the ID was assigned after the view was
 * pulled) triggers a reverse lookup ("LOOKUP_NAME") and, when the
 * class has never been loaded locally, instructs the class loader to
 * load it by name.
 */

#ifndef SKYWAY_TYPEREG_REGISTRY_HH
#define SKYWAY_TYPEREG_REGISTRY_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "klass/klass.hh"
#include "net/cluster.hh"
#include "support/thread_annotations.hh"

namespace skyway
{

/** Message tags for the registry protocol. */
namespace regmsg
{
constexpr int requestView = 101;
constexpr int lookup = 102;
constexpr int lookupName = 103;
} // namespace regmsg

/**
 * Both ends of the protocol expose this interface so the Skyway
 * sender/receiver code is agnostic to whether it runs on the driver.
 */
class TypeResolver
{
  public:
    virtual ~TypeResolver() = default;

    /** The global ID for class @p name (registering on the driver). */
    virtual std::int32_t idForClass(const std::string &name) = 0;

    /** The class name behind @p id. */
    virtual std::string nameForId(std::int32_t id) = 0;

    /**
     * Resolve @p id to this node's klass meta object, loading the
     * class on first encounter.
     */
    virtual Klass *klassForId(std::int32_t id) = 0;

    /**
     * Like klassForId() but returns nullptr for an id no registry ever
     * assigned instead of panicking. The SkywaySan wire-format
     * validator probes ids found in (possibly corrupt) streams and
     * must be able to reject a forged id as a diagnostic — without a
     * worker being able to crash the driver by relaying it.
     */
    virtual Klass *tryKlassForId(std::int32_t id) = 0;

    /**
     * The largest id this node has seen assigned, or -1 before any.
     * Receivers size their tid caches from it up front; a later id
     * (assigned after the call) is not an error, merely a cache grow.
     */
    virtual std::int32_t maxAssignedId() const = 0;

    /**
     * The cached compact-encoding hint for @p id: the class's
     * estimated compact saving as a percent of its raw wire bytes
     * (0–100), or -1 when this node has none. Hints originate on the
     * driver (klass/wirehint.hh) and ride LOOKUP / LOOKUP_NAME /
     * REQUEST_VIEW replies. Contract: this is a cache probe — it must
     * never issue a network round trip (the send path calls it per
     * class per stream), so a miss returns -1 and the caller falls
     * back to local layout arithmetic.
     */
    virtual int encodingHint(std::int32_t id)
    {
        (void)id;
        return -1;
    }
};

/** Registry traffic statistics (tests assert the at-most-once claim). */
struct RegistryStats
{
    std::uint64_t viewRequestsServed = 0;
    std::uint64_t lookupsServed = 0;
    std::uint64_t reverseLookupsServed = 0;
    std::uint64_t remoteLookupsIssued = 0;
    std::uint64_t classStringsSent = 0;
};

/**
 * The driver-side registry (Algorithm 1, driver program). Registers a
 * request handler on the cluster network; also acts as the driver
 * JVM's own resolver.
 */
class TypeRegistryDriver : public TypeResolver
{
  public:
    /**
     * @param net      cluster fabric to serve requests on
     * @param node     the driver's node id
     * @param klasses  the driver JVM's klass table; already-loaded
     *                 classes are numbered immediately (Algorithm 1
     *                 lines 4-8) and future loads hook in
     */
    TypeRegistryDriver(ClusterNetwork &net, NodeId node,
                       KlassTable &klasses);

    std::int32_t idForClass(const std::string &name) override
        EXCLUDES(mutex_);
    std::string nameForId(std::int32_t id) override EXCLUDES(mutex_);
    Klass *klassForId(std::int32_t id) override EXCLUDES(mutex_);
    Klass *tryKlassForId(std::int32_t id) override EXCLUDES(mutex_);

    /**
     * The driver computes missing hints on demand (a local class
     * load plus layout arithmetic — no network), then caches them and
     * serves them with every LOOKUP / LOOKUP_NAME / REQUEST_VIEW
     * reply.
     */
    int encodingHint(std::int32_t id) override EXCLUDES(mutex_);

    /** Driver ids are dense: the max is the count minus one. */
    std::int32_t
    maxAssignedId() const override
    {
        MutexLock lock(mutex_);
        return static_cast<std::int32_t>(names_.size()) - 1;
    }

    /** Number of classes registered cluster-wide. */
    std::size_t
    size() const
    {
        MutexLock lock(mutex_);
        return names_.size();
    }

    RegistryStats
    stats() const
    {
        MutexLock lock(mutex_);
        return stats_;
    }

    /** Serialize the full registry (the REQUEST_VIEW reply). */
    std::vector<std::uint8_t> encodeView() const EXCLUDES(mutex_);

  private:
    std::vector<std::uint8_t> handle(NodeId src, int tag,
                                     const std::vector<std::uint8_t> &
                                         payload);

    ClusterNetwork &net_;
    NodeId node_;
    KlassTable &klasses_;
    /**
     * Guards registry_/names_/stats_. On the tcp transport handle()
     * runs on the destination node's pump thread, concurrent with the
     * driver JVM's own idForClass() calls. Held only across map
     * accesses — never across klasses_.load(), whose load hook
     * re-enters idForClass().
     */
    mutable Mutex mutex_;
    std::unordered_map<std::string, std::int32_t> registry_ GUARDED_BY(
        mutex_);
    std::vector<std::string> names_ GUARDED_BY(mutex_); // id -> name
    std::unordered_map<std::int32_t, int> hints_ GUARDED_BY(mutex_);
    RegistryStats stats_ GUARDED_BY(mutex_);
};

/**
 * The worker-side registry view (Algorithm 1, worker program).
 */
class TypeRegistryWorker : public TypeResolver
{
  public:
    /**
     * Pulls the initial view from the driver and installs the
     * class-loading hook on @p klasses.
     */
    TypeRegistryWorker(ClusterNetwork &net, NodeId node, NodeId driver,
                       KlassTable &klasses);

    /** Blocking on a view miss (one remote LOOKUP round trip) — must
     *  never run under mutex_, ours or a caller's (lint rule 2). */
    std::int32_t idForClass(const std::string &name) override
        EXCLUDES(mutex_);
    std::string nameForId(std::int32_t id) override EXCLUDES(mutex_);
    Klass *klassForId(std::int32_t id) override EXCLUDES(mutex_);
    Klass *tryKlassForId(std::int32_t id) override EXCLUDES(mutex_);

    /** Strictly the hint cache filled by driver replies; a miss is
     *  -1, never a round trip (the send path computes locally). */
    int encodingHint(std::int32_t id) override EXCLUDES(mutex_);

    /** View ids may be sparse; tracked as entries are inserted. */
    std::int32_t
    maxAssignedId() const override
    {
        MutexLock lock(mutex_);
        return maxId_;
    }

    std::size_t
    viewSize() const
    {
        MutexLock lock(mutex_);
        return view_.size();
    }

    RegistryStats
    stats() const
    {
        MutexLock lock(mutex_);
        return stats_;
    }

    /**
     * Bounds every remote LOOKUP this worker issues (timeout and
     * retry budget on the tcp transport; ignored on the model
     * transport, which completes synchronously).
     */
    void
    setLookupOptions(const RequestOptions &opts)
    {
        MutexLock lock(mutex_);
        lookupOpts_ = opts;
    }

  private:
    void insertView(const std::string &name, std::int32_t id,
                    int hint = -1) EXCLUDES(mutex_);
    RequestOptions lookupOptions() const EXCLUDES(mutex_);

    ClusterNetwork &net_;
    NodeId node_;
    NodeId driver_;
    KlassTable &klasses_;
    /**
     * Guards view_/idToName_/maxId_/stats_. Parallel sender threads
     * share one worker view; held only across map accesses — never
     * across net_.request() (a blocking round trip) or
     * klasses_.load() (whose load hook re-enters idForClass()).
     */
    mutable Mutex mutex_;
    std::unordered_map<std::string, std::int32_t> view_ GUARDED_BY(
        mutex_);
    std::unordered_map<std::int32_t, std::string> idToName_ GUARDED_BY(
        mutex_);
    std::unordered_map<std::int32_t, int> hints_ GUARDED_BY(mutex_);
    std::int32_t maxId_ GUARDED_BY(mutex_) = -1;
    RegistryStats stats_ GUARDED_BY(mutex_);
    RequestOptions lookupOpts_ GUARDED_BY(mutex_);
};

} // namespace skyway

#endif // SKYWAY_TYPEREG_REGISTRY_HH
