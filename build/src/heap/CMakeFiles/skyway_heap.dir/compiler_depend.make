# Empty compiler generated dependencies file for skyway_heap.
# This may be replaced when dependencies are built.
