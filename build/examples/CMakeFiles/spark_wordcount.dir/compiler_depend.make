# Empty compiler generated dependencies file for spark_wordcount.
# This may be replaced when dependencies are built.
