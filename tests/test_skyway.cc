/**
 * @file
 * Tests for the Skyway core: heap-to-heap transfer correctness
 * (graphs, sharing, cycles, nulls), identity-hash preservation,
 * backward references across writeObject calls, streaming through
 * small output buffers, chunked input buffers with cross-chunk
 * references, multi-phase shuffles, GC interaction on the receiver,
 * multi-threaded senders with shared objects, heterogeneous formats,
 * the field-update API, the file/socket stream variants, and the
 * drop-in Serializer adapter.
 */

#include <gtest/gtest.h>

#include <thread>

#include "skyway/streams.hh"
#include "testclasses.hh"

namespace skyway
{
namespace
{

using testing_support::makeCycle;
using testing_support::makeList;
using testing_support::makeMixed;
using testing_support::makePoint;
using testing_support::makeSharedPair;
using testing_support::makeTestCatalog;

class SkywayTest : public ::testing::Test
{
  protected:
    SkywayTest()
        : catalog_(makeTestCatalog()),
          net_(3),
          driver_(catalog_, net_, 0, 0),
          nodeA_(catalog_, net_, 1, 0),
          nodeB_(catalog_, net_, 2, 0)
    {}

    /**
     * Transfer @p root from A to B through in-memory segments with the
     * given buffer/chunk sizes; returns the received root.
     */
    Address
    transfer(Address root, std::size_t buffer_bytes = 64 << 10,
             std::size_t chunk_bytes = 64 << 10)
    {
        nodeA_.skyway().shuffleStart();
        SkywayObjectInputStream in(nodeB_.skyway(), chunk_bytes);
        SkywayObjectOutputStream out(
            nodeA_.skyway(),
            [&in](const std::uint8_t *d, std::size_t n) {
                in.feed(d, n);
            },
            buffer_bytes);
        out.writeObject(root);
        out.flush();
        in.finish();
        keep_.push_back(in.releaseBuffer());
        return keep_.back()->roots().at(0);
    }

    ClassCatalog catalog_;
    ClusterNetwork net_;
    Jvm driver_;
    Jvm nodeA_;
    Jvm nodeB_;
    std::vector<std::unique_ptr<InputBuffer>> keep_;
};

TEST_F(SkywayTest, SimpleObjectArrivesIdentical)
{
    Address p = makePoint(nodeA_, 11, -22);
    Address q = transfer(p);
    ASSERT_NE(q, nullAddr);
    EXPECT_TRUE(nodeB_.heap().inOld(q))
        << "input buffers live in the old generation";
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), p, nodeB_.heap(), q));
}

TEST_F(SkywayTest, MixedGraphArrivesIdentical)
{
    LocalRoots roots(nodeA_.heap());
    Address m = makeMixed(nodeA_, roots, "skyway mixed");
    Address q = transfer(m);
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), m, nodeB_.heap(), q));
}

TEST_F(SkywayTest, IdentityHashPreserved)
{
    Address p = makePoint(nodeA_, 1, 2);
    std::int32_t h = nodeA_.heap().identityHash(p);
    Address q = transfer(p);
    // The receiving node can use the cached hash without rehashing.
    EXPECT_TRUE(mark::hasHash(nodeB_.heap().markOf(q)));
    EXPECT_EQ(nodeB_.heap().identityHash(q), h);
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), p, nodeB_.heap(), q, true));
}

TEST_F(SkywayTest, GcAndLockBitsResetOnArrival)
{
    Address p = makePoint(nodeA_, 1, 2);
    nodeA_.heap().identityHash(p);
    Word m = nodeA_.heap().markOf(p);
    nodeA_.heap().setMark(p, mark::withAge(m, 5) | mark::lockMask);
    Address q = transfer(p);
    Word mq = nodeB_.heap().markOf(q);
    EXPECT_EQ(mark::ageOf(mq), 0);
    EXPECT_EQ(mq & mark::lockMask, 0u);
    EXPECT_FALSE(mark::isGcMarked(mq));
}

TEST_F(SkywayTest, SharingAndCyclesPreserved)
{
    LocalRoots roots(nodeA_.heap());
    Address pair = makeSharedPair(nodeA_, roots);
    Address q = transfer(pair);
    Klass *k = nodeB_.klasses().load("test.Pair");
    EXPECT_EQ(field::getRef(nodeB_.heap(), q, k->requireField("left")),
              field::getRef(nodeB_.heap(), q,
                            k->requireField("right")));

    Address cyc = makeCycle(nodeA_, roots);
    Address qc = transfer(cyc);
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), cyc, nodeB_.heap(), qc));
}

TEST_F(SkywayTest, NullRootTransfers)
{
    EXPECT_EQ(transfer(nullAddr), nullAddr);
}

TEST_F(SkywayTest, BackwardReferenceDedupsRootsWithinPhase)
{
    // Writing the same root twice in one phase must produce ONE copy
    // on the receiver — stronger than any byte serializer.
    LocalRoots roots(nodeA_.heap());
    Address m = makeMixed(nodeA_, roots, "dedup");
    std::size_t rm = roots.push(m);

    nodeA_.skyway().shuffleStart();
    SkywayObjectInputStream in(nodeB_.skyway());
    SkywayObjectOutputStream out(
        nodeA_.skyway(),
        [&in](const std::uint8_t *d, std::size_t n) { in.feed(d, n); });
    out.writeObject(roots.get(rm));
    out.writeObject(roots.get(rm));
    out.flush();
    in.finish();
    ASSERT_EQ(in.buffer().roots().size(), 2u);
    EXPECT_EQ(in.buffer().roots()[0], in.buffer().roots()[1]);
    EXPECT_EQ(out.stats().backRefs, 1u);
    EXPECT_EQ(out.stats().topMarks, 1u);
    keep_.push_back(in.releaseBuffer());
}

TEST_F(SkywayTest, OverlappingGraphsShareWithinPhase)
{
    // Two different roots sharing a subtree: the subtree is copied
    // once; the second graph references it relative to the buffer.
    LocalRoots roots(nodeA_.heap());
    Address shared = makePoint(nodeA_, 9, 9);
    std::size_t rs = roots.push(shared);
    Klass *pairK = nodeA_.klasses().load("test.Pair");
    Address p1 = nodeA_.heap().allocateInstance(pairK);
    std::size_t rp1 = roots.push(p1);
    field::setRef(nodeA_.heap(), roots.get(rp1),
                  pairK->requireField("left"), roots.get(rs));
    Address p2 = nodeA_.heap().allocateInstance(pairK);
    std::size_t rp2 = roots.push(p2);
    field::setRef(nodeA_.heap(), roots.get(rp2),
                  pairK->requireField("right"), roots.get(rs));

    nodeA_.skyway().shuffleStart();
    SkywayObjectInputStream in(nodeB_.skyway());
    SkywayObjectOutputStream out(
        nodeA_.skyway(),
        [&in](const std::uint8_t *d, std::size_t n) { in.feed(d, n); });
    out.writeObject(roots.get(rp1));
    out.writeObject(roots.get(rp2));
    out.flush();
    in.finish();

    Klass *kb = nodeB_.klasses().load("test.Pair");
    Address q1 = in.buffer().roots()[0];
    Address q2 = in.buffer().roots()[1];
    EXPECT_EQ(field::getRef(nodeB_.heap(), q1,
                            kb->requireField("left")),
              field::getRef(nodeB_.heap(), q2,
                            kb->requireField("right")));
    keep_.push_back(in.releaseBuffer());
}

TEST_F(SkywayTest, StreamingThroughTinyBuffer)
{
    // A 1 KB output buffer forces many flushes mid-traversal.
    LocalRoots roots(nodeA_.heap());
    Address head = makeList(nodeA_, roots, 2000);
    Address q = transfer(head, 1 << 10, 4 << 10);
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), head, nodeB_.heap(), q));
}

TEST_F(SkywayTest, OversizedRecordGrowsBuffers)
{
    // One array record far larger than buffer and chunk sizes.
    std::vector<std::int64_t> big(20000, 7);
    Address arr = nodeA_.builder().makeLongArray(big);
    Address q = transfer(arr, 1 << 10, 1 << 10);
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), arr, nodeB_.heap(), q));
}

TEST_F(SkywayTest, CrossChunkReferencesAbsolutize)
{
    LocalRoots roots(nodeA_.heap());
    Address head = makeList(nodeA_, roots, 5000);
    // Tiny receiver chunks: thousands of records spread over many
    // chunks, with every next-pointer crossing chunk boundaries.
    nodeA_.skyway().shuffleStart();
    SkywayObjectInputStream in(nodeB_.skyway(), 1 << 10);
    SkywayObjectOutputStream out(
        nodeA_.skyway(),
        [&in](const std::uint8_t *d, std::size_t n) { in.feed(d, n); });
    out.writeObject(roots.get(0) /* head rooted first */);
    out.writeObject(head);
    out.flush();
    in.finish();
    EXPECT_GT(in.buffer().chunkCount(), 10u);
    Address q = in.buffer().roots()[1];
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), head, nodeB_.heap(), q));
    keep_.push_back(in.releaseBuffer());
}

TEST_F(SkywayTest, MultiPhaseShufflesInvalidateBaddr)
{
    LocalRoots roots(nodeA_.heap());
    Address m = makeMixed(nodeA_, roots, "multi-phase");
    std::size_t rm = roots.push(m);
    Address q1 = transfer(roots.get(rm)); // phase 1
    Address q2 = transfer(roots.get(rm)); // phase 2: fresh copy
    EXPECT_NE(q1, q2);
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), roots.get(rm),
                            nodeB_.heap(), q1));
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), roots.get(rm),
                            nodeB_.heap(), q2));
}

TEST_F(SkywayTest, SenderRequiresShufflePhase)
{
    SkywayObjectOutputStream out(
        nodeA_.skyway(), [](const std::uint8_t *, std::size_t) {});
    if (nodeA_.skyway().currentSid() == 0) {
        Address p = makePoint(nodeA_, 1, 1);
        EXPECT_DEATH(out.writeObject(p), "shuffleStart");
    }
}

TEST_F(SkywayTest, ReceivedObjectsSurviveGc)
{
    LocalRoots roots(nodeA_.heap());
    Address head = makeList(nodeA_, roots, 500);
    Address q = transfer(head);

    // Full GC on the receiver: the input buffer is pinned walkable and
    // must survive wholesale.
    nodeB_.gc().fullGc();
    nodeB_.gc().scavenge();
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), head, nodeB_.heap(), q));
}

TEST_F(SkywayTest, CardTableCoversReceivedToYoungPointers)
{
    Address p = makePoint(nodeA_, 3, 4);
    Klass *pairK_a = nodeA_.klasses().load("test.Pair");
    Address pair = nodeA_.heap().allocateInstance(pairK_a);
    std::size_t rp = nodeA_.heap().addRoot(pair);
    field::setRef(nodeA_.heap(), nodeA_.heap().root(rp),
                  pairK_a->requireField("left"), p);
    Address q = transfer(nodeA_.heap().root(rp));
    nodeA_.heap().removeRoot(rp);

    // Point a received (old) object at a young object, then scavenge:
    // the write barrier + card scan must keep the young object alive.
    Klass *pairK_b = nodeB_.klasses().load("test.Pair");
    Address young = makePoint(nodeB_, 77, 88);
    nodeB_.heap().storeRef(q, pairK_b->requireField("right").offset,
                           young);
    nodeB_.gc().scavenge();
    Address right = field::getRef(nodeB_.heap(), q,
                                  pairK_b->requireField("right"));
    ASSERT_NE(right, nullAddr);
    EXPECT_EQ((reflect::getField<std::int32_t>(nodeB_.heap(), right,
                                               "x")),
              77);
}

TEST_F(SkywayTest, FreedBufferIsCollected)
{
    LocalRoots roots(nodeA_.heap());
    Address head = makeList(nodeA_, roots, 200);
    transfer(head);
    std::size_t used = nodeB_.heap().usedOldBytes();
    keep_.back()->free(); // developer frees the input buffer
    nodeB_.gc().fullGc();
    EXPECT_LT(nodeB_.heap().usedOldBytes(), used);
}

TEST_F(SkywayTest, FieldUpdateAppliedOnReceive)
{
    nodeB_.skyway().updates().registerUpdate(
        "test.Point", "y",
        [](ManagedHeap &h, Address obj, const FieldDesc &f) {
            field::set<std::int32_t>(h, obj, f, 4242);
        });
    Address p = makePoint(nodeA_, 1, 2);
    Address q = transfer(p);
    EXPECT_EQ((reflect::getField<std::int32_t>(nodeB_.heap(), q, "x")),
              1);
    EXPECT_EQ((reflect::getField<std::int32_t>(nodeB_.heap(), q, "y")),
              4242);
}

TEST_F(SkywayTest, HeterogeneousFormatAdjustedBySender)
{
    // Receiver runs a vanilla (no-baddr) layout; the sender adjusts
    // each clone while copying. Uses a separate network so node ids
    // stay consistent.
    ClusterNetwork net2(2);
    HeapConfig vanilla;
    vanilla.format.hasBaddr = false;
    Jvm drv(catalog_, net2, 0, 0);
    Jvm recv(catalog_, net2, 1, 0, vanilla);

    LocalRoots roots(drv.heap());
    Address m = makeMixed(drv, roots, "hetero");
    std::int32_t h = drv.heap().identityHash(m);

    drv.skyway().shuffleStart();
    SkywayObjectInputStream in(recv.skyway());
    SkywayObjectOutputStream out(
        drv.skyway(),
        [&in](const std::uint8_t *d, std::size_t n) { in.feed(d, n); },
        defaultOutputBufferBytes, recv.heap().format());
    out.writeObject(m);
    out.flush();
    in.finish();
    Address q = in.buffer().roots().at(0);
    EXPECT_TRUE(graphsEqual(drv.heap(), m, recv.heap(), q));
    EXPECT_EQ(recv.heap().identityHash(q), h);
}

TEST_F(SkywayTest, FileStreamsRoundTrip)
{
    LocalRoots roots(nodeA_.heap());
    Address m = makeMixed(nodeA_, roots, "file transfer");
    nodeA_.skyway().shuffleStart();
    SkywayFileOutputStream out(nodeA_.skyway(), nodeB_.disk(),
                               "shuffle_0.bin");
    out.writeObject(m);
    out.flush();
    EXPECT_GT(out.writeIoNs(), 0u);

    SkywayFileInputStream in(nodeB_.skyway(), nodeB_.disk(),
                             "shuffle_0.bin");
    EXPECT_GT(in.readIoNs(), 0u);
    ASSERT_TRUE(in.hasNext());
    Address q = in.readObject();
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), m, nodeB_.heap(), q));
    keep_.push_back(in.releaseBuffer());
}

TEST_F(SkywayTest, SocketStreamsRoundTrip)
{
    LocalRoots roots(nodeA_.heap());
    Address head = makeList(nodeA_, roots, 300);
    nodeA_.skyway().shuffleStart();
    SkywaySocketOutputStream out(nodeA_.skyway(), net_, nodeA_.id(),
                                 nodeB_.id(), 42, 4 << 10);
    SkywaySocketInputStream in(nodeB_.skyway(), net_, nodeB_.id(), 42);
    out.writeObject(head);
    EXPECT_FALSE(in.pump()) << "stream not closed yet";
    out.close();
    ASSERT_TRUE(in.pump());
    Address q = in.readObject();
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), head, nodeB_.heap(), q));
    EXPECT_GT(net_.bytesSent(nodeA_.id(), nodeB_.id()), 0u);
    keep_.push_back(in.releaseBuffer());
}

TEST_F(SkywayTest, MultiThreadedSendersShareObjects)
{
    // Four threads send graphs that all share one subtree, each to
    // its own destination buffer. Every receiver must get a correct
    // copy; the losers of the baddr CAS use their local hash tables.
    LocalRoots roots(nodeA_.heap());
    Address shared = makeMixed(nodeA_, roots, "contended subtree");
    std::size_t rs = roots.push(shared);
    Klass *pairK = nodeA_.klasses().load("test.Pair");
    std::vector<std::size_t> tops;
    for (int t = 0; t < 4; ++t) {
        Address p = nodeA_.heap().allocateInstance(pairK);
        std::size_t rp = roots.push(p);
        field::setRef(nodeA_.heap(), roots.get(rp),
                      pairK->requireField("left"), roots.get(rs));
        tops.push_back(rp);
    }

    nodeA_.skyway().shuffleStart();
    std::vector<std::vector<std::uint8_t>> outBytes(4);
    std::vector<std::unique_ptr<SkywayObjectOutputStream>> streams;
    for (int t = 0; t < 4; ++t) {
        auto *vec = &outBytes[t];
        streams.push_back(std::make_unique<SkywayObjectOutputStream>(
            nodeA_.skyway(),
            [vec](const std::uint8_t *d, std::size_t n) {
                vec->insert(vec->end(), d, d + n);
            }));
    }

    std::vector<std::thread> threads;
    std::uint64_t fallbacks = 0;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            streams[t]->writeObject(roots.get(tops[t]));
            streams[t]->flush();
        });
    }
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < 4; ++t)
        fallbacks += streams[t]->stats().hashFallbacks;
    // At least three streams lost the CAS race for the shared subtree
    // root (one winner), so fallbacks must have happened.
    EXPECT_GE(fallbacks, 3u);

    for (int t = 0; t < 4; ++t) {
        SkywayObjectInputStream in(nodeB_.skyway());
        in.feed(outBytes[t].data(), outBytes[t].size());
        in.finish();
        Address q = in.buffer().roots().at(0);
        EXPECT_TRUE(graphsEqual(nodeA_.heap(), roots.get(tops[t]),
                                nodeB_.heap(), q))
            << "stream " << t;
        keep_.push_back(in.releaseBuffer());
    }
}

TEST_F(SkywayTest, ConcurrentTidRegistrationIsRaceFree)
{
    // Regression (TSan): Klass::tid_ is published by whichever sender
    // thread first registers the class. Every thread must observe
    // either the registered id (relaxed fast path) or take the
    // serialized registration slow path — never a torn id and never
    // two registrations for one class.
    std::vector<Klass *> ks = {
        nodeA_.klasses().load("test.Point"),
        nodeA_.klasses().load("test.Pair"),
        nodeA_.klasses().load("test.Node"),
        nodeA_.klasses().load("test.Mixed"),
        nodeA_.klasses().arrayOfPrimitive(FieldType::Int),
    };
    constexpr int kThreads = 8;
    std::vector<std::vector<std::int32_t>> ids(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (Klass *k : ks)
                ids[t].push_back(nodeA_.skyway().tidFor(k));
        });
    for (auto &th : threads)
        th.join();
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(ids[t], ids[0]) << "thread " << t;
    for (std::size_t i = 0; i < ks.size(); ++i) {
        EXPECT_EQ(ks[i]->tid(), ids[0][i]);
        EXPECT_NE(ks[i]->tid(), Klass::unregisteredTid);
    }
}

TEST_F(SkywayTest, SerializerAdapterRoundTrip)
{
    SkywaySerializer ser(nodeA_.skyway());
    SkywaySerializer des(nodeB_.skyway());
    LocalRoots roots(nodeA_.heap());
    std::size_t r1 = roots.push(makeMixed(nodeA_, roots, "adapter"));
    std::size_t r2 = roots.push(makePoint(nodeA_, 5, 6));

    VectorSink sink;
    ser.writeObject(roots.get(r1), sink);
    ser.writeObject(roots.get(r2), sink);
    ser.writeObject(nullAddr, sink);
    ser.endStream(sink);
    EXPECT_GT(ser.sendStats().objectsCopied, 0u);

    ByteSource src(sink.bytes());
    Address q1 = des.readObject(src);
    Address q2 = des.readObject(src);
    Address q3 = des.readObject(src);
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), roots.get(r1),
                            nodeB_.heap(), q1));
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), roots.get(r2),
                            nodeB_.heap(), q2));
    EXPECT_EQ(q3, nullAddr);
    EXPECT_TRUE(src.atEnd());
}

TEST_F(SkywayTest, AdapterByteCompositionAddsUp)
{
    SkywaySerializer ser(nodeA_.skyway());
    LocalRoots roots(nodeA_.heap());
    Address m = makeMixed(nodeA_, roots, "composition");
    VectorSink sink;
    ser.writeObject(m, sink);
    ser.endStream(sink);
    SkywaySendStats s = ser.sendStats();
    EXPECT_EQ(s.headerBytes + s.pointerBytes + s.paddingBytes +
                  s.dataBytes,
              s.bytesCopied);
    EXPECT_GT(s.headerBytes, 0u);
    EXPECT_GT(s.pointerBytes, 0u);
}

TEST_F(SkywayTest, StreamIdWraparoundDoesNotAliasClaims)
{
    // Regression: the stream id lives in two baddr bytes. After
    // 65,536 streams the id wraps; a claim stamped 65,536 streams ago
    // must not be mistaken for the current stream's (the wrap opens a
    // fresh shuffle phase). Found by the micro benchmark's
    // many-iteration loop.
    LocalRoots roots(nodeA_.heap());
    Address p = makePoint(nodeA_, 3, 4);
    std::size_t rp = roots.push(p);
    SkywaySerializer des(nodeB_.skyway(), 64 << 10, 4 << 10);
    for (int i = 0; i < 66000; ++i) {
        SkywaySerializer ser(nodeA_.skyway());
        VectorSink sink;
        ser.writeObject(roots.get(rp), sink);
        ser.endStream(sink);
        ByteSource src(sink.bytes());
        Address q = des.readObject(src);
        ASSERT_TRUE(graphsEqual(nodeA_.heap(), roots.get(rp),
                                nodeB_.heap(), q))
            << "stream " << i;
        des.releaseReceived();
    }
}

TEST_F(SkywayTest, TransferredBytesExceedPayloadButCarryHeaders)
{
    // Skyway ships headers and padding: more bytes than Kryo would,
    // by design (the paper's bandwidth-for-CPU tradeoff).
    LocalRoots roots(nodeA_.heap());
    Address m = makeMixed(nodeA_, roots, "bytes");
    GraphMeasure gm = measureGraph(nodeA_.heap(), m);
    SkywaySerializer ser(nodeA_.skyway());
    VectorSink sink;
    ser.writeObject(m, sink);
    ser.endStream(sink);
    EXPECT_GE(ser.sendStats().bytesCopied, gm.bytes)
        << "whole-object copies (plus marker records)";
}

} // namespace
} // namespace skyway
