/**
 * @file
 * The reflective baseline serializer, modeled on
 * java.io.ObjectOutputStream / ObjectInputStream. It reproduces the
 * three cost structures the paper attributes to the Java serializer
 * (section 1):
 *
 *  - object data is extracted and written back one field at a time
 *    through *reflective* accessors (string-keyed field lookups on
 *    every access);
 *  - types are represented by *class descriptor strings*, including
 *    the names and field tables of the whole super-class chain, so a
 *    tiny object can serialize to tens of metadata bytes;
 *  - references are encoded via a stream handle table, and the whole
 *    graph is rebuilt object-by-object with reflection on the
 *    receiving side.
 *
 * Descriptor and handle caches persist across writeObject calls until
 * reset() — mirroring ObjectOutputStream semantics (Spark resets the
 * stream periodically; see JavaSerializerFactory::resetInterval).
 *
 * The wire layout differs from the JDK's in record order (records are
 * emitted breadth-first rather than nested) so that arbitrarily deep
 * graphs cannot overflow the native stack, but the byte volume and
 * per-object work match the JDK's structure.
 */

#ifndef SKYWAY_SD_JAVASERIALIZER_HH
#define SKYWAY_SD_JAVASERIALIZER_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sd/serializer.hh"

namespace skyway
{

/** java.io-style stream type codes. */
namespace javatc
{
constexpr std::uint8_t null = 0x70;
constexpr std::uint8_t reference = 0x71;
constexpr std::uint8_t object = 0x72;
constexpr std::uint8_t string = 0x73;
constexpr std::uint8_t array = 0x74;
constexpr std::uint8_t classDesc = 0x75;
constexpr std::uint8_t classDescRef = 0x76;
constexpr std::uint8_t reset = 0x77;
constexpr std::uint8_t endGraph = 0x78;
} // namespace javatc

class JavaSerializer : public Serializer
{
  public:
    /**
     * @param env            node environment
     * @param reset_interval emit a stream reset every this many
     *                       top-level writes (0 = never); Spark's
     *                       spark.serializer.objectStreamReset is 100
     */
    explicit JavaSerializer(SdEnv env, int reset_interval = 100);

    std::string name() const override { return "java"; }

    void writeObject(Address root, ByteSink &out) override;
    Address readObject(ByteSource &in) override;
    void reset() override;

    /// @name Introspection for tests/benches
    /// @{
    std::uint64_t descriptorsWritten() const { return descWritten_; }
    std::uint64_t reflectiveAccesses() const { return reflectAccesses_; }
    /// @}

  private:
    /** Writer: class-descriptor emission with per-stream caching. */
    void writeClassDesc(Klass *k, ByteSink &out);

    /** Writer: a reference slot (null / handle). */
    void writeRefSlot(Address target, ByteSink &out);

    /** Writer: one object record (dequeued from the work queue). */
    void writeRecord(Address obj, ByteSink &out);

    /** readObject body; the public wrapper publishes metrics. */
    Address readObjectImpl(ByteSource &in);

    /** Reader: resolve a class descriptor. */
    Klass *readClassDesc(ByteSource &in);

    /** Reader: one record (tag already consumed into @p tc). */
    Address readRecord(std::uint8_t tc, ByteSource &in);

    /** Reader: a reference slot into (holder-handle, offset). */
    void readRefSlotInto(ByteSource &in, std::size_t holder_handle,
                         std::size_t off);

    void clearWriteState();
    void clearReadState();

    SdEnv env_;
    int resetInterval_;
    int writesSinceReset_ = 0;
    /**
     * Set at construction and by reset(): the next writeObject emits
     * a stream-reset marker. Streams written by different serializer
     * instances may be read back-to-back by one deserializer (a
     * shuffle reader consumes one file per source), so every
     * independent stream must begin with the marker that clears the
     * reader's handle and descriptor tables.
     */
    bool pendingReset_ = true;

    // Writer state.
    std::unordered_map<Address, std::uint32_t> handleOf_;
    std::deque<Address> pending_;
    std::unordered_map<const Klass *, std::uint32_t> descIdOf_;

    // Reader state.
    std::unique_ptr<LocalRoots> handles_;
    std::vector<Klass *> descTable_;
    struct Fixup
    {
        std::size_t holder;
        std::size_t offset;
        std::size_t target;
    };
    std::vector<Fixup> fixups_;

    // Stats.
    std::uint64_t descWritten_ = 0;
    std::uint64_t reflectAccesses_ = 0;
};

/** Factory for per-node Java serializers. */
class JavaSerializerFactory : public SerializerFactory
{
  public:
    explicit JavaSerializerFactory(int reset_interval = 100)
        : resetInterval_(reset_interval)
    {}

    std::string name() const override { return "java"; }

    std::unique_ptr<Serializer>
    create(SdEnv env) override
    {
        return std::make_unique<JavaSerializer>(env, resetInterval_);
    }

  private:
    int resetInterval_;
};

} // namespace skyway

#endif // SKYWAY_SD_JAVASERIALIZER_HH
