/**
 * @file
 * The garbage collector: a Parallel-Scavenge-flavoured generational
 * collector with a copying young collection (Cheney scan over the
 * survivor to-space plus a promotion queue), card-table scanning for
 * old-to-young references, and a mark-sweep full collection of the old
 * generation.
 *
 * Skyway-specific behaviour: pinned old-generation ranges (input
 * buffers) are never swept; opaque pins (buffers still being filled,
 * whose words are type IDs and relative pointers) are skipped entirely;
 * walkable pins (absolutized buffers) are treated as live roots.
 */

#ifndef SKYWAY_GC_COLLECTOR_HH
#define SKYWAY_GC_COLLECTOR_HH

#include <cstdint>
#include <vector>

#include "heap/heap.hh"

namespace skyway
{

/** Collection statistics for reporting. */
struct GcCycleStats
{
    std::uint64_t youngCopiedBytes = 0;
    std::uint64_t promotedBytes = 0;
    std::uint64_t oldSweptBytes = 0;
    std::uint64_t markedObjects = 0;
};

/**
 * The generational collector for one heap. Install via
 * ManagedHeap::setCollector; the heap invokes it on allocation failure,
 * and tests/benches can invoke it directly.
 */
class GenerationalGc : public ManagedHeap::Collector
{
  public:
    explicit GenerationalGc(ManagedHeap &heap);

    void scavenge() override;
    void fullGc() override;

    const GcCycleStats &lastCycle() const { return last_; }

  private:
    /** Copy young survivors; when @p promote_all, tenure everything. */
    void scavengeImpl(bool promote_all);

    /**
     * Evacuate the young object at @p obj (or return its forwarding
     * address when already copied) and enqueue the copy for scanning.
     */
    Address evacuate(Address obj, bool promote_all);

    /** Fix one reference slot during scavenge scanning. */
    void
    processSlot(Address holder, std::size_t off, bool promote_all);

    /** Mark phase of the full collection. */
    void markFrom(const std::vector<Address> &roots);

    /** Sweep the old generation, rebuilding the free list. */
    void sweepOld();

    ManagedHeap &heap_;
    std::vector<Address> scanQueue_;
    GcCycleStats last_;
};

} // namespace skyway

#endif // SKYWAY_GC_COLLECTOR_HH
