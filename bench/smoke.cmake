# Driver for the bench-smoke CTest targets: run one bench binary with
# --json=OUT (plus any extra ARGS), then validate the emitted document
# with json_check. Invoked as
#   cmake -DBENCH=... -DOUT=... -DCHECK=... [-DARGS=...] -P smoke.cmake
# ARGS is a semicolon-separated list (e.g. "--scale=0.02").

if(NOT DEFINED BENCH OR NOT DEFINED OUT OR NOT DEFINED CHECK)
    message(FATAL_ERROR "smoke.cmake: BENCH, OUT, and CHECK required")
endif()

execute_process(
    COMMAND ${BENCH} ${ARGS} --json=${OUT}
    RESULT_VARIABLE bench_rc
    OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR
        "smoke.cmake: ${BENCH} exited with ${bench_rc}")
endif()

execute_process(
    COMMAND ${CHECK} ${OUT}
    RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "smoke.cmake: json_check rejected ${OUT} (${check_rc})")
endif()
