# Empty compiler generated dependencies file for skyway_miniflink.
# This may be replaced when dependencies are built.
