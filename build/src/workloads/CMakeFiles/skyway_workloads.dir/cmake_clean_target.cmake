file(REMOVE_RECURSE
  "libskyway_workloads.a"
)
