file(REMOVE_RECURSE
  "CMakeFiles/skyway_heap.dir/heap.cc.o"
  "CMakeFiles/skyway_heap.dir/heap.cc.o.d"
  "CMakeFiles/skyway_heap.dir/objectops.cc.o"
  "CMakeFiles/skyway_heap.dir/objectops.cc.o.d"
  "libskyway_heap.a"
  "libskyway_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyway_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
