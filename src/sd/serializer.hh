/**
 * @file
 * The serializer framework: the interface every S/D implementation in
 * the repository satisfies — the reflective Java-style serializer, the
 * registration-based Kryo-style family, the schema-compiled JSBS
 * baselines, and Skyway itself (whose "serializer" adapter wraps the
 * heap-to-heap transfer so the dataflow substrates can swap it in
 * where any other serializer goes, exactly as the paper swaps it into
 * Spark and Flink).
 */

#ifndef SKYWAY_SD_SERIALIZER_HH
#define SKYWAY_SD_SERIALIZER_HH

#include <functional>
#include <memory>
#include <string>

#include "heap/heap.hh"
#include "heap/objectops.hh"
#include "support/bytebuffer.hh"

namespace skyway
{

/** The per-node environment a serializer operates in. */
struct SdEnv
{
    ManagedHeap &heap;
    KlassTable &klasses;
};

/**
 * A bidirectional object-graph serializer bound to one node. Streams
 * carry multiple top-level objects: repeated writeObject calls append
 * to one sink, repeated readObject calls consume them in order, as
 * java.io.ObjectOutputStream does.
 */
class Serializer
{
  public:
    virtual ~Serializer() = default;

    /** Stable name for reports ("java", "kryo-manual", "skyway", ...). */
    virtual std::string name() const = 0;

    /** Append the graph rooted at @p root to @p out. */
    virtual void writeObject(Address root, ByteSink &out) = 0;

    /** Read the next top-level object from @p in into the heap. */
    virtual Address readObject(ByteSource &in) = 0;

    /**
     * Reset per-stream state (handle tables, descriptor caches)
     * between independent streams, as ObjectOutputStream::reset().
     */
    virtual void reset() {}

    /**
     * Close out the stream bound to @p out. Byte-stream serializers
     * need no terminator; Skyway flushes its output buffer and writes
     * the end-of-stream marker.
     */
    virtual void endStream(ByteSink &out) { (void)out; }

    /**
     * Hook for shuffle-phase boundaries (Skyway's shuffleStart; a
     * no-op for byte-stream serializers).
     */
    virtual void startPhase() {}

    /**
     * Release objects received in previous phases (Skyway's explicit
     * input-buffer free; a no-op for byte-stream serializers whose
     * products are ordinary garbage-collected objects). Callers must
     * have finished consuming the previous phase's records.
     */
    virtual void releaseReceived() {}

    /**
     * True when objects returned by readObject live in pinned,
     * immovable storage (Skyway input buffers): callers may hold raw
     * addresses without GC roots until releaseReceived().
     */
    virtual bool receivedObjectsArePinned() const { return false; }
};

/**
 * Creates per-node serializer instances. A factory captures the
 * cluster-wide configuration (e.g., the Kryo registration order, which
 * must be identical on every node) and binds it to each node's heap.
 */
class SerializerFactory
{
  public:
    virtual ~SerializerFactory() = default;
    virtual std::string name() const = 0;
    virtual std::unique_ptr<Serializer> create(SdEnv env) = 0;
};

} // namespace skyway

#endif // SKYWAY_SD_SERIALIZER_HH
