/**
 * @file
 * Quickstart: connect two managed heaps with Skyway.
 *
 * Builds a two-node "cluster" (a driver JVM hosting the type
 * registry and a worker), creates an object graph on one heap, and
 * moves it to the other with the SkywayObjectOutput/InputStream API —
 * the paper's drop-in replacement for the standard object streams.
 * Shows that the graph arrives structurally identical, in the old
 * generation, with its cached identity hashcode intact.
 */

#include <cstdio>

#include "skyway/jvm.hh"
#include "skyway/streams.hh"

using namespace skyway;

int
main()
{
    // 1. The application's classes, shared cluster-wide (the "jar").
    ClassCatalog catalog = makeStandardCatalog();
    catalog.define(ClassDef{
        "demo.Person",
        "",
        {
            {"name", FieldType::Ref, "java.lang.String"},
            {"age", FieldType::Int, ""},
            {"friend_", FieldType::Ref, "demo.Person"},
        },
    });

    // 2. Two JVMs. Node 0 runs the type-registry driver; node 1
    //    attaches as a worker and pulls the registry view.
    ClusterNetwork net(2);
    Jvm alice(catalog, net, 0, 0);
    Jvm bob(catalog, net, 1, 0);

    // 3. Build a little object graph (with a cycle!) on Alice's heap.
    Klass *personK = alice.klasses().load("demo.Person");
    LocalRoots roots(alice.heap());
    std::size_t ada = roots.push(alice.heap().allocateInstance(personK));
    std::size_t name = roots.push(alice.builder().makeString("Ada"));
    field::setRef(alice.heap(), roots.get(ada),
                  personK->requireField("name"), roots.get(name));
    field::set<std::int32_t>(alice.heap(), roots.get(ada),
                             personK->requireField("age"), 36);
    std::size_t grace =
        roots.push(alice.heap().allocateInstance(personK));
    std::size_t gname = roots.push(alice.builder().makeString("Grace"));
    field::setRef(alice.heap(), roots.get(grace),
                  personK->requireField("name"), roots.get(gname));
    field::set<std::int32_t>(alice.heap(), roots.get(grace),
                             personK->requireField("age"), 46);
    // Mutual friendship: a reference cycle no tree-shaped serializer
    // survives without reference tracking.
    field::setRef(alice.heap(), roots.get(ada),
                  personK->requireField("friend_"), roots.get(grace));
    field::setRef(alice.heap(), roots.get(grace),
                  personK->requireField("friend_"), roots.get(ada));

    std::int32_t hash = alice.heap().identityHash(roots.get(ada));
    std::printf("sender:   Ada@%#zx, identity hash %d\n",
                roots.get(ada), hash);

    // 4. Transfer. A shuffle phase brackets the writes; the output
    //    stream clones the reachable graph into a native buffer and
    //    streams it; the input stream absolutizes it into Bob's old
    //    generation.
    alice.skyway().shuffleStart();
    SkywayObjectInputStream in(bob.skyway());
    SkywayObjectOutputStream out(
        alice.skyway(),
        [&in](const std::uint8_t *data, std::size_t len) {
            in.feed(data, len);
        });
    out.writeObject(roots.get(ada));
    out.flush();
    in.finish();

    // 5. Use the objects on Bob's heap immediately.
    Address ada2 = in.readObject();
    Klass *personB = bob.klasses().load("demo.Person");
    Address name2 = field::getRef(bob.heap(), ada2,
                                  personB->requireField("name"));
    Address friend2 = field::getRef(bob.heap(), ada2,
                                    personB->requireField("friend_"));
    Address back = field::getRef(bob.heap(), friend2,
                                 personB->requireField("friend_"));

    std::printf("receiver: %s@%#zx, identity hash %d (%s)\n",
                bob.builder().stringValue(name2).c_str(), ada2,
                bob.heap().identityHash(ada2),
                bob.heap().identityHash(ada2) == hash
                    ? "preserved — no rehashing needed"
                    : "LOST");
    std::printf("receiver: friend is %s, friend's friend is %s\n",
                bob.builder()
                    .stringValue(field::getRef(
                        bob.heap(), friend2,
                        personB->requireField("name")))
                    .c_str(),
                back == ada2 ? "Ada again (cycle preserved)"
                             : "someone else?!");
    std::printf("receiver: objects live in the old generation: %s\n",
                bob.heap().inOld(ada2) ? "yes" : "no");
    std::printf("stats:    %llu objects, %llu bytes copied\n",
                static_cast<unsigned long long>(
                    out.stats().objectsCopied),
                static_cast<unsigned long long>(
                    out.stats().bytesCopied));
    return 0;
}
