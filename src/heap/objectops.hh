/**
 * @file
 * Typed object access on top of the raw heap: field loads/stores via
 * FieldDesc, reflective access via field-name strings (deliberately
 * paying the string-lookup cost that makes Java reflection expensive),
 * reference-slot iteration (the traversal primitive shared by the GC
 * and the Skyway sender), and convenience builders for strings, boxes,
 * and arrays.
 */

#ifndef SKYWAY_HEAP_OBJECTOPS_HH
#define SKYWAY_HEAP_OBJECTOPS_HH

#include <string>
#include <string_view>
#include <vector>

#include "heap/heap.hh"
#include "klass/klass.hh"

namespace skyway
{

/** Typed field access through a resolved FieldDesc (fast path). */
namespace field
{

template <typename T>
T
get(const ManagedHeap &h, Address obj, const FieldDesc &f)
{
    return h.load<T>(obj, f.offset);
}

template <typename T>
void
set(ManagedHeap &h, Address obj, const FieldDesc &f, T v)
{
    h.store<T>(obj, f.offset, v);
}

inline Address
getRef(const ManagedHeap &h, Address obj, const FieldDesc &f)
{
    return h.loadRef(obj, f.offset);
}

inline void
setRef(ManagedHeap &h, Address obj, const FieldDesc &f, Address v)
{
    h.storeRef(obj, f.offset, v);
}

} // namespace field

/**
 * Reflective access: every call resolves the field by *name*, paying a
 * string hash + map probe, as java.lang.reflect does. The reflective
 * serializer uses exactly these entry points so its measured cost has
 * the right shape.
 */
namespace reflect
{

template <typename T>
T
getField(const ManagedHeap &h, Address obj, const std::string &name)
{
    const FieldDesc &f = h.klassOf(obj)->requireField(name);
    return h.load<T>(obj, f.offset);
}

template <typename T>
void
setField(ManagedHeap &h, Address obj, const std::string &name, T v)
{
    const FieldDesc &f = h.klassOf(obj)->requireField(name);
    h.store<T>(obj, f.offset, v);
}

Address getRefField(const ManagedHeap &h, Address obj,
                    const std::string &name);
void setRefField(ManagedHeap &h, Address obj, const std::string &name,
                 Address v);

} // namespace reflect

/**
 * Invoke @p visit(slotOffset) for every reference slot of the object at
 * @p obj — reference-typed instance fields, or every element of a
 * reference array. This is the traversal primitive used by the GC and
 * by Skyway's sender (paper Algorithm 2, lines 15-27).
 */
template <typename Visitor>
void
forEachRefSlot(const ManagedHeap &h, Address obj, Visitor &&visit)
{
    const Klass *k = h.klassOf(obj);
    if (k->isArray()) {
        if (k->elemType() != FieldType::Ref)
            return;
        std::size_t n = static_cast<std::size_t>(h.arrayLength(obj));
        std::size_t base = h.format().arrayHeaderBytes();
        for (std::size_t i = 0; i < n; ++i)
            visit(base + i * wordSize);
    } else {
        for (std::uint32_t off : k->refOffsets())
            visit(off);
    }
}

/** Array element accessors. */
namespace array
{

template <typename T>
T
get(const ManagedHeap &h, Address arr, std::size_t i)
{
    const Klass *k = h.klassOf(arr);
    return h.load<T>(arr, h.arrayElemOffset(k, i));
}

template <typename T>
void
set(ManagedHeap &h, Address arr, std::size_t i, T v)
{
    const Klass *k = h.klassOf(arr);
    h.store<T>(arr, h.arrayElemOffset(k, i), v);
}

Address getRef(const ManagedHeap &h, Address arr, std::size_t i);
void setRef(ManagedHeap &h, Address arr, std::size_t i, Address v);

} // namespace array

/**
 * Builders and views for the bootstrap classes. These are the
 * "standard library" the workloads are written against.
 */
class ObjectBuilder
{
  public:
    ObjectBuilder(ManagedHeap &heap, KlassTable &klasses)
        : heap_(heap), klasses_(klasses)
    {}

    ManagedHeap &heap() { return heap_; }
    KlassTable &klasses() { return klasses_; }

    /** Allocate a java.lang.String holding @p s (with a char[] value). */
    Address makeString(std::string_view s);

    /** Read back a java.lang.String's contents. */
    std::string stringValue(Address str) const;

    /**
     * The JDK's String.hashCode (cached in the `hash` field): computed
     * on first use, shipped with the object by every serializer that
     * serializes fields — and preserved structurally by Skyway.
     */
    std::int32_t stringHash(Address str);

    Address makeInteger(std::int32_t v);
    Address makeLong(std::int64_t v);
    Address makeDouble(double v);

    std::int32_t integerValue(Address box) const;
    std::int64_t longValue(Address box) const;
    double doubleValue(Address box) const;

    /** Allocate a primitive array and optionally fill from @p data. */
    Address makeIntArray(const std::vector<std::int32_t> &data);
    Address makeLongArray(const std::vector<std::int64_t> &data);
    Address makeDoubleArray(const std::vector<double> &data);
    Address makeCharArray(std::string_view data);

    /** Allocate a reference array of @p n null slots. */
    Address makeRefArray(const std::string &elemClass, std::size_t n);

  private:
    ManagedHeap &heap_;
    KlassTable &klasses_;
};

/**
 * A GC-safe vector of references: every element occupies a root slot,
 * so the collector keeps the referents alive and updates the entries
 * when objects move. Deserializers use this for their handle tables —
 * deserialization allocates heavily and may trigger collections
 * mid-graph.
 */
class LocalRoots
{
  public:
    explicit LocalRoots(ManagedHeap &heap) : heap_(heap) {}

    ~LocalRoots()
    {
        for (std::size_t slot : slots_)
            heap_.removeRoot(slot);
    }

    LocalRoots(const LocalRoots &) = delete;
    LocalRoots &operator=(const LocalRoots &) = delete;

    std::size_t
    push(Address a)
    {
        slots_.push_back(heap_.addRoot(a));
        return slots_.size() - 1;
    }

    Address get(std::size_t i) const { return heap_.root(slots_[i]); }
    void set(std::size_t i, Address a) { heap_.setRoot(slots_[i], a); }
    std::size_t size() const { return slots_.size(); }

    void
    clear()
    {
        for (std::size_t slot : slots_)
            heap_.removeRoot(slot);
        slots_.clear();
    }

  private:
    ManagedHeap &heap_;
    std::vector<std::size_t> slots_;
};

/**
 * A batch of received records. Records deserialized into the young
 * generation move under GC and must occupy root slots (LocalRoots);
 * records received into pinned Skyway input buffers are immovable and
 * kept alive by the buffer pin, so the batch can hold raw addresses
 * with no per-record root churn.
 */
class RecordBatch
{
  public:
    /** A batch of GC-movable records (rooted). */
    explicit RecordBatch(ManagedHeap &heap)
        : roots_(std::make_unique<LocalRoots>(heap))
    {}

    /** A batch of pinned, immovable records. */
    RecordBatch() = default;

    void
    push(Address a)
    {
        if (roots_)
            roots_->push(a);
        else
            pinned_.push_back(a);
    }

    Address
    get(std::size_t i) const
    {
        return roots_ ? roots_->get(i) : pinned_[i];
    }

    std::size_t
    size() const
    {
        return roots_ ? roots_->size() : pinned_.size();
    }

  private:
    std::unique_ptr<LocalRoots> roots_;
    std::vector<Address> pinned_;
};

/**
 * Deep structural equality of two object graphs, possibly in different
 * heaps: same klass names, same primitive payloads, same shape
 * (including sharing/cycles), and same cached hashcodes when
 * @p requireHash. Central correctness oracle for serializer tests.
 */
bool graphsEqual(const ManagedHeap &ha, Address a, const ManagedHeap &hb,
                 Address b, bool requireHash = false);

/** Count objects and bytes reachable from @p root. */
struct GraphMeasure
{
    std::size_t objects = 0;
    std::size_t bytes = 0;
};

GraphMeasure measureGraph(const ManagedHeap &h, Address root);

} // namespace skyway

#endif // SKYWAY_HEAP_OBJECTOPS_HH
