#include "sanitize/graphcheck.hh"

#include <cstring>
#include <deque>
#include <unordered_map>

#include "heap/objectops.hh"
#include "klass/klass.hh"

namespace skyway
{
namespace sanitize
{

namespace
{

const std::uint8_t *
raw(Address a, std::size_t off)
{
    return reinterpret_cast<const std::uint8_t *>(a + off);
}

std::string
at(const Klass *k, const std::string &where)
{
    return k->name() + "." + where;
}

} // namespace

GraphCheckResult
checkHeapGraphs(const ManagedHeap &ha, Address a, const ManagedHeap &hb,
                Address b, bool require_hash)
{
    GraphCheckResult r;
    auto fail = [&](std::string why) -> GraphCheckResult & {
        r.equal = false;
        r.divergence = std::move(why);
        return r;
    };

    struct Pair
    {
        Address a, b;
    };
    std::deque<Pair> work;
    // The correspondence must be a bijection: aliasing (sharing,
    // cycles) on one side must be mirrored exactly on the other.
    std::unordered_map<Address, Address> aToB, bToA;

    auto enqueue = [&](Address ca, Address cb,
                       const std::string &via) -> bool {
        if (ca == nullAddr && cb == nullAddr)
            return true;
        if (ca == nullAddr || cb == nullAddr) {
            fail("null vs non-null reference at " + via);
            return false;
        }
        auto ia = aToB.find(ca);
        auto ib = bToA.find(cb);
        if (ia != aToB.end() || ib != bToA.end()) {
            if (ia == aToB.end() || ib == bToA.end() ||
                ia->second != cb || ib->second != ca) {
                fail("aliasing differs at " + via +
                     ": the correspondence is not a bijection");
                return false;
            }
            return true;
        }
        aToB.emplace(ca, cb);
        bToA.emplace(cb, ca);
        work.push_back(Pair{ca, cb});
        return true;
    };

    if (!enqueue(a, b, "<root>"))
        return r;

    while (!work.empty()) {
        Pair p = work.front();
        work.pop_front();
        ++r.objectsCompared;

        const Klass *ka = ha.klassOf(p.a);
        const Klass *kb = hb.klassOf(p.b);
        if (ka->name() != kb->name())
            return fail("class mismatch: " + ka->name() + " vs " +
                        kb->name());

        if (require_hash) {
            Word ma = ha.markOf(p.a);
            Word mb = hb.markOf(p.b);
            if (mark::hasHash(ma) != mark::hasHash(mb))
                return fail(at(ka, "<hash>") +
                            ": cached hashcode present on one side "
                            "only");
            if (mark::hasHash(ma) &&
                mark::hashOf(ma) != mark::hashOf(mb))
                return fail(at(ka, "<hash>") + ": " +
                            std::to_string(mark::hashOf(ma)) + " vs " +
                            std::to_string(mark::hashOf(mb)));
        }

        if (ka->isArray()) {
            auto na = static_cast<std::uint64_t>(ha.arrayLength(p.a));
            auto nb = static_cast<std::uint64_t>(hb.arrayLength(p.b));
            if (na != nb)
                return fail(at(ka, "<length>") + ": " +
                            std::to_string(na) + " vs " +
                            std::to_string(nb));
            if (ka->elemType() == FieldType::Ref) {
                for (std::uint64_t i = 0; i < na; ++i) {
                    Address ca = array::getRef(ha, p.a, i);
                    Address cb = array::getRef(hb, p.b, i);
                    if (!enqueue(ca, cb,
                                 at(ka, "[" + std::to_string(i) + "]")))
                        return r;
                }
            } else {
                std::size_t bytes =
                    static_cast<std::size_t>(na) * ka->elemSize();
                if (bytes != 0 &&
                    std::memcmp(
                        raw(p.a, ha.format().arrayHeaderBytes()),
                        raw(p.b, hb.format().arrayHeaderBytes()),
                        bytes) != 0)
                    return fail(at(ka, "<elements>") +
                                ": primitive payload differs");
            }
            continue;
        }

        // Instance: fields are in identical layout order on both
        // sides (same catalog), but offsets may differ when the
        // formats do — compare through each side's own FieldDesc.
        const auto &fa = ka->fields();
        const auto &fb = kb->fields();
        if (fa.size() != fb.size())
            return fail(at(ka, "<fields>") + ": field count differs");
        for (std::size_t i = 0; i < fa.size(); ++i) {
            if (fa[i].name != fb[i].name || fa[i].type != fb[i].type)
                return fail(at(ka, fa[i].name) +
                            ": field layout differs");
            if (fa[i].type == FieldType::Ref) {
                if (!enqueue(ha.loadRef(p.a, fa[i].offset),
                             hb.loadRef(p.b, fb[i].offset),
                             at(ka, fa[i].name)))
                    return r;
            } else if (std::memcmp(raw(p.a, fa[i].offset),
                                   raw(p.b, fb[i].offset),
                                   fieldSize(fa[i].type)) != 0) {
                return fail(at(ka, fa[i].name) +
                            ": primitive value differs");
            }
        }
    }
    return r;
}

} // namespace sanitize
} // namespace skyway
