file(REMOVE_RECURSE
  "CMakeFiles/skyway_core.dir/inputbuffer.cc.o"
  "CMakeFiles/skyway_core.dir/inputbuffer.cc.o.d"
  "CMakeFiles/skyway_core.dir/jvm.cc.o"
  "CMakeFiles/skyway_core.dir/jvm.cc.o.d"
  "CMakeFiles/skyway_core.dir/sender.cc.o"
  "CMakeFiles/skyway_core.dir/sender.cc.o.d"
  "CMakeFiles/skyway_core.dir/streams.cc.o"
  "CMakeFiles/skyway_core.dir/streams.cc.o.d"
  "libskyway_core.a"
  "libskyway_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyway_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
