# Empty dependencies file for date_parser.
# This may be replaced when dependencies are built.
