#include "workloads/media.hh"

namespace skyway
{

void
defineMediaClasses(ClassCatalog &catalog)
{
    catalog.define(ClassDef{
        "jsbs.MediaContent",
        "",
        {
            {"media", FieldType::Ref, "jsbs.Media"},
            {"images", FieldType::Ref, "[Ljsbs.Image;"},
        },
    });
    catalog.define(ClassDef{
        "jsbs.Media",
        "",
        {
            {"uri", FieldType::Ref, "java.lang.String"},
            {"title", FieldType::Ref, "java.lang.String"},
            {"width", FieldType::Int, ""},
            {"height", FieldType::Int, ""},
            {"format", FieldType::Ref, "java.lang.String"},
            {"duration", FieldType::Long, ""},
            {"size", FieldType::Long, ""},
            {"bitrate", FieldType::Int, ""},
            {"hasBitrate", FieldType::Boolean, ""},
            {"persons", FieldType::Ref, "[Ljava.lang.String;"},
            {"player", FieldType::Int, ""},
            {"copyright", FieldType::Ref, "java.lang.String"},
        },
    });
    catalog.define(ClassDef{
        "jsbs.Image",
        "",
        {
            {"uri", FieldType::Ref, "java.lang.String"},
            {"title", FieldType::Ref, "java.lang.String"},
            {"width", FieldType::Int, ""},
            {"height", FieldType::Int, ""},
            {"size", FieldType::Int, ""},
        },
    });
}

MediaSchema::MediaSchema(KlassTable &klasses)
    : content(klasses.load("jsbs.MediaContent")),
      media(klasses.load("jsbs.Media")),
      image(klasses.load("jsbs.Image")),
      imageArray(klasses.arrayOfRefs("jsbs.Image")),
      stringArray(klasses.arrayOfRefs("java.lang.String")),
      cMedia(&content->requireField("media")),
      cImages(&content->requireField("images")),
      mUri(&media->requireField("uri")),
      mTitle(&media->requireField("title")),
      mWidth(&media->requireField("width")),
      mHeight(&media->requireField("height")),
      mFormat(&media->requireField("format")),
      mDuration(&media->requireField("duration")),
      mSize(&media->requireField("size")),
      mBitrate(&media->requireField("bitrate")),
      mHasBitrate(&media->requireField("hasBitrate")),
      mPersons(&media->requireField("persons")),
      mPlayer(&media->requireField("player")),
      mCopyright(&media->requireField("copyright")),
      iUri(&image->requireField("uri")),
      iTitle(&image->requireField("title")),
      iWidth(&image->requireField("width")),
      iHeight(&image->requireField("height")),
      iSize(&image->requireField("size"))
{
}

namespace
{

Address
makeImage(Jvm &jvm, LocalRoots &roots, const MediaSchema &s, Rng &rng,
          int which)
{
    ManagedHeap &h = jvm.heap();
    std::size_t ruri = roots.push(jvm.builder().makeString(
        "http://javaone.com/keynote_" + std::to_string(which) +
        "_" + std::to_string(rng.nextBounded(100000)) + ".jpg"));
    std::size_t rtitle = roots.push(
        jvm.builder().makeString("Javaone Keynote"));
    Address img = h.allocateInstance(s.image);
    field::setRef(h, img, *s.iUri, roots.get(ruri));
    field::setRef(h, img, *s.iTitle, roots.get(rtitle));
    field::set<std::int32_t>(h, img, *s.iWidth, which ? 1024 : 240);
    field::set<std::int32_t>(h, img, *s.iHeight, which ? 768 : 180);
    field::set<std::int32_t>(h, img, *s.iSize,
                             which ? media_enums::sizeLarge
                                   : media_enums::sizeSmall);
    return img;
}

} // namespace

std::size_t
makeMediaContent(Jvm &jvm, LocalRoots &roots, Rng &rng)
{
    MediaSchema s(jvm.klasses());
    ManagedHeap &h = jvm.heap();

    // Media.
    std::size_t ruri = roots.push(jvm.builder().makeString(
        "http://javaone.com/keynote_" +
        std::to_string(rng.nextBounded(1000000)) + ".mpg"));
    std::size_t rtitle = roots.push(
        jvm.builder().makeString("Javaone Keynote"));
    std::size_t rformat = roots.push(
        jvm.builder().makeString("video/mpg4"));
    std::size_t rcopy = roots.push(jvm.builder().makeString("none"));
    std::size_t rp1 = roots.push(
        jvm.builder().makeString("Bill Gates"));
    std::size_t rp2 = roots.push(
        jvm.builder().makeString("Steve Jobs"));

    Address persons = h.allocateArray(s.stringArray, 2);
    std::size_t rpersons = roots.push(persons);
    array::setRef(h, roots.get(rpersons), 0, roots.get(rp1));
    array::setRef(h, roots.get(rpersons), 1, roots.get(rp2));

    Address media = h.allocateInstance(s.media);
    std::size_t rmedia = roots.push(media);
    {
        Address m = roots.get(rmedia);
        field::setRef(h, m, *s.mUri, roots.get(ruri));
        field::setRef(h, m, *s.mTitle, roots.get(rtitle));
        field::set<std::int32_t>(h, m, *s.mWidth, 640);
        field::set<std::int32_t>(h, m, *s.mHeight, 480);
        field::setRef(h, m, *s.mFormat, roots.get(rformat));
        field::set<std::int64_t>(h, m, *s.mDuration, 18000000);
        field::set<std::int64_t>(h, m, *s.mSize, 58982400);
        field::set<std::int32_t>(h, m, *s.mBitrate, 262144);
        field::set<std::uint8_t>(h, m, *s.mHasBitrate, 1);
        field::setRef(h, m, *s.mPersons, roots.get(rpersons));
        field::set<std::int32_t>(h, m, *s.mPlayer,
                                 media_enums::playerJava);
        field::setRef(h, m, *s.mCopyright, roots.get(rcopy));
    }

    // Images.
    Address img0 = makeImage(jvm, roots, s, rng, 0);
    std::size_t ri0 = roots.push(img0);
    Address img1 = makeImage(jvm, roots, s, rng, 1);
    std::size_t ri1 = roots.push(img1);
    Address images = h.allocateArray(s.imageArray, 2);
    std::size_t rimages = roots.push(images);
    array::setRef(h, roots.get(rimages), 0, roots.get(ri0));
    array::setRef(h, roots.get(rimages), 1, roots.get(ri1));

    // Content.
    Address content = h.allocateInstance(s.content);
    std::size_t rcontent = roots.push(content);
    field::setRef(h, roots.get(rcontent), *s.cMedia,
                  roots.get(rmedia));
    field::setRef(h, roots.get(rcontent), *s.cImages,
                  roots.get(rimages));
    return rcontent;
}

bool
mediaContentWellFormed(Jvm &jvm, Address content)
{
    if (content == nullAddr)
        return false;
    ManagedHeap &h = jvm.heap();
    MediaSchema s(jvm.klasses());
    if (h.klassOf(content)->name() != "jsbs.MediaContent")
        return false;
    Address media = field::getRef(h, content, *s.cMedia);
    Address images = field::getRef(h, content, *s.cImages);
    if (media == nullAddr || images == nullAddr)
        return false;
    if (h.arrayLength(images) != 2)
        return false;
    for (int i = 0; i < 2; ++i) {
        Address img = array::getRef(h, images, i);
        if (img == nullAddr)
            return false;
        Address uri = field::getRef(h, img, *s.iUri);
        if (uri == nullAddr ||
            jvm.builder().stringValue(uri).empty())
            return false;
    }
    Address title = field::getRef(h, media, *s.mTitle);
    return title != nullAddr &&
           jvm.builder().stringValue(title) == "Javaone Keynote";
}

} // namespace skyway
