file(REMOVE_RECURSE
  "CMakeFiles/skyway_gc.dir/collector.cc.o"
  "CMakeFiles/skyway_gc.dir/collector.cc.o.d"
  "libskyway_gc.a"
  "libskyway_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyway_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
