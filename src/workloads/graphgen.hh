/**
 * @file
 * Synthetic graph generators standing in for the paper's real-world
 * inputs (Table 1: LiveJournal, Orkut, UK-2005, Twitter-2010). The
 * originals are 69M-1.5B edges; here each is generated at roughly
 * 1/100-1/1000 scale with a power-law degree distribution, preserving
 * what the evaluation depends on: skewed degrees and the relative
 * size ordering LJ < OR < UK < TW. Every generator is seeded and
 * deterministic.
 */

#ifndef SKYWAY_WORKLOADS_GRAPHGEN_HH
#define SKYWAY_WORKLOADS_GRAPHGEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hh"

namespace skyway
{

/** Generation parameters for one synthetic graph. */
struct GraphSpec
{
    std::string name;
    std::uint32_t vertices;
    std::uint64_t edges;
    double alpha;        // power-law exponent of the degree draw
    std::uint64_t seed;
    std::string description;
    /** Head-flattening shift of the power law (see Rng). */
    double shift = 150.0;
};

/** Table 1 stand-ins (default scale; multiply by --scale in benches). */
GraphSpec liveJournalShaped(double scale = 1.0);
GraphSpec orkutShaped(double scale = 1.0);
GraphSpec uk2005Shaped(double scale = 1.0);
GraphSpec twitter2010Shaped(double scale = 1.0);

/** All four, in Table 1 order. */
std::vector<GraphSpec> table1Graphs(double scale = 1.0);

/** An undirected edge list with vertices [0, numVertices). */
struct EdgeList
{
    std::uint32_t numVertices = 0;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
};

/**
 * Generate the edge list for @p spec: endpoints drawn from a
 * power-law over the vertex id space (low ids are hubs), self-loops
 * rejected, duplicates tolerated (real crawls contain them too).
 */
EdgeList generateGraph(const GraphSpec &spec);

/** Per-vertex adjacency built from an edge list (both directions). */
std::vector<std::vector<std::uint32_t>>
buildAdjacency(const EdgeList &graph);

} // namespace skyway

#endif // SKYWAY_WORKLOADS_GRAPHGEN_HH
