# Empty dependencies file for test_klass.
# This may be replaced when dependencies are built.
