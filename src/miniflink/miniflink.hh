/**
 * @file
 * miniflink: a batch tuple-dataflow substrate reproducing the part of
 * Flink the paper's section 5.3 evaluates. Rows are managed-heap
 * objects of fixed per-table classes; every shuffle channel carries
 * one row class whose serializer Flink selects *statically from the
 * schema* (per-field built-in serializers, no class tags on the
 * wire). Deserialization is *lazy*: only the fields the downstream
 * transformation declared as needed are materialized, the rest are
 * skipped — which is why Flink's deserialization time is far smaller
 * than its serialization time (8.7% vs 23.5% in the paper), the
 * asymmetry Table 4 shows Skyway removing.
 */

#ifndef SKYWAY_MINIFLINK_MINIFLINK_HH
#define SKYWAY_MINIFLINK_MINIFLINK_HH

#include <memory>
#include <string>
#include <vector>

#include "iomodel/breakdown.hh"
#include "support/bytebuffer.hh"
#include "skyway/jvm.hh"
#include "skyway/streams.hh"
#include "support/stopwatch.hh"

namespace skyway
{

/** Which data-transfer engine the cluster uses. */
enum class FlinkSerMode
{
    Builtin,
    Skyway,
};

struct FlinkConfig
{
    int numWorkers = 3;
    HeapConfig workerHeap{};
    NetworkCostModel network = gigabitEthernet();
    DiskCostModel disk{};
    /** Which transport carries remote shuffle partitions. */
    TransportKind transport = TransportKind::Model;
};

/** Fabric tag for miniflink shuffle traffic. */
namespace flinkmsg
{
constexpr int shuffle = 211;
} // namespace flinkmsg

class FlinkCluster
{
  public:
    FlinkCluster(const ClassCatalog &catalog, FlinkSerMode mode,
                 FlinkConfig config = FlinkConfig{});

    int numWorkers() const { return config_.numWorkers; }
    FlinkSerMode mode() const { return mode_; }
    Jvm &driver() { return *nodes_[0]; }
    Jvm &worker(int w) { return *nodes_[w + 1]; }
    ClusterNetwork &net() { return *net_; }
    SkywaySerializer &skywaySerializer(int w)
    {
        return *skywaySer_[w];
    }

    PhaseBreakdown &breakdown(int w) { return breakdowns_[w]; }
    PhaseBreakdown averageBreakdown() const;
    PhaseBreakdown totalBreakdown() const;
    void resetBreakdowns();

    void
    chargeCompute(int w, std::uint64_t ns)
    {
        breakdowns_[w].computeNs += ns;
    }

    int
    ownerOf(std::uint64_t key) const
    {
        return static_cast<int>(key % config_.numWorkers);
    }

  private:
    FlinkConfig config_;
    FlinkSerMode mode_;
    std::unique_ptr<ClusterNetwork> net_;
    std::vector<std::unique_ptr<Jvm>> nodes_;
    std::vector<std::unique_ptr<SkywaySerializer>> skywaySer_;
    std::vector<PhaseBreakdown> breakdowns_;
};

/**
 * The statically chosen per-row-class serializer: fixed-width
 * primitives, length-prefixed strings, fields in layout order. The
 * lazy reader materializes only @c needed fields and skips the rest
 * in the byte stream.
 */
class FlinkRowSerializer
{
  public:
    /**
     * @param klasses  node klass table
     * @param row_class the channel's row class
     * @param needed   names of fields the downstream transformation
     *                 reads; empty means "all fields"
     */
    FlinkRowSerializer(KlassTable &klasses,
                       const std::string &row_class,
                       const std::vector<std::string> &needed);

    void write(Jvm &jvm, Address row, ByteSink &out) const;
    Address read(Jvm &jvm, ByteSource &in) const;

  private:
    Klass *klass_;
    std::vector<bool> neededMask_;
    /** True when some needed field is a reference: reading it
     *  allocates (string materialization), so the row must be rooted
     *  across the read. Pure-primitive reads skip the root churn. */
    bool materializesRefs_ = false;
    /** Reusable intermediate serialization buffer (Flink's
     *  DataOutputSerializer equivalent). */
    mutable VectorSink tmp_;
    /** Index of the last needed field: the lazy reader stops parsing
     *  there and jumps to the record end via the length frame. */
    std::size_t lastNeeded_ = 0;
};

/**
 * One all-to-all exchange of rows of a single class.
 */
class FlinkShuffle
{
  public:
    /**
     * @param needed fields the consumer reads (lazy-deser set);
     *               ignored under Skyway, which moves whole objects
     */
    FlinkShuffle(FlinkCluster &cluster, std::string name,
                 std::string row_class,
                 std::vector<std::string> needed);

    void add(int src, int dst, Address row);
    void writePhase();
    std::unique_ptr<RecordBatch> read(int dst);

    std::uint64_t recordsAdded() const { return recordsAdded_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }

  private:
    std::string fileName(int src, int dst) const;

    FlinkCluster &cluster_;
    std::string name_;
    std::string rowClass_;
    std::vector<std::unique_ptr<FlinkRowSerializer>> rowSer_;
    std::vector<std::unique_ptr<LocalRoots>> srcRoots_;
    std::vector<std::vector<std::vector<std::size_t>>> buckets_;
    std::vector<std::vector<std::uint64_t>> counts_;
    bool written_ = false;
    std::uint64_t recordsAdded_ = 0;
    std::uint64_t bytesWritten_ = 0;
};

} // namespace skyway

#endif // SKYWAY_MINIFLINK_MINIFLINK_HH
