/**
 * @file
 * The Skyway library API (paper section 3.3): object output/input
 * streams that are drop-in compatible with the standard
 * ObjectOutputStream/ObjectInputStream programming model, plus file
 * and socket variants, plus the SkywaySerializer adapter that lets the
 * dataflow substrates (minispark, miniflink, the JSBS bench) swap
 * Skyway in wherever any byte-stream serializer goes — the paper's
 * "entire SkywaySerializer class is less than 100 lines" integration.
 */

#ifndef SKYWAY_SKYWAY_STREAMS_HH
#define SKYWAY_SKYWAY_STREAMS_HH

#include <memory>
#include <optional>

#include "iomodel/disk.hh"
#include "net/cluster.hh"
#include "sanitize/wirecheck.hh"
#include "sd/serializer.hh"
#include "skyway/inputbuffer.hh"
#include "skyway/sender.hh"

namespace skyway
{

/**
 * The writer stream: owns one per-destination output buffer in native
 * memory and a sender bound to it.
 */
class SkywayObjectOutputStream
{
  public:
    /**
     * @param ctx           the sending JVM's Skyway state
     * @param sink          receives flushed segments (whole records)
     * @param buffer_bytes  output-buffer capacity
     * @param target_format receiver's object format (defaults to the
     *                      local format: homogeneous cluster)
     */
    SkywayObjectOutputStream(SkywayContext &ctx,
                             OutputBuffer::FlushFn sink,
                             std::size_t buffer_bytes =
                                 defaultOutputBufferBytes,
                             std::optional<ObjectFormat> target_format =
                                 std::nullopt);

    /** Transfer the graph rooted at @p root, as writeObject(o). */
    void writeObject(Address root) { sender_.writeObject(root); }

    /** Push buffered bytes to the sink (and publish sender metrics). */
    void
    flush()
    {
        buffer_.flushNow();
        sender_.publishMetrics();
        if (validator_)
            checkWire();
    }

    std::uint64_t totalBytes() const { return buffer_.totalBytes(); }
    const SkywaySendStats &stats() const { return sender_.stats(); }
    std::uint16_t streamId() const { return sender_.streamId(); }

  private:
    /** Settle the validator's deferred checks; panic on a fault. */
    void checkWire();

    /**
     * Debug-mode wire validator (ctx.debug().validateWire), teed into
     * the flush path before the sink sees the bytes. Declared before
     * buffer_: the sink lambda holds a raw pointer to it and the
     * buffer may flush from its destructor.
     */
    std::unique_ptr<sanitize::WireValidator> validator_;
    OutputBuffer buffer_;
    SkywaySender sender_;
};

/**
 * The reader stream: feeds streamed segments into an input buffer and
 * hands out top-level objects in write order.
 */
class SkywayObjectInputStream
{
  public:
    explicit SkywayObjectInputStream(SkywayContext &ctx,
                                     std::size_t chunk_bytes =
                                         defaultInputChunkBytes)
        : buffer_(std::make_unique<InputBuffer>(ctx, chunk_bytes))
    {}

    void
    feed(const std::uint8_t *data, std::size_t len)
    {
        buffer_->feed(data, len);
    }

    /** End of stream: run the absolutization pass. */
    void
    finish()
    {
        buffer_->finalize();
    }

    bool
    hasNext() const
    {
        return buffer_->finalized() &&
               cursor_ < buffer_->roots().size();
    }

    /** The next top-level object, as readObject(). */
    Address
    readObject()
    {
        panicIf(!buffer_->finalized(),
                "SkywayObjectInputStream: readObject before finish()");
        panicIf(cursor_ >= buffer_->roots().size(),
                "SkywayObjectInputStream: no more objects");
        return buffer_->roots()[cursor_++];
    }

    InputBuffer &buffer() { return *buffer_; }

    /** Detach the underlying buffer (keeps received objects alive). */
    std::unique_ptr<InputBuffer> releaseBuffer()
    {
        return std::move(buffer_);
    }

  private:
    std::unique_ptr<InputBuffer> buffer_;
    std::size_t cursor_ = 0;
};

/** Writer variant streaming to a SimDisk file (unframed records). */
class SkywayFileOutputStream : public SkywayObjectOutputStream
{
  public:
    SkywayFileOutputStream(SkywayContext &ctx, SimDisk &disk,
                           std::string file_name,
                           std::size_t buffer_bytes =
                               defaultOutputBufferBytes);

    /** Charged write-I/O nanoseconds accumulated by flushes. */
    std::uint64_t writeIoNs() const { return *writeNs_; }

  private:
    SkywayFileOutputStream(SkywayContext &ctx, SimDisk &disk,
                           std::string file_name,
                           std::size_t buffer_bytes,
                           std::shared_ptr<std::uint64_t> write_ns);

    std::shared_ptr<std::uint64_t> writeNs_;
};

/** Reader variant consuming a whole SimDisk file. */
class SkywayFileInputStream : public SkywayObjectInputStream
{
  public:
    SkywayFileInputStream(SkywayContext &ctx, SimDisk &disk,
                          const std::string &file_name,
                          std::size_t chunk_bytes =
                              defaultInputChunkBytes);

    /** Charged read-I/O nanoseconds for the file. */
    std::uint64_t readIoNs() const { return readNs_; }

  private:
    std::uint64_t readNs_ = 0;
};

/** Writer variant streaming over the cluster fabric. */
class SkywaySocketOutputStream : public SkywayObjectOutputStream
{
  public:
    SkywaySocketOutputStream(SkywayContext &ctx, ClusterNetwork &net,
                             NodeId src, NodeId dst, int tag,
                             std::size_t buffer_bytes =
                                 defaultOutputBufferBytes);

    /** Flush and send the end-of-stream message. */
    void close();

  private:
    ClusterNetwork &net_;
    NodeId src_, dst_;
    int tag_;
    bool closed_ = false;
};

/** Reader variant draining the cluster fabric. */
class SkywaySocketInputStream : public SkywayObjectInputStream
{
  public:
    SkywaySocketInputStream(SkywayContext &ctx, ClusterNetwork &net,
                            NodeId self, int tag,
                            std::size_t chunk_bytes =
                                defaultInputChunkBytes);

    /**
     * Drain pending messages; returns true once the end-of-stream
     * message arrived (finish() is called automatically).
     */
    bool pump();

  private:
    ClusterNetwork &net_;
    NodeId self_;
    int tag_;
    bool done_ = false;
};

/**
 * The drop-in Serializer adapter. Wire format on the byte stream:
 * framed segments [u32 length][record bytes], terminated by a zero
 * length — framing exists only so a Skyway stream can live inside an
 * ordinary byte sink next to other data.
 */
class SkywaySerializer : public Serializer
{
  public:
    explicit SkywaySerializer(SkywayContext &ctx,
                              std::size_t buffer_bytes =
                                  defaultOutputBufferBytes,
                              std::size_t chunk_bytes =
                                  defaultInputChunkBytes);

    std::string name() const override { return "skyway"; }

    void writeObject(Address root, ByteSink &out) override;
    Address readObject(ByteSource &in) override;

    /** Flush + end-marker for the stream bound to @p out. */
    void endStream(ByteSink &out) override;

    void startPhase() override;

    void releaseReceived() override { freeInputBuffers(); }

    bool receivedObjectsArePinned() const override { return true; }

    /** Release all retained input buffers (developer free API). */
    void freeInputBuffers();

    /** Aggregated sender stats across streams in this phase. */
    SkywaySendStats sendStats() const;

    const SkywayContext &context() const { return ctx_; }

  private:
    void bindSink(ByteSink &out);
    void ingest(ByteSource &in);

    SkywayContext &ctx_;
    std::size_t bufferBytes_;
    std::size_t chunkBytes_;

    ByteSink *curSink_ = nullptr;
    /** Debug-mode wire validator; see SkywayObjectOutputStream. */
    std::unique_ptr<sanitize::WireValidator> wireValidator_;
    std::unique_ptr<OutputBuffer> outBuf_;
    std::unique_ptr<SkywaySender> sender_;
    SkywaySendStats doneStats_;

    std::unique_ptr<SkywayObjectInputStream> inStream_;
    std::vector<std::unique_ptr<InputBuffer>> retired_;
};

/** Factory wiring per-node SkywayContexts into the framework. */
class SkywaySerializerFactory : public SerializerFactory
{
  public:
    using CtxLookup = std::function<SkywayContext &(const SdEnv &)>;

    explicit SkywaySerializerFactory(CtxLookup lookup,
                                     std::size_t buffer_bytes =
                                         defaultOutputBufferBytes,
                                     std::size_t chunk_bytes =
                                         defaultInputChunkBytes)
        : lookup_(std::move(lookup)),
          bufferBytes_(buffer_bytes),
          chunkBytes_(chunk_bytes)
    {}

    std::string name() const override { return "skyway"; }

    std::unique_ptr<Serializer>
    create(SdEnv env) override
    {
        return std::make_unique<SkywaySerializer>(lookup_(env),
                                                  bufferBytes_,
                                                  chunkBytes_);
    }

  private:
    CtxLookup lookup_;
    std::size_t bufferBytes_;
    std::size_t chunkBytes_;
};

} // namespace skyway

#endif // SKYWAY_SKYWAY_STREAMS_HH
