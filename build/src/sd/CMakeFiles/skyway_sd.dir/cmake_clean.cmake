file(REMOVE_RECURSE
  "CMakeFiles/skyway_sd.dir/javaserializer.cc.o"
  "CMakeFiles/skyway_sd.dir/javaserializer.cc.o.d"
  "CMakeFiles/skyway_sd.dir/kryoserializer.cc.o"
  "CMakeFiles/skyway_sd.dir/kryoserializer.cc.o.d"
  "libskyway_sd.a"
  "libskyway_sd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyway_sd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
