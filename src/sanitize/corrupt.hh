/**
 * @file
 * SkywaySan corruption-injection harness (docs/SANITIZER.md).
 *
 * Proves the wire-format validator actually rejects what it claims
 * to: each CorruptionKind mutates one well-aimed aspect of a valid
 * stream (using the WireIndex byte map), and expectedFaults() names
 * the diagnostic categories the validator may legitimately report for
 * it. tests/test_sanitize.cc loops kinds x random seeds and asserts
 * the first diagnostic is in the expected set — a corruption that
 * validates clean, or that is rejected for the wrong reason, fails
 * the suite.
 */

#ifndef SKYWAY_SANITIZE_CORRUPT_HH
#define SKYWAY_SANITIZE_CORRUPT_HH

#include <cstdint>
#include <vector>

#include "sanitize/wirecheck.hh"
#include "support/rng.hh"

namespace skyway
{
namespace sanitize
{

/** One class of stream corruption the validator must reject. */
enum class CorruptionKind
{
    /** Klass word rewritten to an id no registry ever assigned. */
    ForgedTypeId,
    /** A reference slot re-aimed off every object start. */
    DanglingOffset,
    /** Stream cut mid-record. */
    Truncation,
    /** A second top mark inserted before a root's record. */
    DuplicatedTopMark,
    /** Machine-local mark bits (lock/GC/age) left set on the wire. */
    ClobberedMark,
    /** A stale sender claim left in the baddr word. */
    StaleBaddr,
    /** Reserved marker bits set on a word that is no marker. */
    BogusMarker,
    /** One random bit flipped in a header word. */
    HeaderBitFlip,
    /** Stream cut inside a compact segment (docs/WIRE_FORMAT.md). */
    CompactTruncation,
    /** A compact item tag rewritten to a code no encoder emits. */
    CompactBadTag,
    /** A compact record's type-id varint forged past the registry. */
    CompactForgedTypeId,
};

const char *corruptionKindName(CorruptionKind kind);

/**
 * Every raw-stream kind, for parameterized tests. The Compact* kinds
 * are excluded: they only have sites in streams that contain compact
 * segments, and injectCorruption panics on a siteless kind.
 */
const std::vector<CorruptionKind> &allCorruptionKinds();

/** The kinds whose sites are compact segments (SKYWAY_WIRE_COMPACT). */
const std::vector<CorruptionKind> &compactCorruptionKinds();

/**
 * Validate @p stream (panics if it is not clean — the harness only
 * corrupts known-good streams) and return its byte map.
 */
WireIndex indexStream(TypeResolver &resolver, const WireCheckConfig &cfg,
                      const std::vector<std::uint8_t> &stream);

/**
 * Return a corrupted copy of @p stream. Panics when the stream has no
 * site for @p kind (e.g. DanglingOffset on a reference-free stream);
 * callers pick graphs that exercise every kind.
 */
std::vector<std::uint8_t> injectCorruption(
    const WireIndex &index, const WireCheckConfig &cfg,
    std::vector<std::uint8_t> stream, CorruptionKind kind, Rng &rng);

/** Diagnostic categories the validator may report for @p kind. */
const std::vector<WireFault> &expectedFaults(CorruptionKind kind);

} // namespace sanitize
} // namespace skyway

#endif // SKYWAY_SANITIZE_CORRUPT_HH
