# Empty dependencies file for test_miniflink.
# This may be replaced when dependencies are built.
