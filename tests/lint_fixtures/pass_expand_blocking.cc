// lint-invariants fixture (MUST PASS rule 3): the expander only
// touches memory — item decode plus a placement helper, no sockets,
// no round trips. Not compiled — parsed by
// tools/lint_invariants.py --selftest.

unsigned char *
place(unsigned long bytes)
{
    static unsigned char chunk[4096];
    return bytes <= sizeof(chunk) ? chunk : nullptr;
}

unsigned long
expandCompactSegment(const unsigned char *data, unsigned long len)
{
    unsigned long off = 0;
    while (off < len) {
        unsigned char *dst = place(16);
        for (int i = 0; i < 16 && off < len; ++i)
            dst[i] = data[off++];
    }
    return off;
}
