file(REMOVE_RECURSE
  "CMakeFiles/test_klass.dir/test_klass.cc.o"
  "CMakeFiles/test_klass.dir/test_klass.cc.o.d"
  "test_klass"
  "test_klass.pdb"
  "test_klass[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_klass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
