/**
 * @file
 * Integration tests for miniflink: the five queries must compute
 * identical checksums under the built-in row serializers and under
 * Skyway; the built-in path must exhibit the lazy-deserialization
 * asymmetry (deser well below ser); the row serializer round-trips
 * needed and skipped fields correctly.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "miniflink/queries.hh"

namespace skyway
{
namespace
{

ClassCatalog
flinkCatalog()
{
    ClassCatalog cat = makeStandardCatalog();
    defineTpchClasses(cat);
    return cat;
}

TpchData &
smallDb()
{
    static TpchSpec spec = [] {
        TpchSpec s;
        s.scale = 0.04;
        return s;
    }();
    static TpchData db = generateTpch(spec);
    return db;
}

TEST(FlinkRowSerializer, FullRoundTrip)
{
    ClassCatalog cat = flinkCatalog();
    ClusterNetwork net(2);
    Jvm a(cat, net, 0, 0), b(cat, net, 1, 0);

    Klass *k = a.klasses().load("tpch.KeyedDouble");
    Address row = a.heap().allocateInstance(k);
    field::set<std::int64_t>(a.heap(), row, k->requireField("key"),
                             12345);
    field::set<double>(a.heap(), row, k->requireField("value"), 2.5);

    FlinkRowSerializer ser(a.klasses(), "tpch.KeyedDouble", {});
    VectorSink sink;
    ser.write(a, row, sink);
    FlinkRowSerializer des(b.klasses(), "tpch.KeyedDouble", {});
    ByteSource src(sink.bytes());
    Address out = des.read(b, src);
    EXPECT_EQ((field::get<std::int64_t>(
                  b.heap(), out,
                  b.klasses().load("tpch.KeyedDouble")
                      ->requireField("key"))),
              12345);
    EXPECT_TRUE(src.atEnd());
}

TEST(FlinkRowSerializer, LazySkipsUnneededFields)
{
    ClassCatalog cat = flinkCatalog();
    ClusterNetwork net(2);
    Jvm a(cat, net, 0, 0), b(cat, net, 1, 0);

    TpchData::Customer c{42, "Customer#42", 7, 100.5, "BUILDING"};
    Klass *k = a.klasses().load("tpch.Customer");
    LocalRoots r(a.heap());
    std::size_t rn = r.push(a.builder().makeString(c.name));
    std::size_t rm = r.push(a.builder().makeString(c.mktsegment));
    Address row = a.heap().allocateInstance(k);
    field::set<std::int32_t>(a.heap(), row, k->requireField("key"),
                             c.key);
    field::setRef(a.heap(), row, k->requireField("name"), r.get(rn));
    field::set<std::int32_t>(a.heap(), row,
                             k->requireField("nationKey"),
                             c.nationKey);
    field::set<double>(a.heap(), row, k->requireField("acctbal"),
                       c.acctbal);
    field::setRef(a.heap(), row, k->requireField("mktsegment"),
                  r.get(rm));

    FlinkRowSerializer ser(a.klasses(), "tpch.Customer", {});
    VectorSink sink;
    ser.write(a, row, sink);

    FlinkRowSerializer lazy(b.klasses(), "tpch.Customer", {"key"});
    ByteSource src(sink.bytes());
    Address out = lazy.read(b, src);
    EXPECT_TRUE(src.atEnd()) << "skipping must consume exact bytes";
    Klass *kb = b.klasses().load("tpch.Customer");
    EXPECT_EQ((field::get<std::int32_t>(b.heap(), out,
                                        kb->requireField("key"))),
              42);
    // Skipped fields stay default: the string was never materialized.
    EXPECT_EQ(field::getRef(b.heap(), out, kb->requireField("name")),
              nullAddr);
    EXPECT_EQ((field::get<double>(b.heap(), out,
                                  kb->requireField("acctbal"))),
              0.0);
}

TEST(FlinkRowSerializer, UnknownNeededFieldPanics)
{
    ClassCatalog cat = flinkCatalog();
    ClusterNetwork net(1);
    Jvm a(cat, net, 0, 0);
    EXPECT_DEATH(
        FlinkRowSerializer(a.klasses(), "tpch.Customer", {"nope"}),
        "no field");
}

class FlinkQueryTest : public ::testing::TestWithParam<char>
{
  protected:
    FlinkQueryResult
    run(FlinkSerMode mode)
    {
        ClassCatalog cat = flinkCatalog();
        FlinkConfig cfg;
        cfg.numWorkers = 3;
        FlinkCluster cluster(cat, mode, cfg);
        return runQuery(GetParam(), cluster, smallDb());
    }
};

TEST_P(FlinkQueryTest, BuiltinAndSkywayAgree)
{
    FlinkQueryResult builtin = run(FlinkSerMode::Builtin);
    FlinkQueryResult sky = run(FlinkSerMode::Skyway);
    EXPECT_DOUBLE_EQ(builtin.checksum, sky.checksum);
    EXPECT_EQ(builtin.shuffledRecords, sky.shuffledRecords);
    EXPECT_GT(builtin.shuffledRecords, 0u);
    // Skyway ships object headers: more bytes on the wire.
    EXPECT_GT(sky.shuffledBytes, builtin.shuffledBytes);
    // Both produce complete breakdowns.
    EXPECT_GT(builtin.total.serNs, 0u);
    EXPECT_GT(sky.total.readIoNs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Queries, FlinkQueryTest,
                         ::testing::Values('A', 'B', 'C', 'D', 'E'),
                         [](const auto &pinfo) {
                             return std::string(1, pinfo.param);
                         });

TEST(FlinkLaziness, DeserBelowSerOnWideRows)
{
    // QC ships full lineitem/order/customer rows but consumes only a
    // few fields: the built-in path's lazy reader must spend far less
    // time than the writer.
#ifdef SKYWAY_SANITIZER_BUILD
    GTEST_SKIP() << "real-time assertion; sanitizer overhead distorts "
                    "the lazy-read/serialize ratio";
#endif
    ClassCatalog cat = flinkCatalog();
    FlinkConfig cfg;
    cfg.numWorkers = 3;
    FlinkCluster cluster(cat, FlinkSerMode::Builtin, cfg);
    FlinkQueryResult res = runQueryC(cluster, smallDb());
    EXPECT_LT(res.total.deserNs, res.total.serNs)
        << "lazy deserialization must undercut serialization";
}

TEST(FlinkChecksums, MatchReferenceForQueryD)
{
    // Independent reference for QD: late orders per quarter.
    const TpchData &db = smallDb();
    const std::int32_t ys = 730, ye = ys + 365;
    std::unordered_set<std::int64_t> late;
    for (const auto &li : db.lineitem)
        if (li.commitDate < li.receiptDate)
            late.insert(li.orderKey);
    std::uint64_t quarters[4] = {0, 0, 0, 0};
    for (const auto &o : db.orders) {
        if (o.orderDate < ys || o.orderDate >= ye)
            continue;
        if (!late.count(o.key))
            continue;
        ++quarters[std::min((o.orderDate - ys) / 92, 3)];
    }
    double ref = 0;
    for (int q = 0; q < 4; ++q)
        ref += static_cast<double>(quarters[q]) * (q + 1);

    ClassCatalog cat = flinkCatalog();
    FlinkCluster cluster(cat, FlinkSerMode::Builtin, FlinkConfig{});
    FlinkQueryResult res = runQueryD(cluster, db);
    EXPECT_DOUBLE_EQ(res.checksum, ref);
}

TEST(FlinkDescriptions, AllQueriesDescribed)
{
    for (char q : {'A', 'B', 'C', 'D', 'E'})
        EXPECT_GT(std::string(queryDescription(q)).size(), 10u);
    EXPECT_EQ(std::string(queryDescription('Z')), "unknown");
}

} // namespace
} // namespace skyway
