/**
 * @file
 * Figure 8(a) and Table 2 of the paper: the full Spark grid — four
 * workloads (WordCount, ConnectedComponents, PageRank,
 * TriangleCounting) over the four Table 1 graphs under the Java
 * serializer, Kryo, and Skyway. Prints one breakdown row per
 * (app, graph, serializer) cell, then the Table 2 summary: each metric
 * normalized to the Java serializer with range and geometric mean.
 *
 * WordCount's input is the graph's edge list rendered as text (the
 * dataset file), so all four apps share each input. PageRank runs a
 * fixed 5 iterations (the paper caps TW at 10); CC runs to
 * convergence.
 */

#include <cmath>
#include <map>

#include "bench/benchutil.hh"
#include "workloads/graphgen.hh"

using namespace skyway;

namespace
{

std::vector<std::string>
edgeListAsText(const EdgeList &g)
{
    std::vector<std::string> lines;
    lines.reserve(g.edges.size());
    for (auto [u, v] : g.edges)
        lines.push_back("v" + std::to_string(u) + " v" +
                        std::to_string(v));
    return lines;
}

struct Cell
{
    SparkAppResult res;
};

struct Ratios
{
    std::vector<double> overall, ser, write, des, read, size;

    void
    add(const SparkAppResult &base, const SparkAppResult &x)
    {
        auto ratio = [](double a, double b) {
            return b > 0 ? a / b : 1.0;
        };
        overall.push_back(
            ratio(x.average.totalNs(), base.average.totalNs()));
        ser.push_back(ratio(x.average.serNs, base.average.serNs));
        write.push_back(
            ratio(x.average.writeIoNs, base.average.writeIoNs));
        des.push_back(ratio(x.average.deserNs, base.average.deserNs));
        read.push_back(
            ratio(x.average.readIoNs, base.average.readIoNs));
        size.push_back(ratio(static_cast<double>(x.shuffledBytes),
                             static_cast<double>(base.shuffledBytes)));
    }
};

void
printRatioLine(const char *name, const std::vector<double> &v)
{
    double lo = v[0], hi = v[0], logsum = 0;
    for (double x : v) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
        logsum += std::log(x);
    }
    std::printf("  %-8s %.2f ~ %.2f  (geomean %.2f)\n", name, lo, hi,
                std::exp(logsum / v.size()));
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = bench::parseScale(argc, argv, 0.12);
    bench::JsonReport report(argc, argv, "bench_fig8a_spark", scale);
    ClassCatalog cat = bench::fullCatalog();

    const std::vector<std::string> serializers = {"java", "kryo",
                                                  "skyway"};
    const std::vector<std::string> apps = {"WC", "CC", "PR", "TC"};

    bench::printHeader("Figure 8(a): Spark grid (per-worker average)");
    std::printf("rows are app-graph cells; columns the five-way "
                "breakdown\n\n");
    bench::printBreakdownHeader();

    std::map<std::pair<std::string, std::string>,
             std::map<std::string, SparkAppResult>>
        grid;

    for (const GraphSpec &spec : table1Graphs(scale)) {
        EdgeList g = generateGraph(spec);
        std::vector<std::string> text = edgeListAsText(g);
        for (const std::string &app : apps) {
            for (const std::string &ser : serializers) {
                auto row = report.row(spec.name + "-" + app + "/" +
                                      ser);
                bench::SparkSetup setup = bench::makeSparkSetup(ser);
                SparkConfig cfg;
                // TriangleCounting's wedge shuffles tenure hundreds
                // of MB of live records on the larger graphs.
                cfg.workerHeap.oldBytes = 3072ull << 20;
                auto cluster = bench::makeCluster(cat, setup, cfg);
                SparkAppResult res;
                if (app == "WC")
                    res = runWordCount(*cluster, text);
                else if (app == "CC")
                    res = runConnectedComponents(*cluster, g);
                else if (app == "PR")
                    res = runPageRank(*cluster, g, 5);
                else
                    res = runTriangleCount(*cluster, g);
                bench::printBreakdownRow(
                    spec.name + "-" + app + "/" + ser, res.average);
                row.value("compute_ms", res.average.computeNs / 1e6);
                row.value("ser_ms", res.average.serNs / 1e6);
                row.value("write_ms", res.average.writeIoNs / 1e6);
                row.value("deser_ms", res.average.deserNs / 1e6);
                row.value("read_ms", res.average.readIoNs / 1e6);
                row.value("total_ms", res.average.totalNs() / 1e6);
                row.value("shuffled_bytes",
                          static_cast<double>(res.shuffledBytes));
                grid[{spec.name, app}][ser] = res;
            }
            // Cross-serializer result check.
            auto &cell = grid[{spec.name, app}];
            panicIf(cell["java"].checksum != cell["kryo"].checksum ||
                        cell["java"].checksum !=
                            cell["skyway"].checksum,
                    spec.name + "-" + app +
                        ": serializers disagree on the result");
        }
    }

    // Table 2.
    Ratios kryoR, skyR;
    for (auto &[key, cell] : grid) {
        kryoR.add(cell["java"], cell["kryo"]);
        skyR.add(cell["java"], cell["skyway"]);
    }
    bench::printHeader(
        "Table 2: normalized to the Java serializer (lower is "
        "better)");
    std::printf("kryo     (paper: overall 0.39~0.94 gm 0.76, size gm "
                "0.52):\n");
    printRatioLine("overall", kryoR.overall);
    printRatioLine("ser", kryoR.ser);
    printRatioLine("write", kryoR.write);
    printRatioLine("des", kryoR.des);
    printRatioLine("read", kryoR.read);
    printRatioLine("size", kryoR.size);
    std::printf("skyway   (paper: overall 0.27~0.92 gm 0.64, des gm "
                "0.16, size gm 1.15):\n");
    printRatioLine("overall", skyR.overall);
    printRatioLine("ser", skyR.ser);
    printRatioLine("write", skyR.write);
    printRatioLine("des", skyR.des);
    printRatioLine("read", skyR.read);
    printRatioLine("size", skyR.size);
    return 0;
}
