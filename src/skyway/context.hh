/**
 * @file
 * Per-JVM Skyway state: the shuffle-phase counter driven by
 * shuffleStart() (paper section 3.3), the post-transfer field-update
 * registry (the registerUpdate API), and the Skyway-internal marker
 * classes that delimit top-level objects inside buffers.
 */

#ifndef SKYWAY_SKYWAY_CONTEXT_HH
#define SKYWAY_SKYWAY_CONTEXT_HH

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <unordered_map>

#include "heap/heap.hh"
#include "klass/klass.hh"
#include "obs/span.hh"
#include "skyway/wirecompact.hh"
#include "support/thread_annotations.hh"
#include "typereg/registry.hh"

namespace skyway
{

/**
 * A registered post-transfer field update (paper section 3.3's
 * registerUpdate): invoked on the receiving node for every transferred
 * object of the given class, overwriting the given field.
 */
class FieldUpdateRegistry
{
  public:
    using UpdateFn =
        std::function<void(ManagedHeap &heap, Address obj,
                           const FieldDesc &field)>;

    void
    registerUpdate(const std::string &class_name,
                   const std::string &field_name, UpdateFn fn)
    {
        updates_[class_name].push_back({field_name, std::move(fn)});
    }

    /** Apply all updates registered for @p k to @p obj. */
    void
    apply(ManagedHeap &heap, const Klass *k, Address obj) const
    {
        auto it = updates_.find(k->name());
        if (it == updates_.end())
            return;
        for (const auto &[fname, fn] : it->second)
            fn(heap, obj, k->requireField(fname));
    }

    bool empty() const { return updates_.empty(); }

  private:
    std::unordered_map<
        std::string,
        std::vector<std::pair<std::string, UpdateFn>>>
        updates_;
};

/**
 * SkywaySan debug-mode validation switches (docs/SANITIZER.md).
 * Default-off; when off the only cost is one branch per stream
 * construction, flush, and feed — never per object.
 */
struct DebugFlags
{
    /**
     * Run the wire-format validator over every flushed segment: the
     * sender checks its own output at flush, input buffers check what
     * they ingest, and either end panics with the first diagnostic.
     */
    bool validateWire = false;

    /**
     * Structurally audit the rebuilt object graph after
     * InputBuffer::finalize(): every reference must land on a rebuilt
     * object start (or a live local heap object installed by a field
     * update), and no machine-local mark bits may have leaked in.
     */
    bool checkReceivedGraph = false;
};

/**
 * Per-JVM Skyway runtime state shared by all of the node's streams.
 */
class SkywayContext
{
  public:
    SkywayContext(ManagedHeap &heap, KlassTable &klasses,
                  TypeResolver &resolver)
        : heap_(heap), klasses_(klasses), resolver_(resolver)
    {
        // Note: a heap *without* the baddr word can still receive
        // Skyway transfers; only sending requires the extra header
        // word, and SkywaySender enforces that.
        debug_.validateWire = std::getenv("SKYWAY_WIRE_CHECK") != nullptr;
        debug_.checkReceivedGraph =
            std::getenv("SKYWAY_GRAPH_CHECK") != nullptr;
        wireCompact_.store(wireCompactModeFromEnv(),
                           std::memory_order_relaxed);
    }

    ManagedHeap &heap() { return heap_; }
    KlassTable &klasses() { return klasses_; }
    TypeResolver &resolver() { return resolver_; }

    /**
     * The current shuffle-phase id (0 = before any phase). Readable
     * from concurrent sender worker threads; the acquire pairs with
     * shuffleStart()'s release so a worker that observes the new
     * phase id also observes everything the coordinator did before
     * opening it.
     */
    std::uint8_t currentSid() const
    {
        return sid_.load(std::memory_order_acquire);
    }

    /**
     * Begin a new shuffle phase (the paper's shuffleStart API):
     * invalidates every baddr stamped in earlier phases. The id lives
     * in one header byte, so it wraps at 255; on wrap, objects whose
     * baddr was written exactly 255 phases ago would alias — a full
     * traversal 255 phases later is vanishingly unlikely in practice
     * and tolerated here as in the paper. Phases are opened by the
     * coordinating thread between transfers, never by in-flight
     * sender workers; the mutex only orders a phase bump against a
     * concurrent stream-id wrap.
     */
    std::uint8_t
    shuffleStart() EXCLUDES(phaseMutex_)
    {
        MutexLock lock(phaseMutex_);
        std::uint8_t cur = sid_.load(std::memory_order_relaxed);
        std::uint8_t next = (cur == 255) ? 1 : cur + 1;
        sid_.store(next, std::memory_order_release);
        // Phase boundary for the span tracer: spans recorded from
        // here on aggregate under this shuffle's segment.
        obs::SpanTracer::global().beginPhase(
            "shuffle-" + std::to_string(next));
        return next;
    }

    FieldUpdateRegistry &updates() { return updates_; }
    const FieldUpdateRegistry &updates() const { return updates_; }

    /**
     * A fresh stream id. Every output stream — even two streams on
     * the same thread — gets its own id, so a baddr claim is always
     * attributable to exactly one output buffer. The id lives in two
     * baddr bytes; when it wraps, a stream could otherwise mistake a
     * claim made 65,536 streams ago for its own and emit a dangling
     * backward reference — so the wrap opens a fresh shuffle phase,
     * which invalidates every outstanding claim (streams still open
     * across the bump merely re-copy shared objects; duplication is
     * the existing cross-stream semantics, never corruption).
     *
     * Thread-safe: ParallelSender construction and concurrent stream
     * setup may allocate ids from several threads.
     */
    std::uint16_t
    allocateStreamId() EXCLUDES(streamIdMutex_, phaseMutex_)
    {
        std::uint16_t id;
        bool wrapped;
        {
            MutexLock lock(streamIdMutex_);
            id = nextStreamId_++;
            wrapped = (nextStreamId_ == 0);
            if (wrapped)
                nextStreamId_ = 1;
        }
        if (wrapped)
            shuffleStart();
        return id;
    }

    /**
     * The global type id for @p k, registering it if needed. Callable
     * from concurrent sender threads: the common path is one relaxed
     * load of the cached id; the first-registration slow path is
     * serialized because the resolver (registry view + network) is
     * not thread-safe.
     */
    std::int32_t
    tidFor(Klass *k) EXCLUDES(tidMutex_)
    {
        std::int32_t t = k->tid();
        if (t != Klass::unregisteredTid)
            return t;
        // Serializes the first registration only; the resolver may
        // perform a network round trip, so tidMutex_ must be leaf in
        // the lock order — nothing below it ever takes another lock
        // of ours (the transport's are a different subsystem).
        MutexLock lock(tidMutex_);
        t = k->tid();
        if (t == Klass::unregisteredTid) {
            t = resolver_.idForClass(k->name());
            k->setTid(t);
        }
        return t;
    }

    DebugFlags &debug() { return debug_; }
    const DebugFlags &debug() const { return debug_; }

    /**
     * Send-path compaction mode (docs/WIRE_FORMAT.md). Initialized
     * from `SKYWAY_WIRE_COMPACT` (off|auto|force, default off);
     * readable from concurrent sender threads. Streams sample the
     * mode at construction, so a change applies to streams opened
     * afterwards.
     */
    WireCompactMode wireCompactMode() const
    {
        return wireCompact_.load(std::memory_order_relaxed);
    }

    void
    setWireCompactMode(WireCompactMode m)
    {
        wireCompact_.store(m, std::memory_order_relaxed);
        // Decisions embed the old mode's threshold; start afresh.
        wireEncodings_.reset();
    }

    /**
     * The link cost driving the adaptive policy, in wall-ns per wire
     * byte (Jvm sets it from the cluster's NetworkCostModel; default
     * is gigabit-Ethernet cost). See wire::WirePolicy.
     */
    double wireNsPerByte() const
    {
        return wireNsPerByte_.load(std::memory_order_relaxed);
    }

    void
    setWireNsPerByte(double v)
    {
        wireNsPerByte_.store(v, std::memory_order_relaxed);
    }

    /** Shared per-class encoding decisions (see WireEncodingCache). */
    WireEncodingCache &wireEncodings() { return wireEncodings_; }

  private:
    ManagedHeap &heap_;
    KlassTable &klasses_;
    TypeResolver &resolver_;
    std::atomic<std::uint8_t> sid_{0};
    std::uint16_t nextStreamId_ GUARDED_BY(streamIdMutex_) = 1;
    /** Unsynchronized by design: updates are registered during node
     *  setup, before any transfer runs — registering concurrently
     *  with a receive is not supported (docs/STATIC_ANALYSIS.md). */
    FieldUpdateRegistry updates_;
    DebugFlags debug_;
    std::atomic<WireCompactMode> wireCompact_{WireCompactMode::Off};
    std::atomic<double> wireNsPerByte_{8.0};
    WireEncodingCache wireEncodings_;
    Mutex tidMutex_;
    Mutex streamIdMutex_;
    Mutex phaseMutex_;
};

} // namespace skyway

#endif // SKYWAY_SKYWAY_CONTEXT_HH
