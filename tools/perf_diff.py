#!/usr/bin/env python3
"""Diff two bench JSON reports (docs/OBSERVABILITY.md schema v1) and
flag regressions in their deterministic counters.

Usage:
    perf_diff.py BASELINE CURRENT [--threshold=0.10] [--keys=REGEX]

Rows are matched by label. Only keys matching the allowlist regex are
compared — by default the schedule-independent quantities (object and
byte counts), never wall-clock or throughput: those vary run to run on
shared CI hosts, while the copy-volume counters are exact invariants
of the workload (every stream copies its share of the graph exactly
once, regardless of how CAS races resolve), so ANY drift in them is a
behavior change, not noise. A relative change beyond the threshold in
either direction fails the diff; so do missing rows or keys.

Exit status: 0 = within threshold, 1 = regression/shape mismatch,
2 = usage or file error.
"""

import json
import re
import sys

# Deterministic by construction; see module docstring. cas_retries,
# wall_ms, mb_per_s, speedup_vs_1t are intentionally absent.
DEFAULT_KEYS = (
    r"^(threads"
    r"|objects_copied"
    r"|bytes_copied"
    r"|zero_copy_bytes"
    r"|wire_payload_bytes"
    r"|recv_objects"
    r"|skyway\.sender\.(objects_copied|bytes_copied|top_marks"
    r"|back_refs|header_bytes|pointer_bytes|padding_bytes|data_bytes)"
    r"|skyway\.receiver\.(objects_received|bytes_received"
    r"|zero_copy_bytes|refs_absolutized))$"
)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"perf_diff: cannot read {path}: {e}")
    if doc.get("schema_version") != 1:
        sys.exit(f"perf_diff: {path}: unsupported schema_version "
                 f"{doc.get('schema_version')!r}")
    return doc


def row_values(row, key_re):
    """Flatten one row's values+metrics, filtered by the allowlist."""
    out = {}
    for section in ("values", "metrics"):
        for k, v in row.get(section, {}).items():
            if key_re.match(k) and isinstance(v, (int, float)):
                out[k] = float(v)
    return out


def main(argv):
    threshold = 0.10
    key_pattern = DEFAULT_KEYS
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--keys="):
            key_pattern = arg.split("=", 1)[1]
        elif arg.startswith("--"):
            sys.exit(f"perf_diff: unknown option {arg}\n{__doc__}")
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.exit(f"perf_diff: need BASELINE and CURRENT\n{__doc__}")
    key_re = re.compile(key_pattern)

    base_doc, cur_doc = load(paths[0]), load(paths[1])
    if base_doc.get("bench") != cur_doc.get("bench"):
        print(f"perf_diff: comparing different benches: "
              f"{base_doc.get('bench')} vs {cur_doc.get('bench')}")
        return 1
    if base_doc.get("scale") != cur_doc.get("scale"):
        print(f"perf_diff: scale mismatch: {base_doc.get('scale')} vs "
              f"{cur_doc.get('scale')} — rerun at the baseline scale")
        return 1

    base_rows = {r["label"]: r for r in base_doc.get("rows", [])}
    cur_rows = {r["label"]: r for r in cur_doc.get("rows", [])}

    failures = []
    compared = 0
    for label, base_row in base_rows.items():
        if label not in cur_rows:
            failures.append(f"row '{label}': missing from current run")
            continue
        base_vals = row_values(base_row, key_re)
        cur_vals = row_values(cur_rows[label], key_re)
        for key, bv in sorted(base_vals.items()):
            if key not in cur_vals:
                failures.append(f"row '{label}' {key}: key disappeared")
                continue
            cv = cur_vals[key]
            compared += 1
            if bv == cv:
                continue
            rel = abs(cv - bv) / abs(bv) if bv else float("inf")
            if rel > threshold:
                failures.append(
                    f"row '{label}' {key}: {bv:g} -> {cv:g} "
                    f"({rel * 100:+.1f}% vs ±{threshold * 100:.0f}%)")
    for label in cur_rows:
        if label not in base_rows:
            print(f"perf_diff: note: new row '{label}' (no baseline)")

    if compared == 0:
        failures.append("no keys compared — allowlist matched nothing")
    if failures:
        print(f"perf_diff: {len(failures)} regression(s) against "
              f"{paths[0]}:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"perf_diff: OK — {compared} values across "
          f"{len(base_rows)} rows within ±{threshold * 100:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
