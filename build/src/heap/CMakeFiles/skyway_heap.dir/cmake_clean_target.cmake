file(REMOVE_RECURSE
  "libskyway_heap.a"
)
