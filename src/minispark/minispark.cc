#include "minispark/minispark.hh"

#include "sd/javaserializer.hh"
#include "skyway/streams.hh"

namespace skyway
{

SparkCluster::SparkCluster(const ClassCatalog &catalog,
                           SerializerFactory &serializer_factory,
                           SparkConfig config)
    : config_(config),
      factory_(serializer_factory),
      net_(std::make_unique<ClusterNetwork>(config.numWorkers + 1,
                                            config.network,
                                            config.transport)),
      serializers_(config.numWorkers),
      breakdowns_(config.numWorkers)
{
    panicIf(config.numWorkers < 1, "SparkCluster: need workers");
    // Driver first: it hosts the type registry.
    nodes_.push_back(
        std::make_unique<Jvm>(catalog, *net_, 0, 0, HeapConfig{}));
    for (int w = 0; w < config.numWorkers; ++w) {
        nodes_.push_back(std::make_unique<Jvm>(
            catalog, *net_, w + 1, 0, config.workerHeap));
        nodes_.back()->disk() = SimDisk(config.disk);
    }
}

Serializer &
SparkCluster::serializer(int w)
{
    if (!serializers_[w]) {
        serializers_[w] = factory_.create(
            SdEnv{worker(w).heap(), worker(w).klasses()});
    }
    return *serializers_[w];
}

Serializer &
SparkCluster::driverSerializer()
{
    if (!driverSerializer_) {
        driverSerializer_ = factory_.create(
            SdEnv{driver().heap(), driver().klasses()});
    }
    return *driverSerializer_;
}

std::unique_ptr<Serializer>
ClusterSkywayFactory::create(SdEnv env)
{
    for (auto &[heap, ctx] : contexts_) {
        if (heap == &env.heap)
            return std::make_unique<SkywaySerializer>(*ctx);
    }
    panic("ClusterSkywayFactory: create() before bind(), or heap "
          "not in the bound cluster");
}

void
ClusterSkywayFactory::bind(SparkCluster &cluster)
{
    contexts_.emplace_back(&cluster.driver().heap(),
                           &cluster.driver().skyway());
    for (int w = 0; w < cluster.numWorkers(); ++w) {
        contexts_.emplace_back(&cluster.worker(w).heap(),
                               &cluster.worker(w).skyway());
    }
}

PhaseBreakdown
SparkCluster::averageBreakdown() const
{
    PhaseBreakdown total;
    for (const auto &b : breakdowns_)
        total += b;
    int n = config_.numWorkers;
    return PhaseBreakdown{total.computeNs / n, total.serNs / n,
                          total.writeIoNs / n, total.deserNs / n,
                          total.readIoNs / n, total.bytesLocal,
                          total.bytesRemote};
}

PhaseBreakdown
SparkCluster::totalBreakdown() const
{
    PhaseBreakdown total;
    for (const auto &b : breakdowns_)
        total += b;
    return total;
}

void
SparkCluster::resetBreakdowns()
{
    for (auto &b : breakdowns_)
        b = PhaseBreakdown{};
}

ShuffleRound::ShuffleRound(SparkCluster &cluster, std::string name)
    : cluster_(cluster), name_(std::move(name))
{
    int n = cluster.numWorkers();
    buckets_.resize(n);
    counts_.assign(n, std::vector<std::uint64_t>(n, 0));
    for (int w = 0; w < n; ++w) {
        srcRoots_.push_back(
            std::make_unique<LocalRoots>(cluster.worker(w).heap()));
        buckets_[w].resize(n);
    }
    // A new shuffle phase begins: let serializers clear phase state
    // (Skyway's shuffleStart), and release objects received in the
    // previous phase — by construction apps consume a round's records
    // before opening the next round.
    for (int w = 0; w < n; ++w) {
        cluster.serializer(w).startPhase();
        cluster.serializer(w).releaseReceived();
    }
}

std::string
ShuffleRound::fileName(int src, int dst) const
{
    return name_ + ".s" + std::to_string(src) + ".d" +
           std::to_string(dst) + ".shuffle";
}

void
ShuffleRound::add(int src, int dst, Address record)
{
    panicIf(written_, "ShuffleRound: add after writePhase");
    std::size_t slot = srcRoots_[src]->push(record);
    buckets_[src][dst].push_back(slot);
    ++counts_[src][dst];
    ++recordsAdded_;
}

void
ShuffleRound::writePhase()
{
    panicIf(written_, "ShuffleRound: writePhase called twice");
    written_ = true;
    int n = cluster_.numWorkers();
    for (int src = 0; src < n; ++src) {
        Serializer &ser = cluster_.serializer(src);
        SimDisk &disk = cluster_.worker(src).disk();
        PhaseBreakdown &b = cluster_.breakdown(src);
        for (int dst = 0; dst < n; ++dst) {
            if (buckets_[src][dst].empty())
                continue;
            VectorSink sink;
            {
                // Serialization: measured, record at a time, exactly
                // as Spark writes its sorted runs.
                ScopedTimer timer(b.serNs);
                for (std::size_t slot : buckets_[src][dst])
                    ser.writeObject(srcRoots_[src]->get(slot), sink);
                ser.endStream(sink);
                ser.reset();
            }
            std::size_t len = sink.bytesWritten();
            bytesWritten_ += len;
            // Spill to the source worker's local disk (modeled).
            b.writeIoNs +=
                disk.writeFile(fileName(src, dst), sink.takeBytes());
        }
        // Outgoing records may now be collected.
        srcRoots_[src]->clear();
    }
}

std::unique_ptr<RecordBatch>
ShuffleRound::read(int dst)
{
    panicIf(!written_, "ShuffleRound: read before writePhase");
    int n = cluster_.numWorkers();
    Serializer &des = cluster_.serializer(dst);
    PhaseBreakdown &b = cluster_.breakdown(dst);
    auto out = des.receivedObjectsArePinned()
                   ? std::make_unique<RecordBatch>()
                   : std::make_unique<RecordBatch>(
                         cluster_.worker(dst).heap());

    for (int src = 0; src < n; ++src) {
        if (counts_[src][dst] == 0)
            continue;
        SimDisk &src_disk = cluster_.worker(src).disk();
        const auto &file = src_disk.file(fileName(src, dst));

        // Fetch: local partitions cost a disk read; remote ones add
        // the wire (network time folds into read I/O, Figure 3).
        b.readIoNs += src_disk.chargeRead(file.size());
        std::vector<std::uint8_t> fetched;
        const std::vector<std::uint8_t> *bytes = &file;
        if (src != dst) {
            b.readIoNs +=
                cluster_.net().model().transferNs(file.size());
            b.bytesRemote += file.size();
            // The partition crosses the fabric for real: the source
            // worker pushes, the destination polls it in (over an
            // actual socket on the tcp transport).
            cluster_.net().send(src + 1, dst + 1, sparkmsg::shuffle,
                                file);
            NetMessage msg;
            while (!cluster_.net().pollTag(dst + 1, sparkmsg::shuffle,
                                           msg)) {
            }
            fetched = std::move(msg.payload);
            bytes = &fetched;
        } else {
            b.bytesLocal += file.size();
        }

        // Deserialization: measured.
        ByteSource in(*bytes);
        ScopedTimer timer(b.deserNs);
        for (std::uint64_t i = 0; i < counts_[src][dst]; ++i)
            out->push(des.readObject(in));
    }
    return out;
}

ClosureBroadcast::ClosureBroadcast(SparkCluster &cluster, Address root)
{
    // Closures travel through the Java serializer regardless of the
    // configured data serializer (paper section 5.2 and our setup).
    JavaSerializer ser(
        SdEnv{cluster.driver().heap(), cluster.driver().klasses()});
    VectorSink sink;
    ser.writeObject(root, sink);
    bytes_ = sink.bytesWritten();

    for (int w = 0; w < cluster.numWorkers(); ++w) {
        Jvm &jvm = cluster.worker(w);
        PhaseBreakdown &b = cluster.breakdown(w);
        // Driver -> worker wire time lands on the worker's read side.
        b.readIoNs += cluster.net().model().transferNs(bytes_);
        b.bytesRemote += bytes_;
        // Each copy of the closure crosses the fabric for real.
        cluster.net().send(0, w + 1, sparkmsg::closure, sink.bytes());
        NetMessage msg;
        while (!cluster.net().pollTag(w + 1, sparkmsg::closure, msg)) {
        }

        JavaSerializer des(SdEnv{jvm.heap(), jvm.klasses()});
        ByteSource src(msg.payload);
        auto roots = std::make_unique<LocalRoots>(jvm.heap());
        {
            ScopedTimer timer(b.deserNs);
            roots->push(des.readObject(src));
        }
        workerRoots_.push_back(std::move(roots));
    }
}

Address
ClosureBroadcast::onWorker(int w) const
{
    return workerRoots_[w]->get(0);
}

CollectAction::CollectAction(SparkCluster &cluster) : cluster_(cluster)
{
    for (int w = 0; w < cluster.numWorkers(); ++w) {
        srcRoots_.push_back(
            std::make_unique<LocalRoots>(cluster.worker(w).heap()));
    }
    for (int w = 0; w < cluster.numWorkers(); ++w) {
        cluster.serializer(w).startPhase();
        cluster.serializer(w).releaseReceived();
    }
    cluster.driverSerializer().startPhase();
}

void
CollectAction::add(int src, Address record)
{
    panicIf(done_, "CollectAction: add after collect");
    srcRoots_[src]->push(record);
}

std::unique_ptr<RecordBatch>
CollectAction::collect()
{
    panicIf(done_, "CollectAction: collect called twice");
    done_ = true;
    Serializer &des = cluster_.driverSerializer();
    auto out = des.receivedObjectsArePinned()
                   ? std::make_unique<RecordBatch>()
                   : std::make_unique<RecordBatch>(
                         cluster_.driver().heap());

    for (int w = 0; w < cluster_.numWorkers(); ++w) {
        if (srcRoots_[w]->size() == 0)
            continue;
        Serializer &ser = cluster_.serializer(w);
        PhaseBreakdown &b = cluster_.breakdown(w);
        VectorSink sink;
        {
            // Task results are serialized with the data serializer
            // and pushed straight over the wire (no spill).
            ScopedTimer timer(b.serNs);
            for (std::size_t i = 0; i < srcRoots_[w]->size(); ++i)
                ser.writeObject(srcRoots_[w]->get(i), sink);
            ser.endStream(sink);
            ser.reset();
        }
        bytes_ += sink.bytesWritten();
        b.readIoNs +=
            cluster_.net().model().transferNs(sink.bytesWritten());
        b.bytesRemote += sink.bytesWritten();
        // Task results travel worker -> driver over the fabric.
        cluster_.net().send(w + 1, 0, sparkmsg::collect,
                            sink.takeBytes());
        NetMessage msg;
        while (!cluster_.net().pollTag(0, sparkmsg::collect, msg)) {
        }

        ByteSource in(msg.payload);
        for (std::size_t i = 0; i < srcRoots_[w]->size(); ++i)
            out->push(des.readObject(in));
        srcRoots_[w]->clear();
    }
    return out;
}

} // namespace skyway
