/**
 * @file
 * Field type descriptors for managed classes. Mirrors the JVM's field
 * kinds: eight primitive types plus references.
 */

#ifndef SKYWAY_KLASS_FIELD_HH
#define SKYWAY_KLASS_FIELD_HH

#include <cstdint>
#include <string>

#include "support/logging.hh"

namespace skyway
{

/** The JVM's field kinds. */
enum class FieldType : std::uint8_t
{
    Boolean,
    Byte,
    Char,
    Short,
    Int,
    Long,
    Float,
    Double,
    Ref,
};

/** Storage size of a field of type @p t, in bytes. */
constexpr std::size_t
fieldSize(FieldType t)
{
    switch (t) {
      case FieldType::Boolean:
      case FieldType::Byte:
        return 1;
      case FieldType::Char:
      case FieldType::Short:
        return 2;
      case FieldType::Int:
      case FieldType::Float:
        return 4;
      case FieldType::Long:
      case FieldType::Double:
      case FieldType::Ref:
        return 8;
    }
    return 0;
}

/** One-character JVM descriptor for @p t (e.g., 'I' for int). */
char fieldDescriptorChar(FieldType t);

/** Parse a one-character JVM descriptor back into a FieldType. */
FieldType fieldTypeFromDescriptor(char c);

/**
 * A field as declared by the application, before layout. @c refClass is
 * only meaningful for FieldType::Ref and names the static type of the
 * referent (used by schema-based serializers).
 */
struct FieldDef
{
    std::string name;
    FieldType type;
    std::string refClass;
};

/**
 * A field after layout: @c offset is the byte offset of the field's
 * storage from the start of the object (header included).
 */
struct FieldDesc
{
    std::string name;
    FieldType type;
    std::uint32_t offset;
    std::string refClass;
};

} // namespace skyway

#endif // SKYWAY_KLASS_FIELD_HH
