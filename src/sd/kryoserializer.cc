#include "sd/kryoserializer.hh"

#include "obs/metrics.hh"
#include "obs/span.hh"

namespace skyway
{

namespace
{

/** Record class codes: 0 ends a graph, 1 carries a class name. */
constexpr std::uint32_t codeEndGraph = 0;
constexpr std::uint32_t codeUnregistered = 1;
constexpr std::uint32_t codeRegisteredBase = 2;

/** Registry-backed baseline-serializer counters. */
struct KryoSdMetrics
{
    obs::Counter &objectsWritten;
    obs::Counter &bytesWritten;
    obs::Counter &objectsRead;

    static KryoSdMetrics &
    get()
    {
        auto &r = obs::MetricsRegistry::global();
        static KryoSdMetrics m{
            r.counter("sd.kryo.objects_written"),
            r.counter("sd.kryo.bytes_written"),
            r.counter("sd.kryo.objects_read"),
        };
        return m;
    }
};

} // namespace

int
KryoRegistry::registerClass(const std::string &class_name,
                            KryoManual manual)
{
    auto it = index_.find(class_name);
    panicIf(it != index_.end(),
            "KryoRegistry: " + class_name + " registered twice");
    int id = static_cast<int>(entries_.size());
    entries_.push_back(Entry{class_name, std::move(manual)});
    index_[class_name] = id;
    return id;
}

int
KryoRegistry::idOf(const std::string &class_name) const
{
    auto it = index_.find(class_name);
    return it == index_.end() ? -1 : it->second;
}

void
kryoRegisterBuiltins(KryoRegistry &registry)
{
    // String: chars plus the cached content hash, as Kryo's built-in
    // StringSerializer (which writes the chars; the hash field is
    // cheap and keeps content hashes warm).
    KryoManual stringManual;
    stringManual.write = [](KryoSerializer &kryo, Address obj,
                            ByteSink &out) {
        ObjectBuilder builder(kryo.env().heap, kryo.env().klasses);
        out.writeString(builder.stringValue(obj));
        out.writeVarI32(reflect::getField<std::int32_t>(
            kryo.env().heap, obj, "hash"));
    };
    stringManual.read = [](KryoSerializer &kryo,
                           ByteSource &in) -> Address {
        ObjectBuilder builder(kryo.env().heap, kryo.env().klasses);
        std::string v = in.readString();
        std::int32_t hash = in.readVarI32();
        Address s = builder.makeString(v);
        std::size_t h = kryo.adoptObject(s);
        reflect::setField<std::int32_t>(kryo.env().heap,
                                        kryo.objectAt(h), "hash", hash);
        return kryo.objectAt(h);
    };
    registry.registerClass("java.lang.String", std::move(stringManual));
    registry.registerClass("[C");
    registry.registerClass("[B");
    registry.registerClass("[I");
    registry.registerClass("[J");
    registry.registerClass("[D");
    registry.registerClass("java.lang.Integer");
    registry.registerClass("java.lang.Long");
    registry.registerClass("java.lang.Double");
}

KryoSerializer::KryoSerializer(SdEnv env, const KryoRegistry &registry,
                               bool track_references, std::string name)
    : env_(env),
      registry_(registry),
      trackReferences_(track_references),
      name_(std::move(name)),
      handles_(std::make_unique<LocalRoots>(env.heap))
{
}

void
KryoSerializer::reset()
{
    handleOf_.clear();
    pending_.clear();
    nextWriteHandle_ = 0;
    handles_->clear();
    fixups_.clear();
}

void
KryoSerializer::writeRefSlot(Address target, ByteSink &out)
{
    if (target == nullAddr) {
        out.writeVarU32(0);
        return;
    }
    std::uint32_t handle;
    if (trackReferences_) {
        auto it = handleOf_.find(target);
        if (it != handleOf_.end()) {
            handle = it->second;
        } else {
            handle = nextWriteHandle_++;
            handleOf_.emplace(target, handle);
            pending_.push_back(target);
        }
    } else {
        // No reference tracking: every slot spawns a fresh copy.
        handle = nextWriteHandle_++;
        pending_.push_back(target);
    }
    out.writeVarU32(handle + 1);
}

KryoSerializer::Resolved &
KryoSerializer::resolve(int class_id)
{
    if (resolved_.size() <= static_cast<std::size_t>(class_id))
        resolved_.resize(class_id + 1);
    Resolved &r = resolved_[class_id];
    if (!r.klass) {
        const auto &entry = registry_.entries()[class_id];
        r.klass = env_.klasses.load(entry.className);
        if (entry.manual.write && entry.manual.read)
            r.manual = &entry.manual;
    }
    return r;
}

void
KryoSerializer::writeFields(Address obj, Klass *k, ByteSink &out)
{
    // Kryo's FieldSerializer: iterate the *cached* resolved field
    // table — direct offset access, no string lookups.
    for (const FieldDesc &f : k->fields()) {
        switch (f.type) {
          case FieldType::Boolean:
          case FieldType::Byte:
            out.writeU8(env_.heap.load<std::uint8_t>(obj, f.offset));
            break;
          case FieldType::Char:
          case FieldType::Short:
            out.writeU16(env_.heap.load<std::uint16_t>(obj, f.offset));
            break;
          case FieldType::Int:
            out.writeVarI32(
                env_.heap.load<std::int32_t>(obj, f.offset));
            break;
          case FieldType::Long:
            out.writeVarI64(
                env_.heap.load<std::int64_t>(obj, f.offset));
            break;
          case FieldType::Float:
            out.writeF32(env_.heap.load<float>(obj, f.offset));
            break;
          case FieldType::Double:
            out.writeF64(env_.heap.load<double>(obj, f.offset));
            break;
          case FieldType::Ref:
            writeRefSlot(env_.heap.loadRef(obj, f.offset), out);
            break;
        }
    }
}

void
KryoSerializer::writeRecord(Address obj, ByteSink &out)
{
    Klass *k = env_.heap.klassOf(obj);

    int id;
    auto it = writeIdCache_.find(k->name());
    if (it != writeIdCache_.end()) {
        id = it->second;
    } else {
        id = registry_.idOf(k->name());
        writeIdCache_[k->name()] = id;
    }

    const KryoManual *manual = nullptr;
    if (id >= 0) {
        out.writeVarU32(codeRegisteredBase + id);
        Resolved &r = resolve(id);
        manual = r.manual;
    } else {
        // Unregistered: fall back to shipping the class name, as Kryo
        // does when registrationRequired=false.
        ++unregistered_;
        out.writeVarU32(codeUnregistered);
        out.writeString(k->name());
    }

    if (manual) {
        manual->write(*this, obj, out);
        return;
    }

    if (k->isArray()) {
        auto n = static_cast<std::size_t>(env_.heap.arrayLength(obj));
        out.writeVarU64(n);
        switch (k->elemType()) {
          case FieldType::Int:
            for (std::size_t i = 0; i < n; ++i)
                out.writeVarI32(array::get<std::int32_t>(env_.heap,
                                                         obj, i));
            break;
          case FieldType::Long:
            for (std::size_t i = 0; i < n; ++i)
                out.writeVarI64(array::get<std::int64_t>(env_.heap,
                                                         obj, i));
            break;
          case FieldType::Ref:
            for (std::size_t i = 0; i < n; ++i)
                writeRefSlot(array::getRef(env_.heap, obj, i), out);
            break;
          default: {
            std::size_t sz = k->elemSize();
            const void *p = reinterpret_cast<const void *>(
                obj + env_.heap.format().arrayHeaderBytes());
            out.write(p, n * sz);
            break;
          }
        }
        return;
    }

    writeFields(obj, k, out);
}

void
KryoSerializer::writeObject(Address root, ByteSink &out)
{
    SKYWAY_SPAN("sd.kryo.write");
    std::size_t bytes_before = out.bytesWritten();

    // Kryo scopes reference resolution to each top-level call.
    handleOf_.clear();
    pending_.clear();
    nextWriteHandle_ = 0;

    writeRefSlot(root, out);
    while (!pending_.empty()) {
        Address obj = pending_.front();
        pending_.pop_front();
        writeRecord(obj, out);
    }
    out.writeVarU32(codeEndGraph);

    KryoSdMetrics &m = KryoSdMetrics::get();
    m.objectsWritten.inc();
    m.bytesWritten.add(out.bytesWritten() - bytes_before);
}

std::size_t
KryoSerializer::adoptObject(Address obj)
{
    return handles_->push(obj);
}

void
KryoSerializer::readRefSlotInto(ByteSource &in, std::size_t holder_handle,
                                std::size_t off)
{
    std::uint32_t v = in.readVarU32();
    if (v == 0) {
        env_.heap.store<Address>(handles_->get(holder_handle), off,
                                 nullAddr);
        return;
    }
    std::size_t target = v - 1;
    if (target < handles_->size()) {
        env_.heap.storeRef(handles_->get(holder_handle), off,
                           handles_->get(target));
    } else {
        fixups_.push_back(Fixup{holder_handle, off, target});
    }
}

void
KryoSerializer::readFields(std::size_t handle, Klass *k, ByteSource &in)
{
    for (const FieldDesc &f : k->fields()) {
        Address obj = handles_->get(handle);
        switch (f.type) {
          case FieldType::Boolean:
          case FieldType::Byte:
            env_.heap.store<std::uint8_t>(obj, f.offset, in.readU8());
            break;
          case FieldType::Char:
          case FieldType::Short:
            env_.heap.store<std::uint16_t>(obj, f.offset, in.readU16());
            break;
          case FieldType::Int:
            env_.heap.store<std::int32_t>(obj, f.offset,
                                          in.readVarI32());
            break;
          case FieldType::Long:
            env_.heap.store<std::int64_t>(obj, f.offset,
                                          in.readVarI64());
            break;
          case FieldType::Float:
            env_.heap.store<float>(obj, f.offset, in.readF32());
            break;
          case FieldType::Double:
            env_.heap.store<double>(obj, f.offset, in.readF64());
            break;
          case FieldType::Ref:
            readRefSlotInto(in, handle, f.offset);
            break;
        }
    }
}

void
KryoSerializer::readRecord(std::uint32_t code, ByteSource &in)
{
    panicIf(code == codeEndGraph,
            "KryoSerializer: internal: end inside record loop");

    Klass *k;
    const KryoManual *manual = nullptr;
    if (code == codeUnregistered) {
        k = env_.klasses.load(in.readString());
    } else {
        Resolved &r = resolve(static_cast<int>(code -
                                               codeRegisteredBase));
        k = r.klass;
        manual = r.manual;
    }

    if (manual) {
        manual->read(*this, in);
        return;
    }

    if (k->isArray()) {
        std::size_t n = in.readVarU64();
        Address arr = env_.heap.allocateArray(k, n);
        std::size_t handle = adoptObject(arr);
        switch (k->elemType()) {
          case FieldType::Int:
            for (std::size_t i = 0; i < n; ++i)
                array::set<std::int32_t>(env_.heap,
                                         handles_->get(handle), i,
                                         in.readVarI32());
            break;
          case FieldType::Long:
            for (std::size_t i = 0; i < n; ++i)
                array::set<std::int64_t>(env_.heap,
                                         handles_->get(handle), i,
                                         in.readVarI64());
            break;
          case FieldType::Ref:
            for (std::size_t i = 0; i < n; ++i)
                readRefSlotInto(in, handle,
                                env_.heap.arrayElemOffset(k, i));
            break;
          default: {
            std::size_t sz = k->elemSize();
            Address a = handles_->get(handle);
            in.read(reinterpret_cast<void *>(
                        a + env_.heap.format().arrayHeaderBytes()),
                    n * sz);
            break;
          }
        }
        return;
    }

    // The "plain new" creation path Kryo generates from registration.
    Address obj = env_.heap.allocateInstance(k);
    std::size_t handle = adoptObject(obj);
    readFields(handle, k, in);
}

Address
KryoSerializer::readObject(ByteSource &in)
{
    SKYWAY_SPAN("sd.kryo.read");
    KryoSdMetrics::get().objectsRead.inc();

    handles_->clear();
    fixups_.clear();

    std::uint32_t v = in.readVarU32();
    if (v == 0) {
        std::uint32_t end = in.readVarU32();
        panicIf(end != codeEndGraph, "KryoSerializer: bad null graph");
        return nullAddr;
    }
    std::size_t rootHandle = v - 1;

    while (true) {
        std::uint32_t code = in.readVarU32();
        if (code == codeEndGraph)
            break;
        readRecord(code, in);
    }

    for (const Fixup &fx : fixups_) {
        env_.heap.storeRef(handles_->get(fx.holder), fx.offset,
                           handles_->get(fx.target));
    }
    fixups_.clear();

    return handles_->get(rootHandle);
}

} // namespace skyway
