/**
 * @file
 * Figure 3 of the paper: the motivating experiment. TriangleCounting
 * over the LiveJournal-shaped graph on 3 workers, under the Kryo and
 * Java serializers:
 *   (a) the five-way performance breakdown, where S/D takes >30% of
 *       total time under both serializers;
 *   (b) the bytes shuffled, split into local and remote fetches,
 *       where the Java serializer's descriptor strings inflate the
 *       byte volume.
 */

#include "bench/benchutil.hh"
#include "workloads/graphgen.hh"

using namespace skyway;

int
main(int argc, char **argv)
{
    double scale = bench::parseScale(argc, argv, 0.25);
    bench::JsonReport report(argc, argv, "bench_fig3_spark_breakdown",
                             scale);
    ClassCatalog cat = bench::fullCatalog();
    EdgeList lj = generateGraph(liveJournalShaped(scale));

    bench::printHeader(
        "Figure 3(a): Spark TriangleCounting/LJ breakdown "
        "(per-worker average)");
    bench::printBreakdownHeader();

    struct Outcome
    {
        SparkAppResult res;
    };
    std::vector<std::pair<std::string, SparkAppResult>> outcomes;

    for (const std::string which : {"kryo", "java"}) {
        auto row = report.row(which);
        bench::SparkSetup setup = bench::makeSparkSetup(which);
        auto cluster = bench::makeCluster(cat, setup);
        SparkAppResult res = runTriangleCount(*cluster, lj);
        bench::printBreakdownRow(which, res.average);
        row.value("compute_ms", res.average.computeNs / 1e6);
        row.value("ser_ms", res.average.serNs / 1e6);
        row.value("write_ms", res.average.writeIoNs / 1e6);
        row.value("deser_ms", res.average.deserNs / 1e6);
        row.value("read_ms", res.average.readIoNs / 1e6);
        row.value("total_ms", res.average.totalNs() / 1e6);
        row.value("local_bytes",
                  static_cast<double>(res.total.bytesLocal));
        row.value("remote_bytes",
                  static_cast<double>(res.total.bytesRemote));
        outcomes.emplace_back(which, res);
    }

    // S/D share of total, the paper's >30% observation.
    std::printf("\nS/D share of total time:\n");
    for (auto &[name, res] : outcomes) {
        double sd = res.average.serNs + res.average.deserNs;
        std::printf("  %-6s %5.1f%%  (paper: ~32%% kryo, ~34%% "
                    "java)\n",
                    name.c_str(), 100.0 * sd / res.average.totalNs());
    }

    bench::printHeader("Figure 3(b): bytes shuffled");
    std::printf("%-8s %14s %14s\n", "config", "local_MB",
                "remote_MB");
    for (auto &[name, res] : outcomes) {
        std::printf("%-8s %14.2f %14.2f\n", name.c_str(),
                    res.total.bytesLocal / 1e6,
                    res.total.bytesRemote / 1e6);
    }
    std::printf("\n(java > kryo in remote bytes because descriptor "
                "strings travel with the data; triangles = %.0f for "
                "both)\n",
                outcomes[0].second.checksum);
    panicIf(outcomes[0].second.checksum !=
                outcomes[1].second.checksum,
            "serializers disagree on the result");
    return 0;
}
