/**
 * @file
 * Adaptive per-class compact wire encoding (docs/WIRE_FORMAT.md).
 *
 * Skyway's known cost is byte inflation: raw transfer ships object
 * headers, alignment padding, and 8-byte reference slots alongside
 * the actual data. The compact encoder sits behind the sender's
 * flush tee and rewrites a flushed segment class by class: classes
 * whose estimated saving beats the CPU cost of re-encoding travel as
 * tagged compact items (no padding, varint-narrowed in-segment
 * references, optional zero-run RLE for dense primitive arrays);
 * everything else travels verbatim inside the same segment. The
 * receiver re-expands compact items during its existing linear scan,
 * writing full heap-format records into the same chunks — heap
 * semantics, baddr relocation, and everything downstream of the
 * expander are unchanged.
 *
 * Compact segment layout (all varints LEB128):
 *
 *   [8B marker::compactSeg][varint payloadLen][payload = items...]
 *
 *   item := 0x01                                   top mark
 *         | 0x02 varint(slotWord)                  backward reference
 *         | 0x03 varint(rawLen) rawBytes           raw record, verbatim
 *         | 0x04 varint(tid) varint(mark) fields   instance, packed
 *         | 0x05 varint(tid) varint(mark) varint(n) payload
 *                                                  primitive array
 *         | 0x06 varint(tid) varint(mark) varint(n) varint(slot)*n
 *                                                  reference array
 *         | 0x07 varint(tid) varint(mark) varint(n) rlePairs
 *                                                  primitive array, RLE
 *
 * The per-class raw/compact choice is driven by a static layout
 * estimate (optionally served by the type registry with LOOKUP) and
 * refined by measured per-class byte accounting; the threshold scales
 * with the link's ns-per-byte cost so compaction pays no CPU tax
 * where bandwidth is free (see WirePolicy).
 */

#ifndef SKYWAY_SKYWAY_WIRECOMPACT_HH
#define SKYWAY_SKYWAY_WIRECOMPACT_HH

#include <cstdint>
#include <cstring>
#include <functional>
#include <unordered_map>
#include <vector>

#include "klass/objectformat.hh"
#include "skyway/outputbuffer.hh"
#include "support/thread_annotations.hh"

namespace skyway
{

class Klass;
class SkywayContext;

/** Send-path compaction switch (env `SKYWAY_WIRE_COMPACT`). */
enum class WireCompactMode
{
    /** Every segment travels raw — the seed wire format. */
    Off,
    /** Per-class adaptive choice (the default policy, see WirePolicy). */
    Auto,
    /** Every eligible record travels compact, regardless of the win
     *  estimate — for tests and the forced CI pass. */
    Force,
};

/** Parse `SKYWAY_WIRE_COMPACT` (off|auto|force; unset/unknown = Off). */
WireCompactMode wireCompactModeFromEnv();

namespace wire
{

/** Compact item tags (one byte each, see file header for layouts). */
constexpr std::uint8_t ctTopMark = 0x01;
constexpr std::uint8_t ctBackRef = 0x02;
constexpr std::uint8_t ctRawRecord = 0x03;
constexpr std::uint8_t ctInstance = 0x04;
constexpr std::uint8_t ctPrimArray = 0x05;
constexpr std::uint8_t ctRefArray = 0x06;
constexpr std::uint8_t ctPrimArrayRle = 0x07;

/** Zero runs shorter than this stay literal in the RLE coder. */
constexpr std::size_t rleMinZeroRun = 16;

/** LEB128 append / measure (shared by the encoder, the SkywaySan
 *  corruption harness, and registry hints — inline so the sanitize
 *  library needs no link dependency on the send path). */
inline void
putVarU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

inline std::size_t
varLen(std::uint64_t v)
{
    std::size_t n = 1;
    while (v >= 0x80) {
        v >>= 7;
        ++n;
    }
    return n;
}

/**
 * Estimated compact saving for one class, as a percent of its raw
 * wire bytes (0–100). Pure layout arithmetic: header + padding +
 * (8 − ~2) per reference slot over the raw record size, using a
 * 16-element guess for arrays (the measured feedback loop corrects
 * for real array sizes). This is the hint value the type registry
 * caches and serves with LOOKUP.
 */
int staticSavingPercent(const Klass *k, const ObjectFormat &wire_fmt);

/** True when @p data begins with a complete compact-segment preamble. */
bool isCompactSegment(const std::uint8_t *data, std::size_t len);

/**
 * The adaptive decision policy. A class is compacted when its
 * estimated saving (percent of raw bytes) is at least
 * `100 * kEncodeCpuNsPerByte / wire_ns_per_byte`: spending one
 * CPU-ns must buy at least one wire-ns. On links cheaper than the
 * encoder itself (threshold > 100) Auto mode disables the stage
 * entirely and flushes pass straight through.
 */
struct WirePolicy
{
    /** Measured cost of the compact rewrite, ns per raw byte. */
    static constexpr double kEncodeCpuNsPerByte = 0.5;

    static double
    minSavingPercent(double wire_ns_per_byte)
    {
        if (wire_ns_per_byte <= 0)
            return 101.0; // free wire: never worth CPU
        return 100.0 * kEncodeCpuNsPerByte / wire_ns_per_byte;
    }
};

/**
 * Receiver hooks for expandCompactSegment. `place(bytes)` must return
 * heap-chunk storage for one full-format record (the expander writes
 * header + payload; callers do run/stats bookkeeping). `onMarker` is
 * invoked for top marks and backward references in stream order.
 */
struct ExpandHooks
{
    std::function<Klass *(std::int32_t tid)> klassFor;
    std::function<void(bool is_back_ref, Word slot)> onMarker;
    std::function<std::uint8_t *(std::size_t bytes)> place;
};

/**
 * Re-expand one compact segment starting at @p data into full
 * heap-format records via @p hooks, producing exactly the byte
 * stream the raw sender would have flushed. Returns the consumed
 * wire bytes (preamble + payload). Panics on malformed input — run
 * the WireValidator first (SKYWAY_WIRE_CHECK) to veto instead.
 */
std::size_t expandCompactSegment(const std::uint8_t *data,
                                 std::size_t len,
                                 const ObjectFormat &wire_fmt,
                                 const ExpandHooks &hooks);

} // namespace wire

/**
 * Shared per-context memory of per-class encoding decisions, keyed by
 * global type id: every stream's encoder consults and updates it, so
 * a class judged (or measured) not worth compacting is skipped by all
 * subsequent streams, and `compact_classes` can be published as one
 * gauge. Thread-safe (ParallelSender workers encode concurrently).
 */
class WireEncodingCache
{
  public:
    /** Cached decision for @p tid: -1 unknown, 0 raw, 1 compact. */
    int decision(std::int32_t tid) const EXCLUDES(mutex_);

    void setDecision(std::int32_t tid, int d) EXCLUDES(mutex_);

    /**
     * Fold one segment's measured bytes for @p tid into the running
     * account and demote the class to raw when, over at least
     * `kMinMeasuredRecords` records, the realized saving falls below
     * @p min_saving_pct (the static estimate was too optimistic —
     * e.g. arrays much larger than the 16-element guess whose header
     * share vanishes). Returns the possibly-updated decision.
     */
    int recordMeasured(std::int32_t tid, std::uint64_t raw_bytes,
                       std::uint64_t compact_bytes,
                       std::uint64_t records,
                       double min_saving_pct) EXCLUDES(mutex_);

    /** Classes currently decided compact (the gauge value). */
    std::size_t compactClassCount() const EXCLUDES(mutex_);

    /** Forget everything (mode changes invalidate decisions). */
    void reset() EXCLUDES(mutex_);

    /** Demotion needs this many measured records to act. */
    static constexpr std::uint64_t kMinMeasuredRecords = 32;

  private:
    struct Entry
    {
        int decision = -1;
        std::uint64_t rawBytes = 0;
        std::uint64_t compactBytes = 0;
        std::uint64_t records = 0;
    };

    mutable Mutex mutex_;
    std::unordered_map<std::int32_t, Entry> entries_ GUARDED_BY(mutex_);
};

/**
 * The send-path compaction stage: rewrites whole flushed segments.
 * One instance per output stream (ParallelSender workers each own
 * one); per-class decisions are memoized locally and synchronized
 * with the context's WireEncodingCache at segment boundaries, and
 * metric deltas publish on destruction.
 */
class CompactEncoder
{
  public:
    CompactEncoder(SkywayContext &ctx, ObjectFormat wire_format);
    ~CompactEncoder();

    CompactEncoder(const CompactEncoder &) = delete;
    CompactEncoder &operator=(const CompactEncoder &) = delete;

    /**
     * Encode one flushed segment and hand the chosen representation
     * (compact, or the untouched input when nothing wins) to @p sink.
     */
    void encodeSegment(const std::uint8_t *data, std::size_t len,
                       const OutputBuffer::FlushFn &sink);

  private:
    int decisionFor(std::int32_t tid, const Klass *k);
    Klass *klassFor(std::int32_t tid);
    bool anyCompactClass(const std::uint8_t *data, std::size_t len);
    void buildCompact(const std::uint8_t *data, std::size_t len);
    void appendRecord(const std::uint8_t *rec, std::size_t size,
                      std::int32_t tid, const Klass *k, bool compact);
    void syncMeasured();

    SkywayContext &ctx_;
    ObjectFormat wireFmt_;
    WireCompactMode mode_;
    double minSavingPct_;
    std::vector<std::uint8_t> enc_;
    std::vector<std::uint8_t> out_;
    std::vector<std::uint8_t> rle_;
    std::unordered_map<std::int32_t, int> memo_;
    std::unordered_map<std::int32_t, Klass *> klassMemo_;

    struct Measured
    {
        std::uint64_t rawBytes = 0;
        std::uint64_t compactBytes = 0;
        std::uint64_t records = 0;
    };
    std::unordered_map<std::int32_t, Measured> measured_;

    // Unpublished metric deltas (published at destruction).
    std::uint64_t savedBytes_ = 0;
    std::uint64_t compactRecords_ = 0;
    std::uint64_t compactSegments_ = 0;
};

/**
 * Wrap @p sink with this stream's compaction stage. Returns @p sink
 * unchanged when the stage cannot win: mode Off, or an Auto-mode
 * link so fast that even a 100%-saving class would cost more CPU
 * than it buys (the "no CPU tax where bandwidth is free" guarantee).
 */
OutputBuffer::FlushFn compactStage(SkywayContext &ctx,
                                   ObjectFormat wire_format,
                                   OutputBuffer::FlushFn sink);

} // namespace skyway

#endif // SKYWAY_SKYWAY_WIRECOMPACT_HH
