#include "minispark/apps.hh"

#include <algorithm>
#include <unordered_map>

namespace skyway
{

void
defineSparkAppClasses(ClassCatalog &catalog)
{
    catalog.define(ClassDef{
        "spark.WordPair",
        "",
        {
            {"word", FieldType::Ref, "java.lang.String"},
            {"count", FieldType::Long, ""},
        },
    });
    catalog.define(ClassDef{
        "spark.Contrib",
        "",
        {
            {"dst", FieldType::Int, ""},
            {"rank", FieldType::Double, ""},
        },
    });
    catalog.define(ClassDef{
        "spark.Label",
        "",
        {
            {"dst", FieldType::Int, ""},
            {"label", FieldType::Int, ""},
        },
    });
    catalog.define(ClassDef{
        "spark.Edge",
        "",
        {
            {"src", FieldType::Int, ""},
            {"dst", FieldType::Int, ""},
        },
    });
    catalog.define(ClassDef{
        "spark.Wedge",
        "",
        {
            {"a", FieldType::Int, ""},
            {"b", FieldType::Int, ""},
        },
    });
}

namespace
{

/** Manual Kryo functions for a two-int record class. */
KryoManual
twoIntManual(const char *klass_name, const char *f1, const char *f2)
{
    KryoManual m;
    std::string kn(klass_name), a(f1), b(f2);
    m.write = [a, b](KryoSerializer &kryo, Address obj, ByteSink &out) {
        ManagedHeap &h = kryo.env().heap;
        const Klass *k = h.klassOf(obj);
        out.writeVarI32(
            field::get<std::int32_t>(h, obj, k->requireField(a)));
        out.writeVarI32(
            field::get<std::int32_t>(h, obj, k->requireField(b)));
    };
    m.read = [kn, a, b](KryoSerializer &kryo,
                        ByteSource &in) -> Address {
        Klass *k = kryo.env().klasses.load(kn);
        Address obj = kryo.env().heap.allocateInstance(k);
        std::size_t h = kryo.adoptObject(obj);
        std::int32_t va = in.readVarI32();
        std::int32_t vb = in.readVarI32();
        field::set<std::int32_t>(kryo.env().heap, kryo.objectAt(h),
                                 k->requireField(a), va);
        field::set<std::int32_t>(kryo.env().heap, kryo.objectAt(h),
                                 k->requireField(b), vb);
        return kryo.objectAt(h);
    };
    return m;
}

} // namespace

void
registerSparkAppKryo(KryoRegistry &registry)
{
    kryoRegisterBuiltins(registry);

    // spark.WordPair: manual function including the nested string.
    KryoManual wp;
    wp.write = [](KryoSerializer &kryo, Address obj, ByteSink &out) {
        ManagedHeap &h = kryo.env().heap;
        ObjectBuilder builder(h, kryo.env().klasses);
        const Klass *k = h.klassOf(obj);
        Address word =
            field::getRef(h, obj, k->requireField("word"));
        out.writeString(builder.stringValue(word));
        out.writeVarI64(field::get<std::int64_t>(
            h, obj, k->requireField("count")));
    };
    wp.read = [](KryoSerializer &kryo, ByteSource &in) -> Address {
        ObjectBuilder builder(kryo.env().heap, kryo.env().klasses);
        std::string w = in.readString();
        std::int64_t c = in.readVarI64();
        Klass *k = kryo.env().klasses.load("spark.WordPair");
        LocalRoots r(kryo.env().heap);
        std::size_t rw = r.push(builder.makeString(w));
        Address obj = kryo.env().heap.allocateInstance(k);
        std::size_t h = kryo.adoptObject(obj);
        field::setRef(kryo.env().heap, kryo.objectAt(h),
                      k->requireField("word"), r.get(rw));
        field::set<std::int64_t>(kryo.env().heap, kryo.objectAt(h),
                                 k->requireField("count"), c);
        return kryo.objectAt(h);
    };
    registry.registerClass("spark.WordPair", std::move(wp));

    // spark.Contrib: int + double.
    KryoManual contrib;
    contrib.write = [](KryoSerializer &kryo, Address obj,
                       ByteSink &out) {
        ManagedHeap &h = kryo.env().heap;
        const Klass *k = h.klassOf(obj);
        out.writeVarI32(
            field::get<std::int32_t>(h, obj, k->requireField("dst")));
        out.writeF64(
            field::get<double>(h, obj, k->requireField("rank")));
    };
    contrib.read = [](KryoSerializer &kryo,
                      ByteSource &in) -> Address {
        Klass *k = kryo.env().klasses.load("spark.Contrib");
        Address obj = kryo.env().heap.allocateInstance(k);
        std::size_t h = kryo.adoptObject(obj);
        std::int32_t d = in.readVarI32();
        double r = in.readF64();
        field::set<std::int32_t>(kryo.env().heap, kryo.objectAt(h),
                                 k->requireField("dst"), d);
        field::set<double>(kryo.env().heap, kryo.objectAt(h),
                           k->requireField("rank"), r);
        return kryo.objectAt(h);
    };
    registry.registerClass("spark.Contrib", std::move(contrib));

    registry.registerClass("spark.Label",
                           twoIntManual("spark.Label", "dst", "label"));
    registry.registerClass("spark.Edge",
                           twoIntManual("spark.Edge", "src", "dst"));
    registry.registerClass("spark.Wedge",
                           twoIntManual("spark.Wedge", "a", "b"));
}

namespace
{

/** Build a primitive-only two-field record. */
template <typename T1, typename T2>
Address
makeRecord2(Jvm &jvm, Klass *k, const FieldDesc &f1, T1 v1,
            const FieldDesc &f2, T2 v2)
{
    Address obj = jvm.heap().allocateInstance(k);
    field::set<T1>(jvm.heap(), obj, f1, v1);
    field::set<T2>(jvm.heap(), obj, f2, v2);
    return obj;
}

SparkAppResult
finishResult(SparkCluster &cluster, std::uint64_t records,
             std::uint64_t bytes, int iterations, double checksum)
{
    SparkAppResult res;
    res.average = cluster.averageBreakdown();
    res.total = cluster.totalBreakdown();
    res.shuffledRecords = records;
    res.shuffledBytes = bytes;
    res.iterations = iterations;
    res.checksum = checksum;
    return res;
}

} // namespace

SparkAppResult
runWordCount(SparkCluster &cluster, const std::vector<std::string> &lines)
{
    cluster.resetBreakdowns();
    int n = cluster.numWorkers();

    // Input split: line i to worker i % n (HDFS-block style).
    std::vector<std::vector<const std::string *>> split(n);
    for (std::size_t i = 0; i < lines.size(); ++i)
        split[i % n].push_back(&lines[i]);

    ShuffleRound shuffle(cluster, "wc");
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        Klass *pairK = jvm.klasses().load("spark.WordPair");
        const FieldDesc &fWord = pairK->requireField("word");
        const FieldDesc &fCount = pairK->requireField("count");
        Stopwatch sw;
        // Map + local combine.
        std::unordered_map<std::string, std::int64_t> combined;
        for (const std::string *line : split[w]) {
            for (auto &word : tokenize(*line))
                ++combined[word];
        }
        // Materialize records and bucket them by word hash.
        for (auto &[word, count] : combined) {
            LocalRoots r(jvm.heap());
            std::size_t rs = r.push(jvm.builder().makeString(word));
            Address rec = jvm.heap().allocateInstance(pairK);
            field::setRef(jvm.heap(), rec, fWord, r.get(rs));
            field::set<std::int64_t>(jvm.heap(), rec, fCount, count);
            int dst = cluster.ownerOf(std::hash<std::string>{}(word));
            shuffle.add(w, dst, rec);
        }
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    shuffle.writePhase();

    // Reduce: merge counts per word.
    double checksum = 0;
    std::uint64_t distinct = 0;
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        auto recs = shuffle.read(w);
        Stopwatch sw;
        Klass *pairK = jvm.klasses().load("spark.WordPair");
        const FieldDesc &fWord = pairK->requireField("word");
        const FieldDesc &fCount = pairK->requireField("count");
        std::unordered_map<std::string, std::int64_t> counts;
        for (std::size_t i = 0; i < recs->size(); ++i) {
            Address rec = recs->get(i);
            Address word = field::getRef(jvm.heap(), rec, fWord);
            counts[jvm.builder().stringValue(word)] +=
                field::get<std::int64_t>(jvm.heap(), rec, fCount);
        }
        distinct += counts.size();
        for (auto &[word, count] : counts)
            checksum += static_cast<double>(count) *
                        (1.0 + word.size());
        cluster.chargeCompute(w, sw.elapsedNs());
    }

    return finishResult(cluster, shuffle.recordsAdded(),
                        shuffle.bytesWritten(), 1,
                        checksum + static_cast<double>(distinct));
}

SparkAppResult
runPageRank(SparkCluster &cluster, const EdgeList &graph, int iterations)
{
    cluster.resetBreakdowns();
    int n = cluster.numWorkers();

    // Vertex v lives on worker v % n; adjacency = outgoing edges.
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        outEdges(n);
    std::vector<std::uint32_t> degree(graph.numVertices, 0);
    for (auto [u, v] : graph.edges)
        ++degree[u];
    for (auto [u, v] : graph.edges)
        outEdges[u % n].emplace_back(u, v);

    // Ranks, per owner worker, indexed by vertex id.
    std::vector<double> rank(graph.numVertices, 1.0);

    std::uint64_t records = 0, bytes = 0;
    for (int iter = 0; iter < iterations; ++iter) {
        ShuffleRound shuffle(cluster,
                             "pr_it" + std::to_string(iter));
        for (int w = 0; w < n; ++w) {
            Jvm &jvm = cluster.worker(w);
            Klass *contribK = jvm.klasses().load("spark.Contrib");
            const FieldDesc &fDst = contribK->requireField("dst");
            const FieldDesc &fRank = contribK->requireField("rank");
            Stopwatch sw;
            // Map-side combine: one contribution per target vertex.
            std::unordered_map<std::uint32_t, double> contribs;
            for (auto [u, v] : outEdges[w])
                contribs[v] += rank[u] / degree[u];
            for (auto &[dst, sum] : contribs) {
                Address rec = makeRecord2<std::int32_t, double>(
                    jvm, contribK, fDst,
                    static_cast<std::int32_t>(dst), fRank, sum);
                shuffle.add(w, static_cast<int>(dst % n), rec);
            }
            cluster.chargeCompute(w, sw.elapsedNs());
        }
        shuffle.writePhase();

        std::vector<double> next(graph.numVertices, 0.15);
        for (int w = 0; w < n; ++w) {
            Jvm &jvm = cluster.worker(w);
            auto recs = shuffle.read(w);
            Stopwatch sw;
            Klass *contribK = jvm.klasses().load("spark.Contrib");
            const FieldDesc &fDst = contribK->requireField("dst");
            const FieldDesc &fRank = contribK->requireField("rank");
            for (std::size_t i = 0; i < recs->size(); ++i) {
                Address rec = recs->get(i);
                auto dst = static_cast<std::uint32_t>(
                    field::get<std::int32_t>(jvm.heap(), rec, fDst));
                next[dst] +=
                    0.85 *
                    field::get<double>(jvm.heap(), rec, fRank);
            }
            cluster.chargeCompute(w, sw.elapsedNs());
        }
        rank.swap(next);
        records += shuffle.recordsAdded();
        bytes += shuffle.bytesWritten();
    }

    double checksum = 0;
    for (double r : rank)
        checksum += r;
    return finishResult(cluster, records, bytes, iterations, checksum);
}

SparkAppResult
runConnectedComponents(SparkCluster &cluster, const EdgeList &graph,
                       int max_iterations)
{
    cluster.resetBreakdowns();
    int n = cluster.numWorkers();

    // Undirected adjacency partitioned by source owner.
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        adj(n);
    for (auto [u, v] : graph.edges) {
        adj[u % n].emplace_back(u, v);
        adj[v % n].emplace_back(v, u);
    }

    std::vector<std::uint32_t> label(graph.numVertices);
    for (std::uint32_t v = 0; v < graph.numVertices; ++v)
        label[v] = v;

    std::uint64_t records = 0, bytes = 0;
    int iter = 0;
    bool changed = true;
    while (changed && iter < max_iterations) {
        changed = false;
        ShuffleRound shuffle(cluster, "cc_it" + std::to_string(iter));
        for (int w = 0; w < n; ++w) {
            Jvm &jvm = cluster.worker(w);
            Klass *labelK = jvm.klasses().load("spark.Label");
            const FieldDesc &fDst = labelK->requireField("dst");
            const FieldDesc &fLabel = labelK->requireField("label");
            Stopwatch sw;
            std::unordered_map<std::uint32_t, std::uint32_t> best;
            for (auto [u, v] : adj[w]) {
                auto it = best.find(v);
                if (it == best.end() || label[u] < it->second)
                    best[v] = label[u];
            }
            for (auto &[dst, lbl] : best) {
                if (lbl >= label[dst])
                    continue; // no improvement: do not shuffle
                Address rec =
                    makeRecord2<std::int32_t, std::int32_t>(
                        jvm, labelK, fDst,
                        static_cast<std::int32_t>(dst), fLabel,
                        static_cast<std::int32_t>(lbl));
                shuffle.add(w, static_cast<int>(dst % n), rec);
            }
            cluster.chargeCompute(w, sw.elapsedNs());
        }
        shuffle.writePhase();

        for (int w = 0; w < n; ++w) {
            Jvm &jvm = cluster.worker(w);
            auto recs = shuffle.read(w);
            Stopwatch sw;
            Klass *labelK = jvm.klasses().load("spark.Label");
            const FieldDesc &fDst = labelK->requireField("dst");
            const FieldDesc &fLabel = labelK->requireField("label");
            for (std::size_t i = 0; i < recs->size(); ++i) {
                Address rec = recs->get(i);
                auto dst = static_cast<std::uint32_t>(
                    field::get<std::int32_t>(jvm.heap(), rec, fDst));
                auto lbl = static_cast<std::uint32_t>(
                    field::get<std::int32_t>(jvm.heap(), rec,
                                             fLabel));
                if (lbl < label[dst]) {
                    label[dst] = lbl;
                    changed = true;
                }
            }
            cluster.chargeCompute(w, sw.elapsedNs());
        }
        records += shuffle.recordsAdded();
        bytes += shuffle.bytesWritten();
        ++iter;
    }

    // Checksum: component count plus label sum.
    std::vector<std::uint32_t> reps(label);
    std::sort(reps.begin(), reps.end());
    reps.erase(std::unique(reps.begin(), reps.end()), reps.end());
    double checksum = static_cast<double>(reps.size());
    for (std::uint32_t l : label)
        checksum += static_cast<double>(l) * 1e-6;
    return finishResult(cluster, records, bytes, iter, checksum);
}

SparkAppResult
runTriangleCount(SparkCluster &cluster, const EdgeList &graph)
{
    cluster.resetBreakdowns();
    int n = cluster.numWorkers();

    // Degree ordering: orient each edge from the endpoint with the
    // smaller (degree, id) to the larger; bounds wedge counts on
    // power-law graphs.
    std::vector<std::uint32_t> degree(graph.numVertices, 0);
    for (auto [u, v] : graph.edges) {
        ++degree[u];
        ++degree[v];
    }
    auto less = [&](std::uint32_t a, std::uint32_t b) {
        return degree[a] != degree[b] ? degree[a] < degree[b] : a < b;
    };

    // Round 1: redistribute edges to the owner of the ordered source
    // (edges start round-robin, as if read from block storage).
    ShuffleRound round1(cluster, "tc_edges");
    {
        std::vector<Klass *> edgeK(n);
        std::vector<const FieldDesc *> fSrc(n), fDst(n);
        for (int w = 0; w < n; ++w) {
            edgeK[w] = cluster.worker(w).klasses().load("spark.Edge");
            fSrc[w] = &edgeK[w]->requireField("src");
            fDst[w] = &edgeK[w]->requireField("dst");
        }
        Stopwatch sw;
        for (std::size_t i = 0; i < graph.edges.size(); ++i) {
            int w = static_cast<int>(i % n);
            auto [a, b] = graph.edges[i];
            std::uint32_t u = less(a, b) ? a : b;
            std::uint32_t v = less(a, b) ? b : a;
            Address rec = makeRecord2<std::int32_t, std::int32_t>(
                cluster.worker(w), edgeK[w], *fSrc[w],
                static_cast<std::int32_t>(u), *fDst[w],
                static_cast<std::int32_t>(v));
            round1.add(w, static_cast<int>(u % n), rec);
        }
        // The edge scan interleaves all workers' map tasks: split the
        // measured time evenly.
        std::uint64_t per_worker = sw.elapsedNs() / n;
        for (int w = 0; w < n; ++w)
            cluster.chargeCompute(w, per_worker);
    }
    round1.writePhase();

    // Build per-owner ordered adjacency from received edges.
    std::vector<std::vector<std::uint32_t>> outAdj(graph.numVertices);
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        auto recs = round1.read(w);
        Stopwatch sw;
        Klass *edgeK = jvm.klasses().load("spark.Edge");
        const FieldDesc &fSrc = edgeK->requireField("src");
        const FieldDesc &fDst = edgeK->requireField("dst");
        for (std::size_t i = 0; i < recs->size(); ++i) {
            Address rec = recs->get(i);
            auto u = static_cast<std::uint32_t>(
                field::get<std::int32_t>(jvm.heap(), rec, fSrc));
            auto v = static_cast<std::uint32_t>(
                field::get<std::int32_t>(jvm.heap(), rec, fDst));
            outAdj[u].push_back(v);
        }
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    for (auto &list : outAdj) {
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
    }

    // Round 2: wedge queries (v, w) sent to v's owner.
    ShuffleRound round2(cluster, "tc_wedges");
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        Klass *wedgeK = jvm.klasses().load("spark.Wedge");
        const FieldDesc &fA = wedgeK->requireField("a");
        const FieldDesc &fB = wedgeK->requireField("b");
        Stopwatch sw;
        for (std::uint32_t u = w; u < graph.numVertices;
             u += static_cast<std::uint32_t>(n)) {
            const auto &nb = outAdj[u];
            for (std::size_t i = 0; i < nb.size(); ++i) {
                for (std::size_t j = i + 1; j < nb.size(); ++j) {
                    // The closing edge, if it exists, is oriented by
                    // the same degree order as every other edge: the
                    // query (x, y) must follow it.
                    std::uint32_t x = less(nb[i], nb[j]) ? nb[i]
                                                         : nb[j];
                    std::uint32_t y = less(nb[i], nb[j]) ? nb[j]
                                                         : nb[i];
                    Address rec =
                        makeRecord2<std::int32_t, std::int32_t>(
                            jvm, wedgeK, fA,
                            static_cast<std::int32_t>(x), fB,
                            static_cast<std::int32_t>(y));
                    round2.add(w, static_cast<int>(x % n), rec);
                }
            }
        }
        cluster.chargeCompute(w, sw.elapsedNs());
    }
    round2.writePhase();

    std::uint64_t triangles = 0;
    for (int w = 0; w < n; ++w) {
        Jvm &jvm = cluster.worker(w);
        auto recs = round2.read(w);
        Stopwatch sw;
        Klass *wedgeK = jvm.klasses().load("spark.Wedge");
        const FieldDesc &fA = wedgeK->requireField("a");
        const FieldDesc &fB = wedgeK->requireField("b");
        for (std::size_t i = 0; i < recs->size(); ++i) {
            Address rec = recs->get(i);
            auto a = static_cast<std::uint32_t>(
                field::get<std::int32_t>(jvm.heap(), rec, fA));
            auto b = static_cast<std::uint32_t>(
                field::get<std::int32_t>(jvm.heap(), rec, fB));
            const auto &nb = outAdj[a];
            if (std::binary_search(nb.begin(), nb.end(), b))
                ++triangles;
        }
        cluster.chargeCompute(w, sw.elapsedNs());
    }

    return finishResult(cluster,
                        round1.recordsAdded() + round2.recordsAdded(),
                        round1.bytesWritten() + round2.bytesWritten(),
                        2, static_cast<double>(triangles));
}

} // namespace skyway
