file(REMOVE_RECURSE
  "CMakeFiles/test_skyway.dir/test_skyway.cc.o"
  "CMakeFiles/test_skyway.dir/test_skyway.cc.o.d"
  "test_skyway"
  "test_skyway.pdb"
  "test_skyway[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skyway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
