# Empty dependencies file for skyway_support.
# This may be replaced when dependencies are built.
