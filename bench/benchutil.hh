/**
 * @file
 * Shared plumbing for the benchmark binaries: catalog construction,
 * serializer factories, scale-knob parsing, and table printing. Every
 * bench prints labeled CSV-style rows mirroring the corresponding
 * paper table or figure (see DESIGN.md's per-experiment index).
 */

#ifndef SKYWAY_BENCH_BENCHUTIL_HH
#define SKYWAY_BENCH_BENCHUTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "minispark/apps.hh"
#include "sd/javaserializer.hh"
#include "workloads/jsbs_family.hh"

namespace skyway
{
namespace bench
{

/**
 * Scale knob: `--scale=X` on the command line or the
 * SKYWAY_BENCH_SCALE environment variable; defaults keep the full
 * sweep in the minutes range on one core.
 */
inline double
parseScale(int argc, char **argv, double def)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--scale=", 8) == 0)
            return std::atof(argv[i] + 8);
    }
    if (const char *env = std::getenv("SKYWAY_BENCH_SCALE"))
        return std::atof(env);
    return def;
}

/** Catalog with every application class the benches use. */
inline ClassCatalog
fullCatalog()
{
    ClassCatalog cat = makeStandardCatalog();
    defineSparkAppClasses(cat);
    defineMediaClasses(cat);
    return cat;
}

/** One of the three Spark-facing serializer configurations. */
struct SparkSetup
{
    std::string name;
    std::shared_ptr<KryoRegistry> registry; // kryo only
    std::unique_ptr<SerializerFactory> factory;
    std::unique_ptr<ClusterSkywayFactory> skywayFactory;

    SerializerFactory &
    get()
    {
        if (factory)
            return *factory;
        return *skywayFactory;
    }
};

inline SparkSetup
makeSparkSetup(const std::string &which)
{
    SparkSetup s;
    s.name = which;
    if (which == "java") {
        s.factory = std::make_unique<JavaSerializerFactory>();
    } else if (which == "kryo") {
        s.registry = std::make_shared<KryoRegistry>();
        registerSparkAppKryo(*s.registry);
        s.factory =
            std::make_unique<KryoSerializerFactory>(s.registry);
    } else if (which == "skyway") {
        s.skywayFactory = std::make_unique<ClusterSkywayFactory>();
    } else {
        fatal("makeSparkSetup: unknown serializer " + which);
    }
    return s;
}

/** Build a cluster for @p setup (binds the Skyway factory). */
inline std::unique_ptr<SparkCluster>
makeCluster(const ClassCatalog &cat, SparkSetup &setup,
            SparkConfig cfg = SparkConfig{})
{
    auto cluster =
        std::make_unique<SparkCluster>(cat, setup.get(), cfg);
    if (setup.skywayFactory)
        setup.skywayFactory->bind(*cluster);
    return cluster;
}

inline void
printHeader(const char *title)
{
    std::printf("\n==== %s ====\n", title);
}

/** One breakdown row in milliseconds, Figure 3/8 style. */
inline void
printBreakdownRow(const std::string &label, const PhaseBreakdown &b)
{
    std::printf("%-24s %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n",
                label.c_str(), b.computeNs / 1e6, b.serNs / 1e6,
                b.writeIoNs / 1e6, b.deserNs / 1e6, b.readIoNs / 1e6,
                b.totalNs() / 1e6);
}

inline void
printBreakdownHeader()
{
    std::printf("%-24s %10s %10s %10s %10s %10s %10s\n", "config",
                "compute", "ser", "write", "deser", "read", "total");
    std::printf("%-24s %10s %10s %10s %10s %10s %10s\n", "", "(ms)",
                "(ms)", "(ms)", "(ms)", "(ms)", "(ms)");
}

} // namespace bench
} // namespace skyway

#endif // SKYWAY_BENCH_BENCHUTIL_HH
