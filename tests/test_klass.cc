/**
 * @file
 * Unit tests for class metadata: catalog, loading, field layout,
 * reference maps, array klasses, and the reflective lookup path.
 */

#include <gtest/gtest.h>

#include "klass/klass.hh"

namespace skyway
{
namespace
{

ClassCatalog
testCatalog()
{
    ClassCatalog cat;
    defineBootstrapClasses(cat);
    cat.define(ClassDef{
        "Point",
        "",
        {
            {"x", FieldType::Int, ""},
            {"y", FieldType::Int, ""},
        },
    });
    cat.define(ClassDef{
        "Point3D",
        "Point",
        {
            {"z", FieldType::Int, ""},
        },
    });
    cat.define(ClassDef{
        "Mixed",
        "",
        {
            {"flag", FieldType::Boolean, ""},
            {"big", FieldType::Long, ""},
            {"small", FieldType::Byte, ""},
            {"ref", FieldType::Ref, "Point"},
            {"half", FieldType::Short, ""},
        },
    });
    return cat;
}

TEST(Catalog, FindAndDuplicate)
{
    ClassCatalog cat = testCatalog();
    EXPECT_NE(cat.find("Point"), nullptr);
    EXPECT_EQ(cat.find("NoSuch"), nullptr);
    EXPECT_DEATH(cat.define(ClassDef{"Point", "", {}}), "duplicate");
}

TEST(KlassLayout, SimpleOffsets)
{
    ClassCatalog cat = testCatalog();
    KlassTable kt(cat);
    Klass *p = kt.load("Point");
    ASSERT_NE(p, nullptr);
    // Header is 24 bytes with the baddr word.
    EXPECT_EQ(p->format().headerBytes(), 24u);
    EXPECT_EQ(p->requireField("x").offset, 24u);
    EXPECT_EQ(p->requireField("y").offset, 28u);
    EXPECT_EQ(p->instanceBytes(), 32u);
}

TEST(KlassLayout, VanillaFormatHasSmallerHeader)
{
    ClassCatalog cat = testCatalog();
    KlassTable kt(cat, ObjectFormat{.hasBaddr = false});
    Klass *p = kt.load("Point");
    EXPECT_EQ(p->format().headerBytes(), 16u);
    EXPECT_EQ(p->requireField("x").offset, 16u);
    EXPECT_EQ(p->instanceBytes(), 24u);
}

TEST(KlassLayout, SuperFieldsComeFirst)
{
    ClassCatalog cat = testCatalog();
    KlassTable kt(cat);
    Klass *p3 = kt.load("Point3D");
    ASSERT_EQ(p3->fields().size(), 3u);
    EXPECT_EQ(p3->fields()[0].name, "x");
    EXPECT_EQ(p3->fields()[1].name, "y");
    EXPECT_EQ(p3->fields()[2].name, "z");
    EXPECT_EQ(p3->requireField("z").offset, 32u);
    EXPECT_EQ(p3->superChainLength(), 1);
    // Super offsets must agree with the super class's own layout.
    Klass *p = kt.load("Point");
    EXPECT_EQ(p3->requireField("x").offset, p->requireField("x").offset);
}

TEST(KlassLayout, AlignmentOfMixedFields)
{
    ClassCatalog cat = testCatalog();
    KlassTable kt(cat);
    Klass *m = kt.load("Mixed");
    // Every field offset must be a multiple of the field size.
    for (const FieldDesc &f : m->fields())
        EXPECT_EQ(f.offset % fieldSize(f.type), 0u)
            << f.name << " misaligned at " << f.offset;
    // Total size is word aligned.
    EXPECT_EQ(m->instanceBytes() % wordSize, 0u);
}

TEST(KlassLayout, RefOffsetsCollected)
{
    ClassCatalog cat = testCatalog();
    KlassTable kt(cat);
    Klass *m = kt.load("Mixed");
    ASSERT_EQ(m->refOffsets().size(), 1u);
    EXPECT_EQ(m->refOffsets()[0], m->requireField("ref").offset);
    Klass *p = kt.load("Point");
    EXPECT_TRUE(p->refOffsets().empty());
}

TEST(KlassTable, LoadIsIdempotent)
{
    ClassCatalog cat = testCatalog();
    KlassTable kt(cat);
    Klass *a = kt.load("Point");
    Klass *b = kt.load("Point");
    EXPECT_EQ(a, b);
    EXPECT_EQ(kt.findLoaded("Point"), a);
    EXPECT_EQ(kt.findLoaded("Point3D"), nullptr);
}

TEST(KlassTable, DistinctTablesDistinctKlasses)
{
    // The same class is represented by different meta objects on
    // different nodes — the reason raw klass pointers cannot cross the
    // wire.
    ClassCatalog cat = testCatalog();
    KlassTable kta(cat), ktb(cat);
    EXPECT_NE(kta.load("Point"), ktb.load("Point"));
    EXPECT_EQ(kta.load("Point")->name(), ktb.load("Point")->name());
}

TEST(ArrayKlass, PrimitiveArrays)
{
    ClassCatalog cat = testCatalog();
    KlassTable kt(cat);
    Klass *ia = kt.arrayOfPrimitive(FieldType::Int);
    EXPECT_EQ(ia->name(), "[I");
    EXPECT_TRUE(ia->isArray());
    EXPECT_EQ(ia->elemSize(), 4u);
    // 24B header + 8B length + 3*4B elems, word-aligned -> 48.
    EXPECT_EQ(ia->arrayBytes(3), 48u);
    EXPECT_EQ(ia->arrayBytes(0), 32u);
}

TEST(ArrayKlass, RefArrays)
{
    ClassCatalog cat = testCatalog();
    KlassTable kt(cat);
    Klass *pa = kt.arrayOfRefs("Point");
    EXPECT_EQ(pa->name(), "[LPoint;");
    EXPECT_EQ(pa->elemType(), FieldType::Ref);
    EXPECT_EQ(pa->elemClassName(), "Point");
    EXPECT_EQ(pa->elemSize(), 8u);
}

TEST(ArrayKlass, NestedArrays)
{
    ClassCatalog cat = testCatalog();
    KlassTable kt(cat);
    Klass *aa = kt.load("[[I");
    EXPECT_TRUE(aa->isArray());
    EXPECT_EQ(aa->elemType(), FieldType::Ref);
    EXPECT_EQ(aa->elemClassName(), "[I");
    EXPECT_EQ(arrayDescriptorOfRefs("[I"), "[[I");
}

TEST(Reflection, FindFieldByName)
{
    ClassCatalog cat = testCatalog();
    KlassTable kt(cat);
    Klass *m = kt.load("Mixed");
    EXPECT_NE(m->findField("big"), nullptr);
    EXPECT_EQ(m->findField("nope"), nullptr);
    EXPECT_DEATH(m->requireField("nope"), "no field");
}

TEST(KlassTable, LoadHookFires)
{
    ClassCatalog cat = testCatalog();
    KlassTable kt(cat);
    static int hook_count;
    hook_count = 0;
    kt.setLoadHook(
        [](void *, Klass &k) {
            ++hook_count;
            k.setTid(1000 + hook_count);
        },
        nullptr);
    Klass *p = kt.load("Point");
    EXPECT_EQ(hook_count, 1);
    EXPECT_EQ(p->tid(), 1001);
    kt.load("Point"); // already loaded: no second fire
    EXPECT_EQ(hook_count, 1);
}

TEST(KlassTable, ShadowedFieldIsRejected)
{
    ClassCatalog cat = testCatalog();
    cat.define(ClassDef{
        "BadShadow",
        "Point",
        {
            {"x", FieldType::Long, ""}, // shadows Point.x
        },
    });
    KlassTable kt(cat);
    EXPECT_DEATH(kt.load("BadShadow"), "shadows an existing field");
}

TEST(KlassTable, DuplicateFieldInOneClassIsRejected)
{
    ClassCatalog cat = testCatalog();
    cat.define(ClassDef{
        "BadDup",
        "",
        {
            {"v", FieldType::Int, ""},
            {"v", FieldType::Long, ""},
        },
    });
    KlassTable kt(cat);
    EXPECT_DEATH(kt.load("BadDup"), "shadows an existing field");
}

TEST(KlassTable, UnknownClassIsFatal)
{
    ClassCatalog cat = testCatalog();
    KlassTable kt(cat);
    EXPECT_DEATH(kt.load("com.example.Missing"), "not found");
}

TEST(FieldType, DescriptorRoundTrip)
{
    for (FieldType t :
         {FieldType::Boolean, FieldType::Byte, FieldType::Char,
          FieldType::Short, FieldType::Int, FieldType::Long,
          FieldType::Float, FieldType::Double, FieldType::Ref}) {
        EXPECT_EQ(fieldTypeFromDescriptor(fieldDescriptorChar(t)), t);
    }
}

} // namespace
} // namespace skyway
