/**
 * @file
 * google-benchmark micro suite: per-record costs of the transports
 * and the runtime primitives they are built from. These are the
 * microscopic quantities whose ratios drive every macro figure —
 * reflective field access vs cached-offset access vs whole-object
 * memcpy, varint codecs, heap allocation, and the Skyway claim/copy
 * and receive paths at several graph sizes.
 */

#include <cstring>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "sd/javaserializer.hh"
#include "sd/kryoserializer.hh"
#include "skyway/jvm.hh"
#include "skyway/streams.hh"
#include "support/logging.hh"
#include "support/rng.hh"

using namespace skyway;

namespace
{

/** Shared two-node environment (built once). */
struct Env
{
    Env() : net(2), a(catalog(), net, 0, 0), b(catalog(), net, 1, 0)
    {
        reg = std::make_shared<KryoRegistry>();
        kryoRegisterBuiltins(*reg);
        reg->registerClass("bench.Rec");
    }

    static ClassCatalog &
    catalog()
    {
        static ClassCatalog cat = [] {
            ClassCatalog c = makeStandardCatalog();
            c.define(ClassDef{
                "bench.Rec",
                "",
                {
                    {"id", FieldType::Long, ""},
                    {"weight", FieldType::Double, ""},
                    {"tag", FieldType::Ref, "java.lang.String"},
                },
            });
            return c;
        }();
        return cat;
    }

    /** One rooted bench.Rec. */
    std::size_t
    makeRec(LocalRoots &roots, int i)
    {
        Klass *k = a.klasses().load("bench.Rec");
        LocalRoots tmp(a.heap());
        std::size_t rs =
            tmp.push(a.builder().makeString("tag" + std::to_string(i)));
        Address rec = a.heap().allocateInstance(k);
        field::set<std::int64_t>(a.heap(), rec, k->requireField("id"),
                                 i);
        field::set<double>(a.heap(), rec, k->requireField("weight"),
                           i * 0.5);
        field::setRef(a.heap(), rec, k->requireField("tag"),
                      tmp.get(rs));
        return roots.push(rec);
    }

    ClusterNetwork net;
    Jvm a, b;
    std::shared_ptr<KryoRegistry> reg;
};

Env &
env()
{
    static Env e;
    return e;
}

void
BM_VarintEncode(benchmark::State &state)
{
    VectorSink sink;
    std::uint64_t v = 0;
    for (auto _ : state) {
        sink.clear();
        sink.writeVarU64(v);
        v = v * 2862933555777941757ull + 3037000493ull;
        benchmark::DoNotOptimize(sink.bytesWritten());
    }
}
BENCHMARK(BM_VarintEncode);

void
BM_HeapAllocateInstance(benchmark::State &state)
{
    Env &e = env();
    Klass *k = e.a.klasses().load("bench.Rec");
    for (auto _ : state)
        benchmark::DoNotOptimize(e.a.heap().allocateInstance(k));
}
BENCHMARK(BM_HeapAllocateInstance);

void
BM_ReflectiveFieldGet(benchmark::State &state)
{
    Env &e = env();
    LocalRoots roots(e.a.heap());
    std::size_t r = e.makeRec(roots, 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(reflect::getField<std::int64_t>(
            e.a.heap(), roots.get(r), "id"));
    }
}
BENCHMARK(BM_ReflectiveFieldGet);

void
BM_CachedOffsetFieldGet(benchmark::State &state)
{
    Env &e = env();
    LocalRoots roots(e.a.heap());
    std::size_t r = e.makeRec(roots, 1);
    const FieldDesc &f =
        e.a.klasses().load("bench.Rec")->requireField("id");
    for (auto _ : state) {
        benchmark::DoNotOptimize(field::get<std::int64_t>(
            e.a.heap(), roots.get(r), f));
    }
}
BENCHMARK(BM_CachedOffsetFieldGet);

void
BM_IdentityHashCached(benchmark::State &state)
{
    Env &e = env();
    LocalRoots roots(e.a.heap());
    std::size_t r = e.makeRec(roots, 1);
    e.a.heap().identityHash(roots.get(r));
    for (auto _ : state)
        benchmark::DoNotOptimize(e.a.heap().identityHash(roots.get(r)));
}
BENCHMARK(BM_IdentityHashCached);

template <typename MakeSer, typename MakeDes>
void
runSdRoundTrip(benchmark::State &state, MakeSer make_ser,
               MakeDes make_des)
{
    Env &e = env();
    LocalRoots roots(e.a.heap());
    std::size_t r = e.makeRec(roots, 7);
    auto ser = make_ser();
    auto des = make_des();
    for (auto _ : state) {
        VectorSink sink;
        ser->writeObject(roots.get(r), sink);
        ser->endStream(sink);
        ser->reset();
        ByteSource src(sink.bytes());
        benchmark::DoNotOptimize(des->readObject(src));
        des->releaseReceived();
        state.counters["bytes"] =
            static_cast<double>(sink.bytesWritten());
    }
}

void
BM_RoundTripJava(benchmark::State &state)
{
    Env &e = env();
    runSdRoundTrip(
        state,
        [&] {
            return std::make_unique<JavaSerializer>(
                SdEnv{e.a.heap(), e.a.klasses()});
        },
        [&] {
            return std::make_unique<JavaSerializer>(
                SdEnv{e.b.heap(), e.b.klasses()});
        });
}
BENCHMARK(BM_RoundTripJava);

void
BM_RoundTripKryo(benchmark::State &state)
{
    Env &e = env();
    runSdRoundTrip(
        state,
        [&] {
            return std::make_unique<KryoSerializer>(
                SdEnv{e.a.heap(), e.a.klasses()}, *e.reg);
        },
        [&] {
            return std::make_unique<KryoSerializer>(
                SdEnv{e.b.heap(), e.b.klasses()}, *e.reg);
        });
}
BENCHMARK(BM_RoundTripKryo);

void
BM_RoundTripSkyway(benchmark::State &state)
{
    Env &e = env();
    runSdRoundTrip(
        state,
        [&] {
            return std::make_unique<SkywaySerializer>(e.a.skyway());
        },
        [&] {
            return std::make_unique<SkywaySerializer>(e.b.skyway(),
                                                      64 << 10,
                                                      4 << 10);
        });
}
BENCHMARK(BM_RoundTripSkyway);

void
BM_SkywayTransferBatch(benchmark::State &state)
{
    Env &e = env();
    const int n = static_cast<int>(state.range(0));
    LocalRoots roots(e.a.heap());
    std::vector<std::size_t> recs;
    for (int i = 0; i < n; ++i)
        recs.push_back(e.makeRec(roots, i));

    for (auto _ : state) {
        e.a.skyway().shuffleStart();
        SkywayObjectInputStream in(e.b.skyway(), 64 << 10);
        SkywayObjectOutputStream out(
            e.a.skyway(),
            [&in](const std::uint8_t *d, std::size_t len) {
                in.feed(d, len);
            });
        for (std::size_t r : recs)
            out.writeObject(roots.get(r));
        out.flush();
        in.finish();
        benchmark::DoNotOptimize(in.buffer().roots().size());
        auto buf = in.releaseBuffer();
        buf->free();
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SkywayTransferBatch)->Arg(10)->Arg(100)->Arg(1000);

/**
 * ConsoleReporter that additionally captures one JSON row per
 * completed run, in the same schema the table benches emit through
 * bench::JsonReport (docs/OBSERVABILITY.md). Registered-metric deltas
 * are taken per benchmark family — the finest granularity the
 * reporter callback offers.
 */
class JsonRowReporter : public benchmark::ConsoleReporter
{
  public:
    bool
    ReportContext(const Context &context) override
    {
        last_ = obs::MetricsRegistry::global().snapshot();
        return ConsoleReporter::ReportContext(context);
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        ConsoleReporter::ReportRuns(runs);
        obs::MetricsSnapshot now =
            obs::MetricsRegistry::global().snapshot();
        obs::MetricsSnapshot delta = now.deltaSince(last_);
        for (const Run &run : runs) {
            if (run.run_type != Run::RT_Iteration ||
                run.error_occurred)
                continue;
            obs::JsonWriter w;
            w.beginObject();
            w.key("bench").value("bench_micro");
            w.key("scale").value(1.0);
            w.key("label").value(run.benchmark_name());
            w.key("wall_ms").value(run.real_accumulated_time * 1e3);
            w.key("values");
            w.beginObject();
            w.key("ns_per_iter").value(run.GetAdjustedRealTime());
            w.key("iterations").value(
                static_cast<std::int64_t>(run.iterations));
            for (const auto &[name, counter] : run.counters)
                w.key(name).value(counter.value);
            w.endObject();
            w.key("metrics");
            w.beginObject();
            for (const auto &[k, v] : delta.scalars)
                w.key(k).value(v);
            w.endObject();
            w.endObject();
            rows.push_back(std::move(w).str());
        }
        last_ = std::move(now);
    }

    std::vector<std::string> rows;

  private:
    obs::MetricsSnapshot last_;
};

void
writeJsonDoc(const std::string &path,
             const std::vector<std::string> &rows)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("schema_version").value(std::uint64_t{1});
    w.key("bench").value("bench_micro");
    w.key("scale").value(1.0);
    w.key("rows");
    w.beginArray();
    for (const std::string &r : rows)
        w.raw(r);
    w.endArray();
    w.key("registry").raw(obs::MetricsRegistry::global().toJson());
    w.key("tracer").raw(obs::SpanTracer::global().toJson());
    w.endObject();
    std::string doc = std::move(w).str();

    std::string err;
    if (!obs::jsonValidate(doc, err))
        fatal("bench_micro: emitted invalid JSON: " + err);

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("bench_micro: cannot open " + path);
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\n[json] wrote %zu rows to %s\n", rows.size(),
                path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the flags the table benches share (--json=, --scale=)
    // before google-benchmark sees argv; it rejects unknown flags.
    std::string json_path;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;
        else if (std::strncmp(argv[i], "--scale=", 8) == 0)
            ; // accepted for CLI uniformity; micro benches don't scale
        else
            args.push_back(argv[i]);
    }
    if (json_path.empty())
        if (const char *env = std::getenv("SKYWAY_BENCH_JSON"))
            json_path = env;
    if (!json_path.empty())
        obs::SpanTracer::setTracingEnabled(true);

    int bargc = static_cast<int>(args.size());
    benchmark::Initialize(&bargc, args.data());
    if (json_path.empty()) {
        // No custom reporter: --benchmark_format etc. keep working.
        benchmark::RunSpecifiedBenchmarks();
    } else {
        JsonRowReporter reporter;
        benchmark::RunSpecifiedBenchmarks(&reporter);
        writeJsonDoc(json_path, reporter.rows);
    }
    benchmark::Shutdown();
    return 0;
}
