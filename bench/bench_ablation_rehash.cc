/**
 * @file
 * Ablation: hashcode preservation (DESIGN.md ABL2). Identity
 * hashcodes are cached in object headers; Skyway transfers the whole
 * header, so a hash-keyed structure can be used on the receiver
 * without rehashing. Byte serializers rebuild objects, losing the
 * cached hash — every insertion recomputes it. This bench measures
 * building an identity-hash-keyed table over transferred objects
 * under both paths.
 */

#include <unordered_map>

#include "bench/benchutil.hh"
#include "skyway/jvm.hh"
#include "skyway/streams.hh"

using namespace skyway;

int
main(int argc, char **argv)
{
    double scale = bench::parseScale(argc, argv, 1.0);
    bench::JsonReport report(argc, argv, "bench_ablation_rehash",
                             scale);
    const int objects = static_cast<int>(50000 * scale);
    ClassCatalog cat = bench::fullCatalog();
    ClusterNetwork net(2);
    Jvm sender(cat, net, 0, 0);
    Jvm receiver(cat, net, 1, 0);

    // Objects whose identity hashes are hot on the sender (as keys
    // of a HashMap would be).
    LocalRoots roots(sender.heap());
    Klass *k = sender.klasses().load("java.lang.Integer");
    std::vector<std::size_t> slots;
    for (int i = 0; i < objects; ++i) {
        Address obj = sender.heap().allocateInstance(k);
        field::set<std::int32_t>(sender.heap(), obj,
                                 k->requireField("value"), i);
        sender.heap().identityHash(obj);
        slots.push_back(roots.push(obj));
    }

    auto buildTable = [&](const std::vector<Address> &objs,
                          std::uint64_t &out_ns) {
        ScopedTimer t(out_ns);
        std::unordered_map<std::int32_t, Address> table;
        table.reserve(objs.size());
        for (Address a : objs)
            table.emplace(receiver.heap().identityHash(a), a);
        return table.size();
    };

    bench::printHeader(
        "Ablation 2: hashcode preservation vs rehash on receive");

    // Path 1: Skyway — hashes arrive cached in the mark word.
    std::vector<Address> sky_objs;
    {
        auto row = report.row("skyway");
        SkywaySerializer ser(sender.skyway());
        SkywaySerializer des(receiver.skyway());
        VectorSink sink;
        for (std::size_t s : slots)
            ser.writeObject(roots.get(s), sink);
        ser.endStream(sink);
        ByteSource src(sink.bytes());
        for (int i = 0; i < objects; ++i)
            sky_objs.push_back(des.readObject(src));
        std::uint64_t ns = 0;
        std::size_t n = buildTable(sky_objs, ns);
        std::uint64_t cached = 0;
        for (Address a : sky_objs)
            if (mark::hasHash(receiver.heap().markOf(a)))
                ++cached;
        std::printf("skyway: table of %zu built in %.2f ms "
                    "(%llu/%d hashes arrived cached)\n",
                    n, ns / 1e6,
                    static_cast<unsigned long long>(cached), objects);
        row.value("table_build_ms", ns / 1e6);
        row.value("hashes_cached", static_cast<double>(cached));
        row.value("table_size", static_cast<double>(n));
    }

    // Path 2: Kryo — objects are recreated, identity hashes must be
    // recomputed and the table effectively rebuilt from scratch.
    {
        auto row = report.row("kryo");
        auto reg = std::make_shared<KryoRegistry>();
        registerSparkAppKryo(*reg);
        KryoSerializer ser(SdEnv{sender.heap(), sender.klasses()},
                           *reg);
        KryoSerializer des(SdEnv{receiver.heap(), receiver.klasses()},
                           *reg);
        VectorSink sink;
        for (std::size_t s : slots)
            ser.writeObject(roots.get(s), sink);
        LocalRoots recv(receiver.heap());
        std::vector<Address> objs;
        ByteSource src(sink.bytes());
        for (int i = 0; i < objects; ++i) {
            std::size_t r = recv.push(des.readObject(src));
            objs.push_back(recv.get(r));
        }
        std::uint64_t cached = 0;
        for (Address a : objs)
            if (mark::hasHash(receiver.heap().markOf(a)))
                ++cached;
        std::uint64_t ns = 0;
        std::size_t n = buildTable(objs, ns);
        std::printf("kryo:   table of %zu built in %.2f ms "
                    "(%llu/%d hashes arrived cached)\n",
                    n, ns / 1e6,
                    static_cast<unsigned long long>(cached), objects);
        row.value("table_build_ms", ns / 1e6);
        row.value("hashes_cached", static_cast<double>(cached));
        row.value("table_size", static_cast<double>(n));
    }
    std::printf("\n(with preserved hashes the layout of hash-based "
                "structures can be reused immediately — the paper's "
                "no-rehashing property)\n");
    return 0;
}
