/**
 * @file
 * Shared plumbing for the benchmark binaries: catalog construction,
 * serializer factories, scale-knob parsing, and table printing. Every
 * bench prints labeled CSV-style rows mirroring the corresponding
 * paper table or figure (see DESIGN.md's per-experiment index).
 */

#ifndef SKYWAY_BENCH_BENCHUTIL_HH
#define SKYWAY_BENCH_BENCHUTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "minispark/apps.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "sd/javaserializer.hh"
#include "support/stopwatch.hh"
#include "workloads/jsbs_family.hh"

namespace skyway
{
namespace bench
{

/**
 * Scale knob: `--scale=X` on the command line or the
 * SKYWAY_BENCH_SCALE environment variable; defaults keep the full
 * sweep in the minutes range on one core.
 */
inline double
parseScale(int argc, char **argv, double def)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--scale=", 8) == 0)
            return std::atof(argv[i] + 8);
    }
    if (const char *env = std::getenv("SKYWAY_BENCH_SCALE"))
        return std::atof(env);
    return def;
}

/**
 * Transport knob: `--transport=model|tcp` on the command line or the
 * SKYWAY_BENCH_TRANSPORT environment variable. Accounting is
 * transport-independent, so the deterministic byte counters a bench
 * reports must not change with this flag — bench_network_sensitivity
 * asserts exactly that.
 */
inline TransportKind
parseTransport(int argc, char **argv)
{
    std::string name;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--transport=", 12) == 0)
            name = argv[i] + 12;
    }
    if (name.empty()) {
        if (const char *env = std::getenv("SKYWAY_BENCH_TRANSPORT"))
            name = env;
    }
    if (name.empty())
        return TransportKind::Model;
    auto kind = parseTransportKind(name);
    if (!kind)
        fatal("parseTransport: unknown transport '" + name +
              "' (expected model or tcp)");
    return *kind;
}

/** Catalog with every application class the benches use. */
inline ClassCatalog
fullCatalog()
{
    ClassCatalog cat = makeStandardCatalog();
    defineSparkAppClasses(cat);
    defineMediaClasses(cat);
    return cat;
}

/** One of the Spark-facing serializer configurations ("java",
 *  "kryo", "skyway", or "skyway-c" — Skyway with the adaptive compact
 *  wire encoding enabled, docs/WIRE_FORMAT.md). */
struct SparkSetup
{
    std::string name;
    std::shared_ptr<KryoRegistry> registry; // kryo only
    std::unique_ptr<SerializerFactory> factory;
    std::unique_ptr<ClusterSkywayFactory> skywayFactory;

    SerializerFactory &
    get()
    {
        if (factory)
            return *factory;
        return *skywayFactory;
    }
};

inline SparkSetup
makeSparkSetup(const std::string &which)
{
    SparkSetup s;
    s.name = which;
    if (which == "java") {
        s.factory = std::make_unique<JavaSerializerFactory>();
    } else if (which == "kryo") {
        s.registry = std::make_shared<KryoRegistry>();
        registerSparkAppKryo(*s.registry);
        s.factory =
            std::make_unique<KryoSerializerFactory>(s.registry);
    } else if (which == "skyway" || which == "skyway-c") {
        s.skywayFactory = std::make_unique<ClusterSkywayFactory>();
    } else {
        fatal("makeSparkSetup: unknown serializer " + which);
    }
    return s;
}

/**
 * Build a cluster for @p setup (binds the Skyway factory). The
 * "skyway-c" setup switches every node's send path to the adaptive
 * compact encoding; each Jvm has already derived its link cost from
 * cfg.network, so the Auto policy self-tunes to the modeled fabric.
 */
inline std::unique_ptr<SparkCluster>
makeCluster(const ClassCatalog &cat, SparkSetup &setup,
            SparkConfig cfg = SparkConfig{})
{
    auto cluster =
        std::make_unique<SparkCluster>(cat, setup.get(), cfg);
    if (setup.skywayFactory)
        setup.skywayFactory->bind(*cluster);
    if (setup.skywayFactory) {
        // The two Skyway columns are an explicit A/B over the wire
        // encoding, so both pin their mode rather than inheriting the
        // SKYWAY_WIRE_COMPACT env knob — a global `force` must not
        // silently turn the raw column into a second compact one.
        WireCompactMode mode = setup.name == "skyway-c"
                                   ? WireCompactMode::Auto
                                   : WireCompactMode::Off;
        cluster->driver().skyway().setWireCompactMode(mode);
        for (int w = 0; w < cluster->numWorkers(); ++w)
            cluster->worker(w).skyway().setWireCompactMode(mode);
    }
    return cluster;
}

inline void
printHeader(const char *title)
{
    std::printf("\n==== %s ====\n", title);
}

/** `--json=FILE` on the command line (empty = no JSON output). */
inline std::string
parseJsonPath(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            return argv[i] + 7;
    }
    if (const char *env = std::getenv("SKYWAY_BENCH_JSON"))
        return env;
    return "";
}

/**
 * Machine-readable bench output (docs/OBSERVABILITY.md). Every bench
 * constructs one JsonReport; each printed table row is bracketed by a
 * JsonReport::Row scope, which measures wall time and the per-row
 * delta of every registered metric. write() (also run by the
 * destructor) assembles the document
 *
 *   { "schema_version": 1, "bench": ..., "scale": ...,
 *     "rows": [ { "bench", "scale", "label", "wall_ms",
 *                 "values": {...},   // the row's printed numbers
 *                 "metrics": {...} } ],  // per-row counter deltas
 *     "registry": {...},   // full registry incl. histograms
 *     "tracer": {...} }    // spans + per-shuffle phases
 *
 * validates that it parses, and writes it to the `--json=FILE` path.
 * With no --json flag everything is a no-op.
 */
class JsonReport
{
  public:
    JsonReport(int argc, char **argv, std::string bench_name,
               double scale)
        : bench_(std::move(bench_name)),
          scale_(scale),
          path_(parseJsonPath(argc, argv))
    {
        // Span tracing is off by default (hot-path budget); a JSON
        // report is an explicit request for the full picture.
        if (enabled())
            obs::SpanTracer::setTracingEnabled(true);
    }

    JsonReport(const JsonReport &) = delete;
    JsonReport &operator=(const JsonReport &) = delete;

    ~JsonReport() { write(); }

    bool enabled() const { return !path_.empty(); }

    /** One table row; finalized when the scope closes. */
    class Row
    {
      public:
        Row(JsonReport &rep, std::string label)
            : rep_(rep), label_(std::move(label))
        {
            if (rep_.enabled())
                before_ = obs::MetricsRegistry::global().snapshot();
        }

        Row(const Row &) = delete;
        Row &operator=(const Row &) = delete;

        ~Row()
        {
            if (rep_.enabled())
                rep_.finishRow(*this);
        }

        /** Attach one of the row's printed numbers by name. */
        void
        value(const std::string &key, double v)
        {
            if (rep_.enabled())
                values_.emplace_back(key, v);
        }

      private:
        friend class JsonReport;

        JsonReport &rep_;
        std::string label_;
        obs::MetricsSnapshot before_;
        Stopwatch sw_;
        std::vector<std::pair<std::string, double>> values_;
    };

    Row row(std::string label) { return Row(*this, std::move(label)); }

    /** Assemble, validate, and write the document (idempotent). */
    void
    write()
    {
        if (!enabled() || written_)
            return;
        obs::JsonWriter w;
        w.beginObject();
        w.key("schema_version").value(std::uint64_t{1});
        w.key("bench").value(bench_);
        w.key("scale").value(scale_);
        w.key("rows");
        w.beginArray();
        for (const std::string &r : rows_)
            w.raw(r);
        w.endArray();
        w.key("registry").raw(
            obs::MetricsRegistry::global().toJson());
        w.key("tracer").raw(obs::SpanTracer::global().toJson());
        w.endObject();
        std::string doc = std::move(w).str();

        std::string err;
        if (!obs::jsonValidate(doc, err))
            fatal("JsonReport: emitted invalid JSON: " + err);

        std::FILE *f = std::fopen(path_.c_str(), "w");
        if (!f)
            fatal("JsonReport: cannot open " + path_);
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("\n[json] wrote %zu rows to %s\n", rows_.size(),
                    path_.c_str());
        written_ = true;
    }

  private:
    void
    finishRow(Row &r)
    {
        double wall_ms = r.sw_.elapsedNs() / 1e6;
        obs::MetricsSnapshot delta =
            obs::MetricsRegistry::global().snapshot().deltaSince(
                r.before_);
        obs::JsonWriter w;
        w.beginObject();
        w.key("bench").value(bench_);
        w.key("scale").value(scale_);
        w.key("label").value(r.label_);
        w.key("wall_ms").value(wall_ms);
        w.key("values");
        w.beginObject();
        for (const auto &[k, v] : r.values_)
            w.key(k).value(v);
        w.endObject();
        w.key("metrics");
        w.beginObject();
        for (const auto &[k, v] : delta.scalars)
            w.key(k).value(v);
        w.endObject();
        w.endObject();
        rows_.push_back(std::move(w).str());
    }

    std::string bench_;
    double scale_;
    std::string path_;
    std::vector<std::string> rows_;
    bool written_ = false;
};

/** One breakdown row in milliseconds, Figure 3/8 style. */
inline void
printBreakdownRow(const std::string &label, const PhaseBreakdown &b)
{
    std::printf("%-24s %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n",
                label.c_str(), b.computeNs / 1e6, b.serNs / 1e6,
                b.writeIoNs / 1e6, b.deserNs / 1e6, b.readIoNs / 1e6,
                b.totalNs() / 1e6);
}

inline void
printBreakdownHeader()
{
    std::printf("%-24s %10s %10s %10s %10s %10s %10s\n", "config",
                "compute", "ser", "write", "deser", "read", "total");
    std::printf("%-24s %10s %10s %10s %10s %10s %10s\n", "", "(ms)",
                "(ms)", "(ms)", "(ms)", "(ms)", "(ms)");
}

} // namespace bench
} // namespace skyway

#endif // SKYWAY_BENCH_BENCHUTIL_HH
