file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8b_flink.dir/bench_fig8b_flink.cc.o"
  "CMakeFiles/bench_fig8b_flink.dir/bench_fig8b_flink.cc.o.d"
  "bench_fig8b_flink"
  "bench_fig8b_flink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8b_flink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
