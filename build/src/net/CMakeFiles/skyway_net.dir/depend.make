# Empty dependencies file for skyway_net.
# This may be replaced when dependencies are built.
