# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_klass[1]_include.cmake")
include("/root/repo/build/tests/test_heap[1]_include.cmake")
include("/root/repo/build/tests/test_gc[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_typereg[1]_include.cmake")
include("/root/repo/build/tests/test_sd[1]_include.cmake")
include("/root/repo/build/tests/test_skyway[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_minispark[1]_include.cmake")
include("/root/repo/build/tests/test_miniflink[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_spark_actions[1]_include.cmake")
include("/root/repo/build/tests/test_failures[1]_include.cmake")
