/**
 * @file
 * SkywaySan heap-graph isomorphism checker (docs/SANITIZER.md).
 *
 * Walks the sender-side root graph and the receiver-side rebuilt
 * graph in lockstep and proves they are isomorphic: same shape (the
 * correspondence between objects is a bijection, so sharing and
 * cycles are preserved exactly), same classes, same array lengths,
 * same primitive field and element values, and — the paper section
 * 3.1 guarantee — the same cached identity hashcodes. Unlike
 * graphsEqual (heap/objectops.hh) it reports *where* the graphs
 * diverge, which is what a validator is for.
 *
 * The two heaps may use different object formats (heterogeneous
 * clusters): fields are matched by layout position via each side's
 * own klass, never by raw offset.
 */

#ifndef SKYWAY_SANITIZE_GRAPHCHECK_HH
#define SKYWAY_SANITIZE_GRAPHCHECK_HH

#include <cstddef>
#include <string>

#include "heap/heap.hh"

namespace skyway
{
namespace sanitize
{

struct GraphCheckResult
{
    bool equal = true;
    /** First divergence, human-readable; empty when equal. */
    std::string divergence;
    /** Distinct object pairs compared. */
    std::size_t objectsCompared = 0;
};

/**
 * Prove the graphs rooted at @p a (in @p ha) and @p b (in @p hb)
 * isomorphic. @p require_hash additionally demands that cached
 * identity hashcodes match pairwise (on by default: Skyway transfers
 * preserve them structurally).
 */
GraphCheckResult checkHeapGraphs(const ManagedHeap &ha, Address a,
                                 const ManagedHeap &hb, Address b,
                                 bool require_hash = true);

} // namespace sanitize
} // namespace skyway

#endif // SKYWAY_SANITIZE_GRAPHCHECK_HH
