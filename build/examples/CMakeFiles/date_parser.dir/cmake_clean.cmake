file(REMOVE_RECURSE
  "CMakeFiles/date_parser.dir/date_parser.cpp.o"
  "CMakeFiles/date_parser.dir/date_parser.cpp.o.d"
  "date_parser"
  "date_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/date_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
