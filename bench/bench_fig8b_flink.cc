/**
 * @file
 * Figure 8(b) and Table 4 of the paper: the five TPC-H-derived Flink
 * queries (Table 3) under Flink's built-in per-field serializers and
 * under Skyway. Prints one breakdown row per (query, engine) cell and
 * the Table 4 normalized summary. The paper's shape: Skyway improves
 * overall time ~19% on average despite shipping ~68% more bytes, with
 * the deserialization column improving even though Flink's lazy
 * deserialization is already cheap.
 */

#include <cmath>

#include "bench/benchutil.hh"
#include "miniflink/queries.hh"

using namespace skyway;

int
main(int argc, char **argv)
{
    double scale = bench::parseScale(argc, argv, 0.25);
    bench::JsonReport report(argc, argv, "bench_fig8b_flink", scale);
    ClassCatalog cat = makeStandardCatalog();
    defineTpchClasses(cat);

    TpchSpec spec;
    spec.scale = scale;
    TpchData db = generateTpch(spec);
    std::printf("TPC-H-shaped dataset: %zu lineitems, %zu orders, "
                "%zu customers (scale %.2f)\n",
                db.lineitem.size(), db.orders.size(),
                db.customer.size(), scale);

    bench::printHeader(
        "Figure 8(b): Flink queries (per-worker average)");
    bench::printBreakdownHeader();

    struct Pair
    {
        FlinkQueryResult builtin, skyway;
    };
    std::vector<std::pair<char, Pair>> results;

    auto recordValues = [](bench::JsonReport::Row &row,
                           const FlinkQueryResult &res) {
        row.value("compute_ms", res.average.computeNs / 1e6);
        row.value("ser_ms", res.average.serNs / 1e6);
        row.value("write_ms", res.average.writeIoNs / 1e6);
        row.value("deser_ms", res.average.deserNs / 1e6);
        row.value("read_ms", res.average.readIoNs / 1e6);
        row.value("total_ms", res.average.totalNs() / 1e6);
        row.value("shuffled_bytes",
                  static_cast<double>(res.shuffledBytes));
    };

    for (char q : {'A', 'B', 'C', 'D', 'E'}) {
        Pair p;
        {
            auto row = report.row(std::string("Q") + q + "/builtin");
            FlinkCluster cluster(cat, FlinkSerMode::Builtin);
            p.builtin = runQuery(q, cluster, db);
            recordValues(row, p.builtin);
        }
        {
            auto row = report.row(std::string("Q") + q + "/skyway");
            FlinkCluster cluster(cat, FlinkSerMode::Skyway);
            p.skyway = runQuery(q, cluster, db);
            recordValues(row, p.skyway);
        }
        bench::printBreakdownRow(std::string("Q") + q + "/builtin",
                                 p.builtin.average);
        bench::printBreakdownRow(std::string("Q") + q + "/skyway",
                                 p.skyway.average);
        panicIf(p.builtin.checksum != p.skyway.checksum,
                std::string("Q") + q + ": engines disagree");
        results.emplace_back(q, p);
    }

    bench::printHeader("Table 3: query descriptions");
    for (auto &[q, p] : results)
        std::printf("  Q%c  %s\n", q, queryDescription(q));

    bench::printHeader(
        "Table 4: Skyway normalized to Flink built-in");
    std::printf("%-4s %8s %8s %8s %8s %8s %8s\n", "q", "overall",
                "ser", "write", "des", "read", "size");
    double lg[6] = {0, 0, 0, 0, 0, 0};
    for (auto &[q, p] : results) {
        auto ratio = [](double a, double b) {
            return b > 0 ? a / b : 1.0;
        };
        double r[6] = {
            ratio(p.skyway.average.totalNs(),
                  p.builtin.average.totalNs()),
            ratio(p.skyway.average.serNs, p.builtin.average.serNs),
            ratio(p.skyway.average.writeIoNs,
                  p.builtin.average.writeIoNs),
            ratio(p.skyway.average.deserNs,
                  p.builtin.average.deserNs),
            ratio(p.skyway.average.readIoNs,
                  p.builtin.average.readIoNs),
            ratio(static_cast<double>(p.skyway.shuffledBytes),
                  static_cast<double>(p.builtin.shuffledBytes)),
        };
        std::printf("Q%-3c %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n", q,
                    r[0], r[1], r[2], r[3], r[4], r[5]);
        for (int i = 0; i < 6; ++i)
            lg[i] += std::log(r[i]);
    }
    std::printf("%-4s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n", "gm",
                std::exp(lg[0] / 5), std::exp(lg[1] / 5),
                std::exp(lg[2] / 5), std::exp(lg[3] / 5),
                std::exp(lg[4] / 5), std::exp(lg[5] / 5));
    std::printf("(paper geomeans: overall 0.81, ser 0.77, write 0.96, "
                "des 0.75, read 0.61, size 1.68)\n");
    return 0;
}
