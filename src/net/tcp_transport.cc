#include "net/tcp_transport.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>

#include "net/frame.hh"
#include "obs/metrics.hh"
#include "support/logging.hh"
#include "support/stopwatch.hh"

namespace skyway
{

namespace
{

/** Registry-backed real-wire counters, resolved once per process. */
struct TcpMetrics
{
    obs::Counter &realWireNs;
    obs::Counter &framesSent;
    obs::Counter &connectRetries;
    obs::Counter &recvIntoBytes;

    static TcpMetrics &
    get()
    {
        auto &r = obs::MetricsRegistry::global();
        static TcpMetrics m{
            r.counter("net.real_wire_ns"),
            r.counter("net.frames_sent"),
            r.counter("net.connect_retries"),
            r.counter("net.recv_into_bytes"),
        };
        return m;
    }
};

/** How long the pump sleeps in poll() when nothing is happening. */
constexpr int pumpPollMs = 50;

/** Transient-connect retry budget (listen backlog overflow). */
constexpr int connectAttempts = 100;

[[noreturn]] void
sysErr(const char *what)
{
    panic(std::string("TcpTransport: ") + what + ": " +
          std::strerror(errno));
}

/** Read exactly @p len bytes; false on orderly EOF at a frame edge. */
bool
recvFully(int fd, std::uint8_t *buf, std::size_t len)
{
    std::size_t got = 0;
    while (got < len) {
        ssize_t n = ::recv(fd, buf + got, len - got, 0);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0) {
            panicIf(got != 0, "peer closed mid-frame");
            return false;
        }
        if (errno == EINTR)
            continue;
        sysErr("recv");
    }
    return true;
}

void
sendFully(int fd, const std::uint8_t *buf, std::size_t len)
{
    std::size_t sent = 0;
    while (sent < len) {
        ssize_t n = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
        if (n >= 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        sysErr("send");
    }
}

/** True when @p fd has bytes (or EOF) ready right now. */
bool
readableNow(int fd)
{
    pollfd p{fd, POLLIN, 0};
    int rc = ::poll(&p, 1, 0);
    if (rc < 0 && errno != EINTR)
        sysErr("poll");
    return rc > 0 && (p.revents & (POLLIN | POLLHUP | POLLERR));
}

void
setNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace

TcpTransport::TcpTransport(int node_count, WireCounters &wire)
    : nodeCount_(node_count), wire_(wire), handlers_(node_count)
{
    TcpMetrics::get(); // registration outside any hot path

    nodes_.reserve(node_count);
    for (int i = 0; i < node_count; ++i) {
        auto n = std::make_unique<Node>();

        n->listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (n->listenFd < 0)
            sysErr("socket");
        int one = 1;
        ::setsockopt(n->listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = 0; // kernel-assigned
        if (::bind(n->listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0)
            sysErr("bind");
        socklen_t alen = sizeof(addr);
        if (::getsockname(n->listenFd,
                          reinterpret_cast<sockaddr *>(&addr),
                          &alen) < 0)
            sysErr("getsockname");
        n->port = ntohs(addr.sin_port);
        if (::listen(n->listenFd, 128) < 0)
            sysErr("listen");

        int pipefd[2];
        if (::pipe(pipefd) < 0)
            sysErr("pipe");
        // Non-blocking read end: the pump drains the pipe dry after a
        // wakeup without risking a block on an already-empty pipe.
        ::fcntl(pipefd[0], F_SETFL, O_NONBLOCK);
        n->wakeRead = pipefd[0];
        n->wakeWrite = pipefd[1];

        nodes_.push_back(std::move(n));
    }

    // Pumps start only after every listener exists: a node's first
    // send may connect to any peer.
    for (int i = 0; i < node_count; ++i)
        nodes_[i]->pump = std::thread(&TcpTransport::pumpLoop, this, i);
}

TcpTransport::~TcpTransport()
{
    running_.store(false, std::memory_order_relaxed);
    for (int i = 0; i < nodeCount_; ++i)
        wakePump(i);
    for (auto &n : nodes_) {
        if (n->pump.joinable())
            n->pump.join();
    }
    for (auto &n : nodes_) {
        for (auto &c : n->dataConns)
            ::close(c.fd);
        for (auto &[key, fd] : n->dataOut)
            ::close(fd);
        for (auto &[dst, fd] : n->ctrlOut)
            ::close(fd);
        for (int fd : n->ctrlIn)
            ::close(fd);
        ::close(n->listenFd);
        ::close(n->wakeRead);
        ::close(n->wakeWrite);
    }
}

std::uint16_t
TcpTransport::listenPort(NodeId node) const
{
    return nodes_[node]->port;
}

void
TcpTransport::wakePump(NodeId node)
{
    std::uint8_t b = 0;
    ssize_t rc = ::write(nodes_[node]->wakeWrite, &b, 1);
    (void)rc; // a full pipe already guarantees a wakeup
}

void
TcpTransport::writeTimed(int fd, const std::uint8_t *buf,
                         std::size_t len)
{
    Stopwatch sw;
    sendFully(fd, buf, len);
    std::uint64_t ns = sw.elapsedNs();
    wire_.realWireNs.fetch_add(ns, std::memory_order_relaxed);
    TcpMetrics::get().realWireNs.add(ns);
}

int
TcpTransport::connectTo(NodeId dst, const std::uint8_t *shake,
                        std::size_t shake_len)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(nodes_[dst]->port);

    for (int attempt = 0; attempt < connectAttempts; ++attempt) {
        if (attempt > 0) {
            wire_.connectRetries.fetch_add(1,
                                           std::memory_order_relaxed);
            TcpMetrics::get().connectRetries.inc();
            // Backlog overflow is transient: the pump accepts in
            // bounded time.
            struct timespec ts {0, 2'000'000}; // 2 ms
            ::nanosleep(&ts, nullptr);
        }
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            sysErr("socket");
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            setNoDelay(fd);
            sendFully(fd, shake, shake_len);
            return fd;
        }
        int err = errno;
        ::close(fd);
        if (err != ECONNREFUSED && err != EINTR && err != ETIMEDOUT &&
            err != EAGAIN)
            panic(std::string("TcpTransport: connect: ") +
                  std::strerror(err));
    }
    panic("TcpTransport: connect retries exhausted toward node " +
          std::to_string(dst));
}

int
TcpTransport::dataConnFor(Node &n, NodeId src, NodeId dst, int tag)
{
    // Caller holds n.sendMutex.
    auto key = std::make_pair(dst, tag);
    auto it = n.dataOut.find(key);
    if (it != n.dataOut.end())
        return it->second;
    frame::Handshake h{frame::channelData, src, tag};
    std::uint8_t shake[frame::handshakeBytes];
    frame::encodeHandshake(shake, h);
    int fd = connectTo(dst, shake, sizeof(shake));
    n.dataOut.emplace(key, fd);
    return fd;
}

int
TcpTransport::ctrlConnFor(Node &n, NodeId src, NodeId dst)
{
    // Caller holds n.ctrlMutex.
    auto it = n.ctrlOut.find(dst);
    if (it != n.ctrlOut.end())
        return it->second;
    frame::Handshake h{frame::channelControl, src, 0};
    std::uint8_t shake[frame::handshakeBytes];
    frame::encodeHandshake(shake, h);
    int fd = connectTo(dst, shake, sizeof(shake));
    n.ctrlOut.emplace(dst, fd);
    return fd;
}

void
TcpTransport::send(NodeId src, NodeId dst, int tag,
                   std::vector<std::uint8_t> payload)
{
    Node &n = *nodes_[src];
    if (src == dst) {
        // Self-delivery never touches a socket (loopback-to-self is
        // not remote traffic on any transport).
        std::lock_guard<std::mutex> lock(n.recvMutex);
        n.selfBox.push_back(NetMessage{src, dst, tag,
                                       std::move(payload)});
        return;
    }

    frame::DataHeader h{src, tag,
                        static_cast<std::uint32_t>(payload.size())};
    std::uint8_t hdr[frame::dataHeaderBytes];
    frame::encodeDataHeader(hdr, h);
    {
        std::lock_guard<std::mutex> lock(n.sendMutex);
        int fd = dataConnFor(n, src, dst, tag);
        n.txQueue.push_back(Node::TxFrame{
            fd, std::vector<std::uint8_t>(hdr, hdr + sizeof(hdr)),
            std::move(payload)});
    }
    wakePump(src);
}

bool
TcpTransport::poll(NodeId dst, NetMessage &out)
{
    Node &n = *nodes_[dst];
    std::lock_guard<std::mutex> lock(n.recvMutex);
    if (!n.selfBox.empty()) {
        out = std::move(n.selfBox.front());
        n.selfBox.pop_front();
        return true;
    }
    for (std::size_t i = 0; i < n.dataConns.size(); ++i) {
        DataConn &c = n.dataConns[i];
        if (!readableNow(c.fd))
            continue;
        std::uint8_t hdr[frame::dataHeaderBytes];
        if (!recvFully(c.fd, hdr, sizeof(hdr))) {
            ::close(c.fd);
            n.dataConns.erase(n.dataConns.begin() + i--);
            continue;
        }
        frame::DataHeader h = frame::decodeDataHeader(hdr);
        out = NetMessage{h.src, dst, h.tag, {}};
        out.payload.resize(h.len);
        if (h.len)
            recvFully(c.fd, out.payload.data(), h.len);
        return true;
    }
    return false;
}

bool
TcpTransport::pollTag(NodeId dst, int tag, NetMessage &out)
{
    Node &n = *nodes_[dst];
    std::lock_guard<std::mutex> lock(n.recvMutex);
    for (auto it = n.selfBox.begin(); it != n.selfBox.end(); ++it) {
        if (it->tag == tag) {
            out = std::move(*it);
            n.selfBox.erase(it);
            return true;
        }
    }
    // One connection per (src, tag) stream: frames for other tags
    // live on other sockets, so "skip and retain" costs nothing —
    // their bytes are simply not read yet.
    for (std::size_t i = 0; i < n.dataConns.size(); ++i) {
        DataConn &c = n.dataConns[i];
        if (c.tag != tag || !readableNow(c.fd))
            continue;
        std::uint8_t hdr[frame::dataHeaderBytes];
        if (!recvFully(c.fd, hdr, sizeof(hdr))) {
            ::close(c.fd);
            n.dataConns.erase(n.dataConns.begin() + i--);
            continue;
        }
        frame::DataHeader h = frame::decodeDataHeader(hdr);
        out = NetMessage{h.src, dst, h.tag, {}};
        out.payload.resize(h.len);
        if (h.len)
            recvFully(c.fd, out.payload.data(), h.len);
        return true;
    }
    return false;
}

std::ptrdiff_t
TcpTransport::pollTagInto(NodeId dst, int tag, const ReserveFn &reserve)
{
    Node &n = *nodes_[dst];
    std::lock_guard<std::mutex> lock(n.recvMutex);
    for (auto it = n.selfBox.begin(); it != n.selfBox.end(); ++it) {
        if (it->tag != tag)
            continue;
        NetMessage msg = std::move(*it);
        n.selfBox.erase(it);
        if (msg.payload.empty())
            return 0;
        std::uint8_t *to = reserve(msg.payload.size());
        panicIf(to == nullptr, "pollTagInto: reserve returned null");
        std::memcpy(to, msg.payload.data(), msg.payload.size());
        return static_cast<std::ptrdiff_t>(msg.payload.size());
    }
    for (std::size_t i = 0; i < n.dataConns.size(); ++i) {
        DataConn &c = n.dataConns[i];
        if (c.tag != tag || !readableNow(c.fd))
            continue;
        std::uint8_t hdr[frame::dataHeaderBytes];
        if (!recvFully(c.fd, hdr, sizeof(hdr))) {
            ::close(c.fd);
            n.dataConns.erase(n.dataConns.begin() + i--);
            continue;
        }
        frame::DataHeader h = frame::decodeDataHeader(hdr);
        if (h.len == 0)
            return 0; // end-of-stream marker: reserve untouched
        // The zero-copy handoff: recv() straight into caller-posted
        // storage (old-gen chunk space on the Skyway receive path).
        std::uint8_t *to = reserve(h.len);
        panicIf(to == nullptr, "pollTagInto: reserve returned null");
        recvFully(c.fd, to, h.len);
        wire_.recvIntoBytes.fetch_add(h.len,
                                      std::memory_order_relaxed);
        TcpMetrics::get().recvIntoBytes.add(h.len);
        return static_cast<std::ptrdiff_t>(h.len);
    }
    return -1;
}

void
TcpTransport::registerHandler(NodeId node, RequestHandler handler)
{
    std::lock_guard<std::mutex> lock(handlerMutex_);
    handlers_[node] = std::move(handler);
}

std::vector<std::uint8_t>
TcpTransport::request(NodeId src, NodeId dst, int tag,
                      const std::vector<std::uint8_t> &payload,
                      const RequestOptions &opts)
{
    RequestHandler local;
    {
        std::lock_guard<std::mutex> lock(handlerMutex_);
        if (src == dst)
            local = handlers_[dst];
    }
    if (src == dst) {
        panicIf(!local, "request: node has no registered handler");
        return local(src, tag, payload);
    }

    Node &n = *nodes_[src];
    std::mutex *pair;
    {
        std::lock_guard<std::mutex> lock(n.ctrlMutex);
        auto &slot = n.ctrlPair[dst];
        if (!slot)
            slot = std::make_unique<std::mutex>();
        pair = slot.get();
    }
    // One request in flight per (src, dst) pair: the shared control
    // connection carries strict request/reply exchanges.
    std::lock_guard<std::mutex> exchange(*pair);

    for (int attempt = 0; attempt <= opts.maxRetries; ++attempt) {
        if (attempt > 0) {
            wire_.connectRetries.fetch_add(1,
                                           std::memory_order_relaxed);
            TcpMetrics::get().connectRetries.inc();
        }
        int fd;
        std::uint32_t req_id;
        {
            std::lock_guard<std::mutex> lock(n.ctrlMutex);
            fd = ctrlConnFor(n, src, dst);
            req_id = n.nextReqId++;
        }

        frame::ControlHeader h{
            frame::kindRequest, src, tag, req_id,
            static_cast<std::uint32_t>(payload.size())};
        std::uint8_t hdr[frame::controlHeaderBytes];
        frame::encodeControlHeader(hdr, h);
        writeTimed(fd, hdr, sizeof(hdr));
        if (!payload.empty())
            writeTimed(fd, payload.data(), payload.size());
        wire_.framesSent.fetch_add(1, std::memory_order_relaxed);
        TcpMetrics::get().framesSent.inc();

        // Wait out the reply, discarding stale replies from earlier
        // timed-out attempts by request id.
        Stopwatch sw;
        while (true) {
            std::uint64_t spent_ms = sw.elapsedNs() / 1'000'000;
            if (spent_ms >= opts.timeoutMs)
                break; // timeout: resend (bounded)
            pollfd p{fd, POLLIN, 0};
            int rc = ::poll(&p, 1,
                            static_cast<int>(opts.timeoutMs -
                                             spent_ms));
            if (rc < 0 && errno == EINTR)
                continue;
            if (rc <= 0)
                break;
            std::uint8_t rhdr[frame::controlHeaderBytes];
            if (!recvFully(fd, rhdr, sizeof(rhdr))) {
                // Peer dropped the connection: reconnect and resend.
                std::lock_guard<std::mutex> lock(n.ctrlMutex);
                ::close(fd);
                n.ctrlOut.erase(dst);
                break;
            }
            frame::ControlHeader r = frame::decodeControlHeader(rhdr);
            panicIf(r.kind != frame::kindReply,
                    "TcpTransport: unexpected frame on control reply "
                    "path");
            std::vector<std::uint8_t> reply(r.len);
            if (r.len)
                recvFully(fd, reply.data(), r.len);
            if (r.reqId != req_id)
                continue; // stale reply from a resent attempt
            return reply;
        }
    }
    panic("TcpTransport: request to node " + std::to_string(dst) +
          " timed out after " + std::to_string(opts.maxRetries) +
          " retries (tag " + std::to_string(tag) + ")");
}

void
TcpTransport::acceptPending(Node &n)
{
    while (true) {
        pollfd p{n.listenFd, POLLIN, 0};
        int rc = ::poll(&p, 1, 0);
        if (rc < 0 && errno == EINTR)
            continue;
        if (rc <= 0)
            return;
        int fd = ::accept(n.listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                return;
            sysErr("accept");
        }
        setNoDelay(fd);
        std::uint8_t buf[frame::handshakeBytes];
        if (!recvFully(fd, buf, sizeof(buf))) {
            ::close(fd);
            continue;
        }
        frame::Handshake h{};
        if (!frame::decodeHandshake(buf, h))
            panic("TcpTransport: bad handshake magic");
        if (h.channel == frame::channelData) {
            std::lock_guard<std::mutex> lock(n.recvMutex);
            n.dataConns.push_back(DataConn{fd, h.src, h.tag});
        } else {
            n.ctrlIn.push_back(fd);
        }
    }
}

bool
TcpTransport::serveControl(NodeId node, int fd)
{
    std::uint8_t hdr[frame::controlHeaderBytes];
    if (!recvFully(fd, hdr, sizeof(hdr)))
        return false;
    frame::ControlHeader h = frame::decodeControlHeader(hdr);
    panicIf(h.kind != frame::kindRequest,
            "TcpTransport: unexpected frame kind on control inbound");
    std::vector<std::uint8_t> payload(h.len);
    if (h.len)
        recvFully(fd, payload.data(), h.len);

    RequestHandler handler;
    {
        std::lock_guard<std::mutex> lock(handlerMutex_);
        handler = handlers_[node];
    }
    panicIf(!handler, "request: node has no registered handler");
    std::vector<std::uint8_t> reply = handler(h.src, h.tag, payload);

    frame::ControlHeader r{
        frame::kindReply, node, h.tag, h.reqId,
        static_cast<std::uint32_t>(reply.size())};
    std::uint8_t rhdr[frame::controlHeaderBytes];
    frame::encodeControlHeader(rhdr, r);
    writeTimed(fd, rhdr, sizeof(rhdr));
    if (!reply.empty())
        writeTimed(fd, reply.data(), reply.size());
    wire_.framesSent.fetch_add(1, std::memory_order_relaxed);
    TcpMetrics::get().framesSent.inc();
    return true;
}

void
TcpTransport::pumpLoop(NodeId node)
{
    Node &n = *nodes_[node];
    while (running_.load(std::memory_order_relaxed)) {
        // Drain outbound frames first. Writes may block on TCP
        // backpressure; consumers drain their ends concurrently, so
        // progress is guaranteed without buffering the queue twice.
        while (true) {
            Node::TxFrame tx;
            {
                std::lock_guard<std::mutex> lock(n.sendMutex);
                if (n.txQueue.empty())
                    break;
                tx = std::move(n.txQueue.front());
                n.txQueue.pop_front();
            }
            writeTimed(tx.fd, tx.header.data(), tx.header.size());
            if (!tx.payload.empty())
                writeTimed(tx.fd, tx.payload.data(),
                           tx.payload.size());
            wire_.framesSent.fetch_add(1, std::memory_order_relaxed);
            TcpMetrics::get().framesSent.inc();
        }

        std::vector<pollfd> fds;
        fds.push_back(pollfd{n.wakeRead, POLLIN, 0});
        fds.push_back(pollfd{n.listenFd, POLLIN, 0});
        for (int fd : n.ctrlIn)
            fds.push_back(pollfd{fd, POLLIN, 0});

        int rc = ::poll(fds.data(), fds.size(), pumpPollMs);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            sysErr("poll");
        }

        if (fds[0].revents & POLLIN) {
            std::uint8_t buf[64];
            while (::read(n.wakeRead, buf, sizeof(buf)) > 0) {
            }
        }
        if (fds[1].revents & POLLIN)
            acceptPending(n);
        for (std::size_t i = 2; i < fds.size(); ++i) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            if (!serveControl(node, fds[i].fd)) {
                ::close(fds[i].fd);
                n.ctrlIn.erase(std::find(n.ctrlIn.begin(),
                                         n.ctrlIn.end(), fds[i].fd));
            }
        }
    }
}

} // namespace skyway
