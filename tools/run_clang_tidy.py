#!/usr/bin/env python3
"""Run the repo's .clang-tidy profile over the exported compile db.

Thin wrapper so `ctest -L lint` and CI can invoke clang-tidy without
caring where it lives or whether it is installed at all:

 - resolves a usable ``clang-tidy`` (``CLANG_TIDY`` env var, plain
   ``clang-tidy``, or any versioned ``clang-tidy-N`` on PATH) and
   **exits 77** when none exists — CTest maps that to SKIPPED via
   SKIP_RETURN_CODE, so a gcc-only box still runs the rest of the
   lint label green instead of red;
 - reads ``compile_commands.json`` from the build tree (``-p``),
   filters it to first-party translation units (src/, tests/, bench/,
   examples/ — never third-party headers), and fans clang-tidy out
   over them with ``--warnings-as-errors`` from the profile;
 - prints per-file diagnostics and fails (exit 1) when any file does.

Usage: run_clang_tidy.py [-p BUILD_DIR] [SOURCE_ROOT] [-j N]
"""

import argparse
import concurrent.futures
import json
import os
import pathlib
import shutil
import subprocess
import sys

SKIP_EXIT = 77

#: Directories (relative to the source root) whose translation units
#: the profile applies to.
FIRST_PARTY = ("src", "tests", "bench", "examples")


def find_clang_tidy() -> str | None:
    env = os.environ.get("CLANG_TIDY")
    if env:
        return env if shutil.which(env) else None
    if shutil.which("clang-tidy"):
        return "clang-tidy"
    # Debian-style versioned binaries, newest first.
    for ver in range(25, 10, -1):
        cand = f"clang-tidy-{ver}"
        if shutil.which(cand):
            return cand
    return None


def first_party_files(
    build_dir: pathlib.Path, root: pathlib.Path
) -> list:
    db = build_dir / "compile_commands.json"
    if not db.is_file():
        sys.exit(
            f"run_clang_tidy: no compile_commands.json in {build_dir} "
            "(configure the build tree first; "
            "CMAKE_EXPORT_COMPILE_COMMANDS is on by default)"
        )
    roots = tuple(str((root / d).resolve()) + os.sep for d in FIRST_PARTY)
    files = []
    for entry in json.loads(db.read_text(encoding="utf-8")):
        f = str(pathlib.Path(entry["file"]).resolve())
        if f.startswith(roots) and f not in files:
            files.append(f)
    return files


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("root", nargs="?", default=".")
    ap.add_argument("-p", dest="build", default="build")
    ap.add_argument("-j", dest="jobs", type=int,
                    default=os.cpu_count() or 2)
    args = ap.parse_args()

    tidy = find_clang_tidy()
    if tidy is None:
        print(
            "run_clang_tidy: clang-tidy not installed — skipping "
            "(exit 77; install clang-tidy or set CLANG_TIDY to run "
            "the profile)"
        )
        return SKIP_EXIT

    root = pathlib.Path(args.root).resolve()
    build = pathlib.Path(args.build).resolve()
    files = first_party_files(build, root)
    if not files:
        sys.exit("run_clang_tidy: compile db has no first-party files")

    print(
        f"run_clang_tidy: {tidy} over {len(files)} translation units "
        f"({build / 'compile_commands.json'})"
    )

    def one(f: str):
        proc = subprocess.run(
            [tidy, "-p", str(build), "--quiet", f],
            capture_output=True,
            text=True,
        )
        return f, proc.returncode, proc.stdout + proc.stderr

    failed = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for f, rc, out in pool.map(one, files):
            rel = os.path.relpath(f, root)
            if rc != 0:
                failed += 1
                print(f"FAIL {rel}")
                print(out)
            else:
                print(f"ok   {rel}")

    if failed:
        print(f"run_clang_tidy FAILED: {failed}/{len(files)} files")
        return 1
    print(f"run_clang_tidy OK: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
