// lint-invariants fixture (MUST PASS rule 1): every socket op the
// loop can reach is non-blocking (MSG_DONTWAIT). Not compiled —
// parsed by tools/lint_invariants.py --selftest.

unsigned long
pumpWrites(int fd, const unsigned char *buf, unsigned long len)
{
    long n = ::send(fd, buf, len,
                    MSG_NOSIGNAL | MSG_DONTWAIT);
    return n < 0 ? 0 : static_cast<unsigned long>(n);
}

void
readHeader(int fd, unsigned char *hdr)
{
    ::recv(fd, hdr, 13, MSG_DONTWAIT);
}

void
eventLoop(int node)
{
    unsigned char hdr[13];
    for (;;) {
        pumpWrites(node, hdr, sizeof(hdr));
        readHeader(node, hdr);
    }
}
