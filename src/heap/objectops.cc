#include "heap/objectops.hh"

#include <unordered_map>
#include <vector>

namespace skyway
{

namespace reflect
{

Address
getRefField(const ManagedHeap &h, Address obj, const std::string &name)
{
    const FieldDesc &f = h.klassOf(obj)->requireField(name);
    return h.loadRef(obj, f.offset);
}

void
setRefField(ManagedHeap &h, Address obj, const std::string &name, Address v)
{
    const FieldDesc &f = h.klassOf(obj)->requireField(name);
    h.storeRef(obj, f.offset, v);
}

} // namespace reflect

namespace array
{

Address
getRef(const ManagedHeap &h, Address arr, std::size_t i)
{
    const Klass *k = h.klassOf(arr);
    return h.loadRef(arr, h.arrayElemOffset(k, i));
}

void
setRef(ManagedHeap &h, Address arr, std::size_t i, Address v)
{
    const Klass *k = h.klassOf(arr);
    h.storeRef(arr, h.arrayElemOffset(k, i), v);
}

} // namespace array

Address
ObjectBuilder::makeString(std::string_view s)
{
    // Allocate the char[] first and root it across the String
    // allocation? Both allocations are young and the second cannot
    // move the first unless it triggers GC — so root defensively.
    Address chars = makeCharArray(s);
    std::size_t slot = heap_.addRoot(chars);
    Klass *strK = klasses_.load("java.lang.String");
    Address str = heap_.allocateInstance(strK);
    chars = heap_.root(slot);
    heap_.removeRoot(slot);
    field::setRef(heap_, str, strK->requireField("value"), chars);
    field::set<std::int32_t>(heap_, str, strK->requireField("hash"), 0);
    return str;
}

std::string
ObjectBuilder::stringValue(Address str) const
{
    Address chars = heap_.loadRef(
        str, heap_.klassOf(str)->requireField("value").offset);
    std::size_t n = static_cast<std::size_t>(heap_.arrayLength(chars));
    std::string out;
    out.reserve(n);
    const Klass *ck = heap_.klassOf(chars);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(static_cast<char>(
            heap_.load<std::uint16_t>(chars,
                                      heap_.arrayElemOffset(ck, i))));
    return out;
}

std::int32_t
ObjectBuilder::stringHash(Address str)
{
    const Klass *k = heap_.klassOf(str);
    const FieldDesc &hf = k->requireField("hash");
    std::int32_t h = field::get<std::int32_t>(heap_, str, hf);
    if (h != 0)
        return h;
    Address chars = field::getRef(heap_, str, k->requireField("value"));
    std::size_t n = static_cast<std::size_t>(heap_.arrayLength(chars));
    const Klass *ck = heap_.klassOf(chars);
    // Java's h*31+c relies on wrapping int arithmetic; accumulate in
    // unsigned (wrapping is defined) and cast back to the same bits.
    std::uint32_t uh = static_cast<std::uint32_t>(h);
    for (std::size_t i = 0; i < n; ++i) {
        uh = 31u * uh + heap_.load<std::uint16_t>(
                            chars, heap_.arrayElemOffset(ck, i));
    }
    h = static_cast<std::int32_t>(uh);
    field::set<std::int32_t>(heap_, str, hf, h);
    return h;
}

Address
ObjectBuilder::makeInteger(std::int32_t v)
{
    Klass *k = klasses_.load("java.lang.Integer");
    Address a = heap_.allocateInstance(k);
    field::set<std::int32_t>(heap_, a, k->requireField("value"), v);
    return a;
}

Address
ObjectBuilder::makeLong(std::int64_t v)
{
    Klass *k = klasses_.load("java.lang.Long");
    Address a = heap_.allocateInstance(k);
    field::set<std::int64_t>(heap_, a, k->requireField("value"), v);
    return a;
}

Address
ObjectBuilder::makeDouble(double v)
{
    Klass *k = klasses_.load("java.lang.Double");
    Address a = heap_.allocateInstance(k);
    field::set<double>(heap_, a, k->requireField("value"), v);
    return a;
}

std::int32_t
ObjectBuilder::integerValue(Address box) const
{
    return heap_.load<std::int32_t>(
        box, heap_.klassOf(box)->requireField("value").offset);
}

std::int64_t
ObjectBuilder::longValue(Address box) const
{
    return heap_.load<std::int64_t>(
        box, heap_.klassOf(box)->requireField("value").offset);
}

double
ObjectBuilder::doubleValue(Address box) const
{
    return heap_.load<double>(
        box, heap_.klassOf(box)->requireField("value").offset);
}

Address
ObjectBuilder::makeIntArray(const std::vector<std::int32_t> &data)
{
    Klass *k = klasses_.arrayOfPrimitive(FieldType::Int);
    Address a = heap_.allocateArray(k, data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        array::set<std::int32_t>(heap_, a, i, data[i]);
    return a;
}

Address
ObjectBuilder::makeLongArray(const std::vector<std::int64_t> &data)
{
    Klass *k = klasses_.arrayOfPrimitive(FieldType::Long);
    Address a = heap_.allocateArray(k, data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        array::set<std::int64_t>(heap_, a, i, data[i]);
    return a;
}

Address
ObjectBuilder::makeDoubleArray(const std::vector<double> &data)
{
    Klass *k = klasses_.arrayOfPrimitive(FieldType::Double);
    Address a = heap_.allocateArray(k, data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        array::set<double>(heap_, a, i, data[i]);
    return a;
}

Address
ObjectBuilder::makeCharArray(std::string_view data)
{
    Klass *k = klasses_.arrayOfPrimitive(FieldType::Char);
    Address a = heap_.allocateArray(k, data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        array::set<std::uint16_t>(heap_, a, i,
                                  static_cast<std::uint8_t>(data[i]));
    return a;
}

Address
ObjectBuilder::makeRefArray(const std::string &elemClass, std::size_t n)
{
    Klass *k = klasses_.arrayOfRefs(elemClass);
    return heap_.allocateArray(k, n);
}

namespace
{

bool
payloadEqual(const ManagedHeap &ha, Address a, const ManagedHeap &hb,
             Address b)
{
    const Klass *ka = ha.klassOf(a);
    const Klass *kb = hb.klassOf(b);
    if (ka->name() != kb->name())
        return false;
    if (ka->isArray()) {
        if (ha.arrayLength(a) != hb.arrayLength(b))
            return false;
        if (ka->elemType() == FieldType::Ref)
            return true; // elements compared by the graph walk
        std::size_t n = static_cast<std::size_t>(ha.arrayLength(a));
        std::size_t sz = ka->elemSize();
        const void *pa = reinterpret_cast<const void *>(
            a + ha.format().arrayHeaderBytes());
        const void *pb = reinterpret_cast<const void *>(
            b + hb.format().arrayHeaderBytes());
        return std::memcmp(pa, pb, n * sz) == 0;
    }
    for (const FieldDesc &f : ka->fields()) {
        if (f.type == FieldType::Ref)
            continue;
        std::size_t sz = fieldSize(f.type);
        const FieldDesc *fb = kb->findField(f.name);
        if (!fb || fb->type != f.type)
            return false;
        if (std::memcmp(reinterpret_cast<const void *>(a + f.offset),
                        reinterpret_cast<const void *>(b + fb->offset),
                        sz) != 0)
            return false;
    }
    return true;
}

} // namespace

bool
graphsEqual(const ManagedHeap &ha, Address a, const ManagedHeap &hb,
            Address b, bool requireHash)
{
    // Parallel BFS with an isomorphism map: a's objects must map
    // one-to-one onto b's, preserving sharing and cycles.
    std::unordered_map<Address, Address> mapped;
    std::vector<std::pair<Address, Address>> work;
    work.emplace_back(a, b);

    while (!work.empty()) {
        auto [x, y] = work.back();
        work.pop_back();
        if (x == nullAddr || y == nullAddr) {
            if (x != y)
                return false;
            continue;
        }
        auto it = mapped.find(x);
        if (it != mapped.end()) {
            if (it->second != y)
                return false;
            continue;
        }
        mapped.emplace(x, y);
        if (!payloadEqual(ha, x, hb, y))
            return false;
        if (requireHash) {
            Word ma = ha.markOf(x);
            Word mb = hb.markOf(y);
            if (mark::hasHash(ma) != mark::hasHash(mb))
                return false;
            if (mark::hasHash(ma) &&
                mark::hashOf(ma) != mark::hashOf(mb))
                return false;
        }
        // Enqueue reference slots pairwise. Slot enumeration order is
        // deterministic (layout order / element order) on both sides.
        std::vector<Address> xs, ys;
        forEachRefSlot(ha, x,
                       [&](std::size_t off) {
                           xs.push_back(ha.loadRef(x, off));
                       });
        forEachRefSlot(hb, y,
                       [&](std::size_t off) {
                           ys.push_back(hb.loadRef(y, off));
                       });
        if (xs.size() != ys.size())
            return false;
        for (std::size_t i = 0; i < xs.size(); ++i)
            work.emplace_back(xs[i], ys[i]);
    }
    return true;
}

GraphMeasure
measureGraph(const ManagedHeap &h, Address root)
{
    GraphMeasure m;
    if (root == nullAddr)
        return m;
    std::unordered_map<Address, bool> seen;
    std::vector<Address> work{root};
    while (!work.empty()) {
        Address a = work.back();
        work.pop_back();
        if (a == nullAddr || seen.count(a))
            continue;
        seen[a] = true;
        ++m.objects;
        m.bytes += h.objectSize(a);
        forEachRefSlot(h, a, [&](std::size_t off) {
            work.push_back(h.loadRef(a, off));
        });
    }
    return m;
}

} // namespace skyway
