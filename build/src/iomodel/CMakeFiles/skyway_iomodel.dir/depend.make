# Empty dependencies file for skyway_iomodel.
# This may be replaced when dependencies are built.
