/**
 * @file
 * google-benchmark micro suite: per-record costs of the transports
 * and the runtime primitives they are built from. These are the
 * microscopic quantities whose ratios drive every macro figure —
 * reflective field access vs cached-offset access vs whole-object
 * memcpy, varint codecs, heap allocation, and the Skyway claim/copy
 * and receive paths at several graph sizes.
 */

#include <benchmark/benchmark.h>

#include "sd/javaserializer.hh"
#include "sd/kryoserializer.hh"
#include "skyway/jvm.hh"
#include "skyway/streams.hh"
#include "support/rng.hh"

using namespace skyway;

namespace
{

/** Shared two-node environment (built once). */
struct Env
{
    Env() : net(2), a(catalog(), net, 0, 0), b(catalog(), net, 1, 0)
    {
        reg = std::make_shared<KryoRegistry>();
        kryoRegisterBuiltins(*reg);
        reg->registerClass("bench.Rec");
    }

    static ClassCatalog &
    catalog()
    {
        static ClassCatalog cat = [] {
            ClassCatalog c = makeStandardCatalog();
            c.define(ClassDef{
                "bench.Rec",
                "",
                {
                    {"id", FieldType::Long, ""},
                    {"weight", FieldType::Double, ""},
                    {"tag", FieldType::Ref, "java.lang.String"},
                },
            });
            return c;
        }();
        return cat;
    }

    /** One rooted bench.Rec. */
    std::size_t
    makeRec(LocalRoots &roots, int i)
    {
        Klass *k = a.klasses().load("bench.Rec");
        LocalRoots tmp(a.heap());
        std::size_t rs =
            tmp.push(a.builder().makeString("tag" + std::to_string(i)));
        Address rec = a.heap().allocateInstance(k);
        field::set<std::int64_t>(a.heap(), rec, k->requireField("id"),
                                 i);
        field::set<double>(a.heap(), rec, k->requireField("weight"),
                           i * 0.5);
        field::setRef(a.heap(), rec, k->requireField("tag"),
                      tmp.get(rs));
        return roots.push(rec);
    }

    ClusterNetwork net;
    Jvm a, b;
    std::shared_ptr<KryoRegistry> reg;
};

Env &
env()
{
    static Env e;
    return e;
}

void
BM_VarintEncode(benchmark::State &state)
{
    VectorSink sink;
    std::uint64_t v = 0;
    for (auto _ : state) {
        sink.clear();
        sink.writeVarU64(v);
        v = v * 2862933555777941757ull + 3037000493ull;
        benchmark::DoNotOptimize(sink.bytesWritten());
    }
}
BENCHMARK(BM_VarintEncode);

void
BM_HeapAllocateInstance(benchmark::State &state)
{
    Env &e = env();
    Klass *k = e.a.klasses().load("bench.Rec");
    for (auto _ : state)
        benchmark::DoNotOptimize(e.a.heap().allocateInstance(k));
}
BENCHMARK(BM_HeapAllocateInstance);

void
BM_ReflectiveFieldGet(benchmark::State &state)
{
    Env &e = env();
    LocalRoots roots(e.a.heap());
    std::size_t r = e.makeRec(roots, 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(reflect::getField<std::int64_t>(
            e.a.heap(), roots.get(r), "id"));
    }
}
BENCHMARK(BM_ReflectiveFieldGet);

void
BM_CachedOffsetFieldGet(benchmark::State &state)
{
    Env &e = env();
    LocalRoots roots(e.a.heap());
    std::size_t r = e.makeRec(roots, 1);
    const FieldDesc &f =
        e.a.klasses().load("bench.Rec")->requireField("id");
    for (auto _ : state) {
        benchmark::DoNotOptimize(field::get<std::int64_t>(
            e.a.heap(), roots.get(r), f));
    }
}
BENCHMARK(BM_CachedOffsetFieldGet);

void
BM_IdentityHashCached(benchmark::State &state)
{
    Env &e = env();
    LocalRoots roots(e.a.heap());
    std::size_t r = e.makeRec(roots, 1);
    e.a.heap().identityHash(roots.get(r));
    for (auto _ : state)
        benchmark::DoNotOptimize(e.a.heap().identityHash(roots.get(r)));
}
BENCHMARK(BM_IdentityHashCached);

template <typename MakeSer, typename MakeDes>
void
runSdRoundTrip(benchmark::State &state, MakeSer make_ser,
               MakeDes make_des)
{
    Env &e = env();
    LocalRoots roots(e.a.heap());
    std::size_t r = e.makeRec(roots, 7);
    auto ser = make_ser();
    auto des = make_des();
    for (auto _ : state) {
        VectorSink sink;
        ser->writeObject(roots.get(r), sink);
        ser->endStream(sink);
        ser->reset();
        ByteSource src(sink.bytes());
        benchmark::DoNotOptimize(des->readObject(src));
        des->releaseReceived();
        state.counters["bytes"] =
            static_cast<double>(sink.bytesWritten());
    }
}

void
BM_RoundTripJava(benchmark::State &state)
{
    Env &e = env();
    runSdRoundTrip(
        state,
        [&] {
            return std::make_unique<JavaSerializer>(
                SdEnv{e.a.heap(), e.a.klasses()});
        },
        [&] {
            return std::make_unique<JavaSerializer>(
                SdEnv{e.b.heap(), e.b.klasses()});
        });
}
BENCHMARK(BM_RoundTripJava);

void
BM_RoundTripKryo(benchmark::State &state)
{
    Env &e = env();
    runSdRoundTrip(
        state,
        [&] {
            return std::make_unique<KryoSerializer>(
                SdEnv{e.a.heap(), e.a.klasses()}, *e.reg);
        },
        [&] {
            return std::make_unique<KryoSerializer>(
                SdEnv{e.b.heap(), e.b.klasses()}, *e.reg);
        });
}
BENCHMARK(BM_RoundTripKryo);

void
BM_RoundTripSkyway(benchmark::State &state)
{
    Env &e = env();
    runSdRoundTrip(
        state,
        [&] {
            return std::make_unique<SkywaySerializer>(e.a.skyway());
        },
        [&] {
            return std::make_unique<SkywaySerializer>(e.b.skyway(),
                                                      64 << 10,
                                                      4 << 10);
        });
}
BENCHMARK(BM_RoundTripSkyway);

void
BM_SkywayTransferBatch(benchmark::State &state)
{
    Env &e = env();
    const int n = static_cast<int>(state.range(0));
    LocalRoots roots(e.a.heap());
    std::vector<std::size_t> recs;
    for (int i = 0; i < n; ++i)
        recs.push_back(e.makeRec(roots, i));

    for (auto _ : state) {
        e.a.skyway().shuffleStart();
        SkywayObjectInputStream in(e.b.skyway(), 64 << 10);
        SkywayObjectOutputStream out(
            e.a.skyway(),
            [&in](const std::uint8_t *d, std::size_t len) {
                in.feed(d, len);
            });
        for (std::size_t r : recs)
            out.writeObject(roots.get(r));
        out.flush();
        in.finish();
        benchmark::DoNotOptimize(in.buffer().roots().size());
        auto buf = in.releaseBuffer();
        buf->free();
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SkywayTransferBatch)->Arg(10)->Arg(100)->Arg(1000);

} // namespace

BENCHMARK_MAIN();
