# Driver for the bench-smoke CTest targets: run one bench binary with
# --json=OUT (plus any extra ARGS), then validate the emitted document
# with json_check. Invoked as
#   cmake -DBENCH=... -DOUT=... -DCHECK=... [-DARGS=...] [-DSETENV=...]
#       -P smoke.cmake
# ARGS and SETENV are semicolon-separated lists (e.g. "--scale=0.02",
# "SKYWAY_WIRE_COMPACT=force;SKYWAY_WIRE_CHECK=1"); SETENV entries are
# exported into the bench's environment only.

if(NOT DEFINED BENCH OR NOT DEFINED OUT OR NOT DEFINED CHECK)
    message(FATAL_ERROR "smoke.cmake: BENCH, OUT, and CHECK required")
endif()

if(DEFINED SETENV)
    set(launcher ${CMAKE_COMMAND} -E env ${SETENV})
else()
    set(launcher "")
endif()

execute_process(
    COMMAND ${launcher} ${BENCH} ${ARGS} --json=${OUT}
    RESULT_VARIABLE bench_rc
    OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR
        "smoke.cmake: ${BENCH} exited with ${bench_rc}")
endif()

execute_process(
    COMMAND ${CHECK} ${OUT}
    RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "smoke.cmake: json_check rejected ${OUT} (${check_rc})")
endif()
