/**
 * @file
 * Tests for the pluggable transport layer: wire framing units, the
 * TCP transport's delivery semantics (real loopback sockets behind
 * the same ClusterNetwork API), accounting parity between the model
 * and tcp transports, the zero-copy receive path over real sockets,
 * request timeout/retry, and the full Skyway round-trip suite
 * (socket streams, parallel fan-out, type-registry LOOKUP) on TCP.
 * Labeled `transport` and `concurrency` so the TSan matrix runs the
 * whole binary against the pump threads.
 */

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/cluster.hh"
#include "net/frame.hh"
#include "skyway/parallel.hh"
#include "skyway/streams.hh"
#include "typereg/registry.hh"
#include "testclasses.hh"

namespace skyway
{
namespace
{

using testing_support::makeList;
using testing_support::makeMixed;
using testing_support::makePoint;
using testing_support::makeTestCatalog;

std::vector<std::uint8_t>
bytesOf(const std::string &s)
{
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::string
str(const std::vector<std::uint8_t> &v)
{
    return std::string(v.begin(), v.end());
}

/** Spin until a tagged message arrives (TCP bytes are in flight). */
NetMessage
awaitTag(ClusterNetwork &net, NodeId dst, int tag)
{
    NetMessage m;
    while (!net.pollTag(dst, tag, m)) {
    }
    return m;
}

TEST(Frame, HandshakeRoundTrip)
{
    frame::Handshake h{frame::channelData, 7, 42};
    std::uint8_t buf[frame::handshakeBytes];
    frame::encodeHandshake(buf, h);
    frame::Handshake out{};
    ASSERT_TRUE(frame::decodeHandshake(buf, out));
    EXPECT_EQ(out.channel, frame::channelData);
    EXPECT_EQ(out.src, 7);
    EXPECT_EQ(out.tag, 42);
}

TEST(Frame, HandshakeRejectsBadMagic)
{
    frame::Handshake h{frame::channelControl, 1, 0};
    std::uint8_t buf[frame::handshakeBytes];
    frame::encodeHandshake(buf, h);
    buf[0] ^= 0xFF;
    frame::Handshake out{};
    EXPECT_FALSE(frame::decodeHandshake(buf, out));
}

TEST(Frame, DataHeaderRoundTrip)
{
    frame::DataHeader h{3, -9, 123456};
    std::uint8_t buf[frame::dataHeaderBytes];
    frame::encodeDataHeader(buf, h);
    frame::DataHeader out = frame::decodeDataHeader(buf);
    EXPECT_EQ(out.src, 3);
    EXPECT_EQ(out.tag, -9);
    EXPECT_EQ(out.len, 123456u);
}

TEST(Frame, ControlHeaderRoundTrip)
{
    frame::ControlHeader h{frame::kindReply, 2, 101, 77, 9};
    std::uint8_t buf[frame::controlHeaderBytes];
    frame::encodeControlHeader(buf, h);
    frame::ControlHeader out = frame::decodeControlHeader(buf);
    EXPECT_EQ(out.kind, frame::kindReply);
    EXPECT_EQ(out.src, 2);
    EXPECT_EQ(out.tag, 101);
    EXPECT_EQ(out.reqId, 77u);
    EXPECT_EQ(out.len, 9u);
}

TEST(TransportKindTest, NamesParse)
{
    EXPECT_STREQ(transportKindName(TransportKind::Model), "model");
    EXPECT_STREQ(transportKindName(TransportKind::Tcp), "tcp");
    EXPECT_EQ(parseTransportKind("model"), TransportKind::Model);
    EXPECT_EQ(parseTransportKind("tcp"), TransportKind::Tcp);
    EXPECT_FALSE(parseTransportKind("udp").has_value());
}

TEST(TcpCluster, SendPollInOrder)
{
    ClusterNetwork net(3, gigabitEthernet(), TransportKind::Tcp);
    EXPECT_STREQ(net.transportName(), "tcp");
    net.send(0, 1, 7, bytesOf("first"));
    net.send(0, 1, 7, bytesOf("second"));
    NetMessage m = awaitTag(net, 1, 7);
    EXPECT_EQ(m.src, 0);
    EXPECT_EQ(m.tag, 7);
    EXPECT_EQ(str(m.payload), "first");
    m = awaitTag(net, 1, 7);
    EXPECT_EQ(str(m.payload), "second");
    EXPECT_FALSE(net.poll(1, m));
}

TEST(TcpCluster, PollTagSkipsOthersAndRetainsOrder)
{
    ClusterNetwork net(2, gigabitEthernet(), TransportKind::Tcp);
    net.send(0, 1, 1, bytesOf("a1"));
    net.send(0, 1, 2, bytesOf("b"));
    net.send(0, 1, 1, bytesOf("a2"));
    // Draining tag 2 first must not disturb tag 1's order.
    EXPECT_EQ(str(awaitTag(net, 1, 2).payload), "b");
    EXPECT_EQ(str(awaitTag(net, 1, 1).payload), "a1");
    EXPECT_EQ(str(awaitTag(net, 1, 1).payload), "a2");
}

TEST(TcpCluster, SelfSendIsFreeAndDelivered)
{
    ClusterNetwork net(2, gigabitEthernet(), TransportKind::Tcp);
    net.send(0, 0, 5, bytesOf("home"));
    EXPECT_EQ(net.totalBytesSent(0), 0u);
    EXPECT_EQ(net.wireNs(0), 0u);
    NetMessage m;
    ASSERT_TRUE(net.pollTag(0, 5, m)); // local: no flight time
    EXPECT_EQ(str(m.payload), "home");
}

TEST(TcpCluster, PollTagIntoDeliversIntoPostedStorage)
{
    ClusterNetwork net(2, gigabitEthernet(), TransportKind::Tcp);
    std::vector<std::uint8_t> payload(4096);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 13);
    net.send(0, 1, 3, payload);

    std::vector<std::uint8_t> storage(payload.size() + 1, 0xEE);
    std::ptrdiff_t n;
    while ((n = net.pollTagInto(1, 3, [&](std::size_t len) {
                EXPECT_EQ(len, payload.size());
                return storage.data();
            })) < 0) {
    }
    ASSERT_EQ(n, static_cast<std::ptrdiff_t>(payload.size()));
    EXPECT_EQ(0,
              std::memcmp(storage.data(), payload.data(),
                          payload.size()));
    EXPECT_EQ(storage[payload.size()], 0xEE) << "overran the reserve";
    EXPECT_EQ(net.recvIntoBytes(), payload.size());
}

TEST(TcpCluster, PollTagIntoEdgeCases)
{
    ClusterNetwork net(2, gigabitEthernet(), TransportKind::Tcp);
    bool reserve_called = false;
    auto reserve = [&](std::size_t) -> std::uint8_t * {
        reserve_called = true;
        return nullptr;
    };
    // Nothing pending: -1, reserve untouched.
    EXPECT_EQ(net.pollTagInto(1, 9, reserve), -1);
    EXPECT_FALSE(reserve_called);

    // Empty payload (end-of-stream marker): 0, reserve untouched.
    net.send(0, 1, 9, {});
    std::ptrdiff_t n;
    while ((n = net.pollTagInto(1, 9, reserve)) < 0) {
    }
    EXPECT_EQ(n, 0);
    EXPECT_FALSE(reserve_called);
    EXPECT_EQ(net.recvIntoBytes(), 0u);
}

TEST(TcpCluster, RequestReply)
{
    ClusterNetwork net(2, gigabitEthernet(), TransportKind::Tcp);
    net.registerHandler(1, [](NodeId src, int tag,
                              const std::vector<std::uint8_t> &p) {
        EXPECT_EQ(src, 0);
        EXPECT_EQ(tag, 9);
        return std::vector<std::uint8_t>(p.rbegin(), p.rend());
    });
    auto reply = net.request(0, 1, 9, bytesOf("abc"));
    EXPECT_EQ(str(reply), "cba");
    EXPECT_GT(net.wireNs(0), 0u);
    EXPECT_GT(net.realWireNs(), 0u);
    EXPECT_GT(net.framesSent(), 0u);
}

TEST(TcpCluster, RequestWithoutHandlerPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // The fabric is built inside the death statement so the child
    // process gets its own live pump threads.
    EXPECT_DEATH(
        {
            ClusterNetwork net(2, gigabitEthernet(),
                               TransportKind::Tcp);
            net.request(0, 1, 1, {}, RequestOptions{200, 0});
        },
        "no registered handler|timed out");
}

TEST(TcpCluster, RequestTimeoutRetriesThenSucceeds)
{
    ClusterNetwork net(2, gigabitEthernet(), TransportKind::Tcp);
    std::atomic<int> calls{0};
    net.registerHandler(
        1, [&calls](NodeId, int, const std::vector<std::uint8_t> &p) {
            // First serve stalls past the requester's timeout; the
            // resent request (same payload — the protocol is
            // idempotent) is answered promptly.
            if (calls.fetch_add(1) == 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1000));
            }
            return p;
        });
    RequestOptions opts;
    opts.timeoutMs = 300;
    opts.maxRetries = 5;
    auto reply = net.request(0, 1, 4, bytesOf("ping"), opts);
    EXPECT_EQ(str(reply), "ping");
    EXPECT_GE(net.connectRetries(), 1u);
    EXPECT_GE(calls.load(), 2);
}

TEST(TcpCluster, ResetAccountingClearsWireCounters)
{
    ClusterNetwork net(2, gigabitEthernet(), TransportKind::Tcp);
    net.send(0, 1, 1, bytesOf("payload"));
    std::vector<std::uint8_t> storage(16);
    while (net.pollTagInto(1, 1,
                           [&](std::size_t) { return storage.data(); })
           < 0) {
    }
    EXPECT_GT(net.framesSent(), 0u);
    EXPECT_GT(net.recvIntoBytes(), 0u);
    EXPECT_GT(net.realWireNs(), 0u);
    EXPECT_GT(net.totalBytesSent(0), 0u);

    net.resetAccounting();
    EXPECT_EQ(net.framesSent(), 0u);
    EXPECT_EQ(net.connectRetries(), 0u);
    EXPECT_EQ(net.recvIntoBytes(), 0u);
    EXPECT_EQ(net.realWireNs(), 0u);
    EXPECT_EQ(net.totalBytesSent(0), 0u);
    EXPECT_EQ(net.wireNs(0), 0u);
    EXPECT_EQ(net.messagesSent(0), 0u);
}

/** The same traffic pattern on both transports must account
 *  identically — bytes, messages, and modeled wire time. */
TEST(TransportParity, AccountingMatchesByteForByte)
{
    auto drive = [](ClusterNetwork &net) {
        net.registerHandler(
            2, [](NodeId, int, const std::vector<std::uint8_t> &p) {
                return std::vector<std::uint8_t>(p.size() * 2, 0xAB);
            });
        net.send(0, 1, 1, std::vector<std::uint8_t>(100));
        net.send(0, 2, 1, std::vector<std::uint8_t>(50));
        net.send(1, 0, 2, std::vector<std::uint8_t>(25));
        net.send(1, 1, 3, std::vector<std::uint8_t>(999)); // loopback
        net.request(0, 2, 4, std::vector<std::uint8_t>(10));
        // Drain so TCP teardown is quiet.
        (void)awaitTag(net, 1, 1);
        (void)awaitTag(net, 2, 1);
        (void)awaitTag(net, 0, 2);
        NetMessage m;
        (void)net.pollTag(1, 3, m);
    };
    ClusterNetwork model(3, gigabitEthernet(), TransportKind::Model);
    ClusterNetwork tcp(3, gigabitEthernet(), TransportKind::Tcp);
    drive(model);
    drive(tcp);
    for (NodeId s = 0; s < 3; ++s) {
        EXPECT_EQ(model.messagesSent(s), tcp.messagesSent(s)) << s;
        EXPECT_EQ(model.wireNs(s), tcp.wireNs(s)) << s;
        for (NodeId d = 0; d < 3; ++d)
            EXPECT_EQ(model.bytesSent(s, d), tcp.bytesSent(s, d))
                << s << "->" << d;
    }
    EXPECT_EQ(model.framesSent(), 0u) << "model has no real wire";
    EXPECT_GT(tcp.framesSent(), 0u);
}

TEST(TcpCluster, ConcurrentSendersManyTags)
{
    // Hammer one receiving node from two sender threads across many
    // tags; every payload must arrive intact and in per-tag order.
    ClusterNetwork net(3, gigabitEthernet(), TransportKind::Tcp);
    constexpr int perTag = 20;
    constexpr int tags = 4;
    auto sender = [&net](NodeId src) {
        for (int i = 0; i < perTag; ++i) {
            for (int t = 0; t < tags; ++t) {
                std::vector<std::uint8_t> p(64 + t,
                                            static_cast<std::uint8_t>(
                                                i));
                net.send(src, 2, src * tags + t, std::move(p));
            }
        }
    };
    std::thread t1(sender, 0), t2(sender, 1);
    for (int src = 0; src < 2; ++src) {
        for (int t = 0; t < tags; ++t) {
            for (int i = 0; i < perTag; ++i) {
                NetMessage m = awaitTag(net, 2, src * tags + t);
                EXPECT_EQ(m.src, src);
                ASSERT_EQ(m.payload.size(),
                          static_cast<std::size_t>(64 + t));
                EXPECT_EQ(m.payload[0], static_cast<std::uint8_t>(i));
            }
        }
    }
    t1.join();
    t2.join();
}

/** Skyway over real sockets: the SkywayTest topology on TCP. */
class TcpSkywayTest : public ::testing::Test
{
  protected:
    TcpSkywayTest()
        : catalog_(makeTestCatalog()),
          net_(3, gigabitEthernet(), TransportKind::Tcp),
          driver_(catalog_, net_, 0, 0),
          nodeA_(catalog_, net_, 1, 0),
          nodeB_(catalog_, net_, 2, 0)
    {
        // Registry attach traffic (REQUEST_VIEW over real sockets)
        // has flowed by now; start the counters clean.
        net_.resetAccounting();
    }

    ClassCatalog catalog_;
    ClusterNetwork net_;
    Jvm driver_;
    Jvm nodeA_;
    Jvm nodeB_;
    std::vector<std::unique_ptr<InputBuffer>> keep_;
};

TEST_F(TcpSkywayTest, SocketStreamsRoundTripZeroCopy)
{
    nodeB_.skyway().debug().checkReceivedGraph = true;

    LocalRoots roots(nodeA_.heap());
    Address head = makeList(nodeA_, roots, 300);
    nodeA_.skyway().shuffleStart();
    SkywaySocketOutputStream out(nodeA_.skyway(), net_, nodeA_.id(),
                                 nodeB_.id(), 42, 4 << 10);
    SkywaySocketInputStream in(nodeB_.skyway(), net_, nodeB_.id(), 42);
    out.writeObject(head);
    out.close();
    while (!in.pump()) {
    }
    Address q = in.readObject();
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), head, nodeB_.heap(), q));

    // Every wire payload byte was recv()'d straight into chunk
    // storage — no staging copy survived the refactor.
    EXPECT_GT(out.totalBytes(), 0u);
    EXPECT_EQ(net_.recvIntoBytes(), out.totalBytes());
    EXPECT_EQ(net_.bytesSent(nodeA_.id(), nodeB_.id()),
              out.totalBytes());
    keep_.push_back(in.releaseBuffer());
}

TEST_F(TcpSkywayTest, ParallelFanOutOverSockets)
{
    constexpr unsigned N = 3;
    LocalRoots roots(nodeA_.heap());
    Address shared = makeMixed(nodeA_, roots, "contended subtree");
    std::size_t rs = roots.push(shared);
    Klass *pairK = nodeA_.klasses().load("test.Pair");
    std::vector<Address> tops;
    LocalRoots keepRoots(nodeA_.heap());
    for (unsigned t = 0; t < 2 * N; ++t) {
        Address p = nodeA_.heap().allocateInstance(pairK);
        std::size_t rp = keepRoots.push(p);
        field::setRef(nodeA_.heap(), keepRoots.get(rp),
                      pairK->requireField("left"), roots.get(rs));
        field::setRef(nodeA_.heap(), keepRoots.get(rp),
                      pairK->requireField("right"),
                      makePoint(nodeA_, static_cast<int>(t), -1));
        tops.push_back(keepRoots.get(rp));
    }

    nodeA_.skyway().shuffleStart();
    constexpr int baseTag = 500;
    ParallelSendConfig cfg;
    cfg.threads = N;
    // Each fan-out thread streams straight onto the fabric on its own
    // tag — concurrent senders exercising the real socket path.
    ParallelSender psend(
        nodeA_.skyway(),
        [this](unsigned w) {
            return [this, w](const std::uint8_t *d, std::size_t n) {
                net_.send(nodeA_.id(), nodeB_.id(),
                          baseTag + static_cast<int>(w),
                          std::vector<std::uint8_t>(d, d + n));
            };
        },
        cfg);
    ParallelSendReport rep = psend.send(tops);
    EXPECT_GT(rep.totalBytes, 0u);
    for (unsigned w = 0; w < N; ++w)
        net_.send(nodeA_.id(), nodeB_.id(),
                  baseTag + static_cast<int>(w), {});

    // Thread w streamed roots w, w+N, ... in order on its own tag.
    std::size_t received = 0;
    for (unsigned w = 0; w < N; ++w) {
        SkywaySocketInputStream in(nodeB_.skyway(), net_, nodeB_.id(),
                                   baseTag + static_cast<int>(w));
        while (!in.pump()) {
        }
        std::size_t slot = 0;
        while (in.hasNext()) {
            Address q = in.readObject();
            std::size_t idx = w + slot * N;
            ASSERT_LT(idx, tops.size());
            EXPECT_TRUE(graphsEqual(nodeA_.heap(), tops[idx],
                                    nodeB_.heap(), q));
            ++slot;
            ++received;
        }
        keep_.push_back(in.releaseBuffer());
    }
    EXPECT_EQ(received, tops.size());
}

TEST_F(TcpSkywayTest, TypeRegistryLookupOverSockets)
{
    // Loading a class the worker's view predates forces a LOOKUP
    // round trip over the real control socket.
    auto *worker =
        dynamic_cast<TypeRegistryWorker *>(&nodeA_.resolver());
    ASSERT_NE(worker, nullptr);
    RegistryStats before = worker->stats();

    Klass *k = nodeA_.klasses().load("test.Point3D");
    ASSERT_NE(k, nullptr);
    EXPECT_GE(k->tid(), 0);
    RegistryStats after = worker->stats();
    EXPECT_GT(after.remoteLookupsIssued, before.remoteLookupsIssued);

    // The driver handed out the id it recorded.
    EXPECT_EQ(driver_.resolver().idForClass("test.Point3D"), k->tid());

    // At most once per class per machine: a reload is a cache hit.
    nodeA_.klasses().load("test.Point3D");
    EXPECT_EQ(worker->stats().remoteLookupsIssued,
              after.remoteLookupsIssued);
}

} // namespace
} // namespace skyway
