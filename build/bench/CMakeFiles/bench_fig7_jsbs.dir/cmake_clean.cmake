file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_jsbs.dir/bench_fig7_jsbs.cc.o"
  "CMakeFiles/bench_fig7_jsbs.dir/bench_fig7_jsbs.cc.o.d"
  "bench_fig7_jsbs"
  "bench_fig7_jsbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_jsbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
