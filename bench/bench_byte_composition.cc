/**
 * @file
 * The extra-byte composition analysis of paper section 5.2: what the
 * bytes Skyway ships beyond the pure field data consist of. The paper
 * measured headers 51%, padding 34%, pointers 15% of the extra bytes
 * across its Spark applications; we reproduce the analysis from the
 * sender's byte-composition counters over the same workload mix.
 *
 * The second phase quantifies what the adaptive compact encoding
 * (docs/WIRE_FORMAT.md) claws back: the same mix is re-serialized
 * under every SKYWAY_WIRE_COMPACT mode and the actual on-the-wire
 * byte counts are reported per mode. The bench fails if Auto saves
 * less than 25% on this padding/pointer-heavy mix — the encoding's
 * reason to exist.
 */

#include "bench/benchutil.hh"
#include "skyway/jvm.hh"
#include "skyway/streams.hh"
#include "workloads/graphgen.hh"

using namespace skyway;

int
main(int argc, char **argv)
{
    double scale = bench::parseScale(argc, argv, 0.5);
    bench::JsonReport report(argc, argv, "bench_byte_composition",
                             scale);
    auto row = report.row("spark-mix");
    ClassCatalog cat = bench::fullCatalog();
    ClusterNetwork net(2);
    Jvm sender(cat, net, 0, 0);
    Jvm receiver(cat, net, 1, 0);

    // A workload mix shaped like the Spark shuffles: small records
    // (contribs/labels/pairs with strings) plus arrays.
    LocalRoots roots(sender.heap());
    std::vector<std::size_t> recs;
    {
        Rng rng(5);
        Klass *contribK = sender.klasses().load("spark.Contrib");
        Klass *pairK = sender.klasses().load("spark.WordPair");
        const int records = static_cast<int>(40000 * scale);
        for (int i = 0; i < records; ++i) {
            Address rec;
            if (i % 3 == 0) {
                std::size_t rs =
                    roots.push(sender.builder().makeString(
                        "word" +
                        std::to_string(rng.nextBounded(1000))));
                rec = sender.heap().allocateInstance(pairK);
                field::setRef(sender.heap(), rec,
                              pairK->requireField("word"),
                              roots.get(rs));
                field::set<std::int64_t>(sender.heap(), rec,
                                         pairK->requireField("count"),
                                         i);
            } else {
                rec = sender.heap().allocateInstance(contribK);
                field::set<std::int32_t>(sender.heap(), rec,
                                         contribK->requireField("dst"),
                                         i);
                field::set<double>(sender.heap(), rec,
                                   contribK->requireField("rank"),
                                   rng.nextDouble());
            }
            recs.push_back(roots.push(rec));
        }
    }

    // Serialize the mix once per wire-compaction mode; the sink sees
    // the post-encoding wire bytes, sendStats() the raw composition.
    auto serializeMix = [&](WireCompactMode mode,
                            SkywaySendStats *stats) {
        sender.skyway().setWireCompactMode(mode);
        SkywaySerializer ser(sender.skyway());
        ser.startPhase();
        VectorSink sink;
        for (std::size_t rr : recs)
            ser.writeObject(roots.get(rr), sink);
        ser.endStream(sink);
        if (stats)
            *stats = ser.sendStats();
        return sink.bytesWritten();
    };

    SkywaySendStats s;
    std::uint64_t rawWire = serializeMix(WireCompactMode::Off, &s);

    std::uint64_t extra = s.headerBytes + s.paddingBytes +
                          s.pointerBytes;
    bench::printHeader(
        "Extra-byte composition of Skyway transfers (section 5.2)");
    std::printf("objects copied:  %llu (incl. %llu top marks)\n",
                static_cast<unsigned long long>(s.objectsCopied),
                static_cast<unsigned long long>(s.topMarks));
    std::printf("total bytes:     %llu\n",
                static_cast<unsigned long long>(s.bytesCopied));
    std::printf("field data:      %llu (%.0f%% of total)\n",
                static_cast<unsigned long long>(s.dataBytes),
                100.0 * s.dataBytes / s.bytesCopied);
    std::printf("extra bytes:     %llu, composed of:\n",
                static_cast<unsigned long long>(extra));
    std::printf("  headers:  %5.1f%%   (paper: 51%%)\n",
                100.0 * s.headerBytes / extra);
    std::printf("  padding:  %5.1f%%   (paper: 34%%)\n",
                100.0 * s.paddingBytes / extra);
    std::printf("  pointers: %5.1f%%   (paper: 15%%)\n",
                100.0 * s.pointerBytes / extra);
    row.value("objects_copied",
              static_cast<double>(s.objectsCopied));
    row.value("total_bytes", static_cast<double>(s.bytesCopied));
    row.value("data_bytes", static_cast<double>(s.dataBytes));
    row.value("header_pct", 100.0 * s.headerBytes / extra);
    row.value("padding_pct", 100.0 * s.paddingBytes / extra);
    row.value("pointer_pct", 100.0 * s.pointerBytes / extra);

    // Phase 2: the compact-encoding diet on the same mix.
    bench::printHeader(
        "Wire bytes per SKYWAY_WIRE_COMPACT mode (docs/WIRE_FORMAT.md)");
    struct Mode
    {
        const char *name;
        WireCompactMode mode;
    };
    const Mode modes[] = {
        {"raw", WireCompactMode::Off},
        {"auto", WireCompactMode::Auto},
        {"force", WireCompactMode::Force},
    };
    double autoSavedPct = 0;
    for (const Mode &m : modes) {
        std::uint64_t wireBytes =
            m.mode == WireCompactMode::Off
                ? rawWire
                : serializeMix(m.mode, nullptr);
        double savedPct =
            100.0 * (1.0 - static_cast<double>(wireBytes) / rawWire);
        if (m.mode == WireCompactMode::Auto)
            autoSavedPct = savedPct;
        std::printf("%-6s %12llu B   saved %5.1f%%\n", m.name,
                    static_cast<unsigned long long>(wireBytes),
                    savedPct);
        auto wrow = report.row(std::string("wire/") + m.name);
        wrow.value("wire_bytes", static_cast<double>(wireBytes));
        wrow.value("saved_pct", savedPct);
    }
    if (autoSavedPct < 25.0)
        fatal("adaptive compact encoding saved only " +
              std::to_string(autoSavedPct) +
              "% on the padding/pointer-heavy mix (need >= 25%)");
    return 0;
}
