# Empty compiler generated dependencies file for bench_fig3_spark_breakdown.
# This may be replaced when dependencies are built.
