/**
 * @file
 * Network cost model. The serialization work in this repository is
 * executed for real and timed with a stopwatch; wire time, which a
 * single-machine reproduction cannot measure, is *charged* through this
 * model instead (DESIGN.md section 2). Defaults model the paper's
 * testbed: 1000 Mb/s Ethernet.
 */

#ifndef SKYWAY_NET_COSTMODEL_HH
#define SKYWAY_NET_COSTMODEL_HH

#include <cstdint>

namespace skyway
{

/** Wire-time model for one link technology. */
struct NetworkCostModel
{
    /** Payload bandwidth in bytes per second. 1000 Mb/s = 125 MB/s. */
    double bandwidthBytesPerSec = 125.0e6;

    /** Per-message latency in nanoseconds (switch + stack). */
    std::uint64_t latencyNs = 100'000; // 100 us

    /** Wire nanoseconds to move @p bytes in one message. */
    std::uint64_t
    transferNs(std::uint64_t bytes) const
    {
        return latencyNs +
               static_cast<std::uint64_t>(bytes * 1.0e9 /
                                          bandwidthBytesPerSec);
    }
};

/** Pre-canned link technologies used by the benches. */
inline NetworkCostModel
gigabitEthernet()
{
    return NetworkCostModel{125.0e6, 100'000};
}

inline NetworkCostModel
infiniBand40G()
{
    return NetworkCostModel{5.0e9, 5'000};
}

} // namespace skyway

#endif // SKYWAY_NET_COSTMODEL_HH
