/**
 * @file
 * The cluster fabric: a set of numbered nodes exchanging byte-payload
 * messages over reliable in-order channels. How the bytes move is a
 * pluggable Transport (net/transport.hh) — in-process mailboxes on
 * the model transport, real loopback TCP sockets on the tcp
 * transport. Either way the *accounting* lives here: wire cost is
 * charged to per-node simulated clocks through the NetworkCostModel,
 * and per-pair byte counters feed the "remote bytes" columns of the
 * evaluation figures — which is why `bytesSent`/`messagesSent` for
 * the same workload match byte-for-byte across transports.
 */

#ifndef SKYWAY_NET_CLUSTER_HH
#define SKYWAY_NET_CLUSTER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/costmodel.hh"
#include "net/transport.hh"
#include "support/logging.hh"

namespace skyway
{

/**
 * The cluster fabric. Thread-safe: Skyway's multi-threaded senders may
 * push concurrently, and accounting reads (wireNs/bytesSent/
 * messagesSent) are safe against concurrent senders — the counters
 * are atomics, not mutex-guarded snapshots.
 */
class ClusterNetwork
{
  public:
    using RequestHandler = Transport::RequestHandler;
    using ReserveFn = Transport::ReserveFn;

    explicit ClusterNetwork(int node_count,
                            NetworkCostModel model = gigabitEthernet(),
                            TransportKind transport =
                                TransportKind::Model,
                            const TransportOptions &options = {});
    ~ClusterNetwork();

    int nodeCount() const { return nodeCount_; }
    const NetworkCostModel &model() const { return model_; }

    /** Which transport implementation carries the bytes. */
    TransportKind transportKind() const { return kind_; }
    const char *transportName() const { return transport_->name(); }

    /** Enqueue a one-way message; charges wire time to the sender. */
    void send(NodeId src, NodeId dst, int tag,
              std::vector<std::uint8_t> payload);

    /**
     * Dequeue the next message addressed to @p dst (any source/tag);
     * returns false when nothing has arrived yet.
     */
    bool poll(NodeId dst, NetMessage &out);

    /**
     * Dequeue the next message for @p dst with tag @p tag, skipping
     * (and retaining) others. False when none pending.
     */
    bool pollTag(NodeId dst, int tag, NetMessage &out);

    /**
     * Like pollTag, but delivers the payload *into caller-posted
     * storage*: the transport asks @p reserve for a destination of
     * the payload's size and moves the bytes straight there — a
     * modeled NIC DMA on the model transport, a literal recv() into
     * the posted buffer on the tcp transport. The receiver-side
     * staging copy is gone either way.
     *
     * Returns the payload size, 0 for an empty (end-of-stream)
     * payload — @p reserve is not called — or -1 when no message with
     * the tag is pending.
     */
    std::ptrdiff_t pollTagInto(NodeId dst, int tag,
                               const ReserveFn &reserve);

    /** Register @p handler as @p node's synchronous request daemon. */
    void registerHandler(NodeId node, RequestHandler handler);

    /**
     * Synchronous request/reply (a blocking socket round trip).
     * Charges request wire time to @p src and reply wire time to
     * @p src as well — the requester blocks for the full RTT. On the
     * tcp transport @p opts bounds the wait: the request is resent
     * after @p opts.timeoutMs up to @p opts.maxRetries times.
     */
    std::vector<std::uint8_t> request(NodeId src, NodeId dst, int tag,
                                      const std::vector<std::uint8_t> &
                                          payload,
                                      const RequestOptions &opts = {});

    /// @name Accounting
    /// @{

    /** Simulated send-side wire nanoseconds charged to @p node. */
    std::uint64_t
    wireNs(NodeId node) const
    {
        return wireNs_[node].load(std::memory_order_relaxed);
    }

    /** Bytes @p src has pushed toward @p dst. */
    std::uint64_t
    bytesSent(NodeId src, NodeId dst) const
    {
        return bytes_[src * nodeCount_ + dst].load(
            std::memory_order_relaxed);
    }

    /** Total bytes sent by @p src to any remote node. */
    std::uint64_t totalBytesSent(NodeId src) const;

    /** Total message count from @p src. */
    std::uint64_t
    messagesSent(NodeId src) const
    {
        return msgs_[src].load(std::memory_order_relaxed);
    }

    /// @name Real-wire counters (all zero on the model transport)
    /// @{
    std::uint64_t
    framesSent() const
    {
        return wire_.framesSent.load(std::memory_order_relaxed);
    }
    std::uint64_t
    connectRetries() const
    {
        return wire_.connectRetries.load(std::memory_order_relaxed);
    }
    std::uint64_t
    recvIntoBytes() const
    {
        return wire_.recvIntoBytes.load(std::memory_order_relaxed);
    }
    std::uint64_t
    realWireNs() const
    {
        return wire_.realWireNs.load(std::memory_order_relaxed);
    }
    std::uint64_t
    creditStallsNs() const
    {
        return wire_.creditStallsNs.load(std::memory_order_relaxed);
    }
    std::uint64_t
    epollWakeups() const
    {
        return wire_.epollWakeups.load(std::memory_order_relaxed);
    }
    /** Data connections established into the pair pool (cumulative). */
    std::uint64_t
    pooledConnections() const
    {
        return wire_.connectionsPooled.load(std::memory_order_relaxed);
    }
    /// @}

    void resetAccounting();

    /// @}

  private:
    void charge(NodeId src, NodeId dst, std::size_t bytes);

    int nodeCount_;
    NetworkCostModel model_;
    TransportKind kind_;
    WireCounters wire_;
    std::unique_ptr<Transport> transport_;
    std::vector<std::atomic<std::uint64_t>> wireNs_;
    std::vector<std::atomic<std::uint64_t>> bytes_;
    std::vector<std::atomic<std::uint64_t>> msgs_;
};

} // namespace skyway

#endif // SKYWAY_NET_CLUSTER_HH
