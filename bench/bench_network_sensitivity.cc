/**
 * @file
 * Ablation: network-bandwidth sensitivity (the paper's section 1
 * argument made explicit). Skyway trades extra bytes on the wire for
 * eliminated S/D computation; whether that wins end-to-end depends on
 * the network. The paper measured +4% I/O cost against >20% S/D
 * savings on 1000 Mb/s Ethernet with ~1.5x byte inflation; with the
 * tiny records of our Spark workloads the inflation is larger, so the
 * crossover sits at a faster link. This bench sweeps the link model
 * from 1 GbE to InfiniBand-class and reports total job time per
 * serializer — the crossover is the point of the experiment.
 *
 * `--transport=model|tcp` selects the fabric implementation for the
 * sweep. The fabric byte/message counters are charged by
 * ClusterNetwork independent of the transport, so the
 * `fabric_bytes`/`fabric_msgs` row values are deterministic and
 * transport-invariant — the parity phase at the end re-runs the 1GbE
 * column on the *other* transport and fails the bench if any
 * per-node counter differs by a single byte or message.
 */

#include "bench/benchutil.hh"
#include "workloads/graphgen.hh"

using namespace skyway;

namespace
{

/** Per-node fabric accounting after one run. */
struct FabricCount
{
    std::vector<std::uint64_t> bytes;
    std::vector<std::uint64_t> msgs;

    std::uint64_t
    totalBytes() const
    {
        std::uint64_t t = 0;
        for (std::uint64_t b : bytes)
            t += b;
        return t;
    }

    std::uint64_t
    totalMsgs() const
    {
        std::uint64_t t = 0;
        for (std::uint64_t m : msgs)
            t += m;
        return t;
    }
};

FabricCount
countFabric(ClusterNetwork &net)
{
    FabricCount c;
    for (int s = 0; s < net.nodeCount(); ++s) {
        c.bytes.push_back(net.totalBytesSent(s));
        c.msgs.push_back(net.messagesSent(s));
    }
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = bench::parseScale(argc, argv, 0.15);
    TransportKind transport = bench::parseTransport(argc, argv);
    bench::JsonReport report(argc, argv,
                             "bench_network_sensitivity", scale);
    ClassCatalog cat = bench::fullCatalog();
    EdgeList g = generateGraph(liveJournalShaped(scale));

    struct Link
    {
        const char *name;
        NetworkCostModel model;
    };
    const Link links[] = {
        {"1GbE", {125.0e6, 100'000}},
        {"10GbE", {1.25e9, 20'000}},
        {"40Gb-IB", {5.0e9, 5'000}},
        {"100Gb", {12.5e9, 2'000}},
    };

    bench::printHeader(
        "Network sensitivity: PageRank/LJ total time (ms/worker)");
    std::printf("transport: %s\n", transportKindName(transport));
    std::printf("%-10s %10s %10s %10s %10s %12s\n", "link", "java",
                "kryo", "skyway", "skyway-c", "winner");

    // The 1GbE column's fabric counters, kept for the parity phase.
    std::vector<FabricCount> firstLink;
    // skyway vs skyway-c per link, for the crossover assertions.
    struct WirePair
    {
        double rawMs = 0, compactMs = 0;
        std::uint64_t rawBytes = 0, compactBytes = 0;
    };
    std::vector<WirePair> wire(std::size(links));

    std::size_t linkIdx = 0;
    for (const Link &link : links) {
        double totals[4];
        int i = 0;
        for (const std::string which :
             {"java", "kryo", "skyway", "skyway-c"}) {
            auto row =
                report.row(std::string(link.name) + "/" + which);
            bench::SparkSetup setup = bench::makeSparkSetup(which);
            SparkConfig cfg;
            cfg.network = link.model;
            cfg.transport = transport;
            auto cluster = bench::makeCluster(cat, setup, cfg);
            SparkAppResult res = runPageRank(*cluster, g, 5);
            totals[i] = res.average.totalNs() / 1e6;
            row.value("total_ms", totals[i]);

            FabricCount fc = countFabric(cluster->net());
            row.value("fabric_bytes",
                      static_cast<double>(fc.totalBytes()));
            row.value("fabric_msgs",
                      static_cast<double>(fc.totalMsgs()));
            if (which == "skyway") {
                wire[linkIdx].rawMs = totals[i];
                wire[linkIdx].rawBytes = fc.totalBytes();
            } else if (which == "skyway-c") {
                wire[linkIdx].compactMs = totals[i];
                wire[linkIdx].compactBytes = fc.totalBytes();
            }
            if (&link == &links[0])
                firstLink.push_back(std::move(fc));
            ++i;
        }
        const char *winner =
            totals[3] <= totals[0] && totals[3] <= totals[1] &&
                    totals[3] <= totals[2]
                ? "skyway-c"
                : (totals[2] <= totals[0] && totals[2] <= totals[1]
                       ? "skyway"
                       : (totals[1] <= totals[0] ? "kryo" : "java"));
        std::printf("%-10s %10.1f %10.1f %10.1f %10.1f %12s\n",
                    link.name, totals[0], totals[1], totals[2],
                    totals[3], winner);
        ++linkIdx;
    }

    // Crossover assertions (docs/WIRE_FORMAT.md): on the slowest link
    // the compact encoding must strictly cut fabric bytes and win (or
    // tie) end-to-end; on the fastest link the Auto policy must have
    // disabled itself — identical bytes, time within 10%. The byte
    // checks are deterministic and always enforced; the end-to-end
    // time checks include real S/D wall time, which at smoke scales
    // (a few ms per run) is swamped by scheduler jitter on a loaded
    // CI machine, so they only arm near the default scale.
    const bool checkTimes = scale >= 0.1;
    const WirePair &slow = wire.front();
    if (slow.compactBytes >= slow.rawBytes)
        fatal("wire compaction saved nothing at " +
              std::string(links[0].name) + ": raw " +
              std::to_string(slow.rawBytes) + " B vs compact " +
              std::to_string(slow.compactBytes) + " B");
    if (checkTimes && slow.compactMs > slow.rawMs * 1.01)
        fatal("wire compaction lost end-to-end at " +
              std::string(links[0].name) + ": raw " +
              std::to_string(slow.rawMs) + " ms vs compact " +
              std::to_string(slow.compactMs) + " ms");
    const WirePair &fast = wire.back();
    if (fast.compactBytes != fast.rawBytes)
        fatal("Auto compacted on the free-bandwidth link " +
              std::string(links[std::size(links) - 1].name) +
              ": raw " + std::to_string(fast.rawBytes) +
              " B vs compact " + std::to_string(fast.compactBytes) +
              " B");
    if (checkTimes && fast.compactMs > fast.rawMs * 1.10)
        fatal("compact pass-through cost >10% on the fastest link");
    std::printf("\ncrossover: compact saved %.1f%% fabric bytes at "
                "%s, 0%% (disabled) at %s\n",
                100.0 * (1.0 - static_cast<double>(slow.compactBytes) /
                                   slow.rawBytes),
                links[0].name, links[std::size(links) - 1].name);

    // Parity phase: the same workload on the other transport must
    // account identically, per node, byte for byte.
    TransportKind other = transport == TransportKind::Tcp
                              ? TransportKind::Model
                              : TransportKind::Tcp;
    bench::printHeader("Transport parity: 1GbE column re-run");
    std::printf("%-10s %16s %12s %8s\n", "serializer", "fabric_bytes",
                "fabric_msgs", "parity");
    int i = 0;
    for (const std::string which :
         {"java", "kryo", "skyway", "skyway-c"}) {
        auto row = report.row(std::string("parity/") + which);
        bench::SparkSetup setup = bench::makeSparkSetup(which);
        SparkConfig cfg;
        cfg.network = links[0].model;
        cfg.transport = other;
        auto cluster = bench::makeCluster(cat, setup, cfg);
        (void)runPageRank(*cluster, g, 5);
        FabricCount fc = countFabric(cluster->net());
        const FabricCount &want = firstLink[i];
        if (fc.bytes != want.bytes || fc.msgs != want.msgs) {
            fatal("transport parity violated for " + which + ": " +
                  transportKindName(transport) + " sent " +
                  std::to_string(want.totalBytes()) + " B / " +
                  std::to_string(want.totalMsgs()) + " msgs, " +
                  transportKindName(other) + " sent " +
                  std::to_string(fc.totalBytes()) + " B / " +
                  std::to_string(fc.totalMsgs()) + " msgs");
        }
        row.value("fabric_bytes", static_cast<double>(fc.totalBytes()));
        row.value("fabric_msgs", static_cast<double>(fc.totalMsgs()));
        std::printf("%-10s %16llu %12llu %8s\n", which.c_str(),
                    static_cast<unsigned long long>(fc.totalBytes()),
                    static_cast<unsigned long long>(fc.totalMsgs()),
                    "ok");
        ++i;
    }

    std::printf("\n(the S/D savings are network-independent; the "
                "byte premium shrinks with bandwidth — the paper's "
                "'bottlenecks are shifting from I/O to computing' "
                "bet)\n");
    return 0;
}
