file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_typerep.dir/bench_ablation_typerep.cc.o"
  "CMakeFiles/bench_ablation_typerep.dir/bench_ablation_typerep.cc.o.d"
  "bench_ablation_typerep"
  "bench_ablation_typerep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_typerep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
