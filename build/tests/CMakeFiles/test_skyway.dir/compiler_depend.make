# Empty compiler generated dependencies file for test_skyway.
# This may be replaced when dependencies are built.
