/**
 * @file
 * Parallel shuffle pipeline bench (ROADMAP "Multi-threaded sender
 * bench" + "Receiver-side zero-copy chunk handoff"). N sender worker
 * threads fan a shared-subgraph root set out to one destination, each
 * on its own stream (ParallelSender), and the receiver drains every
 * stream through the zero-copy reserve/commit path.
 *
 * The wire is paced: each flush blocks its worker for the cost
 * model's transfer time, exactly as a real socket with a bounded send
 * buffer would. Sender throughput therefore scales with threads by
 * *overlapping wire waits* — the pipeline effect the paper's
 * multi-threaded sender exists for — which also makes the scaling
 * curve meaningful on a single-core host, where pure copy CPU cannot
 * scale. The workload shares one Image array across every root, so
 * workers race CAS claims on it and the `cas_retries` /
 * `hash_fallbacks` columns show the cross-stream protocol at work.
 */

#include <chrono>
#include <thread>

#include "bench/benchutil.hh"
#include "skyway/parallel.hh"
#include "workloads/media.hh"

using namespace skyway;

int
main(int argc, char **argv)
{
    double scale = bench::parseScale(argc, argv, 1.0);
    bench::JsonReport report(argc, argv, "bench_parallel_shuffle",
                             scale);
    const std::size_t contents =
        std::max<std::size_t>(64, static_cast<std::size_t>(16384 * scale));

    ClassCatalog cat = bench::fullCatalog();
    ClusterNetwork net(3);
    Jvm driver(cat, net, 0, 0);
    Jvm sender(cat, net, 1, 0);
    Jvm receiver(cat, net, 2, 0);
    constexpr NodeId senderNode = 1, receiverNode = 2;
    constexpr int baseTag = 7000;

    // Shared-subgraph workload: every MediaContent points its
    // `images` field at ONE shared Image array, so all N workers
    // reach the same subtree and contend for its baddr claims.
    MediaSchema schema(sender.klasses());
    Rng rng(42);
    LocalRoots localRoots(sender.heap());
    std::vector<std::size_t> slots;
    slots.reserve(contents);
    for (std::size_t i = 0; i < contents; ++i)
        slots.push_back(makeMediaContent(sender, localRoots, rng));
    std::size_t sharedSlot = localRoots.push(field::getRef(
        sender.heap(), localRoots.get(slots[0]), *schema.cImages));
    for (std::size_t s : slots)
        field::setRef(sender.heap(), localRoots.get(s), *schema.cImages,
                      localRoots.get(sharedSlot));

    // Warmup transfer: settles registry traffic (class strings cross
    // the wire at most once) so the timed rows measure the pipeline,
    // not protocol startup.
    {
        sender.skyway().shuffleStart();
        SkywaySocketOutputStream out(sender.skyway(), net, senderNode,
                                     receiverNode, baseTag - 1);
        out.writeObject(localRoots.get(slots[0]));
        out.close();
        SkywaySocketInputStream in(receiver.skyway(), net, receiverNode,
                                   baseTag - 1);
        while (!in.pump()) {}
        in.releaseBuffer()->free();
        receiver.gc().fullGc();
    }

    bench::printHeader("Parallel shuffle: sender fan-out scaling + "
                       "zero-copy receive");
    std::printf("%-8s %10s %10s %9s %10s %12s %12s %14s\n", "threads",
                "wall_ms", "mb_per_s", "speedup", "cas_retry",
                "hash_fallbk", "zc_mb", "recv_objects");

    double base_mbps = 0.0;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        auto row = report.row("t" + std::to_string(threads));
        sender.skyway().shuffleStart();

        // One receiving stream per sender worker, keyed by tag.
        std::vector<std::unique_ptr<SkywaySocketInputStream>> ins;
        for (unsigned w = 0; w < threads; ++w)
            ins.push_back(std::make_unique<SkywaySocketInputStream>(
                receiver.skyway(), net, receiverNode,
                baseTag + static_cast<int>(w)));

        // Paced sink: send, then block for the modeled wire time —
        // socket backpressure. N workers overlap these waits.
        ParallelSendConfig cfg;
        cfg.threads = threads;
        ParallelSender psend(
            sender.skyway(),
            [&](unsigned w) {
                int tag = baseTag + static_cast<int>(w);
                return [&net, tag](const std::uint8_t *d,
                                   std::size_t n) {
                    net.send(senderNode, receiverNode, tag,
                             std::vector<std::uint8_t>(d, d + n));
                    std::this_thread::sleep_for(
                        std::chrono::nanoseconds(
                            net.model().transferNs(n)));
                };
            },
            cfg);

        std::vector<Address> roots;
        roots.reserve(slots.size());
        for (std::size_t s : slots)
            roots.push_back(localRoots.get(s));

        Stopwatch wall;
        ParallelSendReport rep = psend.send(roots);
        std::uint64_t wall_ns = wall.elapsedNs();

        // Drain (untimed): the receiver ingests each stream through
        // the zero-copy reserve/commit handoff.
        std::uint64_t zc_bytes = 0, exp_bytes = 0, recv_objects = 0;
        for (unsigned w = 0; w < threads; ++w) {
            net.send(senderNode, receiverNode,
                     baseTag + static_cast<int>(w), {});
            while (!ins[w]->pump()) {}
            const SkywayReceiveStats &rs = ins[w]->buffer().stats();
            zc_bytes += rs.zeroCopyBytes;
            exp_bytes += rs.expandedBytes;
            recv_objects += rs.objectsReceived;
            panicIf(!mediaContentWellFormed(receiver,
                                            ins[w]->readObject()),
                    "bench_parallel_shuffle: malformed received root");
        }
        if (sender.skyway().wireCompactMode() == WireCompactMode::Off) {
            // The zero-copy invariant: every wire payload byte landed
            // directly in chunk storage — nothing was staged and
            // re-copied.
            panicIf(zc_bytes != rep.totalBytes,
                    "bench_parallel_shuffle: zero_copy_bytes != "
                    "payload bytes");
        } else {
            // Compact segments are staged and re-expanded instead
            // (docs/WIRE_FORMAT.md): zero-copy accounting excludes
            // them, and the rebuilt record bytes land in
            // expanded_bytes (markers excluded, so strictly less
            // than the raw payload).
            panicIf(zc_bytes != 0,
                    "bench_parallel_shuffle: compact segments counted "
                    "as zero-copy");
            panicIf(exp_bytes == 0 || exp_bytes >= rep.totalBytes,
                    "bench_parallel_shuffle: expanded_bytes "
                    "accounting out of range");
        }

        double mbps = rep.totalBytes / (wall_ns / 1e9) / 1e6;
        if (threads == 1)
            base_mbps = mbps;
        double speedup = base_mbps > 0 ? mbps / base_mbps : 1.0;
        std::printf("%-8u %10.2f %10.2f %8.2fx %10llu %12llu %12.2f "
                    "%14llu\n",
                    threads, wall_ns / 1e6, mbps, speedup,
                    static_cast<unsigned long long>(
                        rep.total.casRetries),
                    static_cast<unsigned long long>(
                        rep.total.hashFallbacks),
                    zc_bytes / 1e6,
                    static_cast<unsigned long long>(recv_objects));
        row.value("threads", threads);
        row.value("wall_ms", wall_ns / 1e6);
        row.value("mb_per_s", mbps);
        row.value("speedup_vs_1t", speedup);
        row.value("objects_copied",
                  static_cast<double>(rep.total.objectsCopied));
        row.value("bytes_copied",
                  static_cast<double>(rep.total.bytesCopied));
        row.value("zero_copy_bytes", static_cast<double>(zc_bytes));
        row.value("wire_payload_bytes",
                  static_cast<double>(rep.totalBytes));
        row.value("recv_objects", static_cast<double>(recv_objects));

        for (auto &in : ins)
            in->releaseBuffer()->free();
        receiver.gc().fullGc();
    }

    std::printf("\n(throughput = wire payload bytes / fan-out wall "
                "time; flushes block for modeled wire time, so the "
                "scaling comes from overlapping wire waits — the "
                "shared Image array keeps the CAS/hash-fallback "
                "protocol busy)\n");
    return 0;
}
