# CMake generated Testfile for 
# Source directory: /root/repo/src/skyway
# Build directory: /root/repo/build/src/skyway
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
