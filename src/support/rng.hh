/**
 * @file
 * Deterministic pseudo-random number generation for workload generators.
 * All generators in the repository take explicit seeds so that every
 * experiment is exactly reproducible.
 */

#ifndef SKYWAY_SUPPORT_RNG_HH
#define SKYWAY_SUPPORT_RNG_HH

#include <cmath>
#include <cstdint>

namespace skyway
{

/** splitmix64: used to expand a single seed into generator state. */
inline std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** — a small, fast, high-quality PRNG. Deliberately not
 * std::mt19937 so the stream is stable across standard libraries.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed)
    {
        std::uint64_t sm = seed;
        for (auto &w : s_)
            w = splitmix64(sm);
    }

    std::uint64_t
    nextU64()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // for workload generation.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(nextU64()) * bound) >> 64);
    }

    std::uint32_t nextU32() { return static_cast<std::uint32_t>(nextU64()); }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return (nextU64() >> 11) * 0x1.0p-53;
    }

    /**
     * A draw from a discrete power-law distribution over [0, n):
     * P(k) proportional to (k + shift)^-alpha. The shift flattens the
     * head of the distribution — without it the single top item
     * absorbs a constant fraction of all draws, which no real-world
     * degree distribution does. Used to give synthetic graphs a
     * realistic skewed (but not degenerate) degree distribution.
     */
    std::uint64_t
    nextPowerLaw(std::uint64_t n, double alpha, double shift = 1.0)
    {
        // Inverse-transform sampling on the continuous approximation
        // over [shift, n + shift), then shifted back.
        double u = nextDouble();
        double exp = 1.0 - alpha;
        double lo = std::pow(shift, exp);
        double hi = std::pow(static_cast<double>(n) + shift, exp);
        double x = std::pow(u * (hi - lo) + lo, 1.0 / exp) - shift;
        if (x < 0)
            x = 0;
        auto k = static_cast<std::uint64_t>(x);
        return k >= n ? n - 1 : k;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

} // namespace skyway

#endif // SKYWAY_SUPPORT_RNG_HH
