/**
 * @file
 * Ablation: buffer/chunk size sweep (DESIGN.md ABL3). The paper makes
 * both the output-buffer size and the input-chunk size tunable:
 * small chunks stream earlier and fragment less but pay more
 * per-chunk overhead (flushes, allocations, translation entries).
 * This bench transfers a fixed object graph across the full sweep.
 */

#include "bench/benchutil.hh"
#include "skyway/jvm.hh"
#include "skyway/streams.hh"

using namespace skyway;

int
main(int argc, char **argv)
{
    double scale = bench::parseScale(argc, argv, 1.0);
    bench::JsonReport report(argc, argv, "bench_ablation_chunks",
                             scale);
    const int records = static_cast<int>(60000 * scale);
    ClassCatalog cat = bench::fullCatalog();
    ClusterNetwork net(2);
    Jvm sender(cat, net, 0, 0);
    Jvm receiver(cat, net, 1, 0);

    LocalRoots roots(sender.heap());
    Klass *k = sender.klasses().load("spark.Contrib");
    std::vector<std::size_t> slots;
    for (int i = 0; i < records; ++i) {
        Address rec = sender.heap().allocateInstance(k);
        field::set<std::int32_t>(sender.heap(), rec,
                                 k->requireField("dst"), i);
        field::set<double>(sender.heap(), rec,
                           k->requireField("rank"), i * 0.25);
        slots.push_back(roots.push(rec));
    }

    bench::printHeader(
        "Ablation 3: output-buffer / input-chunk size sweep");
    std::printf("%-12s %10s %10s %10s %10s\n", "chunk", "send_ms",
                "recv_ms", "chunks", "flushes~");

    for (std::size_t chunk : {4u << 10, 16u << 10, 64u << 10,
                              256u << 10, 1u << 20}) {
        auto row = report.row(std::to_string(chunk));
        sender.skyway().shuffleStart();
        SkywayObjectInputStream in(receiver.skyway(), chunk);
        std::uint64_t send_ns = 0, recv_ns = 0;
        std::uint64_t fed = 0;
        {
            SkywayObjectOutputStream out(
                sender.skyway(),
                [&](const std::uint8_t *d, std::size_t n) {
                    ScopedTimer t(recv_ns);
                    in.feed(d, n);
                    ++fed;
                },
                chunk);
            ScopedTimer t(send_ns);
            for (std::size_t s : slots)
                out.writeObject(roots.get(s));
            out.flush();
        }
        {
            ScopedTimer t(recv_ns);
            in.finish();
        }
        send_ns -= std::min(send_ns, recv_ns); // feed ran inside send
        std::printf("%-12zu %10.2f %10.2f %10zu %10llu\n", chunk,
                    send_ns / 1e6, recv_ns / 1e6,
                    in.buffer().chunkCount(),
                    static_cast<unsigned long long>(fed));
        row.value("send_ms", send_ns / 1e6);
        row.value("recv_ms", recv_ns / 1e6);
        row.value("chunks",
                  static_cast<double>(in.buffer().chunkCount()));
        row.value("flushes", static_cast<double>(fed));
        auto buf = in.releaseBuffer();
        buf->free();
        receiver.gc().fullGc();
    }
    std::printf("\n(per-chunk overheads shrink as chunks grow; very "
                "large chunks delay streaming and fragment the old "
                "generation)\n");
    return 0;
}
