# Empty compiler generated dependencies file for test_minispark.
# This may be replaced when dependencies are built.
