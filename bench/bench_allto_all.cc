/**
 * @file
 * Fabric scale proof: an N-node all-to-all shuffle (every node streams
 * K frames + end-of-stream to every other node) run over both
 * transports at hundred-node counts. The point is the multiplexed
 * data plane (docs/TRANSPORT.md): one pooled connection per node pair
 * means the 128-node sweep opens N·(N−1)/2 = 8128 sockets instead of
 * the old per-stream N² blow-up, and the bench *asserts* exactly that
 * (`net.pooled_connections`), plus the two other invariants the
 * multiplexing refactor must not lose:
 *
 *  - zero-copy receive: every payload byte lands via recv() into
 *    ReserveFn-posted storage, so `net.recv_into_bytes` equals the
 *    total payload byte count exactly (no staging copies under
 *    round-robin draining; a SKYWAY_NET_CREDIT_BYTES override small
 *    enough to trigger the stall rescue relaxes this to an upper
 *    bound);
 *  - transport-invariant accounting: per-node bytesSent /
 *    messagesSent / wireNs match the model-transport run byte for
 *    byte (ClusterNetwork charges before delegating).
 *
 * Knobs: `--nodes=64,128` (comma list; each count ≥ 2) picks the
 * sweep, `--scale=X` scales the frames-per-pair count. 256 nodes
 * works where `ulimit -n` allows ~66k descriptors — the bench checks
 * RLIMIT_NOFILE up front and says what to raise.
 *
 * JSON rows (schema v1) carry the deterministic counters
 * fabric_bytes / fabric_msgs / recv_into_bytes / pooled_connections —
 * the perf-diff allowlist for this bench — alongside observational
 * credit_stall_ms / epoll_wakeups / frames_sent.
 */

#include <sys/resource.h>

#include <cstdlib>
#include <thread>

#include "bench/benchutil.hh"
#include "net/cluster.hh"

using namespace skyway;

namespace
{

constexpr int kTagBase = 100;

/** `--nodes=64,128` / SKYWAY_BENCH_NODES: the node-count sweep. */
std::vector<int>
parseNodes(int argc, char **argv)
{
    std::string spec;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--nodes=", 8) == 0)
            spec = argv[i] + 8;
    }
    if (spec.empty()) {
        if (const char *env = std::getenv("SKYWAY_BENCH_NODES"))
            spec = env;
    }
    if (spec.empty())
        spec = "64,128";

    std::vector<int> nodes;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        int n = std::atoi(spec.substr(pos, comma - pos).c_str());
        if (n < 2)
            fatal("bench_allto_all: --nodes entries must be >= 2 "
                  "(got '" + spec + "')");
        nodes.push_back(n);
        pos = comma + 1;
    }
    return nodes;
}

/** Fail early with advice if the fd budget can't cover @p n nodes. */
void
checkFdBudget(int n)
{
    // Both ends of every pair socket live in this process, plus each
    // node's listener, epoll fd, and wake pipe.
    std::uint64_t need =
        std::uint64_t(n) * (n - 1) + 4u * std::uint64_t(n) + 64;
    struct rlimit rl;
    if (getrlimit(RLIMIT_NOFILE, &rl) != 0)
        return;
    if (need > rl.rlim_cur)
        fatal("bench_allto_all: " + std::to_string(n) +
              " nodes need ~" + std::to_string(need) +
              " descriptors but RLIMIT_NOFILE is " +
              std::to_string(rl.rlim_cur) + " — raise ulimit -n");
}

/** Everything one run of the shuffle leaves behind. */
struct RunResult
{
    std::vector<std::uint64_t> bytes;
    std::vector<std::uint64_t> msgs;
    std::vector<std::uint64_t> wireNs;
    std::uint64_t recvInto = 0;
    std::uint64_t pooled = 0;
    std::uint64_t framesSent = 0;
    std::uint64_t creditStallsNs = 0;
    std::uint64_t epollWakeups = 0;
    double wallMs = 0;

    std::uint64_t
    totalBytes() const
    {
        std::uint64_t t = 0;
        for (std::uint64_t b : bytes)
            t += b;
        return t;
    }

    std::uint64_t
    totalMsgs() const
    {
        std::uint64_t t = 0;
        for (std::uint64_t m : msgs)
            t += m;
        return t;
    }
};

/**
 * One all-to-all: every ordered (src, dst) pair sends @p frames
 * payloads of @p frame_bytes then EOS on the per-source tag; each
 * destination drains its n-1 streams round-robin with pollTagInto.
 */
RunResult
runAllToAll(TransportKind kind, int n, int frames,
            std::size_t frame_bytes)
{
    Stopwatch sw;
    ClusterNetwork net(n, gigabitEthernet(), kind);

    for (int s = 0; s < n; ++s) {
        for (int d = 0; d < n; ++d) {
            if (s == d)
                continue;
            for (int f = 0; f < frames; ++f) {
                std::vector<std::uint8_t> payload(frame_bytes);
                for (std::size_t i = 0; i < payload.size(); ++i)
                    payload[i] = static_cast<std::uint8_t>(
                        s * 31 + d * 7 + f + static_cast<int>(i));
                net.send(s, d, kTagBase + s, std::move(payload));
            }
            net.send(s, d, kTagBase + s, {}); // end of stream
        }
    }

    std::vector<std::uint8_t> sink;
    for (int d = 0; d < n; ++d) {
        std::vector<int> delivered(n, 0);
        std::vector<char> done(n, 0);
        done[d] = 1;
        int remaining = n - 1;
        while (remaining > 0) {
            bool progress = false;
            for (int s = 0; s < n; ++s) {
                if (done[s])
                    continue;
                std::ptrdiff_t got = net.pollTagInto(
                    d, kTagBase + s, [&](std::size_t len) {
                        sink.resize(len);
                        return sink.data();
                    });
                if (got < 0)
                    continue;
                progress = true;
                if (got == 0) {
                    panicIf(delivered[s] != frames,
                            "bench_allto_all: early end of stream");
                    done[s] = 1;
                    --remaining;
                    continue;
                }
                panicIf(static_cast<std::size_t>(got) != frame_bytes,
                        "bench_allto_all: short frame");
                std::uint8_t want = static_cast<std::uint8_t>(
                    s * 31 + d * 7 + delivered[s]);
                panicIf(sink[0] != want,
                        "bench_allto_all: frame out of order");
                ++delivered[s];
            }
            if (!progress)
                std::this_thread::yield(); // one-core host: let the
                                           // event loops run
        }
    }

    RunResult r;
    for (int s = 0; s < n; ++s) {
        r.bytes.push_back(net.totalBytesSent(s));
        r.msgs.push_back(net.messagesSent(s));
        r.wireNs.push_back(net.wireNs(s));
    }
    r.recvInto = net.recvIntoBytes();
    r.pooled = net.pooledConnections();
    r.framesSent = net.framesSent();
    r.creditStallsNs = net.creditStallsNs();
    r.epollWakeups = net.epollWakeups();
    r.wallMs = sw.elapsedNs() / 1e6;
    return r;
}

void
emitRow(bench::JsonReport::Row &row, const RunResult &r)
{
    row.value("fabric_bytes", static_cast<double>(r.totalBytes()));
    row.value("fabric_msgs", static_cast<double>(r.totalMsgs()));
    row.value("recv_into_bytes", static_cast<double>(r.recvInto));
    row.value("pooled_connections", static_cast<double>(r.pooled));
    row.value("frames_sent", static_cast<double>(r.framesSent));
    row.value("credit_stall_ms", r.creditStallsNs / 1e6);
    row.value("epoll_wakeups", static_cast<double>(r.epollWakeups));
}

void
printRow(const char *transport, int n, const RunResult &r)
{
    std::printf("%-9s %6d %8llu %14llu %10llu %14llu %10.1f\n",
                transport, n,
                static_cast<unsigned long long>(r.pooled),
                static_cast<unsigned long long>(r.totalBytes()),
                static_cast<unsigned long long>(r.totalMsgs()),
                static_cast<unsigned long long>(r.recvInto),
                r.wallMs);
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = bench::parseScale(argc, argv, 1.0);
    std::vector<int> nodes = parseNodes(argc, argv);
    bench::JsonReport report(argc, argv, "bench_allto_all", scale);

    const int frames =
        std::max(1, static_cast<int>(std::lround(2 * scale)));
    const std::size_t frameBytes = 2048;

    bench::printHeader("All-to-all shuffle over the multiplexed "
                       "fabric (model vs tcp)");
    std::printf("frames/pair: %d  frame bytes: %zu\n", frames,
                frameBytes);
    std::printf("%-9s %6s %8s %14s %10s %14s %10s\n", "transport",
                "nodes", "conns", "fabric_bytes", "msgs",
                "recv_into", "wall_ms");

    for (int n : nodes) {
        checkFdBudget(n);

        RunResult model, tcp;
        {
            auto row = report.row("model/" + std::to_string(n));
            model = runAllToAll(TransportKind::Model, n, frames,
                                frameBytes);
            emitRow(row, model);
        }
        printRow("model", n, model);
        {
            auto row = report.row("tcp/" + std::to_string(n));
            tcp = runAllToAll(TransportKind::Tcp, n, frames,
                              frameBytes);
            emitRow(row, tcp);
        }
        printRow("tcp", n, tcp);

        // The three invariants the multiplexing refactor must keep.
        std::uint64_t pairs =
            std::uint64_t(n) * (n - 1) / 2;
        if (tcp.pooled != pairs)
            fatal("bench_allto_all: expected " +
                  std::to_string(pairs) + " pooled connections at N=" +
                  std::to_string(n) + ", saw " +
                  std::to_string(tcp.pooled));

        // With the default credit window every stream's frames fit in
        // flight and all payload bytes must land zero-copy. A small
        // SKYWAY_NET_CREDIT_BYTES override makes the event loops'
        // stall rescue stage some frames (a legitimate copy, see
        // docs/TRANSPORT.md §5), so only the upper bound holds there.
        std::uint64_t payloadBytes = std::uint64_t(n) * (n - 1) *
                                     frames * frameBytes;
        bool windowShrunk = false;
        if (const char *env = std::getenv("SKYWAY_NET_CREDIT_BYTES"))
            windowShrunk = std::strtoull(env, nullptr, 10) <
                           std::uint64_t(frames) * frameBytes;
        if (tcp.recvInto > payloadBytes ||
            (!windowShrunk && tcp.recvInto != payloadBytes))
            fatal("bench_allto_all: zero-copy leak at N=" +
                  std::to_string(n) + ": recv_into_bytes " +
                  std::to_string(tcp.recvInto) + " != payload bytes " +
                  std::to_string(payloadBytes));

        if (tcp.bytes != model.bytes || tcp.msgs != model.msgs ||
            tcp.wireNs != model.wireNs)
            fatal("bench_allto_all: transport parity violated at N=" +
                  std::to_string(n) + ": model sent " +
                  std::to_string(model.totalBytes()) + " B / " +
                  std::to_string(model.totalMsgs()) + " msgs, tcp " +
                  std::to_string(tcp.totalBytes()) + " B / " +
                  std::to_string(tcp.totalMsgs()) + " msgs");

        std::printf("%6s N=%-4d parity ok, %llu conns = N(N-1)/2, "
                    "zero-copy %s\n", "", n,
                    static_cast<unsigned long long>(tcp.pooled),
                    windowShrunk ? "bounded (shrunk window)"
                                 : "exact");
    }

    std::printf("\n(one pooled connection per node pair: the 128-node "
                "sweep multiplexes %d streams over %d sockets)\n",
                128 * 127, 128 * 127 / 2);
    return 0;
}
