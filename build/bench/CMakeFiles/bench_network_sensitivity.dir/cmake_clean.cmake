file(REMOVE_RECURSE
  "CMakeFiles/bench_network_sensitivity.dir/bench_network_sensitivity.cc.o"
  "CMakeFiles/bench_network_sensitivity.dir/bench_network_sensitivity.cc.o.d"
  "bench_network_sensitivity"
  "bench_network_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
