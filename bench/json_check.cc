/**
 * @file
 * Validator for the machine-readable bench output
 * (docs/OBSERVABILITY.md): checks that a `--json=FILE` document
 * parses as JSON and carries the schema's required top-level keys.
 * The bench-smoke CTest targets run every bench at a small scale and
 * pass the result through this tool.
 *
 * Usage: json_check FILE...
 */

#include <cstdio>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace
{

bool
readFile(const char *path, std::string &out)
{
    std::FILE *f = std::fopen(path, "rb");
    if (!f)
        return false;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return true;
}

bool
checkFile(const char *path)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "json_check: cannot read %s\n", path);
        return false;
    }
    std::string err;
    if (!skyway::obs::jsonValidate(text, err)) {
        std::fprintf(stderr, "json_check: %s: invalid JSON: %s\n",
                     path, err.c_str());
        return false;
    }
    // The document is valid JSON; now require the schema's top-level
    // keys. The emitter only ever writes these as object keys, so a
    // quoted-substring check is exact here.
    for (const char *key : {"\"schema_version\"", "\"bench\"",
                            "\"scale\"", "\"rows\"", "\"registry\"",
                            "\"tracer\""}) {
        if (text.find(key) == std::string::npos) {
            std::fprintf(stderr,
                         "json_check: %s: missing required key %s\n",
                         path, key);
            return false;
        }
    }
    std::printf("json_check: %s ok (%zu bytes)\n", path, text.size());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: json_check FILE...\n");
        return 2;
    }
    bool ok = true;
    for (int i = 1; i < argc; ++i)
        ok = checkFile(argv[i]) && ok;
    return ok ? 0 : 1;
}
