/**
 * @file
 * Ablation: network-bandwidth sensitivity (the paper's section 1
 * argument made explicit). Skyway trades extra bytes on the wire for
 * eliminated S/D computation; whether that wins end-to-end depends on
 * the network. The paper measured +4% I/O cost against >20% S/D
 * savings on 1000 Mb/s Ethernet with ~1.5x byte inflation; with the
 * tiny records of our Spark workloads the inflation is larger, so the
 * crossover sits at a faster link. This bench sweeps the link model
 * from 1 GbE to InfiniBand-class and reports total job time per
 * serializer — the crossover is the point of the experiment.
 */

#include "bench/benchutil.hh"
#include "workloads/graphgen.hh"

using namespace skyway;

int
main(int argc, char **argv)
{
    double scale = bench::parseScale(argc, argv, 0.15);
    bench::JsonReport report(argc, argv,
                             "bench_network_sensitivity", scale);
    ClassCatalog cat = bench::fullCatalog();
    EdgeList g = generateGraph(liveJournalShaped(scale));

    struct Link
    {
        const char *name;
        NetworkCostModel model;
    };
    const Link links[] = {
        {"1GbE", {125.0e6, 100'000}},
        {"10GbE", {1.25e9, 20'000}},
        {"40Gb-IB", {5.0e9, 5'000}},
        {"100Gb", {12.5e9, 2'000}},
    };

    bench::printHeader(
        "Network sensitivity: PageRank/LJ total time (ms/worker)");
    std::printf("%-10s %10s %10s %10s %12s\n", "link", "java",
                "kryo", "skyway", "winner");

    for (const Link &link : links) {
        double totals[3];
        int i = 0;
        for (const std::string which : {"java", "kryo", "skyway"}) {
            auto row =
                report.row(std::string(link.name) + "/" + which);
            bench::SparkSetup setup = bench::makeSparkSetup(which);
            SparkConfig cfg;
            cfg.network = link.model;
            auto cluster = bench::makeCluster(cat, setup, cfg);
            SparkAppResult res = runPageRank(*cluster, g, 5);
            totals[i] = res.average.totalNs() / 1e6;
            row.value("total_ms", totals[i]);
            ++i;
        }
        const char *winner =
            totals[2] <= totals[0] && totals[2] <= totals[1]
                ? "skyway"
                : (totals[1] <= totals[0] ? "kryo" : "java");
        std::printf("%-10s %10.1f %10.1f %10.1f %12s\n", link.name,
                    totals[0], totals[1], totals[2], winner);
    }
    std::printf("\n(the S/D savings are network-independent; the "
                "byte premium shrinks with bandwidth — the paper's "
                "'bottlenecks are shifting from I/O to computing' "
                "bet)\n");
    return 0;
}
