file(REMOVE_RECURSE
  "CMakeFiles/skyway_minispark.dir/apps.cc.o"
  "CMakeFiles/skyway_minispark.dir/apps.cc.o.d"
  "CMakeFiles/skyway_minispark.dir/minispark.cc.o"
  "CMakeFiles/skyway_minispark.dir/minispark.cc.o.d"
  "libskyway_minispark.a"
  "libskyway_minispark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyway_minispark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
