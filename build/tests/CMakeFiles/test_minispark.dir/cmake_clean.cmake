file(REMOVE_RECURSE
  "CMakeFiles/test_minispark.dir/test_minispark.cc.o"
  "CMakeFiles/test_minispark.dir/test_minispark.cc.o.d"
  "test_minispark"
  "test_minispark.pdb"
  "test_minispark[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minispark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
