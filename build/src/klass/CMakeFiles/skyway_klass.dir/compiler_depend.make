# Empty compiler generated dependencies file for skyway_klass.
# This may be replaced when dependencies are built.
