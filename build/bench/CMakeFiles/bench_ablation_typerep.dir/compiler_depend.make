# Empty compiler generated dependencies file for bench_ablation_typerep.
# This may be replaced when dependencies are built.
