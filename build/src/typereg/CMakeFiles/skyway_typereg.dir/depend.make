# Empty dependencies file for skyway_typereg.
# This may be replaced when dependencies are built.
