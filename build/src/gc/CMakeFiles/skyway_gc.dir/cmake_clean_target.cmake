file(REMOVE_RECURSE
  "libskyway_gc.a"
)
