/**
 * @file
 * Skyway input buffers (paper section 4.3). One buffer per (sender,
 * stream); allocated in the *managed heap's old generation* so that
 * transferred objects are heap objects the moment they arrive. The
 * buffer is a linked list of fixed-size chunks — the total transfer
 * size is unknown while streaming, and large contiguous allocations
 * would fragment the old generation. An object never spans chunks;
 * oversized chunks are created for objects larger than the regular
 * chunk size.
 *
 * Ingest is zero-copy: the transport calls reserveChunk(len) to get a
 * pointer directly into old-gen chunk storage, writes the streamed
 * segment there (a socket receive, a modeled NIC DMA, a disk read),
 * and calls commitChunk(len). The commit parses the records *in
 * place*: marker words (top marks, backward references) are consumed
 * and overwritten with heap filler records — they occupy physical
 * chunk space but no logical (relative-address) space — and every
 * maximal marker-free stretch of records becomes one logical *run* in
 * the relative→absolute translation table. The legacy feed() entry
 * point remains as the compatibility path for byte-owning callers
 * (framed serializer streams, in-memory tests): it copies each
 * segment once into the reservation, packing records into chunks at
 * record granularity exactly as before.
 *
 * While streaming, chunks are pinned *opaque* (klass words still hold
 * type IDs, references are still relative), so the GC neither walks
 * nor frees them. finalize() runs the single linear absolutization
 * pass: klass IDs become klass pointers via the registry view,
 * relative references become absolute addresses via the run
 * translation, registered field updates are applied, the card table
 * is updated for the new pointers, and the chunks become pinned
 * *walkable* — live until the developer frees the buffer.
 */

#ifndef SKYWAY_SKYWAY_INPUTBUFFER_HH
#define SKYWAY_SKYWAY_INPUTBUFFER_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "skyway/context.hh"

namespace skyway
{

namespace sanitize
{
class WireValidator;
}

/** Default input-buffer chunk size (user-tunable per the paper). */
constexpr std::size_t defaultInputChunkBytes = 256 << 10;

/**
 * Receiver-side statistics. Legacy per-buffer accessor: the same
 * quantities are published process-wide as `skyway.receiver.*`
 * metrics (docs/OBSERVABILITY.md).
 */
struct SkywayReceiveStats
{
    std::uint64_t objectsReceived = 0;
    std::uint64_t bytesReceived = 0;
    std::uint64_t chunksAllocated = 0;
    std::uint64_t oversizedChunks = 0;
    std::uint64_t refsAbsolutized = 0;
    std::uint64_t fieldUpdatesApplied = 0;
    /**
     * Segment bytes the transport wrote directly into chunk storage
     * *and* parsed in place. Compact segments (docs/WIRE_FORMAT.md)
     * are excluded even on the reserveChunk path: their wire bytes
     * are staged out and re-expanded, so the zero-copy invariant
     * (wire bytes == chunk bytes) does not hold for them — see
     * expandedBytes for what they produced.
     */
    std::uint64_t zeroCopyBytes = 0;
    /** Full-format bytes produced by re-expanding compact segments. */
    std::uint64_t expandedBytes = 0;
    /** Wall time spent in the compact-segment expander. */
    std::uint64_t expandNs = 0;
};

class InputBuffer
{
  public:
    /**
     * @param ctx         the receiving JVM's Skyway state
     * @param chunk_bytes regular chunk size
     */
    explicit InputBuffer(SkywayContext &ctx,
                         std::size_t chunk_bytes =
                             defaultInputChunkBytes);

    /** Unpinning on destruction is equivalent to free(). */
    ~InputBuffer();

    InputBuffer(const InputBuffer &) = delete;
    InputBuffer &operator=(const InputBuffer &) = delete;

    /**
     * Zero-copy ingest, step 1: reserve @p len contiguous bytes of
     * old-gen chunk storage for an incoming segment (opening a new
     * chunk — oversized if needed — when the current one cannot hold
     * it). The transport writes the segment bytes directly into the
     * returned pointer and then calls commitChunk(). At most one
     * reservation may be outstanding.
     */
    std::uint8_t *reserveChunk(std::size_t len);

    /**
     * Zero-copy ingest, step 2: the transport wrote @p len bytes
     * (<= the reserved length) of whole records into the reservation;
     * validate and parse them in place. Counted in
     * `skyway.receiver.zero_copy_bytes`.
     */
    void commitChunk(std::size_t len);

    /**
     * Compatibility ingest for byte-owning callers: copies the
     * streamed segment once into chunk reservations, splitting at
     * record boundaries so records pack into regular-size chunks.
     * Segments contain whole records (the sender never splits a
     * record across flushes).
     */
    void feed(const std::uint8_t *data, std::size_t len);

    /**
     * The single linear absolutization pass; call once streaming has
     * finished. Computation on the buffer must block until this
     * completes.
     */
    void finalize();

    bool finalized() const { return finalized_; }

    /**
     * The top-level objects, in the order the sender wrote them
     * (recovered from top marks and backward references — no receiver
     * graph traversal).
     */
    const std::vector<Address> &roots() const;

    /** Developer API: release the buffer to the collector. */
    void free();

    std::size_t chunkCount() const { return chunks_.size(); }
    std::uint64_t totalBytes() const { return logical_; }
    const SkywayReceiveStats &stats() const { return stats_; }

  private:
    struct Chunk
    {
        Address base;
        std::size_t cap;
        std::size_t fill;
        std::size_t pin;
    };

    /**
     * One maximal stretch of records that is contiguous in both
     * logical (relative-address) and physical (chunk) space. Markers
     * and chunk boundaries end a run; the runs are the receiver's
     * relative→absolute translation table.
     */
    struct Run
    {
        std::uint64_t firstLogical;
        Address base;
        std::size_t bytes;
    };

    /** Resolve a klass from a wire type id (cached). */
    Klass *klassForTid(std::int32_t tid);

    /** Translate a relative address to its absolute heap address. */
    Address resolveRel(std::uint64_t rel) const;

    /** Size of the record whose bytes start at @p rec (local format). */
    std::size_t recordSize(const std::uint8_t *rec, Klass *k) const;

    void newChunk(std::size_t at_least);

    /**
     * Shared commit: validate (unless the caller already did), then
     * parse the @p len committed bytes of the open reservation in
     * place — markers become fillers and root specs, records extend
     * or open logical runs.
     */
    void commitReserved(std::size_t len, bool zero_copy,
                        bool already_validated);

    /**
     * Byte length of the longest prefix of whole items (markers or
     * records) of @p data that fits in @p limit bytes. Returns 0 when
     * the first item alone does not fit.
     */
    std::size_t scanBatch(const std::uint8_t *data, std::size_t len,
                          std::size_t limit);

    /**
     * Size of the single item (marker or record) at @p data; 0 when
     * the item is a compact-segment marker (the caller must hand the
     * stream to expandSegment instead of batching further).
     */
    std::size_t itemSize(const std::uint8_t *data, std::size_t len);

    /**
     * Re-expand the compact segment at @p data (marker + varint
     * length + items) into full heap-format records placed through
     * the regular chunk/run machinery; returns the consumed wire
     * bytes. The caller owns @p data — it must not alias chunk
     * storage (the commit path stages the bytes out first).
     */
    std::size_t expandSegment(const std::uint8_t *data,
                              std::size_t len);

    void absolutizeChunk(Chunk &c);

    /**
     * SkywaySan post-finalize structural audit
     * (ctx.debug().checkReceivedGraph): walk the rebuilt chunks and
     * panic unless every object parses, every reference lands on a
     * rebuilt object start (or a live local heap object installed by
     * a field update), every root resolves, and no machine-local mark
     * bits leaked through the transfer.
     */
    void auditRebuilt() const;

    /**
     * Push the delta of stats_ since the last publication into the
     * `skyway.receiver.*` counters. Runs at buffer boundaries —
     * finalize() and destruction — never per feed() or per record,
     * keeping the receive hot path free of atomics.
     */
    void publishMetrics();

    SkywayContext &ctx_;
    ManagedHeap &heap_;
    std::size_t chunkBytes_;
    ObjectFormat fmt_;

    std::vector<Chunk> chunks_;
    /** Logical runs in ascending firstLogical order. */
    std::vector<Run> runs_;
    std::uint64_t logical_ = 0;
    bool finalized_ = false;
    bool freed_ = false;

    /** The open reservation (between reserveChunk and commit). */
    std::uint8_t *reserved_ = nullptr;
    std::size_t reservedLen_ = 0;

    /**
     * Roots noted while streaming, resolved to addresses at
     * finalize(): a top mark names the logical offset of the record
     * that follows it; a backward reference carries an encoded slot
     * (0 = null).
     */
    struct RootSpec
    {
        bool isBackRef;
        std::uint64_t value;
    };
    std::vector<RootSpec> pendingRoots_;

    std::vector<Address> roots_;
    /** Staging for compact wire bytes whose expansion overwrites the
     *  chunk region they arrived in (reused across segments). */
    std::vector<std::uint8_t> scratch_;
    /** Dense tid -> klass cache (global ids are small and dense). */
    mutable std::vector<Klass *> tidCache_;
    SkywayReceiveStats stats_;
    /** Values of stats_ as of the last publishMetrics(). */
    SkywayReceiveStats published_;

    /** Debug-mode wire validator (ctx.debug().validateWire). */
    std::unique_ptr<sanitize::WireValidator> validator_;
};

} // namespace skyway

#endif // SKYWAY_SKYWAY_INPUTBUFFER_HH
