/**
 * @file
 * Wire framing for the TCP transport (the byte-level story, with
 * diagrams, is docs/TRANSPORT.md). Everything on a socket is
 * little-endian fixed-width fields (both ends are the same loopback
 * host; no varints on this path — headers must be parseable with a
 * fixed-size read).
 *
 * Connection handshake (sent once by the connecting side):
 *
 *     u32 magic 'SKYW' | u8 channel (0 = data, 1 = control)
 *     | i32 src node id | i32 reserved (0)
 *
 * The data plane is *multiplexed*: exactly one connection per node
 * pair carries every stream between the two nodes as tagged,
 * length-prefixed mux frames, in both directions. A stream is
 * identified by (sender, receiver, tag); on a pair connection the
 * endpoints are fixed, so the frame header only needs the writer's
 * node id (validation), the tag, and one argument word.
 *
 * Mux frame:     u8 kind | i32 origin | i32 tag | u32 arg
 *                kind 4 = stream data: origin is the writer (the
 *                stream's sender), arg is the payload length, and
 *                `arg` payload bytes follow (arg == 0 is the
 *                end-of-stream marker, no payload).
 *                kind 5 = credit grant: origin is the writer (the
 *                stream's *receiver*, granting), arg is the number of
 *                payload bytes returned to the stream's send window,
 *                no payload. See docs/TRANSPORT.md §4.
 * Control frame: u8 kind (2 = request, 3 = reply) | i32 src
 *                | i32 tag | u32 reqId | u32 len | payload.
 *                reqId lets a requester that timed out and resent
 *                discard the stale earlier reply.
 */

#ifndef SKYWAY_NET_FRAME_HH
#define SKYWAY_NET_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace skyway
{
namespace frame
{

constexpr std::uint32_t handshakeMagic = 0x534B5957; // "SKYW"

constexpr std::uint8_t channelData = 0;
constexpr std::uint8_t channelControl = 1;

constexpr std::uint8_t kindRequest = 2;
constexpr std::uint8_t kindReply = 3;
constexpr std::uint8_t kindStream = 4;
constexpr std::uint8_t kindCredit = 5;

constexpr std::size_t handshakeBytes = 4 + 1 + 4 + 4;
constexpr std::size_t muxHeaderBytes = 1 + 4 + 4 + 4;
constexpr std::size_t controlHeaderBytes = 1 + 4 + 4 + 4 + 4;

inline void
putU32(std::uint8_t *p, std::uint32_t v)
{
    std::memcpy(p, &v, 4);
}

inline std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

inline void
putI32(std::uint8_t *p, std::int32_t v)
{
    std::memcpy(p, &v, 4);
}

inline std::int32_t
getI32(const std::uint8_t *p)
{
    std::int32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

struct Handshake
{
    std::uint8_t channel;
    std::int32_t src;
};

inline void
encodeHandshake(std::uint8_t (&buf)[handshakeBytes], const Handshake &h)
{
    putU32(buf, handshakeMagic);
    buf[4] = h.channel;
    putI32(buf + 5, h.src);
    putI32(buf + 9, 0); // reserved
}

/** False when the magic does not match (not a Skyway peer). */
inline bool
decodeHandshake(const std::uint8_t (&buf)[handshakeBytes], Handshake &h)
{
    if (getU32(buf) != handshakeMagic)
        return false;
    h.channel = buf[4];
    h.src = getI32(buf + 5);
    return true;
}

/**
 * One multiplexed frame header on a pair connection. For kindStream,
 * @p origin is the stream's sender and @p arg the payload length
 * (0 = end of stream). For kindCredit, @p origin is the granting
 * receiver and @p arg the bytes returned to the stream's window.
 */
struct MuxHeader
{
    std::uint8_t kind;
    std::int32_t origin;
    std::int32_t tag;
    std::uint32_t arg;
};

inline void
encodeMuxHeader(std::uint8_t (&buf)[muxHeaderBytes], const MuxHeader &h)
{
    buf[0] = h.kind;
    putI32(buf + 1, h.origin);
    putI32(buf + 5, h.tag);
    putU32(buf + 9, h.arg);
}

inline MuxHeader
decodeMuxHeader(const std::uint8_t (&buf)[muxHeaderBytes])
{
    return MuxHeader{buf[0], getI32(buf + 1), getI32(buf + 5),
                     getU32(buf + 9)};
}

struct ControlHeader
{
    std::uint8_t kind;
    std::int32_t src;
    std::int32_t tag;
    std::uint32_t reqId;
    std::uint32_t len;
};

inline void
encodeControlHeader(std::uint8_t (&buf)[controlHeaderBytes],
                    const ControlHeader &h)
{
    buf[0] = h.kind;
    putI32(buf + 1, h.src);
    putI32(buf + 5, h.tag);
    putU32(buf + 9, h.reqId);
    putU32(buf + 13, h.len);
}

inline ControlHeader
decodeControlHeader(const std::uint8_t (&buf)[controlHeaderBytes])
{
    return ControlHeader{buf[0], getI32(buf + 1), getI32(buf + 5),
                         getU32(buf + 9), getU32(buf + 13)};
}

} // namespace frame
} // namespace skyway

#endif // SKYWAY_NET_FRAME_HH
