
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_network_sensitivity.cc" "bench/CMakeFiles/bench_network_sensitivity.dir/bench_network_sensitivity.cc.o" "gcc" "bench/CMakeFiles/bench_network_sensitivity.dir/bench_network_sensitivity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minispark/CMakeFiles/skyway_minispark.dir/DependInfo.cmake"
  "/root/repo/build/src/miniflink/CMakeFiles/skyway_miniflink.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/skyway_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/skyway/CMakeFiles/skyway_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sd/CMakeFiles/skyway_sd.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/skyway_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/skyway_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/typereg/CMakeFiles/skyway_typereg.dir/DependInfo.cmake"
  "/root/repo/build/src/klass/CMakeFiles/skyway_klass.dir/DependInfo.cmake"
  "/root/repo/build/src/iomodel/CMakeFiles/skyway_iomodel.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/skyway_net.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/skyway_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
