# Empty dependencies file for bench_network_sensitivity.
# This may be replaced when dependencies are built.
