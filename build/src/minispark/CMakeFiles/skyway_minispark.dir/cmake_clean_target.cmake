file(REMOVE_RECURSE
  "libskyway_minispark.a"
)
