/**
 * @file
 * minispark: a driver/worker dataflow substrate reproducing the part
 * of Spark the paper's evaluation exercises — the shuffle path.
 * Records are managed-heap objects; a shuffle serializes each
 * worker's outgoing records per destination (through any pluggable
 * Serializer, including Skyway), writes the sorted-run files to the
 * worker's local disk (modeled write I/O), moves remote partitions
 * over the cluster fabric (modeled network, folded into read I/O as
 * in the paper's Figure 3), and deserializes on the receiving worker
 * (measured). Computation between shuffles is measured around the
 * workload code.
 *
 * Workers execute sequentially in-process; per-worker simulated
 * clocks keep the accounting equivalent to the paper's
 * one-executor-per-node setup.
 */

#ifndef SKYWAY_MINISPARK_MINISPARK_HH
#define SKYWAY_MINISPARK_MINISPARK_HH

#include <memory>
#include <string>
#include <vector>

#include "iomodel/breakdown.hh"
#include "sd/serializer.hh"
#include "skyway/jvm.hh"
#include "support/stopwatch.hh"

namespace skyway
{

struct SparkConfig
{
    int numWorkers = 3;
    HeapConfig workerHeap{};
    NetworkCostModel network = gigabitEthernet();
    DiskCostModel disk{};
    /** Which transport carries fabric traffic (remote shuffle
     *  partitions, closure broadcasts, collected results). */
    TransportKind transport = TransportKind::Model;
};

/** Fabric tags for minispark traffic (registry tags are 101-103). */
namespace sparkmsg
{
constexpr int shuffle = 201;
constexpr int closure = 202;
constexpr int collect = 203;
} // namespace sparkmsg

/**
 * A Spark-like cluster: node 0 is the driver, nodes 1..N are workers.
 */
class SparkCluster
{
  public:
    SparkCluster(const ClassCatalog &catalog,
                 SerializerFactory &serializer_factory,
                 SparkConfig config = SparkConfig{});

    int numWorkers() const { return config_.numWorkers; }
    Jvm &driver() { return *nodes_[0]; }
    Jvm &worker(int w) { return *nodes_[w + 1]; }
    ClusterNetwork &net() { return *net_; }

    /**
     * Worker @p w's serializer, created lazily on first use — so
     * factories that need the fully constructed cluster (the Skyway
     * factory resolves each worker's SkywayContext) can be bound
     * between cluster construction and the first shuffle.
     */
    Serializer &serializer(int w);

    /** The driver's data serializer (for collect() results). */
    Serializer &driverSerializer();

    /** The running cost breakdown of worker @p w. */
    PhaseBreakdown &breakdown(int w) { return breakdowns_[w]; }

    /** Average per-worker breakdown (the figures' unit). */
    PhaseBreakdown averageBreakdown() const;

    /** Sum of all workers' breakdowns. */
    PhaseBreakdown totalBreakdown() const;

    /** Charge measured compute time to worker @p w. */
    void
    chargeCompute(int w, std::uint64_t ns)
    {
        breakdowns_[w].computeNs += ns;
    }

    void resetBreakdowns();

    /** Which worker owns hash/key @p key. */
    int
    ownerOf(std::uint64_t key) const
    {
        return static_cast<int>(key % config_.numWorkers);
    }

  private:
    SparkConfig config_;
    SerializerFactory &factory_;
    std::unique_ptr<ClusterNetwork> net_;
    std::vector<std::unique_ptr<Jvm>> nodes_;
    std::vector<std::unique_ptr<Serializer>> serializers_;
    std::unique_ptr<Serializer> driverSerializer_;
    std::vector<PhaseBreakdown> breakdowns_;
};

/**
 * The Skyway serializer factory for minispark clusters: resolves each
 * worker's SkywayContext by heap identity. Call bind() right after
 * constructing the cluster (serializers are created lazily at the
 * first shuffle, which is always after bind()).
 */
class ClusterSkywayFactory : public SerializerFactory
{
  public:
    std::string name() const override { return "skyway"; }

    std::unique_ptr<Serializer> create(SdEnv env) override;

    void bind(SparkCluster &cluster);

  private:
    std::vector<std::pair<ManagedHeap *, SkywayContext *>> contexts_;
};

/**
 * One shuffle: workers add outgoing records (heap objects on the
 * source worker), writePhase() serializes and spills them, then each
 * destination fetches and deserializes its inbound partition.
 */
class ShuffleRound
{
  public:
    ShuffleRound(SparkCluster &cluster, std::string name);

    /** Queue @p record (on worker @p src's heap) for @p dst. */
    void add(int src, int dst, Address record);

    /** Serialize + spill every source worker's buckets. */
    void writePhase();

    /**
     * Fetch and deserialize worker @p dst's inbound records. The
     * returned batch keeps them alive (rooted, unless the serializer
     * delivers into pinned buffers) until the caller drops it.
     */
    std::unique_ptr<RecordBatch> read(int dst);

    std::uint64_t recordsAdded() const { return recordsAdded_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }

  private:
    std::string fileName(int src, int dst) const;

    SparkCluster &cluster_;
    std::string name_;
    /** Outgoing records, bucketed by [src][dst], rooted per source. */
    std::vector<std::unique_ptr<LocalRoots>> srcRoots_;
    std::vector<std::vector<std::vector<std::size_t>>> buckets_;
    std::vector<std::vector<std::uint64_t>> counts_;
    bool written_ = false;
    std::uint64_t recordsAdded_ = 0;
    std::uint64_t bytesWritten_ = 0;
};

/**
 * Closure serialization (paper section 2.1): the driver ships the task
 * closure — an object graph capturing everything the lambda captures —
 * to every worker before the stage runs. As in the paper's Spark setup
 * (and ours), closures always travel through the *Java serializer*
 * regardless of the data serializer: closure traffic is orders of
 * magnitude smaller than data traffic.
 */
class ClosureBroadcast
{
  public:
    /** Serialize the closure graph at @p root (on the driver heap)
     *  and deliver a copy to every worker. */
    ClosureBroadcast(SparkCluster &cluster, Address root);

    /** The deserialized closure on worker @p w (rooted for the
     *  broadcast's lifetime). */
    Address onWorker(int w) const;

    std::uint64_t bytesPerWorker() const { return bytes_; }

  private:
    std::vector<std::unique_ptr<LocalRoots>> workerRoots_;
    std::uint64_t bytes_ = 0;
};

/**
 * The collect() action (paper section 2.1: "collect is invoked to
 * bring all Date objects to the driver"): every worker serializes its
 * result records with the configured *data* serializer and the driver
 * deserializes them into its own heap.
 */
class CollectAction
{
  public:
    explicit CollectAction(SparkCluster &cluster);

    /** Queue @p record (on worker @p src's heap) for the driver. */
    void add(int src, Address record);

    /** Run the transfers; returns the records on the driver heap. */
    std::unique_ptr<RecordBatch> collect();

    std::uint64_t bytesCollected() const { return bytes_; }

  private:
    SparkCluster &cluster_;
    std::vector<std::unique_ptr<LocalRoots>> srcRoots_;
    bool done_ = false;
    std::uint64_t bytes_ = 0;
};

} // namespace skyway

#endif // SKYWAY_MINISPARK_MINISPARK_HH
