/**
 * @file
 * The memory-overhead experiment of paper section 5.2: the extra
 * `baddr` header word costs 2.1%-21.8% (avg 15.4%) of peak heap
 * across the Spark programs. We run each workload on heaps with the
 * Skyway object layout and with the vanilla (no-baddr) layout and
 * compare peak usage. The vanilla configuration can only use
 * byte-stream serializers, so Kryo is the serializer in both runs —
 * the layouts, not the serializers, are under test.
 */

#include "bench/benchutil.hh"
#include "obs/metrics.hh"
#include "support/logging.hh"
#include "workloads/graphgen.hh"

using namespace skyway;

namespace
{

std::uint64_t
peakFor(const ClassCatalog &cat, bool baddr, const std::string &app,
        const EdgeList &g, const std::vector<std::string> &text)
{
    // Peak occupancy is read from the registry's
    // `skyway.heap.peak_bytes` gauge as a delta over the run: the
    // cluster's heaps are created inside this scope, so the delta is
    // exactly their peak contribution (driver included — identical in
    // both layouts, so the comparison is unaffected).
    obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
    bench::SparkSetup setup = bench::makeSparkSetup("kryo");
    SparkConfig cfg;
    cfg.workerHeap.format.hasBaddr = baddr;
    auto cluster = bench::makeCluster(cat, setup, cfg);
    if (app == "WC")
        runWordCount(*cluster, text);
    else if (app == "CC")
        runConnectedComponents(*cluster, g);
    else if (app == "PR")
        runPageRank(*cluster, g, 5);
    else
        runTriangleCount(*cluster, g);
    for (int w = 0; w < cluster->numWorkers(); ++w)
        cluster->worker(w).heap().notePeak();
    obs::MetricsSnapshot delta =
        obs::MetricsRegistry::global().snapshot().deltaSince(before);
    for (const auto &[name, value] : delta.scalars)
        if (name == "skyway.heap.peak_bytes")
            return static_cast<std::uint64_t>(value);
    panic("bench_memory_overhead: skyway.heap.peak_bytes not "
          "published");
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = bench::parseScale(argc, argv, 0.1);
    bench::JsonReport report(argc, argv, "bench_memory_overhead",
                             scale);
    ClassCatalog cat = bench::fullCatalog();
    EdgeList g = generateGraph(liveJournalShaped(scale));
    std::vector<std::string> text;
    for (auto [u, v] : g.edges)
        text.push_back("v" + std::to_string(u) + " v" +
                       std::to_string(v));

    bench::printHeader(
        "Memory overhead of the baddr header word (section 5.2)");
    std::printf("%-6s %14s %14s %10s\n", "app", "skyway_peak_MB",
                "vanilla_MB", "overhead");

    double sum = 0;
    int n = 0;
    for (const std::string app : {"WC", "CC", "PR", "TC"}) {
        auto row = report.row(app);
        std::uint64_t with = peakFor(cat, true, app, g, text);
        std::uint64_t without = peakFor(cat, false, app, g, text);
        double ovh = 100.0 * (static_cast<double>(with) - without) /
                     without;
        std::printf("%-6s %14.2f %14.2f %9.1f%%\n", app.c_str(),
                    with / 1e6, without / 1e6, ovh);
        row.value("skyway_peak_bytes", static_cast<double>(with));
        row.value("vanilla_peak_bytes",
                  static_cast<double>(without));
        row.value("overhead_pct", ovh);
        sum += ovh;
        ++n;
    }
    std::printf("\naverage overhead: %.1f%% (paper: 2.1%%-21.8%%, "
                "average 15.4%%)\n",
                sum / n);
    return 0;
}
