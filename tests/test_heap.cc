/**
 * @file
 * Unit tests for the managed heap: allocation, headers, identity
 * hashes, arrays, object builders, card marking, roots, graph
 * equality, and old-generation raw allocation.
 */

#include <gtest/gtest.h>

#include "heap/heap.hh"
#include "heap/objectops.hh"

namespace skyway
{
namespace
{

class HeapTest : public ::testing::Test
{
  protected:
    HeapTest()
    {
        defineBootstrapClasses(cat_);
        cat_.define(ClassDef{
            "Pair",
            "",
            {
                {"first", FieldType::Ref, "java.lang.Integer"},
                {"second", FieldType::Ref, "java.lang.Integer"},
            },
        });
        cat_.define(ClassDef{
            "Scalar",
            "",
            {
                {"v", FieldType::Double, ""},
            },
        });
        klasses_ = std::make_unique<KlassTable>(cat_);
        heap_ = std::make_unique<ManagedHeap>();
        builder_ =
            std::make_unique<ObjectBuilder>(*heap_, *klasses_);
    }

    ClassCatalog cat_;
    std::unique_ptr<KlassTable> klasses_;
    std::unique_ptr<ManagedHeap> heap_;
    std::unique_ptr<ObjectBuilder> builder_;
};

TEST_F(HeapTest, AllocateInstanceInitializesHeader)
{
    Klass *k = klasses_->load("Scalar");
    Address a = heap_->allocateInstance(k);
    ASSERT_NE(a, nullAddr);
    EXPECT_TRUE(heap_->inYoung(a));
    EXPECT_EQ(heap_->klassOf(a), k);
    EXPECT_EQ(heap_->markOf(a), mark::initial);
    EXPECT_EQ(heap_->loadWord(a, offsetBaddr), 0u);
    EXPECT_EQ(heap_->load<double>(a, k->requireField("v").offset), 0.0);
}

TEST_F(HeapTest, AllocationIsWordAligned)
{
    Klass *k = klasses_->load("Scalar");
    for (int i = 0; i < 10; ++i) {
        Address a = heap_->allocateInstance(k);
        EXPECT_EQ(a % wordSize, 0u);
    }
}

TEST_F(HeapTest, FieldStoreLoad)
{
    Klass *k = klasses_->load("Scalar");
    Address a = heap_->allocateInstance(k);
    field::set<double>(*heap_, a, k->requireField("v"), 6.75);
    EXPECT_EQ(field::get<double>(*heap_, a, k->requireField("v")), 6.75);
    EXPECT_EQ((reflect::getField<double>(*heap_, a, "v")), 6.75);
}

TEST_F(HeapTest, ArrayAllocationAndAccess)
{
    Address arr = builder_->makeIntArray({10, 20, 30});
    EXPECT_EQ(heap_->arrayLength(arr), 3);
    EXPECT_EQ((array::get<std::int32_t>(*heap_, arr, 0)), 10);
    EXPECT_EQ((array::get<std::int32_t>(*heap_, arr, 2)), 30);
    array::set<std::int32_t>(*heap_, arr, 1, -7);
    EXPECT_EQ((array::get<std::int32_t>(*heap_, arr, 1)), -7);
    EXPECT_EQ(heap_->objectSize(arr),
              heap_->klassOf(arr)->arrayBytes(3));
}

TEST_F(HeapTest, IdentityHashIsLazyStableAndCached)
{
    Klass *k = klasses_->load("Scalar");
    Address a = heap_->allocateInstance(k);
    EXPECT_FALSE(mark::hasHash(heap_->markOf(a)));
    std::int32_t h1 = heap_->identityHash(a);
    EXPECT_TRUE(mark::hasHash(heap_->markOf(a)));
    EXPECT_EQ(heap_->identityHash(a), h1);
    EXPECT_GE(h1, 0);

    Address b = heap_->allocateInstance(k);
    EXPECT_NE(heap_->identityHash(b), h1);
}

TEST_F(HeapTest, MarkWordReservedBitsStayZero)
{
    Klass *k = klasses_->load("Scalar");
    Address a = heap_->allocateInstance(k);
    heap_->identityHash(a);
    Word m = mark::withAge(mark::setGcMarked(heap_->markOf(a)), 7);
    EXPECT_EQ(m & mark::reservedMask, 0u);
}

TEST_F(HeapTest, MarkResetForTransferKeepsHashOnly)
{
    Klass *k = klasses_->load("Scalar");
    Address a = heap_->allocateInstance(k);
    std::int32_t h = heap_->identityHash(a);
    Word m = mark::withAge(mark::setGcMarked(heap_->markOf(a)), 3);
    m |= mark::lockMask;
    Word r = mark::resetForTransfer(m);
    EXPECT_TRUE(mark::hasHash(r));
    EXPECT_EQ(mark::hashOf(r), h);
    EXPECT_EQ(mark::ageOf(r), 0);
    EXPECT_FALSE(mark::isGcMarked(r));
    EXPECT_EQ(r & mark::lockMask, 0u);
}

TEST_F(HeapTest, StringBuilderRoundTrip)
{
    Address s = builder_->makeString("managed heap");
    EXPECT_EQ(builder_->stringValue(s), "managed heap");
    std::int32_t h = builder_->stringHash(s);
    EXPECT_EQ(builder_->stringHash(s), h);
    // Java's "abc".hashCode() == 96354 — validate the algorithm.
    Address abc = builder_->makeString("abc");
    EXPECT_EQ(builder_->stringHash(abc), 96354);
}

TEST_F(HeapTest, RefArrayAndPairGraph)
{
    Klass *pairK = klasses_->load("Pair");
    Address i1 = builder_->makeInteger(1);
    std::size_t r1 = heap_->addRoot(i1);
    Address i2 = builder_->makeInteger(2);
    std::size_t r2 = heap_->addRoot(i2);
    Address pair = heap_->allocateInstance(pairK);
    field::setRef(*heap_, pair, pairK->requireField("first"),
                  heap_->root(r1));
    field::setRef(*heap_, pair, pairK->requireField("second"),
                  heap_->root(r2));
    heap_->removeRoot(r1);
    heap_->removeRoot(r2);

    GraphMeasure m = measureGraph(*heap_, pair);
    EXPECT_EQ(m.objects, 3u);
    EXPECT_GT(m.bytes, 0u);
}

TEST_F(HeapTest, ForEachRefSlotOnInstanceAndArray)
{
    Klass *pairK = klasses_->load("Pair");
    Address pair = heap_->allocateInstance(pairK);
    int n = 0;
    forEachRefSlot(*heap_, pair, [&](std::size_t) { ++n; });
    EXPECT_EQ(n, 2);

    Address arr = builder_->makeRefArray("java.lang.Integer", 5);
    n = 0;
    forEachRefSlot(*heap_, arr, [&](std::size_t) { ++n; });
    EXPECT_EQ(n, 5);

    Address ints = builder_->makeIntArray({1, 2, 3});
    n = 0;
    forEachRefSlot(*heap_, ints, [&](std::size_t) { ++n; });
    EXPECT_EQ(n, 0);
}

TEST_F(HeapTest, CardMarkingOnOldRefStore)
{
    // An object promoted (allocated) in old gen dirties its card when
    // a reference is stored into it.
    Address zone =
        heap_->allocateOldRaw(klasses_->load("Pair")->instanceBytes());
    // Build a fake old-gen object by hand.
    Klass *pairK = klasses_->load("Pair");
    heap_->storeWord(zone, offsetMark, mark::initial);
    heap_->storeWord(zone, offsetKlass, reinterpret_cast<Word>(pairK));
    heap_->storeWord(zone, offsetBaddr, 0);

    std::size_t card = (zone - heap_->oldBase()) /
                       heap_->config().cardBytes;
    EXPECT_FALSE(heap_->cardIsDirty(card));
    Address young = builder_->makeInteger(5);
    heap_->storeRef(zone, pairK->requireField("first").offset, young);
    EXPECT_TRUE(heap_->cardIsDirty(card));
}

TEST_F(HeapTest, DirtyCardRangeCoversAllCards)
{
    Address zone = heap_->allocateOldRaw(4096);
    heap_->dirtyCardRange(zone, 4096);
    std::size_t first = (zone - heap_->oldBase()) /
                        heap_->config().cardBytes;
    std::size_t last = (zone + 4095 - heap_->oldBase()) /
                       heap_->config().cardBytes;
    for (std::size_t i = first; i <= last; ++i)
        EXPECT_TRUE(heap_->cardIsDirty(i));
}

TEST_F(HeapTest, RootSlotsRecycle)
{
    Address a = builder_->makeInteger(1);
    std::size_t s1 = heap_->addRoot(a);
    heap_->removeRoot(s1);
    std::size_t s2 = heap_->addRoot(a);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(heap_->root(s2), a);
    heap_->removeRoot(s2);
}

TEST_F(HeapTest, GraphsEqualDetectsDifferences)
{
    Address a1 = builder_->makeString("same");
    Address a2 = builder_->makeString("same");
    Address b = builder_->makeString("diff");
    EXPECT_TRUE(graphsEqual(*heap_, a1, *heap_, a2));
    EXPECT_FALSE(graphsEqual(*heap_, a1, *heap_, b));
    EXPECT_TRUE(graphsEqual(*heap_, nullAddr, *heap_, nullAddr));
    EXPECT_FALSE(graphsEqual(*heap_, a1, *heap_, nullAddr));
}

TEST_F(HeapTest, GraphsEqualRespectsSharing)
{
    // Pair(x, x) with a shared referent is not isomorphic to
    // Pair(x, y) with two equal-valued but distinct referents.
    Klass *pairK = klasses_->load("Pair");
    Address shared = builder_->makeInteger(9);
    std::size_t rs = heap_->addRoot(shared);
    Address p1 = heap_->allocateInstance(pairK);
    field::setRef(*heap_, p1, pairK->requireField("first"),
                  heap_->root(rs));
    field::setRef(*heap_, p1, pairK->requireField("second"),
                  heap_->root(rs));
    std::size_t rp1 = heap_->addRoot(p1);

    Address x = builder_->makeInteger(9);
    std::size_t rx = heap_->addRoot(x);
    Address y = builder_->makeInteger(9);
    std::size_t ry = heap_->addRoot(y);
    Address p2 = heap_->allocateInstance(pairK);
    field::setRef(*heap_, p2, pairK->requireField("first"),
                  heap_->root(rx));
    field::setRef(*heap_, p2, pairK->requireField("second"),
                  heap_->root(ry));

    EXPECT_FALSE(graphsEqual(*heap_, heap_->root(rp1), *heap_, p2));
    EXPECT_TRUE(graphsEqual(*heap_, heap_->root(rp1), *heap_,
                            heap_->root(rp1)));
    heap_->removeRoot(rs);
    heap_->removeRoot(rp1);
    heap_->removeRoot(rx);
    heap_->removeRoot(ry);
}

TEST_F(HeapTest, OldRawAllocationIsZeroedAndInOld)
{
    Address zone = heap_->allocateOldRaw(1024);
    EXPECT_TRUE(heap_->inOld(zone));
    for (std::size_t off = 0; off < 1024; off += wordSize)
        EXPECT_EQ(heap_->loadWord(zone, off), 0u);
}

TEST_F(HeapTest, FillerRecordsAreWalkable)
{
    Address zone = heap_->allocateOldRaw(256);
    heap_->writeFiller(zone, 256);
    EXPECT_TRUE(ManagedHeap::isFiller(zone));
    EXPECT_EQ(ManagedHeap::fillerSize(zone), 256u);
}

TEST_F(HeapTest, PinnedRangeLifecycle)
{
    Address zone = heap_->allocateOldRaw(512);
    std::size_t pin = heap_->pinOldRange(zone, 512);
    ASSERT_EQ(heap_->pinnedRanges().size(), 1u);
    EXPECT_FALSE(heap_->pinnedRanges()[0].walkable);
    heap_->makePinWalkable(pin);
    EXPECT_TRUE(heap_->pinnedRanges()[0].walkable);
    heap_->unpinOldRange(pin);
    EXPECT_EQ(heap_->pinnedRanges()[0].bytes, 0u);
}

TEST_F(HeapTest, UsedBytesTracksAllocation)
{
    std::size_t before = heap_->usedBytes();
    builder_->makeIntArray(std::vector<std::int32_t>(100, 1));
    EXPECT_GT(heap_->usedBytes(), before);
    heap_->notePeak();
    EXPECT_GE(heap_->stats().peakUsedBytes, heap_->usedBytes());
}

} // namespace
} // namespace skyway
