/**
 * @file
 * The simulated local disk each node writes shuffle files to. File
 * contents are real in-memory bytes (deserializers read them back);
 * only the I/O *time* is modeled, via a throughput + per-operation
 * overhead model calibrated to the paper's SSDs.
 */

#ifndef SKYWAY_IOMODEL_DISK_HH
#define SKYWAY_IOMODEL_DISK_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/logging.hh"

namespace skyway
{

/** Throughput model for one storage device. */
struct DiskCostModel
{
    double writeBytesPerSec = 400.0e6; // SATA-SSD-class sequential write
    double readBytesPerSec = 500.0e6;
    std::uint64_t perOpNs = 50'000; // open/fsync-ish overhead

    std::uint64_t
    writeNs(std::uint64_t bytes) const
    {
        return perOpNs + static_cast<std::uint64_t>(
                             bytes * 1.0e9 / writeBytesPerSec);
    }

    std::uint64_t
    readNs(std::uint64_t bytes) const
    {
        return perOpNs + static_cast<std::uint64_t>(
                             bytes * 1.0e9 / readBytesPerSec);
    }
};

/**
 * One node's disk: named files of raw bytes with charged I/O time.
 */
class SimDisk
{
  public:
    explicit SimDisk(DiskCostModel model = DiskCostModel{})
        : model_(model)
    {}

    const DiskCostModel &model() const { return model_; }

    /** Create/overwrite @p name; returns charged write nanoseconds. */
    std::uint64_t
    writeFile(const std::string &name, std::vector<std::uint8_t> bytes)
    {
        std::uint64_t ns = model_.writeNs(bytes.size());
        bytesWritten_ += bytes.size();
        files_[name] = std::move(bytes);
        return ns;
    }

    /** Append to @p name; returns charged write nanoseconds. */
    std::uint64_t
    appendFile(const std::string &name, const void *data,
               std::size_t len)
    {
        std::uint64_t ns = model_.writeNs(len);
        bytesWritten_ += len;
        auto &f = files_[name];
        const auto *p = static_cast<const std::uint8_t *>(data);
        f.insert(f.end(), p, p + len);
        return ns;
    }

    bool exists(const std::string &name) const
    {
        return files_.count(name) != 0;
    }

    /** Borrow file contents; charges nothing (use chargeRead). */
    const std::vector<std::uint8_t> &
    file(const std::string &name) const
    {
        auto it = files_.find(name);
        panicIf(it == files_.end(), "SimDisk: no such file " + name);
        return it->second;
    }

    /** Charged read nanoseconds for @p bytes. */
    std::uint64_t
    chargeRead(std::uint64_t bytes)
    {
        bytesRead_ += bytes;
        return model_.readNs(bytes);
    }

    void remove(const std::string &name) { files_.erase(name); }
    void clear() { files_.clear(); }

    std::uint64_t totalBytesWritten() const { return bytesWritten_; }
    std::uint64_t totalBytesRead() const { return bytesRead_; }

  private:
    DiskCostModel model_;
    std::unordered_map<std::string, std::vector<std::uint8_t>> files_;
    std::uint64_t bytesWritten_ = 0;
    std::uint64_t bytesRead_ = 0;
};

} // namespace skyway

#endif // SKYWAY_IOMODEL_DISK_HH
