#include "skyway/parallel.hh"

#include <thread>

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "support/stopwatch.hh"

namespace skyway
{

namespace
{

void
foldStats(SkywaySendStats &total, const SkywaySendStats &s)
{
    total.objectsCopied += s.objectsCopied;
    total.bytesCopied += s.bytesCopied;
    total.topMarks += s.topMarks;
    total.backRefs += s.backRefs;
    total.hashFallbacks += s.hashFallbacks;
    total.casRetries += s.casRetries;
    total.headerBytes += s.headerBytes;
    total.pointerBytes += s.pointerBytes;
    total.paddingBytes += s.paddingBytes;
    total.dataBytes += s.dataBytes;
}

} // namespace

ParallelSender::ParallelSender(SkywayContext &ctx, SinkFactory sinks,
                               ParallelSendConfig cfg)
    : threads_(cfg.threads)
{
    panicIf(threads_ == 0, "ParallelSender: need at least one worker");
    streams_.reserve(threads_);
    for (unsigned w = 0; w < threads_; ++w)
        streams_.push_back(std::make_unique<SkywayObjectOutputStream>(
            ctx, sinks(w), cfg.bufferBytes, cfg.targetFormat));
}

ParallelSender::~ParallelSender() = default;

ParallelSendReport
ParallelSender::send(const std::vector<Address> &roots)
{
    SKYWAY_SPAN("sender.parallel_fanout");
    obs::MetricsRegistry::global()
        .gauge("skyway.sender.threads")
        .set(static_cast<std::int64_t>(threads_));

    std::vector<std::uint64_t> workerNs(threads_, 0);
    auto work = [&](unsigned w) {
        Stopwatch sw;
        SkywayObjectOutputStream &out = *streams_[w];
        for (std::size_t i = w; i < roots.size(); i += threads_)
            out.writeObject(roots[i]);
        // Per-thread flush: each stream's tail segment leaves on its
        // own sink, so streams interleave on the wire as the baddr
        // sID/tid bytes allow.
        out.flush();
        workerNs[w] = sw.elapsedNs();
    };

    if (threads_ == 1) {
        work(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads_);
        for (unsigned w = 0; w < threads_; ++w)
            pool.emplace_back(work, w);
        for (std::thread &t : pool)
            t.join();
    }

    ParallelSendReport report;
    report.perWorker.reserve(threads_);
    for (unsigned w = 0; w < threads_; ++w) {
        const SkywaySendStats &s = streams_[w]->stats();
        report.perWorker.push_back(s);
        foldStats(report.total, s);
        report.totalBytes += streams_[w]->totalBytes();
        report.maxWorkerNs = std::max(report.maxWorkerNs, workerNs[w]);
    }
    return report;
}

} // namespace skyway
