/**
 * @file
 * The extra-byte composition analysis of paper section 5.2: what the
 * bytes Skyway ships beyond the pure field data consist of. The paper
 * measured headers 51%, padding 34%, pointers 15% of the extra bytes
 * across its Spark applications; we reproduce the analysis from the
 * sender's byte-composition counters over the same workload mix.
 */

#include "bench/benchutil.hh"
#include "skyway/jvm.hh"
#include "skyway/streams.hh"
#include "workloads/graphgen.hh"

using namespace skyway;

int
main(int argc, char **argv)
{
    double scale = bench::parseScale(argc, argv, 0.5);
    bench::JsonReport report(argc, argv, "bench_byte_composition",
                             scale);
    auto row = report.row("spark-mix");
    ClassCatalog cat = bench::fullCatalog();
    ClusterNetwork net(2);
    Jvm sender(cat, net, 0, 0);
    Jvm receiver(cat, net, 1, 0);

    // A workload mix shaped like the Spark shuffles: small records
    // (contribs/labels/pairs with strings) plus arrays.
    SkywaySerializer ser(sender.skyway());
    VectorSink sink;
    LocalRoots roots(sender.heap());
    Rng rng(5);

    Klass *contribK = sender.klasses().load("spark.Contrib");
    Klass *pairK = sender.klasses().load("spark.WordPair");
    const int records = static_cast<int>(40000 * scale);
    for (int i = 0; i < records; ++i) {
        Address rec;
        if (i % 3 == 0) {
            std::size_t rs = roots.push(sender.builder().makeString(
                "word" + std::to_string(rng.nextBounded(1000))));
            rec = sender.heap().allocateInstance(pairK);
            field::setRef(sender.heap(), rec,
                          pairK->requireField("word"), roots.get(rs));
            field::set<std::int64_t>(sender.heap(), rec,
                                     pairK->requireField("count"),
                                     i);
        } else {
            rec = sender.heap().allocateInstance(contribK);
            field::set<std::int32_t>(sender.heap(), rec,
                                     contribK->requireField("dst"),
                                     i);
            field::set<double>(sender.heap(), rec,
                               contribK->requireField("rank"),
                               rng.nextDouble());
        }
        std::size_t rr = roots.push(rec);
        ser.writeObject(roots.get(rr), sink);
    }
    ser.endStream(sink);

    SkywaySendStats s = ser.sendStats();
    std::uint64_t extra = s.headerBytes + s.paddingBytes +
                          s.pointerBytes;
    bench::printHeader(
        "Extra-byte composition of Skyway transfers (section 5.2)");
    std::printf("objects copied:  %llu (incl. %llu top marks)\n",
                static_cast<unsigned long long>(s.objectsCopied),
                static_cast<unsigned long long>(s.topMarks));
    std::printf("total bytes:     %llu\n",
                static_cast<unsigned long long>(s.bytesCopied));
    std::printf("field data:      %llu (%.0f%% of total)\n",
                static_cast<unsigned long long>(s.dataBytes),
                100.0 * s.dataBytes / s.bytesCopied);
    std::printf("extra bytes:     %llu, composed of:\n",
                static_cast<unsigned long long>(extra));
    std::printf("  headers:  %5.1f%%   (paper: 51%%)\n",
                100.0 * s.headerBytes / extra);
    std::printf("  padding:  %5.1f%%   (paper: 34%%)\n",
                100.0 * s.paddingBytes / extra);
    std::printf("  pointers: %5.1f%%   (paper: 15%%)\n",
                100.0 * s.pointerBytes / extra);
    row.value("objects_copied",
              static_cast<double>(s.objectsCopied));
    row.value("total_bytes", static_cast<double>(s.bytesCopied));
    row.value("data_bytes", static_cast<double>(s.dataBytes));
    row.value("header_pct", 100.0 * s.headerBytes / extra);
    row.value("padding_pct", 100.0 * s.paddingBytes / extra);
    row.value("pointer_pct", 100.0 * s.pointerBytes / extra);
    return 0;
}
