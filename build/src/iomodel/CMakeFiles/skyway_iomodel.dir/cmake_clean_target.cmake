file(REMOVE_RECURSE
  "libskyway_iomodel.a"
)
