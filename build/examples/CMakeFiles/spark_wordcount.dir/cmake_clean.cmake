file(REMOVE_RECURSE
  "CMakeFiles/spark_wordcount.dir/spark_wordcount.cpp.o"
  "CMakeFiles/spark_wordcount.dir/spark_wordcount.cpp.o.d"
  "spark_wordcount"
  "spark_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spark_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
