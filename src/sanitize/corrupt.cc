#include "sanitize/corrupt.hh"

#include <cstring>

#include "skyway/baddr.hh"
#include "skyway/wirecompact.hh"
#include "support/logging.hh"

namespace skyway
{
namespace sanitize
{

namespace
{

Word
readWord(const std::vector<std::uint8_t> &v, std::uint64_t off)
{
    Word w;
    std::memcpy(&w, v.data() + off, wordSize);
    return w;
}

void
writeWord(std::vector<std::uint8_t> &v, std::uint64_t off, Word w)
{
    std::memcpy(v.data() + off, &w, wordSize);
}

void
insertWord(std::vector<std::uint8_t> &v, std::uint64_t off, Word w)
{
    std::uint8_t bytes[wordSize];
    std::memcpy(bytes, &w, wordSize);
    v.insert(v.begin() + static_cast<std::ptrdiff_t>(off), bytes,
             bytes + wordSize);
}

template <typename T>
const T &
pick(const std::vector<T> &v, Rng &rng, const char *what)
{
    panicIf(v.empty(), std::string("injectCorruption: stream has no ") +
                           what);
    return v[rng.nextBounded(v.size())];
}

} // namespace

const char *
corruptionKindName(CorruptionKind kind)
{
    switch (kind) {
    case CorruptionKind::ForgedTypeId:
        return "forged-type-id";
    case CorruptionKind::DanglingOffset:
        return "dangling-offset";
    case CorruptionKind::Truncation:
        return "truncation";
    case CorruptionKind::DuplicatedTopMark:
        return "duplicated-top-mark";
    case CorruptionKind::ClobberedMark:
        return "clobbered-mark";
    case CorruptionKind::StaleBaddr:
        return "stale-baddr";
    case CorruptionKind::BogusMarker:
        return "bogus-marker";
    case CorruptionKind::HeaderBitFlip:
        return "header-bit-flip";
    case CorruptionKind::CompactTruncation:
        return "compact-truncation";
    case CorruptionKind::CompactBadTag:
        return "compact-bad-tag";
    case CorruptionKind::CompactForgedTypeId:
        return "compact-forged-type-id";
    }
    return "?";
}

const std::vector<CorruptionKind> &
allCorruptionKinds()
{
    static const std::vector<CorruptionKind> kinds = {
        CorruptionKind::ForgedTypeId,    CorruptionKind::DanglingOffset,
        CorruptionKind::Truncation,      CorruptionKind::DuplicatedTopMark,
        CorruptionKind::ClobberedMark,   CorruptionKind::StaleBaddr,
        CorruptionKind::BogusMarker,     CorruptionKind::HeaderBitFlip,
    };
    return kinds;
}

const std::vector<CorruptionKind> &
compactCorruptionKinds()
{
    static const std::vector<CorruptionKind> kinds = {
        CorruptionKind::CompactTruncation,
        CorruptionKind::CompactBadTag,
        CorruptionKind::CompactForgedTypeId,
    };
    return kinds;
}

WireIndex
indexStream(TypeResolver &resolver, const WireCheckConfig &cfg,
            const std::vector<std::uint8_t> &stream)
{
    WireValidator v(resolver, cfg);
    if (!stream.empty())
        v.feed(stream.data(), stream.size());
    v.finish();
    panicIf(!v.ok(), "indexStream: stream is not clean: " +
                         v.firstFault());
    return v.index();
}

std::vector<std::uint8_t>
injectCorruption(const WireIndex &index, const WireCheckConfig &cfg,
                 std::vector<std::uint8_t> stream, CorruptionKind kind,
                 Rng &rng)
{
    switch (kind) {
    case CorruptionKind::ForgedTypeId: {
        // An id far past anything a registry of loaded classes could
        // have assigned.
        const auto &r = pick(index.records, rng, "records");
        writeWord(stream, r.physOffset + offsetKlass,
                  0x7f000000ull + rng.nextBounded(1u << 20));
        break;
    }
    case CorruptionKind::DanglingOffset: {
        std::uint64_t slot_off =
            pick(index.refSlotOffsets, rng, "reference slots");
        // Either escape the logical address space entirely or land
        // mid-object (record headers are >= 2 words, so start + one
        // word is never an object start).
        std::uint64_t logical_end =
            index.records.empty()
                ? 0
                : index.records.back().logOffset +
                      index.records.back().size;
        std::uint64_t target =
            (rng.nextBounded(2) == 0)
                ? logical_end + wordSize * (1 + rng.nextBounded(1024))
                : pick(index.records, rng, "records").logOffset +
                      wordSize;
        writeWord(stream, slot_off, target + 1);
        break;
    }
    case CorruptionKind::Truncation: {
        const auto &r = pick(index.records, rng, "records");
        std::uint64_t cut =
            r.physOffset + 1 + rng.nextBounded(r.size - 1);
        stream.resize(static_cast<std::size_t>(cut));
        break;
    }
    case CorruptionKind::DuplicatedTopMark: {
        std::uint64_t off = pick(index.topMarkOffsets, rng, "top marks");
        insertWord(stream, off, marker::topMark);
        break;
    }
    case CorruptionKind::ClobberedMark: {
        // Lock, GC-mark, and age bits are machine-local and must be
        // zero on the wire.
        const auto &r = pick(index.records, rng, "records");
        Word m = readWord(stream, r.physOffset + offsetMark);
        writeWord(stream, r.physOffset + offsetMark,
                  m | (1ull << rng.nextBounded(6)));
        break;
    }
    case CorruptionKind::StaleBaddr: {
        panicIf(!cfg.wireFormat.hasBaddr,
                "StaleBaddr needs a baddr word in the wire format");
        const auto &r = pick(index.records, rng, "records");
        writeWord(stream, r.physOffset + offsetBaddr,
                  baddr::compose(
                      static_cast<std::uint8_t>(1 + rng.nextBounded(255)),
                      static_cast<std::uint16_t>(rng.nextBounded(65536)),
                      rng.nextBounded(baddr::maxRel)));
        break;
    }
    case CorruptionKind::BogusMarker: {
        // Both reserved bits set, but neither marker code: a word no
        // real object header and no marker can produce.
        const auto &r = pick(index.records, rng, "records");
        insertWord(stream, r.physOffset,
                   marker::reserved | (0x1000 + rng.nextBounded(0x1000)));
        break;
    }
    case CorruptionKind::HeaderBitFlip: {
        // Restricted to bits whose flip is guaranteed detectable:
        // mark-word bits that must be zero on the wire, any baddr bit,
        // or a klass-word bit high enough to leave the id range.
        const auto &r = pick(index.records, rng, "records");
        std::size_t words = cfg.wireFormat.hasBaddr ? 3 : 2;
        switch (rng.nextBounded(words)) {
        case 0: {
            static const int bits[] = {0, 1, 2, 3, 4, 5, 62, 63};
            Word m = readWord(stream, r.physOffset + offsetMark);
            writeWord(stream, r.physOffset + offsetMark,
                      m ^ (1ull << bits[rng.nextBounded(8)]));
            break;
        }
        case 1: {
            int bit = 31 + static_cast<int>(rng.nextBounded(32));
            Word k = readWord(stream, r.physOffset + offsetKlass);
            writeWord(stream, r.physOffset + offsetKlass,
                      k ^ (1ull << bit));
            break;
        }
        default: {
            Word b = readWord(stream, r.physOffset + offsetBaddr);
            writeWord(stream, r.physOffset + offsetBaddr,
                      b ^ (1ull << rng.nextBounded(64)));
            break;
        }
        }
        break;
    }
    case CorruptionKind::CompactTruncation: {
        // Cut the stream at or after a compact item: the enclosing
        // segment's declared payload length now overruns the bytes
        // that remain (or the preamble itself is gone).
        std::uint64_t off =
            pick(index.compactItemOffsets, rng, "compact items");
        std::uint64_t cut =
            off + rng.nextBounded(stream.size() - off);
        stream.resize(static_cast<std::size_t>(cut));
        break;
    }
    case CorruptionKind::CompactBadTag: {
        // A tag byte no encoder emits (valid tags are 0x01..0x07).
        std::uint64_t off =
            pick(index.compactItemOffsets, rng, "compact items");
        stream[static_cast<std::size_t>(off)] = static_cast<std::uint8_t>(
            0x10 + rng.nextBounded(0xe0));
        break;
    }
    case CorruptionKind::CompactForgedTypeId: {
        // Splice a 5-byte varint of an id no registry ever assigned
        // over the tid varint of a compact record item. The scan
        // stops at the forged item, so the byte-count change behind
        // it never matters.
        std::vector<std::uint64_t> sites;
        for (std::uint64_t off : index.compactItemOffsets) {
            std::uint8_t tag = stream[static_cast<std::size_t>(off)];
            if (tag >= wire::ctInstance && tag <= wire::ctPrimArrayRle)
                sites.push_back(off);
        }
        std::uint64_t off = pick(sites, rng, "compact records");
        std::size_t tid_at = static_cast<std::size_t>(off) + 1;
        std::size_t tid_len = 1;
        while (stream[tid_at + tid_len - 1] & 0x80)
            ++tid_len;
        std::vector<std::uint8_t> forged;
        wire::putVarU64(forged,
                        0x7f000000ull + rng.nextBounded(1u << 20));
        stream.erase(stream.begin() +
                         static_cast<std::ptrdiff_t>(tid_at),
                     stream.begin() +
                         static_cast<std::ptrdiff_t>(tid_at + tid_len));
        stream.insert(stream.begin() +
                          static_cast<std::ptrdiff_t>(tid_at),
                      forged.begin(), forged.end());
        break;
    }
    }
    return stream;
}

const std::vector<WireFault> &
expectedFaults(CorruptionKind kind)
{
    static const std::vector<WireFault> forged = {
        WireFault::UnresolvableTypeId};
    static const std::vector<WireFault> dangling = {
        WireFault::DanglingReference};
    static const std::vector<WireFault> truncated = {
        WireFault::TruncatedRecord};
    static const std::vector<WireFault> root = {WireFault::BadRootRecord};
    static const std::vector<WireFault> markw = {WireFault::BadMarkWord};
    static const std::vector<WireFault> baddrw = {
        WireFault::BadBaddrWord};
    static const std::vector<WireFault> markerw = {
        WireFault::UnknownMarker};
    static const std::vector<WireFault> flip = {
        WireFault::BadMarkWord, WireFault::UnresolvableTypeId,
        WireFault::BadBaddrWord};
    static const std::vector<WireFault> compactCut = {
        WireFault::TruncatedRecord, WireFault::BadCompactItem};
    static const std::vector<WireFault> compactItem = {
        WireFault::BadCompactItem};
    switch (kind) {
    case CorruptionKind::ForgedTypeId:
        return forged;
    case CorruptionKind::DanglingOffset:
        return dangling;
    case CorruptionKind::Truncation:
        return truncated;
    case CorruptionKind::DuplicatedTopMark:
        return root;
    case CorruptionKind::ClobberedMark:
        return markw;
    case CorruptionKind::StaleBaddr:
        return baddrw;
    case CorruptionKind::BogusMarker:
        return markerw;
    case CorruptionKind::HeaderBitFlip:
        return flip;
    case CorruptionKind::CompactTruncation:
        return compactCut;
    case CorruptionKind::CompactBadTag:
        return compactItem;
    case CorruptionKind::CompactForgedTypeId:
        return forged;
    }
    return flip;
}

} // namespace sanitize
} // namespace skyway
