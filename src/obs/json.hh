/**
 * @file
 * Minimal JSON support for the observability layer: a streaming
 * writer (correct escaping, automatic commas) used by the metrics
 * registry, the span tracer, and the bench reporters — and a
 * validating recursive-descent parser used by tests and the
 * bench-smoke target to prove emitted files are well-formed without
 * any external JSON dependency.
 */

#ifndef SKYWAY_OBS_JSON_HH
#define SKYWAY_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace skyway
{
namespace obs
{

/**
 * An append-only JSON writer. Containers nest via
 * beginObject/endObject and beginArray/endArray; the writer inserts
 * commas and panics on malformed sequences (a key outside an object,
 * two keys in a row, unbalanced ends).
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** The next member's name; must be inside an object. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view s);
    JsonWriter &value(const char *s) { return value(std::string_view(s)); }
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    /** Finite doubles with enough digits to round-trip. */
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /**
     * Splice @p json — already-serialized JSON — in value position
     * (e.g. a registry dump inside a bench row). Not re-validated.
     */
    JsonWriter &raw(std::string_view json);

    /** The finished document; all containers must be closed. */
    std::string str() &&;

  private:
    enum class Frame : std::uint8_t
    {
        Object,
        Array
    };

    void beforeValue();

    std::string out_;
    std::vector<Frame> stack_;
    bool needComma_ = false;
    bool keyPending_ = false;
    bool done_ = false;
};

/** Append @p s to @p out with JSON string escaping (no quotes). */
void jsonEscape(std::string_view s, std::string &out);

/**
 * Validate that @p text is exactly one well-formed JSON value.
 * Returns true on success; otherwise false with a position-annotated
 * message in @p error.
 */
bool jsonValidate(std::string_view text, std::string &error);

} // namespace obs
} // namespace skyway

#endif // SKYWAY_OBS_JSON_HH
