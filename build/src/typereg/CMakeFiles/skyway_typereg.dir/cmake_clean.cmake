file(REMOVE_RECURSE
  "CMakeFiles/skyway_typereg.dir/registry.cc.o"
  "CMakeFiles/skyway_typereg.dir/registry.cc.o.d"
  "libskyway_typereg.a"
  "libskyway_typereg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyway_typereg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
