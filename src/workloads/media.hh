/**
 * @file
 * The JSBS (jvm-serializers) media-content data model: the benchmark
 * the paper uses to compare Skyway against 90 S/D libraries (Figure
 * 7). A MediaContent holds one Media plus an Image array; every
 * instance is around 1 KB in JSON form and mixes strings, ints,
 * longs, booleans, enums, and nested objects.
 */

#ifndef SKYWAY_WORKLOADS_MEDIA_HH
#define SKYWAY_WORKLOADS_MEDIA_HH

#include "skyway/jvm.hh"
#include "support/rng.hh"

namespace skyway
{

/** Media player enum values (stored as int fields, as Java enums'
 *  ordinals would be encoded by schema serializers). */
namespace media_enums
{
constexpr std::int32_t playerJava = 0;
constexpr std::int32_t playerFlash = 1;
constexpr std::int32_t sizeSmall = 0;
constexpr std::int32_t sizeLarge = 1;
} // namespace media_enums

/** Register the media classes with an application catalog. */
void defineMediaClasses(ClassCatalog &catalog);

/**
 * Cached klass/field handles for the media schema on one node — the
 * "generated code" a schema compiler would produce.
 */
struct MediaSchema
{
    explicit MediaSchema(KlassTable &klasses);

    Klass *content;
    Klass *media;
    Klass *image;
    Klass *imageArray;
    Klass *stringArray;

    const FieldDesc *cMedia, *cImages;
    const FieldDesc *mUri, *mTitle, *mWidth, *mHeight, *mFormat,
        *mDuration, *mSize, *mBitrate, *mHasBitrate, *mPersons,
        *mPlayer, *mCopyright;
    const FieldDesc *iUri, *iTitle, *iWidth, *iHeight, *iSize;
};

/**
 * Deterministically build one MediaContent object graph (1 Media with
 * 2 persons + 2 Images, the standard JSBS shape). Roots it in
 * @p roots and returns the slot index.
 */
std::size_t makeMediaContent(Jvm &jvm, LocalRoots &roots, Rng &rng);

/**
 * Structural sanity check used by tests: verifies the standard JSBS
 * shape (media with non-empty strings, two images).
 */
bool mediaContentWellFormed(Jvm &jvm, Address content);

} // namespace skyway

#endif // SKYWAY_WORKLOADS_MEDIA_HH
