/**
 * @file
 * A batch analytics scenario: the TPC-H-derived query QE ("items
 * returned by customers, by lost revenue") on the miniflink
 * substrate, comparing Flink's built-in schema serializers (with
 * lazy deserialization) against Skyway object transfer.
 */

#include <cstdio>

#include "miniflink/queries.hh"

using namespace skyway;

int
main()
{
    ClassCatalog catalog = makeStandardCatalog();
    defineTpchClasses(catalog);

    TpchSpec spec;
    spec.scale = 0.3;
    TpchData db = generateTpch(spec);
    std::printf("dataset: %zu lineitems, %zu orders, %zu customers\n",
                db.lineitem.size(), db.orders.size(),
                db.customer.size());
    std::printf("query:   QE — %s\n\n", queryDescription('E'));

    std::printf("%-9s %9s %9s %9s %9s %9s %9s  %11s\n", "engine",
                "compute", "ser", "write", "deser", "read", "total",
                "shuffle_MB");
    FlinkQueryResult results[2];
    int i = 0;
    for (FlinkSerMode mode :
         {FlinkSerMode::Builtin, FlinkSerMode::Skyway}) {
        FlinkCluster cluster(catalog, mode);
        FlinkQueryResult res = runQueryE(cluster, db);
        const PhaseBreakdown &b = res.average;
        std::printf("%-9s %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f  %11.2f\n",
                    mode == FlinkSerMode::Builtin ? "builtin"
                                                  : "skyway",
                    b.computeNs / 1e6, b.serNs / 1e6,
                    b.writeIoNs / 1e6, b.deserNs / 1e6,
                    b.readIoNs / 1e6, b.totalNs() / 1e6,
                    res.shuffledBytes / 1e6);
        results[i++] = res;
    }

    if (results[0].checksum != results[1].checksum)
        fatal("engines disagree on the query result!");
    std::printf("\nboth engines returned the same top-20 revenue "
                "list (checksum %.2f);\nSkyway shipped %.1fx the "
                "bytes and still won on S/D time — the paper's "
                "bandwidth-for-CPU trade.\n",
                results[0].checksum,
                static_cast<double>(results[1].shuffledBytes) /
                    results[0].shuffledBytes);
    return 0;
}
