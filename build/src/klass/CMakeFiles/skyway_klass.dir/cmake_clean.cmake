file(REMOVE_RECURSE
  "CMakeFiles/skyway_klass.dir/klass.cc.o"
  "CMakeFiles/skyway_klass.dir/klass.cc.o.d"
  "libskyway_klass.a"
  "libskyway_klass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyway_klass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
