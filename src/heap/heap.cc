#include "heap/heap.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "support/rng.hh"

namespace skyway
{

namespace
{

/**
 * Process-wide heap-occupancy gauges, resolved once. They aggregate
 * across every ManagedHeap in the process (a simulated cluster), so
 * each heap publishes *deltas* against what it last reported.
 */
struct HeapGauges
{
    obs::Gauge &inUse;
    obs::Gauge &peak;

    static HeapGauges &
    get()
    {
        auto &r = obs::MetricsRegistry::global();
        static HeapGauges g{
            r.gauge("skyway.heap.in_use_bytes"),
            r.gauge("skyway.heap.peak_bytes"),
        };
        return g;
    }
};

} // namespace

ManagedHeap::ManagedHeap(const HeapConfig &config) : config_(config)
{
    std::size_t young = config_.edenBytes + 2 * config_.survivorBytes;
    std::size_t total = young + config_.oldBytes + wordSize;
    // No value-initialization: every allocation path zeroes (or fully
    // overwrites) its own bytes, and the collectors only ever walk
    // allocated regions.
    arena_ = std::make_unique_for_overwrite<std::uint8_t[]>(total);

    auto base = reinterpret_cast<Address>(arena_.get());
    base = alignUp(base, wordSize);

    youngBase_ = base;
    edenBase_ = base;
    edenEnd_ = edenBase_ + config_.edenBytes;
    edenTop_ = edenBase_;
    survBase_[0] = edenEnd_;
    survEnd_[0] = survBase_[0] + config_.survivorBytes;
    survBase_[1] = survEnd_[0];
    survEnd_[1] = survBase_[1] + config_.survivorBytes;
    youngEnd_ = survEnd_[1];
    survTop_ = survBase_[0];
    survToTop_ = survBase_[1];

    oldBase_ = youngEnd_;
    oldEnd_ = oldBase_ + config_.oldBytes;
    oldTop_ = oldBase_;

    cards_.assign((config_.oldBytes + config_.cardBytes - 1) /
                      config_.cardBytes,
                  0);
}

void
ManagedHeap::initHeader(Address a, Klass *k)
{
    storeWord(a, offsetMark, mark::initial);
    storeWord(a, offsetKlass, reinterpret_cast<Word>(k));
    if (format().hasBaddr)
        storeWord(a, offsetBaddr, 0);
}

Address
ManagedHeap::allocateYoung(std::size_t bytes)
{
    bytes = wordAlign(bytes);
    if (edenTop_ + bytes > edenEnd_) {
        if (collector_) {
            collector_->scavenge();
            if (edenTop_ + bytes > edenEnd_)
                collector_->fullGc();
        }
        if (edenTop_ + bytes > edenEnd_) {
            // Outsized allocation relative to eden: fall back to the
            // old generation rather than dying, as HotSpot does for
            // humongous allocations.
            Address a = allocateOldForGc(bytes);
            if (!a)
                fatal("ManagedHeap: out of memory (young alloc of " +
                      std::to_string(bytes) + " bytes)");
            return a;
        }
    }
    Address a = edenTop_;
    edenTop_ += bytes;
    std::memset(reinterpret_cast<void *>(a), 0, bytes);
    stats_.bytesAllocated += bytes;
    return a;
}

Address
ManagedHeap::allocateInstance(Klass *k)
{
    panicIf(k->isArray(), "allocateInstance on array klass " + k->name());
    Address a = allocateYoung(k->instanceBytes());
    initHeader(a, k);
    return a;
}

Address
ManagedHeap::allocateArray(Klass *k, std::size_t length)
{
    panicIf(!k->isArray(), "allocateArray on non-array klass " + k->name());
    Address a = allocateYoung(k->arrayBytes(length));
    initHeader(a, k);
    storeWord(a, format().arrayLengthOffset(), length);
    return a;
}

Address
ManagedHeap::allocateOldRaw(std::size_t bytes, bool zero)
{
    bytes = wordAlign(bytes);
    Address a = allocateOldForGc(bytes);
    if (!a && collector_) {
        collector_->fullGc();
        a = allocateOldForGc(bytes);
    }
    if (!a)
        fatal("ManagedHeap: old generation exhausted (alloc of " +
              std::to_string(bytes) + " bytes)");
    if (zero)
        std::memset(reinterpret_cast<void *>(a), 0, bytes);
    stats_.bytesAllocated += bytes;
    // Tenured allocations (input-buffer chunks) move the occupancy
    // level in coarse steps — cheap enough to publish right away.
    publishOccupancy();
    return a;
}

Address
ManagedHeap::allocateOldForGc(std::size_t bytes)
{
    bytes = wordAlign(bytes);
    // First fit over the swept free list, then bump at the top.
    for (auto &fr : oldFree_) {
        if (fr.bytes >= bytes) {
            Address a = fr.addr;
            std::size_t rest = fr.bytes - bytes;
            if (rest >= 2 * wordSize) {
                fr.addr += bytes;
                fr.bytes = rest;
                writeFiller(fr.addr, rest);
            } else {
                // Too small to track; absorb into the allocation.
                bytes = fr.bytes;
                fr.bytes = 0;
            }
            oldUsedBytes_ += bytes;
            return a;
        }
    }
    if (oldTop_ + bytes > oldEnd_)
        return nullAddr;
    Address a = oldTop_;
    oldTop_ += bytes;
    oldUsedBytes_ += bytes;
    return a;
}

Address
ManagedHeap::allocateInSurvivorTo(std::size_t bytes)
{
    bytes = wordAlign(bytes);
    int to = 1 - fromSpace_;
    if (survToTop_ + bytes > survEnd_[to])
        return nullAddr;
    Address a = survToTop_;
    survToTop_ += bytes;
    return a;
}

void
ManagedHeap::finishScavenge()
{
    edenTop_ = edenBase_;
    fromSpace_ = 1 - fromSpace_;
    survTop_ = survToTop_;
    survToTop_ = survBase_[1 - fromSpace_];
    ++stats_.scavenges;
}

std::size_t
ManagedHeap::objectSize(Address a) const
{
    const Klass *k = klassOf(a);
    if (k->isArray())
        return k->arrayBytes(static_cast<std::size_t>(arrayLength(a)));
    return k->instanceBytes();
}

std::int32_t
ManagedHeap::identityHash(Address a)
{
    Word m = markOf(a);
    if (mark::hasHash(m))
        return mark::hashOf(m);
    std::uint64_t st = hashCounter_;
    std::int32_t h =
        static_cast<std::int32_t>(splitmix64(st) & 0x7fffffff);
    hashCounter_ = st;
    setMark(a, mark::withHash(m, h));
    return h;
}

std::size_t
ManagedHeap::addRoot(Address a)
{
    if (!freeRootSlots_.empty()) {
        std::size_t slot = freeRootSlots_.back();
        freeRootSlots_.pop_back();
        roots_[slot] = a;
        return slot;
    }
    roots_.push_back(a);
    return roots_.size() - 1;
}

void
ManagedHeap::removeRoot(std::size_t slot)
{
    roots_[slot] = nullAddr;
    freeRootSlots_.push_back(slot);
}

void
ManagedHeap::dirtyCard(Address a)
{
    panicIf(!inOld(a), "dirtyCard on non-old address");
    cards_[(a - oldBase_) / config_.cardBytes] = 1;
}

void
ManagedHeap::dirtyCardRange(Address a, std::size_t len)
{
    panicIf(!inOld(a), "dirtyCardRange on non-old address");
    std::size_t first = (a - oldBase_) / config_.cardBytes;
    std::size_t last = (a + len - 1 - oldBase_) / config_.cardBytes;
    for (std::size_t i = first; i <= last && i < cards_.size(); ++i)
        cards_[i] = 1;
}

void
ManagedHeap::resetOldFreeList()
{
    oldFree_.clear();
}

void
ManagedHeap::addOldFreeRange(Address a, std::size_t bytes)
{
    panicIf(bytes < 2 * wordSize, "free range too small to track");
    writeFiller(a, bytes);
    oldFree_.push_back({a, bytes});
}

void
ManagedHeap::writeFiller(Address a, std::size_t bytes)
{
    panicIf(bytes < 2 * wordSize, "filler too small");
    storeWord(a, 0, fillerMagic);
    storeWord(a, wordSize, bytes);
}

void
ManagedHeap::writeFillerAny(Address a, std::size_t bytes)
{
    if (bytes == 0)
        return;
    panicIf(bytes % wordSize != 0, "filler not word-aligned");
    if (bytes == wordSize) {
        storeWord(a, 0, fillerMagicOneWord);
        return;
    }
    writeFiller(a, bytes);
}

std::size_t
ManagedHeap::pinOldRange(Address a, std::size_t bytes)
{
    panicIf(!inOld(a), "pinOldRange outside old generation");
    PinnedRange pr{a, bytes, false};
    if (!freePinSlots_.empty()) {
        std::size_t slot = freePinSlots_.back();
        freePinSlots_.pop_back();
        pinned_[slot] = pr;
        return slot;
    }
    pinned_.push_back(pr);
    return pinned_.size() - 1;
}

void
ManagedHeap::makePinWalkable(std::size_t pin)
{
    pinned_[pin].walkable = true;
}

void
ManagedHeap::unpinOldRange(std::size_t pin)
{
    pinned_[pin].bytes = 0;
    pinned_[pin].addr = nullAddr;
    freePinSlots_.push_back(pin);
}

const ManagedHeap::PinnedRange *
ManagedHeap::opaquePinAt(Address a) const
{
    for (const PinnedRange &pr : pinned_) {
        if (!pr.walkable && pr.bytes && a >= pr.addr &&
            a < pr.addr + pr.bytes)
            return &pr;
    }
    return nullptr;
}

void
ManagedHeap::notePeak()
{
    stats_.peakUsedBytes = std::max(stats_.peakUsedBytes,
                                    static_cast<std::uint64_t>(usedBytes()));
    publishOccupancy();
}

void
ManagedHeap::publishOccupancy()
{
    HeapGauges &g = HeapGauges::get();
    std::uint64_t used = usedBytes();
    g.inUse.add(static_cast<std::int64_t>(used) -
                static_cast<std::int64_t>(publishedInUseBytes_));
    publishedInUseBytes_ = used;
    if (stats_.peakUsedBytes > publishedPeakBytes_) {
        g.peak.add(static_cast<std::int64_t>(stats_.peakUsedBytes -
                                             publishedPeakBytes_));
        publishedPeakBytes_ = stats_.peakUsedBytes;
    }
}

ManagedHeap::~ManagedHeap()
{
    // A destroyed node's bytes leave the cluster-wide level; its peak
    // contribution is a high-water mark and stays.
    HeapGauges::get().inUse.add(
        -static_cast<std::int64_t>(publishedInUseBytes_));
    publishedInUseBytes_ = 0;
}

} // namespace skyway
