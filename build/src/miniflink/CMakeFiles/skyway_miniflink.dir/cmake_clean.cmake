file(REMOVE_RECURSE
  "CMakeFiles/skyway_miniflink.dir/miniflink.cc.o"
  "CMakeFiles/skyway_miniflink.dir/miniflink.cc.o.d"
  "CMakeFiles/skyway_miniflink.dir/queries.cc.o"
  "CMakeFiles/skyway_miniflink.dir/queries.cc.o.d"
  "libskyway_miniflink.a"
  "libskyway_miniflink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyway_miniflink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
