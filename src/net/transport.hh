/**
 * @file
 * The pluggable transport behind the cluster fabric. ClusterNetwork
 * keeps the consumer-facing API (send/poll/request) and all the
 * accounting; how bytes actually move between nodes is a Transport:
 *
 *  - ModelTransport: the in-process mailboxes the repository started
 *    with — messages move instantly, wire time exists only on the
 *    simulated per-node clocks (net/model_transport.hh);
 *  - TcpTransport: real loopback TCP sockets — one multiplexed data
 *    connection per node pair carrying tagged, length-prefixed
 *    frames, demultiplexed by one epoll event loop per node, with
 *    bounded per-stream credit for backpressure (net/tcp_transport.hh
 *    and docs/TRANSPORT.md).
 *
 * Both present identical delivery semantics (reliable, per-(src,tag)
 * FIFO, zero-length payload = end of stream), so every consumer —
 * SkywaySocket streams, the type-registry LOOKUP daemon, parallel
 * sender fan-out, the minispark/miniflink shuffle fetch — runs
 * unmodified on either, and `bytesSent`/`messagesSent` match
 * byte-for-byte between a modeled and a real run of the same
 * workload.
 */

#ifndef SKYWAY_NET_TRANSPORT_HH
#define SKYWAY_NET_TRANSPORT_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace skyway
{

/** A node id within one cluster. */
using NodeId = int;

/** One in-flight message. */
struct NetMessage
{
    NodeId src;
    NodeId dst;
    int tag;
    std::vector<std::uint8_t> payload;
};

/** Which Transport implementation a fabric runs on. */
enum class TransportKind
{
    Model,
    Tcp,
};

const char *transportKindName(TransportKind kind);

/** Parse "model"/"tcp"; nullopt on anything else. */
std::optional<TransportKind> parseTransportKind(std::string_view name);

/**
 * Knobs for one blocking request/reply round trip. The model
 * transport completes synchronously and ignores them; the TCP
 * transport waits @p timeoutMs for the reply and resends the request
 * up to @p maxRetries times before giving up (each resend counts in
 * `net.connect_retries`). Handlers must therefore be idempotent —
 * the type-registry protocol (register-on-first-sight) is.
 */
struct RequestOptions
{
    std::uint64_t timeoutMs = 2000;
    int maxRetries = 3;
};

/**
 * Construction-time knobs for a transport. Only the TCP transport
 * reads them; the model transport has no wire to tune. Environment
 * variables override these defaults so benches can sweep without a
 * rebuild: SKYWAY_NET_CREDIT_BYTES, SKYWAY_NET_QUEUE_LIMIT,
 * SKYWAY_NET_AFFINITY=1 (see docs/TRANSPORT.md §6).
 */
struct TransportOptions
{
    /**
     * Per-stream receive credit window in bytes: a sender may have at
     * most this many un-granted payload bytes on the wire per
     * (src, dst, tag) stream before its frames wait in the send queue
     * (time spent waiting counts in `net.credit_stalls_ns`). The
     * receiver grants credit back as payloads are delivered into
     * consumer storage. Must be > 0.
     */
    std::size_t creditWindowBytes = std::size_t{1} << 20;

    /**
     * Optional bound on *queued* (not yet written) bytes per stream;
     * 0 = unbounded, preserving send()'s fire-and-forget contract.
     * When set, send() blocks the caller once the stream's queue
     * exceeds the limit — only safe for callers that drain from a
     * separate thread.
     */
    std::size_t maxQueuedBytesPerStream = 0;

    /**
     * Pin node i's event loop to hardware core i mod
     * hardware_concurrency (DShuffle-style core affinity). Off by
     * default: on small hosts pinning every loop to the same core
     * serialises the fabric.
     */
    bool pinEventLoops = false;
};

/**
 * Per-fabric wire counters a Transport maintains while it moves
 * bytes. Owned by the ClusterNetwork (so resetAccounting() clears
 * them between bench phases) and mirrored into the process-wide
 * `net.*` metrics registry by the transport that updates them. All
 * stay zero on the model transport.
 */
struct WireCounters
{
    /** Frames written to a socket (data, credit grants, requests,
     *  replies). */
    std::atomic<std::uint64_t> framesSent{0};
    /** Connect attempts beyond the first, plus request resends. */
    std::atomic<std::uint64_t> connectRetries{0};
    /** Payload bytes recv()'d straight into ReserveFn storage. */
    std::atomic<std::uint64_t> recvIntoBytes{0};
    /** Wall nanoseconds spent in socket writes. */
    std::atomic<std::uint64_t> realWireNs{0};
    /** Wall nanoseconds streams spent stalled on exhausted credit. */
    std::atomic<std::uint64_t> creditStallsNs{0};
    /** Event-loop epoll_wait() returns that reported ready fds. */
    std::atomic<std::uint64_t> epollWakeups{0};
    /** Data connections established into the pair pool (cumulative). */
    std::atomic<std::uint64_t> connectionsPooled{0};

    void
    reset()
    {
        framesSent.store(0, std::memory_order_relaxed);
        connectRetries.store(0, std::memory_order_relaxed);
        recvIntoBytes.store(0, std::memory_order_relaxed);
        realWireNs.store(0, std::memory_order_relaxed);
        creditStallsNs.store(0, std::memory_order_relaxed);
        epollWakeups.store(0, std::memory_order_relaxed);
        connectionsPooled.store(0, std::memory_order_relaxed);
    }
};

/**
 * The transport interface proper. Implementations deliver messages;
 * they do not charge wire time or count bytes — that is
 * ClusterNetwork's job, which is what keeps the accounting identical
 * across transports.
 */
class Transport
{
  public:
    /**
     * Returns destination storage for an incoming payload of the
     * given size — how a receiver posts a buffer for the transport to
     * deliver into (Skyway input buffers hand out old-gen chunk
     * space).
     */
    using ReserveFn = std::function<std::uint8_t *(std::size_t)>;

    /**
     * A synchronous request handler a node may register (the type
     * registry driver's daemon, paper Algorithm 1 part 2). Receives
     * the request payload, returns the reply payload. On the TCP
     * transport it runs on the destination node's event loop.
     */
    using RequestHandler =
        std::function<std::vector<std::uint8_t>(NodeId src, int tag,
                                                const std::vector<
                                                    std::uint8_t> &)>;

    virtual ~Transport() = default;

    virtual const char *name() const = 0;

    /** Enqueue a one-way message toward @p dst; never blocks the
     *  caller on the receiver (fire-and-forget, like a mailbox or an
     *  unbounded socket send queue). */
    virtual void send(NodeId src, NodeId dst, int tag,
                      std::vector<std::uint8_t> payload) = 0;

    /**
     * Dequeue the next message addressed to @p dst (any source/tag);
     * returns false when nothing has *arrived* — on a real transport
     * bytes may still be in flight, so callers that expect more data
     * retry (every consumer in this repository already loops).
     */
    virtual bool poll(NodeId dst, NetMessage &out) = 0;

    /**
     * Dequeue the next message for @p dst with tag @p tag, retaining
     * others (per-tag delivery order is preserved). False when none
     * has arrived.
     */
    virtual bool pollTag(NodeId dst, int tag, NetMessage &out) = 0;

    /**
     * Like pollTag, but delivers the payload *into caller-posted
     * storage*: the transport asks @p reserve for a destination of
     * the payload's size and moves the bytes straight there — a
     * modeled NIC DMA, or a literal recv() into old-gen chunk
     * storage on the TCP transport.
     *
     * Returns the payload size, 0 for an empty (end-of-stream)
     * payload — @p reserve is not called — or -1 when no message
     * with the tag has arrived.
     */
    virtual std::ptrdiff_t pollTagInto(NodeId dst, int tag,
                                       const ReserveFn &reserve) = 0;

    /** Register @p handler as @p node's synchronous request daemon. */
    virtual void registerHandler(NodeId node, RequestHandler handler) = 0;

    /** Blocking request/reply round trip toward @p dst's daemon. */
    virtual std::vector<std::uint8_t>
    request(NodeId src, NodeId dst, int tag,
            const std::vector<std::uint8_t> &payload,
            const RequestOptions &opts) = 0;
};

/** Construct the transport behind one fabric of @p node_count nodes. */
std::unique_ptr<Transport> makeTransport(TransportKind kind,
                                         int node_count,
                                         WireCounters &wire,
                                         const TransportOptions &options = {});

} // namespace skyway

#endif // SKYWAY_NET_TRANSPORT_HH
