#include "gc/collector.hh"

#include <algorithm>

#include "heap/objectops.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "support/stopwatch.hh"

namespace skyway
{

namespace
{

/** Registry-backed collector counters, resolved once per process. */
struct GcMetrics
{
    obs::Counter &scavenges;
    obs::Counter &fullGcs;
    obs::Counter &youngCopiedBytes;
    obs::Counter &promotedBytes;
    obs::Counter &oldSweptBytes;
    obs::Counter &markedObjects;
    obs::Histogram &pauseNs;

    static GcMetrics &
    get()
    {
        auto &r = obs::MetricsRegistry::global();
        static GcMetrics m{
            r.counter("gc.scavenges"),
            r.counter("gc.full_gcs"),
            r.counter("gc.young_copied_bytes"),
            r.counter("gc.promoted_bytes"),
            r.counter("gc.old_swept_bytes"),
            r.counter("gc.marked_objects"),
            // 1 µs .. ~1 s in x4 steps: young pauses land at the
            // bottom, full collections near the top.
            r.histogram("gc.pause_ns",
                        obs::exponentialBounds(1000, 4.0, 10)),
        };
        return m;
    }
};

/** Forwarding is encoded in the mark word: bit 0 set, address above. */
constexpr Word forwardBit = 0x1;

bool
isForwarded(Word m)
{
    return (m & forwardBit) != 0;
}

Address
forwardee(Word m)
{
    return static_cast<Address>(m & ~forwardBit);
}

Word
makeForward(Address to)
{
    return static_cast<Word>(to) | forwardBit;
}

} // namespace

GenerationalGc::GenerationalGc(ManagedHeap &heap) : heap_(heap)
{
    heap_.setCollector(this);
}

void
GenerationalGc::scavenge()
{
    SKYWAY_SPAN("gc.scavenge");
    Stopwatch pause;
    scavengeImpl(false);

    GcMetrics &m = GcMetrics::get();
    m.scavenges.inc();
    m.youngCopiedBytes.add(last_.youngCopiedBytes);
    m.promotedBytes.add(last_.promotedBytes);
    m.pauseNs.record(pause.elapsedNs());
}

Address
GenerationalGc::evacuate(Address obj, bool promote_all)
{
    Word m = heap_.markOf(obj);
    if (isForwarded(m))
        return forwardee(m);

    std::size_t size = heap_.objectSize(obj);
    int age = mark::ageOf(m) + 1;
    bool promote =
        promote_all || age >= heap_.config().tenureThreshold;

    Address copy = nullAddr;
    if (!promote)
        copy = heap_.allocateInSurvivorTo(size);
    if (!copy) {
        copy = heap_.allocateOldForGc(size);
        promote = true;
    }
    if (!copy)
        fatal("GenerationalGc: old generation full during promotion");

    std::memcpy(reinterpret_cast<void *>(copy),
                reinterpret_cast<const void *>(obj), size);
    heap_.setMark(copy, mark::withAge(m, promote ? 0 : age));
    heap_.setMark(obj, makeForward(copy));

    if (promote) {
        last_.promotedBytes += size;
        heap_.stats().bytesPromoted += size;
    } else {
        last_.youngCopiedBytes += size;
    }
    scanQueue_.push_back(copy);
    return copy;
}

void
GenerationalGc::processSlot(Address holder, std::size_t off,
                            bool promote_all)
{
    Address target = heap_.loadRef(holder, off);
    if (target == nullAddr || !heap_.inYoung(target))
        return;
    Address moved = evacuate(target, promote_all);
    heap_.store<Address>(holder, off, moved);
    if (heap_.inOld(holder) && heap_.inYoung(moved))
        heap_.dirtyCard(holder);
}

void
GenerationalGc::scavengeImpl(bool promote_all)
{
    last_ = GcCycleStats{};
    scanQueue_.clear();

    // Roots from the handle table.
    for (Address &slot : heap_.rootSlots()) {
        if (slot != nullAddr && heap_.inYoung(slot))
            slot = evacuate(slot, promote_all);
    }

    // Card-table roots: old objects that may hold young references.
    // Snapshot and clear the dirty cards, then rescan the objects that
    // touch them, re-dirtying cards that still point young afterwards.
    std::vector<std::size_t> dirty;
    for (std::size_t i = 0; i < heap_.cardCount(); ++i) {
        if (heap_.cardIsDirty(i)) {
            dirty.push_back(i);
            heap_.clearCard(i);
        }
    }
    if (!dirty.empty()) {
        std::size_t cardBytes = heap_.config().cardBytes;
        auto cardOf = [&](Address a) {
            return (a - heap_.oldBase()) / cardBytes;
        };
        std::size_t di = 0;
        heap_.forEachOldObject([&](Address obj) {
            std::size_t size = heap_.objectSize(obj);
            std::size_t firstCard = cardOf(obj);
            std::size_t lastCard = cardOf(obj + size - 1);
            while (di < dirty.size() && dirty[di] < firstCard)
                ++di;
            if (di >= dirty.size() || dirty[di] > lastCard)
                return;
            forEachRefSlot(heap_, obj, [&](std::size_t off) {
                processSlot(obj, off, promote_all);
            });
        });
    }

    // Cheney-style transitive closure over everything evacuated.
    while (!scanQueue_.empty()) {
        Address obj = scanQueue_.back();
        scanQueue_.pop_back();
        forEachRefSlot(heap_, obj, [&](std::size_t off) {
            processSlot(obj, off, promote_all);
        });
    }

    heap_.finishScavenge();
    heap_.notePeak();
}

void
GenerationalGc::fullGc()
{
    SKYWAY_SPAN("gc.full");
    Stopwatch pause;

    // Phase 1: force-promote every young survivor so the young
    // generation is empty and marking only has to deal with the old
    // generation (as Parallel Scavenge's full GC effectively does).
    scavengeImpl(true);

    // Phase 2: mark.
    std::vector<Address> roots;
    for (Address slot : heap_.rootSlots()) {
        if (slot != nullAddr)
            roots.push_back(slot);
    }
    // Walkable pinned ranges (absolutized Skyway input buffers) are
    // kept live wholesale until explicitly freed: every object inside
    // is a root.
    for (const auto &pr : heap_.pinnedRanges()) {
        if (!pr.walkable || pr.bytes == 0)
            continue;
        Address a = pr.addr;
        Address end = pr.addr + pr.bytes;
        while (a < end) {
            if (ManagedHeap::isFiller(a)) {
                a += ManagedHeap::fillerSize(a);
                continue;
            }
            roots.push_back(a);
            a += heap_.objectSize(a);
        }
    }
    markFrom(roots);

    // Phase 3: sweep the old generation.
    sweepOld();
    ++heap_.stats().fullGcs;

    // last_ carries the whole cycle: the force-promoting scavenge of
    // phase 1 plus the mark and sweep tallies.
    GcMetrics &m = GcMetrics::get();
    m.fullGcs.inc();
    m.youngCopiedBytes.add(last_.youngCopiedBytes);
    m.promotedBytes.add(last_.promotedBytes);
    m.oldSweptBytes.add(last_.oldSweptBytes);
    m.markedObjects.add(last_.markedObjects);
    m.pauseNs.record(pause.elapsedNs());
}

void
GenerationalGc::markFrom(const std::vector<Address> &roots)
{
    std::vector<Address> stack(roots);
    while (!stack.empty()) {
        Address obj = stack.back();
        stack.pop_back();
        if (obj == nullAddr)
            continue;
        Word m = heap_.markOf(obj);
        if (mark::isGcMarked(m))
            continue;
        heap_.setMark(obj, mark::setGcMarked(m));
        ++last_.markedObjects;
        forEachRefSlot(heap_, obj, [&](std::size_t off) {
            Address t = heap_.loadRef(obj, off);
            if (t != nullAddr)
                stack.push_back(t);
        });
    }
}

void
GenerationalGc::sweepOld()
{
    heap_.resetOldFreeList();

    auto opaquePin = [&](Address a) -> const ManagedHeap::PinnedRange * {
        for (const auto &pr : heap_.pinnedRanges()) {
            if (!pr.walkable && pr.bytes && a >= pr.addr &&
                a < pr.addr + pr.bytes)
                return &pr;
        }
        return nullptr;
    };

    Address a = heap_.oldBase();
    Address end = heap_.oldTop();
    Address freeStart = nullAddr;
    std::size_t liveBytes = 0;

    auto flushFree = [&](Address upTo) {
        if (freeStart == nullAddr)
            return;
        std::size_t len = upTo - freeStart;
        if (len >= 2 * wordSize) {
            heap_.addOldFreeRange(freeStart, len);
            last_.oldSweptBytes += len;
        } else if (len > 0) {
            // Too small to track: keep as (dead) filler-free bytes.
            liveBytes += len;
            if (len >= 2 * wordSize)
                heap_.writeFiller(freeStart, len);
        }
        freeStart = nullAddr;
    };

    while (a < end) {
        if (const auto *pr = opaquePin(a)) {
            flushFree(a);
            liveBytes += pr->bytes;
            a = pr->addr + pr->bytes;
            continue;
        }
        if (ManagedHeap::isFiller(a)) {
            if (freeStart == nullAddr)
                freeStart = a;
            a += ManagedHeap::fillerSize(a);
            continue;
        }
        std::size_t size = heap_.objectSize(a);
        Word m = heap_.markOf(a);
        if (mark::isGcMarked(m)) {
            flushFree(a);
            heap_.setMark(a, mark::clearGcMarked(m));
            liveBytes += size;
        } else {
            if (freeStart == nullAddr)
                freeStart = a;
        }
        a += size;
    }
    flushFree(end);
    heap_.setOldUsedBytes(liveBytes);
}

} // namespace skyway
